(* Telemetry-layer tests: the windowed Series conservation invariant
   (summing every window's metrics equals an independent end-of-run
   aggregate) as a property over the whole registry and over the
   multi-client simulator, windowing mechanics on synthetic streams,
   the SLO grammar (parse + evaluate, including the fast/slow burn
   pair), OpenMetrics exposition format and determinism, and the trace
   differ (self-diff is zero and byte-stable; a fault-injected rerun's
   regression is attributed to the timeout/backoff spans). *)

module Trace = No_trace.Trace
module Session = No_runtime.Session
module Registry = No_workloads.Registry
module Fault_plan = No_fault.Plan
module Compiler = Native_offloader.Compiler
module Experiment = Native_offloader.Experiment
module Sim = No_sched.Sim
module Hist = No_obs.Hist
module Series = No_obs.Series
module Openmetrics = No_obs.Openmetrics
module Slo = No_obs.Slo
module Diff = No_obs.Diff

let close ?(tol = 1e-9) label a b =
  let tol = tol *. (1.0 +. abs_float a) in
  Alcotest.(check bool)
    (Printf.sprintf "%s (%g vs %g)" label a b)
    true
    (abs_float (a -. b) <= tol)

(* Field-by-field conservation check: counters exactly, accumulated
   floats to addition-reorder tolerance (windows sum in a different
   order than the straight-line sink). *)
let check_metrics_conserved name (a : Trace.Metrics.t) (b : Trace.Metrics.t) =
  let ci label f = Alcotest.(check int) (name ^ ": " ^ label) (f a) (f b) in
  let cf label f = close ~tol:1e-9 (name ^ ": " ^ label) (f a) (f b) in
  ci "flushes_to_server" (fun m -> m.Trace.Metrics.flushes_to_server);
  ci "flushes_to_mobile" (fun m -> m.Trace.Metrics.flushes_to_mobile);
  ci "raw_to_server" (fun m -> m.Trace.Metrics.raw_to_server);
  ci "raw_to_mobile" (fun m -> m.Trace.Metrics.raw_to_mobile);
  ci "wire_to_server" (fun m -> m.Trace.Metrics.wire_to_server);
  ci "wire_to_mobile" (fun m -> m.Trace.Metrics.wire_to_mobile);
  cf "transfer_s" (fun m -> m.Trace.Metrics.transfer_s);
  cf "codec_s" (fun m -> m.Trace.Metrics.codec_s);
  ci "fault_count" (fun m -> m.Trace.Metrics.fault_count);
  cf "fault_s" (fun m -> m.Trace.Metrics.fault_s);
  ci "prefetched_pages" (fun m -> m.Trace.Metrics.prefetched_pages);
  ci "prefetched_bytes" (fun m -> m.Trace.Metrics.prefetched_bytes);
  ci "fnptr_count" (fun m -> m.Trace.Metrics.fnptr_count);
  cf "fnptr_s" (fun m -> m.Trace.Metrics.fnptr_s);
  ci "remote_io_count" (fun m -> m.Trace.Metrics.remote_io_count);
  cf "remote_io_s" (fun m -> m.Trace.Metrics.remote_io_s);
  ci "offloads" (fun m -> m.Trace.Metrics.offloads);
  cf "offload_span_s" (fun m -> m.Trace.Metrics.offload_span_s);
  ci "refusals" (fun m -> m.Trace.Metrics.refusals);
  ci "estimates" (fun m -> m.Trace.Metrics.estimates);
  ci "faults_injected" (fun m -> m.Trace.Metrics.faults_injected);
  ci "rpc_timeouts" (fun m -> m.Trace.Metrics.rpc_timeouts);
  ci "retries" (fun m -> m.Trace.Metrics.retries);
  cf "retry_wait_s" (fun m -> m.Trace.Metrics.retry_wait_s);
  ci "fallbacks" (fun m -> m.Trace.Metrics.fallbacks);
  ci "rollbacks" (fun m -> m.Trace.Metrics.rollbacks);
  cf "recovery_s" (fun m -> m.Trace.Metrics.recovery_s);
  ci "replays" (fun m -> m.Trace.Metrics.replays);
  cf "replay_s" (fun m -> m.Trace.Metrics.replay_s);
  ci "queued" (fun m -> m.Trace.Metrics.queued);
  cf "queue_wait_s" (fun m -> m.Trace.Metrics.queue_wait_s);
  ci "admits" (fun m -> m.Trace.Metrics.admits);
  ci "rejects" (fun m -> m.Trace.Metrics.rejects);
  cf "energy_mj" (fun m -> m.Trace.Metrics.energy_mj);
  cf "wall clock (total_s)" Trace.Metrics.total_s;
  (* Power residencies: same states, same seconds. *)
  let states m =
    List.sort compare
      (Hashtbl.fold (fun k _ acc -> k :: acc) m.Trace.Metrics.power_s [])
  in
  Alcotest.(check (list string)) (name ^ ": power states") (states a) (states b);
  List.iter
    (fun state ->
      cf
        ("power_s " ^ state)
        (fun m -> Option.value ~default:0.0
            (Hashtbl.find_opt m.Trace.Metrics.power_s state)))
    (states a)

(* {1 Windowing mechanics} *)

let test_series_windowing () =
  let series = Series.create ~window_s:1.0 () in
  let feed ts ev = Series.observe series ~ts ev in
  feed 0.2 (Trace.Offload_begin { target = "w" });
  feed 0.3 (Trace.Queue { target = "w"; server = 0; wait_s = 0.1; depth = 2 });
  feed 0.4 (Trace.Admit { target = "w"; server = 0; occupancy = 2; slot = 1 });
  feed 0.5 (Trace.Bw_sample { bps = 8e6 });
  (* Window 1 is a gap; window 2 gets the tail. *)
  feed 2.5 (Trace.Page_fault { page = 3; service_s = 0.2 });
  feed 2.6
    (Trace.Power_state { state = "computing"; mw = 1000.0; duration_s = 1.0 });
  let windows = Series.windows series in
  (* The power segment reaches 3.6 s, so the series covers windows
     0..3 even though only 0 and 2 were touched. *)
  Alcotest.(check int) "dense cover" 4 (List.length windows);
  Alcotest.(check (list int)) "indices"
    [ 0; 1; 2; 3 ]
    (List.map (fun (w : Series.window) -> w.Series.w_index) windows);
  close "duration" 3.6 (Series.duration_s series);
  let w i = List.nth windows i in
  Alcotest.(check int) "w0 offloads" 1
    (w 0).Series.w_metrics.Trace.Metrics.offloads;
  Alcotest.(check int) "w0 queue peak (depth+self)" 3
    (w 0).Series.w_peak_queue_depth;
  Alcotest.(check int) "w0 occupancy peak" 2 (w 0).Series.w_peak_occupancy;
  close "w0 bandwidth belief" 8e6 (w 0).Series.w_bw_bps;
  Alcotest.(check bool) "gap window is empty" true
    ((w 1).Series.w_metrics.Trace.Metrics.offloads = 0
    && Float.is_nan (w 1).Series.w_bw_bps);
  Alcotest.(check int) "w2 faults" 1
    (w 2).Series.w_metrics.Trace.Metrics.fault_count;
  (* Repeated calls hand back the same cached structure. *)
  Alcotest.(check bool) "windows cached" true
    (List.for_all2 ( == ) windows (Series.windows series));
  (* Merged histogram across windows sees both the queue wait and the
     fault service time. *)
  Alcotest.(check int) "queue-wait hist count" 1
    (Hist.count (Series.kind_hist series "queue-wait"));
  Alcotest.(check int) "page-fault hist count" 1
    (Hist.count (Series.kind_hist series "page-fault"));
  Alcotest.check_raises "bad window width"
    (Invalid_argument "Series.create: window_s") (fun () ->
      ignore (Series.create ~window_s:0.0 ()))

(* {1 Conservation over the registry} *)

let compile_entry (entry : Registry.entry) =
  Compiler.compile ~profile_script:entry.Registry.e_profile_script
    ~profile_files:entry.Registry.e_files
    ~eval_scale:entry.Registry.e_eval_scale
    (entry.Registry.e_build ())

let series_session ?faults ?config (entry : Registry.entry) compiled =
  let metrics = Trace.Metrics.create () in
  let series = Series.create ~window_s:0.25 () in
  let base =
    match config with Some c -> c | None -> Experiment.fast_config ()
  in
  let config =
    { base with
      Session.trace =
        Trace.fan_out [ Trace.Metrics.sink metrics; Series.sink series ];
      Session.faults }
  in
  let session =
    Session.create ~config ~script:entry.Registry.e_profile_script
      ~files:entry.Registry.e_files compiled.Compiler.c_output
      ~seeds:compiled.Compiler.c_seeds
  in
  let report = Session.run session in
  (report, series, metrics)

let test_conservation_registry () =
  List.iter
    (fun (entry : Registry.entry) ->
      let _report, series, metrics =
        series_session entry (compile_entry entry)
      in
      check_metrics_conserved entry.Registry.e_name (Series.totals series)
        metrics)
    Registry.spec

(* Conservation must survive the messy shapes too: a fault-injected
   run full of timeouts, retries, rollback and replay. *)
let test_conservation_faulty () =
  let entry = Option.get (Registry.by_name "164.gzip") in
  let compiled = compile_entry entry in
  (* Default link + message drops, like the bench fault sweep: at
     profile scale a drop reliably produces the timeout/retry shape. *)
  let config = Session.default_config () in
  let plan =
    match Fault_plan.parse "drop=0.03,seed=7" with
    | Ok p -> p
    | Error msg -> Alcotest.fail msg
  in
  let report, series, metrics =
    series_session ~faults:plan ~config entry compiled
  in
  Alcotest.(check bool) "the drops caused timeouts" true
    (report.Session.rep_rpc_timeouts > 0);
  check_metrics_conserved "164.gzip/drop" (Series.totals series) metrics

(* {1 Multi-client: global stream, conservation, byte-stable metrics} *)

let sim_result () =
  let clients =
    Sim.make_clients ~stagger_s:0.02 ~workloads:[ "164.gzip" ] ~count:4 ()
  in
  Sim.run clients

let test_sim_series_deterministic () =
  let events_of result = Sim.global_events result in
  let ea = events_of (sim_result ()) and eb = events_of (sim_result ()) in
  Alcotest.(check int) "rerun event count" (List.length ea) (List.length eb);
  (* Global stream is chronological. *)
  let rec ascending = function
    | (a, _) :: ((b, _) :: _ as tl) -> a <= b && ascending tl
    | _ -> true
  in
  Alcotest.(check bool) "globally sorted" true (ascending ea);
  (* Conservation on the merged fleet stream. *)
  let series = Series.of_events ea in
  let direct = Trace.Metrics.create () in
  List.iter
    (fun (ts, ev) -> (Trace.Metrics.sink direct).Trace.emit ~ts ev)
    ea;
  check_metrics_conserved "4-client fleet" (Series.totals series) direct;
  (* The whole OpenMetrics exposition is byte-identical across seeded
     reruns — the bench lane archives and diffs this file. *)
  let expose events =
    let s = Series.of_events events in
    Openmetrics.of_run ~series:s (Series.totals s)
  in
  Alcotest.(check string) "OpenMetrics byte-identical" (expose ea) (expose eb)

(* {1 OpenMetrics format} *)

let test_openmetrics_format () =
  let entry = Option.get (Registry.by_name "164.gzip") in
  let _report, series, metrics = series_session entry (compile_entry entry) in
  let text = Openmetrics.of_run ~series metrics in
  let has needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "ends with EOF terminator" true
    (String.length text >= 6
    && String.sub text (String.length text - 6) 6 = "# EOF\n");
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true
        (has needle))
    [
      "# TYPE offload_offloads counter";
      "offload_offloads_total 1";
      "offload_wire_bytes_total{direction=\"to-server\"}";
      "# TYPE offload_run_duration_seconds gauge";
      "offload_latency_seconds{kind=\"flush\",quantile=\"0.99\"}";
      "offload_window_offloads";
      "offload_power_state_seconds_total{state=";
    ];
  (* Without a series, only whole-run families appear. *)
  Alcotest.(check bool) "no window families without a series" true
    (let bare = Openmetrics.of_run metrics in
     not
       (let n = String.length "offload_window_" in
        let h = String.length bare in
        let rec go i =
          i + n <= h && (String.sub bare i n = "offload_window_" || go (i + 1))
        in
        go 0))

(* {1 SLO grammar} *)

let test_slo_parse () =
  (match Slo.parse "avail>=0.99,p99(PageFault)<=50ms,rate(retries)<=0.5" with
  | Ok [ Slo.Avail { min }; Slo.Quantile { q; kind; limit_s };
         Slo.Rate { counter; max_per_s } ] ->
    close "avail min" 0.99 min;
    close "quantile" 0.99 q;
    Alcotest.(check string) "kind normalized" "page-fault" kind;
    close "limit in seconds" 0.05 limit_s;
    Alcotest.(check string) "counter" "retries" counter;
    close "rate limit" 0.5 max_per_s
  | Ok _ -> Alcotest.fail "wrong objective shapes"
  | Error msg -> Alcotest.fail msg);
  (match Slo.parse "burn(0.99,fast=3,slow=12)<=14" with
  | Ok [ Slo.Burn { target; max_rate; fast; slow } ] ->
    close "burn target" 0.99 target;
    close "burn limit" 14.0 max_rate;
    Alcotest.(check int) "fast windows" 3 fast;
    Alcotest.(check int) "slow windows" 12 slow
  | Ok _ -> Alcotest.fail "wrong burn shape"
  | Error msg -> Alcotest.fail msg);
  (match Slo.parse Slo.default_spec with
  | Ok objectives ->
    Alcotest.(check int) "default spec parses" 3 (List.length objectives)
  | Error msg -> Alcotest.fail msg);
  List.iter
    (fun bad ->
      match Slo.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" bad))
    [ ""; "p99(nope)<=5ms"; "p0(flush)<=1s"; "rate(bogus)<=1";
      "burn(1.5)<=14"; "burn(0.99,fast=0)<=14"; "avail>=x"; "nonsense" ]

(* Synthetic series with a failure burst at the end: avail degrades,
   the fast burn window sees the burst but the slow window absorbs
   it — the fast/slow pair only alarms when both agree. *)
let slo_series () =
  let series = Series.create ~window_s:1.0 () in
  for i = 0 to 9 do
    let ts = (float_of_int i *. 1.0) +. 0.1 in
    Series.observe series ~ts (Trace.Offload_begin { target = "w" });
    Series.observe series ~ts:(ts +. 0.01)
      (Trace.Page_fault { page = i; service_s = 0.004 });
    if i >= 8 then
      Series.observe series ~ts:(ts +. 0.2)
        (Trace.Fallback_local
           { target = "w"; reason = "outage"; recovery_s = 0.1 })
  done;
  (* A closing power segment pins the covered timeline to 10.0 s
     (windows 0..9, failures in the last two). *)
  Series.observe series ~ts:9.7
    (Trace.Power_state { state = "waiting"; mw = 100.0; duration_s = 0.3 });
  series

let test_slo_evaluate () =
  let series = slo_series () in
  let eval spec =
    match Slo.parse spec with
    | Ok objectives -> Slo.evaluate objectives series
    | Error msg -> Alcotest.fail msg
  in
  (* 10 attempts, 2 fallbacks -> avail 0.8. *)
  (match eval "avail>=0.99" with
  | [ v ] ->
    close "avail value" 0.8 v.Slo.v_value;
    Alcotest.(check bool) "avail fails" false v.Slo.v_pass
  | _ -> Alcotest.fail "one verdict expected");
  (match eval "avail>=0.75" with
  | [ v ] -> Alcotest.(check bool) "looser avail passes" true v.Slo.v_pass
  | _ -> Alcotest.fail "one verdict expected");
  (* All 10 fault services are 4 ms. *)
  (match eval "p99(page-fault)<=50ms" with
  | [ v ] ->
    close "p99 value" 0.004 v.Slo.v_value;
    Alcotest.(check bool) "p99 passes" true v.Slo.v_pass
  | _ -> Alcotest.fail "one verdict expected");
  (match eval "p99(page-fault)<=1ms" with
  | [ v ] -> Alcotest.(check bool) "tight p99 fails" false v.Slo.v_pass
  | _ -> Alcotest.fail "one verdict expected");
  (* An empty latency kind trivially passes. *)
  (match eval "p99(remote-io)<=1us" with
  | [ v ] -> Alcotest.(check bool) "empty kind passes" true v.Slo.v_pass
  | _ -> Alcotest.fail "one verdict expected");
  (* 10 offloads over the 10 s covered timeline: exactly 1/s. *)
  (match eval "rate(offloads)<=1" with
  | [ v ] -> Alcotest.(check bool) "rate passes" true v.Slo.v_pass
  | _ -> Alcotest.fail "one verdict expected");
  (match eval "rate(offloads)<=0.5" with
  | [ v ] -> Alcotest.(check bool) "tight rate fails" false v.Slo.v_pass
  | _ -> Alcotest.fail "one verdict expected");
  (* Burn: per-window error ratio is 1.0 in the last two windows, 0
     elsewhere; budget 1% -> window burn 100.  fast=2 sees 100, but
     slow=10 averages 20 <= 25 — no alarm.  Tightening the limit to
     something both exceed must alarm. *)
  (match eval "burn(0.99,fast=2,slow=10)<=25" with
  | [ v ] ->
    close "burn value = max(fast,slow)" 100.0 v.Slo.v_value;
    Alcotest.(check bool) "slow window vetoes the alarm" true v.Slo.v_pass
  | _ -> Alcotest.fail "one verdict expected");
  (match eval "burn(0.99,fast=2,slow=10)<=10" with
  | [ v ] -> Alcotest.(check bool) "both windows exceed -> alarm" false
               v.Slo.v_pass
  | _ -> Alcotest.fail "one verdict expected");
  let verdicts = eval "avail>=0.75,p99(page-fault)<=50ms" in
  Alcotest.(check bool) "conjunction passes" true (Slo.pass verdicts);
  let rendered = Slo.render verdicts in
  Alcotest.(check bool) "render mentions every clause" true
    (String.length rendered > 0
    && String.equal rendered (Slo.render verdicts))

(* {1 Trace diff} *)

let traced_events ?faults entry compiled =
  let ring = Trace.Ring.create ~capacity:(1 lsl 20) () in
  (* Default link, so an outage plan derived from the clean duration
     lands on real wire traffic (same reasoning as the fault sweep). *)
  let config =
    { (Session.default_config ()) with
      Session.trace = Trace.Ring.sink ring; Session.faults }
  in
  let session =
    Session.create ~config ~script:entry.Registry.e_profile_script
      ~files:entry.Registry.e_files compiled.Compiler.c_output
      ~seeds:compiled.Compiler.c_seeds
  in
  ignore (Session.run session : Session.report);
  Trace.Ring.events ring

let test_diff_self_zero () =
  let entry = Option.get (Registry.by_name "164.gzip") in
  let compiled = compile_entry entry in
  let events = traced_events entry compiled in
  let report = Diff.compare_events events events in
  Alcotest.(check bool) "self-diff is zero" true (Diff.is_zero report);
  close "wall delta" 0.0 (Diff.wall_delta_s report);
  List.iter
    (fun (row : Diff.row) ->
      Alcotest.(check int)
        (row.Diff.d_path ^ ": counts equal")
        row.Diff.d_count_a row.Diff.d_count_b)
    report.Diff.r_rows;
  (* A deterministic rerun diffs to the byte-identical report. *)
  let rerun = Diff.compare_events (traced_events entry compiled) events in
  Alcotest.(check bool) "rerun still zero" true (Diff.is_zero rerun);
  Alcotest.(check string) "render byte-identical"
    (Diff.render report) (Diff.render rerun);
  Alcotest.(check string) "json byte-identical"
    (Diff.to_json report) (Diff.to_json rerun)

(* A lossy-link rerun versus the clean run: the regression must be
   attributed to the timeout/backoff spans, and the kind table must
   show rpc-timeout time appearing. *)
let test_diff_attribution () =
  let entry = Option.get (Registry.by_name "164.gzip") in
  let compiled = compile_entry entry in
  let clean = traced_events entry compiled in
  let plan =
    match Fault_plan.parse "drop=0.03,seed=7" with
    | Ok p -> p
    | Error msg -> Alcotest.fail msg
  in
  let faulty = traced_events ~faults:plan entry compiled in
  let report = Diff.compare_events clean faulty in
  Alcotest.(check bool) "regression detected" true
    (Diff.wall_delta_s report > 0.0);
  Alcotest.(check bool) "not zero" false (Diff.is_zero report);
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  let top = Diff.top ~n:3 report in
  Alcotest.(check bool) "top rows name the failure spans" true
    (List.exists
       (fun (r : Diff.row) ->
         contains r.Diff.d_path "rpc-timeout"
         || contains r.Diff.d_path "backoff"
         || contains r.Diff.d_path "[failed]")
       top);
  (* The heaviest-ranked row is the regression itself. *)
  (match top with
  | first :: _ ->
    Alcotest.(check bool)
      (first.Diff.d_path ^ " got slower")
      true
      (first.Diff.d_self_b_s -. first.Diff.d_self_a_s > 0.0)
  | [] -> Alcotest.fail "no node rows");
  let kind name =
    List.find_opt (fun (k : Diff.kind_row) -> k.Diff.k_kind = name)
      report.Diff.r_kinds
  in
  (match kind "rpc-timeout" with
  | Some k ->
    Alcotest.(check bool) "timeouts appeared" true (k.Diff.k_count_b > 0);
    Alcotest.(check bool) "timeout time grew" true
      (k.Diff.k_time_b_s > k.Diff.k_time_a_s)
  | None -> Alcotest.fail "rpc-timeout kind row missing");
  (* The JSON view carries the same attribution for the CI guard. *)
  let json = Diff.to_json report in
  Alcotest.(check bool) "json names the timeout kind" true
    (contains json "\"kind\": \"rpc-timeout\"");
  Alcotest.(check bool) "json is not zero" true
    (contains json "\"zero\": false")

let tests =
  [
    Alcotest.test_case "series windowing" `Quick test_series_windowing;
    Alcotest.test_case "conservation across the registry" `Slow
      test_conservation_registry;
    Alcotest.test_case "conservation under faults" `Quick
      test_conservation_faulty;
    Alcotest.test_case "fleet series deterministic" `Quick
      test_sim_series_deterministic;
    Alcotest.test_case "openmetrics format" `Quick test_openmetrics_format;
    Alcotest.test_case "slo parse" `Quick test_slo_parse;
    Alcotest.test_case "slo evaluate" `Quick test_slo_evaluate;
    Alcotest.test_case "diff self is zero" `Quick test_diff_self_zero;
    Alcotest.test_case "diff attributes the lossy link" `Quick
      test_diff_attribution;
  ]
