(* Runtime event spine tests: sink plumbing (fan-out, ring buffer,
   zero-cost wrapper), aggregation parity — the metrics sink must
   reproduce the session's mutable overhead counters bit-for-bit on
   real workloads — power-trace resampling, and the Chrome-trace
   exporter's well-formedness. *)

module Trace = No_trace.Trace
module Session = No_runtime.Session
module Link = No_netsim.Link
module Battery = No_power.Battery
module Power_model = No_power.Power_model
module Chess = No_workloads.Chess
module Registry = No_workloads.Registry
module Compiler = Native_offloader.Compiler
module Experiment = Native_offloader.Experiment

(* {1 Sink plumbing} *)

let recording () =
  let log = ref [] in
  let sink = Trace.of_emit (fun ~ts ev -> log := (ts, ev) :: !log) in
  (sink, fun () -> List.rev !log)

let some_flush =
  Trace.Flush
    { direction = Trace.To_server; raw_bytes = 100; wire_bytes = 40;
      transfer_s = 0.5; codec_s = 0.1 }

let test_fan_out () =
  let a, got_a = recording () in
  let b, got_b = recording () in
  let s = Trace.fan_out [ a; b ] in
  s.Trace.emit ~ts:1.0 some_flush;
  s.Trace.emit ~ts:2.0 (Trace.Refusal { target = "t" });
  Alcotest.(check int) "a saw both" 2 (List.length (got_a ()));
  Alcotest.(check int) "b saw both" 2 (List.length (got_b ()));
  Alcotest.(check bool) "same order" true (got_a () = got_b ());
  Alcotest.(check bool) "empty fan-out is null" true
    (Trace.is_null (Trace.fan_out []));
  Alcotest.(check bool) "singleton fan-out is the sink itself" true
    (Trace.fan_out [ a ] == a);
  Alcotest.(check bool) "null is null" true (Trace.is_null Trace.null);
  Alcotest.(check bool) "real sink is not null" false (Trace.is_null a)

let test_zero_cost () =
  (match Trace.zero_cost some_flush with
  | Trace.Flush { raw_bytes; wire_bytes; transfer_s; codec_s; _ } ->
    Alcotest.(check int) "raw kept" 100 raw_bytes;
    Alcotest.(check int) "wire kept" 40 wire_bytes;
    Alcotest.(check (float 0.0)) "transfer zeroed" 0.0 transfer_s;
    Alcotest.(check (float 0.0)) "codec zeroed" 0.0 codec_s
  | _ -> Alcotest.fail "zero_cost changed the constructor");
  let refusal = Trace.Refusal { target = "t" } in
  Alcotest.(check bool) "non-flush passes through" true
    (Trace.zero_cost refusal == refusal)

let test_ring_eviction () =
  let ring = Trace.Ring.create ~capacity:4 () in
  let sink = Trace.Ring.sink ring in
  for i = 1 to 6 do
    sink.Trace.emit ~ts:(float_of_int i) (Trace.Refusal { target = "t" })
  done;
  Alcotest.(check int) "capped length" 4 (Trace.Ring.length ring);
  Alcotest.(check int) "dropped count" 2 (Trace.Ring.dropped ring);
  Alcotest.(check (list (float 0.0))) "oldest evicted first"
    [ 3.0; 4.0; 5.0; 6.0 ]
    (List.map fst (Trace.Ring.events ring))

(* The ring's accounting invariant: nothing is ever silently lost —
   whatever did not survive in the buffer is counted in [dropped]. *)
let test_ring_wraparound_accounting () =
  let capacity = 16 in
  let ring = Trace.Ring.create ~capacity () in
  let sink = Trace.Ring.sink ring in
  let total = 1000 in
  for i = 1 to total do
    sink.Trace.emit ~ts:(float_of_int i) (Trace.Refusal { target = "t" });
    Alcotest.(check int)
      (Printf.sprintf "dropped + length = emitted after %d" i)
      i
      (Trace.Ring.dropped ring + Trace.Ring.length ring)
  done;
  Alcotest.(check int) "length capped at capacity" capacity
    (Trace.Ring.length ring);
  Alcotest.(check int) "events matches length" capacity
    (List.length (Trace.Ring.events ring));
  (* The survivors are exactly the newest [capacity] events, oldest
     first. *)
  Alcotest.(check (list (float 0.0))) "survivors are the newest, in order"
    (List.init capacity (fun i -> float_of_int (total - capacity + 1 + i)))
    (List.map fst (Trace.Ring.events ring))

(* {1 Aggregation parity}

   Fixed workloads, default and ideal configurations: every statistic
   the session reports from its mutable counters must be reproduced by
   the metrics sink folded over the event stream. *)

let close label a b =
  (* Identical accumulation up to float summation-order noise. *)
  let tol = 1e-6 *. (1.0 +. abs_float a) in
  Alcotest.(check bool)
    (Printf.sprintf "%s (%g vs %g)" label a b)
    true
    (abs_float (a -. b) <= tol)

let check_parity name (config : Session.config) ~script ~files compiled =
  let m = Trace.Metrics.create () in
  let config = { config with Session.trace = Trace.Metrics.sink m } in
  let session =
    Session.create ~config ~script ~files compiled.Compiler.c_output
      ~seeds:compiled.Compiler.c_seeds
  in
  let r = Session.run session in
  let i = Alcotest.(check int) in
  i (name ^ ": offloads") r.Session.rep_offloads m.Trace.Metrics.offloads;
  i (name ^ ": refusals") r.Session.rep_refusals m.Trace.Metrics.refusals;
  i (name ^ ": faults") r.Session.rep_faults m.Trace.Metrics.fault_count;
  i (name ^ ": prefetched pages") r.Session.rep_prefetched_pages
    m.Trace.Metrics.prefetched_pages;
  i (name ^ ": fnptr translations") r.Session.rep_fnptr_translations
    m.Trace.Metrics.fnptr_count;
  i (name ^ ": remote I/O ops") r.Session.rep_remote_io_ops
    m.Trace.Metrics.remote_io_count;
  i (name ^ ": bytes to server") r.Session.rep_bytes_to_server
    m.Trace.Metrics.raw_to_server;
  i (name ^ ": bytes to mobile") r.Session.rep_bytes_to_mobile
    m.Trace.Metrics.raw_to_mobile;
  i (name ^ ": wire bytes to mobile") r.Session.rep_wire_bytes_to_mobile
    m.Trace.Metrics.wire_to_mobile;
  close (name ^ ": comm_s") r.Session.rep_comm_s (Trace.Metrics.comm_s m);
  close (name ^ ": fnptr_s") r.Session.rep_fnptr_s m.Trace.Metrics.fnptr_s;
  close (name ^ ": remote_io_s") r.Session.rep_remote_io_s
    m.Trace.Metrics.remote_io_s;
  close (name ^ ": server span") r.Session.rep_server_span_s
    m.Trace.Metrics.offload_span_s;
  close (name ^ ": total_s") r.Session.rep_total_s (Trace.Metrics.total_s m);
  close (name ^ ": energy_mj") r.Session.rep_energy_mj
    m.Trace.Metrics.energy_mj

let test_parity_chess () =
  let compiled =
    Compiler.compile
      ~profile_script:(Chess.script ~depth:3 ~turns:2)
      ~eval_scale:2.0 (Chess.build ())
  in
  let script = Chess.script ~depth:4 ~turns:2 in
  check_parity "chess/fast" (Experiment.fast_config ()) ~script ~files:[]
    compiled;
  check_parity "chess/slow" (Experiment.slow_config ()) ~script ~files:[]
    compiled;
  check_parity "chess/ideal" (Experiment.ideal_config ()) ~script ~files:[]
    compiled

let spec_parity name =
  let entry = Option.get (Registry.by_name name) in
  let compiled =
    Compiler.compile ~profile_script:entry.Registry.e_profile_script
      ~profile_files:entry.Registry.e_files
      ~eval_scale:entry.Registry.e_eval_scale
      (entry.Registry.e_build ())
  in
  (* Profile-script scale keeps the suite fast; the stream shape is
     identical to the full evaluation run. *)
  check_parity name
    (Experiment.fast_config ())
    ~script:entry.Registry.e_profile_script ~files:entry.Registry.e_files
    compiled

let test_parity_hmmer () = spec_parity "456.hmmer"
let test_parity_gzip () = spec_parity "164.gzip"

(* {1 Power resampling} *)

let test_resample_matches_battery () =
  let model = Power_model.galaxy_s5 ~fast_radio:true in
  let m = Trace.Metrics.create () in
  let battery = Battery.create ~sink:(Trace.Metrics.sink m) model in
  Battery.spend battery ~from_s:0.0 ~to_s:0.4 Power_model.Computing;
  Battery.spend battery ~from_s:0.4 ~to_s:1.3 Power_model.Transmitting;
  Battery.spend battery ~from_s:1.3 ~to_s:1.3 Power_model.Idle;  (* dropped *)
  Battery.spend battery ~from_s:1.3 ~to_s:2.05 Power_model.Waiting;
  Battery.spend battery ~from_s:2.05 ~to_s:2.5 Power_model.Receiving;
  let idle_mw = Power_model.draw_mw model Power_model.Idle in
  let expect = Battery.resample battery ~period_s:0.25 in
  let got = Trace.Metrics.resample_power m ~period_s:0.25 ~idle_mw in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "resample matches Battery.resample" expect got;
  close "energy parity" (Battery.energy_mj battery) m.Trace.Metrics.energy_mj;
  Alcotest.(check int) "zero-length segment emitted no event" 4
    (List.length (Trace.Metrics.power_segments m))

(* {1 Chrome-trace export} *)

(* No JSON library in the test deps; scan the string. *)
let count_substring hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i acc =
    if i + n > h then acc
    else if String.sub hay i n = needle then go (i + n) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let ts_values json =
  (* Every record carries "ts":<float>; collect them in order. *)
  let key = "\"ts\":" in
  let rec go i acc =
    match String.index_from_opt json i 't' with
    | None -> List.rev acc
    | Some j ->
      if j >= 1 && j + 4 <= String.length json
         && String.sub json (j - 1) 5 = key then begin
        let k = ref (j + 4) in
        let stop = String.length json in
        while
          !k < stop
          && (match json.[!k] with
             | '0' .. '9' | '.' | '-' | 'e' | '+' -> true
             | _ -> false)
        do incr k done;
        let v = float_of_string (String.sub json (j + 4) (!k - j - 4)) in
        go !k (v :: acc)
      end
      else go (j + 1) acc
  in
  go 0 []

let test_chrome_export () =
  let compiled =
    Compiler.compile
      ~profile_script:(Chess.script ~depth:3 ~turns:2)
      ~eval_scale:2.0 (Chess.build ())
  in
  let ring = Trace.Ring.create ~capacity:(1 lsl 16) () in
  let config =
    { (Experiment.fast_config ()) with
      Session.trace = Trace.Ring.sink ring }
  in
  let session =
    Session.create ~config
      ~script:(Chess.script ~depth:4 ~turns:2)
      compiled.Compiler.c_output ~seeds:compiled.Compiler.c_seeds
  in
  ignore (Session.run session);
  Alcotest.(check int) "no events dropped" 0 (Trace.Ring.dropped ring);
  let json = Trace.Chrome.export (Trace.Ring.events ring) in
  Alcotest.(check bool) "traceEvents array" true
    (count_substring json "\"traceEvents\":[" = 1);
  let begins = count_substring json "\"ph\":\"B\"" in
  let ends = count_substring json "\"ph\":\"E\"" in
  Alcotest.(check bool) "at least one offload span" true (begins > 0);
  Alcotest.(check int) "balanced B/E" begins ends;
  Alcotest.(check bool) "has complete events" true
    (count_substring json "\"ph\":\"X\"" > 0);
  Alcotest.(check bool) "has power counters" true
    (count_substring json "\"ph\":\"C\"" > 0);
  let ts = ts_values json in
  Alcotest.(check bool) "timestamps present" true (List.length ts > 4);
  Alcotest.(check bool) "timestamps monotonic" true
    (List.for_all2 (fun a b -> a <= b)
       (List.filteri (fun i _ -> i < List.length ts - 1) ts)
       (List.tl ts));
  Alcotest.(check bool) "timestamps non-negative" true
    (List.for_all (fun t -> t >= 0.0) ts)

(* Every counter the metrics sink tracks must surface in the report
   rows — a full golden of [to_rows] after one event of every kind, so
   adding a tracked-but-unreported field breaks this test. *)
let test_to_rows_covers_all_counters () =
  let m = Trace.Metrics.create () in
  let sink = Trace.Metrics.sink m in
  List.iter
    (fun (ts, ev) -> sink.Trace.emit ~ts ev)
    [
      (0.0, Trace.Module_load { role = "mobile"; functions = 2; globals = 1 });
      ( 0.0,
        Trace.Estimate
          { target = "w"; predicted_gain_s = 1.0; local_s = 2.0;
            decision = true } );
      (0.0, Trace.Offload_begin { target = "w" });
      ( 0.0,
        Trace.Flush
          { direction = Trace.To_server; raw_bytes = 100; wire_bytes = 40;
            transfer_s = 0.5; codec_s = 0.1 } );
      (0.6, Trace.Page_fault { page = 1; service_s = 0.25 });
      (0.9, Trace.Prefetch { pages = 3; bytes = 12288 });
      (0.9, Trace.Fnptr_translate { cost_s = 0.001 });
      ( 0.9,
        Trace.Remote_io
          { io_name = "puts"; request_bytes = 10; response_bytes = 20;
            cost_s = 0.01 } );
      (1.0, Trace.Fault_injected { kind = "drop"; op = "flush" });
      (1.0, Trace.Rpc_timeout { op = "flush"; attempt = 1; waited_s = 0.3 });
      (1.3, Trace.Retry { op = "flush"; attempt = 2; backoff_s = 0.1 });
      ( 1.4,
        Trace.Flush
          { direction = Trace.To_mobile; raw_bytes = 200; wire_bytes = 60;
            transfer_s = 0.2; codec_s = 0.05 } );
      ( 1.65,
        Trace.Rollback { target = "w"; pages_restored = 4; bytes_discarded = 8 } );
      ( 1.65,
        Trace.Fallback_local
          { target = "w"; reason = "server dead"; recovery_s = 0.6 } );
      (1.65, Trace.Offload_end { target = "w"; dirty_pages = 2; span_s = 1.65 });
      (1.65, Trace.Replay { target = "w"; replay_s = 1.35 });
      ( 1.7,
        Trace.Checkpoint
          { target = "w"; pages = 2; image_bytes = 8704; io_cursor = 1;
            ledger_bytes = 12 } );
      ( 1.7,
        Trace.Migrate_start
          { target = "w"; from_server = 0; to_server = 1;
            reason = "server crashed"; transfer_s = 0.08 } );
      ( 1.9,
        Trace.Migrate_done { target = "w"; server = 1; resumed_span_s = 0.4 } );
      (2.0, Trace.Queue { target = "w"; server = 0; wait_s = 0.2; depth = 1 });
      (2.2, Trace.Admit { target = "w"; server = 0; occupancy = 2; slot = 1 });
      (2.5, Trace.Reject { target = "w"; server = 0; queue_depth = 2 });
      (3.0, Trace.Refusal { target = "w" });
      (0.0, Trace.Power_state { state = "computing"; mw = 1000.0; duration_s = 3.0 });
    ];
  let expected =
    [
      ("offloads", "1");
      ("refusals", "1");
      ("estimates", "1");
      ("offload span (s)", "1.6500");
      ("communication (s)", "1.1000");
      ("  transfer (s)", "0.7000");
      ("  codec (s)", "0.1500");
      ("  fault service (s)", "0.2500");
      ("fn-ptr translations", "1");
      ("fn-ptr time (s)", "0.0010");
      ("remote I/O ops", "1");
      ("remote I/O time (s)", "0.0100");
      ("page faults", "1");
      ("prefetched pages", "3");
      ("prefetched bytes", "12288");
      ("flushes to server", "1");
      ("flushes to mobile", "1");
      ("raw bytes to server", "100");
      ("raw bytes to mobile", "200");
      ("wire bytes to server", "40");
      ("wire bytes to mobile", "60");
      ("faults injected", "1");
      ("rpc timeouts", "1");
      ("retries", "1");
      ("retry wait (s)", "0.4000");
      ("local fallbacks", "1");
      ("rollbacks", "1");
      ("recovery time (s)", "0.6000");
      ("local replays", "1");
      ("replay time (s)", "1.3500");
      ("server admits", "1");
      ("server rejects", "1");
      ("queued offloads", "1");
      ("queue wait (s)", "0.2000");
      ("checkpoints", "1");
      ("checkpoint pages", "2");
      ("checkpoint bytes", "8704");
      ("migrations started", "1");
      ("migrations completed", "1");
      ("migrate transfer (s)", "0.0800");
      ("migrate resume (s)", "0.4000");
      ("energy (mJ)", "3000.00");
      ("total time (s)", "3.0000");
    ]
  in
  Alcotest.(check (list (pair string string)))
    "to_rows reports every tracked counter" expected
    (Trace.Metrics.to_rows m)

(* Golden for the Chrome exporter on a tiny synthetic stream: locks
   the metadata records, phase letters, µs conversion and arg
   spelling. *)
let test_chrome_golden () =
  let events =
    [
      (0.0, Trace.Module_load { role = "mobile"; functions = 2; globals = 1 });
      (0.5, Trace.Offload_begin { target = "work" });
      ( 0.75,
        Trace.Flush
          { direction = Trace.To_server; raw_bytes = 100; wire_bytes = 40;
            transfer_s = 0.5; codec_s = 0.1 } );
      (2.0, Trace.Offload_end { target = "work"; dirty_pages = 3; span_s = 1.5 });
    ]
  in
  let expected =
    String.concat ""
      [
        "{\"traceEvents\":[";
        "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0.000,\"pid\":1,";
        "\"args\":{\"name\":\"native-offloader\"}}";
        ",{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0.000,\"pid\":1,";
        "\"tid\":1,\"args\":{\"name\":\"offload session\"}}";
        ",{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0.000,\"pid\":1,";
        "\"tid\":2,\"args\":{\"name\":\"network\"}}";
        ",{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0.000,\"pid\":1,";
        "\"tid\":3,\"args\":{\"name\":\"power\"}}";
        ",{\"name\":\"module-load:mobile\",\"ph\":\"i\",\"ts\":0.000,";
        "\"pid\":1,\"tid\":1,\"s\":\"t\",";
        "\"args\":{\"functions\":2,\"globals\":1}}";
        ",{\"name\":\"offload:work\",\"ph\":\"B\",\"ts\":500000.000,";
        "\"pid\":1,\"tid\":1}";
        ",{\"name\":\"flush:to-server\",\"ph\":\"X\",\"ts\":750000.000,";
        "\"pid\":1,\"tid\":2,\"dur\":600000.000,";
        "\"args\":{\"raw_bytes\":100,\"wire_bytes\":40,";
        "\"transfer_us\":500000.000,\"codec_us\":100000.000}}";
        ",{\"name\":\"offload:work\",\"ph\":\"E\",\"ts\":2000000.000,";
        "\"pid\":1,\"tid\":1,";
        "\"args\":{\"dirty_pages\":3,\"span_us\":1500000.000}}";
        "],\"displayTimeUnit\":\"ms\"}";
      ]
  in
  Alcotest.(check string) "chrome export golden" expected
    (Trace.Chrome.export events)

let tests =
  [
    Alcotest.test_case "fan-out" `Quick test_fan_out;
    Alcotest.test_case "zero-cost wrapper" `Quick test_zero_cost;
    Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
    Alcotest.test_case "ring wraparound accounting" `Quick
      test_ring_wraparound_accounting;
    Alcotest.test_case "to_rows covers all counters" `Quick
      test_to_rows_covers_all_counters;
    Alcotest.test_case "chrome golden" `Quick test_chrome_golden;
    Alcotest.test_case "parity: chess" `Quick test_parity_chess;
    Alcotest.test_case "parity: 456.hmmer" `Quick test_parity_hmmer;
    Alcotest.test_case "parity: 164.gzip" `Quick test_parity_gzip;
    Alcotest.test_case "power resample" `Quick test_resample_matches_battery;
    Alcotest.test_case "chrome export" `Quick test_chrome_export;
  ]
