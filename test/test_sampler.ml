(* Tail-based trace sampler, SLO incident engine and the sampled
   (version-4) raw-trace format.

   The QCheck properties pin the sampler's contract: under any seed
   and budget every faulted, migrated or SLO-violating task is kept
   (the tail legs never defer to the probabilistic one); kept traces
   are row-complete (a budget-1.0 sampled run reproduces the full
   capture's event stream and span-tree root); and the kept set is a
   pure function of (stream, seed, budget), so a rerun keeps a
   byte-identical id list.  Unit tests cover the histogram exemplar
   reservoir, incident fire/resolve/still-firing semantics on a
   synthetic outage, and the sampled trace-file round trip (v3 files
   stay readable; sampled span trees attribute no root self-time). *)

module Trace = No_trace.Trace
module Rng = No_fault.Rng
module Fault_plan = No_fault.Plan
module Hist = No_obs.Hist
module Series = No_obs.Series
module Slo = No_obs.Slo
module Incident = No_obs.Incident
module Trace_file = No_obs.Trace_file
module Span = No_obs.Span
module Sim = No_sched.Sim

let contains hay needle =
  let h = String.length hay and n = String.length needle in
  let rec go i =
    if i + n > h then false else String.sub hay i n = needle || go (i + 1)
  in
  go 0

let plan_exn s =
  match Fault_plan.parse s with
  | Ok p -> p
  | Error msg -> Alcotest.failf "fault plan %S: %s" s msg

let slo_exn s =
  match Slo.parse s with
  | Ok objs -> objs
  | Error msg -> Alcotest.failf "slo spec %S: %s" s msg

(* {1 Synthetic task streams}

   One task = estimate, offload-begin, optional fault / checkpoint
   marker, offload-end with a chosen span.  Enough structure for the
   sampler to segment tasks and classify them, with every row
   accounted for. *)

type spec = { t_faulted : bool; t_migrated : bool; t_span_s : float }

let rows_per_task spec =
  3 + (if spec.t_faulted then 1 else 0) + if spec.t_migrated then 1 else 0

let feed_client sampler ~client specs =
  let sink = Trace.Sampler.client_sink sampler ~client ~start_s:0.0 in
  let t = ref (0.01 *. float_of_int client) in
  let emit ev =
    sink.Trace.emit ~ts:!t ev;
    t := !t +. 0.001
  in
  List.iter
    (fun spec ->
      emit
        (Trace.Estimate
           { target = "t"; predicted_gain_s = 0.1; local_s = 1.0;
             decision = true });
      emit (Trace.Offload_begin { target = "t" });
      if spec.t_faulted then
        emit (Trace.Fault_injected { kind = "link-outage"; op = "init" });
      if spec.t_migrated then
        emit
          (Trace.Checkpoint
             { target = "t"; pages = 1; image_bytes = 64; io_cursor = 0;
               ledger_bytes = 0 });
      emit
        (Trace.Offload_end
           { target = "t"; dirty_pages = 1; span_s = spec.t_span_s }))
    specs

let feed_fleet sampler fleet =
  List.iteri (fun client specs -> feed_client sampler ~client specs) fleet;
  Trace.Sampler.flush sampler

let sampler_of ?(reservoir = 0) ?(slo_limit_s = infinity) ~seed ~budget () =
  Trace.Sampler.create ~reservoir ~slo_limit_s
    ~keep:(fun ~client ~task -> Rng.task_keep ~seed ~client ~task ~budget)
    ()

(* A fleet is 1-6 clients of 1-4 tasks each. *)
let fleet_gen =
  QCheck.Gen.(
    list_size (int_range 1 6)
      (list_size (int_range 1 4)
         (map
            (fun ((f, m), s) ->
              { t_faulted = f; t_migrated = m; t_span_s = s })
            (pair (pair bool bool) (float_bound_inclusive 2.0)))))

let fleet_print fleet =
  String.concat ";"
    (List.map
       (fun specs ->
         String.concat ","
           (List.map
              (fun s ->
                Printf.sprintf "%c%c%.3f"
                  (if s.t_faulted then 'F' else '-')
                  (if s.t_migrated then 'M' else '-')
                  s.t_span_s)
              specs))
       fleet)

let arb_case =
  QCheck.make
    ~print:(fun (seed, budget, fleet) ->
      Printf.sprintf "seed=%d budget=%.3f fleet=%s" seed budget
        (fleet_print fleet))
    QCheck.Gen.(
      triple (int_bound 10_000) (float_bound_inclusive 1.0) fleet_gen)

let prop_tail_always_kept =
  QCheck.Test.make ~count:200
    ~name:"faulted/migrated/slo tasks kept under any seed and budget"
    arb_case
    (fun (seed, budget, fleet) ->
      let slo_limit_s = 1.0 in
      let sampler =
        sampler_of ~slo_limit_s ~seed:(Int64.of_int seed) ~budget ()
      in
      feed_fleet sampler fleet;
      let kept = Trace.Sampler.kept_ids sampler in
      List.for_all
        (fun x -> x)
        (List.concat
           (List.mapi
              (fun client specs ->
                List.mapi
                  (fun task spec ->
                    let must =
                      spec.t_faulted || spec.t_migrated
                      || spec.t_span_s >= slo_limit_s
                    in
                    (not must)
                    || List.mem (Printf.sprintf "c%d-t%d" client task) kept)
                  specs)
              fleet)))

let prop_kept_traces_row_complete =
  QCheck.Test.make ~count:200
    ~name:"kept traces are row-complete (no partial tasks)" arb_case
    (fun (seed, budget, fleet) ->
      let sampler = sampler_of ~seed:(Int64.of_int seed) ~budget () in
      feed_fleet sampler fleet;
      let specs_of id =
        Scanf.sscanf id "c%d-t%d" (fun c t ->
            List.nth (List.nth fleet c) t)
      in
      List.for_all
        (fun (id, events) ->
          List.length events = rows_per_task (specs_of id))
        (Trace.Sampler.kept_traces sampler))

let prop_rerun_identical =
  QCheck.Test.make ~count:100
    ~name:"same stream, seed and budget keep an identical set" arb_case
    (fun (seed, budget, fleet) ->
      let once () =
        let sampler =
          sampler_of ~reservoir:4 ~slo_limit_s:1.0
            ~seed:(Int64.of_int seed) ~budget ()
        in
        feed_fleet sampler fleet;
        Trace.Sampler.kept_ids sampler
      in
      once () = once ())

(* {1 The simulator end of the contract} *)

let fleet_config =
  { Sim.default_config with Sim.s_record_events = true }

let run_with_sampler ?(count = 6) ~budget ~seed () =
  let sampler =
    Trace.Sampler.create ~reservoir:4 ~slo_limit_s:1.0
      ~keep:(fun ~client ~task -> Rng.task_keep ~seed ~client ~task ~budget)
      ()
  in
  let cs =
    Sim.make_clients ~stagger_s:0.01
      ~faults:(plan_exn "outage=0.2:0.8,drop=0.05,seed=5")
      ~workloads:[ "164.gzip" ] ~count ()
  in
  let result =
    Sim.run ~config:{ fleet_config with Sim.s_sampler = Some sampler } cs
  in
  (result, sampler)

(* Budget 1.0 keeps every task, so the sampled stream must reproduce
   the full capture: same event count, same span-tree root. *)
let test_budget_one_matches_full_capture () =
  let result, sampler = run_with_sampler ~budget:1.0 ~seed:1L () in
  let full = Sim.global_events result in
  let kept = Trace.Sampler.kept_events sampler in
  Alcotest.(check int)
    "all tasks kept"
    (Trace.Sampler.tasks sampler)
    (Trace.Sampler.kept sampler);
  Alcotest.(check int)
    "sampled stream is the full stream" (List.length full)
    (List.length kept);
  let r_full = Span.of_events ~sampled:true full in
  let r_kept = Span.of_events ~sampled:true kept in
  Alcotest.(check bool)
    (Printf.sprintf "span roots match (%g vs %g)" r_full.Span.total_s
       r_kept.Span.total_s)
    true
    (abs_float (r_full.Span.total_s -. r_kept.Span.total_s) <= 1e-9)

(* Budget 0 leaves only the tail legs; the fault plan guarantees
   faulted tasks, and all of them must survive with full traces that
   are subsequences of the full capture. *)
let test_budget_zero_keeps_faulted () =
  let result, sampler = run_with_sampler ~budget:0.0 ~seed:1L () in
  let reasons = Trace.Sampler.reasons sampler in
  let reason r = List.assoc r reasons in
  Alcotest.(check bool)
    "fault plan produced kept faulted tasks" true
    (reason "faulted" > 0);
  Alcotest.(check int) "budget leg disabled" 0 (reason "budget");
  Alcotest.(check bool)
    "sampler dropped something" true
    (Trace.Sampler.kept sampler < Trace.Sampler.tasks sampler);
  let full = Sim.global_events result in
  List.iter
    (fun (_id, events) ->
      List.iter
        (fun (ts, ev) ->
          Alcotest.(check bool)
            "kept event present in full capture" true
            (List.exists (fun (fts, fev) -> fts = ts && fev = ev) full))
        events)
    (Trace.Sampler.kept_traces sampler)

let test_sim_rerun_deterministic () =
  let ids () = Trace.Sampler.kept_ids (snd (run_with_sampler ~budget:0.05 ~seed:9L ())) in
  Alcotest.(check (list string)) "kept ids byte-identical" (ids ()) (ids ())

let test_peak_buffering_bounded () =
  let _, sampler = run_with_sampler ~count:12 ~budget:0.05 ~seed:3L () in
  let peak = Trace.Sampler.buffered_rows_peak sampler in
  let seen = Trace.Sampler.rows_seen sampler in
  Alcotest.(check bool)
    (Printf.sprintf "peak %d < total rows %d" peak seen)
    true (peak < seen)

(* {1 Histogram exemplars} *)

let test_hist_exemplar_reservoir () =
  let h = Hist.create () in
  Alcotest.(check int) "empty" 0 (List.length (Hist.exemplars h));
  (* ~0.5% apart: same log-bucket (8 sub-buckets per octave), so the
     larger value wins the slot *)
  Hist.note_exemplar h ~trace_id:"a" 0.0100;
  Hist.note_exemplar h ~trace_id:"b" 0.01005;
  let same_bucket =
    List.filter (fun (_, v) -> v > 0.01001) (Hist.exemplars h)
  in
  Alcotest.(check int) "one exemplar per bucket" 1
    (List.length (Hist.exemplars h));
  Alcotest.(check int) "max value wins the bucket" 1 (List.length same_bucket);
  Hist.note_exemplar h ~trace_id:"nan" Float.nan;
  Alcotest.(check int) "NaN ignored" 1 (List.length (Hist.exemplars h));
  (* widely-spread values land in distinct buckets; the reservoir is
     bounded and sheds the lowest buckets first *)
  for i = 0 to 39 do
    Hist.note_exemplar h
      ~trace_id:(Printf.sprintf "t%d" i)
      (1e-6 *. (1.5 ** float_of_int i))
  done;
  let exs = Hist.exemplars h in
  Alcotest.(check bool)
    (Printf.sprintf "bounded (%d <= 16)" (List.length exs))
    true
    (List.length exs <= 16);
  Alcotest.(check bool) "kept the largest value" true
    (List.exists (fun (_, v) -> v >= 1e-6 *. (1.5 ** 39.0)) exs)

let test_series_exemplar_merges () =
  let series = Series.create () in
  Series.observe series ~ts:0.5
    (Trace.Page_fault { page = 1; service_s = 0.2 });
  Series.add_exemplar series ~ts:0.5 ~kind:Trace.Row.k_page_fault ~value:0.2
    ~trace_id:"c0-t0";
  let h = Series.kind_hist series "page-fault" in
  Alcotest.(check bool) "exemplar reaches the merged kind hist" true
    (List.mem ("c0-t0", 0.2) (Hist.exemplars h))

(* {1 Incident engine} *)

(* Page faults: healthy in windows 0-1, an outage-shaped violation in
   windows 2-4, healthy again in 5. *)
let outage_series ~heal =
  let series = Series.create () in
  let fault ts service_s =
    Series.observe series ~ts (Trace.Page_fault { page = 1; service_s })
  in
  fault 0.2 0.001;
  fault 1.2 0.001;
  fault 2.2 0.2;
  fault 3.2 0.2;
  fault 4.2 0.2;
  if heal then fault 5.2 0.001;
  series

let test_incident_fire_resolve () =
  let objectives = slo_exn "p99(page-fault)<=50ms" in
  let series = outage_series ~heal:true in
  match Incident.detect objectives series with
  | [ i ] ->
    Alcotest.(check string)
      "label" "p99(page-fault)<=0.05s" i.Incident.i_label;
    Alcotest.(check (float 1e-9)) "fired" 2.0 i.Incident.i_start_s;
    (match i.Incident.i_end_s with
    | Some e -> Alcotest.(check (float 1e-9)) "resolved" 5.0 e
    | None -> Alcotest.fail "expected a resolved incident");
    Alcotest.(check int) "windows" 3 i.Incident.i_windows;
    Alcotest.(check (float 1e-9)) "peak" 0.2 i.Incident.i_peak
  | l -> Alcotest.failf "expected one incident, got %d" (List.length l)

let test_incident_still_firing () =
  let objectives = slo_exn "p99(page-fault)<=50ms" in
  let series = outage_series ~heal:false in
  match Incident.detect objectives series with
  | [ i ] ->
    Alcotest.(check bool) "still firing" true (i.Incident.i_end_s = None);
    Alcotest.(check bool) "rendered as still-firing" true
      (contains (Incident.render [ i ]) "still-firing")
  | l -> Alcotest.failf "expected one incident, got %d" (List.length l)

let test_incident_exemplars_and_jsonl () =
  let objectives = slo_exn "p99(page-fault)<=50ms" in
  let series = outage_series ~heal:true in
  Series.add_exemplar series ~ts:2.2 ~kind:Trace.Row.k_page_fault ~value:0.2
    ~trace_id:"c3-t1";
  (match Incident.detect objectives series with
  | [ i ] ->
    Alcotest.(check (list string)) "exemplar ids harvested" [ "c3-t1" ]
      i.Incident.i_exemplars
  | l -> Alcotest.failf "expected one incident, got %d" (List.length l));
  let healthy = Series.create () in
  Series.observe healthy ~ts:0.5
    (Trace.Page_fault { page = 1; service_s = 0.001 });
  Alcotest.(check string)
    "healthy series renders 'no incidents'" "no incidents"
    (Incident.render (Incident.detect objectives healthy));
  let jsonl = Incident.to_jsonl (Incident.detect objectives series) in
  Alcotest.(check bool) "jsonl names the clause" true
    (contains jsonl "p99(page-fault)<=0.05s")

(* {1 Sampled trace files} *)

let sample_events =
  [
    (0.0, Trace.Offload_begin { target = "t" });
    (1.0, Trace.Offload_end { target = "t"; dirty_pages = 2; span_s = 1.0 });
  ]

let test_trace_file_sampled_round_trip () =
  let text = Trace_file.to_string ~sampled:true sample_events in
  (match Trace_file.of_string_ex text with
  | Ok (events, sampled) ->
    Alcotest.(check bool) "sampled flag survives" true sampled;
    Alcotest.(check int) "events survive" 2 (List.length events)
  | Error msg -> Alcotest.failf "round trip failed: %s" msg);
  match Trace_file.of_string_ex (Trace_file.to_string sample_events) with
  | Ok (_, sampled) ->
    Alcotest.(check bool) "unsampled default" false sampled
  | Error msg -> Alcotest.failf "unsampled round trip failed: %s" msg

let test_trace_file_v3_still_reads () =
  let text =
    "{\"format\":\"no-trace-raw\",\"version\":3,\"events\":1}\n\
     {\"ts\":0.5,\"kind\":\"refusal\",\"target\":\"t\"}\n"
  in
  match Trace_file.of_string_ex text with
  | Ok (events, sampled) ->
    Alcotest.(check int) "v3 body reads" 1 (List.length events);
    Alcotest.(check bool) "v3 is unsampled" false sampled
  | Error msg -> Alcotest.failf "v3 file refused: %s" msg

let test_trace_file_tagged_traces () =
  let traces =
    [ ("c0-t0", sample_events);
      ("c1-t0", [ (0.5, Trace.Refusal { target = "u" }) ]) ]
  in
  let text = Trace_file.to_string_traces traces in
  match Trace_file.of_string_traces text with
  | Ok (tagged, sampled) ->
    Alcotest.(check bool) "traces file is sampled" true sampled;
    Alcotest.(check int) "all events present" 3 (List.length tagged);
    let ids = List.filter_map (fun (_, _, id) -> id) tagged in
    Alcotest.(check int) "every line tagged" 3 (List.length ids);
    Alcotest.(check bool) "merged in time order" true
      (let ts = List.map (fun (t, _, _) -> t) tagged in
       ts = List.sort compare ts)
  | Error msg -> Alcotest.failf "tagged file refused: %s" msg

let test_sampled_span_root_has_no_self_time () =
  (* A sampled stream with a large gap: the root must not claim the
     gap as its own compute. *)
  let events =
    sample_events
    @ [
        (100.0, Trace.Offload_begin { target = "t" });
        ( 101.0,
          Trace.Offload_end { target = "t"; dirty_pages = 0; span_s = 1.0 } );
      ]
  in
  let sampled = Span.of_events ~sampled:true events in
  let full = Span.of_events events in
  Alcotest.(check (float 1e-9)) "sampled root self" 0.0 sampled.Span.self_s;
  Alcotest.(check bool) "full capture still attributes the gap" true
    (full.Span.self_s > 50.0)

(* {1 The keep decision itself} *)

let test_task_keep_edges () =
  let seed = 7L in
  Alcotest.(check bool) "budget 1 keeps" true
    (Rng.task_keep ~seed ~client:3 ~task:2 ~budget:1.0);
  Alcotest.(check bool) "budget 0 drops" false
    (Rng.task_keep ~seed ~client:3 ~task:2 ~budget:0.0);
  Alcotest.(check bool) "pure in its inputs" true
    (Rng.task_keep ~seed ~client:5 ~task:1 ~budget:0.3
    = Rng.task_keep ~seed ~client:5 ~task:1 ~budget:0.3);
  (* At a generous budget, some tasks are kept and some dropped —
     the decision actually depends on (client, task). *)
  let decisions =
    List.init 64 (fun i ->
        Rng.task_keep ~seed ~client:(i / 8) ~task:(i mod 8) ~budget:0.5)
  in
  Alcotest.(check bool) "mixes keeps and drops" true
    (List.mem true decisions && List.mem false decisions)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_tail_always_kept;
    QCheck_alcotest.to_alcotest prop_kept_traces_row_complete;
    QCheck_alcotest.to_alcotest prop_rerun_identical;
    Alcotest.test_case "sim: budget 1.0 reproduces full capture" `Quick
      test_budget_one_matches_full_capture;
    Alcotest.test_case "sim: budget 0 keeps every faulted task" `Quick
      test_budget_zero_keeps_faulted;
    Alcotest.test_case "sim: rerun keeps identical ids" `Quick
      test_sim_rerun_deterministic;
    Alcotest.test_case "sim: peak buffering bounded" `Quick
      test_peak_buffering_bounded;
    Alcotest.test_case "hist: exemplar reservoir" `Quick
      test_hist_exemplar_reservoir;
    Alcotest.test_case "series: exemplar merges into kind hist" `Quick
      test_series_exemplar_merges;
    Alcotest.test_case "incident: fires and resolves" `Quick
      test_incident_fire_resolve;
    Alcotest.test_case "incident: still firing at end of run" `Quick
      test_incident_still_firing;
    Alcotest.test_case "incident: exemplars and jsonl" `Quick
      test_incident_exemplars_and_jsonl;
    Alcotest.test_case "trace-file: sampled round trip" `Quick
      test_trace_file_sampled_round_trip;
    Alcotest.test_case "trace-file: v3 still reads" `Quick
      test_trace_file_v3_still_reads;
    Alcotest.test_case "trace-file: tagged kept traces" `Quick
      test_trace_file_tagged_traces;
    Alcotest.test_case "span: sampled root has no self time" `Quick
      test_sampled_span_root_has_no_self_time;
    Alcotest.test_case "rng: task_keep edges" `Quick test_task_keep_edges;
  ]
