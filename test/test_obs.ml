(* Trace-analysis layer tests: histogram quantile exactness and merge,
   span-tree goldens on synthetic streams, the span invariants as
   properties over every registry workload (clean and fault-injected),
   flamegraph export, the estimator audit on real runs (including a
   forced false positive via a bandwidth collapse), and the raw-trace
   file round trip with its strict loader diagnostics. *)

module Trace = No_trace.Trace
module Session = No_runtime.Session
module Registry = No_workloads.Registry
module Chess = No_workloads.Chess
module Fault_plan = No_fault.Plan
module Compiler = Native_offloader.Compiler
module Experiment = Native_offloader.Experiment
module Span = No_obs.Span
module Hist = No_obs.Hist
module Flame = No_obs.Flame
module Audit = No_obs.Audit
module Trace_file = No_obs.Trace_file

let close ?(tol = 1e-9) label a b =
  let tol = tol *. (1.0 +. abs_float a) in
  Alcotest.(check bool)
    (Printf.sprintf "%s (%g vs %g)" label a b)
    true
    (abs_float (a -. b) <= tol)

(* {1 Histograms} *)

let test_hist_single_value () =
  let h = Hist.create () in
  for _ = 1 to 100 do
    Hist.add h 0.25
  done;
  Alcotest.(check int) "count" 100 (Hist.count h);
  close "sum" 25.0 (Hist.sum h);
  close "min" 0.25 (Hist.min h);
  close "max" 0.25 (Hist.max h);
  close "mean" 0.25 (Hist.mean h);
  (* Every sample shares one bucket, so every quantile is exact. *)
  List.iter
    (fun q -> close (Printf.sprintf "p%g" (q *. 100.0)) 0.25 (Hist.quantile h q))
    [ 0.0; 0.01; 0.5; 0.9; 0.95; 0.99; 1.0 ]

(* Powers of two land in distinct buckets (bucket width ≈9%), so
   nearest-rank quantiles are exact on this distribution. *)
let test_hist_exact_quantiles () =
  let h = Hist.create () in
  let values = List.init 10 (fun i -> Float.of_int (1 lsl i)) in
  List.iter (Hist.add h) values;
  Alcotest.(check int) "count" 10 (Hist.count h);
  close "sum" 1023.0 (Hist.sum h);
  (* rank = ceil (q*10): p50 -> 5th value (16), p90 -> 9th (256),
     p99 -> 10th (512), p100 -> 512, p10 -> 1st (1). *)
  close "p10" 1.0 (Hist.quantile h 0.10);
  close "p50" 16.0 (Hist.quantile h 0.50);
  close "p90" 256.0 (Hist.quantile h 0.90);
  close "p99" 512.0 (Hist.quantile h 0.99);
  close "p100" 512.0 (Hist.quantile h 1.0);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Hist.quantile: q outside [0,1]") (fun () ->
      ignore (Hist.quantile h 1.5))

let test_hist_merge () =
  let a = Hist.create () and b = Hist.create () in
  List.iter (Hist.add a) [ 1.0; 4.0; 16.0 ];
  List.iter (Hist.add b) [ 2.0; 8.0; 32.0; 64.0 ];
  let m = Hist.merge [ a; b ] in
  Alcotest.(check int) "merged count" 7 (Hist.count m);
  close "merged sum" 127.0 (Hist.sum m);
  close "merged min" 1.0 (Hist.min m);
  close "merged max" 64.0 (Hist.max m);
  (* Merged distribution = {1,2,4,8,16,32,64}; p50 -> 4th value. *)
  close "merged p50" 8.0 (Hist.quantile m 0.50);
  close "merged p99" 64.0 (Hist.quantile m 0.99);
  (* Merging must not disturb the sources. *)
  Alcotest.(check int) "a untouched" 3 (Hist.count a);
  Alcotest.(check int) "b untouched" 4 (Hist.count b);
  let empty = Hist.merge [] in
  Alcotest.(check int) "empty merge" 0 (Hist.count empty);
  Alcotest.(check bool) "empty quantile is NaN" true
    (Float.is_nan (Hist.quantile empty 0.5))

(* {1 Span trees: synthetic goldens} *)

let synthetic_events =
  [
    (0.0, Trace.Module_load { role = "mobile"; functions = 2; globals = 1 });
    (0.1, Trace.Estimate
            { target = "work"; predicted_gain_s = 2.0; local_s = 3.0;
              decision = true });
    (0.1, Trace.Offload_begin { target = "work" });
    ( 0.1,
      Trace.Flush
        { direction = Trace.To_server; raw_bytes = 4096; wire_bytes = 1024;
          transfer_s = 0.2; codec_s = 0.05 } );
    (0.35, Trace.Page_fault { page = 7; service_s = 0.1 });
    (0.45, Trace.Page_fault { page = 8; service_s = 0.15 });
    ( 0.8,
      Trace.Flush
        { direction = Trace.To_mobile; raw_bytes = 2048; wire_bytes = 512;
          transfer_s = 0.1; codec_s = 0.0 } );
    (0.9, Trace.Offload_end { target = "work"; dirty_pages = 2; span_s = 0.8 });
    (1.4, Trace.Power_state { state = "computing"; mw = 1000.0; duration_s = 0.6 });
  ]

let test_span_golden () =
  let root = Span.of_events synthetic_events in
  let expected =
    String.concat "\n"
      [
        "run  total 2.000000s  self 1.200000s";
        "|- offload:work  total 0.800000s  self 0.200000s";
        "|  |- flush:to-server  0.250000s";
        "|  |- page-fault x2  0.250000s";
        "|  `- flush:to-mobile  0.100000s";
        "`- module-load:mobile  0.000000s";
        "";
      ]
  in
  Alcotest.(check string) "text tree" expected (Flame.to_text root)

let test_flame_golden () =
  let root = Span.of_events synthetic_events in
  let expected =
    String.concat "\n"
      [
        "run 1200000";
        "run;offload:work 200000";
        "run;offload:work;flush:to-server 250000";
        "run;offload:work;page-fault 250000";
        "run;offload:work;flush:to-mobile 100000";
        "";
      ]
  in
  Alcotest.(check string) "collapsed stacks" expected (Flame.to_collapsed root)

(* A failure shape: the attempt dies, rolls back, replays locally; the
   whole episode must read as one [failed] subtree whose total covers
   the attempt span plus the replay. *)
let test_span_failure_shape () =
  let events =
    [
      (0.0, Trace.Offload_begin { target = "work" });
      (0.2, Trace.Rpc_timeout { op = "flush"; attempt = 1; waited_s = 0.3 });
      (0.5, Trace.Retry { op = "flush"; attempt = 2; backoff_s = 0.1 });
      (0.6, Trace.Fault_injected { kind = "server-crash"; op = "flush" });
      ( 0.6,
        Trace.Rollback { target = "work"; pages_restored = 4; bytes_discarded = 12 } );
      ( 0.6,
        Trace.Fallback_local { target = "work"; reason = "server dead"; recovery_s = 0.6 } );
      (0.6, Trace.Offload_end { target = "work"; dirty_pages = 0; span_s = 0.6 });
      (0.6, Trace.Replay { target = "work"; replay_s = 1.4 });
    ]
  in
  let root = Span.of_events events in
  close "root covers attempt + replay" 2.0 root.Span.total_s;
  (match root.Span.children with
  | [ failed ] ->
    Alcotest.(check string) "failed node name" "offload:work [failed]"
      failed.Span.name;
    close "failed total = span + replay" 2.0 failed.Span.total_s;
    let child name =
      List.find_opt (fun (n : Span.node) -> n.Span.name = name)
        failed.Span.children
    in
    Alcotest.(check bool) "has rollback" true (child "rollback" <> None);
    Alcotest.(check bool) "has fallback marker" true
      (child "fallback-local" <> None);
    (match child "local-replay" with
    | Some n -> close "replay nested under the failed attempt" 1.4 n.Span.total_s
    | None -> Alcotest.fail "local replay not nested under the failed attempt")
  | children ->
    Alcotest.fail
      (Printf.sprintf "expected exactly the failed attempt, got %d children"
         (List.length children)));
  close "root residue is zero" 0.0 root.Span.self_s

(* {1 Span invariants as properties over the registry} *)

let compile_entry (entry : Registry.entry) =
  Compiler.compile ~profile_script:entry.Registry.e_profile_script
    ~profile_files:entry.Registry.e_files
    ~eval_scale:entry.Registry.e_eval_scale
    (entry.Registry.e_build ())

let traced_session ?faults (entry : Registry.entry) compiled =
  let ring = Trace.Ring.create ~capacity:(1 lsl 20) () in
  let metrics = Trace.Metrics.create () in
  let config =
    { (Experiment.fast_config ()) with
      Session.trace =
        Trace.fan_out [ Trace.Ring.sink ring; Trace.Metrics.sink metrics ];
      Session.faults }
  in
  let session =
    Session.create ~config ~script:entry.Registry.e_profile_script
      ~files:entry.Registry.e_files compiled.Compiler.c_output
      ~seeds:compiled.Compiler.c_seeds
  in
  let report = Session.run session in
  (report, Trace.Ring.events ring, metrics)

let check_span_invariants name events metrics =
  let root = Span.of_events events in
  close ~tol:1e-6
    (name ^ ": root total = metrics wall clock")
    (Trace.Metrics.total_s metrics)
    root.Span.total_s;
  Span.iter
    (fun ~depth:_ (n : Span.node) ->
      let children_total =
        List.fold_left (fun acc (c : Span.node) -> acc +. c.Span.total_s) 0.0
          n.Span.children
      in
      close ~tol:1e-6
        (Printf.sprintf "%s: %s children+self = total" name n.Span.name)
        n.Span.total_s
        (children_total +. n.Span.self_s);
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s self non-negative" name n.Span.name)
        true
        (n.Span.self_s >= -1e-6))
    root

let test_span_properties_registry () =
  List.iter
    (fun (entry : Registry.entry) ->
      let compiled = compile_entry entry in
      let _report, events, metrics = traced_session entry compiled in
      check_span_invariants entry.Registry.e_name events metrics)
    Registry.spec

(* Same invariants on a faulty run of a real workload: crash the
   server mid-run so the rollback + replay shape appears. *)
let test_span_properties_faulty () =
  let entry = Option.get (Registry.by_name "458.sjeng") in
  let compiled = compile_entry entry in
  let clean, _, _ = traced_session entry compiled in
  let t = clean.Session.rep_total_s in
  let plan =
    match Fault_plan.parse (Printf.sprintf "crash=%.4f" (0.4 *. t)) with
    | Ok p -> p
    | Error msg -> Alcotest.fail msg
  in
  let report, events, metrics = traced_session ~faults:plan entry compiled in
  Alcotest.(check bool) "the crash forced a fallback" true
    (report.Session.rep_fallbacks > 0);
  check_span_invariants "458.sjeng/crash" events metrics;
  let root = Span.of_events events in
  let failed =
    List.exists
      (fun (n : Span.node) ->
        String.length n.Span.name >= 8
        && String.sub n.Span.name (String.length n.Span.name - 8) 8
           = "[failed]")
      root.Span.children
  in
  Alcotest.(check bool) "a [failed] attempt node exists" true failed

(* {1 Estimator audit} *)

let test_audit_chess () =
  let compiled =
    Compiler.compile
      ~profile_script:(Chess.script ~depth:3 ~turns:2)
      ~eval_scale:2.0 (Chess.build ())
  in
  let ring = Trace.Ring.create ~capacity:(1 lsl 20) () in
  let config =
    { (Experiment.fast_config ()) with Session.trace = Trace.Ring.sink ring }
  in
  let session =
    Session.create ~config
      ~script:(Chess.script ~depth:4 ~turns:2)
      compiled.Compiler.c_output ~seeds:compiled.Compiler.c_seeds
  in
  let report = Session.run session in
  let rows = Audit.of_events (Trace.Ring.events ring) in
  let s = Audit.summarize rows in
  Alcotest.(check bool) "every decision audited" true (s.Audit.s_estimates > 0);
  Alcotest.(check int) "verdicts partition the rows" s.Audit.s_estimates
    (s.Audit.s_true_pos + s.Audit.s_false_pos + s.Audit.s_true_neg
    + s.Audit.s_false_neg + s.Audit.s_unverified);
  (* Offload decisions correspond to attempts; each must carry a
     directly measured (not proxied) gain. *)
  let offload_rows =
    List.filter (fun (r : Audit.row) -> r.Audit.a_decision) rows
  in
  Alcotest.(check int) "offload decisions = attempts"
    report.Session.rep_offloads
    (List.length offload_rows);
  List.iter
    (fun (r : Audit.row) ->
      Alcotest.(check bool) "measured, not proxied" false r.Audit.a_proxied;
      Alcotest.(check bool) "has a measured gain" true
        (r.Audit.a_measured_gain_s <> None))
    offload_rows;
  (* Chess on the fast network is the paper's showcase: the offloads
     must actually measure as wins (marginal attempts may still read
     as false positives against the estimator's Tm belief). *)
  Alcotest.(check bool) "fast-network chess offloads pay off" true
    (s.Audit.s_true_pos > 0)

let test_audit_sjeng () =
  let entry = Option.get (Registry.by_name "458.sjeng") in
  let compiled = compile_entry entry in
  let report, events, _metrics = traced_session entry compiled in
  let rows = Audit.of_events events in
  let s = Audit.summarize rows in
  Alcotest.(check bool) "decisions audited" true (s.Audit.s_estimates > 0);
  Alcotest.(check int) "offload rows = attempts" report.Session.rep_offloads
    (List.length (List.filter (fun (r : Audit.row) -> r.Audit.a_decision) rows));
  Alcotest.(check bool) "mean abs error is finite" true
    (Float.is_finite s.Audit.s_mean_abs_err_s)

(* Force a false positive: collapse the bandwidth to 1% from the
   start.  The estimator prices its first decision at the link's
   nominal bandwidth, so it offloads — and the attempt pays
   collapsed-bandwidth prices the prediction never saw, measuring
   slower than the local belief.  gzip is the transfer-heavy workload
   (its ablation shows the slowdown on degraded links), so the
   collapsed transfer prices dominate. *)
let test_audit_forced_false_positive () =
  let entry = Option.get (Registry.by_name "164.gzip") in
  let compiled = compile_entry entry in
  let plan =
    match Fault_plan.parse "collapse=0.0:0.01" with
    | Ok p -> p
    | Error msg -> Alcotest.fail msg
  in
  let _report, events, _metrics = traced_session ~faults:plan entry compiled in
  let s = Audit.summarize (Audit.of_events events) in
  Alcotest.(check bool)
    (Printf.sprintf "bandwidth collapse forces a false positive (TP %d FP %d)"
       s.Audit.s_true_pos s.Audit.s_false_pos)
    true (s.Audit.s_false_pos >= 1)

(* {1 Raw trace files} *)

let chess_events =
  lazy
    (let compiled =
       Compiler.compile
         ~profile_script:(Chess.script ~depth:3 ~turns:2)
         ~eval_scale:2.0 (Chess.build ())
     in
     let ring = Trace.Ring.create ~capacity:(1 lsl 20) () in
     let config =
       { (Experiment.fast_config ()) with Session.trace = Trace.Ring.sink ring }
     in
     let session =
       Session.create ~config
         ~script:(Chess.script ~depth:4 ~turns:2)
         compiled.Compiler.c_output ~seeds:compiled.Compiler.c_seeds
     in
     ignore (Session.run session);
     Trace.Ring.events ring)

let test_trace_file_round_trip () =
  (* Append scheduler events (emitted only under a shared-server
     handle) so the round trip covers every constructor the
     multi-client simulator produces. *)
  let events =
    Lazy.force chess_events
    @ [
        ( 9.0,
          Trace.Queue { target = "search"; server = 1; wait_s = 0.25; depth = 1 }
        );
        ( 9.25,
          Trace.Admit { target = "search"; server = 1; occupancy = 2; slot = 1 }
        );
        (9.5, Trace.Reject { target = "search"; server = 0; queue_depth = 2 });
      ]
  in
  let text = Trace_file.to_string events in
  match Trace_file.of_string text with
  | Error msg -> Alcotest.fail msg
  | Ok reloaded ->
    Alcotest.(check int) "event count" (List.length events)
      (List.length reloaded);
    Alcotest.(check bool) "events round-trip bit-exactly" true
      (events = reloaded);
    (* Serialize → parse → serialize is byte-identical, which is what
       makes re-analysis of a stored trace reproducible. *)
    Alcotest.(check string) "byte-identical re-serialization" text
      (Trace_file.to_string reloaded)

(* Two runs of the same seeded configuration must serialize — and
   therefore analyze — byte-identically. *)
let test_trace_file_deterministic () =
  let entry = Option.get (Registry.by_name "164.gzip") in
  let compiled = compile_entry entry in
  let plan =
    match Fault_plan.parse "drop=0.03,seed=7" with
    | Ok p -> p
    | Error msg -> Alcotest.fail msg
  in
  let capture () =
    let _report, events, _metrics =
      traced_session ~faults:plan entry compiled
    in
    events
  in
  let a = capture () and b = capture () in
  let ta = Trace_file.to_string a and tb = Trace_file.to_string b in
  Alcotest.(check string) "seeded runs serialize identically" ta tb;
  let root_a = Span.of_events a and root_b = Span.of_events b in
  Alcotest.(check string) "span trees render identically"
    (Flame.to_text root_a) (Flame.to_text root_b);
  Alcotest.(check bool) "audits agree" true
    (Audit.of_events a = Audit.of_events b)

let expect_error label needle text =
  match Trace_file.of_string text with
  | Ok _ -> Alcotest.fail (label ^ ": bad input loaded successfully")
  | Error msg ->
    let contains hay needle =
      let n = String.length needle and h = String.length hay in
      let rec go i =
        if i + n > h then false
        else String.sub hay i n = needle || go (i + 1)
      in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "%s: %S mentions %S" label msg needle)
      true (contains msg needle)

let test_trace_file_diagnostics () =
  (* Version from the future: a clear refusal, not a parse attempt. *)
  expect_error "future version" "version"
    "{\"format\":\"no-trace-raw\",\"version\":5,\"events\":0}\n";
  (* Version 1 predates server ids on scheduler events: refused too. *)
  expect_error "pre-pool version" "version"
    "{\"format\":\"no-trace-raw\",\"version\":1,\"events\":0}\n";
  (* Truncated body: header promises more events than the file holds. *)
  expect_error "truncation" "truncated"
    "{\"format\":\"no-trace-raw\",\"version\":2,\"events\":2}\n\
     {\"ts\":0.5,\"kind\":\"refusal\",\"target\":\"t\"}\n";
  (* Unknown event kind, with the line number. *)
  expect_error "unknown kind" "line 2"
    "{\"format\":\"no-trace-raw\",\"version\":2,\"events\":1}\n\
     {\"ts\":0.5,\"kind\":\"bogus\"}\n";
  (* Missing field. *)
  expect_error "missing field" "service_s"
    "{\"format\":\"no-trace-raw\",\"version\":2,\"events\":1}\n\
     {\"ts\":0.5,\"kind\":\"page-fault\",\"page\":3}\n";
  (* Not this format at all. *)
  expect_error "wrong format" "header" "{\"traceEvents\":[]}\n";
  expect_error "empty file" "header" "";
  (* Garbage mid-file. *)
  expect_error "garbage line" "line 2"
    "{\"format\":\"no-trace-raw\",\"version\":2,\"events\":1}\n\
     not json\n"

let tests =
  [
    Alcotest.test_case "hist: single value" `Quick test_hist_single_value;
    Alcotest.test_case "hist: exact quantiles" `Quick test_hist_exact_quantiles;
    Alcotest.test_case "hist: merge" `Quick test_hist_merge;
    Alcotest.test_case "span: golden tree" `Quick test_span_golden;
    Alcotest.test_case "span: collapsed flamegraph" `Quick test_flame_golden;
    Alcotest.test_case "span: failure shape" `Quick test_span_failure_shape;
    Alcotest.test_case "span: registry invariants" `Quick
      test_span_properties_registry;
    Alcotest.test_case "span: faulty-run invariants" `Quick
      test_span_properties_faulty;
    Alcotest.test_case "audit: chess" `Quick test_audit_chess;
    Alcotest.test_case "audit: 458.sjeng" `Quick test_audit_sjeng;
    Alcotest.test_case "audit: forced false positive" `Quick
      test_audit_forced_false_positive;
    Alcotest.test_case "trace-file: round trip" `Quick
      test_trace_file_round_trip;
    Alcotest.test_case "trace-file: deterministic" `Quick
      test_trace_file_deterministic;
    Alcotest.test_case "trace-file: diagnostics" `Quick
      test_trace_file_diagnostics;
  ]
