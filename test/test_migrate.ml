(* Checkpoint/migrate subsystem tests: image accounting, the enforced
   migration state machine, console exactly-once suppression, and —
   through full fleet simulations — the recovery guarantees: every
   canonical loss scenario completes by migration with the exact
   console transcript of an undisturbed run, seeded reruns are
   byte-identical, and migrating beats rollback + local replay on the
   recovered task's wall clock. *)

module Memory = No_mem.Memory
module Region = No_mem.Region
module Uva = No_mem.Uva
module Stack_alloc = No_mem.Stack_alloc
module Console = No_exec.Console
module Fs = No_exec.Fs
module Checkpoint = No_migrate.Checkpoint
module Migrator = No_migrate.Migrator
module Link = No_netsim.Link
module Fault_plan = No_fault.Plan
module Session = No_runtime.Session
module Server_load = No_sched.Server_load
module Pool = No_sched.Pool
module Sim = No_sched.Sim

(* {1 Checkpoint image} *)

let fresh_checkpoint ?(dirty_pages = [ 3; 7; 11 ]) ?(ledger_bytes = 12) () =
  let mem = Memory.create Memory.Home in
  let uva = Uva.create () in
  let console = Console.create () in
  let fs = Fs.create () in
  let stack = Stack_alloc.server () in
  Checkpoint.capture ~target:"w" ~dirty_pages
    ~resident_pages:(List.length dirty_pages) ~io_cursor:2 ~ledger_bytes
    ~mem:(Memory.snapshot mem) ~uva:(Uva.snapshot uva)
    ~console:(Console.mark console) ~fs:(Fs.snapshot fs)
    ~server_stack:(Stack_alloc.frame_mark stack)

let test_checkpoint_accounting () =
  let ck = fresh_checkpoint () in
  Alcotest.(check int) "dirty count" 3 (Checkpoint.dirty_count ck);
  Alcotest.(check int) "image bytes"
    (Checkpoint.header_bytes + 12
    + (3 * (Region.page_size + Checkpoint.page_header_bytes)))
    (Checkpoint.image_bytes ck);
  let empty = fresh_checkpoint ~dirty_pages:[] ~ledger_bytes:0 () in
  Alcotest.(check int) "empty image is just the header"
    Checkpoint.header_bytes
    (Checkpoint.image_bytes empty);
  Alcotest.(check bool) "pp renders" true
    (String.length (Fmt.str "%a" Checkpoint.pp ck) > 0)

(* A bigger image takes longer on the same link, and transfer time
   scales with the contention factor. *)
let test_transfer_time_scales () =
  let small = fresh_checkpoint ~dirty_pages:[ 1 ] () in
  let large = fresh_checkpoint ~dirty_pages:[ 1; 2; 3; 4; 5; 6 ] () in
  let time ck =
    let m = Migrator.create ~checkpoint:ck ~from_server:0 ~reason:"crash" in
    Migrator.transfer_time m ~link:Link.fast_wifi ~bw_factor:1.0
  in
  Alcotest.(check bool) "more pages, more wire time" true
    (time large > time small)

(* {1 Migration state machine} *)

let expect_illegal label f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: illegal transition accepted" label

let test_migrator_transitions () =
  let mk () =
    Migrator.create ~checkpoint:(fresh_checkpoint ()) ~from_server:0
      ~reason:"server crashed"
  in
  (* The happy path: Captured -> Shipped -> Resumed. *)
  let m = mk () in
  Alcotest.(check string) "starts captured" "captured" (Migrator.state_name m);
  Alcotest.(check bool) "not yet complete" false (Migrator.completed m);
  Migrator.ship m ~to_server:2 ~transfer_s:0.01;
  Alcotest.(check string) "shipped" "shipped" (Migrator.state_name m);
  Migrator.resume m;
  Alcotest.(check string) "resumed" "resumed" (Migrator.state_name m);
  Alcotest.(check bool) "complete" true (Migrator.completed m);
  (match Migrator.state m with
  | Migrator.Resumed { to_server } ->
    Alcotest.(check int) "destination" 2 to_server
  | _ -> Alcotest.fail "wrong terminal state");
  (* Terminal states accept nothing further. *)
  expect_illegal "ship after resume" (fun () ->
      Migrator.ship m ~to_server:1 ~transfer_s:0.0);
  expect_illegal "resume twice" (fun () -> Migrator.resume m);
  expect_illegal "abandon after resume" (fun () ->
      Migrator.abandon m "late");
  (* Resume requires a prior ship. *)
  let m = mk () in
  expect_illegal "resume before ship" (fun () -> Migrator.resume m);
  (* Abandonment is legal from either live state and is terminal. *)
  let m = mk () in
  Migrator.abandon m "no healthy member";
  Alcotest.(check string) "abandoned" "abandoned" (Migrator.state_name m);
  Alcotest.(check bool) "abandoned is not completed" false
    (Migrator.completed m);
  expect_illegal "ship after abandon" (fun () ->
      Migrator.ship m ~to_server:1 ~transfer_s:0.0)

(* {1 Console exactly-once suppression} *)

let test_console_suppression () =
  let c = Console.create () in
  Console.write_string c "prefix:";
  let m = Console.mark c in
  Console.write_string c "abc";
  Alcotest.(check int) "ledger holds delivered bytes" 3
    (Console.committed_since c m);
  (* Resume: the 3 committed bytes arm the suppression window. *)
  let suppress = Console.resume_at c m in
  Alcotest.(check int) "suppression armed" 3 suppress;
  Alcotest.(check int) "remaining" 3 (Console.suppressed_remaining c);
  (* Re-executed writes matching the ledger are verified and dropped,
     even split across calls. *)
  Console.write_string c "ab";
  Console.write_string c "c";
  Alcotest.(check int) "window consumed" 0 (Console.suppressed_remaining c);
  Alcotest.(check string) "no byte delivered twice" "prefix:abc"
    (Console.contents c);
  (* Post-window output flows normally. *)
  Console.write_string c "-tail";
  Alcotest.(check string) "new output appends" "prefix:abc-tail"
    (Console.contents c);
  (* A resumed run whose output diverges from the ledger is a bug the
     console refuses to hide. *)
  let c = Console.create () in
  Console.write_string c "x";
  let m = Console.mark c in
  Console.write_string c "ab";
  ignore (Console.resume_at c m : int);
  match Console.write_string c "aX" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "diverging resumed output accepted"

(* {1 Heterogeneous pool pricing} *)

let test_r_factor_pricing () =
  let fast = { Server_load.default with Server_load.r_factor = 2.0 } in
  Alcotest.(check (float 1e-9)) "r_factor scales pricing"
    (2.0 *. Server_load.r_scale Server_load.default ~occupancy:1)
    (Server_load.r_scale fast ~occupancy:1);
  Alcotest.(check (float 1e-9)) "composes under contention"
    (2.0 *. Server_load.r_scale Server_load.default ~occupancy:3)
    (Server_load.r_scale fast ~occupancy:3);
  (match Server_load.create { fast with Server_load.r_factor = 0.0 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "r_factor 0 accepted");
  (* The admission grant carries the member's own grade. *)
  let sv = Server_load.create fast in
  match Server_load.request sv ~now:0.0 ~target:"w" with
  | Session.Admitted { r_scale; _ } ->
    Alcotest.(check (float 1e-9)) "granted r_scale" 2.0 r_scale
  | _ -> Alcotest.fail "fresh server rejected"

(* {1 Scenario guarantees} *)

let run_scenario ?policy ~migrate name =
  let sc = Sim.scenario ?policy ~migrate name in
  Sim.run ~config:sc.Sim.sc_config sc.Sim.sc_clients

(* Seeded reruns of every migration scenario, both recovery modes,
   must render byte-identically — migration decisions are pure
   functions of simulated time. *)
let test_scenarios_deterministic () =
  List.iter
    (fun name ->
      List.iter
        (fun migrate ->
          let render () = Sim.render (run_scenario ~migrate name) in
          Alcotest.(check string)
            (Printf.sprintf "%s migrate=%b deterministic" name migrate)
            (render ()) (render ()))
        [ true; false ])
    Sim.scenario_names

(* A mid-flight crash with healthy siblings completes by migration:
   checkpoints captured, shipped, resumed — and no task pays the
   local-replay path. *)
let test_failover_completes_via_migration () =
  let r = run_scenario ~migrate:true "failover" in
  let ck, started, completed, replays = Sim.migration_totals r in
  Alcotest.(check bool) "captured a checkpoint" true (ck >= 1);
  Alcotest.(check bool) "started a migration" true (started >= 1);
  Alcotest.(check int) "every started migration resumed" started completed;
  Alcotest.(check int) "no local replay" 0 replays;
  (* With migration off, the same loss pays rollback + replay. *)
  let r_off = run_scenario ~migrate:false "failover" in
  let _, started_off, _, replays_off = Sim.migration_totals r_off in
  Alcotest.(check int) "replay mode never migrates" 0 started_off;
  Alcotest.(check bool) "replay mode replays" true (replays_off >= 1)

(* Exactly-once side effects: each client's console transcript under
   crash + migration is byte-identical to the same fleet run with no
   fault at all. *)
let test_migration_exactly_once () =
  let faulted = run_scenario ~migrate:true "failover" in
  let sc = Sim.scenario ~migrate:true "failover" in
  let clean_clients =
    List.map (fun cl -> { cl with Sim.cl_faults = None }) sc.Sim.sc_clients
  in
  let clean = Sim.run ~config:sc.Sim.sc_config clean_clients in
  List.iter2
    (fun (f : Sim.client_result) (c : Sim.client_result) ->
      Alcotest.(check string)
        (Printf.sprintf "client %d console" f.Sim.cr_id)
        c.Sim.cr_report.Session.rep_console
        f.Sim.cr_report.Session.rep_console)
    faulted.Sim.r_clients clean.Sim.r_clients

(* Rolling maintenance: drained members return, everything completes
   by migration, and the transcripts still match a quiet fleet. *)
let test_maintenance_migrates_and_matches () =
  let r = run_scenario ~migrate:true "maintenance" in
  let _, started, completed, replays = Sim.migration_totals r in
  Alcotest.(check bool) "maintenance migrates" true (started >= 1);
  Alcotest.(check int) "all resumed" started completed;
  Alcotest.(check int) "no replays" 0 replays;
  let sc = Sim.scenario ~migrate:true "maintenance" in
  let quiet_config = { sc.Sim.sc_config with Sim.s_schedule = [] } in
  let quiet = Sim.run ~config:quiet_config sc.Sim.sc_clients in
  List.iter2
    (fun (f : Sim.client_result) (c : Sim.client_result) ->
      Alcotest.(check string)
        (Printf.sprintf "client %d console" f.Sim.cr_id)
        c.Sim.cr_report.Session.rep_console
        f.Sim.cr_report.Session.rep_console)
    r.Sim.r_clients quiet.Sim.r_clients

(* The point of the subsystem: shipping the checkpoint to a healthy
   member beats re-running the task on the slow mobile core.  Compare
   the disturbed clients' wall clock across the two recovery modes of
   every scenario. *)
let recovered_wall (r : Sim.result) =
  List.fold_left
    (fun acc (cr : Sim.client_result) ->
      let rep = cr.Sim.cr_report in
      if rep.Session.rep_checkpoints > 0 || rep.Session.rep_fallbacks > 0
      then acc +. rep.Session.rep_total_s
      else acc)
    0.0 r.Sim.r_clients

let test_migration_beats_replay () =
  List.iter
    (fun name ->
      let on = recovered_wall (run_scenario ~migrate:true name) in
      let off = recovered_wall (run_scenario ~migrate:false name) in
      if not (on > 0.0 && off > on) then
        Alcotest.failf
          "%s: migrate %.4f s should beat replay %.4f s" name on off)
    Sim.scenario_names

(* {1 QCheck: checkpoint -> restore round trip}

   Whatever instant the granting server dies at, the migrated (or,
   when no sibling is healthy, replayed) fleet finishes with console
   transcripts byte-identical to an undisturbed run — side effects
   exactly once, progress cursors intact. *)
let prop_crash_roundtrip =
  QCheck.Test.make ~name:"crash at any instant round-trips the consoles"
    ~count:12
    QCheck.(pair (float_range 0.015 0.6) (int_range 0 3))
    (fun (crash_at, victim) ->
      let config =
        { Sim.default_config with Sim.s_servers = 3 }
      in
      let clients =
        Sim.make_clients ~stagger_s:0.02
          ~workloads:[ "164.gzip"; "429.mcf" ] ~count:4 ()
      in
      let crash =
        { Fault_plan.empty with Fault_plan.crash_at_s = Some crash_at }
      in
      let faulted =
        List.map
          (fun cl ->
            if cl.Sim.cl_id = victim then
              { cl with Sim.cl_faults = Some crash }
            else cl)
          clients
      in
      let disturbed = Sim.run ~config faulted in
      let quiet = Sim.run ~config clients in
      List.for_all2
        (fun (f : Sim.client_result) (c : Sim.client_result) ->
          String.equal f.Sim.cr_report.Session.rep_console
            c.Sim.cr_report.Session.rep_console)
        disturbed.Sim.r_clients quiet.Sim.r_clients)

let tests =
  [
    Alcotest.test_case "checkpoint: image accounting" `Quick
      test_checkpoint_accounting;
    Alcotest.test_case "checkpoint: transfer time scales" `Quick
      test_transfer_time_scales;
    Alcotest.test_case "migrator: enforced transitions" `Quick
      test_migrator_transitions;
    Alcotest.test_case "console: exactly-once suppression" `Quick
      test_console_suppression;
    Alcotest.test_case "pool: r_factor pricing" `Quick test_r_factor_pricing;
    Alcotest.test_case "scenarios: byte-identical reruns" `Quick
      test_scenarios_deterministic;
    Alcotest.test_case "failover: completes via migration" `Quick
      test_failover_completes_via_migration;
    Alcotest.test_case "failover: side effects exactly once" `Quick
      test_migration_exactly_once;
    Alcotest.test_case "maintenance: drains migrate and match" `Quick
      test_maintenance_migrates_and_matches;
    Alcotest.test_case "every scenario: migration beats replay" `Quick
      test_migration_beats_replay;
    QCheck_alcotest.to_alcotest prop_crash_roundtrip;
  ]
