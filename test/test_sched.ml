(* Multi-client scheduler tests: the Server_load admission/contention
   model in isolation, the session-level server handle driven by stub
   handles, and the discrete-event simulator's headline guarantees —
   byte-identical reruns, the worker-slot bound as a QCheck property
   over random fleets, and monotone speedup degradation with clients
   flipping back to local under saturation. *)

module Link = No_netsim.Link
module Session = No_runtime.Session
module Local_run = No_runtime.Local_run
module Registry = No_workloads.Registry
module Compiler = Native_offloader.Compiler
module Server_load = No_sched.Server_load
module Pool = No_sched.Pool
module Event_queue = No_sched.Event_queue
module Sim = No_sched.Sim

let close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9f, got %.9f" msg expected actual

(* {1 Server_load units} *)

let test_scale_curves () =
  let cfg = Server_load.default in
  close "r_scale exclusive" 1.0 (Server_load.r_scale cfg ~occupancy:1);
  close "bw_scale exclusive" 1.0 (Server_load.bw_scale cfg ~occupancy:1);
  close "r_scale closed form at occupancy 3"
    (1.0 /. (1.0 +. (cfg.Server_load.alpha *. 2.0)))
    (Server_load.r_scale cfg ~occupancy:3);
  for m = 1 to 7 do
    Alcotest.(check bool) "r_scale strictly decreasing" true
      (Server_load.r_scale cfg ~occupancy:(m + 1)
      < Server_load.r_scale cfg ~occupancy:m);
    Alcotest.(check bool) "bw_scale strictly decreasing" true
      (Server_load.bw_scale cfg ~occupancy:(m + 1)
      < Server_load.bw_scale cfg ~occupancy:m)
  done

(* One slot, queue of one: the driver protocol (request, run to
   release, next request) exercises admit, exact-wait queueing, and
   rejection in sequence. *)
let test_admission_queue_reject () =
  let cfg =
    { Server_load.default with Server_load.slots = 1; queue_cap = 1 }
  in
  let t = Server_load.create cfg in
  (match Server_load.request t ~now:0.0 ~target:"a" with
  | Session.Admitted { wait_s; occupancy; slot; _ } ->
    close "first request admits at once" 0.0 wait_s;
    Alcotest.(check int) "exclusive occupancy" 1 occupancy;
    Server_load.release t ~now:1.0 ~slot
  | Session.Rejected _ -> Alcotest.fail "first request rejected");
  (* Arrives at 0.5 while the slot is booked until 1.0: queued with
     the exact wait, not an estimate. *)
  (match Server_load.request t ~now:0.5 ~target:"b" with
  | Session.Admitted { wait_s; occupancy; slot; queue_depth; _ } ->
    close "FIFO wait is release - arrival" 0.5 wait_s;
    Alcotest.(check int) "queued request starts exclusive" 1 occupancy;
    Alcotest.(check int) "no earlier waiters" 0 queue_depth;
    Server_load.release t ~now:2.0 ~slot
  | Session.Rejected _ -> Alcotest.fail "queueable request rejected");
  (* Arrives at 0.6 behind the queued waiter: the queue is full. *)
  (match Server_load.request t ~now:0.6 ~target:"c" with
  | Session.Admitted _ -> Alcotest.fail "over-capacity request admitted"
  | Session.Rejected { queue_depth; _ } ->
    Alcotest.(check int) "rejected behind one waiter" 1 queue_depth);
  let st = Server_load.stats t in
  Alcotest.(check int) "admits" 2 st.Server_load.st_admits;
  Alcotest.(check int) "queued" 1 st.Server_load.st_queued;
  Alcotest.(check int) "rejects" 1 st.Server_load.st_rejects;
  Alcotest.(check int) "peak occupancy" 1 st.Server_load.st_peak_occupancy

let test_contention_pricing () =
  let cfg =
    { Server_load.default with Server_load.slots = 2; queue_cap = 0 }
  in
  let t = Server_load.create cfg in
  let r1, bw1 = Server_load.load t ~now:0.0 in
  close "idle server prices exclusive R" 1.0 r1;
  close "idle server prices exclusive BW" 1.0 bw1;
  (match Server_load.request t ~now:0.0 ~target:"a" with
  | Session.Admitted { slot; _ } -> Server_load.release t ~now:2.0 ~slot
  | Session.Rejected _ -> Alcotest.fail "first request rejected");
  (* A neighbour running until 2.0: the second slot admits at once but
     at occupancy 2, so both contention coefficients bite. *)
  match Server_load.request t ~now:0.1 ~target:"b" with
  | Session.Admitted { wait_s; occupancy; slot; r_scale; bw_scale; _ } ->
    close "free slot admits with no wait" 0.0 wait_s;
    Alcotest.(check int) "priced at occupancy 2" 2 occupancy;
    close "compute contention"
      (1.0 /. (1.0 +. cfg.Server_load.alpha))
      r_scale;
    close "link contention" (1.0 /. (1.0 +. cfg.Server_load.beta)) bw_scale;
    Server_load.release t ~now:1.5 ~slot
  | Session.Rejected _ -> Alcotest.fail "second slot rejected"

(* {1 Session under stub server handles} *)

let gzip =
  lazy
    (let entry = Option.get (Registry.by_name "164.gzip") in
     let compiled =
       Compiler.compile ~profile_script:entry.Registry.e_profile_script
         ~profile_files:entry.Registry.e_files
         ~eval_scale:entry.Registry.e_eval_scale
         (entry.Registry.e_build ())
     in
     (entry, compiled))

let run_session ?server_handle () =
  let entry, compiled = Lazy.force gzip in
  let config =
    match server_handle with
    | None -> Session.default_config ()
    | Some handle ->
      { (Session.default_config ()) with
        Session.server_handle = Some handle }
  in
  let session =
    Session.create ~config ~script:entry.Registry.e_profile_script
      ~files:entry.Registry.e_files compiled.Compiler.c_output
      ~seeds:compiled.Compiler.c_seeds
  in
  Session.run session

(* An uncontended always-admit handle prices every offload at
   occupancy 1 with unit scales — the session must be bit-for-bit the
   plain single-client run. *)
let test_stub_admit_transparent () =
  let handle =
    {
      Session.sh_load = (fun ~now:_ -> (1.0, 1.0));
      Session.sh_request =
        (fun ~now:_ ~target:_ ->
          Session.Admitted
            {
              server = 0;
              wait_s = 0.0;
              occupancy = 1;
              slot = 0;
              queue_depth = 0;
              r_scale = 1.0;
              bw_scale = 1.0;
            });
      Session.sh_release = (fun ~now:_ ~server:_ ~slot:_ -> ());
      Session.sh_volatile = false;
      Session.sh_interrupt = (fun ~now:_ ~server:_ -> None);
      Session.sh_migrate =
        (fun ~now:_ ~target:_ ~from_server:_ ~reason:_ ->
          Session.Rejected { server = 0; queue_depth = 0 });
    }
  in
  let plain = run_session () in
  let served = run_session ~server_handle:handle () in
  close "identical total time" plain.Session.rep_total_s
    served.Session.rep_total_s;
  Alcotest.(check string) "identical console" plain.Session.rep_console
    served.Session.rep_console;
  Alcotest.(check int) "same offload count" plain.Session.rep_offloads
    served.Session.rep_offloads;
  Alcotest.(check int) "nothing queued" 0 served.Session.rep_queued;
  Alcotest.(check int) "nothing rejected" 0 served.Session.rep_rejects

(* An always-reject handle: every admission bounces, every task runs
   on the mobile device, and the output still matches the local run. *)
let test_stub_reject_runs_local () =
  let handle =
    {
      Session.sh_load = (fun ~now:_ -> (1.0, 1.0));
      Session.sh_request =
        (fun ~now:_ ~target:_ ->
          Session.Rejected { server = 0; queue_depth = 0 });
      Session.sh_release = (fun ~now:_ ~server:_ ~slot:_ -> ());
      Session.sh_volatile = false;
      Session.sh_interrupt = (fun ~now:_ ~server:_ -> None);
      Session.sh_migrate =
        (fun ~now:_ ~target:_ ~from_server:_ ~reason:_ ->
          Session.Rejected { server = 0; queue_depth = 0 });
    }
  in
  let entry, compiled = Lazy.force gzip in
  let local =
    Local_run.run ~script:entry.Registry.e_profile_script
      ~files:entry.Registry.e_files compiled.Compiler.c_original
  in
  let served = run_session ~server_handle:handle () in
  Alcotest.(check int) "no offload completes" 0 served.Session.rep_offloads;
  Alcotest.(check bool) "every attempt rejected" true
    (served.Session.rep_rejects > 0);
  Alcotest.(check string) "console identical to local"
    local.Local_run.lr_console served.Session.rep_console

(* {1 Simulator guarantees} *)

let degraded_config ~slots ~queue =
  { Sim.default_config with
    Sim.s_load =
      { Server_load.default with Server_load.slots; queue_cap = queue } }

let test_sim_deterministic () =
  let run_once () =
    let clients =
      Sim.make_clients ~stagger_s:0.02
        ~workloads:[ "164.gzip"; "429.mcf" ] ~count:4 ()
    in
    Sim.render (Sim.run ~config:(degraded_config ~slots:1 ~queue:1) clients)
  in
  Alcotest.(check string) "byte-identical rerun" (run_once ()) (run_once ())

let test_sim_degrades_and_flips () =
  let geomeans =
    List.map
      (fun count ->
        let clients =
          Sim.make_clients ~stagger_s:0.02 ~workloads:[ "164.gzip" ] ~count
            ()
        in
        let result =
          Sim.run ~config:(degraded_config ~slots:2 ~queue:1) clients
        in
        (count, Sim.geomean_speedup result, Sim.flipped_local result))
      [ 1; 2; 4; 8 ]
  in
  let rec check_monotone = function
    | (c1, g1, _) :: ((c2, g2, _) :: _ as rest) ->
      Alcotest.(check bool)
        (Printf.sprintf
           "geomean speedup non-increasing (%d clients %.3f -> %d clients \
            %.3f)"
           c1 g1 c2 g2)
        true
        (g2 <= g1 +. 1e-9);
      check_monotone rest
    | _ -> ()
  in
  check_monotone geomeans;
  let _, _, flips_at_max = List.nth geomeans (List.length geomeans - 1) in
  Alcotest.(check bool) "saturation flips at least one client local" true
    (flips_at_max >= 1)

(* Maximum number of intervals overlapping at any instant, by sweeping
   the sorted start/end events. *)
let max_overlap intervals =
  let events =
    List.concat_map (fun (s, e) -> [ (s, 1); (e, -1) ]) intervals
    (* At equal instants process releases before admissions: a slot
       released at t is free for an admission at t. *)
    |> List.sort compare
  in
  let _, peak =
    List.fold_left
      (fun (cur, peak) (_t, d) ->
        let cur = cur + d in
        (cur, max cur peak))
      (0, 0) events
  in
  peak

(* Admitted intervals grouped by the server that granted them. *)
let intervals_by_server result =
  let by_server = Hashtbl.create 8 in
  List.iter
    (fun (srv, s, e) ->
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt by_server srv)
      in
      Hashtbl.replace by_server srv ((s, e) :: prev))
    (Sim.admitted_intervals result);
  Hashtbl.fold (fun srv iv acc -> (srv, iv) :: acc) by_server []

let prop_slot_bound =
  QCheck.Test.make
    ~name:"admitted offloads never exceed any server's slot bound" ~count:25
    QCheck.(
      pair
        (triple (int_range 1 6) (int_range 1 3) (int_range 0 2))
        (pair (int_range 1 3) (oneofl Pool.all_policies)))
    (fun ((count, slots, queue), (servers, policy)) ->
      let clients =
        Sim.make_clients ~stagger_s:0.03
          ~workloads:[ "164.gzip"; "429.mcf" ] ~count ()
      in
      let config =
        { (degraded_config ~slots ~queue) with
          Sim.s_servers = servers; Sim.s_policy = policy }
      in
      let result = Sim.run ~config clients in
      List.for_all
        (fun (_srv, iv) -> max_overlap iv <= slots)
        (intervals_by_server result))

(* {1 Event queue} *)

let test_event_queue_order () =
  let q = Event_queue.create () in
  (* Fifty scrambled pushes exercise growth past the initial
     capacity. *)
  let times = List.init 50 (fun i -> float_of_int (i * 37 mod 50)) in
  List.iter (fun t -> Event_queue.push q ~time:t ~id:0 t) times;
  Alcotest.(check int) "length" 50 (Event_queue.length q);
  let rec drain acc =
    match Event_queue.pop q with
    | None -> List.rev acc
    | Some t -> drain (t :: acc)
  in
  Alcotest.(check (list (float 1e-9)))
    "pops sorted by time" (List.sort compare times) (drain []);
  Alcotest.(check bool) "emptied" true (Event_queue.is_empty q)

let test_event_queue_tie_break () =
  let q = Event_queue.create () in
  (* One shared instant: order must fall back to client id, then to
     push order within an id. *)
  Event_queue.push q ~time:1.0 ~id:2 "c";
  Event_queue.push q ~time:1.0 ~id:1 "a";
  Event_queue.push q ~time:1.0 ~id:1 "b";
  Event_queue.push q ~time:0.5 ~id:9 "first";
  Alcotest.(check (option (float 1e-9)))
    "peek_time sees the minimum" (Some 0.5) (Event_queue.peek_time q);
  let rec drain acc =
    match Event_queue.pop q with
    | None -> List.rev acc
    | Some s -> drain (s :: acc)
  in
  Alcotest.(check (list string))
    "(time, id, seq) order" [ "first"; "a"; "b"; "c" ] (drain [])

(* {1 Pool routing} *)

let pool_config ~slots ~queue =
  { Server_load.default with Server_load.slots; queue_cap = queue }

let admit_exn pool ~client ~now =
  match Pool.request pool ~client ~now ~target:"t" with
  | Session.Admitted { server; slot; _ } -> (server, slot)
  | Session.Rejected _ -> Alcotest.fail "unexpected reject"

let test_pool_round_robin () =
  let pool =
    Pool.create ~policy:Pool.Round_robin ~servers:3
      (pool_config ~slots:2 ~queue:0)
  in
  let targets =
    List.init 6 (fun i ->
        fst (admit_exn pool ~client:i ~now:(float_of_int i)))
  in
  Alcotest.(check (list int)) "cursor cycles members" [ 0; 1; 2; 0; 1; 2 ]
    targets

let test_pool_least_loaded () =
  let pool =
    Pool.create ~policy:Pool.Least_loaded ~servers:3
      (pool_config ~slots:2 ~queue:0)
  in
  Alcotest.(check int) "empty pool ties to lowest id" 0
    (Pool.peek pool ~client:7 ~now:0.0);
  let s0, slot0 = admit_exn pool ~client:0 ~now:0.0 in
  Alcotest.(check int) "first admit on 0" 0 s0;
  let s1, _ = admit_exn pool ~client:1 ~now:0.0 in
  Alcotest.(check int) "routes around the busy member" 1 s1;
  let s2, _ = admit_exn pool ~client:2 ~now:0.0 in
  Alcotest.(check int) "then the last idle member" 2 s2;
  Pool.release pool ~server:0 ~now:1.0 ~slot:slot0;
  Alcotest.(check int) "released member preferred again" 0
    (Pool.peek pool ~client:3 ~now:1.0)

let test_pool_sticky () =
  let pool =
    Pool.create ~policy:Pool.Sticky ~servers:4 (pool_config ~slots:1 ~queue:0)
  in
  List.iter
    (fun client ->
      let first = Pool.peek pool ~client ~now:0.0 in
      Alcotest.(check bool) "member in range" true (first >= 0 && first < 4);
      Alcotest.(check int) "same client, same member" first
        (Pool.peek pool ~client ~now:0.5))
    [ 0; 1; 2; 3; 4; 5; 6; 7 ];
  let expected = Pool.peek pool ~client:5 ~now:0.0 in
  let s, _ = admit_exn pool ~client:5 ~now:0.0 in
  Alcotest.(check int) "request lands on the peeked member" expected s

let test_pool_policy_names () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Pool.policy_to_string p ^ " round-trips")
        true
        (Pool.policy_of_string (Pool.policy_to_string p) = Some p))
    Pool.all_policies;
  Alcotest.(check bool) "short form rr" true
    (Pool.policy_of_string "rr" = Some Pool.Round_robin);
  Alcotest.(check bool) "short form ll" true
    (Pool.policy_of_string "ll" = Some Pool.Least_loaded);
  Alcotest.(check bool) "unknown name refused" true
    (Pool.policy_of_string "bogus" = None)

(* {1 Policy flip} *)

let fleet_mix = [ "fleet.micro"; "fleet.micro"; "fleet.micro.heavy" ]

let fleet_geomean ~policy ~count =
  let clients =
    Sim.make_clients ~stagger_s:0.0005 ~workloads:fleet_mix ~count ()
  in
  let config =
    { (degraded_config ~slots:1 ~queue:1) with
      Sim.s_servers = 2;
      Sim.s_policy = policy;
      Sim.s_record_events = false }
  in
  Sim.geomean_speedup (Sim.run ~config clients)

let test_policy_flip () =
  (* Below saturation every client finds an idle member, so blind
     round-robin and least-loaded price identically. *)
  let rr = fleet_geomean ~policy:Pool.Round_robin ~count:2
  and ll = fleet_geomean ~policy:Pool.Least_loaded ~count:2 in
  close "identical below saturation" rr ll;
  (* Past saturation the light/heavy mix drains members unevenly;
     least-loaded routes around the backlog and pulls ahead. *)
  let rr = fleet_geomean ~policy:Pool.Round_robin ~count:60
  and ll = fleet_geomean ~policy:Pool.Least_loaded ~count:60 in
  Alcotest.(check bool)
    (Printf.sprintf
       "least-loaded beats round-robin past saturation (%.4f > %.4f)" ll rr)
    true
    (ll > rr +. 1e-6)

let test_policy_determinism () =
  List.iter
    (fun policy ->
      let run_once () =
        let clients =
          Sim.make_clients ~stagger_s:0.0005 ~workloads:fleet_mix ~count:20 ()
        in
        let config =
          { (degraded_config ~slots:1 ~queue:1) with
            Sim.s_servers = 2;
            Sim.s_policy = policy }
        in
        Sim.render (Sim.run ~config clients)
      in
      Alcotest.(check string)
        (Pool.policy_to_string policy ^ ": byte-identical rerun")
        (run_once ()) (run_once ()))
    Pool.all_policies

let tests =
  [
    Alcotest.test_case "server-load: contention curves" `Quick
      test_scale_curves;
    Alcotest.test_case "server-load: admit/queue/reject" `Quick
      test_admission_queue_reject;
    Alcotest.test_case "server-load: occupancy pricing" `Quick
      test_contention_pricing;
    Alcotest.test_case "session: always-admit handle is transparent" `Quick
      test_stub_admit_transparent;
    Alcotest.test_case "session: always-reject handle runs local" `Quick
      test_stub_reject_runs_local;
    Alcotest.test_case "event-queue: heap order" `Quick
      test_event_queue_order;
    Alcotest.test_case "event-queue: deterministic tie-break" `Quick
      test_event_queue_tie_break;
    Alcotest.test_case "pool: round-robin cursor" `Quick
      test_pool_round_robin;
    Alcotest.test_case "pool: least-loaded routing" `Quick
      test_pool_least_loaded;
    Alcotest.test_case "pool: sticky hashing" `Quick test_pool_sticky;
    Alcotest.test_case "pool: policy names" `Quick test_pool_policy_names;
    Alcotest.test_case "sim: deterministic rerun" `Quick
      test_sim_deterministic;
    Alcotest.test_case "sim: policy flip past saturation" `Quick
      test_policy_flip;
    Alcotest.test_case "sim: per-policy byte-identical reruns" `Quick
      test_policy_determinism;
    Alcotest.test_case "sim: degradation and local flips" `Quick
      test_sim_degrades_and_flips;
    QCheck_alcotest.to_alcotest prop_slot_bound;
  ]
