(* Multi-client scheduler tests: the Server_load admission/contention
   model in isolation, the session-level server handle driven by stub
   handles, and the discrete-event simulator's headline guarantees —
   byte-identical reruns, the worker-slot bound as a QCheck property
   over random fleets, and monotone speedup degradation with clients
   flipping back to local under saturation. *)

module Link = No_netsim.Link
module Session = No_runtime.Session
module Local_run = No_runtime.Local_run
module Registry = No_workloads.Registry
module Compiler = Native_offloader.Compiler
module Server_load = No_sched.Server_load
module Sim = No_sched.Sim

let close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9f, got %.9f" msg expected actual

(* {1 Server_load units} *)

let test_scale_curves () =
  let cfg = Server_load.default in
  close "r_scale exclusive" 1.0 (Server_load.r_scale cfg ~occupancy:1);
  close "bw_scale exclusive" 1.0 (Server_load.bw_scale cfg ~occupancy:1);
  close "r_scale closed form at occupancy 3"
    (1.0 /. (1.0 +. (cfg.Server_load.alpha *. 2.0)))
    (Server_load.r_scale cfg ~occupancy:3);
  for m = 1 to 7 do
    Alcotest.(check bool) "r_scale strictly decreasing" true
      (Server_load.r_scale cfg ~occupancy:(m + 1)
      < Server_load.r_scale cfg ~occupancy:m);
    Alcotest.(check bool) "bw_scale strictly decreasing" true
      (Server_load.bw_scale cfg ~occupancy:(m + 1)
      < Server_load.bw_scale cfg ~occupancy:m)
  done

(* One slot, queue of one: the driver protocol (request, run to
   release, next request) exercises admit, exact-wait queueing, and
   rejection in sequence. *)
let test_admission_queue_reject () =
  let cfg =
    { Server_load.default with Server_load.slots = 1; queue_cap = 1 }
  in
  let t = Server_load.create cfg in
  (match Server_load.request t ~now:0.0 ~target:"a" with
  | Session.Admitted { wait_s; occupancy; slot; _ } ->
    close "first request admits at once" 0.0 wait_s;
    Alcotest.(check int) "exclusive occupancy" 1 occupancy;
    Server_load.release t ~now:1.0 ~slot
  | Session.Rejected _ -> Alcotest.fail "first request rejected");
  (* Arrives at 0.5 while the slot is booked until 1.0: queued with
     the exact wait, not an estimate. *)
  (match Server_load.request t ~now:0.5 ~target:"b" with
  | Session.Admitted { wait_s; occupancy; slot; queue_depth; _ } ->
    close "FIFO wait is release - arrival" 0.5 wait_s;
    Alcotest.(check int) "queued request starts exclusive" 1 occupancy;
    Alcotest.(check int) "no earlier waiters" 0 queue_depth;
    Server_load.release t ~now:2.0 ~slot
  | Session.Rejected _ -> Alcotest.fail "queueable request rejected");
  (* Arrives at 0.6 behind the queued waiter: the queue is full. *)
  (match Server_load.request t ~now:0.6 ~target:"c" with
  | Session.Admitted _ -> Alcotest.fail "over-capacity request admitted"
  | Session.Rejected { queue_depth } ->
    Alcotest.(check int) "rejected behind one waiter" 1 queue_depth);
  let st = Server_load.stats t in
  Alcotest.(check int) "admits" 2 st.Server_load.st_admits;
  Alcotest.(check int) "queued" 1 st.Server_load.st_queued;
  Alcotest.(check int) "rejects" 1 st.Server_load.st_rejects;
  Alcotest.(check int) "peak occupancy" 1 st.Server_load.st_peak_occupancy

let test_contention_pricing () =
  let cfg =
    { Server_load.default with Server_load.slots = 2; queue_cap = 0 }
  in
  let t = Server_load.create cfg in
  let r1, bw1 = Server_load.load t ~now:0.0 in
  close "idle server prices exclusive R" 1.0 r1;
  close "idle server prices exclusive BW" 1.0 bw1;
  (match Server_load.request t ~now:0.0 ~target:"a" with
  | Session.Admitted { slot; _ } -> Server_load.release t ~now:2.0 ~slot
  | Session.Rejected _ -> Alcotest.fail "first request rejected");
  (* A neighbour running until 2.0: the second slot admits at once but
     at occupancy 2, so both contention coefficients bite. *)
  match Server_load.request t ~now:0.1 ~target:"b" with
  | Session.Admitted { wait_s; occupancy; slot; r_scale; bw_scale; _ } ->
    close "free slot admits with no wait" 0.0 wait_s;
    Alcotest.(check int) "priced at occupancy 2" 2 occupancy;
    close "compute contention"
      (1.0 /. (1.0 +. cfg.Server_load.alpha))
      r_scale;
    close "link contention" (1.0 /. (1.0 +. cfg.Server_load.beta)) bw_scale;
    Server_load.release t ~now:1.5 ~slot
  | Session.Rejected _ -> Alcotest.fail "second slot rejected"

(* {1 Session under stub server handles} *)

let gzip =
  lazy
    (let entry = Option.get (Registry.by_name "164.gzip") in
     let compiled =
       Compiler.compile ~profile_script:entry.Registry.e_profile_script
         ~profile_files:entry.Registry.e_files
         ~eval_scale:entry.Registry.e_eval_scale
         (entry.Registry.e_build ())
     in
     (entry, compiled))

let run_session ?server_handle () =
  let entry, compiled = Lazy.force gzip in
  let config =
    match server_handle with
    | None -> Session.default_config ()
    | Some handle ->
      { (Session.default_config ()) with
        Session.server_handle = Some handle }
  in
  let session =
    Session.create ~config ~script:entry.Registry.e_profile_script
      ~files:entry.Registry.e_files compiled.Compiler.c_output
      ~seeds:compiled.Compiler.c_seeds
  in
  Session.run session

(* An uncontended always-admit handle prices every offload at
   occupancy 1 with unit scales — the session must be bit-for-bit the
   plain single-client run. *)
let test_stub_admit_transparent () =
  let handle =
    {
      Session.sh_load = (fun ~now:_ -> (1.0, 1.0));
      Session.sh_request =
        (fun ~now:_ ~target:_ ->
          Session.Admitted
            {
              wait_s = 0.0;
              occupancy = 1;
              slot = 0;
              queue_depth = 0;
              r_scale = 1.0;
              bw_scale = 1.0;
            });
      Session.sh_release = (fun ~now:_ ~slot:_ -> ());
    }
  in
  let plain = run_session () in
  let served = run_session ~server_handle:handle () in
  close "identical total time" plain.Session.rep_total_s
    served.Session.rep_total_s;
  Alcotest.(check string) "identical console" plain.Session.rep_console
    served.Session.rep_console;
  Alcotest.(check int) "same offload count" plain.Session.rep_offloads
    served.Session.rep_offloads;
  Alcotest.(check int) "nothing queued" 0 served.Session.rep_queued;
  Alcotest.(check int) "nothing rejected" 0 served.Session.rep_rejects

(* An always-reject handle: every admission bounces, every task runs
   on the mobile device, and the output still matches the local run. *)
let test_stub_reject_runs_local () =
  let handle =
    {
      Session.sh_load = (fun ~now:_ -> (1.0, 1.0));
      Session.sh_request =
        (fun ~now:_ ~target:_ -> Session.Rejected { queue_depth = 0 });
      Session.sh_release = (fun ~now:_ ~slot:_ -> ());
    }
  in
  let entry, compiled = Lazy.force gzip in
  let local =
    Local_run.run ~script:entry.Registry.e_profile_script
      ~files:entry.Registry.e_files compiled.Compiler.c_original
  in
  let served = run_session ~server_handle:handle () in
  Alcotest.(check int) "no offload completes" 0 served.Session.rep_offloads;
  Alcotest.(check bool) "every attempt rejected" true
    (served.Session.rep_rejects > 0);
  Alcotest.(check string) "console identical to local"
    local.Local_run.lr_console served.Session.rep_console

(* {1 Simulator guarantees} *)

let degraded_config ~slots ~queue =
  { Sim.default_config with
    Sim.s_load =
      { Server_load.default with Server_load.slots; queue_cap = queue } }

let test_sim_deterministic () =
  let run_once () =
    let clients =
      Sim.make_clients ~stagger_s:0.02
        ~workloads:[ "164.gzip"; "429.mcf" ] ~count:4 ()
    in
    Sim.render (Sim.run ~config:(degraded_config ~slots:1 ~queue:1) clients)
  in
  Alcotest.(check string) "byte-identical rerun" (run_once ()) (run_once ())

let test_sim_degrades_and_flips () =
  let geomeans =
    List.map
      (fun count ->
        let clients =
          Sim.make_clients ~stagger_s:0.02 ~workloads:[ "164.gzip" ] ~count
            ()
        in
        let result =
          Sim.run ~config:(degraded_config ~slots:2 ~queue:1) clients
        in
        (count, Sim.geomean_speedup result, Sim.flipped_local result))
      [ 1; 2; 4; 8 ]
  in
  let rec check_monotone = function
    | (c1, g1, _) :: ((c2, g2, _) :: _ as rest) ->
      Alcotest.(check bool)
        (Printf.sprintf
           "geomean speedup non-increasing (%d clients %.3f -> %d clients \
            %.3f)"
           c1 g1 c2 g2)
        true
        (g2 <= g1 +. 1e-9);
      check_monotone rest
    | _ -> ()
  in
  check_monotone geomeans;
  let _, _, flips_at_max = List.nth geomeans (List.length geomeans - 1) in
  Alcotest.(check bool) "saturation flips at least one client local" true
    (flips_at_max >= 1)

(* Maximum number of intervals overlapping at any instant, by sweeping
   the sorted start/end events. *)
let max_overlap intervals =
  let events =
    List.concat_map (fun (s, e) -> [ (s, 1); (e, -1) ]) intervals
    (* At equal instants process releases before admissions: a slot
       released at t is free for an admission at t. *)
    |> List.sort compare
  in
  let _, peak =
    List.fold_left
      (fun (cur, peak) (_t, d) ->
        let cur = cur + d in
        (cur, max cur peak))
      (0, 0) events
  in
  peak

let prop_slot_bound =
  QCheck.Test.make ~name:"admitted offloads never exceed the slot bound"
    ~count:25
    QCheck.(
      triple (int_range 1 6) (int_range 1 3) (int_range 0 2))
    (fun (count, slots, queue) ->
      let clients =
        Sim.make_clients ~stagger_s:0.03
          ~workloads:[ "164.gzip"; "429.mcf" ] ~count ()
      in
      let result = Sim.run ~config:(degraded_config ~slots ~queue) clients in
      let intervals = Sim.admitted_intervals result in
      max_overlap intervals <= slots)

let tests =
  [
    Alcotest.test_case "server-load: contention curves" `Quick
      test_scale_curves;
    Alcotest.test_case "server-load: admit/queue/reject" `Quick
      test_admission_queue_reject;
    Alcotest.test_case "server-load: occupancy pricing" `Quick
      test_contention_pricing;
    Alcotest.test_case "session: always-admit handle is transparent" `Quick
      test_stub_admit_transparent;
    Alcotest.test_case "session: always-reject handle runs local" `Quick
      test_stub_reject_runs_local;
    Alcotest.test_case "sim: deterministic rerun" `Quick
      test_sim_deterministic;
    Alcotest.test_case "sim: degradation and local flips" `Quick
      test_sim_degrades_and_flips;
    QCheck_alcotest.to_alcotest prop_slot_bound;
  ]
