(* Network simulator tests: link arithmetic, the LZ77 compressor
   (QCheck roundtrip), and channel batching/compression accounting. *)

module Link = No_netsim.Link
module Compress = No_netsim.Compress
module Channel = No_netsim.Channel

let test_link_math () =
  let slow = Link.slow_wifi and fast = Link.fast_wifi in
  Alcotest.(check bool) "fast beats slow" true
    (Link.effective_bps fast > Link.effective_bps slow);
  let t1 = Link.transfer_time slow ~bytes:0 in
  Alcotest.(check bool) "latency floor" true (t1 > 0.0);
  let t2 = Link.transfer_time slow ~bytes:100_000 in
  Alcotest.(check bool) "bytes cost time" true (t2 > t1);
  let rt = Link.round_trip_time slow ~req:100 ~resp:100 in
  Alcotest.(check bool) "round trip = two transfers" true
    (abs_float (rt -. (2.0 *. Link.transfer_time slow ~bytes:100)) < 1e-9)

let test_compress_runs () =
  let data = Bytes.make 4096 'a' in
  let packed = Compress.compress data in
  Alcotest.(check bool)
    (Printf.sprintf "runs compress well (%d -> %d)" 4096
       (Bytes.length packed))
    true
    (Bytes.length packed < 100);
  Alcotest.(check bytes) "roundtrip" data (Compress.decompress packed)

let test_compress_incompressible () =
  let data =
    Bytes.init 4096 (fun i ->
        Char.chr ((i * 197 + (i lsr 3 * 89) + (i * i mod 251)) land 0xff))
  in
  let packed = Compress.compress data in
  Alcotest.(check bytes) "roundtrip" data (Compress.decompress packed);
  Alcotest.(check bool) "no catastrophic expansion" true
    (Bytes.length packed < Bytes.length data * 2)

let prop_compress_roundtrip =
  QCheck.Test.make ~name:"compress/decompress roundtrip" ~count:200
    QCheck.(string_of_size (Gen.int_range 0 2000))
    (fun s ->
      let data = Bytes.of_string s in
      Bytes.equal data (Compress.decompress (Compress.compress data)))

(* Overlapping matches (dist < len) are the classic decoder pitfall. *)
let test_compress_overlap () =
  let data = Bytes.of_string ("ab" ^ String.concat "" (List.init 100 (fun _ -> "ab"))) in
  Alcotest.(check bytes) "overlapping copy" data
    (Compress.decompress (Compress.compress data))

let test_corrupt_rejected () =
  match Compress.decompress (Bytes.of_string "\x07garbage") with
  | _ -> Alcotest.fail "expected Corrupt"
  | exception Compress.Corrupt _ -> ()

let test_channel_batching () =
  let ch = Channel.create Link.fast_wifi Channel.To_server in
  Channel.send ch (Bytes.create 100);
  Channel.send ch (Bytes.create 200);
  Alcotest.(check int) "pending" 300 (Channel.pending_bytes ch);
  let t = Channel.flush ch in
  Alcotest.(check bool) "flush costs time" true (t > 0.0);
  let stats = Channel.stats ch in
  Alcotest.(check int) "two messages" 2 stats.Channel.messages;
  Alcotest.(check int) "one physical flush" 1 stats.Channel.flushes;
  Alcotest.(check int) "raw bytes" 300 stats.Channel.raw_bytes;
  (* batching amortizes latency: two separate flushes cost more *)
  let ch2 = Channel.create Link.fast_wifi Channel.To_server in
  let t2 =
    Channel.send_now ch2 (Bytes.create 100)
    +. Channel.send_now ch2 (Bytes.create 200)
  in
  Alcotest.(check bool) "batching wins" true (t < t2)

let test_channel_compression () =
  let compressible = Bytes.make 8192 'x' in
  let ch = Channel.create ~compress:true Link.slow_wifi Channel.To_mobile in
  Channel.send ch compressible;
  ignore (Channel.flush ch);
  let stats = Channel.stats ch in
  Alcotest.(check bool) "wire < raw" true
    (stats.Channel.wire_bytes < stats.Channel.raw_bytes);
  Alcotest.(check bool) "codec time charged" true (stats.Channel.codec_time > 0.0);
  Alcotest.(check bool) "ratio < 0.1" true (Channel.compression_ratio ch < 0.1)

let test_empty_flush_noop () =
  (* Flushing an empty buffer is a strict no-op: no time, no stats,
     no trace event. *)
  let ring = No_trace.Trace.Ring.create ~capacity:16 () in
  let ch =
    Channel.create ~sink:(No_trace.Trace.Ring.sink ring) Link.fast_wifi
      Channel.To_server
  in
  Alcotest.(check (float 0.0)) "no time" 0.0 (Channel.flush ch);
  let stats = Channel.stats ch in
  Alcotest.(check int) "no physical flush" 0 stats.Channel.flushes;
  Alcotest.(check int) "no raw bytes" 0 stats.Channel.raw_bytes;
  Alcotest.(check int) "no event" 0 (No_trace.Trace.Ring.length ring);
  (* ... and a real flush afterwards behaves normally. *)
  Channel.send ch (Bytes.create 64);
  ignore (Channel.flush ch);
  Alcotest.(check int) "one flush after send" 1 (Channel.stats ch).Channel.flushes;
  Alcotest.(check int) "one event after send" 1 (No_trace.Trace.Ring.length ring)

let test_wire_never_exceeds_raw_event () =
  (* Compression can only shrink what goes on the wire; both the
     stats and the emitted Flush event must agree. *)
  let ring = No_trace.Trace.Ring.create ~capacity:16 () in
  let payloads =
    [ Bytes.make 8192 'x';  (* highly compressible *)
      Bytes.init 4096 (fun i -> Char.chr ((i * 131 + (i * i mod 253)) land 0xff));
      Bytes.create 1 ]      (* tiny: headers could expand it *)
  in
  List.iter
    (fun payload ->
      let ch =
        Channel.create ~compress:true ~sink:(No_trace.Trace.Ring.sink ring)
          Link.slow_wifi Channel.To_mobile
      in
      Channel.send ch payload;
      ignore (Channel.flush ch);
      let stats = Channel.stats ch in
      Alcotest.(check bool) "stats: wire <= raw" true
        (stats.Channel.wire_bytes <= stats.Channel.raw_bytes))
    payloads;
  let events = No_trace.Trace.Ring.events ring in
  Alcotest.(check int) "one event per flush" (List.length payloads)
    (List.length events);
  List.iter
    (fun (_, ev) ->
      match ev with
      | No_trace.Trace.Flush { raw_bytes; wire_bytes; _ } ->
        Alcotest.(check bool) "event: wire <= raw" true
          (wire_bytes <= raw_bytes)
      | _ -> Alcotest.fail "expected Flush event")
    events

let test_channel_compression_fallback () =
  (* Incompressible payload: the channel sends raw rather than
     expanding. *)
  let noise =
    Bytes.init 4096 (fun i -> Char.chr ((i * 131 + (i * i mod 253)) land 0xff))
  in
  let ch = Channel.create ~compress:true Link.slow_wifi Channel.To_mobile in
  Channel.send ch noise;
  ignore (Channel.flush ch);
  let stats = Channel.stats ch in
  Alcotest.(check bool) "no expansion on wire" true
    (stats.Channel.wire_bytes <= stats.Channel.raw_bytes)

let tests =
  [
    Alcotest.test_case "link math" `Quick test_link_math;
    Alcotest.test_case "compress runs" `Quick test_compress_runs;
    Alcotest.test_case "compress incompressible" `Quick
      test_compress_incompressible;
    QCheck_alcotest.to_alcotest prop_compress_roundtrip;
    Alcotest.test_case "compress overlap" `Quick test_compress_overlap;
    Alcotest.test_case "corrupt rejected" `Quick test_corrupt_rejected;
    Alcotest.test_case "channel batching" `Quick test_channel_batching;
    Alcotest.test_case "channel compression" `Quick test_channel_compression;
    Alcotest.test_case "compression fallback" `Quick
      test_channel_compression_fallback;
    Alcotest.test_case "empty flush is a no-op" `Quick test_empty_flush_noop;
    Alcotest.test_case "wire bytes never exceed raw" `Quick
      test_wire_never_exceeds_raw_event;
  ]
