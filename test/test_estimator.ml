(* Estimator tests: Equation 1 arithmetic (including the published
   Table 3 example), target selection with subsumption, and the
   dynamic run-time estimator. *)

module B = No_ir.Builder
module Ty = No_ir.Ty
module Equation = No_estimator.Equation
module Dynamic = No_estimator.Dynamic_estimate
module Predictor = No_estimator.Bandwidth_predictor
module Static = No_estimator.Static_estimate
module Callgraph = No_analysis.Callgraph

(* The paper's Table 3 works Equation 1 with R = 5 and BW = 80 Mbps
   on the chess profile: getAITurn (26 s, 1 invocation... the table
   lists 3 invocations with total time; we reproduce the arithmetic
   on the published numbers). *)
let test_equation_table3_numbers () =
  let mb = 1024 * 1024 in
  (* getAITurn: Tm=26, 12 MB, 3 invocations -> Tideal 20.8, Tc 7.2+,
     gain positive *)
  let b =
    Equation.evaluate
      { Equation.tm_s = 26.0; r = 5.0; mem_bytes = 12 * mb; bw_bps = 80e6;
        invocations = 3 }
  in
  Alcotest.(check (float 0.1)) "Tideal getAITurn" 20.8 b.Equation.ideal_gain_s;
  Alcotest.(check (float 0.2)) "Tc getAITurn" 7.55 b.Equation.comm_cost_s;
  Alcotest.(check bool) "getAITurn profitable" true (b.Equation.gain_s > 0.0);
  (* for_j: same times but 36 invocations -> hugely negative *)
  let worse =
    Equation.evaluate
      { Equation.tm_s = 25.0; r = 5.0; mem_bytes = 12 * mb; bw_bps = 80e6;
        invocations = 36 }
  in
  Alcotest.(check bool) "for_j unprofitable" true (worse.Equation.gain_s < 0.0);
  (* getPlayerTurn: small time, 10 MB, 3 invocations -> negative *)
  let player =
    Equation.evaluate
      { Equation.tm_s = 1.5; r = 5.0; mem_bytes = 10 * mb; bw_bps = 80e6;
        invocations = 3 }
  in
  Alcotest.(check bool) "getPlayerTurn unprofitable" true
    (player.Equation.gain_s < 0.0)

let test_equation_monotonicity () =
  let base =
    { Equation.tm_s = 10.0; r = 5.0; mem_bytes = 1 lsl 20; bw_bps = 10e6;
      invocations = 1 }
  in
  let gain i = (Equation.evaluate i).Equation.gain_s in
  Alcotest.(check bool) "more bandwidth helps" true
    (gain { base with Equation.bw_bps = 100e6 } > gain base);
  Alcotest.(check bool) "more memory hurts" true
    (gain { base with Equation.mem_bytes = 1 lsl 24 } < gain base);
  Alcotest.(check bool) "more invocations hurt" true
    (gain { base with Equation.invocations = 10 } < gain base);
  Alcotest.(check bool) "faster server helps" true
    (gain { base with Equation.r = 10.0 } > gain base);
  (match Equation.evaluate { base with Equation.r = 0.0 } with
  | _ -> Alcotest.fail "expected invalid ratio"
  | exception Invalid_argument _ -> ())

(* Subsumption: if caller and callee are both profitable, only the
   caller is selected. *)
let test_selection_subsumption () =
  let t = B.create "subsume" in
  let _ =
    B.func t "inner" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        B.ret fb (Some (B.i64 1)))
  in
  let _ =
    B.func t "outer" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        B.ret fb (Some (B.call fb "inner" [])))
  in
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        B.ret fb (Some (B.call fb "outer" [])))
  in
  let m = B.finish t in
  let mk name time =
    {
      Static.row_name = name;
      Static.row_kind = No_profiler.Profiler.Func;
      Static.row_time_s = time;
      Static.row_invocations = 1;
      Static.row_mem_bytes = 4096;
      Static.row_filtered = None;
      Static.row_breakdown =
        Some
          (Equation.evaluate
             { Equation.tm_s = time; r = 5.0; mem_bytes = 4096;
               bw_bps = 50e6; invocations = 1 });
      Static.row_selected = false;
    }
  in
  let result = Static.select m [ mk "outer" 10.0; mk "inner" 9.0 ] in
  Alcotest.(check (list string)) "outer only" [ "outer" ]
    result.Static.targets

let test_dynamic_estimator () =
  let d = Dynamic.create ~r:5.0 ~bw_bps:50e6 in
  Dynamic.seed d ~name:"kernel" ~profile_time_s:10.0;
  Alcotest.(check bool) "small footprint offloads" true
    (Dynamic.should_offload d ~name:"kernel" ~mem_bytes:(1 lsl 16));
  Alcotest.(check bool) "huge footprint refuses" false
    (Dynamic.should_offload d ~name:"kernel" ~mem_bytes:(1 lsl 30));
  (* bandwidth collapse flips the decision *)
  Dynamic.set_bandwidth d 1e4;
  Alcotest.(check bool) "slow network refuses" false
    (Dynamic.should_offload d ~name:"kernel" ~mem_bytes:(1 lsl 16));
  Dynamic.set_bandwidth d 50e6;
  (* local observations refine Tm *)
  Dynamic.observe_local d ~name:"cold" ~elapsed_s:0.0001;
  Alcotest.(check bool) "tiny task refuses" false
    (Dynamic.should_offload d ~name:"cold" ~mem_bytes:(1 lsl 24));
  (* forcing *)
  Dynamic.force d (Some true);
  Alcotest.(check bool) "forced offload" true
    (Dynamic.should_offload d ~name:"cold" ~mem_bytes:(1 lsl 30));
  Dynamic.force d (Some false);
  Alcotest.(check bool) "forced local" false
    (Dynamic.should_offload d ~name:"kernel" ~mem_bytes:64)

(* Abrupt mid-session bandwidth collapse: the predictor starts with a
   stale healthy-link belief, learns only from observed transfers, and
   must converge far enough that Equation 1 flips from offload to
   refuse — the paper's "unexpected slow network" scenario driven
   through the NWSLite-style feedback loop rather than configuration. *)
let test_predictor_collapse_flips_decision () =
  let pred = Predictor.create ~initial_bps:80e6 () in
  let d = Dynamic.create ~r:5.0 ~bw_bps:(Predictor.predict_bps pred) in
  (* Table 3's getAITurn: Tm = 26 s, 12 MB footprint — comfortably
     profitable at 80 Mbps. *)
  Dynamic.seed d ~name:"getAITurn" ~profile_time_s:26.0;
  let mem = 12 * 1024 * 1024 in
  Alcotest.(check bool) "healthy link offloads" true
    (Dynamic.should_offload d ~name:"getAITurn" ~mem_bytes:mem);
  (* The link drops to 1 Mbps; each subsequent transfer is observed at
     the real rate and folded into the belief. *)
  let actual_bps = 1e6 in
  let beliefs = ref [ Predictor.predict_bps pred ] in
  for _ = 1 to 40 do
    let bytes = 256 * 1024 in
    Predictor.observe pred ~bytes
      ~seconds:(float_of_int bytes *. 8.0 /. actual_bps);
    Dynamic.set_bandwidth d (Predictor.predict_bps pred);
    beliefs := Predictor.predict_bps pred :: !beliefs
  done;
  let final = Predictor.predict_bps pred in
  Alcotest.(check bool) "belief converged near the collapsed rate" true
    (final >= 0.8 *. actual_bps && final <= 1.2 *. actual_bps);
  let rec non_increasing = function
    (* newest first: each belief must be <= its predecessor *)
    | a :: (b :: _ as rest) -> a <= b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "belief decays monotonically on a one-way collapse"
    true
    (non_increasing !beliefs);
  Alcotest.(check bool) "Equation 1 now refuses" false
    (Dynamic.should_offload d ~name:"getAITurn" ~mem_bytes:mem)

let tests =
  [
    Alcotest.test_case "equation: table 3 numbers" `Quick
      test_equation_table3_numbers;
    Alcotest.test_case "bandwidth collapse flips decision" `Quick
      test_predictor_collapse_flips_decision;
    Alcotest.test_case "equation: monotonicity" `Quick
      test_equation_monotonicity;
    Alcotest.test_case "selection subsumption" `Quick
      test_selection_subsumption;
    Alcotest.test_case "dynamic estimator" `Quick test_dynamic_estimator;
  ]
