(* Self-profiler tests.  The load-bearing guarantee is transparency:
   enabling the profiler must never perturb simulated results — same
   report record, same event stream (timestamps and wire bytes
   included), same fleet render — because the zones wrap host-side
   bookkeeping only.  The rest checks the accounting itself: disabled
   mode counts nothing, nesting attributes to the innermost zone,
   exceptional unwinds are tolerated and counted, and the OpenMetrics
   exposition is byte-stable. *)

module Selfprof = No_selfprof.Selfprof
module Openmetrics = No_obs.Openmetrics

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0
module Trace = No_trace.Trace
module Session = No_runtime.Session
module Registry = No_workloads.Registry
module Compiler = Native_offloader.Compiler
module Sim = No_sched.Sim
module Pool = No_sched.Pool
module Server_load = No_sched.Server_load

let compile_entry entry =
  Compiler.compile ~profile_script:entry.Registry.e_profile_script
    ~profile_files:entry.Registry.e_files
    ~eval_scale:entry.Registry.e_eval_scale
    (entry.Registry.e_build ())

(* Run one offload session against a ring sink and fingerprint it:
   the full report record plus the raw event stream. *)
let run_fingerprint entry compiled =
  let ring = Trace.Ring.create ~capacity:(1 lsl 20) () in
  let config =
    { (Session.default_config ()) with
      Session.trace = Trace.Ring.sink ring }
  in
  let session =
    Session.create ~config ~script:entry.Registry.e_profile_script
      ~files:entry.Registry.e_files compiled.Compiler.c_output
      ~seeds:compiled.Compiler.c_seeds
  in
  let r = Session.run session in
  (r, Trace.Ring.events ring)

(* {1 Transparency: sessions} *)

let check_session_transparent name =
  let entry = Option.get (Registry.by_name name) in
  let compiled = compile_entry entry in
  Selfprof.disable ();
  Selfprof.reset ();
  let r_off, ev_off = run_fingerprint entry compiled in
  Selfprof.enable ();
  Selfprof.reset ();
  let r_on, ev_on = run_fingerprint entry compiled in
  Selfprof.disable ();
  Alcotest.(check bool) (name ^ ": identical report") true (r_off = r_on);
  Alcotest.(check bool)
    (name ^ ": identical event stream")
    true (ev_off = ev_on)

let test_session_transparency () =
  check_session_transparent "164.gzip";
  check_session_transparent "458.sjeng"

(* {1 Transparency: fleet} *)

let fleet_config ~slots ~queue ~servers ~policy =
  { Sim.default_config with
    Sim.s_load =
      { Server_load.default with Server_load.slots; queue_cap = queue };
    Sim.s_servers = servers;
    Sim.s_policy = policy }

let fleet_render ~count ~policy =
  let clients =
    Sim.make_clients ~stagger_s:0.02 ~workloads:[ "164.gzip"; "429.mcf" ]
      ~count ()
  in
  Sim.render
    (Sim.run ~config:(fleet_config ~slots:1 ~queue:1 ~servers:2 ~policy)
       clients)

let test_fleet_transparency () =
  Selfprof.disable ();
  let off = fleet_render ~count:4 ~policy:Pool.Round_robin in
  Selfprof.enable ();
  Selfprof.reset ();
  let on = fleet_render ~count:4 ~policy:Pool.Round_robin in
  (* While we have a profiled fleet run in hand, sanity-check that the
     simulator's hot zones actually fired and every frame closed. *)
  let calls z =
    let n = Selfprof.zone_name z in
    match List.find_opt (fun r -> r.Selfprof.r_zone = n) (Selfprof.rows ())
    with
    | Some r -> r.Selfprof.r_calls
    | None -> 0
  in
  Selfprof.disable ();
  Alcotest.(check string) "identical fleet render" off on;
  List.iter
    (fun z ->
      Alcotest.(check bool)
        (Selfprof.zone_name z ^ " fired during fleet run")
        true
        (calls z > 0))
    [ Selfprof.Eq_push; Selfprof.Eq_pop; Selfprof.Pool_route ];
  Alcotest.(check int) "no unwound frames" 0 (Selfprof.unwound ())

let prop_fleet_transparent =
  QCheck.Test.make ~name:"profiler on/off renders byte-identical fleets"
    ~count:10
    QCheck.(
      pair
        (pair (int_range 1 6) (oneofl Pool.all_policies))
        (pair (int_range 1 2) (int_range 0 2)))
    (fun ((count, policy), (slots, queue)) ->
      let render () =
        let clients =
          Sim.make_clients ~stagger_s:0.03
            ~workloads:[ "164.gzip"; "429.mcf" ] ~count ()
        in
        Sim.render
          (Sim.run
             ~config:(fleet_config ~slots ~queue ~servers:2 ~policy)
             clients)
      in
      Selfprof.disable ();
      let off = render () in
      Selfprof.enable ();
      Selfprof.reset ();
      let on = render () in
      Selfprof.disable ();
      String.equal off on)

(* {1 Accounting} *)

let test_disabled_counts_nothing () =
  Selfprof.disable ();
  Selfprof.reset ();
  Selfprof.enter Selfprof.Compress;
  Selfprof.leave Selfprof.Compress;
  List.iter
    (fun r ->
      Alcotest.(check int) (r.Selfprof.r_zone ^ " calls") 0
        r.Selfprof.r_calls;
      Alcotest.(check (float 0.)) (r.Selfprof.r_zone ^ " self-s") 0.
        r.Selfprof.r_self_s)
    (Selfprof.rows ());
  Alcotest.(check int) "unwound" 0 (Selfprof.unwound ())

let test_nested_attribution () =
  Selfprof.enable ();
  Selfprof.reset ();
  Selfprof.enter Selfprof.Sink_emit;
  Selfprof.enter Selfprof.Hist_record;
  Selfprof.leave Selfprof.Hist_record;
  Selfprof.leave Selfprof.Sink_emit;
  Selfprof.disable ();
  let calls name =
    (List.find (fun r -> r.Selfprof.r_zone = name) (Selfprof.rows ()))
      .Selfprof.r_calls
  in
  Alcotest.(check int) "outer counted once" 1 (calls "sink-emit");
  Alcotest.(check int) "inner counted once" 1 (calls "hist-record");
  Alcotest.(check int) "no unwound frames" 0 (Selfprof.unwound ());
  (* Every zone appears in the report even at zero. *)
  let report = Selfprof.report () in
  List.iter
    (fun z ->
      let n = Selfprof.zone_name z in
      Alcotest.(check bool) (n ^ " present in report") true
        (contains report n))
    Selfprof.zones

let test_unwind_tolerance () =
  Selfprof.enable ();
  Selfprof.reset ();
  (* Simulate an exception skipping the inner leave: enter two zones,
     leave only the outer. *)
  Selfprof.enter Selfprof.Compress;
  Selfprof.enter Selfprof.Hist_record;
  Selfprof.leave Selfprof.Compress;
  Selfprof.disable ();
  Alcotest.(check int) "abandoned frame counted" 1 (Selfprof.unwound ());
  (* The stack recovered: a fresh balanced pair adds no more. *)
  Selfprof.enable ();
  Selfprof.enter Selfprof.Eq_push;
  Selfprof.leave Selfprof.Eq_push;
  Selfprof.disable ();
  Alcotest.(check int) "stack recovered" 1 (Selfprof.unwound ())

(* {1 OpenMetrics exposition} *)

let test_openmetrics_bytes () =
  let rows =
    [
      { Selfprof.r_zone = "eq-push"; r_calls = 3; r_self_s = 0.5;
        r_self_words = 128. };
      { Selfprof.r_zone = "compress"; r_calls = 1; r_self_s = 0.25;
        r_self_words = 0. };
    ]
  in
  let out = Openmetrics.of_selfprof ~unwound:2 rows in
  Alcotest.(check bool) "terminated by # EOF" true
    (String.length out >= 6
    && String.sub out (String.length out - 6) 6 = "# EOF\n");
  let expect_line l =
    Alcotest.(check bool) ("contains " ^ l) true (contains out l)
  in
  expect_line {|selfprof_zone_calls_total{zone="eq-push"} 3|};
  expect_line {|selfprof_zone_self_seconds_total{zone="compress"} 0.25|};
  expect_line "selfprof_unwound_frames_total 2";
  (* Byte-stable: same rows, same bytes. *)
  Alcotest.(check string) "deterministic exposition" out
    (Openmetrics.of_selfprof ~unwound:2 rows)

let tests =
  [
    Alcotest.test_case "profiler transparent on sessions" `Slow
      test_session_transparency;
    Alcotest.test_case "profiler transparent on fleet" `Quick
      test_fleet_transparency;
    QCheck_alcotest.to_alcotest prop_fleet_transparent;
    Alcotest.test_case "disabled mode counts nothing" `Quick
      test_disabled_counts_nothing;
    Alcotest.test_case "nested zones attribute innermost" `Quick
      test_nested_attribution;
    Alcotest.test_case "exceptional unwind tolerated" `Quick
      test_unwind_tolerance;
    Alcotest.test_case "openmetrics exposition is byte-stable" `Quick
      test_openmetrics_bytes;
  ]
