let () =
  Alcotest.run "native_offloader"
    [
      ("ir", Test_ir.tests);
      ("parser", Test_parser.tests);
      ("layout", Test_layout.tests);
      ("mem", Test_mem.tests);
      ("netsim", Test_netsim.tests);
      ("trace", Test_trace.tests);
      ("trace-equiv", Test_trace_equiv.tests);
      ("obs", Test_obs.tests);
      ("analysis", Test_analysis.tests);
      ("estimator", Test_estimator.tests);
      ("profiler", Test_profiler.tests);
      ("power", Test_power.tests);
      ("transform", Test_transform.tests);
      ("interp", Test_interp.tests);
      ("interp-more", Test_exec_more.tests);
      ("offload", Test_offload.tests);
      ("runtime", Test_runtime.tests);
      ("fault", Test_fault.tests);
      ("sched", Test_sched.tests);
      ("migrate", Test_migrate.tests);
      ("workloads", Test_workloads.tests);
      ("corpus-report", Test_corpus_report.tests);
      ("telemetry", Test_telemetry.tests);
      ("sampler", Test_sampler.tests);
      ("selfprof", Test_selfprof.tests);
    ]
