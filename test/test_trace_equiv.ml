(* Observation equivalence of the two-tier event spine (QCheck): a
   stream delivered through the row door must be indistinguishable
   from the same stream delivered boxed — bit-equal Metrics whether
   folded per-event or through the batched accumulator, bit-equal
   windowed series (histogram quantiles included), and an identical
   raw-trace capture.  Checked over generated streams covering every
   event kind and over real workload runs under a fault plan. *)

module Trace = No_trace.Trace
module Series = No_obs.Series
module Hist = No_obs.Hist
module Trace_file = No_obs.Trace_file
module Session = No_runtime.Session
module Chess = No_workloads.Chess
module Fault_plan = No_fault.Plan
module Compiler = Native_offloader.Compiler
module Experiment = Native_offloader.Experiment

(* {1 Stream generator}

   Every constructor appears; floats are bounded and non-negative so
   plans stay physical, but equality below is still bitwise. *)

let gen_event : Trace.event QCheck.Gen.t =
  let open QCheck.Gen in
  let dir = oneofl [ Trace.To_server; Trace.To_mobile ] in
  let name = oneofl [ "alpha"; "beta"; "gamma"; "fir" ] in
  let state =
    oneofl [ "idle"; "computing"; "waiting"; "transmitting"; "receiving" ]
  in
  let small = int_range 0 10_000 in
  let secs = float_range 0.0 8.0 in
  oneof
    [
      (fun st ->
        Trace.Flush
          { direction = dir st; raw_bytes = small st; wire_bytes = small st;
            transfer_s = secs st; codec_s = secs st });
      (fun st -> Trace.Page_fault { page = small st; service_s = secs st });
      (fun st -> Trace.Prefetch { pages = small st; bytes = small st });
      (fun st -> Trace.Fnptr_translate { cost_s = secs st });
      (fun st ->
        Trace.Remote_io
          { io_name = name st; request_bytes = small st;
            response_bytes = small st; cost_s = secs st });
      (fun st -> Trace.Offload_begin { target = name st });
      (fun st ->
        Trace.Offload_end
          { target = name st; dirty_pages = small st; span_s = secs st });
      (fun st -> Trace.Refusal { target = name st });
      (fun st ->
        Trace.Power_state
          { state = state st; mw = float_range 1.0 4000.0 st;
            duration_s = secs st });
      (fun st ->
        Trace.Estimate
          { target = name st; predicted_gain_s = float_range (-2.0) 5.0 st;
            local_s = secs st; decision = bool st });
      (fun st ->
        Trace.Module_load
          { role = name st; functions = small st; globals = small st });
      (fun st -> Trace.Fault_injected { kind = name st; op = name st });
      (fun st ->
        Trace.Rpc_timeout
          { op = name st; attempt = small st; waited_s = secs st });
      (fun st ->
        Trace.Retry { op = name st; attempt = small st; backoff_s = secs st });
      (fun st ->
        Trace.Fallback_local
          { target = name st; reason = name st; recovery_s = secs st });
      (fun st ->
        Trace.Rollback
          { target = name st; pages_restored = small st;
            bytes_discarded = small st });
      (fun st -> Trace.Replay { target = name st; replay_s = secs st });
      (fun st ->
        Trace.Queue
          { target = name st; server = int_range 0 7 st; wait_s = secs st;
            depth = int_range 0 31 st });
      (fun st ->
        Trace.Admit
          { target = name st; server = int_range 0 7 st;
            occupancy = int_range 1 8 st; slot = int_range 0 7 st });
      (fun st ->
        Trace.Reject
          { target = name st; server = int_range 0 7 st;
            queue_depth = int_range 0 31 st });
      (fun st -> Trace.Bw_sample { bps = float_range 1e3 1e9 st });
      (fun st ->
        Trace.Checkpoint
          { target = name st; pages = small st; image_bytes = small st;
            io_cursor = small st; ledger_bytes = small st });
      (fun st ->
        Trace.Migrate_start
          { target = name st; from_server = int_range 0 7 st;
            to_server = int_range 0 7 st; reason = name st;
            transfer_s = secs st });
      (fun st ->
        Trace.Migrate_done
          { target = name st; server = int_range 0 7 st;
            resumed_span_s = secs st });
    ]

let stream_arb =
  QCheck.make
    ~print:(fun s -> Trace_file.to_string s)
    QCheck.Gen.(
      list_size (int_range 0 300) (pair (float_range 0.0 30.0) gen_event))

(* {1 The two doors} *)

let feed_boxed sink stream =
  List.iter (fun (ts, ev) -> sink.Trace.emit ~ts ev) stream

(* One scratch row reused for the whole stream — exactly the hot
   emitters' discipline. *)
let feed_rows sink stream =
  let row = Trace.Row.create () in
  List.iter
    (fun (ts, ev) ->
      Trace.Row.of_event row ev;
      sink.Trace.emit_row ~ts row)
    stream

(* {1 Bitwise equality}

   [Int64.bits_of_float] equality, not [=]: NaN gauges (an empty
   window's bandwidth belief) must compare equal to themselves, and
   any summation-order drift must fail loudly. *)

let fe a b = Int64.bits_of_float a = Int64.bits_of_float b

let check_f label a b =
  if not (fe a b) then
    Alcotest.failf "%s differs bitwise: %h vs %h" label a b

let check_i label a b = Alcotest.(check int) label a b

let check_metrics label (a : Trace.Metrics.t) (b : Trace.Metrics.t) =
  let i n = check_i (label ^ ": " ^ n) in
  let f n = check_f (label ^ ": " ^ n) in
  i "flushes_to_server" a.flushes_to_server b.flushes_to_server;
  i "flushes_to_mobile" a.flushes_to_mobile b.flushes_to_mobile;
  i "raw_to_server" a.raw_to_server b.raw_to_server;
  i "raw_to_mobile" a.raw_to_mobile b.raw_to_mobile;
  i "wire_to_server" a.wire_to_server b.wire_to_server;
  i "wire_to_mobile" a.wire_to_mobile b.wire_to_mobile;
  f "transfer_s" a.transfer_s b.transfer_s;
  f "codec_s" a.codec_s b.codec_s;
  i "fault_count" a.fault_count b.fault_count;
  f "fault_s" a.fault_s b.fault_s;
  i "prefetched_pages" a.prefetched_pages b.prefetched_pages;
  i "prefetched_bytes" a.prefetched_bytes b.prefetched_bytes;
  i "fnptr_count" a.fnptr_count b.fnptr_count;
  f "fnptr_s" a.fnptr_s b.fnptr_s;
  i "remote_io_count" a.remote_io_count b.remote_io_count;
  f "remote_io_s" a.remote_io_s b.remote_io_s;
  i "offloads" a.offloads b.offloads;
  f "offload_span_s" a.offload_span_s b.offload_span_s;
  i "refusals" a.refusals b.refusals;
  i "estimates" a.estimates b.estimates;
  i "faults_injected" a.faults_injected b.faults_injected;
  i "rpc_timeouts" a.rpc_timeouts b.rpc_timeouts;
  i "retries" a.retries b.retries;
  f "retry_wait_s" a.retry_wait_s b.retry_wait_s;
  i "fallbacks" a.fallbacks b.fallbacks;
  i "rollbacks" a.rollbacks b.rollbacks;
  f "recovery_s" a.recovery_s b.recovery_s;
  i "replays" a.replays b.replays;
  f "replay_s" a.replay_s b.replay_s;
  i "queued" a.queued b.queued;
  f "queue_wait_s" a.queue_wait_s b.queue_wait_s;
  i "admits" a.admits b.admits;
  i "rejects" a.rejects b.rejects;
  i "checkpoints" a.checkpoints b.checkpoints;
  i "checkpoint_pages" a.checkpoint_pages b.checkpoint_pages;
  i "checkpoint_bytes" a.checkpoint_bytes b.checkpoint_bytes;
  i "migrations" a.migrations b.migrations;
  i "migrations_done" a.migrations_done b.migrations_done;
  f "migrate_transfer_s" a.migrate_transfer_s b.migrate_transfer_s;
  f "migrate_resume_s" a.migrate_resume_s b.migrate_resume_s;
  f "energy_mj" a.energy_mj b.energy_mj;
  i "power states" (Hashtbl.length a.power_s) (Hashtbl.length b.power_s);
  Hashtbl.iter
    (fun k v ->
      match Hashtbl.find_opt b.power_s k with
      | Some v' -> f (Printf.sprintf "power_s[%s]" k) v v'
      | None -> Alcotest.failf "%s: power state %s missing" label k)
    a.power_s;
  i "power segments" (List.length a.power_rev) (List.length b.power_rev);
  List.iter2
    (fun (t1, mw1, d1, s1) (t2, mw2, d2, s2) ->
      f "segment start" t1 t2;
      f "segment mw" mw1 mw2;
      f "segment duration" d1 d2;
      Alcotest.(check string) (label ^ ": segment state") s1 s2)
    a.power_rev b.power_rev

let quantiles = [ 0.25; 0.5; 0.9; 0.99; 1.0 ]

let check_hist label a b =
  check_i (label ^ ": count") (Hist.count a) (Hist.count b);
  check_f (label ^ ": sum") (Hist.sum a) (Hist.sum b);
  check_f (label ^ ": min") (Hist.min a) (Hist.min b);
  check_f (label ^ ": max") (Hist.max a) (Hist.max b);
  List.iter
    (fun q ->
      check_f
        (Printf.sprintf "%s: q%.2f" label q)
        (Hist.quantile a q) (Hist.quantile b q))
    quantiles

let check_window (a : Series.window) (b : Series.window) =
  let label = Printf.sprintf "window %d" a.Series.w_index in
  check_i (label ^ ": index") a.Series.w_index b.Series.w_index;
  check_metrics label a.Series.w_metrics b.Series.w_metrics;
  List.iter2
    (fun (na, ha) (nb, hb) ->
      Alcotest.(check string) (label ^ ": hist name") na nb;
      check_hist (label ^ ": " ^ na) ha hb)
    a.Series.w_hists b.Series.w_hists;
  check_i (label ^ ": peak queue depth") a.Series.w_peak_queue_depth
    b.Series.w_peak_queue_depth;
  check_i (label ^ ": peak occupancy") a.Series.w_peak_occupancy
    b.Series.w_peak_occupancy;
  Alcotest.(check (list (pair int int)))
    (label ^ ": server peaks") a.Series.w_server_peaks
    b.Series.w_server_peaks;
  check_f (label ^ ": bw belief") a.Series.w_bw_bps b.Series.w_bw_bps

(* The property itself: both doors, three observers. *)
let check_stream stream =
  (* Metrics: per-event record updates vs batched accumulator fold. *)
  let ma = Trace.Metrics.create () in
  feed_boxed (Trace.Metrics.sink ma) stream;
  let mb = Trace.Metrics.create () in
  let acc = Trace.Metrics.acc mb in
  feed_rows (Trace.Metrics.acc_sink acc) stream;
  Trace.Metrics.flush_acc acc;
  check_metrics "metrics" ma mb;
  (* Windowed series, histograms and gauges included. *)
  let sa = Series.create () in
  feed_boxed (Series.sink sa) stream;
  let sb = Series.create () in
  feed_rows (Series.sink sb) stream;
  let wa = Series.windows sa and wb = Series.windows sb in
  check_i "window count" (List.length wa) (List.length wb);
  List.iter2 check_window wa wb;
  (* Capture: rows boxed at the ring boundary serialize identically. *)
  let ra = Trace.Ring.create () in
  feed_boxed (Trace.Ring.sink ra) stream;
  let rb = Trace.Ring.create () in
  feed_rows (Trace.Ring.sink rb) stream;
  Alcotest.(check string) "identical raw capture"
    (Trace_file.to_string (Trace.Ring.events ra))
    (Trace_file.to_string (Trace.Ring.events rb));
  true

let prop_generated =
  QCheck.Test.make ~name:"row door = boxed door (generated streams)"
    ~count:100 stream_arb check_stream

(* {1 Real workloads under a fault plan}

   The generated streams cover the kinds; a faulted chess run covers
   the emitters — hot sites fill the session's scratch row, and the
   recorder's boxed door replays the capture through both doors. *)

let chess_compiled =
  lazy
    (Compiler.compile
       ~profile_script:(Chess.script ~depth:3 ~turns:2)
       ~eval_scale:2.0 (Chess.build ()))

let chess_events seed =
  let compiled = Lazy.force chess_compiled in
  let plan =
    match
      Fault_plan.parse
        (Printf.sprintf "seed=%d,drop=0.08,corrupt=0.03,outage=0.02:0.12"
           seed)
    with
    | Ok p -> p
    | Error msg -> Alcotest.failf "fault plan: %s" msg
  in
  let log = ref [] in
  let recorder = Trace.of_emit (fun ~ts ev -> log := (ts, ev) :: !log) in
  let config =
    { (Experiment.fast_config ()) with
      Session.trace = recorder;
      Session.faults = Some plan }
  in
  let session =
    Session.create ~config
      ~script:(Chess.script ~depth:4 ~turns:2)
      ~files:[] compiled.Compiler.c_output ~seeds:compiled.Compiler.c_seeds
  in
  ignore (Session.run session);
  List.rev !log

let prop_workload =
  QCheck.Test.make ~name:"row door = boxed door (faulted chess runs)"
    ~count:4
    QCheck.(int_range 1 10_000)
    (fun seed -> check_stream (chess_events seed))

let tests =
  [
    QCheck_alcotest.to_alcotest prop_generated;
    QCheck_alcotest.to_alcotest prop_workload;
  ]
