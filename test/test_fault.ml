(* Fault-injection subsystem tests: the seeded RNG, the plan grammar,
   the injector's verdict order, and — through real sessions — the
   recovery guarantees: an empty plan is a byte-for-byte no-op, short
   outages are absorbed by retries, and a long outage or a server
   crash rolls back and replays locally with the exact console
   transcript of a fault-free run. *)

module Rng = No_fault.Rng
module Fault_plan = No_fault.Plan
module Injector = No_fault.Injector
module Trace = No_trace.Trace
module Session = No_runtime.Session
module Local_run = No_runtime.Local_run
module Chess = No_workloads.Chess
module Registry = No_workloads.Registry
module Compiler = Native_offloader.Compiler
module Experiment = Native_offloader.Experiment

(* {1 RNG} *)

let test_rng_determinism () =
  let draws n seed =
    let r = Rng.create seed in
    List.init n (fun _ -> Rng.next r)
  in
  Alcotest.(check bool) "same seed, same sequence" true
    (draws 16 42L = draws 16 42L);
  Alcotest.(check bool) "different seed, different sequence" true
    (draws 16 42L <> draws 16 43L);
  let r = Rng.create 7L in
  for _ = 1 to 1000 do
    let f = Rng.float r in
    if f < 0.0 || f >= 1.0 then
      Alcotest.failf "float out of [0,1): %.17g" f
  done;
  let r = Rng.create 7L in
  for _ = 1 to 1000 do
    let i = Rng.int r 10 in
    if i < 0 || i >= 10 then Alcotest.failf "int out of [0,10): %d" i
  done;
  match Rng.int r 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bound 0 accepted"

(* {1 Plan grammar} *)

let plan_exn s =
  match Fault_plan.parse s with
  | Ok p -> p
  | Error msg -> Alcotest.failf "parse %S failed: %s" s msg

let test_plan_parse () =
  Alcotest.(check bool) "empty string is the empty plan" true
    (plan_exn "" = Fault_plan.empty);
  Alcotest.(check bool) "empty plan is empty" true
    (Fault_plan.is_empty Fault_plan.empty);
  let p =
    plan_exn "seed=42,outage=0.5:2.0,drop=0.05,corrupt=0.01,crash=3.5,\
              collapse=1.0:0.02"
  in
  Alcotest.(check bool) "parsed plan is not empty" false
    (Fault_plan.is_empty p);
  Alcotest.(check bool) "to_string round-trips" true
    (plan_exn (Fault_plan.to_string p) = p);
  Alcotest.(check bool) "outage windows accumulate" true
    (List.length (plan_exn "outage=1:2,outage=4:5").Fault_plan.outages = 2);
  List.iter
    (fun bad ->
      match Fault_plan.parse bad with
      | Ok _ -> Alcotest.failf "accepted invalid plan %S" bad
      | Error _ -> ())
    [ "drop=2.0"; "drop=-0.1"; "outage=5:1"; "collapse=1:0"; "collapse=1:1.5";
      "wat=3"; "seed=xyz"; "outage=1"; "crash=" ]

(* {1 Injector verdicts} *)

let test_injector_verdicts () =
  let inj s = Injector.create (plan_exn s) in
  (* precedence: crash beats outage beats the probability draw *)
  (* probabilities are capped below 1.0 by the grammar; 0.999 with the
     plan's fixed default seed still gives a deterministic verdict *)
  let i = inj "crash=3.0,outage=2.0:10.0,drop=0.999" in
  (match Injector.judge i ~now:5.0 with
  | Injector.Server_down -> ()
  | v -> Alcotest.failf "expected crash, got %s" (Injector.verdict_kind v));
  (match Injector.judge i ~now:2.5 with
  | Injector.Outage until ->
    Alcotest.(check (float 1e-9)) "dark until window end" 10.0 until
  | v -> Alcotest.failf "expected outage, got %s" (Injector.verdict_kind v));
  (match Injector.judge i ~now:1.0 with
  | Injector.Drop -> ()
  | v -> Alcotest.failf "expected drop, got %s" (Injector.verdict_kind v));
  Alcotest.(check int) "all three verdicts counted" 3 (Injector.injected i);
  (* certain corruption, no loss *)
  (match Injector.judge (inj "corrupt=0.999") ~now:0.0 with
  | Injector.Corrupt -> ()
  | v -> Alcotest.failf "expected corrupt, got %s" (Injector.verdict_kind v));
  (* clean delivery off the fault windows *)
  (match Injector.judge (inj "outage=2:3,crash=9") ~now:1.0 with
  | Injector.Deliver -> ()
  | v -> Alcotest.failf "expected deliver, got %s" (Injector.verdict_kind v));
  (* bandwidth collapse gates on its activation time *)
  let c = inj "collapse=2.0:0.25" in
  Alcotest.(check (float 1e-9)) "nominal before collapse" 1.0
    (Injector.bw_factor c ~now:1.0);
  Alcotest.(check (float 1e-9)) "scaled after collapse" 0.25
    (Injector.bw_factor c ~now:3.0);
  (* bounded exponential backoff *)
  let p = Injector.default_policy in
  Alcotest.(check (list (float 1e-9))) "backoff doubles then caps"
    [ 0.25; 0.5; 1.0; 2.0; 2.0 ]
    (List.map (fun a -> Injector.backoff_s p ~attempt:a) [ 1; 2; 3; 4; 5 ])

(* {1 Session-level recovery}

   All timing below derives from the workload's measured fault-free
   duration T, so the faults land mid-offload at any scale. *)

let sjeng () = Option.get (Registry.by_name "458.sjeng")

let compile_entry entry =
  Compiler.compile ~profile_script:entry.Registry.e_profile_script
    ~profile_files:entry.Registry.e_files
    ~eval_scale:entry.Registry.e_eval_scale
    (entry.Registry.e_build ())

let run_entry ?ring entry compiled faults =
  let trace =
    match ring with None -> Trace.null | Some r -> Trace.Ring.sink r
  in
  let config =
    { (Session.default_config ()) with Session.faults; Session.trace }
  in
  let session =
    Session.create ~config ~script:entry.Registry.e_profile_script
      ~files:entry.Registry.e_files compiled.Compiler.c_output
      ~seeds:compiled.Compiler.c_seeds
  in
  Session.run session

let local_entry entry compiled =
  Local_run.run ~script:entry.Registry.e_profile_script
    ~files:entry.Registry.e_files compiled.Compiler.c_original

let event_count ring pred =
  List.length (List.filter (fun (_, ev) -> pred ev) (Trace.Ring.events ring))

(* The empty plan must be a strict no-op: identical report record and
   identical event stream (timestamps included), on chess and on a
   SPEC workload. *)

let check_noop name config ~script ~files compiled =
  let run faults =
    let ring = Trace.Ring.create ~capacity:(1 lsl 20) () in
    let config =
      { config with Session.faults; Session.trace = Trace.Ring.sink ring }
    in
    let session =
      Session.create ~config ~script ~files compiled.Compiler.c_output
        ~seeds:compiled.Compiler.c_seeds
    in
    let r = Session.run session in
    (r, Trace.Ring.events ring)
  in
  let r_none, ev_none = run None in
  let r_empty, ev_empty = run (Some Fault_plan.empty) in
  Alcotest.(check bool) (name ^ ": identical report") true (r_none = r_empty);
  Alcotest.(check int)
    (name ^ ": same event count")
    (List.length ev_none) (List.length ev_empty);
  Alcotest.(check bool) (name ^ ": identical event stream") true
    (ev_none = ev_empty)

let test_empty_plan_noop () =
  let chess =
    Compiler.compile
      ~profile_script:(Chess.script ~depth:3 ~turns:2)
      ~eval_scale:2.0 (Chess.build ())
  in
  check_noop "chess"
    (Experiment.fast_config ())
    ~script:(Chess.script ~depth:4 ~turns:2)
    ~files:[] chess;
  let entry = sjeng () in
  let compiled = compile_entry entry in
  check_noop "458.sjeng"
    (Session.default_config ())
    ~script:entry.Registry.e_profile_script ~files:entry.Registry.e_files
    compiled

(* A short outage is ridden out by the retry loop: no fallback, same
   console, and the waiting shows up in time and battery. *)

let test_short_outage_retries () =
  let entry = sjeng () in
  let compiled = compile_entry entry in
  let local = local_entry entry compiled in
  let clean = run_entry entry compiled None in
  let t = clean.Session.rep_total_s in
  let plan =
    plan_exn (Printf.sprintf "outage=%.4f:%.4f" (0.3 *. t) (0.5 *. t))
  in
  let r = run_entry entry compiled (Some plan) in
  Alcotest.(check string) "console matches local"
    local.Local_run.lr_console r.Session.rep_console;
  Alcotest.(check bool) "retried" true (r.Session.rep_retries > 0);
  Alcotest.(check int) "no fallback" 0 r.Session.rep_fallbacks;
  Alcotest.(check bool) "waiting cost time" true
    (r.Session.rep_total_s > clean.Session.rep_total_s);
  Alcotest.(check bool) "waiting cost battery" true
    (r.Session.rep_energy_mj > clean.Session.rep_energy_mj)

(* A long outage exhausts the retry budget mid-offload: the session
   rolls back and replays locally, reproducing the local transcript. *)

let test_long_outage_fallback () =
  let entry = sjeng () in
  let compiled = compile_entry entry in
  let local = local_entry entry compiled in
  let clean = run_entry entry compiled None in
  let t = clean.Session.rep_total_s in
  let plan =
    plan_exn (Printf.sprintf "outage=%.4f:%.4f" (0.3 *. t) ((0.3 *. t) +. 60.0))
  in
  let ring = Trace.Ring.create ~capacity:(1 lsl 20) () in
  let r = run_entry ~ring entry compiled (Some plan) in
  Alcotest.(check string) "console matches local"
    local.Local_run.lr_console r.Session.rep_console;
  Alcotest.(check bool) "fell back" true (r.Session.rep_fallbacks > 0);
  Alcotest.(check bool) "timeouts recorded" true
    (r.Session.rep_rpc_timeouts > 0);
  Alcotest.(check bool) "fallback event emitted" true
    (event_count ring (function Trace.Fallback_local _ -> true | _ -> false)
     > 0);
  Alcotest.(check bool) "rollback event emitted" true
    (event_count ring (function Trace.Rollback _ -> true | _ -> false) > 0);
  Alcotest.(check bool) "recovery charged to battery" true
    (r.Session.rep_energy_mj > clean.Session.rep_energy_mj)

(* Server death: detected at the next exchange, rolled back, replayed
   locally; later invocations refuse instead of re-trying the corpse. *)

let test_server_crash_fallback () =
  let entry = sjeng () in
  let compiled = compile_entry entry in
  let local = local_entry entry compiled in
  let clean = run_entry entry compiled None in
  let t = clean.Session.rep_total_s in
  let plan = plan_exn (Printf.sprintf "crash=%.4f" (0.4 *. t)) in
  let ring = Trace.Ring.create ~capacity:(1 lsl 20) () in
  let r = run_entry ~ring entry compiled (Some plan) in
  Alcotest.(check string) "console matches local"
    local.Local_run.lr_console r.Session.rep_console;
  Alcotest.(check int) "exactly one fallback" 1 r.Session.rep_fallbacks;
  Alcotest.(check bool) "rollback event emitted" true
    (event_count ring (function Trace.Rollback _ -> true | _ -> false) > 0);
  Alcotest.(check bool) "later invocations refuse the dead server" true
    (r.Session.rep_refusals > clean.Session.rep_refusals)

(* Message loss is seeded: the same plan reproduces the same run bit
   for bit; a different seed may fault differently but still delivers
   the same program output. *)

let test_seeded_drop_reproducible () =
  let entry = sjeng () in
  let compiled = compile_entry entry in
  let local = local_entry entry compiled in
  let run seed =
    run_entry entry compiled
      (Some (plan_exn (Printf.sprintf "drop=0.2,seed=%d" seed)))
  in
  let a = run 11 and b = run 11 and c = run 12 in
  Alcotest.(check bool) "same seed, identical report" true (a = b);
  Alcotest.(check bool) "faults actually fired" true
    (a.Session.rep_retries > 0);
  Alcotest.(check string) "seed 11 console matches local"
    local.Local_run.lr_console a.Session.rep_console;
  Alcotest.(check string) "seed 12 console matches local"
    local.Local_run.lr_console c.Session.rep_console

let tests =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "plan grammar" `Quick test_plan_parse;
    Alcotest.test_case "injector verdicts" `Quick test_injector_verdicts;
    Alcotest.test_case "empty plan is a no-op" `Quick test_empty_plan_noop;
    Alcotest.test_case "short outage: retries absorb" `Quick
      test_short_outage_retries;
    Alcotest.test_case "long outage: local fallback" `Quick
      test_long_outage_fallback;
    Alcotest.test_case "server crash: local fallback" `Quick
      test_server_crash_fallback;
    Alcotest.test_case "seeded drops reproduce" `Quick
      test_seeded_drop_reproducible;
  ]
