(* Benchmark harness.

     dune exec bench/main.exe              regenerate every table and
                                           figure of the paper and print
                                           the headline numbers
     dune exec bench/main.exe -- micro     self-profiled micro-bench lane:
                                           events/sec, bytes-compressed/sec
                                           and allocs/event headline numbers
                                           plus the per-zone self-profile
                                           (--trials, --json,
                                           --selfprof-out)
     dune exec bench/main.exe -- bechamel  Bechamel micro-benchmarks: one
                                           Test.make per table/figure
                                           (its core computational
                                           kernel) plus substrate micros
     dune exec bench/main.exe -- ablations design-choice ablations
                                           (copy-on-demand, compression
                                           direction, dynamic decisions,
                                           explicit GEP lowering)
     dune exec bench/main.exe -- trace     event-derived run summaries: the
                                           aggregating trace sink's metrics
                                           and event counts for a sample of
                                           workloads
     dune exec bench/main.exe -- faults    fault-injection sweep: survival
                                           rate and recovery overhead under
                                           link outage, server crash and
                                           message loss, per workload
     dune exec bench/main.exe -- percentiles
                                           fleet latency distributions: run
                                           the whole registry, merge each
                                           run's histograms, report
                                           p50/p95/p99 for speedup, comm
                                           time, page-fault service and
                                           wire bytes
     dune exec bench/main.exe -- multiclient
                                           throughput/latency vs client
                                           count, with SLO verdicts per
                                           sweep point (--slo SPEC)
     dune exec bench/main.exe -- fleet     fleet-scale scheduler sweep:
                                           1000+ synthetic clients against
                                           a K-server pool, one row per
                                           routing policy, plus the
                                           below/past-saturation policy
                                           flip (--clients, --servers,
                                           --slots, --queue, --json)
     dune exec bench/main.exe -- timeseries
                                           windowed telemetry of one traced
                                           run: per-interval rates, gauges,
                                           SLO verdicts, OpenMetrics export
                                           (--workload, --window, --slo,
                                           --metrics-out, --json)

   Full-scale table regeneration takes minutes (it sweeps 17 workloads
   x 4 configurations), so the Bechamel entries wrap each table's
   *kernel* at reduced scale — what the table costs per unit of work —
   while the default mode produces the tables themselves. *)

open No_prelude.Prelude

(* {1 Full regeneration (default mode)} *)

let regenerate_all () =
  let sections =
    [
      ("Table 1", fun () -> Table.print (Evaluation.table1 ()));
      ("Table 2", fun () -> Table.print (Evaluation.table2 ()));
      ("Table 3", fun () -> Table.print (Evaluation.table3 ()));
      ("Table 4", fun () -> Table.print (Evaluation.table4 ()));
      ("Table 5", fun () -> Table.print (Evaluation.table5 ()));
      ("Figure 6(a)", fun () -> Table.print (Evaluation.fig6a ()));
      ("Figure 6(b)", fun () -> Table.print (Evaluation.fig6b ()));
      ("Figure 7", fun () -> Table.print (Evaluation.fig7 ()));
      ("Figure 8", fun () -> Table.print (Evaluation.fig8 ()));
    ]
  in
  List.iter
    (fun (name, emit) ->
      Fmt.pr "=== %s ===@." name;
      emit ();
      Fmt.pr "@.")
    sections;
  let h = Evaluation.headline () in
  Fmt.pr "=== Headline ===@.";
  Fmt.pr "geomean speedup (fast network): %.2fx (paper: 6.42x)@."
    h.Evaluation.h_geomean_speedup_fast;
  Fmt.pr "geomean speedup (slow network): %.2fx@."
    h.Evaluation.h_geomean_speedup_slow;
  Fmt.pr "geomean battery saving (fast):  %.1f%% (paper: 82.0%%)@."
    h.Evaluation.h_battery_saving_fast_pct;
  Fmt.pr "geomean battery saving (slow):  %.1f%% (paper: 77.2%%)@."
    h.Evaluation.h_battery_saving_slow_pct

(* {1 Bechamel micro-benchmarks} *)

let structs_of m name = Ir.find_struct_exn m name

(* Prebuilt state shared by the staged functions (construction cost
   must stay out of the measured loop). *)
let chess_module = lazy (Chess.build ())

let chess_samples =
  lazy
    (Compiler.profile ~script:(Chess.script ~depth:3 ~turns:1)
       ~files:[] (Lazy.force chess_module))

let chess_verdicts = lazy (Filter.analyze (Lazy.force chess_module))

let hmmer_entry = lazy (Option.get (Registry.by_name "456.hmmer"))

let hmmer_compiled =
  lazy
    (let entry = Lazy.force hmmer_entry in
     Compiler.compile ~profile_script:entry.Registry.e_profile_script
       ~profile_files:entry.Registry.e_files
       ~eval_scale:entry.Registry.e_eval_scale
       (entry.Registry.e_build ()))

let synthetic_battery () =
  let b = Battery.create (Power_model.galaxy_s5 ~fast_radio:true) in
  for i = 0 to 199 do
    let t0 = float_of_int i *. 0.05 in
    Battery.spend b ~from_s:t0 ~to_s:(t0 +. 0.05)
      (if i mod 3 = 0 then Power_model.Computing else Power_model.Waiting)
  done;
  b

let compressible_page =
  lazy
    (let data = Bytes.create 65536 in
     for i = 0 to 65535 do
       Bytes.set data i (Char.chr ((i / 97) land 0xff))
     done;
     data)

let run_chess_ai depth =
  let m = Lazy.force chess_module in
  let layout = Layout.env_of_arch Arch.arm32 ~structs:(structs_of m) in
  let host =
    Host.create ~arch:Arch.arm32 ~role:Host.Mobile ~modul:m ~layout
      ~console:(Console.create ~script:(Chess.script ~depth ~turns:1) ())
      ()
  in
  ignore (Interp.run_main host)

let run_hmmer_offload () =
  let entry = Lazy.force hmmer_entry in
  let compiled = Lazy.force hmmer_compiled in
  let session =
    Session.create
      ~config:(Session.default_config ())
      ~script:entry.Registry.e_profile_script ~files:entry.Registry.e_files
      compiled.Compiler.c_output ~seeds:compiled.Compiler.c_seeds
  in
  ignore (Session.run session)

let micro_tests () =
  let open Bechamel in
  let stage = Staged.stage in
  let per_table =
    [
      (* Table 1's kernel: interpreting the chess AI on the mobile
         cost model. *)
      Test.make ~name:"table1:chess-ai-depth3" (stage (fun () -> run_chess_ai 3));
      (* Table 2: corpus statistics. *)
      Test.make ~name:"table2:corpus-summary"
        (stage (fun () -> ignore (No_corpus.Android_apps.summarize ())));
      (* Table 3: Equation-1 estimation + selection over profiled
         samples. *)
      Test.make ~name:"table3:estimate-select"
        (stage (fun () ->
             let m = Lazy.force chess_module in
             ignore
               (Static_estimate.run m ~r:5.76 ~bw_bps:5e6
                  (Lazy.force chess_verdicts)
                  (Lazy.force chess_samples))));
      (* Table 4's kernel: the whole compiler pipeline over chess. *)
      Test.make ~name:"table4:compile-pipeline"
        (stage (fun () ->
             ignore
               (Pipeline.run ~mobile:Arch.arm32 ~server:Arch.x86_64
                  ~targets:[ Chess.target ]
                  (Lazy.force chess_module))));
      (* Table 5: the comparison query. *)
      Test.make ~name:"table5:related-query"
        (stage (fun () ->
             ignore (No_corpus.Related_systems.unique_full_combination ())));
      (* Figure 6's kernel: one full offloading session (hmmer,
         profile-sized input). *)
      Test.make ~name:"fig6:offload-session" (stage run_hmmer_offload);
      (* Figure 6(b)/8 kernel: battery integration and resampling. *)
      Test.make ~name:"fig6b:battery-integration"
        (stage (fun () -> ignore (Battery.energy_mj (synthetic_battery ()))));
      Test.make ~name:"fig8:trace-resample"
        (stage
           (let b = synthetic_battery () in
            fun () -> ignore (Battery.resample b ~period_s:0.01)));
      (* Figure 7's kernel: Equation 1 itself (evaluated per decision). *)
      Test.make ~name:"fig7:equation1"
        (stage (fun () ->
             ignore
               (Equation.evaluate
                  { Equation.tm_s = 26.0; r = 5.76; mem_bytes = 12 lsl 20;
                    bw_bps = 80e6; invocations = 3 })));
    ]
  in
  let substrate =
    [
      Test.make ~name:"compress-64KiB"
        (stage (fun () ->
             ignore (Compress.compress (Lazy.force compressible_page))));
      Test.make ~name:"decompress-64KiB"
        (stage
           (let packed = Compress.compress (Lazy.force compressible_page) in
            fun () -> ignore (Compress.decompress packed)));
      Test.make ~name:"page-fault-service"
        (stage
           (let home = Memory.create Memory.Home in
            Memory.write_byte home Region.heap_base 1;
            fun () ->
              let remote = Memory.create Memory.Remote in
              remote.Memory.on_fault <-
                Some
                  (fun mem page ->
                    Memory.install_page mem page (Memory.page_copy home page));
              ignore (Memory.read_byte remote Region.heap_base)));
      Test.make ~name:"uva-alloc-free"
        (stage
           (let u = Uva.create () in
            fun () ->
              let a = Uva.alloc u 256 in
              Uva.dealloc u a));
    ]
  in
  Test.make_grouped ~name:"native-offloader"
    [ Test.make_grouped ~name:"tables" per_table;
      Test.make_grouped ~name:"substrate" substrate ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Table.create ~title:"Bechamel micro-benchmarks (monotonic clock)"
      [ "benchmark"; "ns/run" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> Printf.sprintf "%.0f" est
        | Some [] | None -> "-"
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) -> Table.add_row table [ name; ns ])
    (List.sort compare !rows);
  Table.print table

(* {1 Headline JSON}

   The CI bench lane runs the sweep modes at reduced scale ([--sample
   N] keeps only the first N registry entries) and writes each mode's
   headline numbers as a flat JSON object ([--json FILE]);
   scripts/bench_guard.py merges them into BENCH_pr.json and compares
   against the committed BENCH_baseline.json. *)

let take n list =
  let rec go n = function
    | hd :: tl when n > 0 -> hd :: go (n - 1) tl
    | _ -> []
  in
  go n list

let sampled_registry = function
  | None -> Registry.spec
  | Some n -> take n Registry.spec

let write_json path (fields : (string * string) list) =
  let oc = open_out path in
  output_string oc "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then output_string oc ",";
      Printf.fprintf oc "\n  \"%s\": %s" k v)
    fields;
  output_string oc "\n}\n";
  close_out oc;
  Printf.printf "\nwrote %s\n" path

let json_f v = Printf.sprintf "%.6f" v
let json_i v = string_of_int v

(* {1 Event-derived run summaries}

   The runtime event spine in action: run a few workloads at
   profile-script scale with a ring + metrics sink attached and report
   what the stream says — per-event-kind counts and the aggregated
   metrics table. *)

(* One traced run; returns (event count, offloads, wall seconds) so
   the mode's --json headline can sum across workloads. *)
let run_traced_summary name =
  let entry = Option.get (Registry.by_name name) in
  let compiled =
    Compiler.compile ~profile_script:entry.Registry.e_profile_script
      ~profile_files:entry.Registry.e_files
      ~eval_scale:entry.Registry.e_eval_scale
      (entry.Registry.e_build ())
  in
  let ring = Trace.Ring.create ~capacity:(1 lsl 20) () in
  let metrics = Trace.Metrics.create () in
  let config =
    { (Session.default_config ()) with
      Session.trace =
        Trace.fan_out [ Trace.Ring.sink ring; Trace.Metrics.sink metrics ] }
  in
  let session =
    Session.create ~config ~script:entry.Registry.e_profile_script
      ~files:entry.Registry.e_files compiled.Compiler.c_output
      ~seeds:compiled.Compiler.c_seeds
  in
  let report = Session.run session in
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (_, ev) ->
      let key =
        match ev with
        | Trace.Flush { direction; _ } ->
          "flush:" ^ Trace.direction_to_string direction
        | Trace.Page_fault _ -> "page-fault"
        | Trace.Prefetch _ -> "prefetch"
        | Trace.Fnptr_translate _ -> "fnptr-translate"
        | Trace.Remote_io _ -> "remote-io"
        | Trace.Offload_begin _ -> "offload-begin"
        | Trace.Offload_end _ -> "offload-end"
        | Trace.Refusal _ -> "refusal"
        | Trace.Power_state _ -> "power-state"
        | Trace.Estimate _ -> "estimate"
        | Trace.Module_load _ -> "module-load"
        | Trace.Fault_injected { kind; _ } -> "fault:" ^ kind
        | Trace.Rpc_timeout _ -> "rpc-timeout"
        | Trace.Retry _ -> "retry"
        | Trace.Fallback_local _ -> "fallback-local"
        | Trace.Rollback _ -> "rollback"
        | Trace.Replay _ -> "replay"
        | Trace.Queue _ -> "queue"
        | Trace.Admit _ -> "admit"
        | Trace.Reject _ -> "reject"
        | Trace.Bw_sample _ -> "bw-sample"
        | Trace.Checkpoint _ -> "checkpoint"
        | Trace.Migrate_start _ -> "migrate-start"
        | Trace.Migrate_done _ -> "migrate-done"
      in
      Hashtbl.replace counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    (Trace.Ring.events ring);
  let count_table =
    Table.create ~title:(name ^ ": event stream (" ^
                         string_of_int (Trace.Ring.length ring) ^ " events)")
      [ "event"; "count" ]
  in
  List.iter
    (fun (k, n) -> Table.add_row count_table [ k; string_of_int n ])
    (List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) counts []));
  Table.print count_table;
  print_newline ();
  Table.print
    (Metrics_report.table ~title:(name ^ ": event-derived metrics") metrics);
  print_newline ();
  (Trace.Ring.length ring, metrics.Trace.Metrics.offloads,
   report.Session.rep_total_s)

let run_trace_summaries ?json () =
  let per_run =
    List.map run_traced_summary [ "164.gzip"; "456.hmmer"; "458.sjeng" ]
  in
  Option.iter
    (fun path ->
      let sum f = List.fold_left (fun acc r -> acc + f r) 0 per_run in
      write_json path
        [
          ("mode", "\"trace\"");
          ("workloads", json_i (List.length per_run));
          ("events", json_i (sum (fun (e, _, _) -> e)));
          ("offloads", json_i (sum (fun (_, o, _) -> o)));
          ( "wall_total_s",
            json_f
              (List.fold_left (fun acc (_, _, s) -> acc +. s) 0.0 per_run) );
        ])
    json

(* {1 Fault-injection sweep}

   Survival under deterministic injected faults, across the whole
   workload registry at profile-script scale.  Each workload first
   runs clean to measure its fault-free offloaded duration T, then
   re-runs under plans whose timing derives from T — a link outage
   covering [0.25T, 0.45T], a server crash at 0.4T, and a 3% message
   drop rate — so the faults land mid-offload regardless of how long
   the workload runs.  "Survived" means the console transcript matches
   the pure-local run byte for byte: every fault was absorbed by
   retries or by rollback + local replay. *)

let fault_plan_exn s =
  match Fault_plan.parse s with
  | Ok p -> p
  | Error msg -> failwith ("fault_sweep: bad plan " ^ s ^ ": " ^ msg)

let run_fault_sweep ?sample ?json () =
  let table =
    Table.create
      ~title:
        "Fault sweep: survival and recovery cost under injected faults \
         (profile-script scale)"
      [ "workload"; "plan"; "survived"; "fallbacks"; "timeouts"; "retries";
        "recovery (s)"; "vs clean" ]
  in
  let survived = ref 0 and injected_runs = ref 0 in
  let recovery_total = ref 0.0 in
  let slowdowns = ref [] in
  List.iter
    (fun entry ->
      let compiled =
        Compiler.compile ~profile_script:entry.Registry.e_profile_script
          ~profile_files:entry.Registry.e_files
          ~eval_scale:entry.Registry.e_eval_scale
          (entry.Registry.e_build ())
      in
      let local =
        Local_run.run ~script:entry.Registry.e_profile_script
          ~files:entry.Registry.e_files compiled.Compiler.c_original
      in
      let offloaded plan =
        let config =
          { (Session.default_config ()) with Session.faults = plan }
        in
        let session =
          Session.create ~config ~script:entry.Registry.e_profile_script
            ~files:entry.Registry.e_files compiled.Compiler.c_output
            ~seeds:compiled.Compiler.c_seeds
        in
        Session.run session
      in
      let clean = offloaded None in
      let t = clean.Session.rep_total_s in
      let plans =
        [
          ( "outage mid-offload",
            fault_plan_exn
              (Printf.sprintf "outage=%.4f:%.4f" (0.25 *. t) (0.45 *. t)) );
          ( "server crash",
            fault_plan_exn (Printf.sprintf "crash=%.4f" (0.4 *. t)) );
          ("3% drop", fault_plan_exn "drop=0.03,seed=7");
        ]
      in
      List.iter
        (fun (label, plan) ->
          let r = offloaded (Some plan) in
          let ok = String.equal r.Session.rep_console local.Local_run.lr_console in
          incr injected_runs;
          if ok then incr survived;
          recovery_total := !recovery_total +. r.Session.rep_recovery_s;
          slowdowns := (r.Session.rep_total_s /. t) :: !slowdowns;
          Table.add_row table
            [
              entry.Registry.e_name;
              label;
              (if ok then "yes" else "NO");
              Table.cell_i r.Session.rep_fallbacks;
              Table.cell_i r.Session.rep_rpc_timeouts;
              Table.cell_i r.Session.rep_retries;
              Table.cell_f r.Session.rep_recovery_s;
              Table.cell_f (r.Session.rep_total_s /. t);
            ])
        plans)
    (sampled_registry sample);
  Table.print table;
  Printf.printf
    "\nsurvival: %d/%d runs reproduced the local console transcript\n\
     total recovery time across the sweep: %.2f s\n"
    !survived !injected_runs !recovery_total;
  Option.iter
    (fun path ->
      write_json path
        [
          ("mode", "\"faults\"");
          ("runs", json_i !injected_runs);
          ("survived", json_i !survived);
          ( "survival_rate",
            json_f (float_of_int !survived /. float_of_int !injected_runs) );
          ("recovery_total_s", json_f !recovery_total);
          ("slowdown_geomean", json_f (Experiment.geomean !slowdowns));
        ])
    json

(* {1 Fleet percentiles}

   Distribution view of the registry: run every workload at
   profile-script scale (local + offloaded over the fast network),
   fill one histogram per metric per run, then merge the per-run
   histograms into fleet-wide distributions — the aggregation shape of
   a monitoring pipeline, where each host ships a mergeable sketch
   rather than raw samples.  Speedup is one sample per workload;
   comm / page-fault / wire-bytes histograms pool every event in the
   fleet. *)

let run_percentiles ?sample ?json () =
  let module Hist = No_obs.Hist in
  (* Per-run sketches, merged at the end. *)
  let speedups = ref [] in
  let comms = ref [] in
  let faults = ref [] in
  let wires = ref [] in
  let speedup_values = ref [] in
  List.iter
    (fun entry ->
      let compiled =
        Compiler.compile ~profile_script:entry.Registry.e_profile_script
          ~profile_files:entry.Registry.e_files
          ~eval_scale:entry.Registry.e_eval_scale
          (entry.Registry.e_build ())
      in
      let local =
        Local_run.run ~script:entry.Registry.e_profile_script
          ~files:entry.Registry.e_files compiled.Compiler.c_original
      in
      let ring = Trace.Ring.create ~capacity:(1 lsl 20) () in
      let config =
        { (Session.default_config ()) with
          Session.trace = Trace.Ring.sink ring }
      in
      let session =
        Session.create ~config ~script:entry.Registry.e_profile_script
          ~files:entry.Registry.e_files compiled.Compiler.c_output
          ~seeds:compiled.Compiler.c_seeds
      in
      let r = Session.run session in
      let speedup = Hist.create () in
      let comm = Hist.create () in
      let fault = Hist.create () in
      let wire = Hist.create () in
      let speedup_x = local.Local_run.lr_total_s /. r.Session.rep_total_s in
      Hist.add speedup speedup_x;
      speedup_values := speedup_x :: !speedup_values;
      List.iter
        (fun (_ts, ev) ->
          match ev with
          | Trace.Flush { wire_bytes; transfer_s; codec_s; _ } ->
            Hist.add comm (transfer_s +. codec_s);
            Hist.add wire (float_of_int wire_bytes)
          | Trace.Page_fault { service_s; _ } -> Hist.add fault service_s
          | _ -> ())
        (Trace.Ring.events ring);
      speedups := speedup :: !speedups;
      comms := comm :: !comms;
      faults := fault :: !faults;
      wires := wire :: !wires)
    (sampled_registry sample);
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Fleet percentiles (%d workloads, profile-script scale, fast \
            network; per-run histograms merged)"
           (List.length !speedups))
      [ "metric"; "samples"; "p50"; "p95"; "p99"; "max" ]
  in
  let row name digits hists =
    let h = Hist.merge hists in
    Table.add_row table
      [
        name;
        Table.cell_i (Hist.count h);
        Table.cell_f ~digits (Hist.quantile h 0.50);
        Table.cell_f ~digits (Hist.quantile h 0.95);
        Table.cell_f ~digits (Hist.quantile h 0.99);
        Table.cell_f ~digits (Hist.max h);
      ]
  in
  row "speedup (x)" 2 !speedups;
  row "flush comm time (s)" 6 !comms;
  row "page-fault service (s)" 6 !faults;
  row "flush wire (bytes)" 0 !wires;
  Table.print table;
  Option.iter
    (fun path ->
      let speedup_h = Hist.merge !speedups in
      let comm_h = Hist.merge !comms in
      let wire_h = Hist.merge !wires in
      write_json path
        [
          ("mode", "\"percentiles\"");
          ("workloads", json_i (List.length !speedups));
          ("geomean_speedup", json_f (Experiment.geomean !speedup_values));
          ("speedup_p50", json_f (Hist.quantile speedup_h 0.50));
          ("speedup_p95", json_f (Hist.quantile speedup_h 0.95));
          ("comm_p95_s", json_f (Hist.quantile comm_h 0.95));
          ("wire_p95_bytes", json_f (Hist.quantile wire_h 0.95));
        ])
    json

(* {1 Multi-client scheduling}

   Throughput and latency versus client count on one shared server:
   the same workload fans out over 1..8 staggered clients at fixed
   worker slots, so contention (queueing, admission rejections,
   load-aware refusals) is the only thing that changes between rows.
   Per-client speedup degrades monotonically as clients pile on, and
   under saturation at least one client's tasks flip back to local
   execution — the scheduler tests lock both properties. *)

let slo_objectives_exn spec =
  match Slo.parse spec with
  | Ok objectives -> objectives
  | Error msg ->
    Printf.eprintf "bad SLO spec %S: %s\nexpected: %s\n" spec msg Slo.grammar;
    exit 1

let run_multiclient ?(slots = 2) ?(queue = 1) ?(workload = "164.gzip")
    ?(slo = Slo.default_spec) ?json () =
  let config =
    { Sim.default_config with
      Sim.s_load = { Server_load.default with Server_load.slots;
                     Server_load.queue_cap = queue } }
  in
  let objectives = slo_objectives_exn slo in
  let summary =
    Table.create
      ~title:
        (Printf.sprintf
           "Multi-client scaling (%s, %d worker slots, queue %d, \
            profile-script scale; SLO %s)"
           workload slots queue slo)
      [ "clients"; "geomean speedup"; "local flips"; "queued"; "rejects";
        "throughput (c/s)"; "p50 (s)"; "p95 (s)"; "p99 (s)"; "SLO" ]
  in
  let json_fields = ref [] in
  List.iter
    (fun count ->
      let clients =
        Sim.make_clients ~stagger_s:0.02 ~workloads:[ workload ] ~count ()
      in
      let result = Sim.run ~config clients in
      print_endline
        (Sim.render
           ~title:(Printf.sprintf "%d client(s), %d slots" count slots)
           result);
      (* SLO verdicts over the fleet-wide windowed series: every
         client's trace merged onto the global clock. *)
      let series = Series.of_events (Sim.global_events result) in
      let verdicts = Slo.evaluate objectives series in
      Printf.printf "SLO (%d clients): %s\n\n" count (Slo.render verdicts);
      let st = result.Sim.r_stats in
      Table.add_row summary
        [
          Table.cell_i count;
          Table.cell_f ~digits:3 (Sim.geomean_speedup result);
          Table.cell_i (Sim.flipped_local result);
          Table.cell_i st.Server_load.st_queued;
          Table.cell_i st.Server_load.st_rejects;
          Table.cell_f ~digits:3 result.Sim.r_throughput;
          Table.cell_f ~digits:4 (Sim.latency_percentile result ~p:50.0);
          Table.cell_f ~digits:4 (Sim.latency_percentile result ~p:95.0);
          Table.cell_f ~digits:4 (Sim.latency_percentile result ~p:99.0);
          (if Slo.pass verdicts then "pass" else "FAIL");
        ];
      json_fields :=
        !json_fields
        @ [
            ( Printf.sprintf "c%d_geomean" count,
              json_f (Sim.geomean_speedup result) );
            ( Printf.sprintf "c%d_throughput" count,
              json_f result.Sim.r_throughput );
            ( Printf.sprintf "c%d_slo_pass" count,
              if Slo.pass verdicts then "true" else "false" );
          ])
    [ 1; 2; 4; 8 ];
  Table.print summary;
  Option.iter
    (fun path ->
      write_json path
        ([ ("mode", "\"multiclient\"");
           ("workload", Printf.sprintf "\"%s\"" workload);
           ("slots", json_i slots); ("queue", json_i queue) ]
        @ !json_fields))
    json

(* {1 Fleet-scale sweep}

   The discrete-event core at fleet scale: 10^3+ tiny synthetic
   sessions (fleet.micro, with a slice of the long-running heavy
   variant) against a pool of K servers, once per routing policy.
   Event recording is off — latencies stream into the simulator's
   histogram — so the sweep measures the scheduler, not trace
   bookkeeping.  The simulated numbers (geomean, makespan, per-policy
   throughput) are deterministic; the host-side clients/sec and
   events/sec are the wall-clock headline the bench guard soft-floors.

   A second table demonstrates the policy flip: below saturation
   (count = servers, every client gets an idle server) least-loaded
   and round-robin price identically; past saturation the light/heavy
   mix drains servers unevenly and blind round-robin keeps feeding
   busy ones, so least-loaded pulls ahead. *)

let fleet_mix = [ "fleet.micro"; "fleet.micro"; "fleet.micro.heavy" ]

let fleet_config ~servers ~slots ~queue ~policy ~record =
  { Sim.default_config with
    Sim.s_load =
      { Server_load.default with Server_load.slots;
        Server_load.queue_cap = queue };
    Sim.s_servers = servers;
    Sim.s_policy = policy;
    Sim.s_record_events = record }

(* The sampler's SLO keep-leg threshold: the tightest offload-span
   quantile limit in the spec, or none — a sampler keeps whole tasks,
   and a task's latency is its offload span. *)
let slo_span_limit objectives =
  List.fold_left
    (fun acc o ->
      match o with
      | Slo.Quantile { kind = "offload-span"; limit_s; _ } ->
        Float.min acc limit_s
      | _ -> acc)
    infinity objectives

(* FNV-1a over the kept-trace id list — the determinism fingerprint
   the bench guard compares exactly: any change to the kept set (one
   id added, dropped or reordered) changes the hash. *)
let kept_hash sampler =
  let h = ref 0xcbf29ce484222325L in
  let byte b = h := Int64.mul (Int64.logxor !h (Int64.of_int b)) 0x100000001b3L in
  List.iter
    (fun id ->
      String.iter (fun c -> byte (Char.code c)) id;
      byte 0x0a)
    (Trace.Sampler.kept_ids sampler);
  Printf.sprintf "%016Lx" !h

(* The sweep saturates on purpose, so verdicts use
   [Slo.fleet_default_spec] (an availability floor), not the serving
   target — see the note on that spec. *)
let run_fleet ?(clients = 1000) ?(servers = 4) ?(slots = 2) ?(queue = 2)
    ?(slo = Slo.fleet_default_spec) ?sample ?(sample_seed = 42) ?json
    ?incidents_out ?metrics_out () =
  let stagger_s = 0.0005 in
  let objectives = slo_objectives_exn slo in
  (* Per-policy SLO verdicts come from a fleet-wide windowed series
     fed by the simulator's streaming global sink — no per-client
     rings, so the sweep still measures the scheduler. *)
  let run_policy policy count =
    let cs = Sim.make_clients ~stagger_s ~workloads:fleet_mix ~count () in
    let series = Series.create () in
    let config =
      { (fleet_config ~servers ~slots ~queue ~policy ~record:false) with
        Sim.s_global_sink = Some (Series.sink series) }
    in
    let t0 = Monotonic_clock.now () in
    let result = Sim.run ~config cs in
    let wall_s =
      Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9
    in
    (result, wall_s, Slo.evaluate objectives series, series)
  in
  (* One sampled rerun of the same policy/fleet: a fresh series
     receives the stream plus the sampler's exemplars, and the
     sampler's keep decisions come from the seeded stateless RNG. *)
  let run_sampled policy count budget =
    let series = Series.create () in
    let sampler =
      Trace.Sampler.create ~slo_limit_s:(slo_span_limit objectives)
        ~exemplar:(fun ~ts ~kind ~value ~trace_id ->
          Series.add_exemplar series ~ts ~kind ~value ~trace_id)
        ~keep:(fun ~client ~task ->
          Rng.task_keep ~seed:(Int64.of_int sample_seed) ~client ~task ~budget)
        ()
    in
    let cs = Sim.make_clients ~stagger_s ~workloads:fleet_mix ~count () in
    let config =
      { (fleet_config ~servers ~slots ~queue ~policy ~record:false) with
        Sim.s_global_sink = Some (Series.sink series);
        Sim.s_sampler = Some sampler }
    in
    let t0 = Monotonic_clock.now () in
    let result = Sim.run ~config cs in
    let wall_s =
      Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9
    in
    (result, wall_s, sampler, series)
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Fleet sweep (%d clients, %d servers x %d slots, queue %d, mix \
            %s)"
           clients servers slots queue
           (String.concat "," fleet_mix))
      [ "policy"; "geomean speedup"; "local flips"; "queued"; "rejects";
        "makespan (s)"; "sim c/s"; "host c/s"; "host events/s"; "p95 (s)";
        "SLO" ]
  in
  let json_fields = ref [] in
  let sampled_incidents = ref [] in     (* (short, incident list), policy order *)
  let metrics_series = ref None in      (* first policy's sampled series *)
  let full_ev = ref 0.0 and full_wall = ref 0.0 in
  let samp_ev = ref 0.0 and samp_wall = ref 0.0 in
  List.iter
    (fun policy ->
      let result, wall_s, verdicts, _series = run_policy policy clients in
      let st = result.Sim.r_stats in
      let short =
        match policy with
        | Pool.Round_robin -> "rr"
        | Pool.Least_loaded -> "ll"
        | Pool.Sticky -> "sticky"
      in
      Table.add_row table
        [
          Pool.policy_to_string policy;
          Table.cell_f ~digits:3 (Sim.geomean_speedup result);
          Table.cell_i (Sim.flipped_local result);
          Table.cell_i st.Server_load.st_queued;
          Table.cell_i st.Server_load.st_rejects;
          Table.cell_f ~digits:3 result.Sim.r_makespan_s;
          Table.cell_f ~digits:1 result.Sim.r_throughput;
          Table.cell_f ~digits:0 (float_of_int clients /. wall_s);
          Table.cell_f ~digits:0 (float_of_int result.Sim.r_events /. wall_s);
          Table.cell_f ~digits:4 (Sim.latency_percentile result ~p:95.0);
          (if Slo.pass verdicts then "pass" else "FAIL");
        ];
      Printf.printf "SLO [%s] (%s): %s\n" slo
        (Pool.policy_to_string policy)
        (Slo.render verdicts);
      json_fields :=
        !json_fields
        @ [
            ( Printf.sprintf "fleet_%s_geomean" short,
              json_f (Sim.geomean_speedup result) );
            ( Printf.sprintf "fleet_%s_throughput" short,
              json_f result.Sim.r_throughput );
            ( Printf.sprintf "fleet_%s_clients_per_sec" short,
              json_f (float_of_int clients /. wall_s) );
            ( Printf.sprintf "fleet_%s_slo_pass" short,
              if Slo.pass verdicts then "true" else "false" );
          ];
      match sample with
      | None -> ()
      | Some budget ->
        (* Sampled leg of the same policy: overhead headline (events/s
           vs. the full-capture run above), kept-set count + hash for
           the determinism guard, incident timeline and exemplars. *)
        let sresult, swall_s, sampler, sseries =
          run_sampled policy clients budget
        in
        full_ev := !full_ev +. float_of_int result.Sim.r_events;
        full_wall := !full_wall +. wall_s;
        samp_ev := !samp_ev +. float_of_int sresult.Sim.r_events;
        samp_wall := !samp_wall +. swall_s;
        let incidents = Incident.detect objectives sseries in
        sampled_incidents := !sampled_incidents @ [ (short, incidents) ];
        if !metrics_series = None then metrics_series := Some sseries;
        Printf.printf
          "sampling [%s] budget %g: kept %d/%d tasks (%s), rows %d/%d, \
           peak buffered rows %d\n"
          (Pool.policy_to_string policy)
          budget
          (Trace.Sampler.kept sampler)
          (Trace.Sampler.tasks sampler)
          (String.concat ", "
             (List.map
                (fun (r, n) -> Printf.sprintf "%s %d" r n)
                (Trace.Sampler.reasons sampler)))
          (Trace.Sampler.rows_kept sampler)
          (Trace.Sampler.rows_seen sampler)
          (Trace.Sampler.buffered_rows_peak sampler);
        Printf.printf "incidents [%s]:\n%s\n"
          (Pool.policy_to_string policy)
          (Incident.render incidents);
        json_fields :=
          !json_fields
          @ [
              ( Printf.sprintf "fleet_%s_sampled_kept" short,
                json_i (Trace.Sampler.kept sampler) );
              ( Printf.sprintf "fleet_%s_kept_hash" short,
                Printf.sprintf "\"%s\"" (kept_hash sampler) );
            ])
    Pool.all_policies;
  Table.print table;
  print_newline ();
  let flip =
    Table.create
      ~title:
        (Printf.sprintf
           "Policy flip (%d servers x %d slots): least-loaded wins only \
            past saturation" servers slots)
      [ "clients"; "round-robin geomean"; "least-loaded geomean"; "winner" ]
  in
  List.iter
    (fun count ->
      let rr, _, _, _ = run_policy Pool.Round_robin count in
      let ll, _, _, _ = run_policy Pool.Least_loaded count in
      let g_rr = Sim.geomean_speedup rr
      and g_ll = Sim.geomean_speedup ll in
      Table.add_row flip
        [
          Table.cell_i count;
          Table.cell_f ~digits:4 g_rr;
          Table.cell_f ~digits:4 g_ll;
          (if Float.abs (g_ll -. g_rr) <= 1e-9 then "tie"
           else if g_ll > g_rr then "least-loaded"
           else "round-robin");
        ])
    [ servers; clients ];
  Table.print flip;
  (match sample with
  | None -> ()
  | Some budget ->
    let ratio =
      if !full_ev > 0.0 && !samp_wall > 0.0 && !full_wall > 0.0 then
        !samp_ev /. !samp_wall /. (!full_ev /. !full_wall)
      else 1.0
    in
    Printf.printf "\nsampling overhead: %.0f events/s sampled vs %.0f full \
                   (ratio %.3f)\n"
      (!samp_ev /. !samp_wall) (!full_ev /. !full_wall) ratio;
    json_fields :=
      !json_fields
      @ [
          ("fleet_sample_budget", json_f budget);
          ("fleet_sample_seed", json_i sample_seed);
          ("fleet_sample_vs_full_ratio", json_f ratio);
        ];
    Option.iter
      (fun path ->
        (* One jsonl stream across policies: each incident's label is
           prefixed with its policy key so lines stay self-describing. *)
        let all =
          List.concat_map
            (fun (short, incidents) ->
              List.map
                (fun (i : Incident.incident) ->
                  { i with Incident.i_label = short ^ "/" ^ i.Incident.i_label })
                incidents)
            !sampled_incidents
        in
        Incident.save path all)
      incidents_out;
    Option.iter
      (fun path ->
        match !metrics_series with
        | Some series ->
          Openmetrics.write path ~series (Series.totals series)
        | None -> ())
      metrics_out);
  Option.iter
    (fun path ->
      write_json path
        ([ ("mode", "\"fleet\"");
           ("clients", json_i clients);
           ("servers", json_i servers);
           ("slots", json_i slots);
           ("queue", json_i queue) ]
        @ !json_fields))
    json

(* {1 Self-profiled micro-bench lane}

   The measurement substrate for ROADMAP item 3: what does the
   simulator itself cost per unit of work?  Two legs:

   - a fleet leg — a small saturated fleet run (300 clients, the fleet
     mix, recording off) with the self-profiler on.  Simulated event
     count and total allocated words are deterministic; wall time is
     not, so events/sec is a host-dependent headline (guarded by a
     floor) while allocs/event tracks the baseline within tolerance;
   - a compressor leg — the 64 KiB structured page through
     [Compress.compress], giving bytes-compressed/sec (host-dependent)
     and the deterministic achieved ratio.

   Timing-derived numbers run [trials] measured trials after one
   discarded warmup trial (lazy registry/compiler state, cold caches)
   and report the median; the CI lane uses --trials 3.  Deterministic
   numbers are asserted identical across trials instead of averaged. *)

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let run_micro ?(trials = 3) ?json ?selfprof_out () =
  if trials < 1 then begin
    prerr_endline "bench micro: --trials must be >= 1";
    exit 1
  end;
  let wall_of t0 = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9 in
  (* Fleet leg. *)
  let fleet_clients = 300 in
  let fleet_trial () =
    let cs =
      Sim.make_clients ~stagger_s:0.0005 ~workloads:fleet_mix
        ~count:fleet_clients ()
    in
    (* Global series sink on, like run_fleet: the per-event path then
       exercises the sink-emit and hist zones, not just the
       scheduler. *)
    let series = Series.create () in
    let config =
      { (fleet_config ~servers:4 ~slots:2 ~queue:2 ~policy:Pool.Round_robin
           ~record:false)
        with Sim.s_global_sink = Some (Series.sink series) }
    in
    let w0 = Selfprof.allocated_words () in
    let t0 = Monotonic_clock.now () in
    let result = Sim.run ~config cs in
    let wall_s = wall_of t0 in
    let words = Selfprof.allocated_words () -. w0 in
    (result.Sim.r_events, wall_s, words)
  in
  Selfprof.enable ();
  Selfprof.reset ();
  ignore (fleet_trial ());          (* warmup: forces lazy state *)
  Selfprof.reset ();                (* zone table covers measured trials *)
  let fleet_runs = List.init trials (fun _ -> fleet_trial ()) in
  let events, _, _ = List.hd fleet_runs in
  List.iter
    (fun (e, _, _) ->
      if e <> events then begin
        prerr_endline "bench micro: event count varied across trials";
        exit 1
      end)
    fleet_runs;
  let fleet_wall_s = median (List.map (fun (_, w, _) -> w) fleet_runs) in
  let words_per_event =
    median (List.map (fun (_, _, w) -> w) fleet_runs) /. float_of_int events
  in
  let events_per_sec = float_of_int events /. fleet_wall_s in
  (* Compressor leg. *)
  let page = Lazy.force compressible_page in
  let reps = 32 in
  let compress_trial () =
    let t0 = Monotonic_clock.now () in
    for _ = 1 to reps do
      ignore (Compress.compress page)
    done;
    wall_of t0
  in
  ignore (compress_trial ());
  let compress_wall_s = median (List.init trials (fun _ -> compress_trial ())) in
  let compress_bytes_per_sec =
    float_of_int (reps * Bytes.length page) /. compress_wall_s
  in
  let compress_ratio = Compress.ratio page in
  Selfprof.disable ();
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Micro-bench lane (%d trial(s) + 1 warmup, median; fleet leg: %d \
            clients)"
           trials fleet_clients)
      [ "headline"; "value" ]
  in
  Table.add_row table
    [ "sim events (deterministic)"; Table.cell_i events ];
  Table.add_row table [ "events/sec"; Table.cell_f ~digits:0 events_per_sec ];
  Table.add_row table
    [ "allocs/event (words)"; Table.cell_f ~digits:1 words_per_event ];
  Table.add_row table
    [ "compress bytes/sec"; Table.cell_f ~digits:0 compress_bytes_per_sec ];
  Table.add_row table
    [ "compress ratio"; Table.cell_f ~digits:4 compress_ratio ];
  Table.print table;
  print_newline ();
  print_string (Selfprof.report ());
  Option.iter
    (fun path ->
      Openmetrics.write_selfprof path ~unwound:(Selfprof.unwound ())
        (Selfprof.rows ());
      Printf.printf "\nwrote %s\n" path)
    selfprof_out;
  Option.iter
    (fun path ->
      write_json path
        [ ("mode", "\"micro\"");
          ("trials", json_i trials);
          ("micro_sim_events", json_i events);
          ("micro_events_per_sec", json_f events_per_sec);
          ("micro_allocs_per_event_w", json_f words_per_event);
          ("micro_compress_bytes_per_sec", json_f compress_bytes_per_sec);
          ("micro_compress_ratio", json_f compress_ratio) ])
    json

(* {1 Migration recovery}

   The checkpoint/migration machinery against its fallback: every
   canonical loss scenario (mid-offload crash with healthy siblings,
   rolling maintenance, cost-driven rebalance of a heterogeneous
   pool) runs twice — migration on, then off, where every lost
   offload rolls back and replays locally.  Both runs are fully
   simulated and deterministic; the headline is how many tasks
   finished by migration and the recovered-task wall-clock ratio
   replay/migrate (> 1 means shipping the checkpoint to a healthy
   member beat re-running on the slow mobile core).  The ratio is
   measured on the clients that actually lost a server — the fleet
   makespan can be pinned by an unaffected straggler. *)

(* Wall clock summed over the clients a scenario actually disturbed:
   checkpoint takers in migrate mode, local replayers in replay mode.
   Determinism makes the two sets the same clients. *)
let recovered_wall (r : Sim.result) =
  List.fold_left
    (fun acc cr ->
      let rep = cr.Sim.cr_report in
      if rep.Session.rep_checkpoints > 0 || rep.Session.rep_fallbacks > 0
      then acc +. rep.Session.rep_total_s
      else acc)
    0.0 r.Sim.r_clients

let run_migrate ?(policy = Pool.Round_robin) ?json () =
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Migration recovery vs rollback + local replay (%s, \
            profile-script scale)"
           (Pool.policy_to_string policy))
      [ "scenario"; "mode"; "checkpoints"; "migrations"; "completed";
        "replays"; "recovered wall (s)"; "makespan (s)"; "geomean speedup" ]
  in
  let json_fields = ref [] in
  let ratios = ref [] in
  let migrations_total = ref 0 in
  List.iter
    (fun name ->
      let sc_on = Sim.scenario ~policy ~migrate:true name in
      let sc_off = Sim.scenario ~policy ~migrate:false name in
      let on = Sim.run ~config:sc_on.Sim.sc_config sc_on.Sim.sc_clients in
      let off = Sim.run ~config:sc_off.Sim.sc_config sc_off.Sim.sc_clients in
      print_endline
        (Sim.render
           ~title:(Printf.sprintf "%s (migrate on): %s" name sc_on.Sim.sc_title)
           on);
      print_newline ();
      let ck_on, mig_on, done_on, fb_on = Sim.migration_totals on in
      let ck_off, mig_off, done_off, fb_off = Sim.migration_totals off in
      ignore ck_off;
      let row mode (ck, mig, done_, fb) (r : Sim.result) =
        Table.add_row table
          [
            name; mode; Table.cell_i ck; Table.cell_i mig;
            Table.cell_i done_; Table.cell_i fb;
            Table.cell_f ~digits:4 (recovered_wall r);
            Table.cell_f ~digits:4 r.Sim.r_makespan_s;
            Table.cell_f ~digits:3 (Sim.geomean_speedup r);
          ]
      in
      row "migrate" (ck_on, mig_on, done_on, fb_on) on;
      row "replay" (0, mig_off, done_off, fb_off) off;
      let ratio = recovered_wall off /. recovered_wall on in
      migrations_total := !migrations_total + done_on;
      ratios := ratio :: !ratios;
      json_fields :=
        !json_fields
        @ [
            (Printf.sprintf "%s_migrations" name, json_i done_on);
            (Printf.sprintf "%s_replays" name, json_i fb_off);
            ( Printf.sprintf "%s_recovered_wall_on" name,
              json_f (recovered_wall on) );
            ( Printf.sprintf "%s_recovered_wall_off" name,
              json_f (recovered_wall off) );
            (Printf.sprintf "%s_makespan_on" name, json_f on.Sim.r_makespan_s);
            ( Printf.sprintf "%s_makespan_off" name,
              json_f off.Sim.r_makespan_s );
            (Printf.sprintf "%s_ratio" name, json_f ratio);
          ])
    Sim.scenario_names;
  Table.print table;
  let geomean xs =
    exp
      (List.fold_left (fun acc x -> acc +. log x) 0.0 xs
      /. float_of_int (List.length xs))
  in
  let recovery_ratio = geomean !ratios in
  Printf.printf
    "\n%d migration(s) completed; replay/migrate recovered-task wall-clock \
     ratio (geomean) %.4f\n"
    !migrations_total recovery_ratio;
  Option.iter
    (fun path ->
      write_json path
        ([
           ("mode", "\"migrate\"");
           ("policy", Printf.sprintf "\"%s\"" (Pool.policy_to_string policy));
           ("migrations_done", json_i !migrations_total);
           ("recovery_ratio", json_f recovery_ratio);
         ]
        @ !json_fields))
    json

(* {1 Windowed time series}

   The telemetry layer end to end on one traced run: cut the virtual
   timeline into fixed windows, print per-interval rates and gauges,
   evaluate the SLO spec over the series, and optionally export the
   whole thing as OpenMetrics text.  Driven by the simulated clock, so
   the table is byte-identical across reruns. *)

let run_timeseries ?(workload = "164.gzip") ?(window = Series.default_window_s)
    ?(slo = Slo.default_spec) ?json ?metrics_out () =
  let entry =
    match Registry.by_name workload with
    | Some e -> e
    | None ->
      Printf.eprintf "unknown workload %s\n" workload;
      exit 1
  in
  let objectives = slo_objectives_exn slo in
  let compiled =
    Compiler.compile ~profile_script:entry.Registry.e_profile_script
      ~profile_files:entry.Registry.e_files
      ~eval_scale:entry.Registry.e_eval_scale
      (entry.Registry.e_build ())
  in
  let metrics = Trace.Metrics.create () in
  let series = Series.create ~window_s:window () in
  let config =
    { (Session.default_config ()) with
      Session.trace =
        Trace.fan_out [ Trace.Metrics.sink metrics; Series.sink series ] }
  in
  let session =
    Session.create ~config ~script:entry.Registry.e_profile_script
      ~files:entry.Registry.e_files compiled.Compiler.c_output
      ~seeds:compiled.Compiler.c_seeds
  in
  ignore (Session.run session);
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "%s: windowed time series (%gs windows, profile-script scale)"
           workload window)
      [ "window"; "start (s)"; "offloads"; "faults"; "wire (B)"; "retries";
        "rejects"; "queue peak"; "occ peak"; "bw belief (Mbps)" ]
  in
  List.iter
    (fun (w : Series.window) ->
      let m = w.Series.w_metrics in
      Table.add_row table
        [
          Table.cell_i w.Series.w_index;
          Table.cell_f ~digits:2 w.Series.w_start_s;
          Table.cell_i m.Trace.Metrics.offloads;
          Table.cell_i m.Trace.Metrics.fault_count;
          Table.cell_i
            (m.Trace.Metrics.wire_to_server + m.Trace.Metrics.wire_to_mobile);
          Table.cell_i m.Trace.Metrics.retries;
          Table.cell_i m.Trace.Metrics.rejects;
          Table.cell_i w.Series.w_peak_queue_depth;
          Table.cell_i w.Series.w_peak_occupancy;
          (if Float.is_nan w.Series.w_bw_bps then "-"
           else Table.cell_f ~digits:2 (w.Series.w_bw_bps /. 1e6));
        ])
    (Series.windows series);
  Table.print table;
  let verdicts = Slo.evaluate objectives series in
  Printf.printf "\nSLO: %s\n" (Slo.render verdicts);
  Option.iter
    (fun path ->
      Openmetrics.write path ~series metrics;
      Printf.printf "wrote %s (OpenMetrics text exposition)\n" path)
    metrics_out;
  Option.iter
    (fun path ->
      write_json path
        [
          ("mode", "\"timeseries\"");
          ("workload", Printf.sprintf "\"%s\"" workload);
          ("window_s", json_f window);
          ("windows", json_i (List.length (Series.windows series)));
          ("offloads", json_i metrics.Trace.Metrics.offloads);
          ("slo_pass", if Slo.pass verdicts then "true" else "false");
        ])
    json

(* {1 Ablations} *)

let ablation_configs () =
  let base = Session.default_config () in
  [
    ("copy-on-demand + prefetch (default)", base);
    ("no prefetch (pure copy-on-demand)", { base with Session.prefetch = false });
    ("copy-all (static partitioning style)", { base with Session.copy_all = true });
    ("no write-back compression",
     { base with Session.compress_writeback = false });
    ("compress both directions", { base with Session.compress_upload = true });
  ]

let run_ablations () =
  (* Memory-movement ablations on mcf: a large, partially-dirty
     working set where the policies differ visibly. *)
  let entry = Option.get (Registry.by_name "429.mcf") in
  let compiled =
    Compiler.compile ~profile_script:entry.Registry.e_profile_script
      ~profile_files:entry.Registry.e_files
      ~eval_scale:entry.Registry.e_eval_scale
      (entry.Registry.e_build ())
  in
  let table =
    Table.create
      ~title:"Ablation: data movement policy (429.mcf, fast network)"
      [ "policy"; "exec (s)"; "faults"; "to server (KB)";
        "to mobile wire (KB)" ]
  in
  List.iter
    (fun (label, config) ->
      let session =
        Session.create ~config ~script:entry.Registry.e_eval_script
          ~files:entry.Registry.e_files compiled.Compiler.c_output
          ~seeds:compiled.Compiler.c_seeds
      in
      let r = Session.run session in
      Table.add_row table
        [
          label;
          Table.cell_f r.Session.rep_total_s;
          Table.cell_i r.Session.rep_faults;
          Table.cell_i (r.Session.rep_bytes_to_server / 1024);
          Table.cell_i (r.Session.rep_wire_bytes_to_mobile / 1024);
        ])
    (ablation_configs ());
  Table.print table;
  print_newline ();
  (* Decision-mode ablation on gzip over the slow network: the
     dynamic estimator is what saves gzip from a slowdown. *)
  let gzip = Option.get (Registry.by_name "164.gzip") in
  let gzip_compiled =
    Compiler.compile ~profile_script:gzip.Registry.e_profile_script
      ~profile_files:gzip.Registry.e_files
      ~eval_scale:gzip.Registry.e_eval_scale
      (gzip.Registry.e_build ())
  in
  let local =
    Local_run.run ~script:gzip.Registry.e_eval_script
      ~files:gzip.Registry.e_files gzip_compiled.Compiler.c_original
  in
  let table2 =
    Table.create
      ~title:
        "Ablation: offload decision mode (164.gzip; the dynamic \
         estimator's refusals protect the degrading networks)"
      [ "network"; "decision"; "exec (s)"; "vs local"; "offloads" ]
  in
  Table.add_row table2
    [ "-"; "local baseline"; Table.cell_f local.Local_run.lr_total_s; "1.00";
      "0" ];
  List.iter
    (fun (net_label, link) ->
      List.iter
        (fun (label, decision) ->
          let config =
            { (Session.default_config ~link ()) with
              Session.decision; Session.fast_radio = false }
          in
          let session =
            Session.create ~config ~script:gzip.Registry.e_eval_script
              ~files:gzip.Registry.e_files gzip_compiled.Compiler.c_output
              ~seeds:gzip_compiled.Compiler.c_seeds
          in
          let r = Session.run session in
          Table.add_row table2
            [
              net_label;
              label;
              Table.cell_f r.Session.rep_total_s;
              Table.cell_f
                (r.Session.rep_total_s /. local.Local_run.lr_total_s);
              Table.cell_i r.Session.rep_offloads;
            ])
        [ ("dynamic (paper)", Session.Dynamic);
          ("always offload", Session.Always_offload);
          ("never offload", Session.Never_offload) ])
    [ ("802.11n", Link.slow_wifi); ("congested", Link.congested) ];
  Table.print table2;
  print_newline ();
  (* Explicit GEP lowering (the literal Section 3.2 codegen) vs the
     layout-environment realignment the pipeline uses by default. *)
  let chess = Chess.build () in
  let samples =
    Compiler.profile ~script:(Chess.script ~depth:3 ~turns:1) ~files:[] chess
  in
  ignore samples;
  let table3 =
    Table.create
      ~title:
        "Ablation: explicit GEP lowering vs layout-environment realignment \
         (chess, fast network)"
      [ "realignment"; "exec (s)"; "offloads" ]
  in
  List.iter
    (fun (label, lower_geps) ->
      let out =
        Pipeline.run ~lower_geps ~mobile:Arch.arm32 ~server:Arch.x86_64
          ~targets:[ Chess.target ] chess
      in
      let session =
        Session.create
          ~config:(Session.default_config ())
          ~script:(Chess.script ~depth:6 ~turns:2)
          out
          ~seeds:
            [ { Session.seed_name = Chess.target; Session.seed_time_s = 1.0;
                Session.seed_mem_bytes = 32768 } ]
      in
      let r = Session.run session in
      Table.add_row table3
        [ label; Table.cell_f r.Session.rep_total_s;
          Table.cell_i r.Session.rep_offloads ])
    [ ("layout environment (default)", false);
      ("explicit byte arithmetic", true) ];
  Table.print table3

let () =
  let argv = Array.to_list Sys.argv in
  let opt name =
    let rec go = function
      | flag :: v :: _ when String.equal flag name -> Some v
      | _ :: tl -> go tl
      | [] -> None
    in
    go argv
  in
  let opt_int name = Option.map int_of_string (opt name) in
  match argv with
  | _ :: "micro" :: _ ->
    run_micro ?trials:(opt_int "--trials") ?json:(opt "--json")
      ?selfprof_out:(opt "--selfprof-out") ()
  | _ :: "bechamel" :: _ -> run_bechamel ()
  | _ :: "ablations" :: _ -> run_ablations ()
  | _ :: "trace" :: _ -> run_trace_summaries ?json:(opt "--json") ()
  | _ :: "faults" :: _ ->
    run_fault_sweep ?sample:(opt_int "--sample") ?json:(opt "--json") ()
  | _ :: "percentiles" :: _ ->
    run_percentiles ?sample:(opt_int "--sample") ?json:(opt "--json") ()
  | _ :: "multiclient" :: _ ->
    run_multiclient ?slots:(opt_int "--slots") ?queue:(opt_int "--queue")
      ?workload:(opt "--workload") ?slo:(opt "--slo") ?json:(opt "--json") ()
  | _ :: "fleet" :: _ ->
    run_fleet ?clients:(opt_int "--clients") ?servers:(opt_int "--servers")
      ?slots:(opt_int "--slots") ?queue:(opt_int "--queue")
      ?sample:(Option.map float_of_string (opt "--sample"))
      ?sample_seed:(opt_int "--sample-seed") ?json:(opt "--json")
      ?incidents_out:(opt "--incidents-out") ?metrics_out:(opt "--metrics-out")
      ()
  | _ :: "migrate" :: _ ->
    let policy =
      Option.bind (opt "--policy") Pool.policy_of_string
    in
    run_migrate ?policy ?json:(opt "--json") ()
  | _ :: "timeseries" :: _ ->
    run_timeseries ?workload:(opt "--workload")
      ?window:(Option.map float_of_string (opt "--window"))
      ?slo:(opt "--slo") ?json:(opt "--json")
      ?metrics_out:(opt "--metrics-out") ()
  | _ -> regenerate_all ()
