#!/usr/bin/env python3
"""Bench-lane helper: merge headline JSON files and guard against
performance regressions.

Subcommands:

  merge P F FL M MI -o OUT
                        combine the `bench percentiles --json`,
                        `bench faults --json`, `bench fleet --json`,
                        `bench migrate --json` and `bench micro --json`
                        outputs into one BENCH_pr.json
                        (schema-versioned)
  check PR BASELINE     compare a PR's headline numbers against the
                        committed baseline; exit non-zero on a
                        regression (or an out-of-band improvement —
                        see re-baselining below). With --explain
                        DIFF.json (the output of `offload-cli diff
                        OLD NEW --json`), a failure message also
                        names the top-3 span-tree nodes the trace
                        differ attributes the slowdown to.
  selftest BASELINE     verify the guard actually fails on an injected
                        2x slowdown — including a doubled allocs/event
                        and a halved micro events/sec — and passes on
                        an identical copy; also proves a missing,
                        empty or truncated artifact yields the named
                        error below, not a traceback

Artifact errors: every JSON argument is read through one loader that
turns a missing, empty or syntactically truncated file into a named
"bench_guard: ..." message naming the path and the fix (re-run the
bench step that writes it) — the usual cause is a bench step that
crashed or was cancelled mid-write, and a Python traceback pointing
at json.load buries that.

The simulator is deterministic, so at a fixed --sample size the
headline numbers are stable across runs and machines; the tolerance
only needs to absorb intentional model changes, not noise.

Re-baselining: when a PR intentionally shifts performance (either
direction) beyond the tolerance, regenerate the baseline at the same
reduced scale and commit it with the change:

    dune exec bench/main.exe -- percentiles --sample 4 --json /tmp/p.json
    dune exec bench/main.exe -- faults      --sample 4 --json /tmp/f.json
    dune exec bench/main.exe -- fleet --sample 0.01 --json /tmp/fl.json
    dune exec bench/main.exe -- migrate     --json /tmp/m.json
    dune exec bench/main.exe -- micro --trials 3 --json /tmp/mi.json
    python3 scripts/bench_guard.py merge /tmp/p.json /tmp/f.json \
        /tmp/fl.json /tmp/m.json /tmp/mi.json -o BENCH_baseline.json

Fleet guard: the per-policy geomean speedups and simulated clients/sec
come from the deterministic simulator, so they are held to the same
tolerance as the percentile headline.  The host-side clients/sec is
wall-clock and machine-dependent; it only has to clear an absolute
floor (--fleet-host-floor), not track the baseline.

Migration guard: the canonical loss scenarios are fully simulated, so
migrations-completed is held *exactly* (a drop means tasks silently
fell back to local replay) and the replay/migrate recovered-task
wall-clock ratio tracks the baseline within the tolerance.  The ratio
must also stay above 1.0 — the subsystem's reason to exist.

Micro guard (schema 4): the self-profiled micro-bench lane (`bench
micro --trials 3`, three measured trials after a discarded warmup,
median taken).  Its deterministic numbers — simulated event count
(exact), allocs/event and compression ratio (tolerance, with the
allocs/event *ceiling* at baseline*(1+tolerance) being the number the
lane exists for) — track the baseline.  Its wall-clock numbers
(events/sec, compress bytes/sec) are machine-dependent, so they get
two floors each: a relative floor at baseline * --micro-floor-frac
(default 0.55, so an exact halving always fails the selftest) and an
absolute backstop (--micro-events-floor / --micro-compress-floor).

Fleet SLO column: the sweep saturates on purpose, so its verdicts use
the availability-floor spec (Slo.fleet_default_spec), which passes at
baseline scale; the guard holds each per-policy pass/fail *equal* to
the baseline value, so a flip either way is a reportable change, not
a perpetual FAIL.

Sampling guard (schema 5): the tail-based trace sampler is seeded and
the fleet is deterministic, so per policy both the kept-task count
(fleet_<p>_sampled_kept, which must also stay > 0 — an empty kept set
means the sampler dropped faulted tasks) and the FNV-1a hash over the
kept-trace id list (fleet_<p>_kept_hash) are held *exactly*: any
drift is a nondeterministic keep decision or a changed keep policy.
The sampled run's events/sec relative to the full-capture run
(fleet_sample_vs_full_ratio) is wall-clock, so like the host floor it
only has to clear an absolute floor (--sample-ratio-floor, default
0.9): sampling must stay within 10% of free.
"""

import argparse
import copy
import json
import os
import shutil
import sys
import tempfile

SCHEMA = 5

FLEET_POLICIES = ("rr", "ll", "sticky")


def load(path):
    """Read one headline JSON artifact.

    A missing, unreadable, empty or truncated file exits with a named
    actionable message instead of a traceback: on CI these mean the
    bench step that writes the artifact crashed or was cancelled, and
    the fix is to re-run that step, not to debug this script.
    """
    try:
        with open(path) as fh:
            text = fh.read()
    except OSError as exc:
        sys.exit(
            f"bench_guard: cannot read {path}: "
            f"{exc.strerror or exc}; re-run the bench step that "
            "writes this artifact"
        )
    if not text.strip():
        sys.exit(
            f"bench_guard: {path} is empty; the bench step that "
            "writes it was interrupted before producing output — "
            "re-run it"
        )
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        sys.exit(
            f"bench_guard: {path} is not valid JSON ({exc}); the "
            "artifact is likely truncated — re-run the bench step "
            "that writes it"
        )


def cmd_merge(args):
    percentiles = load(args.percentiles)
    faults = load(args.faults)
    fleet = load(args.fleet)
    migrate = load(args.migrate)
    micro = load(args.micro)
    for blob, want in (
        (percentiles, "percentiles"),
        (faults, "faults"),
        (fleet, "fleet"),
        (migrate, "migrate"),
        (micro, "micro"),
    ):
        mode = blob.get("mode")
        if mode != want:
            sys.exit(f"bench_guard: expected mode={want!r}, got {mode!r}")
    merged = {
        "schema": SCHEMA,
        "percentiles": percentiles,
        "faults": faults,
        "fleet": fleet,
        "migrate": migrate,
        "micro": micro,
    }
    with open(args.output, "w") as fh:
        json.dump(merged, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")


def compare(pr, baseline, tolerance, micro_floor_frac=0.55):
    """Return a list of failure messages (empty = within tolerance)."""
    failures = []
    for blob, name in ((pr, "PR"), (baseline, "baseline")):
        if blob.get("schema") != SCHEMA:
            failures.append(
                f"{name} file has schema {blob.get('schema')!r}, "
                f"expected {SCHEMA}"
            )
    if failures:
        return failures

    base_speedup = baseline["percentiles"]["geomean_speedup"]
    pr_speedup = pr["percentiles"]["geomean_speedup"]
    ratio = pr_speedup / base_speedup
    if ratio < 1.0 - tolerance:
        failures.append(
            f"geomean speedup regressed: {pr_speedup:.4f} vs baseline "
            f"{base_speedup:.4f} ({(1.0 - ratio) * 100:.1f}% below, "
            f"tolerance {tolerance * 100:.0f}%)"
        )
    elif ratio > 1.0 + tolerance:
        failures.append(
            f"geomean speedup improved beyond tolerance: {pr_speedup:.4f} "
            f"vs baseline {base_speedup:.4f} "
            f"({(ratio - 1.0) * 100:.1f}% above) — if intentional, "
            "re-baseline (see scripts/bench_guard.py docstring)"
        )

    base_survival = baseline["faults"]["survival_rate"]
    pr_survival = pr["faults"]["survival_rate"]
    if pr_survival < base_survival:
        failures.append(
            f"fault survival rate dropped: {pr_survival:.3f} vs baseline "
            f"{base_survival:.3f}"
        )

    # Fleet headline: simulated numbers are deterministic, so both
    # geomean and simulated clients/sec track the baseline within the
    # same tolerance (both directions — an out-of-band improvement
    # means the model changed and the baseline is stale).
    for policy in FLEET_POLICIES:
        for metric, label in (
            ("geomean", "fleet geomean speedup"),
            ("throughput", "fleet simulated clients/sec"),
        ):
            key = f"fleet_{policy}_{metric}"
            base_value = baseline["fleet"][key]
            pr_value = pr["fleet"][key]
            ratio = pr_value / base_value
            if ratio < 1.0 - tolerance:
                failures.append(
                    f"{label} ({policy}) regressed: {pr_value:.4f} vs "
                    f"baseline {base_value:.4f} "
                    f"({(1.0 - ratio) * 100:.1f}% below)"
                )
            elif ratio > 1.0 + tolerance:
                failures.append(
                    f"{label} ({policy}) improved beyond tolerance: "
                    f"{pr_value:.4f} vs baseline {base_value:.4f} — "
                    "if intentional, re-baseline"
                )

    # Migration headline: completed migrations are deterministic and
    # held exactly — a drop means a scenario silently fell back to
    # local replay.  The recovered-task wall-clock ratio tracks the
    # baseline, and must keep migration strictly cheaper than replay.
    base_done = baseline["migrate"]["migrations_done"]
    pr_done = pr["migrate"]["migrations_done"]
    if pr_done != base_done:
        failures.append(
            f"migrations completed changed: {pr_done} vs baseline "
            f"{base_done} (scenarios are deterministic — a drop means "
            "tasks fell back to local replay)"
        )
    base_ratio = baseline["migrate"]["recovery_ratio"]
    pr_ratio = pr["migrate"]["recovery_ratio"]
    if pr_ratio <= 1.0:
        failures.append(
            f"migration no longer beats local replay: recovered-task "
            f"wall-clock ratio {pr_ratio:.4f} <= 1.0"
        )
    rel = pr_ratio / base_ratio
    if rel < 1.0 - tolerance:
        failures.append(
            f"migration recovery ratio regressed: {pr_ratio:.4f} vs "
            f"baseline {base_ratio:.4f} ({(1.0 - rel) * 100:.1f}% below)"
        )
    elif rel > 1.0 + tolerance:
        failures.append(
            f"migration recovery ratio improved beyond tolerance: "
            f"{pr_ratio:.4f} vs baseline {base_ratio:.4f} — "
            "if intentional, re-baseline"
        )

    # Fleet SLO column: held equal to the baseline so a flip either
    # way is a reportable change (the saturated sweep is judged
    # against the availability-floor spec, which passes at baseline).
    for policy in FLEET_POLICIES:
        key = f"fleet_{policy}_slo_pass"
        base_pass = baseline["fleet"].get(key)
        pr_pass = pr["fleet"].get(key)
        if pr_pass != base_pass:
            failures.append(
                f"fleet SLO verdict ({policy}) flipped: {pr_pass} vs "
                f"baseline {base_pass} (spec is an availability floor "
                "under deliberate saturation — investigate, then "
                "re-baseline if intentional)"
            )

    # Micro lane, deterministic numbers: the simulated event count is
    # exact; allocs/event and compression ratio track the baseline,
    # with the allocs/event *ceiling* being the per-event cost the
    # lane exists to guard.
    base_events = baseline["micro"]["micro_sim_events"]
    pr_events = pr["micro"]["micro_sim_events"]
    if pr_events != base_events:
        failures.append(
            f"micro-lane simulated event count changed: {pr_events} vs "
            f"baseline {base_events} (the fleet leg is deterministic — "
            "re-baseline if the model intentionally changed)"
        )
    base_words = baseline["micro"]["micro_allocs_per_event_w"]
    pr_words = pr["micro"]["micro_allocs_per_event_w"]
    rel = pr_words / base_words
    if rel > 1.0 + tolerance:
        failures.append(
            f"allocs/event above ceiling: {pr_words:.1f} words vs "
            f"baseline {base_words:.1f} ({(rel - 1.0) * 100:.1f}% above, "
            f"tolerance {tolerance * 100:.0f}%)"
        )
    elif rel < 1.0 - tolerance:
        failures.append(
            f"allocs/event improved beyond tolerance: {pr_words:.1f} "
            f"words vs baseline {base_words:.1f} — if intentional "
            "(a zero-alloc optimization landed), re-baseline"
        )
    base_cr = baseline["micro"]["micro_compress_ratio"]
    pr_cr = pr["micro"]["micro_compress_ratio"]
    rel = pr_cr / base_cr
    if rel > 1.0 + tolerance or rel < 1.0 - tolerance:
        failures.append(
            f"micro compression ratio moved: {pr_cr:.4f} vs baseline "
            f"{base_cr:.4f} (deterministic — re-baseline if the codec "
            "intentionally changed)"
        )

    # Sampling determinism: the keep decision is a pure function of
    # (seed, client, task) plus deterministic tail triggers, so the
    # kept count and the hash over the kept-trace id list are exact.
    # A kept count of zero fails outright — the tail legs alone must
    # keep every faulted task, and the fleet always has some.
    for policy in FLEET_POLICIES:
        kept_key = f"fleet_{policy}_sampled_kept"
        hash_key = f"fleet_{policy}_kept_hash"
        pr_kept = pr["fleet"].get(kept_key)
        base_kept = baseline["fleet"].get(kept_key)
        if pr_kept is None or base_kept is None:
            failures.append(
                f"{kept_key} missing from "
                f"{'PR' if pr_kept is None else 'baseline'} — run "
                "`bench fleet --sample 0.01 --json` (schema 5 requires "
                "the sampling leg)"
            )
            continue
        if pr_kept <= 0:
            failures.append(
                f"sampler kept set empty ({policy}): {kept_key} = "
                f"{pr_kept} (tail-based keep must retain every faulted "
                "task — the sampler is broken)"
            )
        elif pr_kept != base_kept:
            failures.append(
                f"sampler kept-task count changed ({policy}): {pr_kept} "
                f"vs baseline {base_kept} (keep decisions are seeded "
                "and exact — re-baseline only with an intentional "
                "sampler change)"
            )
        pr_hash = pr["fleet"].get(hash_key)
        base_hash = baseline["fleet"].get(hash_key)
        if pr_hash != base_hash:
            failures.append(
                f"sampler kept set drifted ({policy}): kept-id hash "
                f"{pr_hash} vs baseline {base_hash} (same count, "
                "different tasks = nondeterministic keep decision)"
            )

    # Micro lane, wall-clock numbers: machine-dependent, so they only
    # have to clear a *relative floor* (baseline * micro_floor_frac;
    # at the 0.55 default an exact halving always fails).  Absolute
    # backstops live in check_wall_floors.
    for key, label in (
        ("micro_events_per_sec", "micro events/sec"),
        ("micro_compress_bytes_per_sec", "micro compress bytes/sec"),
    ):
        base_value = baseline["micro"][key]
        pr_value = pr["micro"][key]
        if pr_value < base_value * micro_floor_frac:
            failures.append(
                f"{label} collapsed: {pr_value:.0f} vs baseline "
                f"{base_value:.0f} (below {micro_floor_frac:.0%} of "
                "baseline — wall-clock throughput regression)"
            )
    return failures


def check_host_floor(pr, floor):
    """Wall-clock fleet throughput only has to clear an absolute
    floor; it is machine-dependent, so it never tracks the baseline."""
    failures = []
    for policy in FLEET_POLICIES:
        key = f"fleet_{policy}_clients_per_sec"
        value = pr["fleet"].get(key)
        if value is not None and value < floor:
            failures.append(
                f"fleet host throughput ({policy}) below floor: "
                f"{value:.0f} clients/sec < {floor:.0f}"
            )
    return failures


def check_micro_floors(pr, events_floor, compress_floor):
    """Absolute backstops for the micro lane's wall-clock numbers, in
    the spirit of the fleet host floor: even on a slow machine the
    simulator must clear these outright."""
    failures = []
    for key, floor, unit in (
        ("micro_events_per_sec", events_floor, "events/sec"),
        ("micro_compress_bytes_per_sec", compress_floor, "bytes/sec"),
    ):
        value = pr.get("micro", {}).get(key)
        if value is not None and value < floor:
            failures.append(
                f"micro lane below absolute floor: {key} {value:.0f} "
                f"{unit} < {floor:.0f}"
            )
    return failures


def check_sample_ratio_floor(pr, floor):
    """Sampling overhead: the sampled fleet run's events/sec relative
    to the full-capture run.  Wall-clock, so an absolute floor — the
    sampler's buffering must stay within (1 - floor) of free."""
    failures = []
    value = pr["fleet"].get("fleet_sample_vs_full_ratio")
    if value is None:
        failures.append(
            "fleet_sample_vs_full_ratio missing from PR — run "
            "`bench fleet --sample 0.01 --json` (schema 5 requires "
            "the sampling leg)"
        )
    elif value < floor:
        failures.append(
            f"sampling overhead too high: sampled/full events/sec "
            f"ratio {value:.3f} < floor {floor:.2f}"
        )
    return failures


def explain(path, top=3):
    """Summarise a trace-diff JSON (`offload-cli diff OLD NEW --json`)
    as attribution lines: where did the extra time go?"""
    try:
        report = load(path)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"(--explain {path}: unreadable — {exc})"]
    lines = [
        "attribution (from {}: wall {:.4f}s -> {:.4f}s, delta {:+.4f}s):".format(
            path,
            report.get("wall_a_s", 0.0),
            report.get("wall_b_s", 0.0),
            report.get("delta_s", 0.0),
        )
    ]
    nodes = sorted(
        report.get("nodes", []),
        key=lambda n: abs(n.get("self_delta_s", 0.0)),
        reverse=True,
    )
    for node in nodes[:top]:
        lines.append(
            f"  {node.get('path', '?')}: self {node.get('self_delta_s', 0.0):+.4f}s"
        )
    if not nodes:
        lines.append("  (diff report carries no node rows)")
    return lines


def cmd_check(args):
    pr = load(args.pr)
    baseline = load(args.baseline)
    failures = compare(
        pr, baseline, args.tolerance, micro_floor_frac=args.micro_floor_frac
    )
    failures += check_host_floor(pr, args.fleet_host_floor)
    failures += check_micro_floors(
        pr, args.micro_events_floor, args.micro_compress_floor
    )
    failures += check_sample_ratio_floor(pr, args.sample_ratio_floor)
    if failures:
        for message in failures:
            print(f"FAIL: {message}")
        if args.explain:
            for line in explain(args.explain):
                print(line)
        sys.exit(1)
    print(
        "OK: geomean speedup "
        f"{pr['percentiles']['geomean_speedup']:.4f} vs baseline "
        f"{baseline['percentiles']['geomean_speedup']:.4f} "
        f"(tolerance {args.tolerance * 100:.0f}%), survival rate "
        f"{pr['faults']['survival_rate']:.3f}, fleet geomeans "
        + "/".join(
            f"{pr['fleet'][f'fleet_{p}_geomean']:.3f}" for p in FLEET_POLICIES
        )
        + f", {pr['migrate']['migrations_done']} migration(s) at "
        f"recovery ratio {pr['migrate']['recovery_ratio']:.4f}, micro "
        f"{pr['micro']['micro_events_per_sec']:.0f} events/sec at "
        f"{pr['micro']['micro_allocs_per_event_w']:.0f} words/event, "
        "sampled kept "
        + "/".join(
            str(pr["fleet"][f"fleet_{p}_sampled_kept"])
            for p in FLEET_POLICIES
        )
        + " tasks at overhead ratio "
        f"{pr['fleet']['fleet_sample_vs_full_ratio']:.3f}"
    )


def selftest_loader():
    """Prove load() turns broken artifacts into the named error."""
    tmpdir = tempfile.mkdtemp(prefix="bench_guard_selftest.")
    try:
        missing = os.path.join(tmpdir, "missing.json")
        try:
            load(missing)
        except SystemExit as exc:
            if "bench_guard: cannot read" not in str(exc):
                sys.exit(
                    "selftest: missing artifact produced "
                    f"{str(exc)!r}, not the named error"
                )
        else:
            sys.exit("selftest: a missing artifact was not caught")

        empty = os.path.join(tmpdir, "empty.json")
        with open(empty, "w"):
            pass
        try:
            load(empty)
        except SystemExit as exc:
            if "is empty" not in str(exc):
                sys.exit(
                    "selftest: empty artifact produced "
                    f"{str(exc)!r}, not the named error"
                )
        else:
            sys.exit("selftest: an empty artifact was not caught")

        truncated = os.path.join(tmpdir, "truncated.json")
        with open(truncated, "w") as fh:
            fh.write('{"percentiles": {"geomean_speedup": 1.')
        try:
            load(truncated)
        except SystemExit as exc:
            if "is not valid JSON" not in str(exc):
                sys.exit(
                    "selftest: truncated artifact produced "
                    f"{str(exc)!r}, not the named error"
                )
        else:
            sys.exit("selftest: a truncated artifact was not caught")
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


def cmd_selftest(args):
    baseline = load(args.baseline)
    selftest_loader()

    identical = copy.deepcopy(baseline)
    if compare(identical, baseline, args.tolerance):
        sys.exit("selftest: identical copy should pass but failed")

    slowed = copy.deepcopy(baseline)
    slowed["percentiles"]["geomean_speedup"] /= 2.0
    if not compare(slowed, baseline, args.tolerance):
        sys.exit("selftest: injected 2x slowdown was not caught")

    fleet_slowed = copy.deepcopy(baseline)
    fleet_slowed["fleet"]["fleet_ll_throughput"] /= 2.0
    if not compare(fleet_slowed, baseline, args.tolerance):
        sys.exit("selftest: injected 2x fleet slowdown was not caught")

    crawling = copy.deepcopy(baseline)
    crawling["fleet"]["fleet_rr_clients_per_sec"] = 1.0
    if not check_host_floor(crawling, 50.0):
        sys.exit("selftest: sub-floor host throughput was not caught")

    replayed = copy.deepcopy(baseline)
    replayed["migrate"]["migrations_done"] -= 1
    if not compare(replayed, baseline, args.tolerance):
        sys.exit("selftest: a lost migration was not caught")

    not_winning = copy.deepcopy(baseline)
    not_winning["migrate"]["recovery_ratio"] = 0.98
    if not compare(not_winning, baseline, args.tolerance):
        sys.exit("selftest: replay beating migration was not caught")

    hungry = copy.deepcopy(baseline)
    hungry["micro"]["micro_allocs_per_event_w"] *= 2.0
    if not compare(hungry, baseline, args.tolerance):
        sys.exit("selftest: a doubled allocs/event was not caught")

    sluggish = copy.deepcopy(baseline)
    sluggish["micro"]["micro_events_per_sec"] /= 2.0
    if not compare(sluggish, baseline, args.tolerance):
        sys.exit("selftest: a halved micro events/sec was not caught")

    flipped = copy.deepcopy(baseline)
    flipped["fleet"]["fleet_rr_slo_pass"] = not flipped["fleet"][
        "fleet_rr_slo_pass"
    ]
    if not compare(flipped, baseline, args.tolerance):
        sys.exit("selftest: a flipped fleet SLO verdict was not caught")

    starved = copy.deepcopy(baseline)
    starved["fleet"]["fleet_rr_sampled_kept"] = 0
    if not compare(starved, baseline, args.tolerance):
        sys.exit("selftest: an empty sampler kept set was not caught")

    drifted = copy.deepcopy(baseline)
    drifted["fleet"]["fleet_ll_kept_hash"] = "0" * 16
    if not compare(drifted, baseline, args.tolerance):
        sys.exit("selftest: a drifted kept-id hash was not caught")

    heavy = copy.deepcopy(baseline)
    heavy["fleet"]["fleet_sample_vs_full_ratio"] = 0.5
    if not check_sample_ratio_floor(heavy, 0.9):
        sys.exit("selftest: a collapsed sampling ratio was not caught")

    print(
        "selftest OK: identical copy passes; 2x headline slowdown, "
        "2x fleet slowdown, sub-floor host throughput, a lost "
        "migration, a sub-1.0 recovery ratio, a doubled allocs/event, "
        "a halved micro events/sec, a flipped fleet SLO verdict, an "
        "empty sampler kept set, a drifted kept-id hash and a "
        "collapsed sampling ratio all fail; missing/empty/truncated "
        "artifacts yield the named bench_guard error"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("merge", help="combine headline JSONs")
    p.add_argument("percentiles")
    p.add_argument("faults")
    p.add_argument("fleet")
    p.add_argument("migrate")
    p.add_argument("micro")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=cmd_merge)

    p = sub.add_parser("check", help="compare PR numbers to the baseline")
    p.add_argument("pr")
    p.add_argument("baseline")
    p.add_argument("--tolerance", type=float, default=0.10)
    p.add_argument(
        "--fleet-host-floor",
        type=float,
        default=50.0,
        metavar="CPS",
        help="minimum acceptable wall-clock fleet clients/sec "
        "(default: %(default)s)",
    )
    p.add_argument(
        "--micro-floor-frac",
        type=float,
        default=0.55,
        metavar="FRAC",
        help="relative floor for micro wall-clock numbers: fail below "
        "baseline*FRAC (default %(default)s, so a 2x slowdown fails)",
    )
    p.add_argument(
        "--micro-events-floor",
        type=float,
        default=100.0,
        metavar="EPS",
        help="absolute floor for micro events/sec (default %(default)s)",
    )
    p.add_argument(
        "--micro-compress-floor",
        type=float,
        default=1e6,
        metavar="BPS",
        help="absolute floor for micro compress bytes/sec "
        "(default %(default)s)",
    )
    p.add_argument(
        "--sample-ratio-floor",
        type=float,
        default=0.9,
        metavar="FRAC",
        help="minimum sampled/full fleet events/sec ratio "
        "(default %(default)s: sampling must cost under 10%%)",
    )
    p.add_argument(
        "--explain",
        metavar="DIFF_JSON",
        help="trace-diff JSON to attribute a failure with",
    )
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("selftest", help="prove the guard catches a slowdown")
    p.add_argument("baseline")
    p.add_argument("--tolerance", type=float, default=0.10)
    p.set_defaults(func=cmd_selftest)

    args = parser.parse_args()
    args.func(args)


if __name__ == "__main__":
    main()
