(* offload-cli: command-line driver for the Native Offloader
   reproduction.

     offload-cli list                    workloads and their traits
     offload-cli run 458.sjeng           local vs offloaded comparison
     offload-cli run 458.sjeng --trace out.json --metrics
                                         also capture the fast run's event
                                         stream: Chrome-trace JSON (for
                                         chrome://tracing / Perfetto) and
                                         the event-derived metrics table
     offload-cli report table1 ... fig8  regenerate tables/figures
     offload-cli diff old.jsonl new.jsonl
                                         attribute the cost delta between
                                         two raw traces to span-tree nodes
                                         and event kinds
     offload-cli dump 164.gzip mobile    print partitioned IR
     offload-cli serve --clients 4 --slots 2
                                         multi-client shared-server
                                         scheduling simulation
     offload-cli serve --migrate failover
                                         checkpoint/migrate a task off a
                                         crashing pool member (also:
                                         maintenance, rebalance)
     offload-cli headline                geomean speedups / battery *)

open No_prelude.Prelude
open Cmdliner

let list_cmd =
  let run () =
    let table =
      Table.create ~title:"Workloads (17 SPEC programs + chess)"
        [ "name"; "description"; "paper target"; "paper exec (s)";
          "paper traffic (MB)" ]
    in
    List.iter
      (fun (e : Registry.entry) ->
        Table.add_row table
          [
            e.Registry.e_name;
            e.Registry.e_description;
            e.Registry.e_paper.Registry.pr_target;
            Table.cell_f ~digits:1 e.Registry.e_paper.Registry.pr_exec_s;
            Table.cell_f ~digits:1 e.Registry.e_paper.Registry.pr_traffic_mb;
          ])
      Registry.spec;
    Table.print table
  in
  Cmd.v (Cmd.info "list" ~doc:"List the workloads")
    Term.(const run $ const ())

let name_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM")

let entry_of_name name =
  match Registry.by_name name with
  | Some entry -> entry
  | None ->
    Fmt.epr "unknown program %s; try `offload-cli list'@." name;
    exit 1

let link_of_name name =
  match Link.by_name name with
  | Some link -> link
  | None ->
    Fmt.epr "unknown link %S; available links: %s@." name
      (String.concat ", "
         (List.map (fun (l : Link.t) -> l.Link.name) Link.all));
    exit 1

let fault_plan_of_string text =
  match Fault_plan.parse text with
  | Ok plan -> plan
  | Error msg ->
    Fmt.epr "bad fault plan %S: %s@.expected: %s@." text msg
      Fault_plan.grammar;
    exit 1

(* --self-prof[=FILE], shared by run and serve: profile the
   simulator's own hot paths (zone-based cost accounting) for the
   duration of the command, print the zone table afterwards, and with
   FILE also write the self-profile as OpenMetrics exposition. *)
let self_prof_arg =
  Arg.(
    value
    & opt ~vopt:(Some "") (some string) None
    & info [ "self-prof" ] ~docv:"FILE"
        ~doc:
          "Profile the simulator's own hot paths (event queue, page-fault \
           service, compressor, trace sinks, histograms, pool routing, \
           checkpoints) and print the per-zone cost table after the run; \
           with $(docv), also write the self-profile as OpenMetrics text \
           exposition there.  Profiling never changes simulated results.")

let self_prof_begin = function
  | None -> ()
  | Some _ ->
    Selfprof.enable ();
    Selfprof.reset ()

let self_prof_end = function
  | None -> ()
  | Some out ->
    Selfprof.disable ();
    print_newline ();
    print_string (Selfprof.report ());
    if not (String.equal out "") then begin
      (match
         Openmetrics.write_selfprof out ~unwound:(Selfprof.unwound ())
           (Selfprof.rows ())
       with
      | exception Sys_error msg ->
        Fmt.epr "cannot write self-profile: %s@." msg;
        exit 1
      | () -> ());
      Fmt.pr "wrote %s (self-profile OpenMetrics)@." out
    end

(* Re-run a configuration with capture sinks attached (the simulator
   is deterministic, so this reproduces the corresponding sweep run
   exactly) and export/print what was asked for. *)
let traced_run entry (compiled : Compiler.compiled) ~config ~label ~trace_file
    ~trace_raw ~metrics ~metrics_out =
  let ring = Trace.Ring.create ~capacity:(1 lsl 20) () in
  let m = Trace.Metrics.create () in
  let series = Series.create () in
  let config =
    { config with
      Session.trace =
        Trace.fan_out
          [ Trace.Ring.sink ring; Trace.Metrics.sink m; Series.sink series ] }
  in
  let _run, _session = Experiment.offloaded_run ~label:"traced" ~config compiled entry in
  (match trace_file with
  | None -> ()
  | Some file ->
    let json =
      Trace.Chrome.export ~process:("offload:" ^ entry.Registry.e_name)
        (Trace.Ring.events ring)
    in
    (match open_out_bin file with
    | exception Sys_error msg ->
      Fmt.epr "cannot write trace: %s@." msg;
      exit 1
    | oc ->
      output_string oc json;
      close_out oc);
    Fmt.pr "wrote %s (%d events%s) — load it in chrome://tracing or Perfetto@."
      file (Trace.Ring.length ring)
      (if Trace.Ring.dropped ring > 0 then
         Printf.sprintf ", %d dropped" (Trace.Ring.dropped ring)
       else ""));
  (match trace_raw with
  | None -> ()
  | Some file ->
    if Trace.Ring.dropped ring > 0 then
      Fmt.epr
        "warning: capture ring dropped %d events; the raw trace is partial@."
        (Trace.Ring.dropped ring);
    (match Trace_file.save file (Trace.Ring.events ring) with
    | exception Sys_error msg ->
      Fmt.epr "cannot write raw trace: %s@." msg;
      exit 1
    | () ->
      Fmt.pr "wrote %s (%d events) — feed it to `offload-cli analyze'@." file
        (Trace.Ring.length ring)));
  (match metrics_out with
  | None -> ()
  | Some file -> (
    match Openmetrics.write file ~series m with
    | exception Sys_error msg ->
      Fmt.epr "cannot write metrics: %s@." msg;
      exit 1
    | () ->
      Fmt.pr "wrote %s (OpenMetrics text, windowed at %gs) — scrape or diff \
              it@."
        file (Series.window_s series)));
  if metrics then
    Table.print
      (Metrics_report.table
         ~title:(entry.Registry.e_name ^ ": " ^ label ^ " run metrics \
                 (event-stream derived)")
         m)

let run_cmd =
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome-trace JSON of the fast-network run to $(docv) \
             (loadable in chrome://tracing or Perfetto).")
  in
  let trace_raw_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-raw" ] ~docv:"FILE.jsonl"
          ~doc:
            "Persist the run's raw event stream as line-per-event JSON \
             (versioned header + one event per line), the input format of \
             $(b,offload-cli analyze).")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print the event-derived metrics table of the fast-network run.")
  in
  let link_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "link" ] ~docv:"NAME"
          ~doc:
            "Link profile for the fault-injected run (default 802.11ac); \
             unknown names list the available links.")
  in
  let faults_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"PLAN"
          ~doc:
            "Deterministic fault plan for an extra fault-injected run, e.g. \
             $(b,outage=0.5:2.0,drop=0.05,crash=3.5,seed=7). On server loss \
             the runtime rolls back and replays locally; the run must still \
             match the local console output.")
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int64) None
      & info [ "seed" ] ~docv:"N"
          ~doc:"Override the fault plan's RNG seed (reproducible runs).")
  in
  let metrics_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the run's metrics and windowed time series as \
             OpenMetrics/Prometheus text exposition to $(docv).")
  in
  let run name trace_file trace_raw metrics metrics_out link faults seed
      self_prof =
    let entry = entry_of_name name in
    (* Validate the fault-run options before the (slow) sweep. *)
    let faulty_config =
      if faults = None && link = None && seed = None then None
      else begin
        let plan =
          match faults with
          | Some text -> fault_plan_of_string text
          | None -> Fault_plan.empty
        in
        let plan =
          match seed with
          | Some s -> Fault_plan.with_seed plan s
          | None -> plan
        in
        let link =
          match link with
          | Some name -> link_of_name name
          | None -> Link.fast_wifi
        in
        Some
          { (Session.default_config ~link ()) with
            Session.faults = Some plan }
      end
    in
    self_prof_begin self_prof;
    let res = Experiment.run_entry entry in
    let table =
      Table.create ~title:(name ^ ": local vs offloaded")
        [ "config"; "exec (s)"; "speedup"; "energy (mJ)"; "offloads";
          "refusals"; "faults"; "to server (KB)"; "to mobile (KB)" ]
    in
    let row (r : Experiment.run) =
      Table.add_row table
        [
          r.Experiment.run_label;
          Table.cell_f r.Experiment.run_exec_s;
          Table.cell_f (Experiment.speedup res r);
          Table.cell_f ~digits:0 r.Experiment.run_energy_mj;
          Table.cell_i r.Experiment.run_offloads;
          Table.cell_i r.Experiment.run_refusals;
          Table.cell_i r.Experiment.run_faults;
          Table.cell_i (r.Experiment.run_bytes_to_server / 1024);
          Table.cell_i (r.Experiment.run_bytes_to_mobile / 1024);
        ]
    in
    row res.Experiment.pres_local;
    row res.Experiment.pres_slow;
    row res.Experiment.pres_fast;
    row res.Experiment.pres_ideal;
    Table.print table;
    let identical =
      String.equal res.Experiment.pres_local.Experiment.run_console
        res.Experiment.pres_fast.Experiment.run_console
    in
    Fmt.pr "console output identical to local run: %b@." identical;
    (* Optional fault-injected run: same workload, chosen link, under a
       deterministic fault plan. *)
    (match faulty_config with
    | None -> ()
    | Some config ->
      let frun, fsession =
        Experiment.offloaded_run ~label:"fault-injected" ~config
          res.Experiment.pres_compiled entry
      in
      let ov = Session.overheads fsession in
      let survived =
        String.equal res.Experiment.pres_local.Experiment.run_console
          frun.Experiment.run_console
      in
      Fmt.pr "@.fault-injected run (link %s, plan %a):@."
        config.Session.link.Link.name Fault_plan.pp
        (Option.get config.Session.faults);
      Fmt.pr "  exec %.2f s (local %.2f s)  offloads %d  fallbacks %d  \
              timeouts %d  retries %d  recovery %.2f s@."
        frun.Experiment.run_exec_s
        res.Experiment.pres_local.Experiment.run_exec_s
        frun.Experiment.run_offloads ov.Session.fallbacks
        ov.Session.rpc_timeouts ov.Session.retries ov.Session.recovery_s;
      Fmt.pr "  survived (console identical to local): %b@." survived);
    if trace_file <> None || trace_raw <> None || metrics
       || metrics_out <> None
    then begin
      let config, label =
        match faulty_config with
        | Some config -> (config, "fault-injected")
        | None -> (Experiment.fast_config (), "fast-network")
      in
      traced_run entry res.Experiment.pres_compiled ~config ~label ~trace_file
        ~trace_raw ~metrics ~metrics_out
    end;
    self_prof_end self_prof
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one workload in all configurations")
    Term.(
      const run $ name_arg $ trace_arg $ trace_raw_arg $ metrics_arg
      $ metrics_out_arg $ link_arg $ faults_arg $ seed_arg $ self_prof_arg)

let report_cmd =
  let what_arg =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [ ("table1", `T1); ("table2", `T2); ("table3", `T3);
                  ("table4", `T4); ("table5", `T5); ("fig6a", `F6a);
                  ("fig6b", `F6b); ("fig7", `F7); ("fig8", `F8);
                  ("all", `All) ]))
          None
      & info [] ~docv:"WHAT")
  in
  let run what =
    let emit = function
      | `T1 -> Table.print (Evaluation.table1 ())
      | `T2 -> Table.print (Evaluation.table2 ())
      | `T3 -> Table.print (Evaluation.table3 ())
      | `T4 -> Table.print (Evaluation.table4 ())
      | `T5 -> Table.print (Evaluation.table5 ())
      | `F6a -> Table.print (Evaluation.fig6a ())
      | `F6b -> Table.print (Evaluation.fig6b ())
      | `F7 -> Table.print (Evaluation.fig7 ())
      | `F8 -> Table.print (Evaluation.fig8 ())
      | `All -> assert false
    in
    match what with
    | `All ->
      List.iter
        (fun w ->
          emit w;
          print_newline ())
        [ `T1; `T2; `T3; `T4; `T5; `F6a; `F6b; `F7; `F8 ]
    | w -> emit w
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Regenerate a table or figure from the paper")
    Term.(const run $ what_arg)

let dump_cmd =
  let part_arg =
    Arg.(
      value
      & pos 1
          (enum
             [ ("original", `Original); ("mobile", `Mobile);
               ("server", `Server) ])
          `Mobile
      & info [] ~docv:"PART")
  in
  let run name part =
    let entry = entry_of_name name in
    let m = entry.Registry.e_build () in
    let compiled =
      Compiler.compile ~profile_script:entry.Registry.e_profile_script
        ~profile_files:entry.Registry.e_files
        ~eval_scale:entry.Registry.e_eval_scale m
    in
    let modul =
      match part with
      | `Original -> compiled.Compiler.c_original
      | `Mobile -> compiled.Compiler.c_output.Pipeline.o_mobile
      | `Server -> compiled.Compiler.c_output.Pipeline.o_server
    in
    Fmt.pr "%s@." (Pretty.modul_to_string modul)
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Print a workload's IR (original/mobile/server)")
    Term.(const run $ name_arg $ part_arg)

(* Compile and run a program written in the textual IR syntax: the
   front-end-independent path of Figure 1 (any producer of IR text can
   feed the offloader). *)
let load_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.ir")
  in
  let input_arg =
    Arg.(value & pos 1 int 20_000 & info [] ~docv:"INPUT")
  in
  let run file input =
    let text =
      let ic = open_in_bin file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    let m =
      try No_ir.Parser.parse text
      with No_ir.Parser.Parse_error (line, msg) ->
        Fmt.epr "%s:%d: %s@." file line msg;
        exit 1
    in
    let script value = [ No_exec.Console.In_int (Int64.of_int value) ] in
    let compiled =
      Compiler.compile ~profile_script:(script (max 1 (input / 10)))
        ~eval_scale:10.0 m
    in
    Fmt.pr "selected targets: %a@."
      Fmt.(list ~sep:comma string)
      compiled.Compiler.c_selection.No_estimator.Static_estimate.targets;
    let local =
      No_runtime.Local_run.run ~script:(script input)
        compiled.Compiler.c_original
    in
    let session =
      No_runtime.Session.create
        ~config:(No_runtime.Session.default_config ())
        ~script:(script input) compiled.Compiler.c_output
        ~seeds:compiled.Compiler.c_seeds
    in
    let report = No_runtime.Session.run session in
    Fmt.pr "local:     %6.2f s   %s" local.No_runtime.Local_run.lr_total_s
      local.No_runtime.Local_run.lr_console;
    Fmt.pr "offloaded: %6.2f s   %s" report.No_runtime.Session.rep_total_s
      report.No_runtime.Session.rep_console;
    Fmt.pr "speedup %.2fx, identical output: %b@."
      (local.No_runtime.Local_run.lr_total_s
      /. report.No_runtime.Session.rep_total_s)
      (String.equal local.No_runtime.Local_run.lr_console
         report.No_runtime.Session.rep_console)
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Compile and offload a program from a textual IR file")
    Term.(const run $ file_arg $ input_arg)

(* Post-hoc analysis of a raw trace written by `run --trace-raw`:
   span tree, per-kind latency histograms, estimator audit, optional
   collapsed-stack flamegraph export.  Pure function of the file, so
   re-analyzing the same capture is byte-identical. *)
let analyze_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE.jsonl")
  in
  let flame_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flame" ] ~docv:"FILE"
          ~doc:
            "Write a collapsed-stack flamegraph ($(b,a;b;c weight) lines, \
             microsecond weights) to $(docv) — loadable in speedscope or \
             flamegraph.pl.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the analysis as JSON to $(docv): per-kind histogram \
             quantiles, the estimator audit table and its summary.")
  in
  (* Per-kind cost distributions: which events feed which histogram,
     and how to print that histogram's values. *)
  let hist_specs :
      (string * int * (Trace.event -> float option)) list =
    [
      ( "offload span (s)", 6,
        function Trace.Offload_end { span_s; _ } -> Some span_s | _ -> None );
      ( "page-fault service (s)", 6,
        function Trace.Page_fault { service_s; _ } -> Some service_s | _ -> None );
      ( "flush transfer+codec (s)", 6,
        function
        | Trace.Flush { transfer_s; codec_s; _ } -> Some (transfer_s +. codec_s)
        | _ -> None );
      ( "flush wire (bytes)", 0,
        function
        | Trace.Flush { wire_bytes; _ } -> Some (float_of_int wire_bytes)
        | _ -> None );
      ( "remote-io cost (s)", 6,
        function Trace.Remote_io { cost_s; _ } -> Some cost_s | _ -> None );
      ( "fnptr translate (s)", 6,
        function Trace.Fnptr_translate { cost_s } -> Some cost_s | _ -> None );
      ( "rpc-timeout wait (s)", 6,
        function Trace.Rpc_timeout { waited_s; _ } -> Some waited_s | _ -> None );
      ( "retry backoff (s)", 6,
        function Trace.Retry { backoff_s; _ } -> Some backoff_s | _ -> None );
      ( "local replay (s)", 6,
        function Trace.Replay { replay_s; _ } -> Some replay_s | _ -> None );
    ]
  in
  (* Machine-readable twin of the printed tables: per-kind histogram
     quantiles plus the estimator audit, one JSON document.  Pure
     function of the trace, so re-analyzing is byte-identical. *)
  let analysis_json ~hist_specs ~sampled ~exemplars events =
    let b = Buffer.create 2048 in
    let jf = Printf.sprintf "%.9g" in
    let esc s =
      String.concat ""
        (List.map
           (fun c ->
             match c with
             | '"' -> "\\\""
             | '\\' -> "\\\\"
             | c -> String.make 1 c)
           (List.init (String.length s) (String.get s)))
    in
    Buffer.add_string b
      (Printf.sprintf "{\n  \"events\": %d,\n  \"histograms\": ["
         (List.length events));
    let first = ref true in
    List.iter
      (fun (name, _digits, select) ->
        let h = Hist.create () in
        List.iter (fun (_ts, ev) -> Option.iter (Hist.add h) (select ev)) events;
        if Hist.count h > 0 then begin
          if not !first then Buffer.add_char b ',';
          first := false;
          Buffer.add_string b
            (Printf.sprintf
               "\n    {\"kind\": \"%s\", \"count\": %d, \"sum\": %s, \
                \"min\": %s, \"p50\": %s, \"p90\": %s, \"p95\": %s, \
                \"p99\": %s, \"max\": %s}"
               (esc name) (Hist.count h) (jf (Hist.sum h)) (jf (Hist.min h))
               (jf (Hist.quantile h 0.50))
               (jf (Hist.quantile h 0.90))
               (jf (Hist.quantile h 0.95))
               (jf (Hist.quantile h 0.99))
               (jf (Hist.max h)))
        end)
      hist_specs;
    Buffer.add_string b "\n  ],";
    Buffer.add_string b
      (Printf.sprintf "\n  \"sampled\": %b,\n  \"exemplars\": [" sampled);
    List.iteri
      (fun i (name, _digits, id, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf
             "\n    {\"kind\": \"%s\", \"trace\": \"%s\", \"value\": %s}"
             (esc name) (esc id) (jf v)))
      exemplars;
    Buffer.add_string b "\n  ],\n  \"audit\": [";
    let rows = Audit.of_events events in
    List.iteri
      (fun i (r : Audit.row) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf
             "\n    {\"ts_s\": %s, \"target\": \"%s\", \"decision\": \"%s\", \
              \"predicted_gain_s\": %s, \"measured_gain_s\": %s, \
              \"proxied\": %b, \"verdict\": \"%s\"}"
             (jf r.Audit.a_ts) (esc r.Audit.a_target)
             (if r.Audit.a_decision then "offload" else "refuse")
             (jf r.Audit.a_predicted_gain_s)
             (match r.Audit.a_measured_gain_s with
             | Some g -> jf g
             | None -> "null")
             r.Audit.a_proxied
             (Audit.verdict_to_string r.Audit.a_verdict)))
      rows;
    Buffer.add_string b "\n  ]";
    (if rows <> [] then begin
       let s = Audit.summarize rows in
       Buffer.add_string b
         (Printf.sprintf
            ",\n  \"audit_summary\": {\"estimates\": %d, \"true_pos\": %d, \
             \"false_pos\": %d, \"true_neg\": %d, \"false_neg\": %d, \
             \"unverified\": %d, \"mean_abs_err_s\": %s, \
             \"mean_rel_err\": %s}"
            s.Audit.s_estimates s.Audit.s_true_pos s.Audit.s_false_pos
            s.Audit.s_true_neg s.Audit.s_false_neg s.Audit.s_unverified
            (if Float.is_nan s.Audit.s_mean_abs_err_s then "null"
             else jf s.Audit.s_mean_abs_err_s)
            (if Float.is_nan s.Audit.s_mean_rel_err then "null"
             else jf s.Audit.s_mean_rel_err))
     end);
    Buffer.add_string b "\n}\n";
    Buffer.contents b
  in
  let run file flame json =
    match Trace_file.load_traces file with
    | Error msg ->
      Fmt.epr "%s: %s@." file msg;
      exit 1
    | Ok (tagged, sampled) ->
      let events = List.map (fun (ts, ev, _) -> (ts, ev)) tagged in
      let kept_ids =
        List.sort_uniq compare (List.filter_map (fun (_, _, id) -> id) tagged)
      in
      (* Per kind, the worst-valued event that carries a kept-trace
         tag: the file-level twin of the histogram exemplars the live
         series exposes through OpenMetrics. *)
      let exemplars =
        List.filter_map
          (fun (name, digits, select) ->
            List.fold_left
              (fun acc (_ts, ev, id) ->
                match (id, select ev) with
                | Some id, Some v -> (
                  match acc with
                  | Some (_, _, _, best) when best >= v -> acc
                  | _ -> Some (name, digits, id, v))
                | _ -> acc)
              None tagged)
          hist_specs
      in
      let root = Span.of_events ~sampled events in
      Fmt.pr "span tree (%d events%s):@.@.%s@." (List.length events)
        (if sampled then
           Printf.sprintf ", sampled: %d kept traces, gaps not attributed"
             (List.length kept_ids)
         else "")
        (Flame.to_text root);
      let table =
        Table.create ~title:"Cost distributions (log-bucketed histograms)"
          [ "kind"; "count"; "sum"; "min"; "p50"; "p90"; "p95"; "p99"; "max" ]
      in
      List.iter
        (fun (name, digits, select) ->
          let h = Hist.create () in
          List.iter
            (fun (_ts, ev) -> Option.iter (Hist.add h) (select ev))
            events;
          if Hist.count h > 0 then
            Table.add_row table
              [
                name;
                Table.cell_i (Hist.count h);
                Table.cell_f ~digits (Hist.sum h);
                Table.cell_f ~digits (Hist.min h);
                Table.cell_f ~digits (Hist.quantile h 0.50);
                Table.cell_f ~digits (Hist.quantile h 0.90);
                Table.cell_f ~digits (Hist.quantile h 0.95);
                Table.cell_f ~digits (Hist.quantile h 0.99);
                Table.cell_f ~digits (Hist.max h);
              ])
        hist_specs;
      Table.print table;
      if exemplars <> [] then begin
        print_newline ();
        let table =
          Table.create ~title:"Exemplars (worst kept trace per kind)"
            [ "kind"; "trace"; "value" ]
        in
        List.iter
          (fun (name, digits, id, v) ->
            Table.add_row table [ name; id; Table.cell_f ~digits v ])
          exemplars;
        Table.print table
      end;
      let rows = Audit.of_events events in
      if rows <> [] then begin
        let table =
          Table.create ~title:"Estimator audit (predicted vs measured gain)"
            [ "ts (s)"; "target"; "decision"; "predicted (s)"; "measured (s)";
              "abs err (s)"; "verdict" ]
        in
        List.iter
          (fun (r : Audit.row) ->
            let measured, err =
              match r.Audit.a_measured_gain_s with
              | Some g ->
                ( Table.cell_f ~digits:4 g
                  ^ (if r.Audit.a_proxied then "*" else ""),
                  Table.cell_f ~digits:4
                    (abs_float (r.Audit.a_predicted_gain_s -. g)) )
              | None -> ("-", "-")
            in
            Table.add_row table
              [
                Table.cell_f ~digits:4 r.Audit.a_ts;
                r.Audit.a_target;
                (if r.Audit.a_decision then "offload" else "refuse");
                Table.cell_f ~digits:4 r.Audit.a_predicted_gain_s;
                measured;
                err;
                Audit.verdict_to_string r.Audit.a_verdict;
              ])
          rows;
        print_newline ();
        Table.print table;
        let s = Audit.summarize rows in
        Fmt.pr "(* = measured via same-target proxy)@.";
        Fmt.pr
          "estimates %d: TP %d  FP %d  TN %d  FN %d  unverified %d@."
          s.Audit.s_estimates s.Audit.s_true_pos s.Audit.s_false_pos
          s.Audit.s_true_neg s.Audit.s_false_neg s.Audit.s_unverified;
        if not (Float.is_nan s.Audit.s_mean_abs_err_s) then
          Fmt.pr "mean gain error: %.4f s absolute, %.1f%% relative@."
            s.Audit.s_mean_abs_err_s (100.0 *. s.Audit.s_mean_rel_err)
      end;
      (match flame with
      | None -> ()
      | Some out -> (
        match open_out_bin out with
        | exception Sys_error msg ->
          Fmt.epr "cannot write flamegraph: %s@." msg;
          exit 1
        | oc ->
          output_string oc (Flame.to_collapsed root);
          close_out oc;
          Fmt.pr "@.wrote %s — load it in speedscope or flamegraph.pl@." out));
      (match json with
      | None -> ()
      | Some out -> (
        match open_out_bin out with
        | exception Sys_error msg ->
          Fmt.epr "cannot write analysis JSON: %s@." msg;
          exit 1
        | oc ->
          output_string oc (analysis_json ~hist_specs ~sampled ~exemplars events);
          close_out oc;
          Fmt.pr "@.wrote %s (histogram quantiles + estimator audit)@." out))
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Analyze a raw trace (from $(b,run --trace-raw)): span tree, \
          latency histograms, estimator audit")
    Term.(const run $ file_arg $ flame_arg $ json_arg)

(* Multi-client scheduling: N staggered mobile hosts share one server
   with K worker slots and a bounded FIFO admission queue.  The
   simulation is a deterministic discrete-event interleaving, so the
   same arguments always print the same table. *)
let serve_cmd =
  let clients_arg =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~docv:"N"
          ~doc:"Number of concurrent mobile clients sharing the server.")
  in
  let slots_arg =
    Arg.(
      value & opt int 2
      & info [ "slots" ] ~docv:"K"
          ~doc:"Server worker slots (concurrent offloads served).")
  in
  let queue_arg =
    Arg.(
      value & opt int 1
      & info [ "queue" ] ~docv:"Q"
          ~doc:
            "FIFO admission queue capacity; requests that would wait \
             behind $(docv) queued offloads are rejected and replayed \
             locally.")
  in
  let servers_arg =
    Arg.(
      value & opt int 1
      & info [ "servers" ] ~docv:"K"
          ~doc:
            "Independent offload servers in the pool, each with its own \
             worker slots and admission queue.")
  in
  let policy_arg =
    Arg.(
      value & opt string "round-robin"
      & info [ "policy" ] ~docv:"NAME"
          ~doc:
            "Routing policy placing each admission request on a pool \
             member: $(b,round-robin), $(b,least-loaded) or $(b,sticky) \
             (client hashed to a fixed server).")
  in
  let workloads_arg =
    Arg.(
      value
      & opt (list string) [ "164.gzip" ]
      & info [ "workloads" ] ~docv:"LIST"
          ~doc:
            "Comma-separated workload names assigned to clients \
             round-robin (see $(b,offload-cli list)).")
  in
  let stagger_arg =
    Arg.(
      value & opt float 0.02
      & info [ "stagger" ] ~docv:"S"
          ~doc:"Seconds between successive client start times.")
  in
  let link_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "link" ] ~docv:"NAME"
          ~doc:"Link profile shared by all clients (default 802.11ac).")
  in
  let faults_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"PLAN"
          ~doc:
            "Deterministic fault plan applied to every client (each \
             client gets a distinct derived seed), e.g. \
             $(b,outage=0.5:2.0,drop=0.05,seed=7).")
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int64) None
      & info [ "seed" ] ~docv:"N"
          ~doc:"Override the fault plan's base RNG seed.")
  in
  let eval_arg =
    Arg.(
      value & flag
      & info [ "eval" ]
          ~doc:
            "Run workloads at evaluation scale instead of the (much \
             faster) profile scale.")
  in
  let metrics_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the fleet-wide metrics and windowed time series (every \
             client's trace merged onto the global clock) as OpenMetrics \
             text exposition to $(docv).")
  in
  let migrate_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "migrate" ] ~docv:"SCENARIO"
          ~doc:
            "Run a canonical migration scenario instead of the synthetic \
             fleet: $(b,failover) (a member crashes mid-offload and the \
             task fails over), $(b,maintenance) (rolling drains across the \
             pool), or $(b,rebalance) (the fast member of a heterogeneous \
             pool is drained mid-run).  Honours $(b,--policy); other fleet \
             options are ignored.")
  in
  let no_migrate_arg =
    Arg.(
      value & flag
      & info [ "no-migrate" ]
          ~doc:
            "Disable checkpoint/migrate recovery: a lost server always \
             rolls the task back and replays it locally.")
  in
  let slo_arg =
    Arg.(
      value
      & opt string Slo.default_spec
      & info [ "slo" ] ~docv:"SPEC"
          ~doc:
            "Service-level objectives evaluated over the fleet-wide \
             windowed series, e.g. \
             $(b,avail>=0.99,p99(page-fault)<=50ms,burn(0.99)<=14).")
  in
  let sample_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "sample" ] ~docv:"BUDGET"
          ~doc:
            "Tail-based trace sampling: keep every faulted, migrated and \
             SLO-violating task plus a seeded $(docv) fraction (0..1) of \
             the routine rest, and report the kept set, per-reason \
             counts and the SLO incident timeline.  Ignored with \
             $(b,--migrate).")
  in
  let sample_seed_arg =
    Arg.(
      value & opt int 42
      & info [ "sample-seed" ] ~docv:"N"
          ~doc:
            "Seed for the budget leg of the sampling decision; reruns \
             with the same seed keep a byte-identical set.")
  in
  let incidents_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "incidents-out" ] ~docv:"FILE"
          ~doc:
            "Write the SLO incident timeline (one JSON object per \
             incident) to $(docv).  Requires $(b,--sample).")
  in
  let sample_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "sample-out" ] ~docv:"FILE"
          ~doc:
            "Write the kept traces as a sampled raw-trace file (header \
             flagged $(b,\"sampled\":true), every event line tagged with \
             its kept-trace id) readable by $(b,offload-cli analyze).  \
             Requires $(b,--sample).")
  in
  let run clients slots queue servers policy workloads stagger link faults
      seed eval metrics_out migrate no_migrate slo sample sample_seed
      incidents_out sample_out self_prof =
    if clients < 1 then begin
      Fmt.epr "need at least one client@.";
      exit 1
    end;
    if slots < 1 then begin
      Fmt.epr "need at least one worker slot@.";
      exit 1
    end;
    if servers < 1 then begin
      Fmt.epr "need at least one server@.";
      exit 1
    end;
    let policy =
      match Pool.policy_of_string policy with
      | Some p -> p
      | None ->
        Fmt.epr "unknown policy %s (try: %s)@." policy
          (String.concat ", "
             (List.map Pool.policy_to_string Pool.all_policies));
        exit 1
    in
    let objectives =
      match Slo.parse slo with
      | Ok objs -> objs
      | Error msg ->
        Fmt.epr "bad --slo spec: %s@.(grammar: %s)@." msg Slo.grammar;
        exit 1
    in
    (match sample with
    | None when incidents_out <> None || sample_out <> None ->
      Fmt.epr "--incidents-out and --sample-out require --sample@.";
      exit 1
    | Some b when not (b >= 0.0 && b <= 1.0) ->
      Fmt.epr "--sample budget must be within [0,1]@.";
      exit 1
    | _ -> ());
    let print_slo result =
      let series = Series.of_events (Sim.global_events result) in
      let verdicts = Slo.evaluate objectives series in
      Fmt.pr "%s@." (Slo.render verdicts);
      Fmt.pr "SLO (%s): %s@."
        (Pool.policy_to_string policy)
        (if Slo.pass verdicts then "pass" else "FAIL")
    in
    self_prof_begin self_prof;
    (match migrate with
    | Some scenario_name ->
      let sc =
        match
          Sim.scenario ~policy ~migrate:(not no_migrate) scenario_name
        with
        | sc -> sc
        | exception Invalid_argument msg ->
          Fmt.epr "%s@." msg;
          exit 1
      in
      let result = Sim.run ~config:sc.Sim.sc_config sc.Sim.sc_clients in
      print_endline
        (Sim.render
           ~title:
             (Printf.sprintf "%s: %s%s" sc.Sim.sc_name sc.Sim.sc_title
                (if no_migrate then " (migration disabled)" else ""))
           result);
      print_slo result
    | None ->
    List.iter
      (fun name -> ignore (entry_of_name name : Registry.entry))
      workloads;
    let plan =
      match (faults, seed) with
      | None, None -> None
      | _ ->
        let p =
          match faults with
          | Some text -> fault_plan_of_string text
          | None -> Fault_plan.empty
        in
        Some
          (match seed with
          | Some s -> Fault_plan.with_seed p s
          | None -> p)
    in
    (* With --sample, a live windowed series rides the streaming global
       sink so the sampler's exemplar hook can attach kept-trace ids to
       the same windows the SLO incident timeline is detected over. *)
    let sampling =
      match sample with
      | None -> None
      | Some budget ->
        let live = Series.create () in
        let slo_limit_s =
          List.fold_left
            (fun acc o ->
              match o with
              | Slo.Quantile { kind = "offload-span"; limit_s; _ } ->
                Float.min acc limit_s
              | _ -> acc)
            infinity objectives
        in
        let sampler =
          Trace.Sampler.create ~slo_limit_s
            ~exemplar:(fun ~ts ~kind ~value ~trace_id ->
              Series.add_exemplar live ~ts ~kind ~value ~trace_id)
            ~keep:(fun ~client ~task ->
              Rng.task_keep
                ~seed:(Int64.of_int sample_seed)
                ~client ~task ~budget)
            ()
        in
        Some (budget, sampler, live)
    in
    let config =
      { Sim.default_config with
        Sim.s_load =
          { Server_load.default with Server_load.slots;
            Server_load.queue_cap = queue };
        Sim.s_servers = servers;
        Sim.s_policy = policy;
        Sim.s_link =
          (match link with
          | Some name -> link_of_name name
          | None -> Link.fast_wifi);
        Sim.s_scale = (if eval then Sim.Eval else Sim.Profile);
        Sim.s_migrate = not no_migrate;
        Sim.s_record_events = true;
        Sim.s_global_sink =
          (match sampling with
          | Some (_, _, live) -> Some (Series.sink live)
          | None -> Sim.default_config.Sim.s_global_sink);
        Sim.s_sampler = Option.map (fun (_, s, _) -> s) sampling }
    in
    let cs =
      Sim.make_clients ~stagger_s:stagger ?faults:plan ~workloads
        ~count:clients ()
    in
    let result = Sim.run ~config cs in
    print_endline
      (Sim.render
         ~title:
           (Printf.sprintf "%d client(s), %d server(s) x %d slots, queue %d, %s"
              clients servers slots queue (Pool.policy_to_string policy))
         result);
    print_slo result;
    (match sampling with
    | None -> ()
    | Some (budget, sampler, live) ->
      Fmt.pr
        "sampling budget %g (seed %d): kept %d/%d tasks (%s), rows %d/%d, \
         peak buffered rows %d@."
        budget sample_seed
        (Trace.Sampler.kept sampler)
        (Trace.Sampler.tasks sampler)
        (String.concat ", "
           (List.map
              (fun (r, n) -> Printf.sprintf "%s %d" r n)
              (Trace.Sampler.reasons sampler)))
        (Trace.Sampler.rows_kept sampler)
        (Trace.Sampler.rows_seen sampler)
        (Trace.Sampler.buffered_rows_peak sampler);
      let incidents = Incident.detect objectives live in
      Fmt.pr "incident timeline:@.%s@." (Incident.render incidents);
      Option.iter
        (fun path ->
          match Incident.save path incidents with
          | exception Sys_error msg ->
            Fmt.epr "cannot write incidents: %s@." msg;
            exit 1
          | () ->
            Fmt.pr "wrote %s (incident timeline jsonl, %d incidents)@." path
              (List.length incidents))
        incidents_out;
      Option.iter
        (fun path ->
          match Trace_file.save_traces path (Trace.Sampler.kept_traces sampler)
          with
          | exception Sys_error msg ->
            Fmt.epr "cannot write sampled trace: %s@." msg;
            exit 1
          | () ->
            Fmt.pr "wrote %s (sampled raw trace, %d kept tasks)@." path
              (Trace.Sampler.kept sampler))
        sample_out);
    (match metrics_out with
    | None -> ()
    | Some file -> (
      let series =
        (* The live sampled series is the same stream plus exemplars. *)
        match sampling with
        | Some (_, _, live) -> live
        | None -> Series.of_events (Sim.global_events result)
      in
      match Openmetrics.write file ~series (Series.totals series) with
      | exception Sys_error msg ->
        Fmt.epr "cannot write metrics: %s@." msg;
        exit 1
      | () ->
        Fmt.pr "wrote %s (OpenMetrics text, %d clients merged)@." file
          clients)));
    self_prof_end self_prof
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Simulate N clients against a pool of K servers (worker slots, \
          FIFO queues, routing policy, load-aware offload decisions)")
    Term.(
      const run $ clients_arg $ slots_arg $ queue_arg $ servers_arg
      $ policy_arg $ workloads_arg $ stagger_arg $ link_arg $ faults_arg
      $ seed_arg $ eval_arg $ metrics_out_arg $ migrate_arg $ no_migrate_arg
      $ slo_arg $ sample_arg $ sample_seed_arg $ incidents_out_arg
      $ sample_out_arg $ self_prof_arg)

(* Regression attribution between two raw traces (from `run
   --trace-raw`): align the span trees by path, attribute the
   wall-clock delta to nodes and event kinds.  Diffing a capture
   against itself reports zero everywhere and exits 0 — the CI smoke
   invariant. *)
let diff_cmd =
  let old_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD.jsonl")
  in
  let new_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW.jsonl")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Also write the report as JSON to $(docv) (consumed by \
             scripts/bench_guard.py --explain).")
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N"
          ~doc:"Number of node rows to print (ranked by |self delta|).")
  in
  let load_or_die file =
    match Trace_file.load file with
    | Ok events -> events
    | Error msg ->
      Fmt.epr "%s: %s@." file msg;
      exit 1
  in
  let run old_file new_file json top_n =
    let report =
      Diff.compare_events (load_or_die old_file) (load_or_die new_file)
    in
    print_string (Diff.render ~top_n report);
    match json with
    | None -> ()
    | Some out -> (
      match open_out_bin out with
      | exception Sys_error msg ->
        Fmt.epr "cannot write diff JSON: %s@." msg;
        exit 1
      | oc ->
        output_string oc (Diff.to_json ~top_n report);
        close_out oc;
        Fmt.pr "wrote %s@." out)
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Attribute the cost delta between two raw traces to span-tree \
          nodes and event kinds")
    Term.(const run $ old_arg $ new_arg $ json_arg $ top_arg)

let headline_cmd =
  let run () =
    let h = Evaluation.headline () in
    Fmt.pr "geomean speedup (fast network): %.2fx (paper: 6.42x)@."
      h.Evaluation.h_geomean_speedup_fast;
    Fmt.pr "geomean speedup (slow network): %.2fx@."
      h.Evaluation.h_geomean_speedup_slow;
    Fmt.pr "geomean battery saving (fast):  %.1f%% (paper: 82.0%%)@."
      h.Evaluation.h_battery_saving_fast_pct;
    Fmt.pr "geomean battery saving (slow):  %.1f%% (paper: 77.2%%)@."
      h.Evaluation.h_battery_saving_slow_pct
  in
  Cmd.v
    (Cmd.info "headline" ~doc:"Geomean speedup and battery saving")
    Term.(const run $ const ())

let () =
  let info = Cmd.info "offload-cli" ~doc:"Native Offloader reproduction" in
  exit (Cmd.eval (Cmd.group info
    [ list_cmd; run_cmd; report_cmd; dump_cmd; load_cmd; analyze_cmd;
      diff_cmd; serve_cmd; headline_cmd ]))
