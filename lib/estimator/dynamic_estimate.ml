(* The dynamic performance estimator (paper Sections 3.1 and 4).

   "The Native Offloader runtime dynamically makes offloading
   decisions for the targets at run-time through dynamic performance
   estimation with run-time values. [...] the dynamic performance
   estimation reflects the current network bandwidth, memory usage,
   and target execution time information, so the Native Offloader
   runtime can avoid offloading under unfavorable situation such as
   slow network connection."

   The estimator keeps per-target state: the profile-seeded mobile
   time (refined by observed local executions) and the live memory
   footprint at the decision point.  Figure 6 marks programs whose
   targets this estimator refuses on the slow network with '*'. *)

type target_state = {
  ts_name : string;
  mutable ts_local_time_s : float;    (* best current estimate of Tm *)
  mutable ts_local_runs : int;
  mutable ts_offload_runs : int;
  mutable ts_refusals : int;
}

type t = {
  r : float;
  mutable bw_bps : float;             (* current measured bandwidth *)
  targets : (string, target_state) Hashtbl.t;
  mutable forced : bool option;       (* ablation: Some true = always
                                         offload, Some false = never *)
}

let create ~r ~bw_bps = {
  r;
  bw_bps;
  targets = Hashtbl.create 8;
  forced = None;
}

let seed t ~name ~profile_time_s =
  Hashtbl.replace t.targets name
    { ts_name = name; ts_local_time_s = profile_time_s; ts_local_runs = 0;
      ts_offload_runs = 0; ts_refusals = 0 }

let state t name =
  match Hashtbl.find_opt t.targets name with
  | Some s -> s
  | None ->
    let s =
      { ts_name = name; ts_local_time_s = 0.0; ts_local_runs = 0;
        ts_offload_runs = 0; ts_refusals = 0 }
    in
    Hashtbl.replace t.targets name s;
    s

let set_bandwidth t bw_bps = t.bw_bps <- bw_bps
let force t decision = t.forced <- decision

(* Equation 1's Tg with the current beliefs — what a decision at this
   instant is based on (forced modes ignore it but it is still the
   estimator's live prediction, e.g. for tracing).

   [r_factor]/[bw_factor] fold server contention into the prediction:
   a shared server at occupancy m delivers only a fraction of its
   nominal speedup and link service rate, so a saturated client sees a
   smaller (possibly negative) gain and declines.  1.0 = exclusive
   server, bit-for-bit the single-client estimate. *)
let predicted_gain_s ?(r_factor = 1.0) ?(bw_factor = 1.0) t ~name ~mem_bytes :
    float =
  let s = state t name in
  (Equation.evaluate
     {
       Equation.tm_s = s.ts_local_time_s;
       r = t.r *. r_factor;
       mem_bytes;
       bw_bps = t.bw_bps *. bw_factor;
       invocations = 1;
     })
    .Equation.gain_s

(* The Tm belief the gain prediction is derived from — recorded in
   Estimate events so post-hoc audits can turn a measured offload cost
   into a measured gain. *)
let predicted_local_s t ~name = (state t name).ts_local_time_s

(* The decision, with the memory footprint observed *now*. *)
let should_offload ?(r_factor = 1.0) ?(bw_factor = 1.0) t ~name ~mem_bytes :
    bool =
  match t.forced with
  | Some decision -> decision
  | None ->
    let s = state t name in
    let decision =
      Equation.profitable
        {
          Equation.tm_s = s.ts_local_time_s;
          r = t.r *. r_factor;
          mem_bytes;
          bw_bps = t.bw_bps *. bw_factor;
          invocations = 1;
        }
    in
    if decision then s.ts_offload_runs <- s.ts_offload_runs + 1
    else s.ts_refusals <- s.ts_refusals + 1;
    decision

(* Feedback from an actual local execution refines Tm (exponential
   moving average over observed runs). *)
let observe_local t ~name ~elapsed_s =
  let s = state t name in
  s.ts_local_runs <- s.ts_local_runs + 1;
  if s.ts_local_runs = 1 && s.ts_local_time_s = 0.0 then
    s.ts_local_time_s <- elapsed_s
  else s.ts_local_time_s <- (0.5 *. s.ts_local_time_s) +. (0.5 *. elapsed_s)

let stats t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.targets []
  |> List.sort (fun a b -> String.compare a.ts_name b.ts_name)
