(** The dynamic performance estimator (paper §3.1/§4).

    "The Native Offloader runtime dynamically makes offloading
    decisions for the targets at run-time through dynamic performance
    estimation with run-time values [...] so the Native Offloader
    runtime can avoid offloading under unfavorable situation such as
    slow network connection."

    Keeps per-target state (profile-seeded mobile time, refined by
    observed local runs) and the current bandwidth belief; decides by
    Equation 1 with the memory footprint observed at the call. *)

type target_state = {
  ts_name : string;
  mutable ts_local_time_s : float;   (** current belief of Tm *)
  mutable ts_local_runs : int;
  mutable ts_offload_runs : int;
  mutable ts_refusals : int;
}

type t

val create : r:float -> bw_bps:float -> t

val seed : t -> name:string -> profile_time_s:float -> unit
(** Install the compiler's profile-derived Tm for a target. *)

val set_bandwidth : t -> float -> unit
(** Update the current-bandwidth belief (fed by the predictor). *)

val force : t -> bool option -> unit
(** Ablations: [Some true] always offloads, [Some false] never,
    [None] restores dynamic decisions. *)

val should_offload :
  ?r_factor:float -> ?bw_factor:float -> t -> name:string -> mem_bytes:int ->
  bool
(** The per-invocation decision, with the footprint observed now.
    [r_factor]/[bw_factor] (default 1.0 = exclusive server) scale the
    effective speedup and bandwidth for shared-server contention, so a
    client talking to a saturated server declines offloads a dedicated
    server would have won. *)

val predicted_gain_s :
  ?r_factor:float -> ?bw_factor:float -> t -> name:string -> mem_bytes:int ->
  float
(** Equation 1's Tg under the current bandwidth/time beliefs — the
    quantity a dynamic decision at this instant is based on.  Factors
    as in {!should_offload}. *)

val predicted_local_s : t -> name:string -> float
(** The current Tm belief for a target (profile-seeded, refined by
    observed local runs) — the local time the gain is measured
    against. *)

val observe_local : t -> name:string -> elapsed_s:float -> unit
(** Feedback from an actual local execution (EWMA into Tm). *)

val stats : t -> target_state list
