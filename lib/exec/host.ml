(* A device execution context: one machine running one IR module.

   A host bundles the architecture, the device memory and stack, the
   loaded globals, the function address table, the I/O devices, the
   simulated clock and the hook points through which the profiler and
   the offloading runtime observe and redirect execution. *)

module Arch = No_arch.Arch
module Cost = No_arch.Cost
module Layout = No_arch.Layout
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module Memory = No_mem.Memory
module Uva = No_mem.Uva
module Stack_alloc = No_mem.Stack_alloc

type clock = { mutable now : float }

type hooks = {
  mutable on_enter : string -> unit;
  mutable on_exit : string -> unit;
  mutable on_block : string -> string -> unit;   (* function, label *)
  mutable fn_map : (Ir.fn_map_dir -> Value.t -> Value.t) option;
      (* function-pointer translation; None = identity (single host) *)
  mutable extern_call : (string -> Value.t list -> Value.t option) option;
      (* services the module's [m_externs]; returning None traps *)
  mutable builtin_override : (string -> Value.t list -> Value.t option) option;
      (* consulted before default builtins; lets the runtime intercept
         remote I/O and allocation on the server *)
}

let default_hooks () = {
  on_enter = (fun _ -> ());
  on_exit = (fun _ -> ());
  on_block = (fun _ _ -> ());
  fn_map = None;
  extern_call = None;
  builtin_override = None;
}

(* Pre-indexed function body for the interpreter's inner loop. *)
type compiled = {
  c_func : Ir.func;
  c_blocks : (string, Ir.instr array * Ir.terminator) Hashtbl.t;
  c_entry : string;
}

type t = {
  arch : Arch.t;
  mem : Memory.t;
  stack : Stack_alloc.t;
  layout : Layout.env;           (* layout the module was lowered with *)
  modul : Ir.modul;
  globals : (string, int) Hashtbl.t;
  fn_table : Fn_table.t;
  uva : Uva.t;
  console : Console.t;
  fs : Fs.t;
  clock : clock;
  hooks : hooks;
  sink : No_trace.Trace.sink;    (* runtime event spine; shared with the
                                    session that owns this host *)
  code : (string, compiled) Hashtbl.t;
  mutable instr_count : int;
  mutable fuel : int;            (* instructions left; -1 = unlimited *)
  mutable slowdown : float;      (* execution-time multiplier; a shared,
                                    contended server runs its slice of
                                    the machine >1x slower.  1.0 (the
                                    multiplicative identity) is
                                    bit-for-bit the uncontended host *)
}

let compile_func (f : Ir.func) : compiled =
  let c_blocks = Hashtbl.create (List.length f.Ir.f_blocks) in
  List.iter
    (fun (b : Ir.block) ->
      Hashtbl.replace c_blocks b.Ir.label
        (Array.of_list b.Ir.instrs, b.Ir.term))
    f.Ir.f_blocks;
  { c_func = f; c_blocks; c_entry = (Ir.entry_block f).Ir.label }

(* Emit a runtime event stamped with this host's simulated clock. *)
let emit host ev =
  if not (No_trace.Trace.is_null host.sink) then
    host.sink.No_trace.Trace.emit ~ts:host.clock.now ev

type role = Mobile | Server

let stack_of_role = function
  | Mobile -> Stack_alloc.mobile ()
  | Server -> Stack_alloc.server ()

let globals_base_of_role = function
  | Mobile -> No_mem.Region.globals_base
  | Server -> No_mem.Region.globals_base + 0x0200_0000

(* Create a host for [modul] on [arch] in [role].

   [layout] is the layout environment the module's GEPs were lowered
   with (native for an untransformed module, unified for partitioned
   ones).  [fn_addr_standard] resolves function names to the addresses
   stored in memory for function-pointer initializers: for unified
   setups this is the *mobile* table regardless of which device we
   are.  [uva], [console], [fs] and [clock] may be shared between the
   two hosts of an offloading session. *)
let create ~arch ~role ~(modul : Ir.modul) ~layout
    ?(fn_table : Fn_table.t option) ?(fn_addr_standard : (string -> int) option)
    ?(uva : Uva.t option) ?(console : Console.t option) ?(fs : Fs.t option)
    ?(clock : clock option) ?(sink = No_trace.Trace.null) () : t =
  let mem =
    Memory.create (match role with Mobile -> Memory.Home | Server -> Memory.Remote)
  in
  let fn_table =
    match fn_table with
    | Some table -> table
    | None -> (
      let names = List.map (fun (f : Ir.func) -> f.Ir.f_name) modul.Ir.m_funcs in
      match role with
      | Mobile -> Fn_table.mobile names
      | Server -> Fn_table.server names)
  in
  let fn_addr_standard =
    match fn_addr_standard with
    | Some resolve -> resolve
    | None -> Fn_table.addr_of fn_table
  in
  let assignments, _next =
    Loader.assign_addresses layout ~base:(globals_base_of_role role)
      modul.Ir.m_globals
  in
  let globals = Hashtbl.create 64 in
  List.iter (fun (name, addr) -> Hashtbl.replace globals name addr) assignments;
  let host =
    {
      arch;
      mem;
      stack = stack_of_role role;
      layout;
      modul;
      globals;
      fn_table;
      uva = (match uva with Some u -> u | None -> Uva.create ());
      console = (match console with Some c -> c | None -> Console.create ());
      fs = (match fs with Some f -> f | None -> Fs.create ());
      clock = (match clock with Some c -> c | None -> { now = 0.0 });
      hooks = default_hooks ();
      sink;
      code = Hashtbl.create 64;
      instr_count = 0;
      fuel = -1;
      slowdown = 1.0;
    }
  in
  List.iter
    (fun (f : Ir.func) ->
      Hashtbl.replace host.code f.Ir.f_name (compile_func f))
    modul.Ir.m_funcs;
  (* Materialize globals.  On a Remote host this would fault, so only
     Home memories get initial contents; a server reads globals it
     needs through copy-on-demand...  *except* that each device's
     non-UVA globals are its own (separate native addresses), so we
     install them directly as resident pages. *)
  let write_byte addr v =
    match role with
    | Mobile -> Memory.write_byte mem addr v
    | Server ->
      (* Install the page as resident before writing. *)
      let page = No_mem.Region.page_of_addr addr in
      if not (Memory.has_page mem page) then
        Memory.install_page mem page (Bytes.make No_mem.Region.page_size '\000');
      Memory.write_byte mem addr v
  in
  List.iter
    (fun (g : Ir.global) ->
      let addr = Hashtbl.find globals g.Ir.g_name in
      Loader.write_init ~layout ~endianness:arch.Arch.endianness ~write_byte
        ~fn_addr:fn_addr_standard ~addr g.Ir.g_ty g.Ir.g_init)
    modul.Ir.m_globals;
  emit host
    (No_trace.Trace.Module_load
       {
         role = (match role with Mobile -> "mobile" | Server -> "server");
         functions = List.length modul.Ir.m_funcs;
         globals = List.length modul.Ir.m_globals;
       });
  host

let charge host cls =
  host.clock.now <-
    host.clock.now +. (Cost.seconds_of host.arch cls *. host.slowdown)

let charge_seconds host s =
  host.clock.now <- host.clock.now +. (s *. host.slowdown)

let global_addr host name =
  match Hashtbl.find_opt host.globals name with
  | Some addr -> addr
  | None -> invalid_arg (Printf.sprintf "Host.global_addr: %s" name)

let compiled host name = Hashtbl.find_opt host.code name

(* {1 Endianness-aware scalar memory access at native widths} *)

let scalar_mem_bytes host (ty : Ty.t) =
  match ty with
  | Ty.I8 -> 1
  | Ty.I16 -> 2
  | Ty.I32 | Ty.F32 -> 4
  | Ty.I64 | Ty.F64 -> 8
  | Ty.Ptr _ | Ty.Fn_ptr _ -> Arch.ptr_bytes host.arch
  | Ty.Struct _ | Ty.Array _ | Ty.Void ->
    invalid_arg "Host.scalar_mem_bytes: not a scalar"

let load_scalar host (ty : Ty.t) addr : Value.t =
  let nbytes = scalar_mem_bytes host ty in
  let read_byte a = Memory.read_byte host.mem a in
  let bits =
    No_mem.Scalar.load_int host.arch.Arch.endianness ~read_byte addr nbytes
  in
  match ty with
  | Ty.F32 -> Value.VFloat (No_mem.Scalar.float_of_bits ~f32:true bits)
  | Ty.F64 -> Value.VFloat (No_mem.Scalar.float_of_bits ~f32:false bits)
  | Ty.I8 | Ty.I16 | Ty.I32 | Ty.I64 ->
    Value.VInt (No_mem.Scalar.sign_extend bits nbytes)
  | Ty.Ptr _ | Ty.Fn_ptr _ ->
    (* Addresses are unsigned: no sign extension. *)
    Value.VInt bits
  | Ty.Struct _ | Ty.Array _ | Ty.Void -> assert false

let store_scalar host (ty : Ty.t) addr (v : Value.t) : unit =
  let nbytes = scalar_mem_bytes host ty in
  let write_byte a b = Memory.write_byte host.mem a b in
  let bits =
    match ty with
    | Ty.F32 -> No_mem.Scalar.float_to_bits ~f32:true (Value.to_float v)
    | Ty.F64 -> No_mem.Scalar.float_to_bits ~f32:false (Value.to_float v)
    | Ty.I8 | Ty.I16 | Ty.I32 | Ty.I64 | Ty.Ptr _ | Ty.Fn_ptr _ ->
      Value.to_int v
    | Ty.Struct _ | Ty.Array _ | Ty.Void -> assert false
  in
  No_mem.Scalar.store_int host.arch.Arch.endianness ~write_byte addr nbytes bits
