(* A device execution context: one machine running one IR module.

   A host bundles the architecture, the device memory and stack, the
   loaded globals, the function address table, the I/O devices, the
   simulated clock and the hook points through which the profiler and
   the offloading runtime observe and redirect execution. *)

module Arch = No_arch.Arch
module Cost = No_arch.Cost
module Layout = No_arch.Layout
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module Memory = No_mem.Memory
module Uva = No_mem.Uva
module Stack_alloc = No_mem.Stack_alloc

type clock = { mutable now : float }

type hooks = {
  mutable on_enter : string -> unit;
  mutable on_exit : string -> unit;
  mutable on_block : string -> string -> unit;   (* function, label *)
  mutable fn_map : (Ir.fn_map_dir -> Value.t -> Value.t) option;
      (* function-pointer translation; None = identity (single host) *)
  mutable extern_call : (string -> Value.t list -> Value.t option) option;
      (* services the module's [m_externs]; returning None traps *)
  mutable builtin_override : (string -> Value.t list -> Value.t option) option;
      (* consulted before default builtins; lets the runtime intercept
         remote I/O and allocation on the server *)
}

let default_hooks () = {
  on_enter = (fun _ -> ());
  on_exit = (fun _ -> ());
  on_block = (fun _ _ -> ());
  fn_map = None;
  extern_call = None;
  builtin_override = None;
}

(* {1 Pre-decoded function bodies}

   Each IR function is lowered once, at host creation, into a form the
   interpreter can run without per-instruction decode work: block
   labels become array indices, per-instruction cycle costs become
   precomputed seconds under this host's cost model (the same float
   the old per-instruction [Cost.seconds_of] call produced, so the
   simulated clock advances bit-identically), and constant operands —
   literals, globals, function addresses — become pre-boxed
   {!Value.t}s shared across executions, so the inner loop allocates
   only for values it actually computes.  Anything that cannot be
   resolved statically (unknown global, non-struct field access, …)
   falls back to a [C_slow*]/[Ct_slow] node interpreted exactly like
   the original IR: same traps, same messages, same charges. *)

type cop =
  | C_reg of int
  | C_val of Value.t            (* pre-boxed constant, already canonical *)
  | C_slow_op of Ir.operand     (* resolved (and trapping) per use *)

type crv =
  | C_bin of Ir.binop * cop * cop
  | C_cmp of Ir.cmpop * cop * cop
  | C_cast of Ir.castop * Ty.t * cop * Ty.t
  | C_select of cop * cop * cop
  | C_load of Ty.t * cop
  | C_alloca of int * int                  (* size, align *)
  | C_gep of cop * int * (cop * int) array (* base + const + Σ idxᵢ·sizeᵢ *)
  | C_call of string * cop array
  | C_call_ind of cop * cop array
  | C_bswap of Ty.t * cop
  | C_fn_map of Ir.fn_map_dir * cop
  | C_slow_rv of Ir.rvalue

(* {2 Fused straight-line chains}

   A run of integer instructions whose intermediates never escape the
   run is compiled to a [chain]: a micro-op program over a per-frame
   [float array] scratch.  Int64 bit patterns are stored with
   [Int64.float_of_bits] — a flat float array is the one unboxed
   mutable store the non-flambda compiler gives us, and bits_of_float/
   float_of_bits of values consumed by int64 primitives stay unboxed —
   so a fused add/xor/shift/load/store allocates nothing.  Only chain
   inputs (register preloads) and live-out results touch boxed
   {!Value.t}s.

   Observable equivalence: each micro-op performs the same fuel check,
   instruction count bump and clock charge (same floats, same order)
   as the instruction it replaces; loads and stores go through the
   same memory entry points (same faults, same dirty marks, same touch
   callbacks); division, float arithmetic and calls are never fused.
   Dead intermediates simply stop being written to the register file,
   which nothing can observe — hooks see labels, not registers, and an
   abandoned frame's registers die with it. *)

type micro = {
  mo_op : int;                  (* mo_* opcode below *)
  mo_dst : int;                 (* scratch slot; -1 for stores *)
  mo_a : int;                   (* first operand slot *)
  mo_b : int;                   (* second operand slot; -1 if absent *)
  mo_n : int;                   (* width in bytes / gep scale / shift *)
  mo_k : int;                   (* sign-extend shift / gep constant *)
}

(* Opcode space: 0..8 binops, 9..16 ordered integer compares (the
   operand order of [Int64.compare]/[unsigned_compare] is baked in),
   then memory and cast ops. *)
let mo_add = 0
let mo_sub = 1
let mo_mul = 2
let mo_and = 3
let mo_or = 4
let mo_xor = 5
let mo_shl = 6
let mo_lshr = 7
let mo_ashr = 8
let mo_slt = 9
let mo_sle = 10
let mo_sgt = 11
let mo_sge = 12
let mo_ult = 13
let mo_ule = 14
let mo_ugt = 15
let mo_uge = 16
let mo_load = 17                 (* mo_n bytes, then sign-shift mo_k *)
let mo_store = 18                (* value mo_a, addr mo_b, mo_n bytes *)
let mo_gep = 19                  (* base mo_a + mo_k + idx mo_b * mo_n *)
let mo_move = 20
let mo_canon = 21                (* (x shl mo_n) asr mo_n *)
let mo_zext = 22                 (* zero-fill mo_n then canon mo_k *)

type chain = {
  ch_pre : int array;            (* slot, reg pairs: boxed reads in *)
  ch_imm_slots : int array;      (* constant slots ... *)
  ch_imm_vals : float array;     (* ... and their bit patterns *)
  ch_ops : micro array;
  ch_costs : float array;        (* seconds per micro-op, this arch *)
  ch_post : int array;           (* reg, slot, is_bool triples out *)
  ch_slots : int;
}

type cinstr =
  | C_assign of int * crv
  | C_effect of crv
  | C_store of Ty.t * cop * cop            (* value, addr *)
  | C_asm
  | C_chain of chain

type cterm =
  | Ct_br of int
  | Ct_cbr of cop * int * int
  | Ct_switch of cop * (int64 * int) array * int
  | Ct_ret_void
  | Ct_ret of cop
  | Ct_unreachable
  | Ct_slow of Ir.terminator               (* names an unknown block *)

type cblock = {
  cb_label : string;
  cb_instrs : cinstr array;
  cb_costs : float array;       (* seconds per instruction, this arch *)
  cb_term : cterm;
  cb_term_cost : float;
}

type compiled = {
  c_func : Ir.func;
  c_blocks : cblock array;
  c_index : (string, int) Hashtbl.t;       (* label -> block index *)
  c_entry : int;
  c_scratch : int;               (* chain scratch slots a frame needs *)
}

type t = {
  arch : Arch.t;
  mem : Memory.t;
  stack : Stack_alloc.t;
  layout : Layout.env;           (* layout the module was lowered with *)
  modul : Ir.modul;
  globals : (string, int) Hashtbl.t;
  fn_table : Fn_table.t;
  uva : Uva.t;
  console : Console.t;
  fs : Fs.t;
  clock : clock;
  hooks : hooks;
  sink : No_trace.Trace.sink;    (* runtime event spine; shared with the
                                    session that owns this host *)
  code : (string, compiled) Hashtbl.t;
  mutable instr_count : int;
  mutable fuel : int;            (* instructions left; -1 = unlimited *)
  mutable slowdown : float;      (* execution-time multiplier; a shared,
                                    contended server runs its slice of
                                    the machine >1x slower.  1.0 (the
                                    multiplicative identity) is
                                    bit-for-bit the uncontended host *)
}

(* How many times each register is read, across the whole function
   (instruction operands, gep paths, call arguments, terminators).
   Fusion uses this to decide whether a chain-written register is
   dead — consumed entirely inside the chain — or must be boxed back
   into the register file. *)
let reg_read_counts (f : Ir.func) : int array =
  let counts = Array.make (max f.Ir.f_nregs 1) 0 in
  let op = function
    | Ir.Reg r -> if r >= 0 && r < Array.length counts then
        counts.(r) <- counts.(r) + 1
    | Ir.Int _ | Ir.Float _ | Ir.Null _ | Ir.Global _ | Ir.Fn_addr _ -> ()
  in
  let rv = function
    | Ir.Bin (_, a, b) | Ir.Cmp (_, a, b) -> op a; op b
    | Ir.Cast (_, _, a, _) | Ir.Load (_, a) | Ir.Bswap (_, a)
    | Ir.Fn_map (_, a) -> op a
    | Ir.Select (c, a, b) -> op c; op a; op b
    | Ir.Alloca _ -> ()
    | Ir.Gep (_, base, path) ->
      op base;
      List.iter (function Ir.Index o -> op o | Ir.Field _ -> ()) path
    | Ir.Call (_, args) -> List.iter op args
    | Ir.Call_ind (_, fp, args) -> op fp; List.iter op args
  in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (function
          | Ir.Assign (_, r) -> rv r
          | Ir.Effect r -> rv r
          | Ir.Store (_, v, a) -> op v; op a
          | Ir.Asm _ -> ())
        b.Ir.instrs;
      match b.Ir.term with
      | Ir.Cbr (c, _, _) -> op c
      | Ir.Switch (v, _, _) -> op v
      | Ir.Ret (Some o) -> op o
      | Ir.Br _ | Ir.Ret None | Ir.Unreachable -> ())
    f.Ir.f_blocks;
  counts

let int_binop_code (op : Ir.binop) =
  match op with
  | Ir.Add -> Some mo_add
  | Ir.Sub -> Some mo_sub
  | Ir.Mul -> Some mo_mul
  | Ir.And -> Some mo_and
  | Ir.Or -> Some mo_or
  | Ir.Xor -> Some mo_xor
  | Ir.Shl -> Some mo_shl
  | Ir.Lshr -> Some mo_lshr
  | Ir.Ashr -> Some mo_ashr
  (* Divisions trap on zero: their trap-vs-charge ordering stays on
     the interpreted path.  Float ops don't fit int slots. *)
  | Ir.Sdiv | Ir.Udiv | Ir.Srem | Ir.Urem
  | Ir.Fadd | Ir.Fsub | Ir.Fmul | Ir.Fdiv -> None

let int_cmp_code (op : Ir.cmpop) =
  match op with
  | Ir.Slt -> Some mo_slt
  | Ir.Sle -> Some mo_sle
  | Ir.Sgt -> Some mo_sgt
  | Ir.Sge -> Some mo_sge
  | Ir.Ult -> Some mo_ult
  | Ir.Ule -> Some mo_ule
  | Ir.Ugt -> Some mo_ugt
  | Ir.Uge -> Some mo_uge
  (* Eq/Ne go through [Value.equal], which tolerates mixed int/float
     operands; the slot representation would not. *)
  | Ir.Eq | Ir.Ne
  | Ir.Feq | Ir.Fne | Ir.Flt | Ir.Fle | Ir.Fgt | Ir.Fge -> None

let int_bits_of_ty (ty : Ty.t) =
  match ty with
  | Ty.I8 -> Some 8
  | Ty.I16 -> Some 16
  | Ty.I32 -> Some 32
  | Ty.I64 -> Some 64
  | Ty.F32 | Ty.F64 | Ty.Ptr _ | Ty.Fn_ptr _ | Ty.Struct _ | Ty.Array _
  | Ty.Void -> None

(* Load/store width and post-load sign shift; ptr-width accesses are
   unsigned (shift 0), matching [load_scalar]/[store_scalar].  Fused
   memory ops read the little-endian slab word directly, so big-endian
   hosts keep their loads and stores on the interpreted path. *)
let mem_params arch (ty : Ty.t) =
  if arch.Arch.endianness <> Arch.Little then None
  else
    match int_bits_of_ty ty with
    | Some bits -> Some (bits / 8, 64 - bits)
    | None -> (
      match ty with
      | Ty.Ptr _ | Ty.Fn_ptr _ -> Some (Arch.ptr_bytes arch, 0)
      | _ -> None)

let cast_params (op : Ir.castop) (src : Ty.t) (dst : Ty.t) =
  match op with
  | Ir.Zext -> (
    match (int_bits_of_ty src, int_bits_of_ty dst) with
    | Some sb, Some db -> Some (mo_zext, 64 - sb, 64 - db)
    | _ -> None)
  | Ir.Sext | Ir.Trunc -> (
    match int_bits_of_ty dst with
    | Some db -> Some (mo_canon, 64 - db, 0)
    | None -> None)
  | Ir.Ptr_to_int -> (
    match int_bits_of_ty dst with
    | Some db -> Some (mo_canon, 64 - db, 0)
    | None -> None)
  | Ir.Int_to_ptr -> Some (mo_move, 0, 0)
  | Ir.Bitcast                   (* identity on floats too; not fusible *)
  | Ir.Fp_to_si | Ir.Si_to_fp | Ir.Fp_ext | Ir.Fp_trunc -> None

(* Rewrite a compiled block, replacing maximal runs of fusible integer
   instructions with [C_chain] nodes.  Returns the block and the
   number of scratch slots its chains need. *)
let fuse_block ~arch ~(reads : int array) (cb : cblock) : cblock * int =
  let out = ref [] in                      (* (cinstr, cost), reversed *)
  let max_slots = ref 0 in
  (* Per-chain state. *)
  let next_slot = ref 0 in
  let slot_of_reg : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let imm_slot : (int64, int) Hashtbl.t = Hashtbl.create 8 in
  let pre = ref [] and imms = ref [] and ops = ref [] in
  let written : (int, bool) Hashtbl.t = Hashtbl.create 8 in
  let chain_reads : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let read_before_write : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let pending = ref [] in                  (* originals, for short chains *)
  let reset () =
    next_slot := 0;
    Hashtbl.reset slot_of_reg;
    Hashtbl.reset imm_slot;
    pre := []; imms := []; ops := [];
    Hashtbl.reset written;
    Hashtbl.reset chain_reads;
    Hashtbl.reset read_before_write;
    pending := []
  in
  let can_resolve = function
    | C_reg _ | C_val (Value.VInt _) -> true
    | C_val (Value.VFloat _) | C_slow_op _ -> false
  in
  let resolve (c : cop) : int =
    match c with
    | C_reg r -> (
      Hashtbl.replace chain_reads r
        (1 + Option.value ~default:0 (Hashtbl.find_opt chain_reads r));
      match Hashtbl.find_opt slot_of_reg r with
      | Some s -> s
      | None ->
        if not (Hashtbl.mem written r) then
          Hashtbl.replace read_before_write r ();
        let s = !next_slot in
        incr next_slot;
        Hashtbl.replace slot_of_reg r s;
        pre := (s, r) :: !pre;
        s)
    | C_val (Value.VInt v) -> (
      match Hashtbl.find_opt imm_slot v with
      | Some s -> s
      | None ->
        let s = !next_slot in
        incr next_slot;
        Hashtbl.replace imm_slot v s;
        imms := (s, v) :: !imms;
        s)
    | C_val (Value.VFloat _) | C_slow_op _ -> assert false
  in
  let bind_write r is_bool =
    let s = !next_slot in
    incr next_slot;
    Hashtbl.replace slot_of_reg r s;
    Hashtbl.replace written r is_bool;
    s
  in
  let add instr cost m =
    ops := (m, cost) :: !ops;
    pending := (instr, cost) :: !pending
  in
  let flush () =
    (if List.length !ops >= 2 then begin
       let post =
         Hashtbl.fold
           (fun r is_bool acc ->
             let total =
               if r < Array.length reads then reads.(r) else max_int
             in
             let inside =
               Option.value ~default:0 (Hashtbl.find_opt chain_reads r)
             in
             if total - inside > 0 || Hashtbl.mem read_before_write r then
               (r, Hashtbl.find slot_of_reg r, is_bool) :: acc
             else acc)
           written []
       in
       let ops_l = List.rev !ops in
       let flat3 l f =
         Array.of_list (List.concat_map f l)
       in
       let chain =
         {
           ch_pre =
             flat3 (List.rev !pre) (fun (s, r) -> [ s; r ]);
           ch_imm_slots =
             Array.of_list (List.rev_map (fun (s, _) -> s) !imms);
           ch_imm_vals =
             Array.of_list
               (List.rev_map (fun (_, v) -> Int64.float_of_bits v) !imms);
           ch_ops = Array.of_list (List.map fst ops_l);
           ch_costs = Array.of_list (List.map snd ops_l);
           ch_post =
             flat3 post (fun (r, s, b) -> [ r; s; (if b then 1 else 0) ]);
           ch_slots = !next_slot;
         }
       in
       max_slots := max !max_slots !next_slot;
       out := (C_chain chain, 0.0) :: !out
     end
     else List.iter (fun ic -> out := ic :: !out) (List.rev !pending));
    reset ()
  in
  let n = Array.length cb.cb_instrs in
  for i = 0 to n - 1 do
    let instr = cb.cb_instrs.(i) and cost = cb.cb_costs.(i) in
    let fused =
      match instr with
      | C_assign (r, C_bin (op, a, b)) -> (
        match int_binop_code op with
        | Some code when can_resolve a && can_resolve b ->
          let sa = resolve a in
          let sb = resolve b in
          let d = bind_write r false in
          add instr cost
            { mo_op = code; mo_dst = d; mo_a = sa; mo_b = sb;
              mo_n = 0; mo_k = 0 };
          true
        | _ -> false)
      | C_assign (r, C_cmp (op, a, b)) -> (
        match int_cmp_code op with
        | Some code when can_resolve a && can_resolve b ->
          let sa = resolve a in
          let sb = resolve b in
          let d = bind_write r true in
          add instr cost
            { mo_op = code; mo_dst = d; mo_a = sa; mo_b = sb;
              mo_n = 0; mo_k = 0 };
          true
        | _ -> false)
      | C_assign (r, C_load (ty, a)) -> (
        match mem_params arch ty with
        | Some (nbytes, shift) when can_resolve a ->
          let sa = resolve a in
          let d = bind_write r false in
          add instr cost
            { mo_op = mo_load; mo_dst = d; mo_a = sa; mo_b = -1;
              mo_n = nbytes; mo_k = shift };
          true
        | _ -> false)
      | C_store (ty, v, a) -> (
        match mem_params arch ty with
        | Some (nbytes, _) when can_resolve v && can_resolve a ->
          let sv = resolve v in
          let sa = resolve a in
          add instr cost
            { mo_op = mo_store; mo_dst = -1; mo_a = sv; mo_b = sa;
              mo_n = nbytes; mo_k = 0 };
          true
        | _ -> false)
      | C_assign (r, C_gep (base, const, dyn))
        when can_resolve base
             && Array.length dyn <= 1
             && (Array.length dyn = 0 || can_resolve (fst dyn.(0))) ->
        let sb = resolve base in
        let sidx, scale =
          if Array.length dyn = 0 then (-1, 0)
          else
            let c, size = dyn.(0) in
            (resolve c, size)
        in
        let d = bind_write r false in
        add instr cost
          { mo_op = mo_gep; mo_dst = d; mo_a = sb; mo_b = sidx;
            mo_n = scale; mo_k = const };
        true
      | C_assign (r, C_cast (op, src, a, dst)) -> (
        match cast_params op src dst with
        | Some (code, n, k) when can_resolve a ->
          let sa = resolve a in
          let d = bind_write r false in
          add instr cost
            { mo_op = code; mo_dst = d; mo_a = sa; mo_b = -1;
              mo_n = n; mo_k = k };
          true
        | _ -> false)
      | C_assign _ | C_effect _ | C_asm | C_chain _ -> false
    in
    if not fused then begin
      flush ();
      out := (instr, cost) :: !out
    end
  done;
  flush ();
  let l = List.rev !out in
  ( {
      cb with
      cb_instrs = Array.of_list (List.map fst l);
      cb_costs = Array.of_list (List.map snd l);
    },
    !max_slots )

let compile_func ~(arch : Arch.t) ~(layout : Layout.env)
    ~(globals : (string, int) Hashtbl.t) ~(fn_table : Fn_table.t)
    (f : Ir.func) : compiled =
  let scalar_bytes (ty : Ty.t) =
    match ty with
    | Ty.I8 -> Some 1
    | Ty.I16 -> Some 2
    | Ty.I32 | Ty.F32 -> Some 4
    | Ty.I64 | Ty.F64 -> Some 8
    | Ty.Ptr _ | Ty.Fn_ptr _ | Ty.Struct _ | Ty.Array _ | Ty.Void -> None
  in
  let cop (op : Ir.operand) : cop =
    match op with
    | Ir.Reg r -> C_reg r
    | Ir.Int (v, ty) -> (
      (* Same canonicalization the interpreter applied per evaluation:
         sub-word literals are kept sign-extended. *)
      match scalar_bytes ty with
      | Some n -> C_val (Value.VInt (No_mem.Scalar.sign_extend v n))
      | None -> C_slow_op op)
    | Ir.Float (v, _) -> C_val (Value.VFloat v)
    | Ir.Null _ -> C_val Value.zero
    | Ir.Global name -> (
      match Hashtbl.find_opt globals name with
      | Some addr -> C_val (Value.VInt (Int64.of_int addr))
      | None -> C_slow_op op)
    | Ir.Fn_addr name -> (
      match Fn_table.addr_of fn_table name with
      | addr -> C_val (Value.VInt (Int64.of_int addr))
      | exception _ -> C_slow_op op)
  in
  let gep (pointee : Ty.t) base path : crv =
    (* Static part of the layout walk: field offsets always, index
       scaling when the index is a literal.  Integer address addition
       is exact, so folding constants cannot change the result. *)
    match
      let rec walk acc dyn (ty : Ty.t) = function
        | [] -> (acc, List.rev dyn)
        | Ir.Field fname :: rest -> (
          match ty with
          | Ty.Struct sname ->
            walk
              (acc + Layout.field_offset layout sname fname)
              dyn
              (Layout.field_ty layout sname fname)
              rest
          | _ -> raise Exit)
        | Ir.Index op :: rest -> (
          let elem, size =
            match ty with
            | Ty.Array (e, _) -> (e, Layout.size_of layout e)
            | _ -> (ty, Layout.size_of layout ty)
          in
          match cop op with
          | C_val (Value.VInt v) ->
            walk (acc + (Int64.to_int v * size)) dyn elem rest
          | c -> walk acc ((c, size) :: dyn) elem rest)
      in
      walk 0 [] pointee path
    with
    | const, dyn -> C_gep (cop base, const, Array.of_list dyn)
    | exception _ -> C_slow_rv (Ir.Gep (pointee, base, path))
  in
  let crv (rv : Ir.rvalue) : crv =
    match rv with
    | Ir.Bin (op, a, b) -> C_bin (op, cop a, cop b)
    | Ir.Cmp (op, a, b) -> C_cmp (op, cop a, cop b)
    | Ir.Cast (op, src, a, dst) -> C_cast (op, src, cop a, dst)
    | Ir.Select (c, a, b) -> C_select (cop c, cop a, cop b)
    | Ir.Load (ty, a) -> C_load (ty, cop a)
    | Ir.Alloca (ty, n) -> (
      match (Layout.size_of layout ty, Layout.align_of layout ty) with
      | size, align -> C_alloca (size * n, align)
      | exception _ -> C_slow_rv rv)
    | Ir.Gep (pointee, base, path) -> gep pointee base path
    | Ir.Call (name, args) -> C_call (name, Array.of_list (List.map cop args))
    | Ir.Call_ind (_sg, fp, args) ->
      C_call_ind (cop fp, Array.of_list (List.map cop args))
    | Ir.Bswap (ty, a) -> C_bswap (ty, cop a)
    | Ir.Fn_map (dir, a) -> C_fn_map (dir, cop a)
  in
  let cinstr (instr : Ir.instr) : cinstr =
    match instr with
    | Ir.Assign (r, rv) -> C_assign (r, crv rv)
    | Ir.Effect rv -> C_effect (crv rv)
    | Ir.Store (ty, v, a) -> C_store (ty, cop v, cop a)
    | Ir.Asm _ -> C_asm
  in
  let blocks = Array.of_list f.Ir.f_blocks in
  let c_index = Hashtbl.create (2 * Array.length blocks) in
  Array.iteri
    (fun i (b : Ir.block) -> Hashtbl.replace c_index b.Ir.label i)
    blocks;
  let idx_of label = Hashtbl.find_opt c_index label in
  let cterm (term : Ir.terminator) : cterm =
    match term with
    | Ir.Br l -> (
      match idx_of l with Some i -> Ct_br i | None -> Ct_slow term)
    | Ir.Cbr (c, t, e) -> (
      match (idx_of t, idx_of e) with
      | Some ti, Some ei -> Ct_cbr (cop c, ti, ei)
      | _ -> Ct_slow term)
    | Ir.Switch (v, cases, default) -> (
      match idx_of default with
      | None -> Ct_slow term
      | Some di ->
        let rec conv acc = function
          | [] -> Some (List.rev acc)
          | (value, l) :: rest -> (
            match idx_of l with
            | Some i -> conv ((value, i) :: acc) rest
            | None -> None)
        in
        (match conv [] cases with
        | Some cases -> Ct_switch (cop v, Array.of_list cases, di)
        | None -> Ct_slow term))
    | Ir.Ret None -> Ct_ret_void
    | Ir.Ret (Some op) -> Ct_ret (cop op)
    | Ir.Unreachable -> Ct_unreachable
  in
  let cblock (b : Ir.block) : cblock =
    {
      cb_label = b.Ir.label;
      cb_instrs = Array.of_list (List.map cinstr b.Ir.instrs);
      cb_costs =
        Array.of_list
          (List.map
             (fun i -> Cost.seconds_of arch (Cost.class_of_instr i))
             b.Ir.instrs);
      cb_term = cterm b.Ir.term;
      cb_term_cost = Cost.seconds_of arch (Cost.class_of_terminator b.Ir.term);
    }
  in
  let entry_label = (Ir.entry_block f).Ir.label in
  let reads = reg_read_counts f in
  let scratch = ref 0 in
  let c_blocks =
    Array.map
      (fun b ->
        let fused, slots = fuse_block ~arch ~reads (cblock b) in
        if slots > !scratch then scratch := slots;
        fused)
      blocks
  in
  {
    c_func = f;
    c_blocks;
    c_index;
    c_entry = (match idx_of entry_label with Some i -> i | None -> 0);
    c_scratch = !scratch;
  }

(* Emit a runtime event stamped with this host's simulated clock. *)
let emit host ev =
  if not (No_trace.Trace.is_null host.sink) then
    host.sink.No_trace.Trace.emit ~ts:host.clock.now ev

type role = Mobile | Server

let stack_of_role = function
  | Mobile -> Stack_alloc.mobile ()
  | Server -> Stack_alloc.server ()

let globals_base_of_role = function
  | Mobile -> No_mem.Region.globals_base
  | Server -> No_mem.Region.globals_base + 0x0200_0000

(* Create a host for [modul] on [arch] in [role].

   [layout] is the layout environment the module's GEPs were lowered
   with (native for an untransformed module, unified for partitioned
   ones).  [fn_addr_standard] resolves function names to the addresses
   stored in memory for function-pointer initializers: for unified
   setups this is the *mobile* table regardless of which device we
   are.  [uva], [console], [fs] and [clock] may be shared between the
   two hosts of an offloading session. *)
(* Default per-role function table, shared by [create] and
   [compile_module]. *)
let role_fn_table role (modul : Ir.modul) =
  let names = List.map (fun (f : Ir.func) -> f.Ir.f_name) modul.Ir.m_funcs in
  match role with
  | Mobile -> Fn_table.mobile names
  | Server -> Fn_table.server names

(* Pre-decode [modul]'s functions without creating a host.  Everything
   the lowering depends on — cost model, layout walk results, global
   and function addresses — is a deterministic function of
   (arch, role, modul, layout, fn_table), so the returned table can be
   shared by every host created with equal inputs (pass it to [create]
   via [?code]); the table is immutable after this call. *)
let compile_module ~arch ~role ~(modul : Ir.modul) ~layout
    ?(fn_table : Fn_table.t option) () : (string, compiled) Hashtbl.t =
  let fn_table =
    match fn_table with
    | Some table -> table
    | None -> role_fn_table role modul
  in
  let assignments, _next =
    Loader.assign_addresses layout ~base:(globals_base_of_role role)
      modul.Ir.m_globals
  in
  let globals = Hashtbl.create 64 in
  List.iter (fun (name, addr) -> Hashtbl.replace globals name addr) assignments;
  let code = Hashtbl.create 64 in
  List.iter
    (fun (f : Ir.func) ->
      Hashtbl.replace code f.Ir.f_name
        (compile_func ~arch ~layout ~globals ~fn_table f))
    modul.Ir.m_funcs;
  code

let create ~arch ~role ~(modul : Ir.modul) ~layout
    ?(fn_table : Fn_table.t option) ?(fn_addr_standard : (string -> int) option)
    ?(uva : Uva.t option) ?(console : Console.t option) ?(fs : Fs.t option)
    ?(clock : clock option) ?(sink = No_trace.Trace.null)
    ?(code : (string, compiled) Hashtbl.t option) () : t =
  let mem =
    Memory.create (match role with Mobile -> Memory.Home | Server -> Memory.Remote)
  in
  let fn_table =
    match fn_table with
    | Some table -> table
    | None -> role_fn_table role modul
  in
  let fn_addr_standard =
    match fn_addr_standard with
    | Some resolve -> resolve
    | None -> Fn_table.addr_of fn_table
  in
  let assignments, _next =
    Loader.assign_addresses layout ~base:(globals_base_of_role role)
      modul.Ir.m_globals
  in
  let globals = Hashtbl.create 64 in
  List.iter (fun (name, addr) -> Hashtbl.replace globals name addr) assignments;
  let host =
    {
      arch;
      mem;
      stack = stack_of_role role;
      layout;
      modul;
      globals;
      fn_table;
      uva = (match uva with Some u -> u | None -> Uva.create ());
      console = (match console with Some c -> c | None -> Console.create ());
      fs = (match fs with Some f -> f | None -> Fs.create ());
      clock = (match clock with Some c -> c | None -> { now = 0.0 });
      hooks = default_hooks ();
      sink;
      code =
        (match code with Some shared -> shared | None -> Hashtbl.create 64);
      instr_count = 0;
      fuel = -1;
      slowdown = 1.0;
    }
  in
  (match code with
  | Some _ -> ()     (* pre-decoded table shared by the caller *)
  | None ->
    List.iter
      (fun (f : Ir.func) ->
        Hashtbl.replace host.code f.Ir.f_name
          (compile_func ~arch ~layout ~globals ~fn_table f))
      modul.Ir.m_funcs);
  (* Materialize globals.  On a Remote host this would fault, so only
     Home memories get initial contents; a server reads globals it
     needs through copy-on-demand...  *except* that each device's
     non-UVA globals are its own (separate native addresses), so we
     install them directly as resident pages. *)
  let write_byte addr v =
    match role with
    | Mobile -> Memory.write_byte mem addr v
    | Server ->
      (* Install the page as resident before writing. *)
      let page = No_mem.Region.page_of_addr addr in
      if not (Memory.has_page mem page) then
        Memory.install_page mem page (Bytes.make No_mem.Region.page_size '\000');
      Memory.write_byte mem addr v
  in
  List.iter
    (fun (g : Ir.global) ->
      let addr = Hashtbl.find globals g.Ir.g_name in
      Loader.write_init ~layout ~endianness:arch.Arch.endianness ~write_byte
        ~fn_addr:fn_addr_standard ~addr g.Ir.g_ty g.Ir.g_init)
    modul.Ir.m_globals;
  emit host
    (No_trace.Trace.Module_load
       {
         role = (match role with Mobile -> "mobile" | Server -> "server");
         functions = List.length modul.Ir.m_funcs;
         globals = List.length modul.Ir.m_globals;
       });
  host

let charge host cls =
  host.clock.now <-
    host.clock.now +. (Cost.seconds_of host.arch cls *. host.slowdown)

let charge_seconds host s =
  host.clock.now <- host.clock.now +. (s *. host.slowdown)

let global_addr host name =
  match Hashtbl.find_opt host.globals name with
  | Some addr -> addr
  | None -> invalid_arg (Printf.sprintf "Host.global_addr: %s" name)

let compiled host name = Hashtbl.find_opt host.code name

(* {1 Endianness-aware scalar memory access at native widths} *)

let scalar_mem_bytes host (ty : Ty.t) =
  match ty with
  | Ty.I8 -> 1
  | Ty.I16 -> 2
  | Ty.I32 | Ty.F32 -> 4
  | Ty.I64 | Ty.F64 -> 8
  | Ty.Ptr _ | Ty.Fn_ptr _ -> Arch.ptr_bytes host.arch
  | Ty.Struct _ | Ty.Array _ | Ty.Void ->
    invalid_arg "Host.scalar_mem_bytes: not a scalar"

(* Little-endian hosts hit the word-width slab path in [Memory];
   big-endian ones go through [Scalar]'s byte loop (the closure there
   is off the dominant path — the reference archs are all LE). *)
let load_bits host addr nbytes =
  match host.arch.Arch.endianness with
  | Arch.Little -> Memory.load_le host.mem addr nbytes
  | Arch.Big ->
    No_mem.Scalar.load_int Arch.Big
      ~read_byte:(fun a -> Memory.read_byte host.mem a)
      addr nbytes

let store_bits host addr nbytes bits =
  match host.arch.Arch.endianness with
  | Arch.Little -> Memory.store_le host.mem addr nbytes bits
  | Arch.Big ->
    No_mem.Scalar.store_int Arch.Big
      ~write_byte:(fun a b -> Memory.write_byte host.mem a b)
      addr nbytes bits

let load_scalar host (ty : Ty.t) addr : Value.t =
  let nbytes = scalar_mem_bytes host ty in
  let bits = load_bits host addr nbytes in
  match ty with
  | Ty.F32 -> Value.VFloat (No_mem.Scalar.float_of_bits ~f32:true bits)
  | Ty.F64 -> Value.VFloat (No_mem.Scalar.float_of_bits ~f32:false bits)
  | Ty.I8 | Ty.I16 | Ty.I32 | Ty.I64 ->
    Value.VInt (No_mem.Scalar.sign_extend bits nbytes)
  | Ty.Ptr _ | Ty.Fn_ptr _ ->
    (* Addresses are unsigned: no sign extension. *)
    Value.VInt bits
  | Ty.Struct _ | Ty.Array _ | Ty.Void -> assert false

let store_scalar host (ty : Ty.t) addr (v : Value.t) : unit =
  let nbytes = scalar_mem_bytes host ty in
  let bits =
    match ty with
    | Ty.F32 -> No_mem.Scalar.float_to_bits ~f32:true (Value.to_float v)
    | Ty.F64 -> No_mem.Scalar.float_to_bits ~f32:false (Value.to_float v)
    | Ty.I8 | Ty.I16 | Ty.I32 | Ty.I64 | Ty.Ptr _ | Ty.Fn_ptr _ ->
      Value.to_int v
    | Ty.Struct _ | Ty.Array _ | Ty.Void -> assert false
  in
  store_bits host addr nbytes bits
