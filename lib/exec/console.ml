(* Scripted console device.

   Interactive input (scanf in the paper's chess example) comes from a
   pre-loaded script queue; output is captured.  The function filter
   treats interactive input as machine specific precisely because it
   must happen on the mobile device where the user is. *)

type input = In_int of int64 | In_float of float

type t = {
  mutable script : input list;
  output : Buffer.t;
  mutable reads : int;
  mutable writes : int;
  (* Output bytes of a resumed task still covered by the committed
     ledger: re-executed writes are matched against the tail of the
     buffer and dropped instead of appended (exactly-once delivery
     across a migration).  0 outside a resume window. *)
  mutable suppress : int;
}

exception Input_exhausted

let create ?(script = []) () =
  { script; output = Buffer.create 256; reads = 0; writes = 0; suppress = 0 }

let push_input t input = t.script <- t.script @ [ input ]

let read_int t =
  t.reads <- t.reads + 1;
  match t.script with
  | In_int v :: rest ->
    t.script <- rest;
    v
  | In_float v :: rest ->
    t.script <- rest;
    Int64.of_float v
  | [] -> raise Input_exhausted

let read_float t =
  t.reads <- t.reads + 1;
  match t.script with
  | In_float v :: rest ->
    t.script <- rest;
    v
  | In_int v :: rest ->
    t.script <- rest;
    Int64.to_float v
  | [] -> raise Input_exhausted

let write_string t s =
  t.writes <- t.writes + 1;
  if t.suppress > 0 then (
    (* The next [suppress] bytes were already delivered before the
       task migrated; deterministic re-execution must reproduce them
       byte for byte, so verify and drop rather than append twice. *)
    let len = String.length s in
    let take = min len t.suppress in
    let off = Buffer.length t.output - t.suppress in
    if not (String.equal (String.sub s 0 take) (Buffer.sub t.output off take))
    then
      invalid_arg
        "Console.write_string: resumed output diverges from the committed \
         ledger";
    t.suppress <- t.suppress - take;
    if take < len then Buffer.add_string t.output (String.sub s take (len - take)))
  else Buffer.add_string t.output s

let contents t = Buffer.contents t.output
let output_bytes t = Buffer.length t.output
let clear_output t = Buffer.clear t.output

(* Transaction marks, for recovery: output written after a mark is
   provisional until the caller commits (does nothing — output was
   appended in place) or rolls back (truncates it away and restores
   the input script, so a replayed task re-reads the same inputs and
   the observable history shows each effect exactly once). *)

type mark = {
  m_output_len : int;
  m_script : input list;
  m_reads : int;
  m_writes : int;
}

let mark t =
  {
    m_output_len = Buffer.length t.output;
    m_script = t.script;
    m_reads = t.reads;
    m_writes = t.writes;
  }

let rollback_to t m =
  let dropped = Buffer.length t.output - m.m_output_len in
  Buffer.truncate t.output m.m_output_len;
  t.script <- m.m_script;
  t.reads <- m.m_reads;
  t.writes <- m.m_writes;
  t.suppress <- 0;
  max dropped 0

(* Output bytes delivered after the mark — the side-effect ledger a
   migrating task carries so the new server knows what the outside
   world has already seen. *)
let committed_since t m = max 0 (Buffer.length t.output - m.m_output_len)

(* Resume after a migration: keep everything already delivered, rewind
   the *input* script and the op counters to the mark (the resumed
   task re-reads the same inputs and re-counts each op exactly once),
   and arm a suppression window over the committed tail so re-executed
   writes are matched and dropped instead of delivered twice. *)
let resume_at t m =
  let committed = committed_since t m in
  t.script <- m.m_script;
  t.reads <- m.m_reads;
  t.writes <- m.m_writes;
  t.suppress <- committed;
  committed

let suppressed_remaining t = t.suppress
