(* Scripted console device.

   Interactive input (scanf in the paper's chess example) comes from a
   pre-loaded script queue; output is captured.  The function filter
   treats interactive input as machine specific precisely because it
   must happen on the mobile device where the user is. *)

type input = In_int of int64 | In_float of float

type t = {
  mutable script : input list;
  output : Buffer.t;
  mutable reads : int;
  mutable writes : int;
}

exception Input_exhausted

let create ?(script = []) () =
  { script; output = Buffer.create 256; reads = 0; writes = 0 }

let push_input t input = t.script <- t.script @ [ input ]

let read_int t =
  t.reads <- t.reads + 1;
  match t.script with
  | In_int v :: rest ->
    t.script <- rest;
    v
  | In_float v :: rest ->
    t.script <- rest;
    Int64.of_float v
  | [] -> raise Input_exhausted

let read_float t =
  t.reads <- t.reads + 1;
  match t.script with
  | In_float v :: rest ->
    t.script <- rest;
    v
  | In_int v :: rest ->
    t.script <- rest;
    Int64.to_float v
  | [] -> raise Input_exhausted

let write_string t s =
  t.writes <- t.writes + 1;
  Buffer.add_string t.output s

let contents t = Buffer.contents t.output
let output_bytes t = Buffer.length t.output
let clear_output t = Buffer.clear t.output

(* Transaction marks, for recovery: output written after a mark is
   provisional until the caller commits (does nothing — output was
   appended in place) or rolls back (truncates it away and restores
   the input script, so a replayed task re-reads the same inputs and
   the observable history shows each effect exactly once). *)

type mark = {
  m_output_len : int;
  m_script : input list;
  m_reads : int;
  m_writes : int;
}

let mark t =
  {
    m_output_len = Buffer.length t.output;
    m_script = t.script;
    m_reads = t.reads;
    m_writes = t.writes;
  }

let rollback_to t m =
  let dropped = Buffer.length t.output - m.m_output_len in
  Buffer.truncate t.output m.m_output_len;
  t.script <- m.m_script;
  t.reads <- m.m_reads;
  t.writes <- m.m_writes;
  max dropped 0
