(* The IR interpreter.

   Executes a module on a {!Host}, charging each instruction its cycle
   cost under the host architecture's cost model, going through the
   host memory (and therefore through the page table: on a server
   host, touching a non-resident page invokes the copy-on-demand fault
   handler), and dispatching builtins to the host's devices.  The
   offloading runtime and the profiler attach through {!Host.hooks}. *)

module Arch = No_arch.Arch
module Cost = No_arch.Cost
module Layout = No_arch.Layout
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module Builtins = No_ir.Builtins
module Memory = No_mem.Memory
module Scalar = No_mem.Scalar
module Uva = No_mem.Uva
module Stack_alloc = No_mem.Stack_alloc

exception Trap of string
exception Out_of_fuel

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

(* Console/file operation latencies on the local device (syscall-ish
   costs, on the simulated-CPU time scale; the network costs of
   *remote* I/O are added by the runtime's override). *)
let local_io_seconds = 1.0e-3

let width_bits (ty : Ty.t) =
  match ty with
  | Ty.I8 -> 8
  | Ty.I16 -> 16
  | Ty.I32 -> 32
  | Ty.I64 -> 64
  | Ty.F32 -> 32
  | Ty.F64 -> 64
  | Ty.Ptr _ | Ty.Fn_ptr _ | Ty.Struct _ | Ty.Array _ | Ty.Void ->
    trap "width_bits of %s" (Ty.to_string ty)

(* Canonical integer representation: sub-word values are kept
   sign-extended; this keeps signed arithmetic trivial and makes
   unsigned operations mask explicitly. *)
let canon (ty : Ty.t) v = Scalar.sign_extend v (width_bits ty / 8)

let mask_to_width (ty : Ty.t) v =
  let bits = width_bits ty in
  if bits >= 64 then v
  else Int64.logand v (Int64.sub (Int64.shift_left 1L bits) 1L)

type frame = {
  host : Host.t;
  regs : Value.t array;
  func : Host.compiled;
  scratch : float array;
      (* unboxed int64 bit patterns for fused chains (Host.chain);
         per-frame so an effect suspension mid-chain cannot be
         clobbered by another session's client *)
}

let no_scratch : float array = [||]

let read_cstring host addr =
  let buf = Buffer.create 16 in
  let rec go a =
    let b = Memory.read_byte host.Host.mem a in
    if b <> 0 then begin
      Buffer.add_char buf (Char.chr b);
      go (a + 1)
    end
  in
  go addr;
  Buffer.contents buf

let rec eval_operand frame (op : Ir.operand) : Value.t =
  match op with
  | Ir.Reg r -> frame.regs.(r)
  | Ir.Int (v, ty) -> Value.VInt (canon ty v)
  | Ir.Float (v, _) -> Value.VFloat v
  | Ir.Null _ -> Value.VInt 0L
  | Ir.Global name -> Value.VInt (Int64.of_int (Host.global_addr frame.host name))
  | Ir.Fn_addr name ->
    Value.VInt (Int64.of_int (Fn_table.addr_of frame.host.Host.fn_table name))

and eval_binop (op : Ir.binop) a b : Value.t =
  match op with
  | Ir.Fadd -> Value.VFloat (Value.to_float a +. Value.to_float b)
  | Ir.Fsub -> Value.VFloat (Value.to_float a -. Value.to_float b)
  | Ir.Fmul -> Value.VFloat (Value.to_float a *. Value.to_float b)
  | Ir.Fdiv -> Value.VFloat (Value.to_float a /. Value.to_float b)
  | Ir.Add | Ir.Sub | Ir.Mul | Ir.Sdiv | Ir.Udiv | Ir.Srem | Ir.Urem
  | Ir.And | Ir.Or | Ir.Xor | Ir.Shl | Ir.Lshr | Ir.Ashr -> (
    let x = Value.to_int a and y = Value.to_int b in
    let check_nonzero () = if Int64.equal y 0L then trap "division by zero" in
    match op with
    | Ir.Add -> Value.VInt (Int64.add x y)
    | Ir.Sub -> Value.VInt (Int64.sub x y)
    | Ir.Mul -> Value.VInt (Int64.mul x y)
    | Ir.Sdiv -> check_nonzero (); Value.VInt (Int64.div x y)
    | Ir.Udiv -> check_nonzero (); Value.VInt (Int64.unsigned_div x y)
    | Ir.Srem -> check_nonzero (); Value.VInt (Int64.rem x y)
    | Ir.Urem -> check_nonzero (); Value.VInt (Int64.unsigned_rem x y)
    | Ir.And -> Value.VInt (Int64.logand x y)
    | Ir.Or -> Value.VInt (Int64.logor x y)
    | Ir.Xor -> Value.VInt (Int64.logxor x y)
    | Ir.Shl -> Value.VInt (Int64.shift_left x (Int64.to_int y land 63))
    | Ir.Lshr ->
      Value.VInt (Int64.shift_right_logical x (Int64.to_int y land 63))
    | Ir.Ashr -> Value.VInt (Int64.shift_right x (Int64.to_int y land 63))
    | Ir.Fadd | Ir.Fsub | Ir.Fmul | Ir.Fdiv -> assert false)

and eval_cmp (op : Ir.cmpop) a b : Value.t =
  let vb =
    match op with
    | Ir.Eq -> Value.equal a b
    | Ir.Ne -> not (Value.equal a b)
    | Ir.Slt -> Int64.compare (Value.to_int a) (Value.to_int b) < 0
    | Ir.Sle -> Int64.compare (Value.to_int a) (Value.to_int b) <= 0
    | Ir.Sgt -> Int64.compare (Value.to_int a) (Value.to_int b) > 0
    | Ir.Sge -> Int64.compare (Value.to_int a) (Value.to_int b) >= 0
    | Ir.Ult -> Int64.unsigned_compare (Value.to_int a) (Value.to_int b) < 0
    | Ir.Ule -> Int64.unsigned_compare (Value.to_int a) (Value.to_int b) <= 0
    | Ir.Ugt -> Int64.unsigned_compare (Value.to_int a) (Value.to_int b) > 0
    | Ir.Uge -> Int64.unsigned_compare (Value.to_int a) (Value.to_int b) >= 0
    | Ir.Feq -> Value.to_float a = Value.to_float b
    | Ir.Fne -> Value.to_float a <> Value.to_float b
    | Ir.Flt -> Value.to_float a < Value.to_float b
    | Ir.Fle -> Value.to_float a <= Value.to_float b
    | Ir.Fgt -> Value.to_float a > Value.to_float b
    | Ir.Fge -> Value.to_float a >= Value.to_float b
  in
  Value.of_bool vb

and eval_cast (op : Ir.castop) (src : Ty.t) v (dst : Ty.t) : Value.t =
  match op with
  | Ir.Zext -> Value.VInt (canon dst (mask_to_width src (Value.to_int v)))
  | Ir.Sext -> Value.VInt (canon dst (Value.to_int v))
  | Ir.Trunc -> Value.VInt (canon dst (Value.to_int v))
  | Ir.Bitcast -> v
  | Ir.Fp_to_si -> Value.VInt (canon dst (Int64.of_float (Value.to_float v)))
  | Ir.Si_to_fp -> Value.VFloat (Int64.to_float (Value.to_int v))
  | Ir.Fp_ext -> v
  | Ir.Fp_trunc ->
    Value.VFloat (Int32.float_of_bits (Int32.bits_of_float (Value.to_float v)))
  | Ir.Ptr_to_int -> Value.VInt (canon dst (Value.to_int v))
  | Ir.Int_to_ptr -> Value.VInt (Value.to_int v)

(* Compute a GEP address under the host's layout environment.  The
   profiler runs before lowering, so the interpreter must understand
   symbolic GEPs; lowered modules contain none. *)
and eval_gep frame (pointee : Ty.t) base (path : Ir.gep_index list) : int =
  let layout = frame.host.Host.layout in
  let rec walk addr (ty : Ty.t) path =
    match path with
    | [] -> addr
    | Ir.Field fname :: rest -> (
      match ty with
      | Ty.Struct sname ->
        walk
          (addr + Layout.field_offset layout sname fname)
          (Layout.field_ty layout sname fname)
          rest
      | _ -> trap "gep: field %s of non-struct %s" fname (Ty.to_string ty))
    | Ir.Index op :: rest -> (
      let idx = Int64.to_int (Value.to_int (eval_operand frame op)) in
      match ty with
      | Ty.Array (elem, _) ->
        walk (addr + (idx * Layout.size_of layout elem)) elem rest
      | _ -> walk (addr + (idx * Layout.size_of layout ty)) ty rest)
  in
  walk (Value.to_addr (eval_operand frame base)) pointee path

and eval_rvalue frame (rv : Ir.rvalue) : Value.t =
  let host = frame.host in
  match rv with
  | Ir.Bin (op, a, b) ->
    eval_binop op (eval_operand frame a) (eval_operand frame b)
  | Ir.Cmp (op, a, b) ->
    eval_cmp op (eval_operand frame a) (eval_operand frame b)
  | Ir.Cast (op, src, a, dst) -> eval_cast op src (eval_operand frame a) dst
  | Ir.Select (c, a, b) ->
    if Value.to_bool (eval_operand frame c) then eval_operand frame a
    else eval_operand frame b
  | Ir.Load (ty, a) ->
    Host.load_scalar host ty (Value.to_addr (eval_operand frame a))
  | Ir.Alloca (ty, n) ->
    let layout = host.Host.layout in
    let size = Layout.size_of layout ty * n in
    let align = Layout.align_of layout ty in
    Value.VInt (Int64.of_int (Stack_alloc.alloc host.Host.stack size align))
  | Ir.Gep (pointee, base, path) ->
    Value.VInt (Int64.of_int (eval_gep frame pointee base path))
  | Ir.Call (name, args) ->
    let argv = List.map (eval_operand frame) args in
    call_by_name host name argv
  | Ir.Call_ind (sg, f, args) -> (
    let addr = Value.to_addr (eval_operand frame f) in
    let argv = List.map (eval_operand frame) args in
    ignore sg;
    match Fn_table.name_of host.Host.fn_table addr with
    | name -> call_by_name host name argv
    | exception Fn_table.Not_a_function _ ->
      trap "indirect call through foreign or invalid address 0x%x" addr)
  | Ir.Bswap (ty, a) -> eval_bswap frame ty (eval_operand frame a)
  | Ir.Fn_map (dir, a) -> eval_fn_map host dir (eval_operand frame a)

and eval_bswap _frame (ty : Ty.t) v : Value.t =
  let nbytes = width_bits ty / 8 in
  match ty with
  | Ty.F32 | Ty.F64 ->
    let f32 = Ty.equal ty Ty.F32 in
    let bits = Scalar.float_to_bits ~f32 (Value.to_float v) in
    Value.VFloat (Scalar.float_of_bits ~f32 (Scalar.bswap bits nbytes))
  | _ ->
    let x = Value.to_int v in
    Value.VInt (canon ty (Scalar.bswap (mask_to_width ty x) nbytes))

and eval_fn_map host dir v : Value.t =
  (* A lone host maps identically (it has only its own table); the
     offloading runtime installs the real mobile<->server translation
     and charges its cost. *)
  match host.Host.hooks.Host.fn_map with
  | Some translate -> translate dir v
  | None -> v

(* {1 Pre-decoded evaluation — the hot path}

   Mirrors [eval_rvalue] over [Host.crv]; constants are pre-boxed, so
   evaluating an operand is an array read or a pointer return. *)

and eval_cop frame (op : Host.cop) : Value.t =
  match op with
  | Host.C_reg r -> frame.regs.(r)
  | Host.C_val v -> v
  | Host.C_slow_op op -> eval_operand frame op

and eval_args frame (args : Host.cop array) i : Value.t list =
  if i >= Array.length args then []
  else
    let v = eval_cop frame (Array.unsafe_get args i) in
    v :: eval_args frame args (i + 1)

and eval_crv frame (rv : Host.crv) : Value.t =
  let host = frame.host in
  match rv with
  | Host.C_bin (op, a, b) ->
    eval_binop op (eval_cop frame a) (eval_cop frame b)
  | Host.C_cmp (op, a, b) ->
    eval_cmp op (eval_cop frame a) (eval_cop frame b)
  | Host.C_cast (op, src, a, dst) -> eval_cast op src (eval_cop frame a) dst
  | Host.C_select (c, a, b) ->
    if Value.to_bool (eval_cop frame c) then eval_cop frame a
    else eval_cop frame b
  | Host.C_load (ty, a) ->
    Host.load_scalar host ty (Value.to_addr (eval_cop frame a))
  | Host.C_alloca (size, align) ->
    Value.VInt (Int64.of_int (Stack_alloc.alloc host.Host.stack size align))
  | Host.C_gep (base, const, dyn) ->
    let a = ref (Value.to_addr (eval_cop frame base) + const) in
    for i = 0 to Array.length dyn - 1 do
      let op, size = Array.unsafe_get dyn i in
      a := !a + (Int64.to_int (Value.to_int (eval_cop frame op)) * size)
    done;
    Value.VInt (Int64.of_int !a)
  | Host.C_call (name, args) -> call_by_name host name (eval_args frame args 0)
  | Host.C_call_ind (fp, args) -> (
    let addr = Value.to_addr (eval_cop frame fp) in
    let argv = eval_args frame args 0 in
    match Fn_table.name_of host.Host.fn_table addr with
    | name -> call_by_name host name argv
    | exception Fn_table.Not_a_function _ ->
      trap "indirect call through foreign or invalid address 0x%x" addr)
  | Host.C_bswap (ty, a) -> eval_bswap frame ty (eval_cop frame a)
  | Host.C_fn_map (dir, a) -> eval_fn_map host dir (eval_cop frame a)
  | Host.C_slow_rv rv -> eval_rvalue frame rv

(* {1 Builtins} *)

and charge_bulk host bytes =
  Host.charge_seconds host (Cost.seconds_per_byte host.Host.arch *. float_of_int bytes)

and default_builtin host name (argv : Value.t list) : Value.t =
  let arg n = List.nth argv n in
  let int_arg n = Value.to_int (arg n) in
  let addr_arg n = Value.to_addr (arg n) in
  let float_arg n = Value.to_float (arg n) in
  let console = host.Host.console in
  let io () = Host.charge_seconds host local_io_seconds in
  match name with
  | "malloc" | "u_malloc" ->
    Host.charge host Arch.Cls_alloc;
    Value.VInt (Int64.of_int (Uva.alloc host.Host.uva (Int64.to_int (int_arg 0))))
  | "free" | "u_free" ->
    Host.charge host Arch.Cls_alloc;
    Uva.dealloc host.Host.uva (addr_arg 0);
    Value.zero
  | "print_i64" | "r_print_i64" ->
    io ();
    Console.write_string console (Int64.to_string (int_arg 0));
    Value.zero
  | "print_f64" | "r_print_f64" ->
    io ();
    Console.write_string console (Printf.sprintf "%.6g" (float_arg 0));
    Value.zero
  | "print_str" | "r_print_str" ->
    io ();
    Console.write_string console (read_cstring host (addr_arg 0));
    Value.zero
  | "print_newline" | "r_print_newline" ->
    io ();
    Console.write_string console "\n";
    Value.zero
  | "scan_i64" ->
    io ();
    Value.VInt (Console.read_int console)
  | "scan_f64" ->
    io ();
    Value.VFloat (Console.read_float console)
  | "f_open" | "rf_open" ->
    io ();
    Value.VInt (Int64.of_int (Fs.open_file host.Host.fs (read_cstring host (addr_arg 0))))
  | "f_size" | "rf_size" ->
    io ();
    Value.VInt (Int64.of_int (Fs.size host.Host.fs (Int64.to_int (int_arg 0))))
  | "f_read" | "rf_read" ->
    io ();
    let chunk =
      Fs.read host.Host.fs (Int64.to_int (int_arg 0)) (Int64.to_int (int_arg 2))
    in
    Memory.write_block host.Host.mem (addr_arg 1) chunk;
    charge_bulk host (Bytes.length chunk);
    Value.VInt (Int64.of_int (Bytes.length chunk))
  | "f_close" | "rf_close" ->
    io ();
    Fs.close host.Host.fs (Int64.to_int (int_arg 0));
    Value.zero
  | "sqrt" -> Host.charge host Arch.Cls_math; Value.VFloat (sqrt (float_arg 0))
  | "sin" -> Host.charge host Arch.Cls_math; Value.VFloat (sin (float_arg 0))
  | "cos" -> Host.charge host Arch.Cls_math; Value.VFloat (cos (float_arg 0))
  | "exp" -> Host.charge host Arch.Cls_math; Value.VFloat (exp (float_arg 0))
  | "log" -> Host.charge host Arch.Cls_math; Value.VFloat (log (float_arg 0))
  | "fabs" ->
    Host.charge host Arch.Cls_math;
    Value.VFloat (Float.abs (float_arg 0))
  | "pow" ->
    Host.charge host Arch.Cls_math;
    Value.VFloat (Float.pow (float_arg 0) (float_arg 1))
  | "memcpy" ->
    let dst = addr_arg 0 and src = addr_arg 1 in
    let n = Int64.to_int (int_arg 2) in
    let data = Memory.read_block host.Host.mem src n in
    Memory.write_block host.Host.mem dst data;
    charge_bulk host (2 * n);
    Value.zero
  | "memset" ->
    let dst = addr_arg 0 in
    let v = Int64.to_int (int_arg 1) land 0xff in
    let n = Int64.to_int (int_arg 2) in
    Memory.write_block host.Host.mem dst (Bytes.make n (Char.chr v));
    charge_bulk host n;
    Value.zero
  | "syscall" ->
    (* Locally executable; never offloaded (the filter sees to it). *)
    io ();
    Value.zero
  | _ -> trap "call to unknown function %s" name

and call_by_name (host : Host.t) name (argv : Value.t list) : Value.t =
  Host.charge host Arch.Cls_branch;
  match Host.compiled host name with
  | Some compiled -> run_function host compiled argv
  | None -> (
    (* Session overrides see every non-IR call first. *)
    match host.Host.hooks.Host.builtin_override with
    | Some override when Builtins.is_builtin name -> (
      match override name argv with
      | Some result -> result
      | None -> default_builtin host name argv)
    | _ ->
      if Builtins.is_builtin name then default_builtin host name argv
      else (
        match List.assoc_opt name host.Host.modul.Ir.m_externs with
        | Some _ -> (
          match host.Host.hooks.Host.extern_call with
          | Some handler -> (
            match handler name argv with
            | Some result -> result
            | None -> trap "extern %s rejected by runtime" name)
          | None -> trap "extern %s with no runtime attached" name)
        | None -> trap "call to unknown function %s" name))

and run_function (host : Host.t) (compiled : Host.compiled) argv : Value.t =
  let f = compiled.Host.c_func in
  Host.charge host Arch.Cls_call;
  host.Host.hooks.Host.on_enter f.Ir.f_name;
  if List.length argv <> List.length f.Ir.f_params then
    trap "%s: called with %d arguments, expected %d" f.Ir.f_name
      (List.length argv) (List.length f.Ir.f_params);
  let regs = Array.make (max f.Ir.f_nregs 1) Value.zero in
  List.iteri (fun i v -> regs.(i) <- v) argv;
  let scratch =
    if compiled.Host.c_scratch = 0 then no_scratch
    else Array.make compiled.Host.c_scratch 0.0
  in
  let frame = { host; regs; func = compiled; scratch } in
  let mark = Stack_alloc.frame_mark host.Host.stack in
  let result = run_blocks frame compiled.Host.c_entry in
  Stack_alloc.release host.Host.stack mark;
  host.Host.hooks.Host.on_exit f.Ir.f_name;
  result

and run_blocks frame idx : Value.t =
  let host = frame.host in
  let fname = frame.func.Host.c_func.Ir.f_name in
  (* Fuel is also consumed per block so an instruction-free loop
     cannot spin forever under a fuel limit. *)
  if host.Host.fuel = 0 then raise Out_of_fuel;
  if host.Host.fuel > 0 then host.Host.fuel <- host.Host.fuel - 1;
  let b = frame.func.Host.c_blocks.(idx) in
  host.Host.hooks.Host.on_block fname b.Host.cb_label;
  let instrs = b.Host.cb_instrs in
  let costs = b.Host.cb_costs in
  for i = 0 to Array.length instrs - 1 do
    match Array.unsafe_get instrs i with
    | Host.C_chain ch ->
      (* Does its own per-micro-op fuel/count/charge bookkeeping. *)
      exec_chain frame ch
    | instr ->
      (* Same per-instruction sequence as the un-decoded interpreter:
         fuel, count, charge (precomputed seconds x slowdown — the
         very floats the old [Host.charge] added, so the clock is
         bit-identical), then execute. *)
      if host.Host.fuel = 0 then raise Out_of_fuel;
      if host.Host.fuel > 0 then host.Host.fuel <- host.Host.fuel - 1;
      host.Host.instr_count <- host.Host.instr_count + 1;
      host.Host.clock.Host.now <-
        host.Host.clock.Host.now
        +. (Array.unsafe_get costs i *. host.Host.slowdown);
      (match instr with
      | Host.C_assign (r, rv) -> frame.regs.(r) <- eval_crv frame rv
      | Host.C_effect rv -> ignore (eval_crv frame rv)
      | Host.C_store (ty, v, a) ->
        Host.store_scalar host ty
          (Value.to_addr (eval_cop frame a))
          (eval_cop frame v)
      | Host.C_asm ->
        (* Inline assembly runs only on its own machine; the filter
           keeps it off the server.  Behaviour: an opaque no-op. *)
        ()
      | Host.C_chain _ -> assert false)
  done;
  host.Host.clock.Host.now <-
    host.Host.clock.Host.now +. (b.Host.cb_term_cost *. host.Host.slowdown);
  host.Host.instr_count <- host.Host.instr_count + 1;
  match b.Host.cb_term with
  | Host.Ct_br next -> run_blocks frame next
  | Host.Ct_cbr (c, t, e) ->
    if Value.to_bool (eval_cop frame c) then run_blocks frame t
    else run_blocks frame e
  | Host.Ct_switch (v, cases, default) ->
    let scrutinee = Value.to_int (eval_cop frame v) in
    let n = Array.length cases in
    let target = ref default in
    let k = ref 0 in
    let searching = ref true in
    while !searching && !k < n do
      let value, i = Array.unsafe_get cases !k in
      if Int64.equal value scrutinee then begin
        target := i;
        searching := false
      end;
      incr k
    done;
    run_blocks frame !target
  | Host.Ct_ret_void -> Value.zero
  | Host.Ct_ret op -> eval_cop frame op
  | Host.Ct_unreachable -> trap "%s: reached unreachable" fname
  | Host.Ct_slow term -> exec_slow_term frame term

(* Fused integer chain (see Host.chain): preload the boxed inputs
   into the frame's float-array scratch, run the micro-ops with the
   same per-instruction fuel/count/clock sequence the unfused
   instructions performed, then box the live-outs back into the
   register file.  All intermediate arithmetic stays unboxed: int64
   bit patterns live in the flat float array via
   [Int64.float_of_bits], and the compiler keeps values consumed
   directly by int64 primitives out of the heap. *)
and exec_chain frame (ch : Host.chain) : unit =
  let host = frame.host in
  let scratch = frame.scratch in
  let regs = frame.regs in
  let pre = ch.Host.ch_pre in
  let npre = Array.length pre in
  let p = ref 0 in
  while !p < npre do
    Array.unsafe_set scratch
      (Array.unsafe_get pre !p)
      (Int64.float_of_bits
         (Value.to_int (Array.unsafe_get regs (Array.unsafe_get pre (!p + 1)))));
    p := !p + 2
  done;
  let islots = ch.Host.ch_imm_slots and ivals = ch.Host.ch_imm_vals in
  for j = 0 to Array.length islots - 1 do
    Array.unsafe_set scratch (Array.unsafe_get islots j)
      (Array.unsafe_get ivals j)
  done;
  let ops = ch.Host.ch_ops and costs = ch.Host.ch_costs in
  for j = 0 to Array.length ops - 1 do
    if host.Host.fuel = 0 then raise Out_of_fuel;
    if host.Host.fuel > 0 then host.Host.fuel <- host.Host.fuel - 1;
    host.Host.instr_count <- host.Host.instr_count + 1;
    host.Host.clock.Host.now <-
      host.Host.clock.Host.now
      +. (Array.unsafe_get costs j *. host.Host.slowdown);
    let m = Array.unsafe_get ops j in
    let opc = m.Host.mo_op in
    if opc <= 16 then begin
      (* Binops and ordered compares: two slot operands. *)
      let x = Int64.bits_of_float (Array.unsafe_get scratch m.Host.mo_a) in
      let y = Int64.bits_of_float (Array.unsafe_get scratch m.Host.mo_b) in
      if opc <= 8 then
        Array.unsafe_set scratch m.Host.mo_dst
          (Int64.float_of_bits
             (match opc with
             | 0 -> Int64.add x y
             | 1 -> Int64.sub x y
             | 2 -> Int64.mul x y
             | 3 -> Int64.logand x y
             | 4 -> Int64.logor x y
             | 5 -> Int64.logxor x y
             | 6 -> Int64.shift_left x (Int64.to_int y land 63)
             | 7 -> Int64.shift_right_logical x (Int64.to_int y land 63)
             | _ -> Int64.shift_right x (Int64.to_int y land 63)))
      else
        Array.unsafe_set scratch m.Host.mo_dst
          (Int64.float_of_bits
             (if
                match opc with
                | 9 -> Int64.compare x y < 0
                | 10 -> Int64.compare x y <= 0
                | 11 -> Int64.compare x y > 0
                | 12 -> Int64.compare x y >= 0
                | 13 -> Int64.unsigned_compare x y < 0
                | 14 -> Int64.unsigned_compare x y <= 0
                | 15 -> Int64.unsigned_compare x y > 0
                | _ -> Int64.unsigned_compare x y >= 0
              then 1L
              else 0L))
    end
    else if opc = 17 (* load *) then begin
      let a64 = Int64.bits_of_float (Array.unsafe_get scratch m.Host.mo_a) in
      if Int64.compare a64 0L < 0 then
        raise (Value.Type_trap "negative address");
      let addr = Int64.to_int a64 in
      let nbytes = m.Host.mo_n in
      (* Only little-endian hosts fuse memory ops, so the slab's word
         order is the wire order; [load_base] performs the same
         checks, translation and fault service as [Memory.load_le]
         but hands back an offset instead of a boxed word. *)
      let mem = host.Host.mem in
      let base = Memory.load_base mem addr nbytes in
      let bits =
        if base >= 0 then
          match nbytes with
          | 8 -> Bytes.get_int64_le mem.Memory.slab base
          | 4 ->
            Int64.of_int
              (Bytes.get_uint16_le mem.Memory.slab base
              lor (Bytes.get_uint16_le mem.Memory.slab (base + 2) lsl 16))
          | 2 -> Int64.of_int (Bytes.get_uint16_le mem.Memory.slab base)
          | _ -> Int64.of_int (Bytes.get_uint8 mem.Memory.slab base)
        else Host.load_bits host addr nbytes
      in
      let s = m.Host.mo_k in
      Array.unsafe_set scratch m.Host.mo_dst
        (Int64.float_of_bits (Int64.shift_right (Int64.shift_left bits s) s))
    end
    else if opc = 18 (* store *) then begin
      let v = Int64.bits_of_float (Array.unsafe_get scratch m.Host.mo_a) in
      let a64 = Int64.bits_of_float (Array.unsafe_get scratch m.Host.mo_b) in
      if Int64.compare a64 0L < 0 then
        raise (Value.Type_trap "negative address");
      let addr = Int64.to_int a64 in
      let nbytes = m.Host.mo_n in
      let mem = host.Host.mem in
      let base = Memory.store_base mem addr nbytes in
      if base >= 0 then
        match nbytes with
        | 8 -> Bytes.set_int64_le mem.Memory.slab base v
        | 4 ->
          let x = Int64.to_int v in
          Bytes.set_uint16_le mem.Memory.slab base (x land 0xffff);
          Bytes.set_uint16_le mem.Memory.slab (base + 2)
            ((x lsr 16) land 0xffff)
        | 2 ->
          Bytes.set_uint16_le mem.Memory.slab base (Int64.to_int v land 0xffff)
        | _ -> Bytes.set_uint8 mem.Memory.slab base (Int64.to_int v land 0xff)
      else Host.store_bits host addr nbytes v
    end
    else if opc = 19 (* gep *) then begin
      let base = Int64.bits_of_float (Array.unsafe_get scratch m.Host.mo_a) in
      if Int64.compare base 0L < 0 then
        raise (Value.Type_trap "negative address");
      let withc = Int64.add base (Int64.of_int m.Host.mo_k) in
      let sum =
        if m.Host.mo_b >= 0 then
          Int64.add withc
            (Int64.mul
               (Int64.bits_of_float (Array.unsafe_get scratch m.Host.mo_b))
               (Int64.of_int m.Host.mo_n))
        else withc
      in
      (* Address arithmetic wraps at the native-int width, exactly as
         the interpreted walk's [int] accumulator did. *)
      Array.unsafe_set scratch m.Host.mo_dst
        (Int64.float_of_bits (Int64.of_int (Int64.to_int sum)))
    end
    else if opc = 20 (* move *) then
      Array.unsafe_set scratch m.Host.mo_dst
        (Array.unsafe_get scratch m.Host.mo_a)
    else begin
      (* canon (21) / zext-canon (22) *)
      let x = Int64.bits_of_float (Array.unsafe_get scratch m.Host.mo_a) in
      let x =
        if opc = 22 then
          Int64.shift_right_logical (Int64.shift_left x m.Host.mo_n)
            m.Host.mo_n
        else x
      in
      let s = if opc = 22 then m.Host.mo_k else m.Host.mo_n in
      Array.unsafe_set scratch m.Host.mo_dst
        (Int64.float_of_bits (Int64.shift_right (Int64.shift_left x s) s))
    end
  done;
  let post = ch.Host.ch_post in
  let npost = Array.length post in
  let q = ref 0 in
  while !q < npost do
    let r = Array.unsafe_get post !q in
    let s = Array.unsafe_get post (!q + 1) in
    let bits = Int64.bits_of_float (Array.unsafe_get scratch s) in
    Array.unsafe_set regs r
      (if Array.unsafe_get post (!q + 2) = 1 then
         if Int64.equal bits 0L then Value.vfalse else Value.vtrue
       else Value.VInt bits);
    q := !q + 3
  done

(* Terminator naming a block the compile pass could not resolve: jump
   by label so only the taken edge traps, as before. *)
and exec_slow_term frame (term : Ir.terminator) : Value.t =
  let fname = frame.func.Host.c_func.Ir.f_name in
  let jump label =
    match Hashtbl.find_opt frame.func.Host.c_index label with
    | Some i -> run_blocks frame i
    | None -> trap "%s: jump to unknown block %s" fname label
  in
  match term with
  | Ir.Br next -> jump next
  | Ir.Cbr (c, t, e) ->
    if Value.to_bool (eval_operand frame c) then jump t else jump e
  | Ir.Switch (v, cases, default) -> (
    let scrutinee = Value.to_int (eval_operand frame v) in
    match
      List.find_opt (fun (value, _) -> Int64.equal value scrutinee) cases
    with
    | Some (_, target) -> jump target
    | None -> jump default)
  | Ir.Ret _ | Ir.Unreachable ->
    (* Always compiled to their [cterm] forms. *)
    assert false

(* {1 Entry points} *)

let call host name argv =
  match Host.compiled host name with
  | Some compiled -> run_function host compiled argv
  | None -> trap "no function %s in module %s" name host.Host.modul.Ir.m_name

let run_main host = call host "main" []
