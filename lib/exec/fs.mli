(** Synthetic file system device.

    Input files live on the mobile device; when an offloaded task
    reads one (300.twolf's cells, 445.gobmk's play records,
    464.h264ref's frames), the reads become remote input operations
    with round-trip costs (paper §3.4, Figure 7). *)

type t

exception No_such_file of string
exception Bad_fd of int

val create : unit -> t
val add_file : t -> string -> Bytes.t -> unit

val open_file : t -> string -> int
(** Returns a file descriptor.  @raise No_such_file. *)

val size : t -> int -> int
val read : t -> int -> int -> Bytes.t
(** [read t fd len] returns up to [len] bytes and advances the
    position; empty at EOF. *)

val close : t -> int -> unit
val total_bytes_read : t -> int

type snapshot
(** Cursor state: per-handle position/open flag, descriptor counter,
    bytes-read counter.  File contents are immutable. *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Rewind every handle to the snapshot and drop descriptors opened
    since — offload recovery, so a replayed task re-reads its files
    from where they stood at offload start. *)
