(** Scripted console device.

    Interactive input (the chess example's scanf) comes from a
    pre-loaded script; output is captured for comparing local and
    offloaded runs byte for byte.  Interactive input is what makes a
    task machine specific — it must happen where the user is. *)

type input = In_int of int64 | In_float of float

type t

exception Input_exhausted

val create : ?script:input list -> unit -> t
val push_input : t -> input -> unit

val read_int : t -> int64
(** Next scripted value (floats truncate).  @raise Input_exhausted. *)

val read_float : t -> float

val write_string : t -> string -> unit
val contents : t -> string
val output_bytes : t -> int
val clear_output : t -> unit

type mark
(** A transaction point: everything written or read after the mark is
    provisional until committed (no-op) or rolled back. *)

val mark : t -> mark

val rollback_to : t -> mark -> int
(** Discard output written since the mark, restore the unconsumed
    input script and counters; returns the number of output bytes
    discarded.  Used by offload recovery so a locally replayed task
    re-reads the same inputs and each side effect is observed exactly
    once. *)

val committed_since : t -> mark -> int
(** Output bytes delivered after the mark — the side-effect ledger a
    migrating task ships with its checkpoint. *)

val resume_at : t -> mark -> int
(** Migration resume: keep the output already delivered, rewind the
    input script and op counters to the mark, and arm a suppression
    window over the committed tail — the resumed task's re-executed
    writes are verified against it and dropped, so the observable
    transcript shows each effect exactly once.  Returns the window
    size in bytes.  @raise Invalid_argument from a later
    {!write_string} if resumed output ever diverges from the committed
    ledger. *)

val suppressed_remaining : t -> int
(** Bytes of the suppression window not yet consumed (0 once the
    resumed task has caught up with its pre-migration self). *)
