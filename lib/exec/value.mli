(** Dynamic values of the interpreter.

    The IR is statically typed, so values carry no type tag beyond the
    int/float split: integers and pointers are int64 bit patterns
    (sub-word integers kept sign-extended), floats are OCaml floats. *)

type t =
  | VInt of int64
  | VFloat of float

exception Type_trap of string

val to_int : t -> int64
val to_float : t -> float
val to_bool : t -> bool
val of_bool : bool -> t

val vtrue : t
val vfalse : t
(** The shared values [of_bool] returns. *)

val to_addr : t -> int
(** Integer value as a non-negative address.  @raise Type_trap. *)

val zero : t
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
