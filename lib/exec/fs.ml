(* Synthetic file system device.

   Workloads such as 300.twolf (cell files), 445.gobmk (play records)
   and 464.h264ref (video frames) read input files during their hot
   regions; under offloading these reads become *remote input*
   operations with round-trip cost (Section 3.4, Figure 7).  Files
   live on the mobile device. *)

type file = {
  name : string;
  data : Bytes.t;
}

type handle = {
  h_file : file;
  mutable h_pos : int;
  mutable h_open : bool;
}

type t = {
  mutable files : file list;
  handles : (int, handle) Hashtbl.t;
  mutable next_fd : int;
  mutable bytes_read : int;
}

exception No_such_file of string
exception Bad_fd of int

let create () =
  { files = []; handles = Hashtbl.create 8; next_fd = 3; bytes_read = 0 }

let add_file t name data = t.files <- { name; data } :: t.files

let open_file t name =
  match List.find_opt (fun f -> String.equal f.name name) t.files with
  | None -> raise (No_such_file name)
  | Some file ->
    let fd = t.next_fd in
    t.next_fd <- fd + 1;
    Hashtbl.replace t.handles fd { h_file = file; h_pos = 0; h_open = true };
    fd

let handle t fd =
  match Hashtbl.find_opt t.handles fd with
  | Some h when h.h_open -> h
  | Some _ | None -> raise (Bad_fd fd)

let size t fd = Bytes.length (handle t fd).h_file.data

let read t fd len =
  let h = handle t fd in
  let available = Bytes.length h.h_file.data - h.h_pos in
  let n = min len (max available 0) in
  let chunk = Bytes.sub h.h_file.data h.h_pos n in
  h.h_pos <- h.h_pos + n;
  t.bytes_read <- t.bytes_read + n;
  chunk

let close t fd = (handle t fd).h_open <- false

let total_bytes_read t = t.bytes_read

(* Snapshots, for recovery: capture every handle's position and open
   flag plus the descriptor counter, so a rolled-back task re-reads
   its files from where they stood at offload start.  File *contents*
   are immutable, so only cursor state needs saving. *)

type snapshot = {
  s_handles : (int * int * bool) list;  (* fd, pos, open *)
  s_next_fd : int;
  s_bytes_read : int;
}

let snapshot t =
  {
    s_handles =
      Hashtbl.fold
        (fun fd h acc -> (fd, h.h_pos, h.h_open) :: acc)
        t.handles [];
    s_next_fd = t.next_fd;
    s_bytes_read = t.bytes_read;
  }

let restore t s =
  (* Drop descriptors opened after the snapshot... *)
  let keep = List.map (fun (fd, _, _) -> fd) s.s_handles in
  let stale =
    Hashtbl.fold
      (fun fd _ acc -> if List.mem fd keep then acc else fd :: acc)
      t.handles []
  in
  List.iter (Hashtbl.remove t.handles) stale;
  (* ...and rewind the survivors. *)
  List.iter
    (fun (fd, pos, opened) ->
      match Hashtbl.find_opt t.handles fd with
      | Some h ->
        h.h_pos <- pos;
        h.h_open <- opened
      | None -> ())
    s.s_handles;
  t.next_fd <- s.s_next_fd;
  t.bytes_read <- s.s_bytes_read
