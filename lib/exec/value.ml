(* Dynamic values of the interpreter.

   The IR is statically typed, so values carry no type; integers and
   pointers are int64 bit patterns (sub-word integers are kept
   sign-extended), floats are OCaml floats. *)

type t =
  | VInt of int64
  | VFloat of float

exception Type_trap of string

let to_int = function
  | VInt v -> v
  | VFloat _ -> raise (Type_trap "expected integer, got float")

let to_float = function
  | VFloat v -> v
  | VInt _ -> raise (Type_trap "expected float, got integer")

let to_bool v = not (Int64.equal (to_int v) 0L)

(* Shared so comparisons on the interpreter hot path allocate
   nothing; values are immutable, so sharing is unobservable. *)
let vtrue = VInt 1L
let vfalse = VInt 0L
let of_bool b = if b then vtrue else vfalse

let to_addr v =
  let a = to_int v in
  if Int64.compare a 0L < 0 then
    raise (Type_trap "negative address")
  else Int64.to_int a

let zero = VInt 0L

let pp ppf = function
  | VInt v -> Fmt.pf ppf "%Ld" v
  | VFloat v -> Fmt.pf ppf "%g" v

let equal a b =
  match a, b with
  | VInt x, VInt y -> Int64.equal x y
  | VFloat x, VFloat y -> Float.equal x y
  | VInt _, VFloat _ | VFloat _, VInt _ -> false
