(* Battery accounting: integrates the power model over the simulated
   timeline and keeps the (time, power) trace behind Figure 8. *)

type segment = {
  seg_start : float;          (* seconds *)
  seg_end : float;
  seg_state : Power_model.state;
  seg_mw : float;
}

type t = {
  model : Power_model.t;
  mutable segments : segment list;   (* reversed *)
  mutable energy_mj : float;         (* millijoules = mW * s *)
  sink : No_trace.Trace.sink;        (* one Power_state per segment *)
  row : No_trace.Trace.Row.t;        (* scratch for zero-alloc emission *)
}

let create ?(sink = No_trace.Trace.null) model =
  { model; segments = []; energy_mj = 0.0; sink;
    row = No_trace.Trace.Row.create () }

(* Record that the device was in [state] from [t0] to [t1].
   Zero-length segments are dropped and emit no event. *)
let spend t ~from_s ~to_s state =
  if to_s < from_s then invalid_arg "Battery.spend: negative duration";
  if to_s > from_s then begin
    let mw = Power_model.draw_mw t.model state in
    t.segments <-
      { seg_start = from_s; seg_end = to_s; seg_state = state; seg_mw = mw }
      :: t.segments;
    t.energy_mj <- t.energy_mj +. (mw *. (to_s -. from_s));
    if not (No_trace.Trace.is_null t.sink) then begin
      No_trace.Trace.Row.set_power_state t.row
        ~state:(Power_model.state_to_string state)
        ~mw ~duration_s:(to_s -. from_s);
      t.sink.No_trace.Trace.emit_row ~ts:from_s t.row
    end
  end

let energy_mj t = t.energy_mj

let segments t = List.rev t.segments

(* Resample the trace at a fixed period for plotting (Figure 8):
   returns (time, mW) pairs from 0 to the end of the last segment. *)
let resample t ~period_s =
  let segs = segments t in
  match List.rev segs with
  | [] -> []
  | last :: _ ->
    let horizon = last.seg_end in
    let n = int_of_float (ceil (horizon /. period_s)) in
    List.init (n + 1) (fun i ->
        let time = float_of_int i *. period_s in
        let mw =
          match
            List.find_opt
              (fun s -> s.seg_start <= time && time < s.seg_end)
              segs
          with
          | Some s -> s.seg_mw
          | None -> Power_model.draw_mw t.model Power_model.Idle
        in
        (time, mw))

(* Total time spent per state, for overhead analysis. *)
let time_by_state t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let prev =
        Option.value ~default:0.0 (Hashtbl.find_opt tbl s.seg_state)
      in
      Hashtbl.replace tbl s.seg_state (prev +. (s.seg_end -. s.seg_start)))
    t.segments;
  Hashtbl.fold (fun state time acc -> (state, time) :: acc) tbl []
