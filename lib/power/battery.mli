(** Battery accounting: integrates the power model over the simulated
    timeline and keeps the (time, power) trace behind Figure 8. *)

type segment = {
  seg_start : float;
  seg_end : float;
  seg_state : Power_model.state;
  seg_mw : float;
}

type t

val create : ?sink:No_trace.Trace.sink -> Power_model.t -> t
(** [sink] receives one {!No_trace.Trace.Power_state} event per
    recorded segment, stamped with the segment start. *)

val spend : t -> from_s:float -> to_s:float -> Power_model.state -> unit
(** Record that the device was in the given state over the interval.
    Zero-length intervals are dropped (and emit no event).
    @raise Invalid_argument on negative durations. *)

val energy_mj : t -> float
(** Total energy so far (mW·s = mJ). *)

val segments : t -> segment list
(** In chronological order. *)

val resample : t -> period_s:float -> (float * float) list
(** (time, mW) pairs at a fixed period, for plotting. *)

val time_by_state : t -> (Power_model.state * float) list
(** Total seconds per state, for overhead analysis. *)
