(* OpenMetrics / Prometheus text exposition of a run.

   Naming scheme (documented in DESIGN.md §12):

     offload_<noun>_total            event counters
     offload_<noun>_seconds_total    accumulated charged time
     offload_<noun>_bytes_total      accumulated bytes, with a
                                     direction="to-server|to-mobile"
                                     label where both directions exist
     offload_run_duration_seconds    wall clock (gauge)
     offload_latency_seconds{kind=}  per-event-kind summaries
                                     (quantile samples + _sum/_count)
     offload_window_*                per-interval samples, stamped
                                     with the window start timestamp

   Everything is emitted in a fixed order with fixed float formatting,
   so a deterministic run exposes deterministic text — the bench lane
   diffs the file across PRs. *)

module Trace = No_trace.Trace

let fm v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let quantiles = [ 0.5; 0.9; 0.95; 0.99 ]

let of_run ?series (m : Trace.Metrics.t) : string =
  let b = Buffer.create 4096 in
  let family name kind help =
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  let sample ?labels ?ts name v =
    Buffer.add_string b name;
    (match labels with
    | Some kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "%s=\"%s\"" k v))
        kvs;
      Buffer.add_char b '}'
    | None -> ());
    Buffer.add_char b ' ';
    Buffer.add_string b (fm v);
    (match ts with
    | Some ts ->
      Buffer.add_char b ' ';
      Buffer.add_string b (fm ts)
    | None -> ());
    Buffer.add_char b '\n'
  in
  let counter name help v =
    family name "counter" help;
    sample (name ^ "_total") v
  in
  let directional name help ~to_server ~to_mobile =
    family name "counter" help;
    sample ~labels:[ ("direction", "to-server") ] (name ^ "_total")
      (float_of_int to_server);
    sample ~labels:[ ("direction", "to-mobile") ] (name ^ "_total")
      (float_of_int to_mobile)
  in
  let c name help v = counter name help (float_of_int v) in
  c "offload_offloads" "Completed offload invocations" m.Trace.Metrics.offloads;
  c "offload_refusals" "Estimator refusals (task ran locally)"
    m.Trace.Metrics.refusals;
  c "offload_estimates" "Equation-1 decisions taken" m.Trace.Metrics.estimates;
  c "offload_page_faults" "Copy-on-demand page faults served"
    m.Trace.Metrics.fault_count;
  c "offload_prefetched_pages" "Pages shipped ahead of demand"
    m.Trace.Metrics.prefetched_pages;
  c "offload_prefetched_bytes" "Bytes shipped ahead of demand"
    m.Trace.Metrics.prefetched_bytes;
  c "offload_fnptr_translations" "Function-pointer translations"
    m.Trace.Metrics.fnptr_count;
  c "offload_remote_io_ops" "Remote I/O operations served"
    m.Trace.Metrics.remote_io_count;
  c "offload_faults_injected" "Injected faults that fired"
    m.Trace.Metrics.faults_injected;
  c "offload_rpc_timeouts" "Blocking exchanges that waited out a deadline"
    m.Trace.Metrics.rpc_timeouts;
  c "offload_retries" "Exchange re-attempts after backoff"
    m.Trace.Metrics.retries;
  c "offload_fallbacks" "Offloads abandoned to local replay"
    m.Trace.Metrics.fallbacks;
  c "offload_rollbacks" "Snapshot rollbacks" m.Trace.Metrics.rollbacks;
  c "offload_replays" "Local replays after rollback" m.Trace.Metrics.replays;
  c "offload_queued" "Offloads that waited in the admission queue"
    m.Trace.Metrics.queued;
  c "offload_admits" "Offloads granted a server worker slot"
    m.Trace.Metrics.admits;
  c "offload_rejects" "Offloads bounced by a full admission queue"
    m.Trace.Metrics.rejects;
  directional "offload_flushes" "Channel flushes per direction"
    ~to_server:m.Trace.Metrics.flushes_to_server
    ~to_mobile:m.Trace.Metrics.flushes_to_mobile;
  directional "offload_raw_bytes" "Payload bytes before compression"
    ~to_server:m.Trace.Metrics.raw_to_server
    ~to_mobile:m.Trace.Metrics.raw_to_mobile;
  directional "offload_wire_bytes" "Bytes that crossed the link"
    ~to_server:m.Trace.Metrics.wire_to_server
    ~to_mobile:m.Trace.Metrics.wire_to_mobile;
  counter "offload_transfer_seconds" "Link time charged"
    m.Trace.Metrics.transfer_s;
  counter "offload_codec_seconds" "Compression and decompression CPU"
    m.Trace.Metrics.codec_s;
  counter "offload_fault_service_seconds" "Copy-on-demand service time"
    m.Trace.Metrics.fault_s;
  counter "offload_fnptr_seconds" "Function-pointer translation time"
    m.Trace.Metrics.fnptr_s;
  counter "offload_remote_io_seconds" "Remote I/O service time"
    m.Trace.Metrics.remote_io_s;
  counter "offload_offload_span_seconds" "Time inside offload spans"
    m.Trace.Metrics.offload_span_s;
  counter "offload_retry_wait_seconds" "Deadline waits plus backoffs"
    m.Trace.Metrics.retry_wait_s;
  counter "offload_recovery_seconds" "Wall time lost to failed attempts"
    m.Trace.Metrics.recovery_s;
  counter "offload_replay_seconds" "Local re-execution after rollback"
    m.Trace.Metrics.replay_s;
  counter "offload_queue_wait_seconds" "Admission-queue waiting time"
    m.Trace.Metrics.queue_wait_s;
  counter "offload_energy_millijoules" "Battery energy drawn"
    m.Trace.Metrics.energy_mj;
  family "offload_run_duration_seconds" "gauge" "Wall clock of the run";
  sample "offload_run_duration_seconds" (Trace.Metrics.total_s m);
  family "offload_power_state_seconds" "counter"
    "Residency per power state";
  List.iter
    (fun (state, seconds) ->
      sample
        ~labels:[ ("state", state) ]
        "offload_power_state_seconds_total" seconds)
    (List.sort compare
       (Hashtbl.fold
          (fun state s acc -> (state, s) :: acc)
          m.Trace.Metrics.power_s []));
  (match series with
  | None -> ()
  | Some series ->
    (* Whole-run latency summaries: merged windowed histograms. *)
    family "offload_latency_seconds" "summary"
      "Per-event-kind latency distribution";
    List.iter
      (fun (kind, _) ->
        let h = Series.kind_hist series kind in
        if Hist.count h > 0 then begin
          List.iter
            (fun q ->
              sample
                ~labels:
                  [ ("kind", kind); ("quantile", Printf.sprintf "%g" q) ]
                "offload_latency_seconds" (Hist.quantile h q))
            quantiles;
          sample ~labels:[ ("kind", kind) ] "offload_latency_seconds_sum"
            (Hist.sum h);
          sample ~labels:[ ("kind", kind) ] "offload_latency_seconds_count"
            (float_of_int (Hist.count h))
        end)
      Series.latency_kinds;
    (* Exemplar-bearing histogram family: only emitted when the trace
       sampler attached exemplars, so an unsampled run's exposition is
       byte-identical to what it was before exemplars existed.  Fixed
       decade bounds; each bucket line carries the largest exemplar
       whose value falls in that bucket, in OpenMetrics exemplar
       syntax (`# {trace_id="..."} value`). *)
    let bounds = [ 1e-4; 1e-3; 1e-2; 1e-1; 1.0 ] in
    let exm_in lo hi exs =
      List.fold_left
        (fun best (id, v) ->
          if v > lo && v <= hi then
            match best with
            | Some (_, bv) when bv >= v -> best
            | _ -> Some (id, v)
          else best)
        None exs
    in
    let kinds_with_exemplars =
      List.filter_map
        (fun (kind, _) ->
          let h = Series.kind_hist series kind in
          match Hist.exemplars h with [] -> None | exs -> Some (kind, h, exs))
        Series.latency_kinds
    in
    if kinds_with_exemplars <> [] then begin
      family "offload_latency_seconds_hist" "histogram"
        "Per-event-kind latency histogram with sampled-trace exemplars";
      List.iter
        (fun (kind, h, exs) ->
          let bucket le_label cnt exm =
            Buffer.add_string b
              (Printf.sprintf
                 "offload_latency_seconds_hist_bucket{kind=\"%s\",le=\"%s\"} %d"
                 kind le_label cnt);
            (match exm with
            | Some (id, v) ->
              Buffer.add_string b
                (Printf.sprintf " # {trace_id=\"%s\"} %s" id (fm v))
            | None -> ());
            Buffer.add_char b '\n'
          in
          let prev = ref neg_infinity in
          List.iter
            (fun le ->
              bucket (fm le) (Hist.count_le h le) (exm_in !prev le exs);
              prev := le)
            bounds;
          bucket "+Inf" (Hist.count h) (exm_in !prev infinity exs);
          sample ~labels:[ ("kind", kind) ]
            "offload_latency_seconds_hist_count"
            (float_of_int (Hist.count h));
          sample ~labels:[ ("kind", kind) ] "offload_latency_seconds_hist_sum"
            (Hist.sum h))
        kinds_with_exemplars
    end;
    (* Per-interval samples, stamped with the window start. *)
    let windowed name help select =
      family name "gauge" help;
      List.iter
        (fun (w : Series.window) ->
          match select w with
          | None -> ()
          | Some v -> sample ~ts:w.Series.w_start_s name v)
        (Series.windows series)
    in
    let wm (w : Series.window) = w.Series.w_metrics in
    windowed "offload_window_offloads" "Offloads begun per interval"
      (fun w -> Some (float_of_int (wm w).Trace.Metrics.offloads));
    windowed "offload_window_page_faults" "Page faults per interval"
      (fun w -> Some (float_of_int (wm w).Trace.Metrics.fault_count));
    windowed "offload_window_wire_bytes" "Wire bytes per interval (both \
                                          directions)"
      (fun w ->
        Some
          (float_of_int
             ((wm w).Trace.Metrics.wire_to_server
             + (wm w).Trace.Metrics.wire_to_mobile)));
    windowed "offload_window_retries" "Retries per interval"
      (fun w -> Some (float_of_int (wm w).Trace.Metrics.retries));
    windowed "offload_window_rejects" "Admission rejects per interval"
      (fun w -> Some (float_of_int (wm w).Trace.Metrics.rejects));
    windowed "offload_window_admits" "Admissions per interval"
      (fun w -> Some (float_of_int (wm w).Trace.Metrics.admits));
    windowed "offload_window_queue_depth_peak"
      "Peak admission-queue depth per interval"
      (fun w -> Some (float_of_int w.Series.w_peak_queue_depth));
    windowed "offload_window_occupancy_peak"
      "Peak concurrent server occupancy per interval"
      (fun w -> Some (float_of_int w.Series.w_peak_occupancy));
    windowed "offload_window_bw_belief_bps"
      "Last sampled bandwidth belief per interval"
      (fun w ->
        if Float.is_nan w.Series.w_bw_bps then None
        else Some w.Series.w_bw_bps));
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let write path ?series m =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (of_run ?series m))

(* {1 Self-profile exposition}

   Takes the rows (not the profiler's global state) so fixed-row tests
   can lock the format byte-for-byte. *)

let of_selfprof ?(unwound = 0) (rows : No_selfprof.Selfprof.row list) : string
    =
  let b = Buffer.create 1024 in
  let family name kind help =
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  let per_zone name select =
    List.iter
      (fun (r : No_selfprof.Selfprof.row) ->
        Buffer.add_string b
          (Printf.sprintf "%s{zone=\"%s\"} %s\n" name r.r_zone
             (fm (select r))))
      rows
  in
  family "selfprof_zone_calls" "counter"
    "Simulator self-profile: zone entries";
  per_zone "selfprof_zone_calls_total" (fun r -> float_of_int r.r_calls);
  family "selfprof_zone_self_seconds" "counter"
    "Simulator self-profile: CPU self-time per zone";
  per_zone "selfprof_zone_self_seconds_total" (fun r -> r.r_self_s);
  family "selfprof_zone_self_words" "counter"
    "Simulator self-profile: minor-heap words allocated per zone";
  per_zone "selfprof_zone_self_words_total" (fun r -> r.r_self_words);
  family "selfprof_unwound_frames" "counter"
    "Zone frames discarded by exceptional unwinds";
  Buffer.add_string b
    (Printf.sprintf "selfprof_unwound_frames_total %s\n"
       (fm (float_of_int unwound)));
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let write_selfprof path ?unwound rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (of_selfprof ?unwound rows))
