(* Trace diffing: why is run B slower than run A?

   Both traces are folded into span trees (Span.of_events), the trees
   are aligned by node *path* (names joined root-to-leaf, ";"
   separated — the collapsed-stack identity, unique because Span
   merges same-named siblings), and the wall-clock delta is attributed
   to the aligned nodes: per path, the change in inclusive time, self
   time and merge count.  A node present in only one trace still
   aligns (against zero), so new failure subtrees — e.g. an
   "offload:<t> [failed]" node full of rpc-timeout/backoff children —
   show up as pure regressions.

   A second table attributes the same delta by event *kind* (flush,
   page-fault, rpc-timeout, ...), summing each kind's charged duration
   per trace — the cross-cutting view when a cost is smeared over many
   nodes.

   Everything is a pure function of the two event lists: diffing a
   trace against itself yields all-zero rows, and re-rendering is
   byte-identical (both locked by tests). *)

module Trace = No_trace.Trace

type row = {
  d_path : string;
  d_count_a : int;
  d_count_b : int;
  d_total_a_s : float;
  d_total_b_s : float;
  d_self_a_s : float;
  d_self_b_s : float;
}

type kind_row = {
  k_kind : string;
  k_count_a : int;
  k_count_b : int;
  k_time_a_s : float;
  k_time_b_s : float;
}

type report = {
  r_wall_a_s : float;
  r_wall_b_s : float;
  r_rows : row list;       (* descending |self delta|, ties by path *)
  r_kinds : kind_row list; (* descending |time delta|, ties by kind *)
}

let wall_delta_s r = r.r_wall_b_s -. r.r_wall_a_s

(* {1 Node alignment} *)

(* path -> (count, total, self), flattened preorder. *)
let flatten (root : Span.node) : (string, int * float * float) Hashtbl.t =
  let table = Hashtbl.create 64 in
  let rec go prefix (n : Span.node) =
    let path = if prefix = "" then n.Span.name else prefix ^ ";" ^ n.Span.name in
    (* Paths are unique (Span merges same-named siblings), so replace
       never loses a node. *)
    Hashtbl.replace table path (n.Span.count, n.Span.total_s, n.Span.self_s);
    List.iter (go path) n.Span.children
  in
  go "" root;
  table

let align (a : Span.node) (b : Span.node) : row list =
  let ta = flatten a and tb = flatten b in
  let paths = Hashtbl.create 64 in
  Hashtbl.iter (fun p _ -> Hashtbl.replace paths p ()) ta;
  Hashtbl.iter (fun p _ -> Hashtbl.replace paths p ()) tb;
  let lookup t p =
    Option.value ~default:(0, 0.0, 0.0) (Hashtbl.find_opt t p)
  in
  Hashtbl.fold
    (fun path () acc ->
      let ca, ta_s, sa_s = lookup ta path in
      let cb, tb_s, sb_s = lookup tb path in
      { d_path = path; d_count_a = ca; d_count_b = cb;
        d_total_a_s = ta_s; d_total_b_s = tb_s;
        d_self_a_s = sa_s; d_self_b_s = sb_s }
      :: acc)
    paths []

(* {1 Kind attribution} *)

(* Coarse event kind and its charged duration; power segments are the
   timeline itself, not a cost, so they are left out. *)
let kind_of_event : Trace.event -> (string * float) option = function
  | Trace.Flush { direction; transfer_s; codec_s; _ } ->
    Some ("flush:" ^ Trace.direction_to_string direction,
          transfer_s +. codec_s)
  | Trace.Page_fault { service_s; _ } -> Some ("page-fault", service_s)
  | Trace.Prefetch _ -> Some ("prefetch", 0.0)
  | Trace.Fnptr_translate { cost_s } -> Some ("fnptr-translate", cost_s)
  | Trace.Remote_io { cost_s; _ } -> Some ("remote-io", cost_s)
  | Trace.Offload_begin _ -> None
  | Trace.Offload_end { span_s; _ } -> Some ("offload-span", span_s)
  | Trace.Refusal _ -> Some ("refusal", 0.0)
  | Trace.Power_state _ -> None
  | Trace.Estimate _ -> Some ("estimate", 0.0)
  | Trace.Module_load _ -> Some ("module-load", 0.0)
  | Trace.Fault_injected _ -> Some ("fault-injected", 0.0)
  | Trace.Rpc_timeout { waited_s; _ } -> Some ("rpc-timeout", waited_s)
  | Trace.Retry { backoff_s; _ } -> Some ("retry", backoff_s)
  | Trace.Fallback_local _ -> Some ("fallback-local", 0.0)
  | Trace.Rollback _ -> Some ("rollback", 0.0)
  | Trace.Replay { replay_s; _ } -> Some ("local-replay", replay_s)
  | Trace.Queue { wait_s; _ } -> Some ("queue-wait", wait_s)
  | Trace.Admit _ -> Some ("admit", 0.0)
  | Trace.Reject _ -> Some ("reject", 0.0)
  | Trace.Checkpoint _ -> Some ("checkpoint", 0.0)
  | Trace.Migrate_start { transfer_s; _ } ->
    Some ("migrate-transfer", transfer_s)
  | Trace.Migrate_done _ -> Some ("migrate-done", 0.0)
  | Trace.Bw_sample _ -> None

let kind_totals events : (string, int * float) Hashtbl.t =
  let table = Hashtbl.create 32 in
  List.iter
    (fun (_ts, ev) ->
      match kind_of_event ev with
      | None -> ()
      | Some (kind, dur) ->
        let count, time =
          Option.value ~default:(0, 0.0) (Hashtbl.find_opt table kind)
        in
        Hashtbl.replace table kind (count + 1, time +. dur))
    events;
  table

let align_kinds ea eb : kind_row list =
  let ta = kind_totals ea and tb = kind_totals eb in
  let kinds = Hashtbl.create 32 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace kinds k ()) ta;
  Hashtbl.iter (fun k _ -> Hashtbl.replace kinds k ()) tb;
  let lookup t k = Option.value ~default:(0, 0.0) (Hashtbl.find_opt t k) in
  Hashtbl.fold
    (fun kind () acc ->
      let ca, tma = lookup ta kind in
      let cb, tmb = lookup tb kind in
      { k_kind = kind; k_count_a = ca; k_count_b = cb;
        k_time_a_s = tma; k_time_b_s = tmb }
      :: acc)
    kinds []

(* {1 The report} *)

let by_magnitude delta name a b =
  match Float.compare (Float.abs (delta b)) (Float.abs (delta a)) with
  | 0 -> String.compare (name a) (name b)
  | c -> c

let compare_events ea eb : report =
  let ra = Span.of_events ea and rb = Span.of_events eb in
  let rows =
    List.sort
      (by_magnitude (fun r -> r.d_self_b_s -. r.d_self_a_s)
         (fun r -> r.d_path))
      (align ra rb)
  in
  let kinds =
    List.sort
      (by_magnitude (fun k -> k.k_time_b_s -. k.k_time_a_s)
         (fun k -> k.k_kind))
      (align_kinds ea eb)
  in
  { r_wall_a_s = ra.Span.total_s; r_wall_b_s = rb.Span.total_s;
    r_rows = rows; r_kinds = kinds }

let is_zero r =
  Float.equal r.r_wall_a_s r.r_wall_b_s
  && List.for_all
       (fun row ->
         row.d_count_a = row.d_count_b
         && Float.equal row.d_total_a_s row.d_total_b_s
         && Float.equal row.d_self_a_s row.d_self_b_s)
       r.r_rows
  && List.for_all
       (fun k ->
         k.k_count_a = k.k_count_b && Float.equal k.k_time_a_s k.k_time_b_s)
       r.r_kinds

let top ?(n = 10) r =
  let rec take n = function
    | hd :: tl when n > 0 -> hd :: take (n - 1) tl
    | _ -> []
  in
  take n r.r_rows

(* {1 Rendering} *)

let pct_of delta base =
  if base > 0.0 then Printf.sprintf " (%+.1f%%)" (100.0 *. delta /. base)
  else ""

let render ?(top_n = 10) r : string =
  let b = Buffer.create 1024 in
  let delta = wall_delta_s r in
  Buffer.add_string b
    (Printf.sprintf "wall clock: %.4f s -> %.4f s, delta %+.4f s%s\n"
       r.r_wall_a_s r.r_wall_b_s delta (pct_of delta r.r_wall_a_s));
  if is_zero r then
    Buffer.add_string b "no attributed delta: the traces cost the same\n"
  else begin
    Buffer.add_string b
      (Printf.sprintf "\ntop %d nodes by |self delta|:\n"
         (min top_n (List.length r.r_rows)));
    Buffer.add_string b
      (Printf.sprintf "  %-52s %11s %12s %12s\n" "path" "count A->B"
         "total d (s)" "self d (s)");
    List.iter
      (fun row ->
        Buffer.add_string b
          (Printf.sprintf "  %-52s %5d->%-5d %+12.4f %+12.4f\n"
             row.d_path row.d_count_a row.d_count_b
             (row.d_total_b_s -. row.d_total_a_s)
             (row.d_self_b_s -. row.d_self_a_s)))
      (top ~n:top_n r);
    Buffer.add_string b "\nevent kinds by |time delta|:\n";
    Buffer.add_string b
      (Printf.sprintf "  %-24s %11s %12s\n" "kind" "count A->B" "time d (s)");
    List.iter
      (fun k ->
        Buffer.add_string b
          (Printf.sprintf "  %-24s %5d->%-5d %+12.4f\n" k.k_kind k.k_count_a
             k.k_count_b
             (k.k_time_b_s -. k.k_time_a_s)))
      r.r_kinds
  end;
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jf = Printf.sprintf "%.9g"

let to_json ?(top_n = 10) r : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "{\n  \"wall_a_s\": %s,\n  \"wall_b_s\": %s,\n  \"delta_s\": %s,\n  \
        \"zero\": %b,\n  \"nodes\": ["
       (jf r.r_wall_a_s) (jf r.r_wall_b_s) (jf (wall_delta_s r)) (is_zero r));
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n    {\"path\": \"%s\", \"count_a\": %d, \"count_b\": %d, \
            \"total_a_s\": %s, \"total_b_s\": %s, \"self_a_s\": %s, \
            \"self_b_s\": %s, \"self_delta_s\": %s}"
           (json_escape row.d_path) row.d_count_a row.d_count_b
           (jf row.d_total_a_s) (jf row.d_total_b_s) (jf row.d_self_a_s)
           (jf row.d_self_b_s)
           (jf (row.d_self_b_s -. row.d_self_a_s))))
    (top ~n:top_n r);
  Buffer.add_string b "\n  ],\n  \"kinds\": [";
  List.iteri
    (fun i k ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n    {\"kind\": \"%s\", \"count_a\": %d, \"count_b\": %d, \
            \"time_a_s\": %s, \"time_b_s\": %s, \"time_delta_s\": %s}"
           (json_escape k.k_kind) k.k_count_a k.k_count_b (jf k.k_time_a_s)
           (jf k.k_time_b_s)
           (jf (k.k_time_b_s -. k.k_time_a_s))))
    r.r_kinds;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b
