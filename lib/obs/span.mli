(** Span trees: the flat runtime event stream folded into a causal
    tree — run → per-target offload attempts → child cost spans
    (flushes, page-fault services, remote I/O, fn-ptr translations,
    retry/backoff waits) — with total and self time per node.

    Attempts of the same target and outcome merge flamegraph-style
    (one node per distinct name, counts and durations summed); failed
    attempts appear as a separate ["offload:<t> [failed]"] node that
    also absorbs the local replay following the rollback, so a failure
    and everything it cost reads as one subtree.

    Invariants (locked by the property tests):
    - the root's [total_s] is the run's wall clock
      ({!No_trace.Trace.Metrics.total_s} when derived from a session);
    - for every node, [self_s +. sum of children total_s = total_s];
      [self_s] is the unattributed residue (mobile compute at the
      root, interpreter stalls inside an attempt). *)

type node = {
  name : string;
  count : int;           (** events / attempts merged into this node *)
  total_s : float;       (** inclusive time *)
  self_s : float;        (** total minus children *)
  children : node list;  (** descending total, ties broken by name *)
}

val of_events : ?sampled:bool -> (float * No_trace.Trace.event) list -> node
(** Fold a timestamp-ordered stream (as captured by a ring sink or
    reloaded from a raw trace file) into the tree rooted at ["run"].

    With [~sampled:true] (a tail-sampled trace, gaps where dropped
    tasks were) the root's total is the sum of its children and its
    self time is 0 — the wall-clock residue of a gap-containing
    stream is missing tasks, not mobile compute, and must not be
    attributed as such. *)

val iter : ?depth:int -> (depth:int -> node -> unit) -> node -> unit
(** Preorder walk, children in display order. *)
