(** Log-bucketed (HDR-style) histogram for latency and byte-size
    distributions.

    Buckets are geometrically spaced (8 per octave, ≈9% relative
    width) and each keeps a count and a sum, so {!quantile} reports
    the mean of the bucket the rank falls in — exact whenever the
    bucket holds a single distinct value, within the bucket width
    otherwise.  Histograms merge losslessly, enabling fleet-level
    percentiles over per-run histograms. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one sample.  NaN samples are ignored; values at or below
    1e-12 share the lowest bucket. *)

val count : t -> int
val sum : t -> float

val min : t -> float
(** Exact minimum; NaN when empty. *)

val max : t -> float
(** Exact maximum; NaN when empty. *)

val mean : t -> float
(** Exact mean; NaN when empty. *)

val quantile : t -> float -> float
(** [quantile t q] with [q] in [0,1]: nearest-rank (rank
    [ceil (q*n)], 1-based), reported as the containing bucket's mean.
    NaN when empty; raises [Invalid_argument] outside [0,1]. *)

val note_exemplar : t -> trace_id:string -> float -> unit
(** Attach a bounded reservoir exemplar: at most one per bucket (the
    largest value wins), at most 16 per histogram (lowest buckets shed
    first).  Out-of-band — exemplars never affect counts or quantiles,
    and {!add} never creates them, so the hot path stays
    allocation-free.  NaN values are ignored. *)

val exemplars : t -> (string * float) list
(** (trace id, value) pairs in ascending bucket order. *)

val count_le : t -> float -> int
(** Samples in buckets whose index is at most [le]'s — the cumulative
    count an OpenMetrics [le] bucket reports, exact to the ≈9% bucket
    width. *)

val merge_into : into:t -> t -> unit
(** Bucket-wise addition of the second histogram into [into];
    exemplars fold through the same reservoir policy. *)

val merge : t list -> t
(** Fresh histogram holding the bucket-wise sum of all inputs. *)
