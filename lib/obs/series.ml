(* Windowed time series over the runtime event stream.

   The aggregate views (Metrics, Span, Hist) answer "how much, in
   total"; a Series answers "when".  The virtual timeline is cut into
   fixed-width windows and every event is charged to the window its
   *start* timestamp falls in — the same stamping convention as the
   sinks — so a window holds:

     - a full Trace.Metrics aggregate of just that interval (counts,
       bytes, seconds, energy, power residencies);
     - one latency histogram per event kind (lossless HDR sketches, so
       merging all windows reproduces the whole-run distribution);
     - gauges: peak queue depth, peak slot occupancy and the bandwidth
       predictor's last sampled belief.

   Everything is driven by the simulated clock, never the host's, so
   a seeded rerun produces a byte-identical series.  Conservation —
   summing every window's metrics equals the end-of-run Metrics of the
   same stream — is a locked test invariant. *)

module Trace = No_trace.Trace

let default_window_s = 1.0

(* Per-event-kind latency selectors, shared by the windowed histograms,
   the SLO evaluator and the trace differ.  Names are the stable
   telemetry vocabulary (OpenMetrics label values, SLO grammar kinds). *)
let latency_kinds : (string * (Trace.event -> float option)) list =
  [
    ( "offload-span",
      function Trace.Offload_end { span_s; _ } -> Some span_s | _ -> None );
    ( "page-fault",
      function Trace.Page_fault { service_s; _ } -> Some service_s | _ -> None );
    ( "flush",
      function
      | Trace.Flush { transfer_s; codec_s; _ } -> Some (transfer_s +. codec_s)
      | _ -> None );
    ( "remote-io",
      function Trace.Remote_io { cost_s; _ } -> Some cost_s | _ -> None );
    ( "fnptr-translate",
      function Trace.Fnptr_translate { cost_s } -> Some cost_s | _ -> None );
    ( "rpc-timeout",
      function Trace.Rpc_timeout { waited_s; _ } -> Some waited_s | _ -> None );
    ( "retry-backoff",
      function Trace.Retry { backoff_s; _ } -> Some backoff_s | _ -> None );
    ( "replay",
      function Trace.Replay { replay_s; _ } -> Some replay_s | _ -> None );
    ( "queue-wait",
      function Trace.Queue { wait_s; _ } -> Some wait_s | _ -> None );
    ( "migrate-transfer",
      function
      | Trace.Migrate_start { transfer_s; _ } -> Some transfer_s
      | _ -> None );
  ]

type window = {
  w_index : int;
  w_start_s : float;
  w_metrics : Trace.Metrics.t;
  w_hists : (string * Hist.t) list;      (* latency_kinds order *)
  mutable w_peak_queue_depth : int;
  mutable w_peak_occupancy : int;
  mutable w_server_peaks : (int * int) list;
      (* per-server peak admit occupancy, ascending server id; servers
         with no admit in the window are absent *)
  mutable w_bw_bps : float;              (* last sampled belief; NaN = none *)
}

type t = {
  window_s : float;
  by_index : (int, window) Hashtbl.t;
  mutable max_index : int;               (* highest window touched; -1 = none *)
  mutable end_s : float;                 (* latest instant any event reaches *)
}

let create ?(window_s = default_window_s) () =
  if not (window_s > 0.0) then invalid_arg "Series.create: window_s";
  { window_s; by_index = Hashtbl.create 64; max_index = -1; end_s = 0.0 }

let window_s t = t.window_s
let duration_s t = t.end_s

let fresh_window t index =
  {
    w_index = index;
    w_start_s = float_of_int index *. t.window_s;
    w_metrics = Trace.Metrics.create ();
    w_hists = List.map (fun (name, _) -> (name, Hist.create ())) latency_kinds;
    w_peak_queue_depth = 0;
    w_peak_occupancy = 0;
    w_server_peaks = [];
    w_bw_bps = Float.nan;
  }

let window_at t index =
  match Hashtbl.find_opt t.by_index index with
  | Some w -> w
  | None ->
    let w = fresh_window t index in
    Hashtbl.replace t.by_index index w;
    if index > t.max_index then t.max_index <- index;
    w

(* The instant an event's span closes — mirrors Span.run_end_s, so a
   series over a session trace covers exactly the run's wall clock. *)
let close_of_event ts ev =
  match ev with
  | Trace.Power_state { duration_s; _ } -> ts +. duration_s
  | Trace.Flush { transfer_s; codec_s; _ } -> ts +. transfer_s +. codec_s
  | Trace.Page_fault { service_s; _ } -> ts +. service_s
  | Trace.Fnptr_translate { cost_s } -> ts +. cost_s
  | Trace.Remote_io { cost_s; _ } -> ts +. cost_s
  | Trace.Rpc_timeout { waited_s; _ } -> ts +. waited_s
  | Trace.Retry { backoff_s; _ } -> ts +. backoff_s
  | Trace.Replay { replay_s; _ } -> ts +. replay_s
  | Trace.Queue { wait_s; _ } -> ts +. wait_s
  | Trace.Migrate_start { transfer_s; _ } -> ts +. transfer_s
  | _ -> ts

let observe t ~ts ev =
  let index =
    if ts <= 0.0 then 0 else int_of_float (Float.floor (ts /. t.window_s))
  in
  let w = window_at t index in
  (Trace.Metrics.sink w.w_metrics).Trace.emit ~ts ev;
  List.iter2
    (fun (_, select) (_, hist) -> Option.iter (Hist.add hist) (select ev))
    latency_kinds w.w_hists;
  (match ev with
  | Trace.Queue { depth; _ } ->
    (* [depth] requests already waiting, plus this one. *)
    w.w_peak_queue_depth <- max w.w_peak_queue_depth (depth + 1)
  | Trace.Reject { queue_depth; _ } ->
    w.w_peak_queue_depth <- max w.w_peak_queue_depth queue_depth
  | Trace.Admit { server; occupancy; _ } ->
    w.w_peak_occupancy <- max w.w_peak_occupancy occupancy;
    let rec bump = function
      | [] -> [ (server, occupancy) ]
      | (s, peak) :: rest when s = server -> (s, max peak occupancy) :: rest
      | (s, _) as hd :: rest when s < server -> hd :: bump rest
      | rest -> (server, occupancy) :: rest
    in
    w.w_server_peaks <- bump w.w_server_peaks
  | Trace.Bw_sample { bps } -> w.w_bw_bps <- bps
  | _ -> ());
  let close = close_of_event ts ev in
  if close > t.end_s then t.end_s <- close

let sink t = { Trace.emit = (fun ~ts ev -> observe t ~ts ev) }

let of_events ?window_s events =
  let t = create ?window_s () in
  List.iter (fun (ts, ev) -> observe t ~ts ev) events;
  t

(* Dense, chronological: every window from 0 up to the later of the
   last touched window and the last covered instant, gaps filled with
   (cached) empty windows so rates read as zero rather than missing. *)
let windows t =
  let last_covered =
    if t.end_s <= 0.0 then 0
    else int_of_float (Float.ceil (t.end_s /. t.window_s)) - 1
  in
  let last = max 0 (max t.max_index last_covered) in
  List.init (last + 1) (fun i -> window_at t i)

let totals t =
  let m = Trace.Metrics.create () in
  List.iter
    (fun w -> Trace.Metrics.merge_into ~into:m w.w_metrics)
    (windows t);
  m

let kind_hist t name =
  Hist.merge
    (List.filter_map (fun w -> List.assoc_opt name w.w_hists) (windows t))
