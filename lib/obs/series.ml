(* Windowed time series over the runtime event stream.

   The aggregate views (Metrics, Span, Hist) answer "how much, in
   total"; a Series answers "when".  The virtual timeline is cut into
   fixed-width windows and every event is charged to the window its
   *start* timestamp falls in — the same stamping convention as the
   sinks — so a window holds:

     - a full Trace.Metrics aggregate of just that interval (counts,
       bytes, seconds, energy, power residencies);
     - one latency histogram per event kind (lossless HDR sketches, so
       merging all windows reproduces the whole-run distribution);
     - gauges: peak queue depth, peak slot occupancy and the bandwidth
       predictor's last sampled belief.

   Everything is driven by the simulated clock, never the host's, so
   a seeded rerun produces a byte-identical series.  Conservation —
   summing every window's metrics equals the end-of-run Metrics of the
   same stream — is a locked test invariant. *)

module Trace = No_trace.Trace

let default_window_s = 1.0

(* Per-event-kind latency selectors, shared by the windowed histograms,
   the SLO evaluator and the trace differ.  Names are the stable
   telemetry vocabulary (OpenMetrics label values, SLO grammar kinds). *)
let latency_kinds : (string * (Trace.event -> float option)) list =
  [
    ( "offload-span",
      function Trace.Offload_end { span_s; _ } -> Some span_s | _ -> None );
    ( "page-fault",
      function Trace.Page_fault { service_s; _ } -> Some service_s | _ -> None );
    ( "flush",
      function
      | Trace.Flush { transfer_s; codec_s; _ } -> Some (transfer_s +. codec_s)
      | _ -> None );
    ( "remote-io",
      function Trace.Remote_io { cost_s; _ } -> Some cost_s | _ -> None );
    ( "fnptr-translate",
      function Trace.Fnptr_translate { cost_s } -> Some cost_s | _ -> None );
    ( "rpc-timeout",
      function Trace.Rpc_timeout { waited_s; _ } -> Some waited_s | _ -> None );
    ( "retry-backoff",
      function Trace.Retry { backoff_s; _ } -> Some backoff_s | _ -> None );
    ( "replay",
      function Trace.Replay { replay_s; _ } -> Some replay_s | _ -> None );
    ( "queue-wait",
      function Trace.Queue { wait_s; _ } -> Some wait_s | _ -> None );
    ( "migrate-transfer",
      function
      | Trace.Migrate_start { transfer_s; _ } -> Some transfer_s
      | _ -> None );
  ]

type window = {
  w_index : int;
  w_start_s : float;
  w_metrics : Trace.Metrics.t;
  w_hists : (string * Hist.t) list;      (* latency_kinds order *)
  mutable w_peak_queue_depth : int;
  mutable w_peak_occupancy : int;
  mutable w_server_peaks : (int * int) list;
      (* per-server peak admit occupancy, ascending server id; servers
         with no admit in the window are absent *)
  mutable w_bw_bps : float;              (* last sampled belief; NaN = none *)
}

(* A window plus its hot-path machinery: the batched metrics
   accumulator (float sums unboxed until [settle]) and the latency
   histograms as an array, indexed in [latency_kinds] order so the
   per-event charge is one array read instead of an assoc walk.  The
   array aliases the same [Hist.t] values as the public [w_hists]
   list. *)
type slot = {
  sw : window;
  s_acc : Trace.Metrics.acc;
  s_sink : Trace.sink;                   (* acc_sink of s_acc *)
  s_harr : Hist.t array;
}

type t = {
  window_s : float;
  by_index : (int, slot) Hashtbl.t;
  mutable max_index : int;               (* highest window touched; -1 = none *)
  mutable end_s : float;                 (* latest instant any event reaches *)
  srow : Trace.Row.t;                    (* scratch for the boxed door *)
  mutable last_index : int;              (* cached slot; -1 = none *)
  mutable last_slot : slot option;
}

let create ?(window_s = default_window_s) () =
  if not (window_s > 0.0) then invalid_arg "Series.create: window_s";
  {
    window_s;
    by_index = Hashtbl.create 64;
    max_index = -1;
    end_s = 0.0;
    srow = Trace.Row.create ();
    last_index = -1;
    last_slot = None;
  }

let window_s t = t.window_s
let duration_s t = t.end_s

let fresh_slot t index =
  let metrics = Trace.Metrics.create () in
  let acc = Trace.Metrics.acc metrics in
  let hists =
    List.map (fun (name, _) -> (name, Hist.create ())) latency_kinds
  in
  {
    sw =
      {
        w_index = index;
        w_start_s = float_of_int index *. t.window_s;
        w_metrics = metrics;
        w_hists = hists;
        w_peak_queue_depth = 0;
        w_peak_occupancy = 0;
        w_server_peaks = [];
        w_bw_bps = Float.nan;
      };
    s_acc = acc;
    s_sink = Trace.Metrics.acc_sink acc;
    s_harr = Array.of_list (List.map snd hists);
  }

let slot_at t index =
  if index = t.last_index then
    match t.last_slot with Some s -> s | None -> assert false
  else begin
    let s =
      match Hashtbl.find_opt t.by_index index with
      | Some s -> s
      | None ->
        let s = fresh_slot t index in
        Hashtbl.replace t.by_index index s;
        if index > t.max_index then t.max_index <- index;
        s
    in
    t.last_index <- index;
    t.last_slot <- Some s;
    s
  end

let window_at t index = (slot_at t index).sw

(* Fold every window's batched float sums into its metrics record —
   the read boundary.  Cheap and idempotent, so every accessor below
   just calls it. *)
let settle t =
  Hashtbl.iter (fun _ s -> Trace.Metrics.flush_acc s.s_acc) t.by_index

(* Row kind -> slot in [latency_kinds] order, -1 for kinds that carry
   no latency.  Must mirror the selector list above. *)
let lat_slot =
  let a = Array.make 24 (-1) in
  a.(Trace.Row.k_offload_end) <- 0;
  a.(Trace.Row.k_page_fault) <- 1;
  a.(Trace.Row.k_flush) <- 2;
  a.(Trace.Row.k_remote_io) <- 3;
  a.(Trace.Row.k_fnptr_translate) <- 4;
  a.(Trace.Row.k_rpc_timeout) <- 5;
  a.(Trace.Row.k_retry) <- 6;
  a.(Trace.Row.k_replay) <- 7;
  a.(Trace.Row.k_queue) <- 8;
  a.(Trace.Row.k_migrate_start) <- 9;
  a

(* The instant an event's span closes — mirrors Span.run_end_s, so a
   series over a session trace covers exactly the run's wall clock.
   Every spanning kind keeps its span in f.(0) (plus f.(1) for a
   flush's codec leg; a power segment's duration is f.(1)). *)
let close_of_row ts (r : Trace.Row.t) =
  let k = r.Trace.Row.kind in
  if k = Trace.Row.k_power_state then ts +. r.Trace.Row.f.(1)
  else if k = Trace.Row.k_flush then
    ts +. r.Trace.Row.f.(0) +. r.Trace.Row.f.(1)
  else if
    k = Trace.Row.k_page_fault
    || k = Trace.Row.k_fnptr_translate
    || k = Trace.Row.k_remote_io
    || k = Trace.Row.k_rpc_timeout
    || k = Trace.Row.k_retry
    || k = Trace.Row.k_replay
    || k = Trace.Row.k_queue
    || k = Trace.Row.k_migrate_start
  then ts +. r.Trace.Row.f.(0)
  else ts

(* The hot door: metrics flow into the window's batched accumulator,
   the (at most one) latency sample into the window's histogram, and
   the gauges read the row in place — nothing here boxes an event. *)
let observe_row t ~ts (r : Trace.Row.t) =
  let index =
    if ts <= 0.0 then 0 else int_of_float (Float.floor (ts /. t.window_s))
  in
  let s = slot_at t index in
  let w = s.sw in
  s.s_sink.Trace.emit_row ~ts r;
  let k = r.Trace.Row.kind in
  let li = lat_slot.(k) in
  if li >= 0 then begin
    let v =
      if k = Trace.Row.k_flush then r.Trace.Row.f.(0) +. r.Trace.Row.f.(1)
      else r.Trace.Row.f.(0)
    in
    Hist.add s.s_harr.(li) v
  end;
  (if k = Trace.Row.k_queue then
     (* i2 requests already waiting, plus this one. *)
     w.w_peak_queue_depth <- max w.w_peak_queue_depth (r.Trace.Row.i2 + 1)
   else if k = Trace.Row.k_reject then
     w.w_peak_queue_depth <- max w.w_peak_queue_depth r.Trace.Row.i2
   else if k = Trace.Row.k_admit then begin
     let server = r.Trace.Row.i1 and occupancy = r.Trace.Row.i2 in
     w.w_peak_occupancy <- max w.w_peak_occupancy occupancy;
     let rec bump = function
       | [] -> [ (server, occupancy) ]
       | (s, peak) :: rest when s = server -> (s, max peak occupancy) :: rest
       | (s, _) as hd :: rest when s < server -> hd :: bump rest
       | rest -> (server, occupancy) :: rest
     in
     w.w_server_peaks <- bump w.w_server_peaks
   end
   else if k = Trace.Row.k_bw_sample then w.w_bw_bps <- r.Trace.Row.f.(0));
  let close = close_of_row ts r in
  if close > t.end_s then t.end_s <- close

let observe t ~ts ev =
  Trace.Row.of_event t.srow ev;
  observe_row t ~ts t.srow

(* Exemplar attachment: route a kept trace's latency sample to the
   same per-kind window histogram [observe_row] charged it to, as an
   out-of-band annotation.  Kinds that carry no latency are ignored. *)
let add_exemplar t ~ts ~kind ~value ~trace_id =
  if kind >= 0 && kind < Array.length lat_slot then begin
    let li = lat_slot.(kind) in
    if li >= 0 then begin
      let index =
        if ts <= 0.0 then 0 else int_of_float (Float.floor (ts /. t.window_s))
      in
      let s = slot_at t index in
      Hist.note_exemplar s.s_harr.(li) ~trace_id value
    end
  end

let sink t =
  {
    Trace.emit = (fun ~ts ev -> observe t ~ts ev);
    Trace.emit_row = (fun ~ts r -> observe_row t ~ts r);
  }

let of_events ?window_s events =
  let t = create ?window_s () in
  List.iter (fun (ts, ev) -> observe t ~ts ev) events;
  t

(* Dense, chronological: every window from 0 up to the later of the
   last touched window and the last covered instant, gaps filled with
   (cached) empty windows so rates read as zero rather than missing. *)
let windows t =
  settle t;
  let last_covered =
    if t.end_s <= 0.0 then 0
    else int_of_float (Float.ceil (t.end_s /. t.window_s)) - 1
  in
  let last = max 0 (max t.max_index last_covered) in
  List.init (last + 1) (fun i -> window_at t i)

let totals t =
  let m = Trace.Metrics.create () in
  List.iter
    (fun w -> Trace.Metrics.merge_into ~into:m w.w_metrics)
    (windows t);
  m

let kind_hist t name =
  Hist.merge
    (List.filter_map (fun w -> List.assoc_opt name w.w_hists) (windows t))
