(** Estimator-accuracy audit: correlate each [Estimate] event with the
    outcome of that same decision — the following [Refusal], or the
    [Offload_begin]/[Offload_end] attempt (plus the forced local
    replay when it failed) — and report predicted vs. measured gain
    and a decision verdict.

    Measured gain is [local_s - measured cost], where [local_s] is the
    Tm belief the prediction was derived from and the measured cost is
    the attempt's wall span (plus replay on failure).  Refusals carry
    no counterfactual; they are judged against the same target's mean
    measured cost over this run's successful attempts when one exists,
    and are {!Unverified} otherwise. *)

type verdict =
  | True_positive    (** offloaded, and it measured faster *)
  | False_positive   (** offloaded, but it measured slower *)
  | True_negative    (** refused, and the proxy agrees it would not pay *)
  | False_negative   (** refused, but the proxy says it would have paid *)
  | Unverified       (** no measurement (or proxy) available *)

val verdict_to_string : verdict -> string
(** ["TP"], ["FP"], ["TN"], ["FN"], ["?"]. *)

type row = {
  a_ts : float;                      (** when the estimate was made *)
  a_target : string;
  a_decision : bool;
  a_predicted_gain_s : float;
  a_local_s : float;                 (** the Tm belief behind the estimate *)
  a_measured_cost_s : float option;  (** attempt span (+ replay), or proxy *)
  a_measured_gain_s : float option;  (** [local_s] minus measured cost *)
  a_proxied : bool;                  (** measured via the same-target proxy *)
  a_verdict : verdict;
}

type summary = {
  s_estimates : int;
  s_true_pos : int;
  s_false_pos : int;
  s_true_neg : int;
  s_false_neg : int;
  s_unverified : int;
  s_mean_abs_err_s : float;  (** over rows with a measured gain; NaN if none *)
  s_mean_rel_err : float;    (** abs error / |measured gain|; NaN if none *)
}

val of_events : (float * No_trace.Trace.event) list -> row list
(** One row per [Estimate] event, in stream order. *)

val summarize : row list -> summary
