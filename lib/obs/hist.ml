(* Log-bucketed (HDR-style) latency/size histogram.

   Values land in geometrically spaced buckets — [sub_buckets] per
   octave, so the relative bucket width is 2^(1/8) - 1 ≈ 9% — which
   keeps the structure tiny no matter how wide the dynamic range is
   (nanosecond fn-ptr translations and multi-second offload spans share
   one histogram type).  Each bucket keeps its own count *and* sum, so
   a quantile reports the mean of the bucket the rank falls in: exact
   whenever a bucket holds one distinct value (in particular for any
   point distribution), and within the 9% bucket width otherwise.

   Histograms merge losslessly (bucket-wise addition), which is what
   the fleet-percentile bench mode relies on: per-run histograms are
   merged across the whole workload registry and quantiled once.

   Buckets live in dense [int array] / [float array] pairs indexed by
   bucket number (grown by doubling), and the scalar state (sum, min,
   max) in a flat [float array]: [add] touches no boxed value, so the
   hot record path — every event's latency in the windowed series —
   allocates nothing after the arrays reach their working size.  The
   per-bucket sums accumulate in arrival order, exactly like the
   hashtable representation this replaces, so quantiles are
   bit-identical. *)

module Selfprof = No_selfprof.Selfprof

(* 8 sub-buckets per power of two. *)
let sub_buckets = 8.0

(* Values at or below this floor share bucket 0; simulated costs are
   well above it. *)
let v_min = 1e-12

(* Scalar-state slots in [st]. *)
let s_sum = 0
let s_min = 1
let s_max = 2

(* Dense-index ceiling: finite doubles reach bucket
   1 + 8*log2(max_float/1e-12) ≈ 8300, far below this; anything larger
   (ties to +inf via int_of_float) is clamped into the top bucket. *)
let max_index = 16_383

type t = {
  mutable count : int;
  st : float array;              (* sum / min / max, unboxed *)
  mutable counts : int array;    (* per-bucket counts, dense by index *)
  mutable sums : float array;    (* per-bucket sums, same indexing *)
  mutable hi : int;              (* 1 + highest occupied bucket; 0 = empty *)
  mutable exm : (int * string * float) list;
      (* exemplars: (bucket, trace id, value), ascending bucket, at
         most one per bucket (largest value wins), capped — attached
         out of band by the sampler, never by [add], so the hot record
         path stays allocation-free *)
}

let initial_buckets = 64

(* Exemplar ceiling per histogram; when exceeded, the lowest buckets
   are shed first — the tail is what an exemplar is for. *)
let exemplar_cap = 16

let create () =
  {
    count = 0;
    st = [| 0.0; infinity; neg_infinity |];
    counts = Array.make initial_buckets 0;
    sums = Array.make initial_buckets 0.0;
    hi = 0;
    exm = [];
  }

let index_of v =
  if v <= v_min then 0
  else
    let idx = 1 + int_of_float (floor (Float.log2 (v /. v_min) *. sub_buckets)) in
    if idx < 0 then 0 else if idx > max_index then max_index else idx

let grow t want =
  let cap = ref (Array.length t.counts) in
  while !cap <= want do
    cap := !cap * 2
  done;
  let counts = Array.make !cap 0 in
  let sums = Array.make !cap 0.0 in
  Array.blit t.counts 0 counts 0 t.hi;
  Array.blit t.sums 0 sums 0 t.hi;
  t.counts <- counts;
  t.sums <- sums

let add t v =
  Selfprof.enter Hist_record;
  (if not (Float.is_nan v) then begin
     t.count <- t.count + 1;
     t.st.(s_sum) <- t.st.(s_sum) +. v;
     if v < t.st.(s_min) then t.st.(s_min) <- v;
     if v > t.st.(s_max) then t.st.(s_max) <- v;
     let idx = index_of v in
     if idx >= Array.length t.counts then grow t idx;
     t.counts.(idx) <- t.counts.(idx) + 1;
     t.sums.(idx) <- t.sums.(idx) +. v;
     if idx >= t.hi then t.hi <- idx + 1
   end);
  Selfprof.leave Hist_record

let count t = t.count
let sum t = t.st.(s_sum)
let min t = if t.count = 0 then Float.nan else t.st.(s_min)
let max t = if t.count = 0 then Float.nan else t.st.(s_max)
let mean t = if t.count = 0 then Float.nan else t.st.(s_sum) /. float_of_int t.count

let note_exemplar t ~trace_id v =
  if not (Float.is_nan v) then begin
    let idx = index_of v in
    let rec place = function
      | [] -> [ (idx, trace_id, v) ]
      | ((i, _, ev) as e) :: rest ->
        if i = idx then (if v > ev then (idx, trace_id, v) else e) :: rest
        else if i > idx then (idx, trace_id, v) :: e :: rest
        else e :: place rest
    in
    let l = place t.exm in
    let n = List.length l in
    t.exm <-
      (if n > exemplar_cap then List.filteri (fun i _ -> i >= n - exemplar_cap) l
       else l)
  end

let exemplars t = List.map (fun (_, id, v) -> (id, v)) t.exm

let count_le t le =
  let top = index_of le in
  let n = ref 0 in
  for idx = 0 to Stdlib.min (t.hi - 1) top do
    n := !n + t.counts.(idx)
  done;
  !n

let merge_into ~into src =
  Selfprof.enter Hist_merge;
  into.count <- into.count + src.count;
  into.st.(s_sum) <- into.st.(s_sum) +. src.st.(s_sum);
  if src.st.(s_min) < into.st.(s_min) then into.st.(s_min) <- src.st.(s_min);
  if src.st.(s_max) > into.st.(s_max) then into.st.(s_max) <- src.st.(s_max);
  if src.hi > 0 then begin
    if src.hi - 1 >= Array.length into.counts then grow into (src.hi - 1);
    for idx = 0 to src.hi - 1 do
      let c = src.counts.(idx) in
      if c > 0 then begin
        into.counts.(idx) <- into.counts.(idx) + c;
        into.sums.(idx) <- into.sums.(idx) +. src.sums.(idx)
      end
    done;
    if src.hi > into.hi then into.hi <- src.hi
  end;
  List.iter (fun (_, id, v) -> note_exemplar into ~trace_id:id v) src.exm;
  Selfprof.leave Hist_merge

let merge hists =
  let t = create () in
  List.iter (fun h -> merge_into ~into:t h) hists;
  t

(* Nearest-rank quantile: rank ceil(q*n) (1-based), reported as the
   mean of the bucket containing that rank. *)
let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Hist.quantile: q outside [0,1]";
  if t.count = 0 then Float.nan
  else begin
    let rank =
      Stdlib.max 1 (int_of_float (ceil (q *. float_of_int t.count)))
    in
    let rec walk idx cum =
      if idx >= t.hi then t.st.(s_max) (* q = 1 rounding *)
      else
        let c = t.counts.(idx) in
        if c = 0 then walk (idx + 1) cum
        else
          let cum = cum + c in
          if rank <= cum then t.sums.(idx) /. float_of_int c
          else walk (idx + 1) cum
    in
    walk 0 0
  end
