(* Log-bucketed (HDR-style) latency/size histogram.

   Values land in geometrically spaced buckets — [sub_buckets] per
   octave, so the relative bucket width is 2^(1/8) - 1 ≈ 9% — which
   keeps the structure tiny no matter how wide the dynamic range is
   (nanosecond fn-ptr translations and multi-second offload spans share
   one histogram type).  Each bucket keeps its own count *and* sum, so
   a quantile reports the mean of the bucket the rank falls in: exact
   whenever a bucket holds one distinct value (in particular for any
   point distribution), and within the 9% bucket width otherwise.

   Histograms merge losslessly (bucket-wise addition), which is what
   the fleet-percentile bench mode relies on: per-run histograms are
   merged across the whole workload registry and quantiled once. *)

module Selfprof = No_selfprof.Selfprof

(* 8 sub-buckets per power of two. *)
let sub_buckets = 8.0

(* Values at or below this floor share bucket 0; simulated costs are
   well above it. *)
let v_min = 1e-12

type bucket = { mutable b_count : int; mutable b_sum : float }

type t = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  buckets : (int, bucket) Hashtbl.t;
}

let create () =
  { count = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity;
    buckets = Hashtbl.create 32 }

let index_of v =
  if v <= v_min then 0
  else 1 + int_of_float (floor (Float.log2 (v /. v_min) *. sub_buckets))

let add t v =
  Selfprof.enter Hist_record;
  (if not (Float.is_nan v) then begin
     t.count <- t.count + 1;
     t.sum <- t.sum +. v;
     if v < t.min_v then t.min_v <- v;
     if v > t.max_v then t.max_v <- v;
     let idx = index_of v in
     match Hashtbl.find_opt t.buckets idx with
     | Some b ->
       b.b_count <- b.b_count + 1;
       b.b_sum <- b.b_sum +. v
     | None -> Hashtbl.replace t.buckets idx { b_count = 1; b_sum = v }
   end);
  Selfprof.leave Hist_record

let count t = t.count
let sum t = t.sum
let min t = if t.count = 0 then Float.nan else t.min_v
let max t = if t.count = 0 then Float.nan else t.max_v
let mean t = if t.count = 0 then Float.nan else t.sum /. float_of_int t.count

let merge_into ~into src =
  Selfprof.enter Hist_merge;
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.min_v < into.min_v then into.min_v <- src.min_v;
  if src.max_v > into.max_v then into.max_v <- src.max_v;
  Hashtbl.iter
    (fun idx (b : bucket) ->
      match Hashtbl.find_opt into.buckets idx with
      | Some dst ->
        dst.b_count <- dst.b_count + b.b_count;
        dst.b_sum <- dst.b_sum +. b.b_sum
      | None ->
        Hashtbl.replace into.buckets idx
          { b_count = b.b_count; b_sum = b.b_sum })
    src.buckets;
  Selfprof.leave Hist_merge

let merge hists =
  let t = create () in
  List.iter (fun h -> merge_into ~into:t h) hists;
  t

(* Nearest-rank quantile: rank ceil(q*n) (1-based), reported as the
   mean of the bucket containing that rank. *)
let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Hist.quantile: q outside [0,1]";
  if t.count = 0 then Float.nan
  else begin
    let rank =
      Stdlib.max 1 (int_of_float (ceil (q *. float_of_int t.count)))
    in
    let sorted =
      List.sort compare
        (Hashtbl.fold (fun idx b acc -> (idx, b) :: acc) t.buckets [])
    in
    let rec walk cum = function
      | [] -> t.max_v (* q = 1 rounding; the last bucket was consumed *)
      | (_, b) :: rest ->
        let cum = cum + b.b_count in
        if rank <= cum then b.b_sum /. float_of_int b.b_count
        else walk cum rest
    in
    walk 0 sorted
  end
