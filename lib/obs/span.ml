(* Span trees: fold the flat runtime event stream into a causal tree.

   The runtime emits a flat, timestamped stream (Trace.event); the
   tree recovers the causal structure the paper's Figure 7 attributes
   time to:

     run                          total = wall clock of the run
     |- offload:<target>          one node per (target, outcome) pair,
     |  |- flush:to-server        attempts merged flamegraph-style
     |  |- page-fault
     |  |- remote-io:<name> ...
     |- offload:<target> [failed]
     |  |- rpc-timeout:<op>, backoff:<op>, rollback, local-replay ...
     `- (self time)               mobile compute outside offloads

   Every node carries total time (inclusive), self time (total minus
   children) and a merge count.  Self time is the "unattributed"
   residue — time inside the node no child event accounts for (mobile
   compute at the root, interpreter/NACK stalls inside an attempt) —
   so children + self always sums to the parent and the root always
   sums to the wall clock.

   Failure shapes from the fault-injection runtime nest under the
   failed attempt: the attempt node absorbs the Replay event that
   follows its Offload_end, so the lost attempt *and* the local
   re-execution it forced read as one subtree. *)

module Trace = No_trace.Trace

type node = {
  name : string;
  count : int;       (* events / attempts merged into this node *)
  total_s : float;   (* inclusive time *)
  self_s : float;    (* total minus children (the unattributed residue) *)
  children : node list;  (* descending total, ties broken by name *)
}

let rec iter ?(depth = 0) f node =
  f ~depth node;
  List.iter (fun child -> iter ~depth:(depth + 1) f child) node.children

(* {1 Stream scan} *)

(* A named cost charged inside some scope.  Zero-duration items
   (prefetch, rollback, fault markers) still appear in the tree as
   annotated leaves; they just carry no weight. *)
type item = { i_name : string; i_dur : float }

type attempt = {
  at_name : string;                 (* "offload:<target>" *)
  at_target : string;
  mutable at_failed : bool;
  mutable at_total : float;
  mutable at_items : item list;     (* reversed *)
}

(* Named cost/marker of one event inside its enclosing scope; None for
   events the tree handles structurally (offload life cycle, replay)
   or intentionally leaves out (decisions, power segments — they are
   their own tracks, not cost spans). *)
let item_of_event : Trace.event -> item option = function
  | Trace.Flush { direction; transfer_s; codec_s; _ } ->
    Some { i_name = "flush:" ^ Trace.direction_to_string direction;
           i_dur = transfer_s +. codec_s }
  | Trace.Page_fault { service_s; _ } ->
    Some { i_name = "page-fault"; i_dur = service_s }
  | Trace.Prefetch _ -> Some { i_name = "prefetch"; i_dur = 0.0 }
  | Trace.Fnptr_translate { cost_s } ->
    Some { i_name = "fnptr-translate"; i_dur = cost_s }
  | Trace.Remote_io { io_name; cost_s; _ } ->
    Some { i_name = "remote-io:" ^ io_name; i_dur = cost_s }
  | Trace.Module_load { role; _ } ->
    Some { i_name = "module-load:" ^ role; i_dur = 0.0 }
  | Trace.Fault_injected { kind; _ } ->
    Some { i_name = "fault:" ^ kind; i_dur = 0.0 }
  | Trace.Rpc_timeout { op; waited_s; _ } ->
    Some { i_name = "rpc-timeout:" ^ op; i_dur = waited_s }
  | Trace.Retry { op; backoff_s; _ } ->
    Some { i_name = "backoff:" ^ op; i_dur = backoff_s }
  | Trace.Rollback _ -> Some { i_name = "rollback"; i_dur = 0.0 }
  | Trace.Fallback_local _ -> Some { i_name = "fallback-local"; i_dur = 0.0 }
  | Trace.Queue { wait_s; _ } ->
    Some { i_name = "queue-wait"; i_dur = wait_s }
  | Trace.Admit _ -> Some { i_name = "admit"; i_dur = 0.0 }
  | Trace.Reject _ -> Some { i_name = "reject"; i_dur = 0.0 }
  | Trace.Checkpoint _ -> Some { i_name = "checkpoint"; i_dur = 0.0 }
  | Trace.Migrate_start { transfer_s; _ } ->
    Some { i_name = "migrate-transfer"; i_dur = transfer_s }
  | Trace.Migrate_done _ -> Some { i_name = "migrate-done"; i_dur = 0.0 }
  | Trace.Offload_begin _ | Trace.Offload_end _ | Trace.Replay _
  | Trace.Refusal _ | Trace.Estimate _ | Trace.Power_state _
  | Trace.Bw_sample _ -> None

(* The run's wall clock: the latest instant any event reaches.  Power
   segments partition the timeline, so on a session trace this equals
   Trace.Metrics.total_s (the span-tree invariant tests lock this). *)
let run_end_s events =
  List.fold_left
    (fun acc (ts, ev) ->
      let close =
        match ev with
        | Trace.Power_state { duration_s; _ } -> ts +. duration_s
        | Trace.Flush { transfer_s; codec_s; _ } -> ts +. transfer_s +. codec_s
        | Trace.Page_fault { service_s; _ } -> ts +. service_s
        | Trace.Fnptr_translate { cost_s } -> ts +. cost_s
        | Trace.Remote_io { cost_s; _ } -> ts +. cost_s
        | Trace.Rpc_timeout { waited_s; _ } -> ts +. waited_s
        | Trace.Retry { backoff_s; _ } -> ts +. backoff_s
        | Trace.Replay { replay_s; _ } -> ts +. replay_s
        | Trace.Queue { wait_s; _ } -> ts +. wait_s
        | _ -> ts
      in
      Float.max acc close)
    0.0 events

(* {1 Merging} *)

(* Merge a chronological item list into leaf nodes, flamegraph-style:
   one node per distinct name, counts and durations summed. *)
let leaves_of_items (items : item list) : node list =
  let merged = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun it ->
      match Hashtbl.find_opt merged it.i_name with
      | Some (count, dur) ->
        Hashtbl.replace merged it.i_name (count + 1, dur +. it.i_dur)
      | None ->
        Hashtbl.replace merged it.i_name (1, it.i_dur);
        order := it.i_name :: !order)
    items;
  List.map
    (fun name ->
      let count, dur = Hashtbl.find merged name in
      { name; count; total_s = dur; self_s = dur; children = [] })
    (List.rev !order)

let sort_children nodes =
  List.sort
    (fun a b ->
      match compare b.total_s a.total_s with
      | 0 -> String.compare a.name b.name
      | c -> c)
    nodes

let children_total = List.fold_left (fun acc n -> acc +. n.total_s) 0.0

(* Merge attempts that share a (target, outcome) node name. *)
let node_of_attempts name (attempts : attempt list) : node =
  let total =
    List.fold_left (fun acc a -> acc +. a.at_total) 0.0 attempts
  in
  let items = List.concat_map (fun a -> List.rev a.at_items) attempts in
  let children = sort_children (leaves_of_items items) in
  { name; count = List.length attempts; total_s = total;
    self_s = total -. children_total children; children }

let of_events ?(sampled = false) (events : (float * Trace.event) list) : node =
  let root_items = ref [] in        (* reversed *)
  let closed = ref [] in            (* attempts, newest first *)
  let current = ref None in
  let add_item it =
    match !current with
    | Some a -> a.at_items <- it :: a.at_items
    | None -> root_items := it :: !root_items
  in
  List.iter
    (fun (_ts, ev) ->
      match ev with
      | Trace.Offload_begin { target } ->
        (* The runtime never nests offloads; a dangling open attempt
           (truncated capture) is closed over what it accumulated. *)
        (match !current with
        | Some a ->
          a.at_total <-
            List.fold_left (fun acc it -> acc +. it.i_dur) 0.0 a.at_items;
          closed := a :: !closed
        | None -> ());
        current :=
          Some
            { at_name = "offload:" ^ target; at_target = target;
              at_failed = false; at_total = 0.0; at_items = [] }
      | Trace.Offload_end { span_s; _ } -> (
        match !current with
        | Some a ->
          a.at_total <- span_s;
          closed := a :: !closed;
          current := None
        | None -> ())
      | Trace.Fallback_local _ ->
        (match !current with
        | Some a -> a.at_failed <- true
        | None -> ());
        Option.iter add_item (item_of_event ev)
      | Trace.Replay { target; replay_s } -> (
        (* The local replay directly follows the failed attempt's
           Offload_end; absorb it so the whole failure reads as one
           subtree.  A replay with no matching failed attempt (should
           not happen) charges the enclosing scope. *)
        match !closed with
        | a :: _ when a.at_failed && String.equal a.at_target target ->
          a.at_total <- a.at_total +. replay_s;
          a.at_items <-
            { i_name = "local-replay"; i_dur = replay_s } :: a.at_items
        | _ ->
          add_item { i_name = "local-replay:" ^ target; i_dur = replay_s })
      | ev -> Option.iter add_item (item_of_event ev))
    events;
  (match !current with
  | Some a ->
    a.at_total <-
      List.fold_left (fun acc it -> acc +. it.i_dur) 0.0 a.at_items;
    closed := a :: !closed
  | None -> ());
  (* Group attempts by (target, outcome) name. *)
  let groups = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun a ->
      let name = if a.at_failed then a.at_name ^ " [failed]" else a.at_name in
      match Hashtbl.find_opt groups name with
      | Some attempts -> Hashtbl.replace groups name (a :: attempts)
      | None ->
        Hashtbl.replace groups name [ a ];
        order := name :: !order)
    (List.rev !closed);
  let attempt_nodes =
    List.map
      (fun name -> node_of_attempts name (List.rev (Hashtbl.find groups name)))
      (List.rev !order)
  in
  let children =
    sort_children (attempt_nodes @ leaves_of_items (List.rev !root_items))
  in
  (* On a complete capture the root's self time is real mobile compute:
     wall clock minus everything attributed below.  A sampled trace is
     full of holes — whole dropped tasks — so that residue would be
     mostly missing tasks masquerading as compute; charge the root only
     what its surviving children account for and report no self time. *)
  if sampled then
    { name = "run"; count = 1; total_s = children_total children;
      self_s = 0.0; children }
  else
    let total = run_end_s events in
    { name = "run"; count = 1; total_s = total;
      self_s = total -. children_total children; children }
