(* Estimator-accuracy audit: Equation 1's predictions against what the
   run actually did.

   Every dynamic decision emits an Estimate event carrying the
   predicted gain (Tg) and the Tm belief it was derived from; the
   outcome of that same decision follows in the stream — a Refusal, or
   an Offload_begin/Offload_end pair (possibly with Fallback_local +
   Replay when the server was lost).  Correlating the two turns the
   paper's §3.1/§4 accuracy story into data:

   - decision = offload: the measured cost of the attempt is its wall
     span (plus the forced local replay when it failed); the measured
     gain is Tm_belief - measured_cost.  Positive → the offload paid
     off (true positive); negative → the estimator was wrong to
     offload (false positive) — e.g. the bandwidth collapsed after the
     estimate was made.

   - decision = refuse: the run carries no counterfactual, so the
     measured gain is proxied by the same target's mean measured
     offload cost across this run's successful attempts, when any
     exist (then: proxy gain positive → the refusal looks like a
     false negative, else a true negative); with no measurement to
     borrow the verdict is unverified.

   Absolute error is |predicted - measured| gain; relative error
   normalizes by |measured|. *)

module Trace = No_trace.Trace

type verdict =
  | True_positive    (* offloaded, and it measured faster *)
  | False_positive   (* offloaded, but it measured slower *)
  | True_negative    (* refused, and the proxy agrees it would not pay *)
  | False_negative   (* refused, but the proxy says it would have paid *)
  | Unverified       (* refused with no same-target measurement to borrow *)

let verdict_to_string = function
  | True_positive -> "TP"
  | False_positive -> "FP"
  | True_negative -> "TN"
  | False_negative -> "FN"
  | Unverified -> "?"

type row = {
  a_ts : float;                      (* when the estimate was made *)
  a_target : string;
  a_decision : bool;
  a_predicted_gain_s : float;
  a_local_s : float;                 (* the Tm belief behind the estimate *)
  a_measured_cost_s : float option;  (* attempt span (+ replay), or proxy *)
  a_measured_gain_s : float option;  (* local_s - measured cost *)
  a_proxied : bool;                  (* measured via same-target proxy *)
  a_verdict : verdict;
}

type summary = {
  s_estimates : int;
  s_true_pos : int;
  s_false_pos : int;
  s_true_neg : int;
  s_false_neg : int;
  s_unverified : int;
  s_mean_abs_err_s : float;          (* over rows with a measured gain *)
  s_mean_rel_err : float;            (* abs err / |measured gain| *)
}

(* One estimate waiting for (or matched with) its outcome. *)
type pending = {
  p_ts : float;
  p_target : string;
  p_gain : float;
  p_local : float;
  p_decision : bool;
  mutable p_cost : float option;     (* measured attempt cost *)
  mutable p_failed : bool;
  mutable p_refused : bool;
}

let of_events (events : (float * Trace.event) list) : row list =
  let rows = ref [] in               (* pending records, newest first *)
  let waiting : (string, pending list) Hashtbl.t = Hashtbl.create 8 in
  let push_waiting target p =
    let q = Option.value ~default:[] (Hashtbl.find_opt waiting target) in
    Hashtbl.replace waiting target (q @ [ p ])
  in
  let pop_waiting target =
    match Hashtbl.find_opt waiting target with
    | Some (p :: rest) ->
      Hashtbl.replace waiting target rest;
      Some p
    | Some [] | None -> None
  in
  (* The attempt currently open / last closed, for cost attribution. *)
  let current = ref None in
  let last_closed = ref None in
  List.iter
    (fun (ts, ev) ->
      match ev with
      | Trace.Estimate { target; predicted_gain_s; local_s; decision } ->
        let p =
          { p_ts = ts; p_target = target; p_gain = predicted_gain_s;
            p_local = local_s; p_decision = decision; p_cost = None;
            p_failed = false; p_refused = false }
        in
        rows := p :: !rows;
        push_waiting target p
      | Trace.Refusal { target } -> (
        (* Refusals without a pending estimate (server-dead path,
           forced modes) have no prediction to audit. *)
        match pop_waiting target with
        | Some p -> p.p_refused <- true
        | None -> ())
      | Trace.Offload_begin { target } ->
        current := pop_waiting target
      | Trace.Fallback_local _ ->
        (match !current with Some p -> p.p_failed <- true | None -> ())
      | Trace.Offload_end { span_s; _ } ->
        (match !current with
        | Some p -> p.p_cost <- Some span_s
        | None -> ());
        last_closed := !current;
        current := None
      | Trace.Replay { target; replay_s } -> (
        (* The forced local replay is part of what the failed decision
           cost. *)
        match !last_closed with
        | Some p when p.p_failed && String.equal p.p_target target ->
          p.p_cost <- Some (Option.value ~default:0.0 p.p_cost +. replay_s)
        | _ -> ())
      | _ -> ())
    events;
  let pendings = List.rev !rows in
  (* Mean measured cost of *successful* attempts per target: the proxy
     measurement refusals are judged against. *)
  let proxy : (string, float * int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun p ->
      match p.p_cost with
      | Some c when not p.p_failed ->
        let sum, n =
          Option.value ~default:(0.0, 0) (Hashtbl.find_opt proxy p.p_target)
        in
        Hashtbl.replace proxy p.p_target (sum +. c, n + 1)
      | _ -> ())
    pendings;
  let proxy_cost target =
    match Hashtbl.find_opt proxy target with
    | Some (sum, n) when n > 0 -> Some (sum /. float_of_int n)
    | _ -> None
  in
  List.map
    (fun p ->
      let cost, proxied =
        match p.p_cost with
        | Some c -> (Some c, false)
        | None -> (proxy_cost p.p_target, true)
      in
      let gain = Option.map (fun c -> p.p_local -. c) cost in
      let verdict =
        match (p.p_decision, gain) with
        | true, Some g -> if g > 0.0 then True_positive else False_positive
        | true, None ->
          (* Decision to offload but no attempt found: truncated
             stream; nothing measured. *)
          Unverified
        | false, Some g -> if g > 0.0 then False_negative else True_negative
        | false, None -> Unverified
      in
      {
        a_ts = p.p_ts;
        a_target = p.p_target;
        a_decision = p.p_decision;
        a_predicted_gain_s = p.p_gain;
        a_local_s = p.p_local;
        a_measured_cost_s = cost;
        a_measured_gain_s = gain;
        a_proxied = proxied;
        a_verdict = verdict;
      })
    pendings

let summarize (rows : row list) : summary =
  let count v = List.length (List.filter (fun r -> r.a_verdict = v) rows) in
  let measured =
    List.filter_map
      (fun r ->
        Option.map (fun g -> (r.a_predicted_gain_s, g)) r.a_measured_gain_s)
      rows
  in
  let abs_errs = List.map (fun (p, m) -> abs_float (p -. m)) measured in
  let rel_errs =
    List.map2
      (fun err (_, m) -> err /. Float.max (abs_float m) 1e-9)
      abs_errs measured
  in
  let mean = function
    | [] -> Float.nan
    | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
  in
  {
    s_estimates = List.length rows;
    s_true_pos = count True_positive;
    s_false_pos = count False_positive;
    s_true_neg = count True_negative;
    s_false_neg = count False_negative;
    s_unverified = count Unverified;
    s_mean_abs_err_s = mean abs_errs;
    s_mean_rel_err = mean rel_errs;
  }
