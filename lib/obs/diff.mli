(** Trace-to-trace regression attribution.

    Two traces (as [(ts, event) list], e.g. from {!Trace_file.load})
    are folded into span trees and aligned by node path — names joined
    root-to-leaf with [";"], the collapsed-stack identity.  The
    wall-clock delta is attributed per aligned node (inclusive, self
    and count changes; nodes present in only one trace align against
    zero) and, cross-cuttingly, per event kind (charged durations:
    transfer+codec for flushes, service time for faults, waited/backoff
    time for timeouts and retries, ...).

    Pure function of the inputs: a trace diffed against itself is
    {!is_zero}, and rendering is byte-identical across reruns. *)

type row = {
  d_path : string;      (** ";"-joined span path from the root *)
  d_count_a : int;
  d_count_b : int;
  d_total_a_s : float;  (** inclusive time in trace A *)
  d_total_b_s : float;
  d_self_a_s : float;   (** self time in trace A *)
  d_self_b_s : float;
}

type kind_row = {
  k_kind : string;
  k_count_a : int;
  k_count_b : int;
  k_time_a_s : float;   (** charged duration summed over trace A *)
  k_time_b_s : float;
}

type report = {
  r_wall_a_s : float;
  r_wall_b_s : float;
  r_rows : row list;       (** descending |self delta|, ties by path *)
  r_kinds : kind_row list; (** descending |time delta|, ties by kind *)
}

val compare_events :
  (float * No_trace.Trace.event) list ->
  (float * No_trace.Trace.event) list ->
  report
(** [compare_events a b] attributes [b]'s cost change relative to [a]. *)

val wall_delta_s : report -> float
(** [r_wall_b_s -. r_wall_a_s]. *)

val is_zero : report -> bool
(** No count or time differs anywhere (self-diff invariant). *)

val top : ?n:int -> report -> row list
(** First [n] (default 10) node rows. *)

val render : ?top_n:int -> report -> string
(** Human-readable tables: wall delta, top nodes, event kinds. *)

val to_json : ?top_n:int -> report -> string
(** Deterministic JSON document (nodes truncated to [top_n], kinds
    complete); consumed by scripts/bench_guard.py --explain. *)
