(* A small declarative SLO grammar evaluated over a windowed Series.

   A spec is a comma-separated list of objectives:

     avail>=0.99                   offload availability over the run:
                                   1 - (fallbacks + rejects) /
                                       (offload attempts + rejects)
     p99(page-fault)<=50ms         latency quantile of a Series
                                   latency kind (merged windows);
                                   units: s (default), ms, us
     rate(retries)<=0.5            event rate per simulated second
                                   over the whole run
     burn(0.99)<=14                multi-window error-budget burn rate
     burn(0.99,fast=6,slow=36)<=14 against availability target 0.99:
                                   fails only when BOTH the fast
                                   window (last 6 intervals) and the
                                   slow window (last 36) burn faster
                                   than the limit — the classic
                                   fast/slow alerting pair

   Kind and counter names are case/punctuation-insensitive
   ("PageFault" == "page-fault").  Evaluation is a pure function of
   the series, so seeded reruns produce byte-identical verdicts. *)

module Trace = No_trace.Trace

type objective =
  | Avail of { min : float }
  | Quantile of { q : float; kind : string; limit_s : float }
  | Rate of { counter : string; max_per_s : float }
  | Burn of { target : float; max_rate : float; fast : int; slow : int }

type verdict = {
  v_label : string;       (* the clause, normalized *)
  v_value : float;        (* what was measured *)
  v_pass : bool;
}

let grammar =
  "avail>=F | pQ(KIND)<=DUR | rate(COUNTER)<=F | \
   burn(TARGET[,fast=N,slow=M])<=F, comma-separated; DUR takes s/ms/us; \
   KIND: offload-span page-fault flush remote-io fnptr-translate \
   rpc-timeout retry-backoff replay queue-wait migrate-transfer; \
   COUNTER: offloads refusals page-faults retries timeouts fallbacks \
   rollbacks replays queued admits rejects faults-injected checkpoints \
   migrations migrations-done"

let default_spec = "avail>=0.99,p99(page-fault)<=50ms,burn(0.99)<=14"

(* The fleet bench saturates on purpose — 10^3 clients against 4x2
   slots is the policy-flip demonstration — so a serving availability
   target like 0.99 can never pass there and a perpetual FAIL guards
   nothing.  This spec is a *floor under deliberate saturation*:
   baseline availability is ~0.018-0.024 across policies, so 0.015
   passes at baseline and flips to FAIL if routing or admission
   regresses (and the page-fault tail bound still applies). *)
let fleet_default_spec = "avail>=0.015,p99(page-fault)<=50ms"

(* {1 Parsing} *)

(* Case/punctuation-insensitive key: letters and digits only. *)
let normalize s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' -> Buffer.add_char b c
      | 'A' .. 'Z' -> Buffer.add_char b (Char.lowercase_ascii c)
      | _ -> ())
    s;
  Buffer.contents b

let kind_of_string s =
  let key = normalize s in
  List.find_opt
    (fun (name, _) -> String.equal (normalize name) key)
    Series.latency_kinds
  |> Option.map fst

let counters : (string * (Trace.Metrics.t -> int)) list =
  [
    ("offloads", fun m -> m.Trace.Metrics.offloads);
    ("refusals", fun m -> m.Trace.Metrics.refusals);
    ("page-faults", fun m -> m.Trace.Metrics.fault_count);
    ("retries", fun m -> m.Trace.Metrics.retries);
    ("timeouts", fun m -> m.Trace.Metrics.rpc_timeouts);
    ("fallbacks", fun m -> m.Trace.Metrics.fallbacks);
    ("rollbacks", fun m -> m.Trace.Metrics.rollbacks);
    ("replays", fun m -> m.Trace.Metrics.replays);
    ("queued", fun m -> m.Trace.Metrics.queued);
    ("admits", fun m -> m.Trace.Metrics.admits);
    ("rejects", fun m -> m.Trace.Metrics.rejects);
    ("faults-injected", fun m -> m.Trace.Metrics.faults_injected);
    ("checkpoints", fun m -> m.Trace.Metrics.checkpoints);
    ("migrations", fun m -> m.Trace.Metrics.migrations);
    ("migrations-done", fun m -> m.Trace.Metrics.migrations_done);
  ]

let counter_of_string s =
  let key = normalize s in
  List.find_opt (fun (name, _) -> String.equal (normalize name) key) counters
  |> Option.map fst

let strip s = String.trim s

let float_of s =
  match float_of_string_opt (strip s) with
  | Some f when Float.is_finite f -> Ok f
  | _ -> Error (Printf.sprintf "bad number %S" (strip s))

(* "50ms" / "200us" / "1.5s" / bare seconds. *)
let duration_of s =
  let s = strip s in
  let split suffix =
    let n = String.length s and k = String.length suffix in
    if n > k && String.equal (String.sub s (n - k) k) suffix then
      Some (String.sub s 0 (n - k))
    else None
  in
  match split "ms" with
  | Some num -> Result.map (fun f -> f *. 1e-3) (float_of num)
  | None -> (
    match split "us" with
    | Some num -> Result.map (fun f -> f *. 1e-6) (float_of num)
    | None -> (
      match split "s" with
      | Some num -> float_of num
      | None -> float_of s))

(* Split "head(args)<=rhs" into (head, args, rhs). *)
let call_clause clause =
  match String.index_opt clause '(' with
  | None -> None
  | Some lp -> (
    match String.index_opt clause ')' with
    | Some rp when rp > lp -> (
      let head = String.sub clause 0 lp in
      let args = String.sub clause (lp + 1) (rp - lp - 1) in
      let rest = String.sub clause (rp + 1) (String.length clause - rp - 1) in
      match
        if String.length rest >= 2 && String.equal (String.sub rest 0 2) "<="
        then Some (String.sub rest 2 (String.length rest - 2))
        else None
      with
      | Some rhs -> Some (strip head, strip args, strip rhs)
      | None -> None)
    | _ -> None)

let ( let* ) = Result.bind

let parse_clause clause =
  let clause = strip clause in
  let err msg = Error (Printf.sprintf "%S: %s" clause msg) in
  match call_clause clause with
  | Some (head, args, rhs) ->
    if String.length head > 1 && head.[0] = 'p' then
      let* q =
        match
          float_of_string_opt (String.sub head 1 (String.length head - 1))
        with
        | Some q when q > 0.0 && q < 100.0 -> Ok (q /. 100.0)
        | _ -> err "quantile must be p<Q> with 0 < Q < 100"
      in
      let* kind =
        match kind_of_string args with
        | Some kind -> Ok kind
        | None -> err (Printf.sprintf "unknown latency kind %S" args)
      in
      let* limit_s =
        Result.map_error (fun m -> Printf.sprintf "%S: %s" clause m)
          (duration_of rhs)
      in
      Ok (Quantile { q; kind; limit_s })
    else if String.equal head "rate" then
      let* counter =
        match counter_of_string args with
        | Some c -> Ok c
        | None -> err (Printf.sprintf "unknown counter %S" args)
      in
      let* max_per_s =
        Result.map_error (fun m -> Printf.sprintf "%S: %s" clause m)
          (float_of rhs)
      in
      Ok (Rate { counter; max_per_s })
    else if String.equal head "burn" then (
      match List.map strip (String.split_on_char ',' args) with
      | target :: opts ->
        let* target =
          match float_of target with
          | Ok t when t > 0.0 && t < 1.0 -> Ok t
          | Ok _ -> err "burn target must be in (0,1)"
          | Error m -> err m
        in
        let* fast, slow =
          List.fold_left
            (fun acc opt ->
              let* fast, slow = acc in
              match String.split_on_char '=' opt with
              | [ "fast"; n ] -> (
                match int_of_string_opt n with
                | Some n when n > 0 -> Ok (n, slow)
                | _ -> err "fast= expects a positive integer")
              | [ "slow"; n ] -> (
                match int_of_string_opt n with
                | Some n when n > 0 -> Ok (fast, n)
                | _ -> err "slow= expects a positive integer")
              | _ -> err (Printf.sprintf "unknown burn option %S" opt))
            (Ok (6, 36)) opts
        in
        let* max_rate =
          Result.map_error (fun m -> Printf.sprintf "%S: %s" clause m)
            (float_of rhs)
        in
        Ok (Burn { target; max_rate; fast; slow })
      | [] -> err "burn needs a target, e.g. burn(0.99)<=14")
    else err "expected pQ(...), rate(...) or burn(...)"
  | None -> (
    (* avail>=F is the only non-call clause. *)
    match String.index_opt clause '>' with
    | Some i
      when i + 1 < String.length clause
           && clause.[i + 1] = '='
           && String.equal (normalize (String.sub clause 0 i)) "avail" ->
      let rhs = String.sub clause (i + 2) (String.length clause - i - 2) in
      let* min =
        Result.map_error (fun m -> Printf.sprintf "%S: %s" clause m)
          (float_of rhs)
      in
      Ok (Avail { min })
    | _ -> err "expected avail>=F, pQ(KIND)<=DUR, rate(..)<=F or burn(..)<=F")

let parse spec =
  let clauses =
    List.filter
      (fun c -> strip c <> "")
      (String.split_on_char ',' spec)
  in
  (* burn(0.99,fast=6,slow=36) contains commas: re-join split pieces
     whose parens are unbalanced. *)
  let rec rejoin acc = function
    | [] -> List.rev acc
    | piece :: rest ->
      let unbalanced s =
        let opens = String.fold_left (fun n c -> if c = '(' then n + 1 else n) 0 s in
        let closes = String.fold_left (fun n c -> if c = ')' then n + 1 else n) 0 s in
        opens > closes
      in
      if unbalanced piece then
        match rest with
        | next :: rest -> rejoin acc ((piece ^ "," ^ next) :: rest)
        | [] -> List.rev ((piece ^ " (unbalanced)") :: acc)
      else rejoin (piece :: acc) rest
  in
  let clauses = rejoin [] clauses in
  if clauses = [] then Error "empty SLO spec"
  else
    List.fold_left
      (fun acc clause ->
        let* objectives = acc in
        let* o = parse_clause clause in
        Ok (o :: objectives))
      (Ok []) clauses
    |> Result.map List.rev

(* {1 Evaluation} *)

(* Availability of the offload service in one metrics aggregate:
   attempts that reached a decision to use the server (begun offloads
   plus admission rejects), minus the ones that failed (local
   fallbacks) or never ran there (rejects). *)
let avail_of (m : Trace.Metrics.t) =
  let attempts = m.Trace.Metrics.offloads + m.Trace.Metrics.rejects in
  if attempts = 0 then 1.0
  else
    let failures = m.Trace.Metrics.fallbacks + m.Trace.Metrics.rejects in
    1.0 -. (float_of_int failures /. float_of_int attempts)

let label_of = function
  | Avail { min } -> Printf.sprintf "avail>=%g" min
  | Quantile { q; kind; limit_s } ->
    Printf.sprintf "p%g(%s)<=%gs" (100.0 *. q) kind limit_s
  | Rate { counter; max_per_s } ->
    Printf.sprintf "rate(%s)<=%g/s" counter max_per_s
  | Burn { target; max_rate; fast; slow } ->
    Printf.sprintf "burn(%g,fast=%d,slow=%d)<=%g" target fast slow max_rate

let counter_value name m =
  match List.assoc_opt name counters with Some f -> f m | None -> 0

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let last_n n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let evaluate_objective series totals o =
  let value, pass =
    match o with
    | Avail { min } ->
      let v = avail_of totals in
      (v, v >= min)
    | Quantile { q; kind; limit_s } ->
      let h = Series.kind_hist series kind in
      if Hist.count h = 0 then (0.0, true)
      else
        let v = Hist.quantile h q in
        (v, v <= limit_s)
    | Rate { counter; max_per_s } ->
      let count = (List.assoc counter counters) totals in
      let dur = Series.duration_s series in
      let v = if dur > 0.0 then float_of_int count /. dur else 0.0 in
      (v, v <= max_per_s)
    | Burn { target; max_rate; fast; slow } ->
      (* Per-window burn rate: the window's error ratio over the error
         budget (1 - target).  Alert — fail — only when both the fast
         and the slow trailing means exceed the limit. *)
      let burns =
        List.map
          (fun (w : Series.window) ->
            let m = w.Series.w_metrics in
            let attempts = m.Trace.Metrics.offloads + m.Trace.Metrics.rejects in
            if attempts = 0 then 0.0
            else
              let failures =
                m.Trace.Metrics.fallbacks + m.Trace.Metrics.rejects
              in
              float_of_int failures /. float_of_int attempts
              /. (1.0 -. target))
          (Series.windows series)
      in
      let fast_burn = mean (last_n fast burns) in
      let slow_burn = mean (last_n slow burns) in
      (Float.max fast_burn slow_burn,
       not (fast_burn > max_rate && slow_burn > max_rate))
  in
  { v_label = label_of o; v_value = value; v_pass = pass }

let evaluate objectives series =
  let totals = Series.totals series in
  List.map (evaluate_objective series totals) objectives

let pass verdicts = List.for_all (fun v -> v.v_pass) verdicts

let render verdicts =
  String.concat "; "
    (List.map
       (fun v ->
         Printf.sprintf "%s: %s (%.4g)" v.v_label
           (if v.v_pass then "pass" else "FAIL")
           v.v_value)
       verdicts)
