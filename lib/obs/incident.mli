(** SLO incident timeline: the {!Slo} grammar evaluated continuously
    over {!Series} windows.

    Where {!Slo.evaluate} gives one end-of-run verdict per clause,
    {!detect} re-evaluates each clause per window and folds maximal
    consecutive runs of violating windows into incidents — fired at
    the first violating window, resolved at the end of the last, or
    still firing if the violation reaches the end of the series.  Burn
    clauses apply their fast/slow trailing-window pair at every
    window; empty windows never violate (no attempts is no evidence).

    Each incident carries up to four exemplar trace ids harvested from
    the violating windows' latency histograms (attached there by the
    trace sampler), so a timeline entry links back to concrete kept
    traces.  Detection, ordering and both renderings are pure
    functions of the series: seeded reruns are byte-identical. *)

type incident = {
  i_label : string;  (** the violated clause ({!Slo.label_of} form) *)
  i_start_s : float;  (** start of the first violating window *)
  i_end_s : float option;
      (** end of the last violating window; [None] = still firing at
          the end of the series *)
  i_windows : int;  (** violating windows in the run *)
  i_peak : float;  (** worst measured value inside the incident *)
  i_exemplars : string list;
      (** at most 4 kept-trace ids, chronological first-seen order *)
}

val detect : Slo.objective list -> Series.t -> incident list
(** Chronological by firing instant; spec order breaks ties. *)

val render : incident list -> string
(** Deterministic text timeline; ["no incidents"] when empty. *)

val to_jsonl : incident list -> string
(** One JSON object per incident per line ([%.9g] floats;
    [end_s] is [null] while still firing). *)

val save : string -> incident list -> unit
(** Write {!to_jsonl} to a file. *)
