(* SLO incident timeline: the Slo grammar evaluated continuously.

   [Slo.evaluate] answers "did the run pass, in total"; an operator
   also needs "when did it degrade, and did it recover".  This engine
   re-evaluates each objective per Series window and folds maximal
   consecutive runs of violating windows into incidents: fired at the
   first violating window's start, resolved at the end of the last one
   — or still firing if the violation reaches the end of the series.

   The per-window violation tests deliberately reuse the Slo module's
   own definitions (avail_of, counter table, burn fast/slow trailing
   means), so an incident is exactly "this clause, scoped to a
   window".  Empty windows never violate — no attempts means no
   evidence, not an outage.

   Each incident carries up to four exemplar trace ids harvested from
   the violating windows' latency histograms (attached there by the
   trace sampler), linking the timeline entry back to concrete kept
   traces.  Everything — detection, ordering, both renderings — is a
   pure function of the series, so seeded reruns are byte-identical. *)

module Trace = No_trace.Trace

type incident = {
  i_label : string;            (* the violated clause, Slo.label_of form *)
  i_start_s : float;           (* start of the first violating window *)
  i_end_s : float option;      (* end of the last one; None = still firing *)
  i_windows : int;
  i_peak : float;              (* worst measured value inside the incident *)
  i_exemplars : string list;   (* <= 4 kept-trace ids, first seen first *)
}

let max_exemplars = 4

(* Which latency-kind histograms to harvest exemplars from: a
   quantile clause names its kind; availability/burn/rate incidents
   point at the offload spans that lived through the degradation. *)
let exemplar_kind = function
  | Slo.Quantile { kind; _ } -> kind
  | Slo.Avail _ | Slo.Rate _ | Slo.Burn _ -> "offload-span"

(* Per-window (violates, measured value) signal for one objective.
   Windows arrive dense and chronological; burn needs the trailing
   prefix, so the whole vector is computed in one left-to-right pass. *)
let signal objective (windows : Series.window list) window_s =
  match objective with
  | Slo.Avail { min } ->
    List.map
      (fun (w : Series.window) ->
        let m = w.Series.w_metrics in
        let attempts = m.Trace.Metrics.offloads + m.Trace.Metrics.rejects in
        let v = Slo.avail_of m in
        (attempts > 0 && v < min, v))
      windows
  | Slo.Quantile { q; kind; limit_s } ->
    List.map
      (fun (w : Series.window) ->
        match List.assoc_opt kind w.Series.w_hists with
        | Some h when Hist.count h > 0 ->
          let v = Hist.quantile h q in
          (v > limit_s, v)
        | _ -> (false, 0.0))
      windows
  | Slo.Rate { counter; max_per_s } ->
    List.map
      (fun (w : Series.window) ->
        let v =
          float_of_int (Slo.counter_value counter w.Series.w_metrics)
          /. window_s
        in
        (v > max_per_s, v))
      windows
  | Slo.Burn { target; max_rate; fast; slow } ->
    (* Trailing fast/slow means over the burn-rate vector, alerting
       only when both exceed the limit — the same pair Slo.evaluate
       applies once at end of run, here applied at every window. *)
    let burns =
      List.map
        (fun (w : Series.window) ->
          let m = w.Series.w_metrics in
          let attempts = m.Trace.Metrics.offloads + m.Trace.Metrics.rejects in
          if attempts = 0 then 0.0
          else
            let failures =
              m.Trace.Metrics.fallbacks + m.Trace.Metrics.rejects
            in
            float_of_int failures /. float_of_int attempts /. (1.0 -. target))
        windows
      |> Array.of_list
    in
    let trailing_mean upto n =
      let lo = Stdlib.max 0 (upto + 1 - n) in
      let sum = ref 0.0 in
      for i = lo to upto do
        sum := !sum +. burns.(i)
      done;
      !sum /. float_of_int (upto + 1 - lo)
    in
    List.mapi
      (fun i _ ->
        let f = trailing_mean i fast and s = trailing_mean i slow in
        (f > max_rate && s > max_rate, Float.max f s))
      windows

(* First [max_exemplars] distinct trace ids from the violating
   windows' [kind] histograms, chronological. *)
let harvest_exemplars kind (windows : Series.window list) flags =
  let ids = ref [] and n = ref 0 in
  List.iter2
    (fun (w : Series.window) violates ->
      if violates && !n < max_exemplars then
        match List.assoc_opt kind w.Series.w_hists with
        | None -> ()
        | Some h ->
          List.iter
            (fun (id, _) ->
              if !n < max_exemplars && not (List.mem id !ids) then begin
                ids := id :: !ids;
                incr n
              end)
            (Hist.exemplars h))
    windows flags;
  List.rev !ids

let detect objectives series =
  let windows = Series.windows series in
  let window_s = Series.window_s series in
  let total = List.length windows in
  let per_objective o =
    let label = Slo.label_of o in
    let sig_ = signal o windows window_s in
    let flags = List.map fst sig_ in
    let exemplars_of lo hi =
      let scoped = List.mapi (fun i f -> f && i >= lo && i <= hi) flags in
      harvest_exemplars (exemplar_kind o) windows scoped
    in
    (* Fold maximal violating runs.  [run] is (first index, count,
       peak) of the open run. *)
    let incidents = ref [] in
    let close (first, count, peak) last =
      let still_firing = last = total - 1 in
      incidents :=
        {
          i_label = label;
          i_start_s = float_of_int first *. window_s;
          i_end_s =
            (if still_firing then None
             else Some (float_of_int (last + 1) *. window_s));
          i_windows = count;
          i_peak = peak;
          i_exemplars = exemplars_of first last;
        }
        :: !incidents
    in
    let run = ref None in
    List.iteri
      (fun i (violates, value) ->
        match (!run, violates) with
        | None, false -> ()
        | None, true -> run := Some (i, 1, value)
        | Some (first, count, peak), true ->
          run := Some (first, count + 1, Float.max peak value)
        | Some state, false ->
          close state (i - 1);
          run := None)
      sig_;
    (match !run with Some state -> close state (total - 1) | None -> ());
    List.rev !incidents
  in
  (* Spec order per objective, then chronological overall; the stable
     sort keeps spec order among incidents firing at the same instant. *)
  List.concat_map per_objective objectives
  |> List.stable_sort (fun a b -> Float.compare a.i_start_s b.i_start_s)

let render incidents =
  match incidents with
  | [] -> "no incidents"
  | _ ->
    String.concat "\n"
      (List.map
         (fun i ->
           Printf.sprintf "incident %s: fired %.3fs %s (%d window%s, peak %.4g)%s"
             i.i_label i.i_start_s
             (match i.i_end_s with
             | Some e -> Printf.sprintf "resolved %.3fs" e
             | None -> "still-firing")
             i.i_windows
             (if i.i_windows = 1 then "" else "s")
             i.i_peak
             (match i.i_exemplars with
             | [] -> ""
             | ids -> " exemplars: " ^ String.concat "," ids))
         incidents)

(* One JSON object per incident, %.9g floats — same stability contract
   as the raw-trace files. *)
let to_jsonl incidents =
  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  let line i =
    Printf.sprintf
      "{\"label\":\"%s\",\"start_s\":%.9g,\"end_s\":%s,\"windows\":%d,\
       \"peak\":%.9g,\"exemplars\":[%s]}"
      (escape i.i_label) i.i_start_s
      (match i.i_end_s with
      | Some e -> Printf.sprintf "%.9g" e
      | None -> "null")
      i.i_windows i.i_peak
      (String.concat ","
         (List.map (fun id -> Printf.sprintf "\"%s\"" (escape id)) i.i_exemplars))
  in
  String.concat "" (List.map (fun i -> line i ^ "\n") incidents)

let save path incidents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl incidents))
