(* Raw-trace persistence: one JSON object per line.

   Line 1 is a header carrying the format name, a version number and
   the event count; every following line is one timestamped event with
   a "kind" tag and that variant's fields.  Floats print as %.17g so a
   save/load round trip is bit-exact, which is what lets `analyze`
   reproduce byte-identical reports from a recorded run.

   The loader is strict: an unknown version, an unknown kind, a
   missing field or a line count that disagrees with the header all
   produce a line-numbered [Error _], never an exception — a half
   written file from a crashed run must fail loudly, not parse as a
   shorter run. *)

module Trace = No_trace.Trace

(* Version 2: queue/admit/reject events gained a "server" field when
   the scheduler grew a multi-server pool.  Version-1 traces predate
   server ids and must be re-recorded — the loader refuses them rather
   than guessing server 0.

   Version 3: the migration subsystem added checkpoint /
   migrate-start / migrate-done kinds.  A version-2 trace is a valid
   version-3 trace that happens to contain none of them, so the
   loader still reads the old header; version 1 stays refused.

   Version 4: the header gained an optional "sampled":true flag,
   written by the tail-based sampler.  A sampled trace contains gaps —
   whole tasks are missing — so consumers that attribute time between
   events (the span tree's root self-time) must not treat it as a
   complete run.  Absent means false, so every version-2/3 trace is a
   valid version-4 trace; versions 2-3 stay readable. *)
let version = 4

let min_read_version = 2

(* {1 Writing} *)

let fl f = Printf.sprintf "%.17g" f

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let line_of_event ts (ev : Trace.event) : string =
  let tagged kind rest =
    Printf.sprintf "{\"ts\":%s,\"kind\":\"%s\"%s}" (fl ts) kind rest
  in
  match ev with
  | Trace.Flush { direction; raw_bytes; wire_bytes; transfer_s; codec_s } ->
    tagged "flush"
      (Printf.sprintf
         ",\"direction\":%s,\"raw_bytes\":%d,\"wire_bytes\":%d,\"transfer_s\":%s,\"codec_s\":%s"
         (quote (Trace.direction_to_string direction))
         raw_bytes wire_bytes (fl transfer_s) (fl codec_s))
  | Trace.Page_fault { page; service_s } ->
    tagged "page-fault"
      (Printf.sprintf ",\"page\":%d,\"service_s\":%s" page (fl service_s))
  | Trace.Prefetch { pages; bytes } ->
    tagged "prefetch" (Printf.sprintf ",\"pages\":%d,\"bytes\":%d" pages bytes)
  | Trace.Fnptr_translate { cost_s } ->
    tagged "fnptr-translate" (Printf.sprintf ",\"cost_s\":%s" (fl cost_s))
  | Trace.Remote_io { io_name; request_bytes; response_bytes; cost_s } ->
    tagged "remote-io"
      (Printf.sprintf
         ",\"io_name\":%s,\"request_bytes\":%d,\"response_bytes\":%d,\"cost_s\":%s"
         (quote io_name) request_bytes response_bytes (fl cost_s))
  | Trace.Offload_begin { target } ->
    tagged "offload-begin" (Printf.sprintf ",\"target\":%s" (quote target))
  | Trace.Offload_end { target; dirty_pages; span_s } ->
    tagged "offload-end"
      (Printf.sprintf ",\"target\":%s,\"dirty_pages\":%d,\"span_s\":%s"
         (quote target) dirty_pages (fl span_s))
  | Trace.Refusal { target } ->
    tagged "refusal" (Printf.sprintf ",\"target\":%s" (quote target))
  | Trace.Power_state { state; mw; duration_s } ->
    tagged "power-state"
      (Printf.sprintf ",\"state\":%s,\"mw\":%s,\"duration_s\":%s"
         (quote state) (fl mw) (fl duration_s))
  | Trace.Estimate { target; predicted_gain_s; local_s; decision } ->
    tagged "estimate"
      (Printf.sprintf
         ",\"target\":%s,\"predicted_gain_s\":%s,\"local_s\":%s,\"decision\":%b"
         (quote target) (fl predicted_gain_s) (fl local_s) decision)
  | Trace.Module_load { role; functions; globals } ->
    tagged "module-load"
      (Printf.sprintf ",\"role\":%s,\"functions\":%d,\"globals\":%d"
         (quote role) functions globals)
  | Trace.Fault_injected { kind; op } ->
    tagged "fault-injected"
      (Printf.sprintf ",\"fault\":%s,\"op\":%s" (quote kind) (quote op))
  | Trace.Rpc_timeout { op; attempt; waited_s } ->
    tagged "rpc-timeout"
      (Printf.sprintf ",\"op\":%s,\"attempt\":%d,\"waited_s\":%s" (quote op)
         attempt (fl waited_s))
  | Trace.Retry { op; attempt; backoff_s } ->
    tagged "retry"
      (Printf.sprintf ",\"op\":%s,\"attempt\":%d,\"backoff_s\":%s" (quote op)
         attempt (fl backoff_s))
  | Trace.Fallback_local { target; reason; recovery_s } ->
    tagged "fallback-local"
      (Printf.sprintf ",\"target\":%s,\"reason\":%s,\"recovery_s\":%s"
         (quote target) (quote reason) (fl recovery_s))
  | Trace.Rollback { target; pages_restored; bytes_discarded } ->
    tagged "rollback"
      (Printf.sprintf
         ",\"target\":%s,\"pages_restored\":%d,\"bytes_discarded\":%d"
         (quote target) pages_restored bytes_discarded)
  | Trace.Replay { target; replay_s } ->
    tagged "replay"
      (Printf.sprintf ",\"target\":%s,\"replay_s\":%s" (quote target)
         (fl replay_s))
  | Trace.Queue { target; server; wait_s; depth } ->
    tagged "queue"
      (Printf.sprintf ",\"target\":%s,\"server\":%d,\"wait_s\":%s,\"depth\":%d"
         (quote target) server (fl wait_s) depth)
  | Trace.Admit { target; server; occupancy; slot } ->
    tagged "admit"
      (Printf.sprintf ",\"target\":%s,\"server\":%d,\"occupancy\":%d,\"slot\":%d"
         (quote target) server occupancy slot)
  | Trace.Reject { target; server; queue_depth } ->
    tagged "reject"
      (Printf.sprintf ",\"target\":%s,\"server\":%d,\"queue_depth\":%d"
         (quote target) server queue_depth)
  | Trace.Bw_sample { bps } ->
    tagged "bw-sample" (Printf.sprintf ",\"bps\":%s" (fl bps))
  | Trace.Checkpoint { target; pages; image_bytes; io_cursor; ledger_bytes } ->
    tagged "checkpoint"
      (Printf.sprintf
         ",\"target\":%s,\"pages\":%d,\"image_bytes\":%d,\"io_cursor\":%d,\"ledger_bytes\":%d"
         (quote target) pages image_bytes io_cursor ledger_bytes)
  | Trace.Migrate_start { target; from_server; to_server; reason; transfer_s }
    ->
    tagged "migrate-start"
      (Printf.sprintf
         ",\"target\":%s,\"from_server\":%d,\"to_server\":%d,\"reason\":%s,\"transfer_s\":%s"
         (quote target) from_server to_server (quote reason) (fl transfer_s))
  | Trace.Migrate_done { target; server; resumed_span_s } ->
    tagged "migrate-done"
      (Printf.sprintf ",\"target\":%s,\"server\":%d,\"resumed_span_s\":%s"
         (quote target) server (fl resumed_span_s))

let to_string ?(sampled = false) (events : (float * Trace.event) list) :
    string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"format\":\"no-trace-raw\",\"version\":%d,\"events\":%d%s}\n" version
       (List.length events)
       (if sampled then ",\"sampled\":true" else ""));
  List.iter
    (fun (ts, ev) ->
      Buffer.add_string buf (line_of_event ts ev);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

(* A sampled file additionally tags every event line with the kept
   trace it belongs to ("trace":"c3-t7") — the id is what exemplars
   and the incident timeline reference, so `analyze` can link an
   aggregate back to a concrete kept task.  Old readers that ignore
   unknown fields still load the stream. *)
let to_string_traces (traces : (string * (float * Trace.event) list) list) :
    string =
  let tagged =
    List.concat_map
      (fun (id, evs) -> List.map (fun (ts, ev) -> (ts, ev, id)) evs)
      traces
  in
  let tagged =
    List.stable_sort (fun (a, _, _) (b, _, _) -> Float.compare a b) tagged
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"format\":\"no-trace-raw\",\"version\":%d,\"events\":%d,\
        \"sampled\":true}\n"
       version (List.length tagged));
  List.iter
    (fun (ts, ev, id) ->
      let line = line_of_event ts ev in
      Buffer.add_string buf (String.sub line 0 (String.length line - 1));
      Buffer.add_string buf ",\"trace\":";
      Buffer.add_string buf (quote id);
      Buffer.add_string buf "}\n")
    tagged;
  Buffer.contents buf

(* {1 Parsing} *)

exception Bad of string

type scalar = S of string | F of float | B of bool

(* Flat JSON object parser: {"key": scalar, ...} with string, number
   and boolean values — all the grammar the format uses. *)
let parse_object (s : string) : (string * scalar) list =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad msg) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t') do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some x when x = c -> incr pos
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      incr pos;
      if c = '"' then ()
      else if c = '\\' then (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        incr pos;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'u' -> (
          if !pos + 4 > n then fail "bad unicode escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
          | Some _ -> Buffer.add_char buf '?'
          | None -> fail "bad unicode escape")
        | _ -> fail "unknown escape");
        go ())
      else (
        Buffer.add_char buf c;
        go ())
    in
    go ();
    Buffer.contents buf
  in
  let parse_scalar () =
    skip_ws ();
    match peek () with
    | Some '"' -> S (parse_string ())
    | Some c when c = '-' || (c >= '0' && c <= '9') -> (
      let start = !pos in
      while
        !pos < n
        &&
        let c = s.[!pos] in
        c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
        || (c >= '0' && c <= '9')
        (* %.17g can print these on non-finite values *)
        || c = 'i' || c = 'n' || c = 'f' || c = 'a'
      do
        incr pos
      done;
      let lit = String.sub s start (!pos - start) in
      match float_of_string_opt lit with
      | Some f -> F f
      | None -> fail (Printf.sprintf "bad number %S" lit))
    | Some 't' when !pos + 4 <= n && String.sub s !pos 4 = "true" ->
      pos := !pos + 4;
      B true
    | Some 'f' when !pos + 5 <= n && String.sub s !pos 5 = "false" ->
      pos := !pos + 5;
      B false
    | _ -> fail "expected a string, number or boolean"
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  (match peek () with
  | Some '}' -> incr pos
  | _ ->
    let rec members () =
      skip_ws ();
      let key = parse_string () in
      expect ':';
      let v = parse_scalar () in
      fields := (key, v) :: !fields;
      skip_ws ();
      match peek () with
      | Some ',' ->
        incr pos;
        members ()
      | Some '}' -> incr pos
      | _ -> fail "expected ',' or '}'"
    in
    members ());
  skip_ws ();
  if !pos <> n then fail "trailing characters after object";
  List.rev !fields

let get fields key =
  match List.assoc_opt key fields with
  | Some v -> v
  | None -> raise (Bad (Printf.sprintf "missing field %S" key))

let str fields key =
  match get fields key with
  | S v -> v
  | _ -> raise (Bad (Printf.sprintf "field %S: expected a string" key))

let num fields key =
  match get fields key with
  | F v -> v
  | _ -> raise (Bad (Printf.sprintf "field %S: expected a number" key))

let int_ fields key = int_of_float (num fields key)

let bool_ fields key =
  match get fields key with
  | B v -> v
  | _ -> raise (Bad (Printf.sprintf "field %S: expected a boolean" key))

let direction_of_string = function
  | "to-server" -> Trace.To_server
  | "to-mobile" -> Trace.To_mobile
  | s -> raise (Bad (Printf.sprintf "unknown direction %S" s))

let event_of_fields fields : float * Trace.event =
  let ts = num fields "ts" in
  let ev =
    match str fields "kind" with
    | "flush" ->
      Trace.Flush
        { direction = direction_of_string (str fields "direction");
          raw_bytes = int_ fields "raw_bytes";
          wire_bytes = int_ fields "wire_bytes";
          transfer_s = num fields "transfer_s";
          codec_s = num fields "codec_s" }
    | "page-fault" ->
      Trace.Page_fault
        { page = int_ fields "page"; service_s = num fields "service_s" }
    | "prefetch" ->
      Trace.Prefetch { pages = int_ fields "pages"; bytes = int_ fields "bytes" }
    | "fnptr-translate" -> Trace.Fnptr_translate { cost_s = num fields "cost_s" }
    | "remote-io" ->
      Trace.Remote_io
        { io_name = str fields "io_name";
          request_bytes = int_ fields "request_bytes";
          response_bytes = int_ fields "response_bytes";
          cost_s = num fields "cost_s" }
    | "offload-begin" -> Trace.Offload_begin { target = str fields "target" }
    | "offload-end" ->
      Trace.Offload_end
        { target = str fields "target";
          dirty_pages = int_ fields "dirty_pages";
          span_s = num fields "span_s" }
    | "refusal" -> Trace.Refusal { target = str fields "target" }
    | "power-state" ->
      Trace.Power_state
        { state = str fields "state";
          mw = num fields "mw";
          duration_s = num fields "duration_s" }
    | "estimate" ->
      Trace.Estimate
        { target = str fields "target";
          predicted_gain_s = num fields "predicted_gain_s";
          local_s = num fields "local_s";
          decision = bool_ fields "decision" }
    | "module-load" ->
      Trace.Module_load
        { role = str fields "role";
          functions = int_ fields "functions";
          globals = int_ fields "globals" }
    | "fault-injected" ->
      Trace.Fault_injected { kind = str fields "fault"; op = str fields "op" }
    | "rpc-timeout" ->
      Trace.Rpc_timeout
        { op = str fields "op";
          attempt = int_ fields "attempt";
          waited_s = num fields "waited_s" }
    | "retry" ->
      Trace.Retry
        { op = str fields "op";
          attempt = int_ fields "attempt";
          backoff_s = num fields "backoff_s" }
    | "fallback-local" ->
      Trace.Fallback_local
        { target = str fields "target";
          reason = str fields "reason";
          recovery_s = num fields "recovery_s" }
    | "rollback" ->
      Trace.Rollback
        { target = str fields "target";
          pages_restored = int_ fields "pages_restored";
          bytes_discarded = int_ fields "bytes_discarded" }
    | "replay" ->
      Trace.Replay
        { target = str fields "target"; replay_s = num fields "replay_s" }
    | "queue" ->
      Trace.Queue
        { target = str fields "target";
          server = int_ fields "server";
          wait_s = num fields "wait_s";
          depth = int_ fields "depth" }
    | "admit" ->
      Trace.Admit
        { target = str fields "target";
          server = int_ fields "server";
          occupancy = int_ fields "occupancy";
          slot = int_ fields "slot" }
    | "reject" ->
      Trace.Reject
        { target = str fields "target";
          server = int_ fields "server";
          queue_depth = int_ fields "queue_depth" }
    | "bw-sample" -> Trace.Bw_sample { bps = num fields "bps" }
    | "checkpoint" ->
      Trace.Checkpoint
        { target = str fields "target";
          pages = int_ fields "pages";
          image_bytes = int_ fields "image_bytes";
          io_cursor = int_ fields "io_cursor";
          ledger_bytes = int_ fields "ledger_bytes" }
    | "migrate-start" ->
      Trace.Migrate_start
        { target = str fields "target";
          from_server = int_ fields "from_server";
          to_server = int_ fields "to_server";
          reason = str fields "reason";
          transfer_s = num fields "transfer_s" }
    | "migrate-done" ->
      Trace.Migrate_done
        { target = str fields "target";
          server = int_ fields "server";
          resumed_span_s = num fields "resumed_span_s" }
    | kind -> raise (Bad (Printf.sprintf "unknown event kind %S" kind))
  in
  (ts, ev)

let split_lines s =
  let raw = String.split_on_char '\n' s in
  let strip l =
    let len = String.length l in
    if len > 0 && l.[len - 1] = '\r' then String.sub l 0 (len - 1) else l
  in
  List.filter (fun l -> l <> "") (List.map strip raw)

let of_string_traces (s : string) :
    ((float * Trace.event * string option) list * bool, string) result =
  match split_lines s with
  | [] -> Error "empty file: expected a no-trace-raw header line"
  | header :: body -> (
    try
      let fields =
        try parse_object header
        with Bad msg ->
          raise
            (Bad
               (Printf.sprintf "line 1: not a no-trace-raw header (%s)" msg))
      in
      (try
         let fmt = str fields "format" in
         if fmt <> "no-trace-raw" then
           raise (Bad (Printf.sprintf "line 1: unknown format %S" fmt))
       with Bad msg -> raise (Bad (Printf.sprintf "line 1: %s" msg)));
      let got_version = int_ fields "version" in
      if got_version < min_read_version || got_version > version then
        raise
          (Bad
             (Printf.sprintf
                "unsupported trace version %d (this build reads versions \
                 %d-%d); re-record the trace"
                got_version min_read_version version));
      let declared = int_ fields "events" in
      (* Absent in version 2-3 headers, so those read as unsampled. *)
      let sampled =
        match List.assoc_opt "sampled" fields with
        | Some (B v) -> v
        | Some _ -> raise (Bad "line 1: field \"sampled\": expected a boolean")
        | None -> false
      in
      let events =
        List.mapi
          (fun i line ->
            try
              let fields = parse_object line in
              let ts, ev = event_of_fields fields in
              let id =
                match List.assoc_opt "trace" fields with
                | Some (S id) -> Some id
                | Some _ -> raise (Bad "field \"trace\": expected a string")
                | None -> None
              in
              (ts, ev, id)
            with Bad msg -> raise (Bad (Printf.sprintf "line %d: %s" (i + 2) msg)))
          body
      in
      let found = List.length events in
      if found <> declared then
        raise
          (Bad
             (Printf.sprintf
                "truncated trace: header declares %d events but the file \
                 holds %d"
                declared found));
      Ok (events, sampled)
    with Bad msg -> Error msg)

let of_string_ex (s : string) :
    ((float * Trace.event) list * bool, string) result =
  Result.map
    (fun (tagged, sampled) ->
      (List.map (fun (ts, ev, _) -> (ts, ev)) tagged, sampled))
    (of_string_traces s)

let of_string (s : string) : ((float * Trace.event) list, string) result =
  Result.map fst (of_string_ex s)

let save ?sampled (path : string) (events : (float * Trace.event) list) : unit
    =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?sampled events))

let save_traces (path : string)
    (traces : (string * (float * Trace.event) list) list) : unit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string_traces traces))

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> Ok contents
  | exception Sys_error msg -> Error msg

let load_ex (path : string) :
    ((float * Trace.event) list * bool, string) result =
  Result.bind (read_file path) of_string_ex

let load_traces (path : string) :
    ((float * Trace.event * string option) list * bool, string) result =
  Result.bind (read_file path) of_string_traces

let load (path : string) : ((float * Trace.event) list, string) result =
  Result.map fst (load_ex path)
