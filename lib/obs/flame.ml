(* Span-tree renderers: collapsed-stack flamegraph export and a
   deterministic plain-text tree.

   The collapsed format is the one Brendan Gregg's flamegraph.pl and
   speedscope ingest: one line per stack, frames joined by ';', the
   weight being the stack's *exclusive* time (frontends re-derive
   inclusive totals by summing children).  Weights are integer
   microseconds; stacks that round to zero are dropped. *)

let weight_us self_s = int_of_float (Float.round (self_s *. 1e6))

let to_collapsed (root : Span.node) : string =
  let buf = Buffer.create 1024 in
  let rec go path (n : Span.node) =
    let path = n.Span.name :: path in
    let w = weight_us n.Span.self_s in
    if w > 0 then
      Buffer.add_string buf
        (Printf.sprintf "%s %d\n" (String.concat ";" (List.rev path)) w);
    List.iter (go path) n.Span.children
  in
  go [] root;
  Buffer.contents buf

(* Deterministic plain-text rendering, for terminals and golden
   tests.  Leaves print one number (their total is their self time);
   interior nodes print total and self. *)
let to_text (root : Span.node) : string =
  let buf = Buffer.create 1024 in
  let line prefix connector (n : Span.node) =
    let label =
      if n.Span.count > 1 then
        Printf.sprintf "%s x%d" n.Span.name n.Span.count
      else n.Span.name
    in
    let times =
      if n.Span.children = [] then Printf.sprintf "%.6fs" n.Span.total_s
      else
        Printf.sprintf "total %.6fs  self %.6fs" n.Span.total_s n.Span.self_s
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%s%s  %s\n" prefix connector label times)
  in
  let rec go prefix (n : Span.node) =
    let rec children = function
      | [] -> ()
      | [ last ] ->
        line prefix "`- " last;
        go (prefix ^ "   ") last
      | child :: rest ->
        line prefix "|- " child;
        go (prefix ^ "|  ") child;
        children rest
    in
    children n.Span.children
  in
  line "" "" root;
  go "" root;
  Buffer.contents buf
