(** OpenMetrics / Prometheus text exposition of a run's metrics and
    (optionally) a windowed series.

    Metric families follow a fixed naming scheme (`offload_*_total`
    counters, `offload_*_seconds_total` time counters, labelled
    direction/state/kind families, `offload_window_*` per-interval
    samples stamped with window-start timestamps); see DESIGN.md §12.
    Output order and float formatting are fixed, so deterministic runs
    expose byte-identical text. *)

val of_run : ?series:Series.t -> No_trace.Trace.Metrics.t -> string
(** Ends with the OpenMetrics "# EOF" terminator.  With [series], the
    whole-run latency summaries (merged windowed histograms) and the
    per-interval `offload_window_*` samples are appended; when the
    series carries sampler-attached exemplars, an
    `offload_latency_seconds_hist` histogram family is emitted whose
    bucket lines carry `# {trace_id="..."} value` exemplars — absent
    entirely on unsampled runs, so their exposition is unchanged. *)

val write : string -> ?series:Series.t -> No_trace.Trace.Metrics.t -> unit
(** [write path ?series m] saves {!of_run} to [path]. *)

val of_selfprof : ?unwound:int -> No_selfprof.Selfprof.row list -> string
(** Exposition of the simulator self-profile
    (`selfprof_zone_{calls,self_seconds,self_words}_total{zone=...}` +
    `selfprof_unwound_frames_total`), `# EOF`-terminated.  Takes rows,
    not global profiler state, so fixed rows expose fixed bytes. *)

val write_selfprof :
  string -> ?unwound:int -> No_selfprof.Selfprof.row list -> unit
(** [write_selfprof path ?unwound rows] saves {!of_selfprof} to
    [path]. *)
