(** Raw-trace persistence: line-per-event JSON.

    Line 1 is a header — [{"format":"no-trace-raw","version":1,"events":N}]
    — and every following line is one timestamped event.  Floats are
    written as [%.17g], so a save/load round trip reproduces the event
    list bit-exactly.

    Loading is strict: a version the build does not understand, an
    unknown event kind, a missing field, or a body whose line count
    disagrees with the header's [events] count all yield a
    line-numbered [Error _] diagnostic rather than an exception or a
    silently shorter run. *)

val version : int
(** The format version this build writes. *)

val min_read_version : int
(** The oldest header version the loader still accepts — newer
    versions only add event kinds, so older traces load as streams
    that simply contain none of them. *)

val to_string :
  ?sampled:bool -> (float * No_trace.Trace.event) list -> string
(** With [~sampled:true] (default false) the header carries
    ["sampled":true] — the version-4 marker for tail-sampled traces,
    whose missing tasks mean inter-event gaps are not attributable
    time. *)

val to_string_traces :
  (string * (float * No_trace.Trace.event) list) list -> string
(** Serialise kept sampled traces — [(trace_id, events)] pairs as
    produced by {!No_trace.Trace.Sampler.kept_traces} — as a sampled
    version-4 file whose event lines each carry a ["trace"] field
    naming the kept task they belong to.  Events are merged into one
    globally time-ordered stream. *)

val of_string :
  string -> ((float * No_trace.Trace.event) list, string) result

val of_string_ex :
  string -> ((float * No_trace.Trace.event) list * bool, string) result
(** Like {!of_string} but also returns the header's [sampled] flag
    (false for version-2/3 headers, which predate it). *)

val of_string_traces :
  string ->
  ( (float * No_trace.Trace.event * string option) list * bool,
    string )
  result
(** Like {!of_string_ex} but keeps each line's optional ["trace"] tag
    ([None] for untagged lines, i.e. every full-capture trace). *)

val save :
  ?sampled:bool -> string -> (float * No_trace.Trace.event) list -> unit

val save_traces :
  string -> (string * (float * No_trace.Trace.event) list) list -> unit
(** {!to_string_traces} written to a file. *)

val load : string -> ((float * No_trace.Trace.event) list, string) result
(** [of_string] on the file's contents; an unreadable file is also an
    [Error _]. *)

val load_ex :
  string -> ((float * No_trace.Trace.event) list * bool, string) result
(** {!of_string_ex} on the file's contents. *)

val load_traces :
  string ->
  ( (float * No_trace.Trace.event * string option) list * bool,
    string )
  result
(** {!of_string_traces} on the file's contents. *)
