(** Raw-trace persistence: line-per-event JSON.

    Line 1 is a header — [{"format":"no-trace-raw","version":1,"events":N}]
    — and every following line is one timestamped event.  Floats are
    written as [%.17g], so a save/load round trip reproduces the event
    list bit-exactly.

    Loading is strict: a version the build does not understand, an
    unknown event kind, a missing field, or a body whose line count
    disagrees with the header's [events] count all yield a
    line-numbered [Error _] diagnostic rather than an exception or a
    silently shorter run. *)

val version : int
(** The format version this build writes. *)

val min_read_version : int
(** The oldest header version the loader still accepts — newer
    versions only add event kinds, so older traces load as streams
    that simply contain none of them. *)

val to_string : (float * No_trace.Trace.event) list -> string

val of_string :
  string -> ((float * No_trace.Trace.event) list, string) result

val save : string -> (float * No_trace.Trace.event) list -> unit

val load : string -> ((float * No_trace.Trace.event) list, string) result
(** [of_string] on the file's contents; an unreadable file is also an
    [Error _]. *)
