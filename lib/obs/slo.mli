(** Declarative service-level objectives evaluated over a windowed
    {!Series}.

    Spec grammar (comma-separated clauses; see {!grammar}):
    - [avail>=0.99] — offload availability over the whole run,
      [1 - (fallbacks + rejects) / (offload attempts + rejects)];
    - [p99(page-fault)<=50ms] — a latency-kind quantile over the
      merged windowed histograms; duration units s (default), ms, us;
    - [rate(retries)<=0.5] — events per simulated second;
    - [burn(0.99)<=14] / [burn(0.99,fast=6,slow=36)<=14] — windowed
      error-budget burn rate against availability target 0.99, failing
      only when both the fast (default last 6 windows) and slow
      (default last 36) trailing means exceed the limit.

    Kind/counter names are case- and punctuation-insensitive
    ("PageFault" matches "page-fault").  Evaluation is a pure function
    of the series: seeded reruns give byte-identical verdicts. *)

type objective =
  | Avail of { min : float }
  | Quantile of { q : float; kind : string; limit_s : float }
  | Rate of { counter : string; max_per_s : float }
  | Burn of { target : float; max_rate : float; fast : int; slow : int }

type verdict = {
  v_label : string;  (** the clause, normalized *)
  v_value : float;   (** the measured value *)
  v_pass : bool;
}

val grammar : string
(** One-line grammar summary for error messages and --help. *)

val default_spec : string
(** ["avail>=0.99,p99(page-fault)<=50ms,burn(0.99)<=14"]. *)

val fleet_default_spec : string
(** ["avail>=0.015,p99(page-fault)<=50ms"] — an availability *floor*
    for the deliberately saturated fleet bench, where the serving
    target of {!default_spec} can never pass and a perpetual FAIL
    would guard nothing.  Passes at baseline scale; flips to FAIL if
    routing/admission regresses. *)

val parse : string -> (objective list, string) result

val label_of : objective -> string
(** The clause in normalized form, e.g. ["p99(page-fault)<=0.05s"] —
    the label incidents and verdicts share. *)

val avail_of : No_trace.Trace.Metrics.t -> float
(** Offload availability of one metrics aggregate:
    [1 - (fallbacks + rejects) / (offloads + rejects)]; 1.0 when there
    were no attempts.  Exposed for the per-window incident engine,
    which needs the same definition the [avail] clause uses. *)

val counter_value : string -> No_trace.Trace.Metrics.t -> int
(** Value of a [rate(...)] counter by its grammar name; 0 for unknown
    names. *)

val evaluate : objective list -> Series.t -> verdict list
(** Verdicts in spec order. *)

val pass : verdict list -> bool

val render : verdict list -> string
(** ["avail>=0.99: pass (1); p99(page-fault)<=0.05s: FAIL (0.072)"]. *)
