(** Windowed time series derived from the runtime event stream.

    The virtual timeline is cut into fixed-width windows; every event
    is charged to the window its start timestamp falls in (the sinks'
    stamping convention).  Each window carries a full
    {!No_trace.Trace.Metrics} aggregate of just that interval, one
    lossless latency histogram per event kind, and gauges (peak queue
    depth, peak slot occupancy, last sampled bandwidth belief).

    Driven entirely by the simulated clock, so seeded reruns produce
    byte-identical series.  Conservation invariant (locked by tests):
    merging every window's metrics equals the end-of-run metrics of
    the same stream. *)

val default_window_s : float
(** 1.0 simulated second. *)

val latency_kinds :
  (string * (No_trace.Trace.event -> float option)) list
(** The per-event-kind latency selectors (name, duration-of-event):
    offload-span, page-fault, flush, remote-io, fnptr-translate,
    rpc-timeout, retry-backoff, replay, queue-wait.  The names are the
    stable telemetry vocabulary shared by the windowed histograms, the
    SLO grammar and the OpenMetrics exposition. *)

type window = {
  w_index : int;
  w_start_s : float;
  w_metrics : No_trace.Trace.Metrics.t;
  w_hists : (string * Hist.t) list;  (** {!latency_kinds} order *)
  mutable w_peak_queue_depth : int;
  mutable w_peak_occupancy : int;
  mutable w_server_peaks : (int * int) list;
      (** per-server peak admit occupancy within the window, ascending
          server id; servers with no admit in the window are absent *)
  mutable w_bw_bps : float;  (** last sampled belief; NaN when none *)
}

type t

val create : ?window_s:float -> unit -> t
(** Raises [Invalid_argument] unless [window_s > 0]. *)

val window_s : t -> float

val duration_s : t -> float
(** Latest instant any observed event's span reaches (mirror of the
    span tree's wall clock on a session trace). *)

val sink : t -> No_trace.Trace.sink
(** Live attachment: fan this out next to the metrics/ring sinks. *)

val observe : t -> ts:float -> No_trace.Trace.event -> unit

val add_exemplar :
  t -> ts:float -> kind:int -> value:float -> trace_id:string -> unit
(** Attach a sampled-trace exemplar to the window and latency-kind
    histogram the event at ([ts], row [kind]) was charged to — the
    shape of {!No_trace.Trace.Sampler}'s exemplar hook.  Out of band:
    never affects counts, quantiles or conservation.  Kinds that carry
    no latency are ignored. *)

val of_events :
  ?window_s:float -> (float * No_trace.Trace.event) list -> t
(** Post-hoc construction from a captured (or reloaded) stream. *)

val windows : t -> window list
(** Dense and chronological from window 0 to the end of the run; gaps
    are (cached) empty windows, so repeated calls return the same
    structure. *)

val totals : t -> No_trace.Trace.Metrics.t
(** All windows merged in chronological order — the conservation
    partner of an independent end-of-run metrics sink. *)

val kind_hist : t -> string -> Hist.t
(** Merge of one {!latency_kinds} histogram across all windows; empty
    histogram for unknown names. *)
