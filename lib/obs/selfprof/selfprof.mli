(** Simulator self-profiler: zone-based cost accounting for the
    simulator's own inner loops.

    [lib/profiler] profiles the *workload* (the paper's hot-function
    profiling); this module turns the same discipline inward.  Hot
    paths bracket themselves in a zone from a fixed vocabulary; the
    profiler accumulates per-zone call counts, self CPU time and
    GC-derived allocation (minor-heap words), attributing nested-zone
    costs to the innermost zone like a classic tracing profiler.

    The profiler is off by default and must cost ~nothing when off:
    [enter]/[leave] are one mutable-bool load and a branch.  When on,
    each crossing reads [Sys.time] and [Gc.minor_words] — both bound
    to their unboxed [@@noalloc] externals — and writes unboxed float
    array slots, so the probes themselves allocate nothing and the
    allocation deltas they record are the instrumented code's own.

    State is global (the simulator is single-domain); [reset] between
    measured regions.  Enabling or disabling never perturbs simulated
    results — the zones wrap host-side bookkeeping only, and the
    determinism test locks simulation output byte-identical either
    way. *)

(** The fixed zone vocabulary.  Adding a zone = one constructor, one
    name, one [enter]/[leave] pair at the instrumented site (see
    DESIGN.md §15). *)
type zone =
  | Eq_push  (** event-queue push (heap insert) *)
  | Eq_pop  (** event-queue pop (heap extract) *)
  | Page_fault  (** copy-on-demand page-fault service *)
  | Compress  (** LZ77 compression of a flush payload *)
  | Decompress  (** LZ77 decompression *)
  | Sink_emit  (** trace sink emission (metrics / ring / series) *)
  | Hist_record  (** histogram record (Hist.add) *)
  | Hist_merge  (** histogram merge (Hist.merge_into) *)
  | Pool_route  (** pool routing: placement + admission bookkeeping *)
  | Checkpoint  (** resumable-image capture *)

val zones : zone list
(** Every zone, in fixed report order. *)

val zone_name : zone -> string
(** Stable kebab-case label, used by reports and OpenMetrics. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Zero all counters (and the zone stack); does not change
    enabled/disabled. *)

val enter : zone -> unit
val leave : zone -> unit
(** Bracket a zone.  Zones may nest (a series sink records into a
    histogram: hist-record nests inside sink-emit); elapsed time and
    words are attributed to the innermost open zone.  [leave] is
    unwind-tolerant: if an exception skipped inner [leave]s, it pops
    the abandoned frames and counts them in [unwound]. *)

type row = {
  r_zone : string;
  r_calls : int;
  r_self_s : float;  (** CPU seconds attributed to this zone alone *)
  r_self_words : float;  (** minor-heap words allocated in this zone *)
}

val rows : unit -> row list
(** One row per zone in fixed vocabulary order, including zero rows. *)

val unwound : unit -> int
(** Zone frames discarded by exceptional unwinds — nonzero means some
    self-time was attributed to an enclosing zone. *)

val report : ?top:int -> unit -> string
(** Deterministic text report: the full zone table in vocabulary
    order, then the top-[top] zones by self-time and by words/call
    (default 3).  Layout is fixed; only the measured numbers vary. *)

val allocated_words : unit -> float
(** Whole-process allocation odometer from [Gc.quick_stat]:
    minor + major - promoted words.  Deltas of this around a measured
    region give total (minor+major) words — the allocs/event headline
    of the micro-bench lane. *)
