(* Zone-based self-profiler for the simulator's own hot paths.

   Accounting model: a global LIFO stack of open zones.  Every probe
   crossing (enter or leave) reads the CPU clock and the minor-heap
   allocation odometer and attributes the elapsed delta to the zone on
   top of the stack — so nested zones steal their cost from the
   enclosing one and every row is *self* cost, not inclusive cost.

   The hot path must not allocate: [Sys.time] and [Gc.minor_words]
   compile to their unboxed [@@noalloc] externals, and the running
   cursor lives in 1-element float arrays (float arrays store unboxed;
   a [float ref] would box on every store). *)

type zone =
  | Eq_push
  | Eq_pop
  | Page_fault
  | Compress
  | Decompress
  | Sink_emit
  | Hist_record
  | Hist_merge
  | Pool_route
  | Checkpoint

let zones =
  [ Eq_push; Eq_pop; Page_fault; Compress; Decompress; Sink_emit;
    Hist_record; Hist_merge; Pool_route; Checkpoint ]

let n_zones = 10

let index = function
  | Eq_push -> 0
  | Eq_pop -> 1
  | Page_fault -> 2
  | Compress -> 3
  | Decompress -> 4
  | Sink_emit -> 5
  | Hist_record -> 6
  | Hist_merge -> 7
  | Pool_route -> 8
  | Checkpoint -> 9

let zone_name = function
  | Eq_push -> "eq-push"
  | Eq_pop -> "eq-pop"
  | Page_fault -> "page-fault"
  | Compress -> "compress"
  | Decompress -> "decompress"
  | Sink_emit -> "sink-emit"
  | Hist_record -> "hist-record"
  | Hist_merge -> "hist-merge"
  | Pool_route -> "pool-route"
  | Checkpoint -> "checkpoint"

(* --- mutable state --- *)

let on = ref false
let calls = Array.make n_zones 0
let self_s = Array.make n_zones 0.
let self_words = Array.make n_zones 0.

let max_depth = 64
let stack = Array.make max_depth (-1)
let depth = ref 0
let unwound_frames = ref 0

(* Cursor: clock/odometer readings at the previous probe crossing.
   1-element float arrays so stores stay unboxed. *)
let last_t = [| 0. |]
let last_w = [| 0. |]

let enabled () = !on

let reset () =
  Array.fill calls 0 n_zones 0;
  Array.fill self_s 0 n_zones 0.;
  Array.fill self_words 0 n_zones 0.;
  depth := 0;
  unwound_frames := 0

let enable () =
  on := true;
  last_t.(0) <- Sys.time ();
  last_w.(0) <- Gc.minor_words ()

let disable () = on := false

(* Attribute the time/words elapsed since the previous crossing to the
   innermost open zone, and advance the cursor. *)
let settle () =
  let now = Sys.time () in
  let w = Gc.minor_words () in
  (if !depth > 0 then begin
     let top = stack.(!depth - 1) in
     self_s.(top) <- self_s.(top) +. (now -. last_t.(0));
     self_words.(top) <- self_words.(top) +. (w -. last_w.(0))
   end);
  last_t.(0) <- now;
  last_w.(0) <- w

let really_enter z =
  settle ();
  let zi = index z in
  calls.(zi) <- calls.(zi) + 1;
  if !depth < max_depth then begin
    stack.(!depth) <- zi;
    incr depth
  end
  else incr unwound_frames

let really_leave z =
  settle ();
  let zi = index z in
  (* Common case: leaving the innermost zone. *)
  if !depth > 0 && stack.(!depth - 1) = zi then decr depth
  else begin
    (* An exception unwound past inner [leave]s, or the stack
       overflowed at enter time.  Scan down for the zone; frames
       popped over it were abandoned mid-flight. *)
    let found = ref (-1) in
    for i = !depth - 1 downto 0 do
      if !found < 0 && stack.(i) = zi then found := i
    done;
    if !found >= 0 then begin
      unwound_frames := !unwound_frames + (!depth - 1 - !found);
      depth := !found
    end
    else incr unwound_frames
  end

let enter z = if !on then really_enter z
let leave z = if !on then really_leave z

(* --- reporting --- *)

type row = {
  r_zone : string;
  r_calls : int;
  r_self_s : float;
  r_self_words : float;
}

let rows () =
  List.map
    (fun z ->
      let zi = index z in
      { r_zone = zone_name z;
        r_calls = calls.(zi);
        r_self_s = self_s.(zi);
        r_self_words = self_words.(zi) })
    zones

let unwound () = !unwound_frames

let words_per_call r =
  if r.r_calls = 0 then 0. else r.r_self_words /. float_of_int r.r_calls

let report ?(top = 3) () =
  let b = Buffer.create 1024 in
  let rs = rows () in
  Buffer.add_string b "self-profile (zone, self cost)\n";
  Buffer.add_string b
    "  zone          calls        self-ms      kwords   words/call\n";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "  %-12s %8d %12.3f %11.1f %12.1f\n" r.r_zone
           r.r_calls (r.r_self_s *. 1e3) (r.r_self_words /. 1e3)
           (words_per_call r)))
    rs;
  (if !unwound_frames > 0 then
     Buffer.add_string b
       (Printf.sprintf "  (unwound frames: %d)\n" !unwound_frames));
  let active = List.filter (fun r -> r.r_calls > 0) rs in
  let top_by name key =
    (* stable sort: ties keep vocabulary order, so the report is
       deterministic even when costs collide (e.g. all zeros) *)
    let sorted =
      List.stable_sort (fun a b -> compare (key b) (key a)) active
    in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: tl -> x :: take (n - 1) tl
    in
    let picks = take top sorted in
    if picks <> [] then begin
      Buffer.add_string b (Printf.sprintf "  top by %s:" name);
      List.iter
        (fun r -> Buffer.add_string b (Printf.sprintf " %s" r.r_zone))
        picks;
      Buffer.add_char b '\n'
    end
  in
  top_by "self-time" (fun r -> r.r_self_s);
  top_by "words/call" words_per_call;
  Buffer.contents b

let allocated_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words
