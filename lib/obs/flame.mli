(** Span-tree renderers. *)

val to_collapsed : Span.node -> string
(** Collapsed-stack flamegraph format ([a;b;c <weight>], one stack per
    line, weights in integer microseconds of {e exclusive} time) —
    loadable by speedscope and flamegraph.pl.  Stacks whose self time
    rounds to zero microseconds are dropped. *)

val to_text : Span.node -> string
(** Deterministic plain-text tree (ASCII box drawing), for terminal
    output and golden tests.  Interior nodes show [total] and [self]
    seconds; leaves show their single time. *)
