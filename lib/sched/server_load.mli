(** Shared-server admission and contention model.

    One server with [slots] worker slots and a bounded FIFO queue
    serves N mobile clients.  At occupancy [m] (concurrently executing
    offloads) effective speedup and link bandwidth scale by
    [1 / (1 + coeff * (m - 1))]; prices are fixed at admission for the
    offload's whole duration.

    The driver (see {!Sim}) must process admission requests in global
    arrival order and run each admitted offload to its {!release}
    before examining a later request — every wait is then computed
    from an exact release time.  [request] asserts this invariant. *)

type config = {
  slots : int;          (** concurrent worker slots on the server *)
  queue_cap : int;      (** waiting requests tolerated; more → reject *)
  alpha : float;        (** compute-contention coefficient *)
  beta : float;         (** link-contention coefficient *)
  r_factor : float;
      (** member speed relative to the baseline server machine (1.0 =
          the architecture's R); composes multiplicatively with the
          contention scale.  Heterogeneous pools mix values. *)
}

val default : config
(** 2 slots, queue of 2, alpha 0.8, beta 0.5, r_factor 1.0. *)

val r_scale : config -> occupancy:int -> float
(** Effective-speedup scale at an occupancy; [r_factor] at occupancy
    1, strictly decreasing beyond (for positive [alpha]). *)

val bw_scale : config -> occupancy:int -> float
(** Link-bandwidth scale, as {!r_scale} with [beta]. *)

type t

val create : ?id:int -> config -> t
(** All slots free.  [id] (default 0) is the pool index stamped into
    every admission this server issues.  Raises [Invalid_argument] on
    [slots < 1] or a negative queue capacity. *)

val id : t -> int
(** The pool index given at {!create}. *)

val config : t -> config

val occupancy : t -> now:float -> int
(** Offloads executing at instant [now]. *)

val load : t -> now:float -> float * float
(** [(r_scale, bw_scale)] an offload starting now would be priced at —
    the current occupancy plus the asker.  Fed to the dynamic
    estimator at decision time. *)

val request :
  t -> now:float -> target:string -> No_runtime.Session.admission
(** Ask for a worker slot at instant [now].  Admits immediately on a
    free slot, FIFO-queues (with the exact wait) while at most
    [queue_cap] requests wait, rejects beyond. *)

val release : t -> now:float -> slot:int -> unit
(** The offload occupying [slot] finished (or was abandoned) at
    [now]. *)

type stats = {
  st_admits : int;
  st_queued : int;
  st_rejects : int;
  st_peak_occupancy : int;
}

val stats : t -> stats
