(** Array-backed binary min-heap keyed [(time, id, seq)] — the
    continuation queue of the discrete-event simulator.

    O(log n) {!push}/{!pop} over parallel unboxed key arrays, with a
    deterministic total order: earliest [time] first, ties broken by
    [id] (the owning client), then by push order ([seq], assigned
    internally).  Two pushes can therefore never compare equal, so a
    seeded rerun pops in a byte-identical sequence. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:float -> id:int -> 'a -> unit
(** Insert a payload at [(time, id)]; arrival order among equal
    [(time, id)] keys is preserved. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum-key payload; [None] when empty. *)

val peek_time : 'a t -> float option
(** The minimum key's time without removing it; [None] when empty. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
