(** Deterministic discrete-event simulation of N mobile clients
    sharing one offload server.

    Each client is a full offloading session starting at a global
    offset; the shared state is the server's worker slots and
    admission queue ({!Server_load}).  Clients suspend (via an OCaml
    effect) at every shared-server interaction and are resumed in
    global-time order, so the run is a conservative discrete-event
    simulation: same mix + same seeds → byte-identical traces and
    tables. *)

type client = {
  cl_id : int;                     (** unique, also the tie-breaker *)
  cl_workload : string;            (** registry entry name *)
  cl_start_s : float;              (** global arrival offset *)
  cl_faults : No_fault.Plan.t option;  (** per-client fault schedule *)
}

(** Which console input each session replays: [Profile] (small
    training inputs — cheap, for tests/CI) or [Eval] (the paper's
    evaluation inputs). *)
type scale = Profile | Eval

type config = {
  s_load : Server_load.config;
  s_link : No_netsim.Link.t;
  s_scale : scale;
}

val default_config : config
(** {!Server_load.default}, fast Wi-Fi, profile-scale inputs. *)

val make_clients :
  ?stagger_s:float ->
  ?faults:No_fault.Plan.t ->
  workloads:string list ->
  count:int ->
  unit ->
  client list
(** [count] clients round-robined over [workloads], arriving
    [stagger_s] (default 0.05 s) apart.  A fault plan is re-seeded
    per client (base seed + client id) so every client suffers its
    own deterministic schedule. *)

type client_result = {
  cr_id : int;
  cr_workload : string;
  cr_start_s : float;
  cr_report : No_runtime.Session.report;
  cr_local_s : float;    (** the same program + input run locally *)
  cr_speedup : float;    (** local time / offloaded-session time *)
  cr_end_s : float;      (** global completion instant *)
  cr_events : (float * No_trace.Trace.event) list;
      (** the session's trace, session-local timestamps (add
          [cr_start_s] for global time) *)
}

type result = {
  r_clients : client_result list;
  r_makespan_s : float;
  r_throughput : float;            (** clients completed / makespan *)
  r_stats : Server_load.stats;
}

val run : ?config:config -> client list -> result
(** Simulate the whole fleet to completion.  Raises
    [Invalid_argument] on an empty client list or an unknown
    workload name. *)

val geomean_speedup : result -> float

val global_events : result -> (float * No_trace.Trace.event) list
(** Every client's trace merged onto the global clock ([cr_start_s]
    added to each session-local timestamp), stably sorted by time —
    client order breaks ties, so seeded reruns interleave
    byte-identically.  Feed to [Series.of_events] for fleet-wide
    telemetry. *)

val flipped_local : result -> int
(** Clients with at least one estimator refusal or queue rejection —
    tasks the contended server pushed back to the mobile device. *)

val span_latencies : result -> float list
(** End-to-end latencies of every completed offload span (queue wait
    included), ascending. *)

val percentile : float list -> p:float -> float
(** Nearest-rank percentile of an ascending list; 0.0 when empty. *)

val admitted_intervals : result -> (float * float) list
(** Global-time [(admit, release)] intervals of admitted offloads; at
    no instant may more than [slots] of them overlap. *)

val render : ?title:string -> result -> string
(** Deterministic per-client table plus aggregate lines (geomean
    speedup, makespan, throughput, server stats, latency
    percentiles). *)
