(** Deterministic discrete-event simulation of N mobile clients
    against a pool of offload servers.

    Each client is a full offloading session starting at a global
    offset; the shared state is the server pool — K independent
    {!Server_load} machines fronted by a {!Pool.policy}.  Clients
    suspend (via an OCaml effect) at every shared-state interaction;
    a binary-heap event queue ({!Event_queue}) resumes them in
    global-time order from a flat driver loop, so native stack depth
    is O(1) in the fleet size.  Same mix + same policy + same seeds →
    byte-identical traces and tables. *)

type client = {
  cl_id : int;                     (** unique, also the tie-breaker *)
  cl_workload : string;            (** registry entry name *)
  cl_start_s : float;              (** global arrival offset *)
  cl_faults : No_fault.Plan.t option;  (** per-client fault schedule *)
}

(** Which console input each session replays: [Profile] (small
    training inputs — cheap, for tests/CI) or [Eval] (the paper's
    evaluation inputs). *)
type scale = Profile | Eval

type config = {
  s_load : Server_load.config;  (** every pool member's config *)
  s_servers : int;              (** pool size K *)
  s_members : Server_load.config array option;
      (** heterogeneous pool: one config per member (mixing slot
          counts, queue depths, speed grades), overriding
          [s_load]/[s_servers] when present *)
  s_policy : Pool.policy;       (** placement policy *)
  s_schedule : Pool.maintenance list;
      (** static down windows — rolling maintenance, planned
          rebalance drains *)
  s_migrate : bool;
      (** sessions checkpoint and migrate off a lost member (the
          default); [false] = always roll back and replay locally *)
  s_link : No_netsim.Link.t;
  s_scale : scale;
  s_record_events : bool;
      (** keep full per-client traces (Ring buffers).  On by default;
          turn off for 10^4-client sweeps — latencies still stream
          into {!val-latency_hist}, but [cr_events], {!global_events}
          and {!admitted_intervals} come back empty *)
  s_global_sink : No_trace.Trace.sink option;
      (** extra fleet-wide sink fed every client's events re-stamped
          onto the global clock as they stream — SLO series and
          telemetry at any fleet size, without rings *)
  s_sampler : No_trace.Trace.Sampler.t option;
      (** tail-based trace sampler: every client streams into its own
          {!No_trace.Trace.Sampler.client_sink} view (global clock),
          and {!run} flushes trailing in-flight tasks before
          returning, so kept counts are final when it does *)
}

val default_config : config
(** One {!Server_load.default} server, round-robin, no schedule,
    migration on, fast Wi-Fi, profile-scale inputs, events recorded,
    no global sink. *)

val make_clients :
  ?stagger_s:float ->
  ?faults:No_fault.Plan.t ->
  workloads:string list ->
  count:int ->
  unit ->
  client list
(** [count] clients round-robined over [workloads], arriving
    [stagger_s] (default 0.05 s) apart.  A fault plan is re-seeded
    per client (base seed + client id) so every client suffers its
    own deterministic schedule. *)

type client_result = {
  cr_id : int;
  cr_workload : string;
  cr_start_s : float;
  cr_report : No_runtime.Session.report;
  cr_local_s : float;    (** the same program + input run locally *)
  cr_speedup : float;    (** local time / offloaded-session time *)
  cr_end_s : float;      (** global completion instant *)
  cr_events : (float * No_trace.Trace.event) list;
      (** the session's trace, session-local timestamps (add
          [cr_start_s] for global time); [] unless recording *)
}

type result = {
  r_clients : client_result list;
  r_policy : Pool.policy;
  r_makespan_s : float;
  r_throughput : float;            (** clients completed / makespan *)
  r_stats : Server_load.stats;     (** pool totals ({!Pool.total_stats}) *)
  r_server_stats : Server_load.stats array;  (** per member, by id *)
  r_latency : No_obs.Hist.t;       (** streamed offload-span latencies *)
  r_events : int;                  (** trace events emitted fleet-wide *)
}

val run : ?config:config -> client list -> result
(** Simulate the whole fleet to completion.  Raises
    [Invalid_argument] on an empty client list or an unknown
    workload name. *)

val geomean_speedup : result -> float

val global_events : result -> (float * No_trace.Trace.event) list
(** Every client's trace merged onto the global clock ([cr_start_s]
    added to each session-local timestamp), stably sorted by time —
    client order breaks ties, so seeded reruns interleave
    byte-identically.  Feed to [Series.of_events] for fleet-wide
    telemetry.  Empty unless the run recorded events. *)

val flipped_local : result -> int
(** Clients with at least one estimator refusal or queue rejection —
    tasks the contended pool pushed back to the mobile device. *)

val migration_totals : result -> int * int * int * int
(** Fleet-wide [(checkpoints, migrations started, migrations
    completed, local replays)] — how mid-flight losses were
    recovered. *)

type scenario = {
  sc_name : string;
  sc_title : string;      (** one-line description for reports *)
  sc_config : config;
  sc_clients : client list;
}

val scenario_names : string list
(** ["failover"; "maintenance"; "rebalance"]. *)

val scenario : ?policy:Pool.policy -> ?migrate:bool -> string -> scenario
(** Canonical migration scenario by name: ["failover"] (a member
    crashes mid-offload, the task fails over to a healthy sibling),
    ["maintenance"] (rolling drains across the pool), ["rebalance"]
    (the expensive fast member of a heterogeneous pool is drained
    mid-run).  [migrate:false] runs the same situation with the
    rollback + local-replay recovery only, for comparison.  Raises
    [Invalid_argument] on an unknown name. *)

val latency_hist : result -> No_obs.Hist.t
(** The streamed offload-span latency histogram — available at any
    fleet size, recording on or off. *)

val latency_percentile : result -> p:float -> float
(** Nearest-rank percentile (p in [0,100]) of the streamed offload
    spans via {!No_obs.Hist.quantile}; 0.0 when no offload
    completed. *)

val admitted_intervals : result -> (int * float * float) list
(** Global-time [(server, admit, release)] intervals of admitted
    offloads; at no instant may more intervals of one server overlap
    than that server has slots.  Needs a run with [s_record_events]
    on. *)

val render : ?title:string -> result -> string
(** Deterministic per-client table plus aggregate lines (geomean
    speedup, makespan, throughput, pool totals and policy), a
    per-server stats table, and latency percentiles. *)
