(* A pool of K independent offload servers fronted by a routing
   policy.

   Each member is a complete Server_load — its own worker slots,
   admission queue and contention bookkeeping; the pool adds only the
   placement decision.  The policy picks a server per admission
   request, at the instant the request is examined:

   - Round_robin cycles a counter over the members, blind to load.
   - Least_loaded picks the member with the fewest offloads executing
     at that instant (ties to the lowest id) — below saturation it is
     indistinguishable from round-robin, past it it routes around busy
     servers, which is the policy flip the fleet bench demonstrates.
   - Sticky hashes the client id to a fixed member, so one client's
     offloads always land together (warm-cache placement); the hash is
     multiplicative so consecutive ids spread instead of clustering.

   [load] (the estimator's price preview) peeks at the server the
   policy *would* choose without advancing any policy state, so a
   preview followed by a request sees one consistent server under
   every policy.  All choice is deterministic — no RNG — preserving
   the simulator's byte-identical-rerun contract. *)

module Session = No_runtime.Session
module Selfprof = No_selfprof.Selfprof

type policy = Round_robin | Least_loaded | Sticky

let policy_to_string = function
  | Round_robin -> "round-robin"
  | Least_loaded -> "least-loaded"
  | Sticky -> "sticky"

let policy_of_string = function
  | "round-robin" | "rr" -> Some Round_robin
  | "least-loaded" | "ll" -> Some Least_loaded
  | "sticky" -> Some Sticky
  | _ -> None

let all_policies = [ Round_robin; Least_loaded; Sticky ]

(* {1 Member health}

   Two ways a member leaves service mid-run:

   - a *maintenance window* on a static schedule given at creation —
     rolling drains, planned rebalances.  [is_down] is then a pure
     function of simulated time, so health checks made between event
     suspension points (which may observe any interleaving of host
     order) still agree bit-for-bit on every rerun;
   - a *quarantine* — some client observed the member crash and told
     the pool; the member is out for the rest of the run, and every
     other client discovers it at its next exchange. *)

type maintenance = {
  mw_server : int;
  mw_from_s : float;
  mw_until_s : float;
  mw_reason : string;      (* "maintenance", "rebalance", ... *)
}

type t = {
  servers : Server_load.t array;
  policy : policy;
  mutable rr_next : int;               (* Round_robin cursor *)
  schedule : maintenance list;         (* static down windows *)
  quarantined : string option array;   (* Some reason = out for good *)
  mutable quarantines : int;
}

let create_hetero ?(policy = Round_robin) ?(schedule = []) configs =
  let k = Array.length configs in
  if k < 1 then invalid_arg "Pool.create_hetero: no members";
  List.iter
    (fun w ->
      if w.mw_server < 0 || w.mw_server >= k then
        invalid_arg "Pool.create_hetero: schedule names a bad server";
      if not (w.mw_until_s > w.mw_from_s) then
        invalid_arg "Pool.create_hetero: empty maintenance window")
    schedule;
  {
    servers = Array.mapi (fun id cfg -> Server_load.create ~id cfg) configs;
    policy;
    rr_next = 0;
    schedule;
    quarantined = Array.make k None;
    quarantines = 0;
  }

let create ?policy ?schedule ~servers cfg =
  if servers < 1 then invalid_arg "Pool.create: servers < 1";
  create_hetero ?policy ?schedule (Array.make servers cfg)

let size t = Array.length t.servers
let policy t = t.policy
let server t i = t.servers.(i)
let schedule t = t.schedule

let volatile t = t.schedule <> []
(* Can membership change under a clean client?  Static windows say yes
   up front; crash quarantines only exist when some client carries a
   fault plan, which the driver accounts for separately. *)

let quarantine t ~server ~reason =
  if server < 0 || server >= Array.length t.servers then
    invalid_arg "Pool.quarantine: bad server";
  if t.quarantined.(server) = None then begin
    t.quarantined.(server) <- Some reason;
    t.quarantines <- t.quarantines + 1
  end

let down_reason t ~server ~now =
  match t.quarantined.(server) with
  | Some _ as r -> r
  | None ->
    List.find_map
      (fun w ->
        if w.mw_server = server && now >= w.mw_from_s && now < w.mw_until_s
        then Some w.mw_reason
        else None)
      t.schedule

let is_down t ~server ~now = down_reason t ~server ~now <> None

(* Fast path: a pool with no schedule and no quarantines routes with
   zero health bookkeeping — clean fleet runs pay nothing for the
   machinery. *)
let clean t = t.schedule == [] && t.quarantines = 0

let eligible t ~now ~exclude i =
  i <> exclude && down_reason t ~server:i ~now = None

(* First in-service member at or after [from] (cyclic), or None when
   the whole pool is dark. *)
let first_eligible t ~now ~exclude ~from =
  let k = Array.length t.servers in
  let rec go n =
    if n = k then None
    else
      let i = (from + n) mod k in
      if eligible t ~now ~exclude i then Some i else go (n + 1)
  in
  go 0

let least_loaded_eligible t ~now ~exclude =
  let best = ref None in
  Array.iteri
    (fun i srv ->
      if eligible t ~now ~exclude i then begin
        let occ = Server_load.occupancy srv ~now in
        match !best with
        | Some (_, best_occ) when best_occ <= occ -> ()
        | _ -> best := Some (i, occ)
      end)
    t.servers;
  Option.map fst !best

(* Knuth's multiplicative hash over the client id: consecutive ids
   land on well-spread members instead of adjacent ones. *)
let sticky_index t ~client =
  let k = Array.length t.servers in
  (client * 2654435761) land max_int mod k

let least_loaded_index t ~now =
  let best = ref 0 in
  let best_occ = ref (Server_load.occupancy t.servers.(0) ~now) in
  for i = 1 to Array.length t.servers - 1 do
    let occ = Server_load.occupancy t.servers.(i) ~now in
    if occ < !best_occ then begin
      best := i;
      best_occ := occ
    end
  done;
  !best

(* The in-service member the policy would route [client] to at [now]:
   Round_robin and Sticky keep their natural anchor (cursor, hash) and
   step past dark members; Least_loaded restricts its scan.  [exclude]
   additionally bars one member — migration re-admission must not land
   back on the server that just died. *)
let route t ~client ~now ~exclude =
  if clean t && exclude < 0 then
    Some
      (match t.policy with
      | Round_robin -> t.rr_next
      | Least_loaded -> least_loaded_index t ~now
      | Sticky -> sticky_index t ~client)
  else
    match t.policy with
    | Round_robin -> first_eligible t ~now ~exclude ~from:t.rr_next
    | Least_loaded -> least_loaded_eligible t ~now ~exclude
    | Sticky -> first_eligible t ~now ~exclude ~from:(sticky_index t ~client)

(* The member the policy would grant the next request from [client] to
   at instant [now] — without advancing any policy state.  When the
   whole pool is dark this still answers (the policy's anchor) so load
   previews have a price; the request itself will be rejected. *)
let peek t ~client ~now =
  match route t ~client ~now ~exclude:(-1) with
  | Some i -> i
  | None -> (
    match t.policy with
    | Round_robin -> t.rr_next
    | Least_loaded -> 0
    | Sticky -> sticky_index t ~client)

let load t ~client ~now =
  Selfprof.enter Pool_route;
  let l = Server_load.load t.servers.(peek t ~client ~now) ~now in
  Selfprof.leave Pool_route;
  l

let granted t chosen ~now ~target =
  (match t.policy with
  | Round_robin -> t.rr_next <- (chosen + 1) mod Array.length t.servers
  | Least_loaded | Sticky -> ());
  Server_load.request t.servers.(chosen) ~now ~target

let request t ~client ~now ~target : Session.admission =
  Selfprof.enter Pool_route;
  let a =
    match route t ~client ~now ~exclude:(-1) with
    | Some chosen -> granted t chosen ~now ~target
    | None ->
      (* Every member is dark: the task never leaves the mobile. *)
      Session.Rejected { server = peek t ~client ~now; queue_depth = 0 }
  in
  Selfprof.leave Pool_route;
  a

let request_excluding t ~client ~now ~target ~exclude : Session.admission =
  Selfprof.enter Pool_route;
  let a =
    match route t ~client ~now ~exclude with
    | Some chosen -> granted t chosen ~now ~target
    | None -> Session.Rejected { server = exclude; queue_depth = 0 }
  in
  Selfprof.leave Pool_route;
  a

let release t ~server ~now ~slot =
  if server < 0 || server >= Array.length t.servers then
    invalid_arg "Pool.release: bad server";
  Server_load.release t.servers.(server) ~now ~slot

let stats t = Array.map Server_load.stats t.servers

(* Pool-wide totals: the single-server stats summed, with peak
   occupancy reported as the largest per-member peak (occupancies on
   distinct machines don't add). *)
let total_stats t =
  Array.fold_left
    (fun acc (st : Server_load.stats) ->
      {
        Server_load.st_admits = acc.Server_load.st_admits + st.st_admits;
        st_queued = acc.Server_load.st_queued + st.st_queued;
        st_rejects = acc.Server_load.st_rejects + st.st_rejects;
        st_peak_occupancy =
          max acc.Server_load.st_peak_occupancy st.st_peak_occupancy;
      })
    { Server_load.st_admits = 0; st_queued = 0; st_rejects = 0;
      st_peak_occupancy = 0 }
    (stats t)
