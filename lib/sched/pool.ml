(* A pool of K independent offload servers fronted by a routing
   policy.

   Each member is a complete Server_load — its own worker slots,
   admission queue and contention bookkeeping; the pool adds only the
   placement decision.  The policy picks a server per admission
   request, at the instant the request is examined:

   - Round_robin cycles a counter over the members, blind to load.
   - Least_loaded picks the member with the fewest offloads executing
     at that instant (ties to the lowest id) — below saturation it is
     indistinguishable from round-robin, past it it routes around busy
     servers, which is the policy flip the fleet bench demonstrates.
   - Sticky hashes the client id to a fixed member, so one client's
     offloads always land together (warm-cache placement); the hash is
     multiplicative so consecutive ids spread instead of clustering.

   [load] (the estimator's price preview) peeks at the server the
   policy *would* choose without advancing any policy state, so a
   preview followed by a request sees one consistent server under
   every policy.  All choice is deterministic — no RNG — preserving
   the simulator's byte-identical-rerun contract. *)

module Session = No_runtime.Session

type policy = Round_robin | Least_loaded | Sticky

let policy_to_string = function
  | Round_robin -> "round-robin"
  | Least_loaded -> "least-loaded"
  | Sticky -> "sticky"

let policy_of_string = function
  | "round-robin" | "rr" -> Some Round_robin
  | "least-loaded" | "ll" -> Some Least_loaded
  | "sticky" -> Some Sticky
  | _ -> None

let all_policies = [ Round_robin; Least_loaded; Sticky ]

type t = {
  servers : Server_load.t array;
  policy : policy;
  mutable rr_next : int;               (* Round_robin cursor *)
}

let create ?(policy = Round_robin) ~servers cfg =
  if servers < 1 then invalid_arg "Pool.create: servers < 1";
  {
    servers = Array.init servers (fun id -> Server_load.create ~id cfg);
    policy;
    rr_next = 0;
  }

let size t = Array.length t.servers
let policy t = t.policy
let server t i = t.servers.(i)

(* Knuth's multiplicative hash over the client id: consecutive ids
   land on well-spread members instead of adjacent ones. *)
let sticky_index t ~client =
  let k = Array.length t.servers in
  (client * 2654435761) land max_int mod k

let least_loaded_index t ~now =
  let best = ref 0 in
  let best_occ = ref (Server_load.occupancy t.servers.(0) ~now) in
  for i = 1 to Array.length t.servers - 1 do
    let occ = Server_load.occupancy t.servers.(i) ~now in
    if occ < !best_occ then begin
      best := i;
      best_occ := occ
    end
  done;
  !best

(* The member the policy would grant the next request from [client] to
   at instant [now] — without advancing any policy state. *)
let peek t ~client ~now =
  match t.policy with
  | Round_robin -> t.rr_next
  | Least_loaded -> least_loaded_index t ~now
  | Sticky -> sticky_index t ~client

let load t ~client ~now =
  Server_load.load t.servers.(peek t ~client ~now) ~now

let request t ~client ~now ~target : Session.admission =
  let chosen = peek t ~client ~now in
  (match t.policy with
  | Round_robin -> t.rr_next <- (t.rr_next + 1) mod Array.length t.servers
  | Least_loaded | Sticky -> ());
  Server_load.request t.servers.(chosen) ~now ~target

let release t ~server ~now ~slot =
  if server < 0 || server >= Array.length t.servers then
    invalid_arg "Pool.release: bad server";
  Server_load.release t.servers.(server) ~now ~slot

let stats t = Array.map Server_load.stats t.servers

(* Pool-wide totals: the single-server stats summed, with peak
   occupancy reported as the largest per-member peak (occupancies on
   distinct machines don't add). *)
let total_stats t =
  Array.fold_left
    (fun acc (st : Server_load.stats) ->
      {
        Server_load.st_admits = acc.Server_load.st_admits + st.st_admits;
        st_queued = acc.Server_load.st_queued + st.st_queued;
        st_rejects = acc.Server_load.st_rejects + st.st_rejects;
        st_peak_occupancy =
          max acc.Server_load.st_peak_occupancy st.st_peak_occupancy;
      })
    { Server_load.st_admits = 0; st_queued = 0; st_rejects = 0;
      st_peak_occupancy = 0 }
    (stats t)
