(** A pool of K independent {!Server_load} servers fronted by a
    deterministic routing policy.

    Every member keeps its own worker slots, admission queue and
    contention pricing; the pool only decides {e which} member an
    admission request lands on, at the instant the request is
    examined.  No randomness anywhere — seeded simulator reruns stay
    byte-identical per policy. *)

type policy =
  | Round_robin   (** cycle a cursor over the members, blind to load *)
  | Least_loaded
      (** the member with the fewest offloads executing at the
          decision instant, ties to the lowest id *)
  | Sticky
      (** client id hashed (multiplicative) to a fixed member, so one
          client's offloads always land together *)

val policy_to_string : policy -> string
(** ["round-robin"], ["least-loaded"], ["sticky"]. *)

val policy_of_string : string -> policy option
(** Inverse of {!policy_to_string}; also accepts the short forms
    ["rr"] and ["ll"]. *)

val all_policies : policy list

type maintenance = {
  mw_server : int;
  mw_from_s : float;
  mw_until_s : float;   (** window is [[from, until)] *)
  mw_reason : string;   (** "maintenance", "rebalance", ... *)
}
(** A static down window for one member.  Health from a schedule is a
    pure function of simulated time, so checks made between event
    suspension points agree bit-for-bit on every seeded rerun. *)

type t

val create :
  ?policy:policy -> ?schedule:maintenance list -> servers:int ->
  Server_load.config -> t
(** [servers] identically-configured members, ids [0 .. servers-1].
    Default policy {!Round_robin}, empty schedule.  Raises
    [Invalid_argument] on [servers < 1] or a malformed schedule. *)

val create_hetero :
  ?policy:policy -> ?schedule:maintenance list ->
  Server_load.config array -> t
(** One member per config, ids in array order — heterogeneous pools
    mix slot counts, queue depths and speed grades ([r_factor]). *)

val size : t -> int
val policy : t -> policy

val schedule : t -> maintenance list

val volatile : t -> bool
(** Can membership change under a clean client (a non-empty
    maintenance schedule)?  Crash quarantines are accounted for by the
    driver, which knows which clients carry fault plans. *)

val quarantine : t -> server:int -> reason:string -> unit
(** Take [server] out of service for the rest of the run — a client
    observed its crash.  Idempotent. *)

val down_reason : t -> server:int -> now:float -> string option
(** Why [server] is out of service at [now] ([None] = in service):
    its quarantine reason, else the covering maintenance window's. *)

val is_down : t -> server:int -> now:float -> bool

val server : t -> int -> Server_load.t
(** Direct access to member [i] (tests and stats). *)

val peek : t -> client:int -> now:float -> int
(** The member the policy would grant the next request from [client]
    to at instant [now] — advances no policy state, so a {!load}
    preview and the {!request} that follows see the same server. *)

val load : t -> client:int -> now:float -> float * float
(** [(r_scale, bw_scale)] on the previewed member — what the dynamic
    estimator prices a would-be offload at. *)

val request :
  t -> client:int -> now:float -> target:string ->
  No_runtime.Session.admission
(** Route an admission request: pick an in-service member (advancing
    the round-robin cursor), ask it for a slot.  The returned
    admission carries the member's id for the matching {!release}.
    [Rejected] when the chosen member's queue is full, or when every
    member is dark. *)

val request_excluding :
  t -> client:int -> now:float -> target:string -> exclude:int ->
  No_runtime.Session.admission
(** {!request}, barring one member — migration re-admission must not
    land back on the server that was just lost.  [Rejected] when no
    other in-service member exists. *)

val release : t -> server:int -> now:float -> slot:int -> unit
(** Free [slot] on member [server] at instant [now]. *)

val stats : t -> Server_load.stats array
(** Per-member stats, indexed by server id. *)

val total_stats : t -> Server_load.stats
(** Members summed (admits, queued, rejects); peak occupancy is the
    largest per-member peak. *)
