(* The shared-server admission and contention model.

   One server machine exposes [slots] worker slots to N mobile
   clients.  A request that finds a free slot is admitted at once; a
   request that finds every slot busy waits FIFO behind at most
   [queue_cap] earlier waiters, and is rejected outright beyond that —
   a rejected task never leaves its mobile device.

   Contention scales the two resources a client's offload depends on:
   at occupancy m (concurrently executing offloads) the effective
   speedup R and the shared link's bandwidth are multiplied by

       scale(m) = 1 / (1 + coeff * (m - 1))

   (alpha for compute, beta for the link) — 1.0 for an exclusive
   server, a harmonic-style decay as neighbours pile on.  Both scales
   are priced at the occupancy observed when the offload starts and
   held for its duration; a neighbour admitted later does not
   retroactively slow an offload already in flight.  That conservative
   fixed-price approximation is what makes the simulation a clean
   discrete-event problem (see Sim).

   Bookkeeping is a classic earliest-free-slot scheme: [free_at.(i)]
   is the instant slot [i] frees.  The driver guarantees (and
   [request] asserts) that every booking is finalized — an admitted
   offload runs to its release before any later-arriving request is
   examined — so waits are computed from exact release times, never
   from hold estimates. *)

module Session = No_runtime.Session

type config = {
  slots : int;          (* concurrent worker slots on the server *)
  queue_cap : int;      (* waiting requests tolerated beyond the slots *)
  alpha : float;        (* compute-contention coefficient *)
  beta : float;         (* link-contention coefficient *)
  r_factor : float;     (* member speed relative to the baseline server
                           machine: 1.0 = the architecture's R, 2.0 =
                           twice that.  Heterogeneous pools mix values *)
}

let default =
  { slots = 2; queue_cap = 2; alpha = 0.8; beta = 0.5; r_factor = 1.0 }

let scale coeff ~occupancy =
  if occupancy <= 1 then 1.0
  else 1.0 /. (1.0 +. (coeff *. float_of_int (occupancy - 1)))

(* The member's speed grade composes with contention: a 2x machine at
   occupancy 1 prices r_scale = 2.0, which the session turns into a
   halved server slowdown. *)
let r_scale cfg ~occupancy = cfg.r_factor *. scale cfg.alpha ~occupancy
let bw_scale cfg ~occupancy = scale cfg.beta ~occupancy

type t = {
  cfg : config;
  id : int;                           (* pool index stamped into admissions *)
  free_at : float array;              (* per-slot release instant *)
  mutable pending_starts : float list; (* admit times of queued waiters *)
  mutable admits : int;
  mutable queued : int;
  mutable rejects : int;
  mutable peak_occupancy : int;
}

let create ?(id = 0) cfg =
  if cfg.slots < 1 then invalid_arg "Server_load.create: slots < 1";
  if cfg.queue_cap < 0 then invalid_arg "Server_load.create: queue_cap < 0";
  if not (cfg.r_factor > 0.0) then
    invalid_arg "Server_load.create: r_factor must be positive";
  {
    cfg;
    id;
    free_at = Array.make cfg.slots 0.0;
    pending_starts = [];
    admits = 0;
    queued = 0;
    rejects = 0;
    peak_occupancy = 0;
  }

let config t = t.cfg
let id t = t.id

(* Offloads still running at instant [at]. *)
let running t ~at =
  Array.fold_left (fun n free -> if free > at then n + 1 else n) 0 t.free_at

let occupancy t ~now = running t ~at:now

(* The load an offload starting this instant would be priced at:
   everyone already running, plus the asker.  Queued waiters are not
   counted — the admission queue, not the estimator, prices the wait —
   so this is the optimistic bound the decision is based on. *)
let load t ~now =
  let m = running t ~at:now + 1 in
  (r_scale t.cfg ~occupancy:m, bw_scale t.cfg ~occupancy:m)

let request t ~now ~target:_ : Session.admission =
  t.pending_starts <- List.filter (fun s -> s > now) t.pending_starts;
  let slot = ref 0 in
  Array.iteri (fun i free -> if free < t.free_at.(!slot) then slot := i)
    t.free_at;
  let slot = !slot in
  (* Run-to-completion invariant: every earlier booking has been
     finalized by its release, so the earliest-free instant is exact. *)
  assert (Float.is_finite t.free_at.(slot));
  let start = Float.max now t.free_at.(slot) in
  let wait_s = start -. now in
  let queue_depth = List.length t.pending_starts in
  if wait_s > 0.0 && queue_depth >= t.cfg.queue_cap then begin
    t.rejects <- t.rejects + 1;
    Session.Rejected { server = t.id; queue_depth }
  end
  else begin
    let occupancy = running t ~at:start + 1 in
    if wait_s > 0.0 then begin
      t.queued <- t.queued + 1;
      t.pending_starts <- start :: t.pending_starts
    end;
    t.admits <- t.admits + 1;
    if occupancy > t.peak_occupancy then t.peak_occupancy <- occupancy;
    t.free_at.(slot) <- infinity;   (* held; finalized by [release] *)
    Session.Admitted
      {
        server = t.id;
        wait_s;
        occupancy;
        slot;
        queue_depth;
        r_scale = r_scale t.cfg ~occupancy;
        bw_scale = bw_scale t.cfg ~occupancy;
      }
  end

let release t ~now ~slot =
  if slot < 0 || slot >= Array.length t.free_at then
    invalid_arg "Server_load.release: bad slot";
  t.free_at.(slot) <- now

type stats = {
  st_admits : int;
  st_queued : int;
  st_rejects : int;
  st_peak_occupancy : int;
}

let stats t =
  {
    st_admits = t.admits;
    st_queued = t.queued;
    st_rejects = t.rejects;
    st_peak_occupancy = t.peak_occupancy;
  }
