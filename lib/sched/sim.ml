(* Deterministic discrete-event simulation of N mobile clients against
   a pool of offload servers.

   Each client is a complete offloading session (its own mobile host,
   link, battery and clock, starting at a configurable global offset);
   the shared state is the server pool — K independent Server_load
   machines fronted by a routing policy (Pool).  A session only
   touches shared state at three points — the load query behind a
   dynamic-estimation decision, the admission request, the slot
   release — so the simulation suspends a client exactly there, with
   the client's *global* time (start offset + session clock), and
   always resumes the suspended client with the smallest global time
   (ties broken by client id, then arrival order).  Shared state is
   therefore read and written in global-time order: a conservative
   discrete-event simulation.

   Suspension is an OCaml effect: the per-client server handle
   performs [Sync g] before (load, request) or after (release)
   touching shared state.  The effect handler does *not* resume the
   next client itself — it pushes the captured continuation into a
   binary-heap event queue (Event_queue, O(log n) per operation) and
   returns, unwinding to a flat driver loop that pops and runs one
   continuation at a time.  Native stack depth therefore stays O(1) in
   the fleet size where the old nested run_next scheduler grew a stack
   frame per suspended client — the difference between 8 clients and
   10^4.

   Between suspension points a client runs to completion — in
   particular an admitted offload runs all the way to its release
   (finalizing the slot's exact free instant on its server) before any
   later-arriving request is examined, which is what lets Server_load
   compute FIFO waits from exact release times instead of hold
   estimates.

   Offload-span latencies stream into an Obs.Hist as sessions run, so
   fleet-scale sweeps never materialize per-event lists; full
   per-client traces (Ring buffers) are kept only while
   [s_record_events] is on — the default for tests and telemetry, off
   for 10^4-client benches.

   Everything is deterministic: same client mix, same stagger, same
   policy, same fault seeds — byte-identical trace streams and
   rendered tables. *)

module Link = No_netsim.Link
module Session = No_runtime.Session
module Local_run = No_runtime.Local_run
module Registry = No_workloads.Registry
module Compiler = Native_offloader.Compiler
module Experiment = Native_offloader.Experiment
module Trace = No_trace.Trace
module Fault_plan = No_fault.Plan
module Table = No_report.Table
module Hist = No_obs.Hist

type client = {
  cl_id : int;
  cl_workload : string;            (* registry entry name *)
  cl_start_s : float;              (* global arrival offset *)
  cl_faults : Fault_plan.t option; (* per-client fault schedule *)
}

(* Which console input each session replays.  Profile inputs are the
   small training runs — cheap enough for tests and CI sweeps; Eval
   replays the paper's evaluation inputs. *)
type scale = Profile | Eval

type config = {
  s_load : Server_load.config;     (* every pool member's config *)
  s_servers : int;                 (* pool size K *)
  s_members : Server_load.config array option;
                                   (* heterogeneous pool: one config per
                                      member, overriding s_load/s_servers *)
  s_policy : Pool.policy;          (* placement policy *)
  s_schedule : Pool.maintenance list; (* static member down windows *)
  s_migrate : bool;                (* sessions checkpoint + migrate on a
                                      lost member; false = rollback and
                                      replay locally (the old behaviour) *)
  s_link : Link.t;
  s_scale : scale;
  s_record_events : bool;          (* keep full per-client traces *)
  s_global_sink : Trace.sink option;
                                   (* extra fleet-wide sink fed every
                                      client's events on the *global*
                                      clock (cl_start_s added) as they
                                      stream — telemetry without rings *)
  s_sampler : Trace.Sampler.t option;
                                   (* tail-based sampler: each client
                                      streams into its own per-client
                                      view; [run] flushes trailing
                                      tasks before returning *)
}

let default_config =
  {
    s_load = Server_load.default;
    s_servers = 1;
    s_members = None;
    s_policy = Pool.Round_robin;
    s_schedule = [];
    s_migrate = true;
    s_link = Link.fast_wifi;
    s_scale = Profile;
    s_record_events = true;
    s_global_sink = None;
    s_sampler = None;
  }

let make_clients ?(stagger_s = 0.05) ?faults ~workloads ~count () =
  if workloads = [] then invalid_arg "Sim.make_clients: no workloads";
  if count < 1 then invalid_arg "Sim.make_clients: count < 1";
  let mix = Array.of_list workloads in
  let m = Array.length mix in
  List.init count (fun i ->
      {
        cl_id = i;
        cl_workload = mix.(i mod m);
        cl_start_s = stagger_s *. float_of_int i;
        cl_faults =
          Option.map
            (fun plan ->
              Fault_plan.with_seed plan
                (Int64.add plan.Fault_plan.seed (Int64.of_int i)))
            faults;
      })

type client_result = {
  cr_id : int;
  cr_workload : string;
  cr_start_s : float;
  cr_report : Session.report;
  cr_local_s : float;    (* the same program + input run locally *)
  cr_speedup : float;    (* local time / offloaded-session time *)
  cr_end_s : float;      (* global completion instant *)
  cr_events : (float * Trace.event) list;  (* session-local timestamps;
                                              [] unless recording *)
}

type result = {
  r_clients : client_result list;
  r_policy : Pool.policy;
  r_makespan_s : float;
  r_throughput : float;            (* clients completed / makespan *)
  r_stats : Server_load.stats;     (* pool totals *)
  r_server_stats : Server_load.stats array;  (* per member, by id *)
  r_latency : Hist.t;              (* streamed offload-span latencies *)
  r_events : int;                  (* trace events emitted fleet-wide *)
}

(* {1 The scheduler} *)

type _ Effect.t += Sync : float -> unit Effect.t

let run ?(config = default_config) (clients : client list) : result =
  if clients = [] then invalid_arg "Sim.run: no clients";
  let pool =
    match config.s_members with
    | Some members ->
      Pool.create_hetero ~policy:config.s_policy ~schedule:config.s_schedule
        members
    | None ->
      Pool.create ~policy:config.s_policy ~schedule:config.s_schedule
        ~servers:config.s_servers config.s_load
  in
  (* Can any session lose its server mid-offload?  A maintenance
     schedule can drain anyone; a fault plan on any client can crash a
     member and quarantine it under everyone.  If so, every session
     must snapshot at offload start. *)
  let volatile =
    Pool.volatile pool
    || List.exists (fun cl -> cl.cl_faults <> None) clients
  in
  (* Suspended-client continuations, keyed (global time, client id,
     arrival order) in a binary heap — O(log n) per suspension. *)
  let queue : (unit -> unit) Event_queue.t = Event_queue.create () in
  let sync time = Effect.perform (Sync time) in
  (* The session's only view of the pool: every closure converts the
     session clock to global time and suspends, so shared state is
     touched in global order.  The release records the slot's free
     instant *before* suspending — by the time any later request runs,
     the booking is final. *)
  let handle_of (cl : client) : Session.server_handle =
    let glob now = cl.cl_start_s +. now in
    {
      Session.sh_load =
        (fun ~now ->
          sync (glob now);
          Pool.load pool ~client:cl.cl_id ~now:(glob now));
      Session.sh_request =
        (fun ~now ~target ->
          sync (glob now);
          Pool.request pool ~client:cl.cl_id ~now:(glob now) ~target);
      Session.sh_release =
        (fun ~now ~server ~slot ->
          Pool.release pool ~server ~now:(glob now) ~slot;
          sync (glob now));
      Session.sh_volatile = volatile;
      (* Health probe at every exchange.  No [sync]: it runs between
         suspension points, where the client must run to completion —
         and needs none, because schedule health is a pure function of
         time and quarantines only ever tighten. *)
      Session.sh_interrupt =
        (fun ~now ~server -> Pool.down_reason pool ~server ~now:(glob now));
      (* Re-admission for a checkpointed task.  A crash observation
         takes the member out for the rest of the run — every other
         client discovers that at its next exchange and migrates off
         it too.  Scheduled drains are not quarantined: the member
         comes back when its window closes. *)
      Session.sh_migrate =
        (fun ~now ~target ~from_server ~reason ->
          sync (glob now);
          let crashed =
            (* the session's loss reasons: "...: server crashed" from
               the fault oracle vs a drain reason from the schedule *)
            let n = String.length reason in
            let needle = "crashed" in
            let nl = String.length needle in
            let rec scan i =
              i + nl <= n
              && (String.sub reason i nl = needle || scan (i + 1))
            in
            scan 0
          in
          if crashed then
            Pool.quarantine pool ~server:from_server ~reason:"crashed";
          Pool.request_excluding pool ~client:cl.cl_id ~now:(glob now)
            ~target ~exclude:from_server);
    }
  in
  (* Compile once per distinct workload; the local baseline shares the
     compiled program and the session's input. *)
  let compiled_cache = Hashtbl.create 4 in
  let compiled_of name =
    match Hashtbl.find_opt compiled_cache name with
    | Some c -> c
    | None ->
      let entry =
        match Registry.by_name name with
        | Some e -> e
        | None -> invalid_arg ("Sim.run: unknown workload " ^ name)
      in
      let compiled =
        Compiler.compile ~profile_script:entry.Registry.e_profile_script
          ~profile_files:entry.Registry.e_files
          ~eval_scale:entry.Registry.e_eval_scale
          (entry.Registry.e_build ())
      in
      Hashtbl.replace compiled_cache name (entry, compiled);
      (entry, compiled)
  in
  let script_of (entry : Registry.entry) =
    match config.s_scale with
    | Profile -> entry.Registry.e_profile_script
    | Eval -> entry.Registry.e_eval_script
  in
  let local_cache = Hashtbl.create 4 in
  let local_of name =
    match Hashtbl.find_opt local_cache name with
    | Some s -> s
    | None ->
      let entry, compiled = compiled_of name in
      let r =
        Local_run.run ~script:(script_of entry) ~files:entry.Registry.e_files
          compiled.Compiler.c_original
      in
      Hashtbl.replace local_cache name r.Local_run.lr_total_s;
      r.Local_run.lr_total_s
  in
  let clients = Array.of_list clients in
  let n = Array.length clients in
  Array.iter
    (fun cl ->
      ignore (compiled_of cl.cl_workload);
      ignore (local_of cl.cl_workload))
    clients;
  (* Offload latencies stream into one histogram as sessions emit
     Offload_end; bucket counts are order-independent, so the
     interleaving cannot perturb the result. *)
  let latency = Hist.create () in
  let event_count = ref 0 in
  let stream_sink =
    {
      Trace.emit =
        (fun ~ts:_ ev ->
          incr event_count;
          match ev with
          | Trace.Offload_end { span_s; _ } -> Hist.add latency span_s
          | _ -> ());
      Trace.emit_row =
        (fun ~ts:_ row ->
          incr event_count;
          if row.Trace.Row.kind = Trace.Row.k_offload_end then
            Hist.add latency row.Trace.Row.f.(0));
    }
  in
  let results = Array.make n None in
  let client_main idx (cl : client) () =
    let entry, compiled = compiled_of cl.cl_workload in
    let ring =
      if config.s_record_events then Some (Trace.Ring.create ()) else None
    in
    let sinks =
      (match ring with None -> [] | Some r -> [ Trace.Ring.sink r ])
      @ [ stream_sink ]
      @ (match config.s_global_sink with
        | None -> []
        | Some global ->
          (* Re-stamp onto the global clock as events stream, so the
             fleet-wide consumer (SLO series, telemetry) never needs the
             per-client rings.  Rows are forwarded as rows — the wrapper
             only rewrites the timestamp. *)
          [ {
              Trace.emit =
                (fun ~ts ev -> global.Trace.emit ~ts:(cl.cl_start_s +. ts) ev);
              Trace.emit_row =
                (fun ~ts row ->
                  global.Trace.emit_row ~ts:(cl.cl_start_s +. ts) row);
            } ])
      @
      match config.s_sampler with
      | None -> []
      | Some sampler ->
        (* The sampler's per-client view does its own global-clock
           re-stamping from start_s. *)
        [ Trace.Sampler.client_sink sampler ~client:cl.cl_id
            ~start_s:cl.cl_start_s ]
    in
    let sink =
      match sinks with [ one ] -> one | many -> Trace.fan_out many
    in
    let cfg =
      { (Session.default_config ~link:config.s_link ()) with
        Session.trace = sink;
        Session.server_handle = Some (handle_of cl);
        Session.faults = cl.cl_faults;
        Session.migrate = config.s_migrate }
    in
    let session =
      Session.create ~config:cfg ~script:(script_of entry)
        ~files:entry.Registry.e_files compiled.Compiler.c_output
        ~seeds:compiled.Compiler.c_seeds
    in
    let report = Session.run session in
    (* Free this client's sampler buffer while the fleet still runs. *)
    (match config.s_sampler with
    | Some sampler -> Trace.Sampler.close_client sampler ~client:cl.cl_id
    | None -> ());
    results.(idx) <- Some (report, ring)
  in
  (* The flat driver.  The effect handler never resumes anyone: it
     pushes the continuation and unwinds, so the native stack holds at
     most one client at any instant regardless of fleet size. *)
  Array.iteri
    (fun idx cl ->
      Event_queue.push queue ~time:cl.cl_start_s ~id:cl.cl_id (fun () ->
          Effect.Deep.match_with (client_main idx cl) ()
            {
              Effect.Deep.retc = (fun () -> ());
              exnc = raise;
              effc =
                (fun (type a) (eff : a Effect.t) ->
                  match eff with
                  | Sync time ->
                    Some
                      (fun (k : (a, _) Effect.Deep.continuation) ->
                        Event_queue.push queue ~time ~id:cl.cl_id
                          (fun () -> Effect.Deep.continue k ()))
                  | _ -> None);
            }))
    clients;
  let rec drive () =
    match Event_queue.pop queue with
    | None -> ()
    | Some thunk ->
      thunk ();
      drive ()
  in
  drive ();
  (* Decide the fate of every client's trailing in-flight task before
     anyone reads kept counts. *)
  Option.iter Trace.Sampler.flush config.s_sampler;
  let client_results =
    Array.to_list
      (Array.mapi
         (fun idx cl ->
           match results.(idx) with
           | None -> failwith "Sim.run: client never completed"
           | Some (report, ring) ->
             let local_s = local_of cl.cl_workload in
             {
               cr_id = cl.cl_id;
               cr_workload = cl.cl_workload;
               cr_start_s = cl.cl_start_s;
               cr_report = report;
               cr_local_s = local_s;
               cr_speedup = local_s /. report.Session.rep_total_s;
               cr_end_s = cl.cl_start_s +. report.Session.rep_total_s;
               cr_events =
                 (match ring with
                 | None -> []
                 | Some r -> Trace.Ring.events r);
             })
         clients)
  in
  let makespan =
    List.fold_left (fun acc c -> Float.max acc c.cr_end_s) 0.0 client_results
  in
  {
    r_clients = client_results;
    r_policy = config.s_policy;
    r_makespan_s = makespan;
    r_throughput = float_of_int n /. makespan;
    r_stats = Pool.total_stats pool;
    r_server_stats = Pool.stats pool;
    r_latency = latency;
    r_events = !event_count;
  }

(* {1 Derived views} *)

let geomean_speedup result =
  Experiment.geomean (List.map (fun c -> c.cr_speedup) result.r_clients)

(* Clients the scheduler pushed back to local execution: at least one
   task refused by the load-aware estimator or bounced off the full
   admission queue. *)
let flipped_local result =
  List.length
    (List.filter
       (fun c ->
         c.cr_report.Session.rep_refusals > 0
         || c.cr_report.Session.rep_rejects > 0)
       result.r_clients)

(* Fleet-wide recovery totals: checkpoints cut, migrations shipped /
   completed, and the offloads that still fell back to local replay. *)
let migration_totals result =
  List.fold_left
    (fun (ck, started, done_, fb) c ->
      ( ck + c.cr_report.Session.rep_checkpoints,
        started + c.cr_report.Session.rep_migrations,
        done_ + c.cr_report.Session.rep_migrations_done,
        fb + c.cr_report.Session.rep_fallbacks ))
    (0, 0, 0, 0) result.r_clients

(* One merged fleet-wide stream on the global clock: every client's
   session-local trace shifted by its start instant, then stably
   sorted by timestamp (client order breaks ties, so seeded reruns
   interleave identically).  This is what the telemetry layer windows
   over for multi-client runs.  Empty unless the run recorded events. *)
let global_events result =
  List.concat_map
    (fun c ->
      List.map (fun (ts, ev) -> (c.cr_start_s +. ts, ev)) c.cr_events)
    result.r_clients
  |> List.stable_sort (fun (a, _) (b, _) -> Float.compare a b)

let latency_hist result = result.r_latency

(* Histogram-backed nearest-rank percentile of the streamed offload
   spans; 0.0 when no offload completed (the old empty-list
   behaviour). *)
let latency_percentile result ~p =
  if Hist.count result.r_latency = 0 then 0.0
  else Hist.quantile result.r_latency (p /. 100.0)

(* Global-time [admit, release] intervals of admitted offloads, tagged
   with the admitting server — on both the success and the fallback
   path the release coincides with the Offload_end stamp, so at no
   instant may more than [slots] intervals of one server overlap (the
   scheduler tests sweep this invariant per server).  Needs a run with
   [s_record_events] on. *)
let admitted_intervals result =
  List.concat_map
    (fun c ->
      let rec scan acc pending = function
        | [] -> List.rev acc
        | (ts, Trace.Admit { server; _ }) :: rest ->
          scan acc (Some (server, ts)) rest
        | (ts, Trace.Offload_end _) :: rest -> (
          match pending with
          | Some (server, t0) ->
            scan
              ((server, c.cr_start_s +. t0, c.cr_start_s +. ts) :: acc)
              None rest
          | None -> scan acc None rest)
        | _ :: rest -> scan acc pending rest
      in
      scan [] None c.cr_events)
    result.r_clients

(* {1 Migration scenarios}

   The canonical fleet situations the checkpoint/migration machinery
   exists for, shared by the CLI ([serve --migrate]) and the bench
   lane.  All constants are simulated seconds; every scenario is
   deterministic, so seeded reruns render byte-identically. *)

type scenario = {
  sc_name : string;
  sc_title : string;       (* one-line description for reports *)
  sc_config : config;
  sc_clients : client list;
}

let scenario_names = [ "failover"; "maintenance"; "rebalance" ]

let scenario ?(policy = Pool.Round_robin) ?(migrate = true) name =
  let base =
    { default_config with s_policy = policy; s_migrate = migrate }
  in
  match name with
  | "failover" ->
    (* Mid-flight crash with healthy siblings: client 0's granting
       member dies partway through its offload loop; the checkpoint
       ships to another member and the task finishes there.  Other
       clients discover the quarantined member at their next exchange
       and migrate off it too. *)
    let crash =
      { Fault_plan.empty with Fault_plan.crash_at_s = Some 0.05 }
    in
    let clients =
      List.map
        (fun cl ->
          if cl.cl_id = 0 then { cl with cl_faults = Some crash } else cl)
        (make_clients ~stagger_s:0.02
           ~workloads:[ "164.gzip"; "429.mcf" ] ~count:4 ())
    in
    {
      sc_name = name;
      sc_title = "server crash mid-offload, failover to a healthy member";
      sc_config = { base with s_servers = 3 };
      sc_clients = clients;
    }
  | "maintenance" ->
    (* Rolling maintenance: each member of a three-server pool is
       drained for a window in turn.  Offloads running on the drained
       member checkpoint and migrate; the member returns when its
       window closes. *)
    let schedule =
      [
        { Pool.mw_server = 0; mw_from_s = 0.05; mw_until_s = 0.45;
          mw_reason = "maintenance" };
        { Pool.mw_server = 1; mw_from_s = 0.45; mw_until_s = 0.85;
          mw_reason = "maintenance" };
        { Pool.mw_server = 2; mw_from_s = 0.85; mw_until_s = 1.25;
          mw_reason = "maintenance" };
      ]
    in
    {
      sc_name = name;
      sc_title = "rolling maintenance drains each pool member in turn";
      sc_config = { base with s_servers = 3; s_schedule = schedule };
      sc_clients =
        make_clients ~stagger_s:0.02
          ~workloads:[ "164.gzip"; "429.mcf" ] ~count:6 ();
    }
  | "rebalance" ->
    (* Cost-driven rebalancing on a heterogeneous pool: the expensive
       fast member (2x speed grade) is drained mid-run; tasks running
       on it migrate to the cheap baseline members. *)
    let members =
      [|
        { Server_load.default with Server_load.r_factor = 2.0 };
        Server_load.default;
        Server_load.default;
      |]
    in
    let schedule =
      [
        { Pool.mw_server = 0; mw_from_s = 0.06; mw_until_s = 1.0e9;
          mw_reason = "rebalance" };
      ]
    in
    {
      sc_name = name;
      sc_title =
        "cost rebalancing drains the expensive fast member of a \
         heterogeneous pool";
      sc_config =
        { base with
          s_members = Some members;
          s_policy =
            (* route by load so the fast member actually carries work
               before the drain *)
            (match policy with Pool.Round_robin -> Pool.Least_loaded | p -> p);
          s_schedule = schedule };
      sc_clients =
        make_clients ~stagger_s:0.02
          ~workloads:[ "164.gzip"; "429.mcf" ] ~count:6 ();
    }
  | _ ->
    invalid_arg
      (Printf.sprintf "Sim.scenario: unknown scenario %S (expected %s)" name
         (String.concat ", " scenario_names))

(* {1 Rendering} *)

let render ?(title = "multi-client schedule") result : string =
  let tbl =
    Table.create ~title
      [ "client"; "workload"; "start s"; "offloads"; "refusals"; "queued";
        "rejects"; "wait s"; "total s"; "speedup" ]
  in
  List.iter
    (fun c ->
      Table.add_row tbl
        [
          Table.cell_i c.cr_id;
          c.cr_workload;
          Table.cell_f ~digits:3 c.cr_start_s;
          Table.cell_i c.cr_report.Session.rep_offloads;
          Table.cell_i c.cr_report.Session.rep_refusals;
          Table.cell_i c.cr_report.Session.rep_queued;
          Table.cell_i c.cr_report.Session.rep_rejects;
          Table.cell_f ~digits:4 c.cr_report.Session.rep_queue_wait_s;
          Table.cell_f ~digits:4 c.cr_report.Session.rep_total_s;
          Table.cell_f ~digits:3 c.cr_speedup;
        ])
    result.r_clients;
  let servers =
    let tbl =
      Table.create ~title:"server pool"
        [ "server"; "policy"; "admits"; "queued"; "rejects"; "peak occ" ]
    in
    Array.iteri
      (fun id (st : Server_load.stats) ->
        Table.add_row tbl
          [
            Table.cell_i id;
            Pool.policy_to_string result.r_policy;
            Table.cell_i st.Server_load.st_admits;
            Table.cell_i st.Server_load.st_queued;
            Table.cell_i st.Server_load.st_rejects;
            Table.cell_i st.Server_load.st_peak_occupancy;
          ])
      result.r_server_stats;
    Table.render tbl
  in
  let st = result.r_stats in
  let base =
    Printf.sprintf
      "%s\n\
       geomean speedup %.3f | makespan %.4f s | throughput %.3f clients/s\n\
       pool (%d server%s, %s): %d admits, %d queued, %d rejects, peak \
       occupancy %d\n\
       %s\n\
       offload latency p50 %.4f s, p95 %.4f s, p99 %.4f s"
      (Table.render tbl) (geomean_speedup result) result.r_makespan_s
      result.r_throughput
      (Array.length result.r_server_stats)
      (if Array.length result.r_server_stats = 1 then "" else "s")
      (Pool.policy_to_string result.r_policy)
      st.Server_load.st_admits st.Server_load.st_queued
      st.Server_load.st_rejects st.Server_load.st_peak_occupancy servers
      (latency_percentile result ~p:50.0)
      (latency_percentile result ~p:95.0)
      (latency_percentile result ~p:99.0)
  in
  (* Recovery line only when something was recovered — a clean run
     renders byte-identically to the pre-migration scheduler. *)
  match migration_totals result with
  | 0, _, _, 0 -> base
  | checkpoints, started, completed, fallbacks ->
    Printf.sprintf
      "%s\nrecovery: %d checkpoint%s, %d migration%s started, %d completed, \
       %d local replay%s"
      base checkpoints
      (if checkpoints = 1 then "" else "s")
      started
      (if started = 1 then "" else "s")
      completed fallbacks
      (if fallbacks = 1 then "" else "s")
