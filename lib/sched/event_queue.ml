(* Array-backed binary min-heap keyed (time, id, seq) — the
   continuation queue of the discrete-event core.

   The sorted-list queue the first multi-client simulator used costs
   O(n) per insert; at fleet scale (10^4 suspended clients, several
   suspensions each) that is the difference between milliseconds and
   minutes.  This heap gives O(log n) push/pop with the exact total
   order the simulator's determinism contract needs: earliest time
   first, ties broken by the owning client's id, then by a
   monotonically increasing sequence number assigned at push — so two
   events of one client at one instant pop in arrival order, and a
   seeded rerun pops byte-identically.

   Entries are stored in three parallel arrays (keys unboxed as a
   float array plus two int arrays) so sifting moves scalars, not
   tuples — no per-push allocation beyond amortized growth. *)

type 'a t = {
  mutable time : float array;   (* primary key *)
  mutable id : int array;       (* first tie-break: client id *)
  mutable seq : int array;      (* second tie-break: push order *)
  mutable payload : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let create () =
  {
    time = [||];
    id = [||];
    seq = [||];
    payload = [||];
    size = 0;
    next_seq = 0;
  }

let length t = t.size
let is_empty t = t.size = 0

(* Strict key order: (time, id, seq) lexicographic. *)
let before t i j =
  let ti = t.time.(i) and tj = t.time.(j) in
  if ti < tj then true
  else if ti > tj then false
  else if t.id.(i) < t.id.(j) then true
  else if t.id.(i) > t.id.(j) then false
  else t.seq.(i) < t.seq.(j)

let swap t i j =
  let ft = t.time.(i) in
  t.time.(i) <- t.time.(j);
  t.time.(j) <- ft;
  let d = t.id.(i) in
  t.id.(i) <- t.id.(j);
  t.id.(j) <- d;
  let s = t.seq.(i) in
  t.seq.(i) <- t.seq.(j);
  t.seq.(j) <- s;
  let p = t.payload.(i) in
  t.payload.(i) <- t.payload.(j);
  t.payload.(j) <- p

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 in
  if l < t.size then begin
    let r = l + 1 in
    let smallest = if r < t.size && before t r l then r else l in
    if before t smallest i then begin
      swap t i smallest;
      sift_down t smallest
    end
  end

let grow t dummy =
  let cap = Array.length t.time in
  let cap' = if cap = 0 then 16 else cap * 2 in
  let copy old mk =
    let fresh = mk cap' in
    Array.blit old 0 fresh 0 t.size;
    fresh
  in
  t.time <- copy t.time (fun n -> Array.make n 0.0);
  t.id <- copy t.id (fun n -> Array.make n 0);
  t.seq <- copy t.seq (fun n -> Array.make n 0);
  t.payload <- copy t.payload (fun n -> Array.make n dummy)

module Selfprof = No_selfprof.Selfprof

let push t ~time ~id payload =
  Selfprof.enter Eq_push;
  if t.size = Array.length t.time then grow t payload;
  let i = t.size in
  t.time.(i) <- time;
  t.id.(i) <- id;
  t.seq.(i) <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  t.payload.(i) <- payload;
  t.size <- t.size + 1;
  sift_up t i;
  Selfprof.leave Eq_push

let pop t =
  Selfprof.enter Eq_pop;
  let out =
    if t.size = 0 then None
    else begin
      let out = t.payload.(0) in
      let last = t.size - 1 in
      t.size <- last;
      if last > 0 then begin
        t.time.(0) <- t.time.(last);
        t.id.(0) <- t.id.(last);
        t.seq.(0) <- t.seq.(last);
        t.payload.(0) <- t.payload.(last);
        sift_down t 0
      end;
      Some out
    end
  in
  Selfprof.leave Eq_pop;
  out

let peek_time t = if t.size = 0 then None else Some t.time.(0)
