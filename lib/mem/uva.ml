(* The unified virtual address heap allocator.

   The heap-allocation-replacement pass (Section 3.2) rewrites every
   malloc/free site to u_malloc/u_free, which the runtime services
   from this allocator.  The allocator is *shared metadata* between
   the two devices — both partitions must agree on where each object
   lives, so the runtime keeps one allocator per offloading session
   (the paper's UVA manager).

   First-fit free list with address-ordered coalescing; 16-byte
   alignment; allocation sizes remembered for u_free. *)

type range = { addr : int; size : int }

type t = {
  base : int;
  limit : int;
  mutable brk : int;                    (* end of ever-used area *)
  mutable free_list : range list;       (* address-ordered, coalesced *)
  sizes : (int, int) Hashtbl.t;         (* live allocation sizes *)
  mutable live_bytes : int;
  mutable total_allocs : int;
}

exception Out_of_memory of int         (* requested size *)
exception Invalid_free of int          (* address *)

let alignment = 16

let create ?(base = Region.heap_base) ?(limit = Region.heap_limit) () =
  if base land (alignment - 1) <> 0 then invalid_arg "Uva.create: misaligned";
  {
    base;
    limit;
    brk = base;
    free_list = [];
    sizes = Hashtbl.create 256;
    live_bytes = 0;
    total_allocs = 0;
  }

let round_up size = (max size 1 + alignment - 1) / alignment * alignment

(* Remove the first free range that fits; return its address. *)
let take_from_free_list t size =
  let rec go acc ranges =
    match ranges with
    | [] -> None
    | r :: rest ->
      if r.size >= size then begin
        let remainder =
          if r.size > size then [ { addr = r.addr + size; size = r.size - size } ]
          else []
        in
        t.free_list <- List.rev_append acc (remainder @ rest);
        Some r.addr
      end
      else go (r :: acc) rest
  in
  go [] t.free_list

let alloc t size =
  let size = round_up size in
  let addr =
    match take_from_free_list t size with
    | Some addr -> addr
    | None ->
      let addr = t.brk in
      if addr + size > t.limit then raise (Out_of_memory size);
      t.brk <- addr + size;
      addr
  in
  Hashtbl.replace t.sizes addr size;
  t.live_bytes <- t.live_bytes + size;
  t.total_allocs <- t.total_allocs + 1;
  addr

(* Insert a range into the address-ordered free list, coalescing with
   neighbours. *)
let insert_free t range =
  let rec go acc ranges =
    match ranges with
    | [] -> List.rev (range :: acc)
    | r :: rest ->
      if range.addr < r.addr then List.rev_append acc (range :: r :: rest)
      else go (r :: acc) rest
  in
  let sorted = go [] t.free_list in
  let coalesced =
    List.fold_left
      (fun acc r ->
        match acc with
        | prev :: rest when prev.addr + prev.size = r.addr ->
          { prev with size = prev.size + r.size } :: rest
        | _ -> r :: acc)
      [] sorted
  in
  t.free_list <- List.rev coalesced

let dealloc t addr =
  match Hashtbl.find_opt t.sizes addr with
  | None -> raise (Invalid_free addr)
  | Some size ->
    Hashtbl.remove t.sizes addr;
    t.live_bytes <- t.live_bytes - size;
    insert_free t { addr; size }

let live_bytes t = t.live_bytes
let total_allocations t = t.total_allocs
let high_water_mark t = t.brk - t.base

let size_of_allocation t addr = Hashtbl.find_opt t.sizes addr

(* Snapshots, for offload recovery: allocator metadata is shared
   between the devices, so a rolled-back offload must also forget any
   u_malloc/u_free the server performed before it died. *)

type snapshot = {
  s_brk : int;
  s_free_list : range list;
  s_sizes : (int * int) list;
  s_live_bytes : int;
  s_total_allocs : int;
}

let snapshot t =
  {
    s_brk = t.brk;
    s_free_list = t.free_list;
    s_sizes = Hashtbl.fold (fun addr size acc -> (addr, size) :: acc) t.sizes [];
    s_live_bytes = t.live_bytes;
    s_total_allocs = t.total_allocs;
  }

let restore t s =
  t.brk <- s.s_brk;
  t.free_list <- s.s_free_list;
  Hashtbl.reset t.sizes;
  List.iter (fun (addr, size) -> Hashtbl.replace t.sizes addr size) s.s_sizes;
  t.live_bytes <- s.s_live_bytes;
  t.total_allocs <- s.s_total_allocs

(* Every page the heap has ever handed out, for prefetch decisions. *)
let used_pages t =
  let first = Region.page_of_addr t.base in
  let last = Region.page_of_addr (max t.base (t.brk - 1)) in
  if t.brk = t.base then []
  else List.init (last - first + 1) (fun i -> first + i)
