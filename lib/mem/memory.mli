(** A device's view of the UVA space: physical pages plus a page
    table.

    The mobile device is the {e home} of every page — touching a page
    it lacks materializes zeroes, as an OS hands out fresh frames.
    The server is {e remote}: touching a non-resident page invokes the
    fault hook, which the offloading runtime uses to implement
    copy-on-demand (paper §4, Figure 5).  Server writes mark pages
    dirty so finalization sends only dirty pages back. *)

(** Unhandled fault, with the page number. *)
exception Page_fault of int

(** Address and reason (null dereference, unmapped region). *)
exception Bad_access of int * string

type role = Home | Remote

type t = {
  role : role;
  pages : (int, Bytes.t) Hashtbl.t;
  dirty : (int, unit) Hashtbl.t;
  mutable on_fault : (t -> int -> unit) option;
      (** must install the missing page or raise *)
  mutable track_dirty : bool;
  mutable on_touch : (int -> unit) option;
      (** profiler hook, called with the page of every access *)
  mutable fault_count : int;
}

val create : role -> t

val install_page : t -> int -> Bytes.t -> unit
(** Make [page] resident with the given contents (must be exactly one
    page). *)

val has_page : t -> int -> bool
val drop_page : t -> int -> unit
val drop_all_pages : t -> unit

val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit
val read_block : t -> int -> int -> Bytes.t
val write_block : t -> int -> Bytes.t -> unit

val resident_pages : t -> int list
val dirty_pages : t -> int list
val clear_dirty : t -> unit
val resident_count : t -> int
val resident_bytes : t -> int

val page_copy : t -> int -> Bytes.t
(** Copy of a page's current contents, for transmission. *)

val set_touch_callback : t -> (int -> unit) option -> unit

type snapshot
(** Deep copy of resident pages plus dirty/tracking state. *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Replace the device's pages with the snapshot's (deep copies both
    ways) — offload recovery rolls the mobile view back to the
    offload-start state before replaying locally. *)
