(** A device's view of the UVA space: physical pages plus a page
    table.

    The mobile device is the {e home} of every page — touching a page
    it lacks materializes zeroes, as an OS hands out fresh frames.
    The server is {e remote}: touching a non-resident page invokes the
    fault hook, which the offloading runtime uses to implement
    copy-on-demand (paper §4, Figure 5).  Server writes mark pages
    dirty so finalization sends only dirty pages back.

    Pages are frames in one flat [Bytes.t] slab (see the implementation
    header): fault service, block transfer and snapshots are blits, and
    scalar access uses a one-entry TLB plus unaligned word reads. *)

(** Unhandled fault, with the page number. *)
exception Page_fault of int

(** Address and reason (null dereference, unmapped region). *)
exception Bad_access of int * string

type role = Home | Remote

type t = {
  role : role;
  mutable slab : Bytes.t;  (** frame store — internal, do not poke *)
  mutable frames_used : int;
  mutable free_frames : int list;
  table : (int, int) Hashtbl.t;  (** page number -> frame index *)
  dirty : (int, unit) Hashtbl.t;
  mutable tlb_page : int;
  mutable tlb_off : int;
  mutable dirty_cached : int;
  mutable on_fault : (t -> int -> unit) option;
      (** must install the missing page or raise *)
  mutable track_dirty : bool;
  mutable on_touch : (int -> unit) option;
      (** profiler hook, called with the page of every access *)
  mutable fault_count : int;
}

val create : role -> t

val install_page : t -> int -> Bytes.t -> unit
(** Make [page] resident with the given contents (must be exactly one
    page). *)

val has_page : t -> int -> bool
val drop_page : t -> int -> unit
val drop_all_pages : t -> unit

val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit

val load_le : t -> int -> int -> int64
(** [load_le t addr nbytes] reads an [nbytes]-wide little-endian
    scalar ([nbytes] ≤ 8; the result's high bits are zero).
    Equivalent to [Scalar.load_int Little] over [read_byte] — same
    faults, same touch callbacks — but a single word access on the
    slab when the word stays inside one page and no touch profiler is
    installed. *)

val store_le : t -> int -> int -> int64 -> unit
(** [store_le t addr nbytes v] writes the low [nbytes] bytes of [v]
    little-endian; the word-access twin of
    [Scalar.store_int Little]. *)

val load_base : t -> int -> int -> int
(** [load_base t addr nbytes] admits a direct slab access: the byte
    offset of the word in [slab] (after the same region check, TLB
    translation and fault service [load_le] performs), or [-1] when
    the access crosses a page or a touch profiler is installed and
    the caller must use [load_le].  Lets the interpreter read words
    without boxing an int64 across a function boundary. *)

val store_base : t -> int -> int -> int
(** Store twin of [load_base]; also marks the page dirty. *)

val read_block : t -> int -> int -> Bytes.t
val write_block : t -> int -> Bytes.t -> unit

val resident_pages : t -> int list
val dirty_pages : t -> int list
val clear_dirty : t -> unit
val resident_count : t -> int
val resident_bytes : t -> int

val page_copy : t -> int -> Bytes.t
(** Copy of a page's current contents, for transmission. *)

val set_touch_callback : t -> (int -> unit) option -> unit

type snapshot
(** Deep copy of resident pages plus dirty/tracking state. *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Replace the device's pages with the snapshot's (deep copies both
    ways) — offload recovery rolls the mobile view back to the
    offload-start state before replaying locally. *)
