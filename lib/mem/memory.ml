(* A device's view of the UVA space: physical pages plus a page table.

   The mobile device is the *home* of every page: touching a page it
   does not yet have simply materializes a zero page (the OS would hand
   it a fresh frame).  The server is *remote*: touching a page that is
   not resident raises a page fault, which the offloading runtime hooks
   to implement copy-on-demand (paper Section 4, Figure 5).  Writes on
   the server mark pages dirty so finalization can send only dirty
   pages back.

   Pages live in one flat [Bytes.t] slab of page-sized frames (grown by
   doubling, freed frames recycled through a free list) instead of one
   heap block per page: page-fault service, block transfer and snapshot
   capture are single blits over the slab, and scalar access goes
   through a one-entry TLB plus the stdlib's unaligned word primitives
   ([Bytes.get_int64_le] and friends) so the per-byte Hashtbl lookups
   disappear from the interpreter's hot path. *)

exception Page_fault of int            (* page number, unhandled *)
exception Bad_access of int * string   (* address, reason *)

type role = Home | Remote

type t = {
  role : role;
  mutable slab : Bytes.t;            (* frame store, [frames_used] frames *)
  mutable frames_used : int;
  mutable free_frames : int list;    (* recycled frame indices *)
  table : (int, int) Hashtbl.t;      (* page number -> frame index *)
  dirty : (int, unit) Hashtbl.t;
  mutable tlb_page : int;            (* last-translated page, -1 = none *)
  mutable tlb_off : int;             (* its frame's byte offset in [slab] *)
  mutable dirty_cached : int;        (* page already marked dirty, -1 = none *)
  mutable on_fault : (t -> int -> unit) option;
      (* must install the page (see [install_page]) or raise *)
  mutable track_dirty : bool;
  mutable on_touch : (int -> unit) option;
      (* profiler hook: called with the page of every access *)
  mutable fault_count : int;
}

(* Fleet runs create two memories per client, most touching a handful
   of pages — start tiny and double on demand (amortized ≤2x the
   resident bytes in total allocation). *)
let initial_frames = 4

let create role =
  {
    role;
    slab = Bytes.create (initial_frames * Region.page_size);
    frames_used = 0;
    free_frames = [];
    table = Hashtbl.create 1024;
    dirty = Hashtbl.create 64;
    tlb_page = -1;
    tlb_off = 0;
    dirty_cached = -1;
    track_dirty = false;
    on_fault = None;
    on_touch = None;
    fault_count = 0;
  }

(* Frame offsets are stable across growth: the old prefix is blitted
   into the larger slab, so a cached [tlb_off] stays valid. *)
let ensure_capacity t frames =
  let need = frames * Region.page_size in
  if Bytes.length t.slab < need then begin
    let cap = ref (Bytes.length t.slab) in
    while !cap < need do
      cap := !cap * 2
    done;
    let slab = Bytes.create !cap in
    Bytes.blit t.slab 0 slab 0 (t.frames_used * Region.page_size);
    t.slab <- slab
  end

let alloc_frame t =
  match t.free_frames with
  | f :: rest ->
    t.free_frames <- rest;
    f
  | [] ->
    ensure_capacity t (t.frames_used + 1);
    let f = t.frames_used in
    t.frames_used <- f + 1;
    f

let install_page t page bytes =
  if Bytes.length bytes <> Region.page_size then
    invalid_arg "Memory.install_page: wrong page size";
  let frame =
    match Hashtbl.find_opt t.table page with
    | Some f -> f
    | None ->
      let f = alloc_frame t in
      Hashtbl.replace t.table page f;
      f
  in
  Bytes.blit bytes 0 t.slab (frame * Region.page_size) Region.page_size

let has_page t page = Hashtbl.mem t.table page

let drop_page t page =
  (match Hashtbl.find_opt t.table page with
  | Some f ->
    Hashtbl.remove t.table page;
    t.free_frames <- f :: t.free_frames
  | None -> ());
  Hashtbl.remove t.dirty page;
  t.tlb_page <- -1;
  t.dirty_cached <- -1

let drop_all_pages t =
  Hashtbl.reset t.table;
  Hashtbl.reset t.dirty;
  t.frames_used <- 0;
  t.free_frames <- [];
  t.tlb_page <- -1;
  t.dirty_cached <- -1

(* Byte offset in [slab] of [page]'s frame, materializing (Home) or
   faulting (Remote) exactly as the per-page store did. *)
let frame_off t page =
  match Hashtbl.find_opt t.table page with
  | Some f -> f lsl Region.page_bits
  | None -> (
    match t.role with
    | Home ->
      let f = alloc_frame t in
      let off = f lsl Region.page_bits in
      Bytes.fill t.slab off Region.page_size '\000';
      Hashtbl.replace t.table page f;
      off
    | Remote -> (
      t.fault_count <- t.fault_count + 1;
      match t.on_fault with
      | Some handler -> (
        handler t page;
        match Hashtbl.find_opt t.table page with
        | Some f -> f lsl Region.page_bits
        | None -> raise (Page_fault page))
      | None -> raise (Page_fault page)))

let page_off t page =
  if page = t.tlb_page then t.tlb_off
  else begin
    let off = frame_off t page in
    t.tlb_page <- page;
    t.tlb_off <- off;
    off
  end

let check_mapped addr =
  match Region.region_of_addr addr with
  | Region.Null_guard ->
    raise (Bad_access (addr, "null pointer dereference"))
  | Region.Unmapped -> raise (Bad_access (addr, "unmapped address"))
  | Region.Globals | Region.Mobile_stack | Region.Server_stack
  | Region.Heap -> ()

let note_touched t addr =
  match t.on_touch with
  | Some callback -> callback (Region.page_of_addr addr)
  | None -> ()

let mark_dirty t page =
  if t.track_dirty && page <> t.dirty_cached then begin
    Hashtbl.replace t.dirty page ();
    t.dirty_cached <- page
  end

let read_byte t addr =
  check_mapped addr;
  note_touched t addr;
  let page = Region.page_of_addr addr in
  let off = page_off t page lor Region.offset_in_page addr in
  Char.code (Bytes.get t.slab off)

let write_byte t addr v =
  check_mapped addr;
  note_touched t addr;
  let page = Region.page_of_addr addr in
  let off = page_off t page lor Region.offset_in_page addr in
  Bytes.set t.slab off (Char.chr (v land 0xff));
  if t.track_dirty then mark_dirty t page

(* Word-width scalar access, the interpreter's hot path.

   The fast path applies when the access stays inside one page and no
   per-byte touch profiler is installed: one region check (regions are
   page-aligned, so every byte of a same-page word shares the first
   byte's region), one TLB translation, one unaligned word read or
   write on the slab, and at most one dirty mark.  Otherwise we fall
   back to [Scalar]'s byte loop over [read_byte]/[write_byte], which
   preserves the exact per-byte touch-callback and fault order.

   The byte order is always little-endian (the unified order);
   big-endian hosts go through the [Scalar] path in [Host]. *)

let page_limit = Region.page_size

let[@inline] no_touch t =
  match t.on_touch with
  | None -> true
  | Some _ -> false

let load_le t addr nbytes =
  let in_page = Region.offset_in_page addr in
  if no_touch t && in_page + nbytes <= page_limit then begin
    check_mapped addr;
    let base = page_off t (Region.page_of_addr addr) lor in_page in
    match nbytes with
    | 8 -> Bytes.get_int64_le t.slab base
    | 4 ->
      Int64.of_int
        (Bytes.get_uint16_le t.slab base
        lor (Bytes.get_uint16_le t.slab (base + 2) lsl 16))
    | 2 -> Int64.of_int (Bytes.get_uint16_le t.slab base)
    | 1 -> Int64.of_int (Bytes.get_uint8 t.slab base)
    | _ ->
      Scalar.load_int No_arch.Arch.Little
        ~read_byte:(fun a -> read_byte t a)
        addr nbytes
  end
  else
    Scalar.load_int No_arch.Arch.Little
      ~read_byte:(fun a -> read_byte t a)
      addr nbytes

let store_le t addr nbytes value =
  let in_page = Region.offset_in_page addr in
  if no_touch t && in_page + nbytes <= page_limit then begin
    check_mapped addr;
    let page = Region.page_of_addr addr in
    let base = page_off t page lor in_page in
    (match nbytes with
    | 8 -> Bytes.set_int64_le t.slab base value
    | 4 ->
      let v = Int64.to_int value in
      Bytes.set_uint16_le t.slab base (v land 0xffff);
      Bytes.set_uint16_le t.slab (base + 2) ((v lsr 16) land 0xffff)
    | 2 -> Bytes.set_uint16_le t.slab base (Int64.to_int value land 0xffff)
    | 1 -> Bytes.set_uint8 t.slab base (Int64.to_int value land 0xff)
    | _ ->
      Scalar.store_int No_arch.Arch.Little
        ~write_byte:(fun a b -> write_byte t a b)
        addr nbytes value);
    if t.track_dirty then mark_dirty t page
  end
  else
    Scalar.store_int No_arch.Arch.Little
      ~write_byte:(fun a b -> write_byte t a b)
      addr nbytes value

(* Fast-path admission for callers that access the slab directly (the
   interpreter's fused chains, which must not box an int64 across a
   function return): the byte offset of [addr]'s word in [slab] when
   the [nbytes] access stays inside one page and no touch profiler is
   installed — performing the same region check, TLB translation and
   fault service as [load_le]/[store_le] — or -1 when the caller must
   take the [load_le]/[store_le] slow path.  [store_base] also marks
   the page dirty (bookkeeping only; the order relative to the write
   is unobservable). *)

let load_base t addr nbytes =
  let in_page = Region.offset_in_page addr in
  if no_touch t && in_page + nbytes <= page_limit then begin
    check_mapped addr;
    page_off t (Region.page_of_addr addr) lor in_page
  end
  else -1

let store_base t addr nbytes =
  let in_page = Region.offset_in_page addr in
  if no_touch t && in_page + nbytes <= page_limit then begin
    check_mapped addr;
    let page = Region.page_of_addr addr in
    let base = page_off t page lor in_page in
    if t.track_dirty then mark_dirty t page;
    base
  end
  else -1

(* Bulk transfer helpers used by memcpy/memset builtins and by the
   communication manager.  With no touch profiler installed these run
   as one blit per page segment; segments are visited in ascending
   address order, matching the per-byte loop's fault order. *)

let read_block t addr len =
  let out = Bytes.create len in
  if no_touch t then begin
    let pos = ref 0 in
    while !pos < len do
      let a = addr + !pos in
      let in_page = Region.offset_in_page a in
      let seg = min (len - !pos) (page_limit - in_page) in
      check_mapped a;
      let base = page_off t (Region.page_of_addr a) lor in_page in
      Bytes.blit t.slab base out !pos seg;
      pos := !pos + seg
    done
  end
  else
    for i = 0 to len - 1 do
      Bytes.set out i (Char.chr (read_byte t (addr + i)))
    done;
  out

let write_block t addr data =
  let len = Bytes.length data in
  if no_touch t then begin
    let pos = ref 0 in
    while !pos < len do
      let a = addr + !pos in
      let in_page = Region.offset_in_page a in
      let seg = min (len - !pos) (page_limit - in_page) in
      check_mapped a;
      let page = Region.page_of_addr a in
      let base = page_off t page lor in_page in
      Bytes.blit data !pos t.slab base seg;
      if t.track_dirty then mark_dirty t page;
      pos := !pos + seg
    done
  end
  else
    Bytes.iteri (fun i c -> write_byte t (addr + i) (Char.code c)) data

(* Page-table style queries for the runtime. *)
let resident_pages t =
  Hashtbl.fold (fun page _ acc -> page :: acc) t.table []
  |> List.sort compare

let dirty_pages t =
  Hashtbl.fold (fun page _ acc -> page :: acc) t.dirty []
  |> List.sort compare

let clear_dirty t =
  Hashtbl.reset t.dirty;
  t.dirty_cached <- -1

let resident_count t = Hashtbl.length t.table
let resident_bytes t = Hashtbl.length t.table * Region.page_size

(* Copy of a page's current contents (for transmission). *)
let page_copy t page =
  let off = page_off t page in
  Bytes.sub t.slab off Region.page_size

(* Deep snapshot of resident pages and dirty/tracking state, for
   offload recovery.  The snapshot copies the used slab prefix in one
   blit (plus the page table) rather than one copy per page; restore
   blits it back, so neither side aliases live frames. *)

type snapshot = {
  s_slab : Bytes.t;                  (* used prefix of the slab *)
  s_table : (int * int) list;        (* page, frame *)
  s_frames_used : int;
  s_free_frames : int list;
  s_dirty : int list;
  s_track_dirty : bool;
}

let snapshot t =
  {
    s_slab = Bytes.sub t.slab 0 (t.frames_used * Region.page_size);
    s_table = Hashtbl.fold (fun page f acc -> (page, f) :: acc) t.table [];
    s_frames_used = t.frames_used;
    s_free_frames = t.free_frames;
    s_dirty = Hashtbl.fold (fun page () acc -> page :: acc) t.dirty [];
    s_track_dirty = t.track_dirty;
  }

let restore t s =
  ensure_capacity t s.s_frames_used;
  Bytes.blit s.s_slab 0 t.slab 0 (Bytes.length s.s_slab);
  Hashtbl.reset t.table;
  Hashtbl.reset t.dirty;
  List.iter (fun (page, f) -> Hashtbl.replace t.table page f) s.s_table;
  List.iter (fun page -> Hashtbl.replace t.dirty page ()) s.s_dirty;
  t.frames_used <- s.s_frames_used;
  t.free_frames <- s.s_free_frames;
  t.tlb_page <- -1;
  t.dirty_cached <- -1;
  t.track_dirty <- s.s_track_dirty

(* Profiler hook installation. *)
let set_touch_callback t callback = t.on_touch <- callback
