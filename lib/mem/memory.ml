(* A device's view of the UVA space: physical pages plus a page table.

   The mobile device is the *home* of every page: touching a page it
   does not yet have simply materializes a zero page (the OS would hand
   it a fresh frame).  The server is *remote*: touching a page that is
   not resident raises a page fault, which the offloading runtime hooks
   to implement copy-on-demand (paper Section 4, Figure 5).  Writes on
   the server mark pages dirty so finalization can send only dirty
   pages back. *)

exception Page_fault of int            (* page number, unhandled *)
exception Bad_access of int * string   (* address, reason *)

type role = Home | Remote

type t = {
  role : role;
  pages : (int, Bytes.t) Hashtbl.t;
  dirty : (int, unit) Hashtbl.t;
  mutable on_fault : (t -> int -> unit) option;
      (* must install the page (see [install_page]) or raise *)
  mutable track_dirty : bool;
  mutable on_touch : (int -> unit) option;
      (* profiler hook: called with the page of every access *)
  mutable fault_count : int;
}

let create role =
  {
    role;
    pages = Hashtbl.create 1024;
    dirty = Hashtbl.create 64;
    track_dirty = false;
    on_fault = None;
    on_touch = None;
    fault_count = 0;
  }

let install_page t page bytes =
  if Bytes.length bytes <> Region.page_size then
    invalid_arg "Memory.install_page: wrong page size";
  Hashtbl.replace t.pages page bytes

let has_page t page = Hashtbl.mem t.pages page

let drop_page t page =
  Hashtbl.remove t.pages page;
  Hashtbl.remove t.dirty page

let drop_all_pages t =
  Hashtbl.reset t.pages;
  Hashtbl.reset t.dirty

let page_bytes t page =
  match Hashtbl.find_opt t.pages page with
  | Some bytes -> bytes
  | None -> (
    match t.role with
    | Home ->
      let bytes = Bytes.make Region.page_size '\000' in
      Hashtbl.replace t.pages page bytes;
      bytes
    | Remote -> (
      t.fault_count <- t.fault_count + 1;
      match t.on_fault with
      | Some handler -> (
        handler t page;
        match Hashtbl.find_opt t.pages page with
        | Some bytes -> bytes
        | None -> raise (Page_fault page))
      | None -> raise (Page_fault page)))

let check_mapped addr =
  match Region.region_of_addr addr with
  | Region.Null_guard ->
    raise (Bad_access (addr, "null pointer dereference"))
  | Region.Unmapped -> raise (Bad_access (addr, "unmapped address"))
  | Region.Globals | Region.Mobile_stack | Region.Server_stack
  | Region.Heap -> ()

let note_touched t addr =
  match t.on_touch with
  | Some callback -> callback (Region.page_of_addr addr)
  | None -> ()

let read_byte t addr =
  check_mapped addr;
  note_touched t addr;
  let page = Region.page_of_addr addr in
  Char.code (Bytes.get (page_bytes t page) (Region.offset_in_page addr))

let write_byte t addr v =
  check_mapped addr;
  note_touched t addr;
  let page = Region.page_of_addr addr in
  Bytes.set (page_bytes t page) (Region.offset_in_page addr)
    (Char.chr (v land 0xff));
  if t.track_dirty then Hashtbl.replace t.dirty page ()

(* Bulk transfer helpers used by memcpy/memset builtins and by the
   communication manager. *)
let read_block t addr len =
  let out = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set out i (Char.chr (read_byte t (addr + i)))
  done;
  out

let write_block t addr data =
  Bytes.iteri (fun i c -> write_byte t (addr + i) (Char.code c)) data

(* Page-table style queries for the runtime. *)
let resident_pages t =
  Hashtbl.fold (fun page _ acc -> page :: acc) t.pages []
  |> List.sort compare

let dirty_pages t =
  Hashtbl.fold (fun page _ acc -> page :: acc) t.dirty []
  |> List.sort compare

let clear_dirty t = Hashtbl.reset t.dirty

let resident_count t = Hashtbl.length t.pages
let resident_bytes t = Hashtbl.length t.pages * Region.page_size

(* Copy of a page's current contents (for transmission). *)
let page_copy t page = Bytes.copy (page_bytes t page)

(* Deep snapshot of resident pages and dirty/tracking state, for
   offload recovery.  Pages are copied both ways: the snapshot must
   not alias frames the failed offload may still scribble on, and
   restore must not hand the live table bytes the next offload
   attempt could mutate. *)

type snapshot = {
  s_pages : (int * Bytes.t) list;
  s_dirty : int list;
  s_track_dirty : bool;
}

let snapshot t =
  {
    s_pages =
      Hashtbl.fold (fun page bytes acc -> (page, Bytes.copy bytes) :: acc)
        t.pages [];
    s_dirty = Hashtbl.fold (fun page () acc -> page :: acc) t.dirty [];
    s_track_dirty = t.track_dirty;
  }

let restore t s =
  Hashtbl.reset t.pages;
  Hashtbl.reset t.dirty;
  List.iter
    (fun (page, bytes) -> Hashtbl.replace t.pages page (Bytes.copy bytes))
    s.s_pages;
  List.iter (fun page -> Hashtbl.replace t.dirty page ()) s.s_dirty;
  t.track_dirty <- s.s_track_dirty

(* Profiler hook installation. *)
let set_touch_callback t callback = t.on_touch <- callback
