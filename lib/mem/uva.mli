(** The unified-virtual-address heap allocator.

    The heap-allocation-replacement pass (paper §3.2) rewrites every
    malloc/free to [u_malloc]/[u_free], serviced from this allocator.
    One allocator is shared per offloading session — both devices must
    agree where every object lives on the UVA space.

    First-fit free list with address-ordered coalescing, 16-byte
    alignment. *)

type t

(** Raised with the requested size when the region is exhausted. *)
exception Out_of_memory of int

(** Raised with the offending address. *)
exception Invalid_free of int

val alignment : int

val create : ?base:int -> ?limit:int -> unit -> t
(** Defaults to the UVA heap region of {!Region}. *)

val alloc : t -> int -> int
(** [alloc t size] returns the address of a fresh block.
    @raise Out_of_memory when the region is exhausted. *)

val dealloc : t -> int -> unit
(** Free a block by its exact address.
    @raise Invalid_free on anything else. *)

val live_bytes : t -> int
(** Currently allocated bytes (the dynamic estimator's "current memory
    usage"). *)

val total_allocations : t -> int
val high_water_mark : t -> int
val size_of_allocation : t -> int -> int option

val used_pages : t -> int list
(** Every page the heap has ever handed out — the prefetch set on a
    target's first offload. *)

type snapshot
(** Full allocator metadata (brk, free list, live sizes). *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Roll the allocator back to the snapshot — offload recovery must
    forget any allocations the server performed before it was lost,
    since allocator metadata is shared between the devices. *)
