(* Deterministic fault plans.

   A plan is a pure description of everything that will go wrong
   during a simulated run: when the link is dark, when the usable
   bandwidth collapses, how lossy the link is per message, and when
   (if ever) the server dies.  The plan carries its own RNG seed so a
   lossy run is reproducible from the plan alone.

   Plans are parsed from a compact [key=value,...] syntax so they can
   travel on a command line:

     seed=42,outage=0.5:2.0,drop=0.05,corrupt=0.01,crash=3.5,collapse=1.0:0.02
*)

type outage = { out_from_s : float; out_until_s : float }
type collapse = { col_at_s : float; col_factor : float }

type t = {
  seed : int64;
  outages : outage list;
  drop_p : float;
  corrupt_p : float;
  crash_at_s : float option;
  collapse : collapse option;
}

let empty =
  {
    seed = 1L;
    outages = [];
    drop_p = 0.0;
    corrupt_p = 0.0;
    crash_at_s = None;
    collapse = None;
  }

let is_empty t =
  t.outages = [] && t.drop_p = 0.0 && t.corrupt_p = 0.0
  && t.crash_at_s = None && t.collapse = None

let with_seed t seed = { t with seed }

let grammar =
  "seed=N, outage=START:END (repeatable), drop=P, corrupt=P, crash=T, \
   collapse=T:FACTOR — comma-separated, times in simulated seconds, \
   probabilities in [0,1), factor in (0,1]"

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let parse_float ~what s =
  match float_of_string_opt (String.trim s) with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: not a number (%S)" what s)

let parse_time ~what s =
  let* v = parse_float ~what s in
  if v < 0.0 then Error (Printf.sprintf "%s: must be >= 0" what) else Ok v

let parse_prob ~what s =
  let* v = parse_float ~what s in
  if v < 0.0 || v >= 1.0 then
    Error (Printf.sprintf "%s: probability must be in [0,1)" what)
  else Ok v

let parse_pair ~what s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "%s: expected A:B, got %S" what s)
  | Some i ->
    Ok (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let apply_field plan key value =
  match key with
  | "seed" -> (
    match Int64.of_string_opt (String.trim value) with
    | Some seed -> Ok { plan with seed }
    | None -> Error (Printf.sprintf "seed: not an integer (%S)" value))
  | "outage" ->
    let* a, b = parse_pair ~what:"outage" value in
    let* from_s = parse_time ~what:"outage start" a in
    let* until_s = parse_time ~what:"outage end" b in
    if until_s <= from_s then Error "outage: end must be after start"
    else
      Ok
        { plan with
          outages =
            plan.outages @ [ { out_from_s = from_s; out_until_s = until_s } ]
        }
  | "drop" ->
    let* p = parse_prob ~what:"drop" value in
    Ok { plan with drop_p = p }
  | "corrupt" ->
    let* p = parse_prob ~what:"corrupt" value in
    Ok { plan with corrupt_p = p }
  | "crash" ->
    let* at = parse_time ~what:"crash" value in
    Ok { plan with crash_at_s = Some at }
  | "collapse" ->
    let* a, b = parse_pair ~what:"collapse" value in
    let* at = parse_time ~what:"collapse time" a in
    let* factor = parse_float ~what:"collapse factor" b in
    if factor <= 0.0 || factor > 1.0 then
      Error "collapse: factor must be in (0,1]"
    else Ok { plan with collapse = Some { col_at_s = at; col_factor = factor } }
  | other -> Error (Printf.sprintf "unknown fault field %S" other)

let parse text =
  let fields =
    String.split_on_char ',' text
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  List.fold_left
    (fun acc field ->
      let* plan = acc in
      match String.index_opt field '=' with
      | None -> Error (Printf.sprintf "expected key=value, got %S" field)
      | Some i ->
        let key = String.trim (String.sub field 0 i) in
        let value = String.sub field (i + 1) (String.length field - i - 1) in
        apply_field plan key value)
    (Ok empty) fields

let to_string t =
  let buf = Buffer.create 64 in
  let add fmt = Printf.ksprintf (fun s ->
    if Buffer.length buf > 0 then Buffer.add_char buf ',';
    Buffer.add_string buf s) fmt
  in
  if t.seed <> empty.seed then add "seed=%Ld" t.seed;
  List.iter
    (fun o -> add "outage=%g:%g" o.out_from_s o.out_until_s)
    t.outages;
  if t.drop_p > 0.0 then add "drop=%g" t.drop_p;
  if t.corrupt_p > 0.0 then add "corrupt=%g" t.corrupt_p;
  (match t.crash_at_s with Some at -> add "crash=%g" at | None -> ());
  (match t.collapse with
  | Some c -> add "collapse=%g:%g" c.col_at_s c.col_factor
  | None -> ());
  Buffer.contents buf

let pp ppf t =
  if is_empty t then Fmt.string ppf "(no faults)"
  else Fmt.string ppf (to_string t)
