(** Deterministic fault plans: a pure, seeded description of every
    fault a simulated run will suffer.  The runtime consults the plan
    through {!Injector}; the plan itself never mutates, so the same
    plan + seed reproduces the same faulty run bit for bit. *)

type outage = { out_from_s : float; out_until_s : float }
(** The link is completely dark in [\[out_from_s, out_until_s)]. *)

type collapse = { col_at_s : float; col_factor : float }
(** From [col_at_s] on, usable bandwidth is scaled by [col_factor]
    (e.g. [0.02] = the radio drops to 2% of nominal). *)

type t = {
  seed : int64;  (** seeds the plan's private RNG — no global state *)
  outages : outage list;  (** link blackout windows *)
  drop_p : float;  (** per-message loss probability *)
  corrupt_p : float;  (** per-message corruption probability *)
  crash_at_s : float option;  (** one-shot server death at time t *)
  collapse : collapse option;  (** bandwidth collapse *)
}

val empty : t
(** No faults, seed 1.  Wrapping a session with [empty] is a strict
    no-op: byte-for-byte identical metrics and trace. *)

val is_empty : t -> bool
val with_seed : t -> int64 -> t

val parse : string -> (t, string) result
(** Parse the command-line syntax, e.g.
    ["seed=42,outage=0.5:2.0,drop=0.05,crash=3.5,collapse=1.0:0.02"].
    The empty string parses to {!empty}. *)

val grammar : string
(** One-line description of the accepted syntax, for error messages. *)

val to_string : t -> string
(** Round-trips through {!parse}. *)

val pp : Format.formatter -> t -> unit
