(* Runtime fault oracle.

   The injector is the mutable counterpart of a {!Plan.t}: the session
   asks it, at each blocking exchange, what happens to this message at
   this simulated instant.  All randomness comes from the plan's
   seeded SplitMix64 stream, and the RNG is consulted only when the
   plan actually has a loss/corruption probability, so an empty plan
   observes nothing and perturbs nothing. *)

type policy = {
  deadline_s : float;
  max_attempts : int;
  backoff_base_s : float;
  backoff_mult : float;
  backoff_max_s : float;
}

let default_policy =
  {
    deadline_s = 0.5;
    max_attempts = 5;
    backoff_base_s = 0.25;
    backoff_mult = 2.0;
    backoff_max_s = 2.0;
  }

let backoff_s policy ~attempt =
  (* attempt is 1-based: the wait before attempt [n+1] after failure
     [n] grows geometrically, capped. *)
  min policy.backoff_max_s
    (policy.backoff_base_s *. (policy.backoff_mult ** float_of_int (attempt - 1)))

type verdict =
  | Deliver
  | Outage of float  (** link dark until [t] *)
  | Drop  (** message lost; sender times out *)
  | Corrupt  (** delivered but mangled; receiver rejects, sender resends *)
  | Server_down

type t = {
  plan : Plan.t;
  policy : policy;
  rng : Rng.t;
  mutable injected : int;
  (* A planned crash kills one specific machine.  When the session
     migrates the task to another pool member the plan's crash is
     spent — the new host is healthy — so the oracle stops returning
     Server_down. *)
  mutable crash_cleared : bool;
}

let create ?(policy = default_policy) plan =
  {
    plan;
    policy;
    rng = Rng.create plan.Plan.seed;
    injected = 0;
    crash_cleared = false;
  }

let plan t = t.plan
let policy t = t.policy
let injected t = t.injected

let outage_until t ~now =
  List.find_map
    (fun (o : Plan.outage) ->
      if now >= o.Plan.out_from_s && now < o.Plan.out_until_s then
        Some o.Plan.out_until_s
      else None)
    t.plan.Plan.outages

let bw_factor t ~now =
  match t.plan.Plan.collapse with
  | Some c when now >= c.Plan.col_at_s -> c.Plan.col_factor
  | _ -> 1.0

let server_crashed t ~now =
  (not t.crash_cleared)
  &&
  match t.plan.Plan.crash_at_s with
  | Some at -> now >= at
  | None -> false

let clear_crash t = t.crash_cleared <- true

let judge t ~now =
  let verdict =
    if server_crashed t ~now then Server_down
    else
      match outage_until t ~now with
      | Some until -> Outage until
      | None ->
        let drop_p = t.plan.Plan.drop_p
        and corrupt_p = t.plan.Plan.corrupt_p in
        if drop_p > 0.0 || corrupt_p > 0.0 then begin
          let u = Rng.float t.rng in
          if u < drop_p then Drop
          else if u < drop_p +. corrupt_p then Corrupt
          else Deliver
        end
        else Deliver
  in
  (match verdict with Deliver -> () | _ -> t.injected <- t.injected + 1);
  verdict

let verdict_kind = function
  | Deliver -> "deliver"
  | Outage _ -> "link-outage"
  | Drop -> "drop"
  | Corrupt -> "corruption"
  | Server_down -> "server-crash"
