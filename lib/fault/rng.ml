(* Deterministic pseudo-random numbers for fault injection.

   Every stochastic choice in a fault plan (message drop, corruption)
   draws from one of these generators, seeded from the plan — never
   from the global [Random] state — so a run is reproducible from its
   [--seed] alone.  SplitMix64: tiny state, good distribution, and the
   same sequence on every platform. *)

type t = { mutable state : int64 }

let create seed = { state = seed }

let next t : int64 =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform in [0, 1): the top 53 bits scaled by 2^-53. *)
let float t =
  Int64.to_float (Int64.shift_right_logical (next t) 11)
  *. (1.0 /. 9007199254740992.0)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  Int64.to_int (Int64.unsigned_rem (next t) (Int64.of_int bound))

(* Per-task sampling decision: fold (client, task) into the seed with
   distinct odd multipliers (golden-ratio siblings, so client 1/task 0
   and client 0/task 1 land far apart), then draw one SplitMix64
   float.  Stateless on purpose — the keep set must not depend on how
   clients interleave in the global stream. *)
let task_keep ~seed ~client ~task ~budget =
  if budget >= 1.0 then true
  else if budget <= 0.0 then false
  else
    let mix =
      Int64.logxor
        (Int64.mul (Int64.of_int (client + 1)) 0xC2B2AE3D27D4EB4FL)
        (Int64.mul (Int64.of_int (task + 1)) 0x9E3779B97F4A7C15L)
    in
    let t = create (Int64.logxor seed mix) in
    float t < budget
