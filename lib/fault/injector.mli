(** Runtime fault oracle: the mutable counterpart of a {!Plan.t}.

    The offload session asks the injector, at each blocking exchange,
    what happens to that message at the current simulated instant.
    All stochasticity flows through the plan's seeded RNG, consulted
    only when the plan has a non-zero loss/corruption probability —
    so an empty plan is a strict no-op. *)

type policy = {
  deadline_s : float;  (** per-RPC timeout charged while waiting *)
  max_attempts : int;  (** total send attempts before giving up *)
  backoff_base_s : float;
  backoff_mult : float;
  backoff_max_s : float;
}
(** Bounded exponential backoff: after failed attempt [n] the sender
    waits [min backoff_max_s (backoff_base_s *. backoff_mult^(n-1))]
    before attempt [n+1].  Clock and battery keep charging during
    deadline and backoff waits. *)

val default_policy : policy
(** 0.5 s deadline, 5 attempts, 0.25 s base doubling to a 2 s cap. *)

val backoff_s : policy -> attempt:int -> float
(** Backoff after failed attempt [attempt] (1-based). *)

type verdict =
  | Deliver
  | Outage of float  (** link dark until the given simulated time *)
  | Drop  (** message lost; sender times out *)
  | Corrupt  (** delivered mangled; receiver rejects, sender resends *)
  | Server_down

type t

val create : ?policy:policy -> Plan.t -> t
val plan : t -> Plan.t
val policy : t -> policy

val injected : t -> int
(** Number of non-[Deliver] verdicts issued so far. *)

val outage_until : t -> now:float -> float option
(** [Some t_end] if [now] falls inside an outage window. *)

val bw_factor : t -> now:float -> float
(** Bandwidth scale at [now]: 1.0 normally, the collapse factor once
    the collapse time has passed. *)

val server_crashed : t -> now:float -> bool

val clear_crash : t -> unit
(** Mark the plan's crash as spent: a planned crash kills one specific
    machine, so once the task migrates to another pool member the
    oracle stops returning [Server_down].  Idempotent; no effect on
    outage / drop / corruption injection. *)

val judge : t -> now:float -> verdict
(** Fate of one message sent at [now].  Order: server crash, then
    outage, then seeded drop/corruption draw. *)

val verdict_kind : verdict -> string
(** Short label for trace events ("drop", "link-outage", ...). *)
