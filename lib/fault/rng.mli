(** Deterministic pseudo-random numbers for fault injection
    (SplitMix64).

    All stochasticity in a fault plan flows through one of these,
    seeded from the plan — no global [Random] state — so every test
    and bench run is reproducible from a seed. *)

type t

val create : int64 -> t
(** Same seed, same sequence, on every platform. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)
