(** Deterministic pseudo-random numbers for fault injection
    (SplitMix64).

    All stochasticity in a fault plan flows through one of these,
    seeded from the plan — no global [Random] state — so every test
    and bench run is reproducible from a seed. *)

type t

val create : int64 -> t
(** Same seed, same sequence, on every platform. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val task_keep : seed:int64 -> client:int -> task:int -> budget:float -> bool
(** Stateless per-task sampling decision for the trace sampler: a
    SplitMix64 generator seeded from [(seed, client, task)] draws one
    uniform float, and the task is kept when it falls under [budget].
    Pure — the same triple always decides the same way, regardless of
    how tasks from different clients interleave — so a seeded fleet
    rerun keeps the identical task set. *)
