(** Wireless link model: the two evaluation networks of the paper
    (802.11n "slow", 802.11ac "fast") plus a congested profile used by
    tests and the adaptive-network example.

    Simulation scales: {!sim_bw_scale} and {!sim_latency_scale} slow
    the link relative to the real radios, calibrated so our
    proportionally smaller workloads sit on the same side of the
    Equation-1 offload/refuse boundary as the paper's (see
    DESIGN.md §6).  The stored parameters are the real radios'. *)

type t = {
  name : string;
  nominal_bps : float;    (** radio's nominal rate *)
  efficiency : float;     (** fraction of nominal actually achieved *)
  latency_s : float;      (** one-way per-message latency (real) *)
}

val sim_bw_scale : float
val sim_latency_scale : float

val slow_wifi : t
(** 802.11n, max 144 Mbps — the paper's slow environment. *)

val fast_wifi : t
(** 802.11ac, max 844 Mbps — the paper's fast environment. *)

val congested : t
(** A link bad enough that dynamic estimation always refuses. *)

val all : t list
val by_name : string -> t option

val effective_bps : t -> float
(** Achievable bandwidth on the simulation scale. *)

val effective_latency_s : t -> float
(** Per-message latency on the simulation scale. *)

val transfer_time : t -> bytes:int -> float
(** Time for one message carrying [bytes]. *)

val transfer_time_scaled : t -> bytes:int -> bw_factor:float -> float
(** Like {!transfer_time} with usable bandwidth scaled by [bw_factor]
    (fault injection's bandwidth collapse).  [bw_factor = 1.0] is
    bit-for-bit identical to {!transfer_time}. *)

val round_trip_time : t -> req:int -> resp:int -> float
(** Request/response exchange (remote I/O, page faults). *)

val round_trip_time_scaled : t -> req:int -> resp:int -> bw_factor:float -> float

val pp : Format.formatter -> t -> unit
