(* LZ77 byte compressor used by the communication manager.

   The paper's runtime "compresses the communicated data before
   sending it" and, because compression costs much more than
   decompression, applies it only to server-to-mobile traffic
   (Section 4).  This is a real compressor — dirty pages of the
   simulated memory are actual byte buffers, and zero-heavy or
   repetitive pages compress exactly as they would in the paper's
   system.

   Format: a stream of tokens.
     0x00 <varint len> <len bytes>      literal run
     0x01 <varint dist> <varint len>    match (dist >= 1, len >= 4)
   Varints are LEB128. *)

let min_match = 4
let max_match = 262
let window_size = 1 lsl 16
let hash_bits = 15
let max_chain = 16

(* No inner helper here: a [let b k = ...] closure would be allocated
   on every call, and this runs for every input position. *)
let hash4 data i =
  let v =
    Char.code (Bytes.unsafe_get data i)
    lor (Char.code (Bytes.unsafe_get data (i + 1)) lsl 8)
    lor (Char.code (Bytes.unsafe_get data (i + 2)) lsl 16)
    lor (Char.code (Bytes.unsafe_get data (i + 3)) lsl 24)
  in
  (v * 2654435761) lsr (32 - hash_bits) land ((1 lsl hash_bits) - 1)

let put_varint buf v =
  let v = ref v in
  while !v >= 0x80 do
    Buffer.add_char buf (Char.chr (!v land 0x7f lor 0x80));
    v := !v lsr 7
  done;
  Buffer.add_char buf (Char.chr !v)

let get_varint data pos =
  let v = ref 0 and shift = ref 0 and p = ref pos in
  let continue = ref true in
  while !continue do
    let b = Char.code (Bytes.get data !p) in
    incr p;
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := b land 0x80 <> 0
  done;
  (!v, !p)

let match_length data pos cand limit =
  let n = ref 0 in
  while
    !n < limit
    && Bytes.unsafe_get data (cand + !n) = Bytes.unsafe_get data (pos + !n)
  do
    incr n
  done;
  !n

module Selfprof = No_selfprof.Selfprof

(* Dictionary scratch, reused across calls (the simulator is
   single-threaded).  Zeroing 32k+64k words of hash state per page
   dominated the compress zone's cost, so instead of clearing, [head]
   entries are valid only when their epoch stamp matches the current
   call; a stale slot reads as "no chain".  [prev] needs no stamping:
   its entries are only reachable through a head written this call,
   and every chain link walked was therefore also written this call.
   The emitted stream is byte-identical to a fresh-scratch run. *)
let scr_head = Array.make (1 lsl hash_bits) (-1)
let scr_head_epoch = Array.make (1 lsl hash_bits) (-1)
let scr_epoch = ref (-1)
let scr_prev = ref (Array.make 1 (-1))
let scr_out = Buffer.create 65536

let compress (data : Bytes.t) : Bytes.t =
  Selfprof.enter Compress;
  let len = Bytes.length data in
  incr scr_epoch;
  let epoch = !scr_epoch in
  let out = scr_out in
  Buffer.clear out;
  let head = scr_head and head_epoch = scr_head_epoch in
  if Array.length !scr_prev < max len 1 then
    scr_prev := Array.make (max len 1) (-1);
  let prev = !scr_prev in
  let lit_start = ref 0 in
  let flush_literals upto =
    if upto > !lit_start then begin
      Buffer.add_char out '\000';
      put_varint out (upto - !lit_start);
      Buffer.add_subbytes out data !lit_start (upto - !lit_start)
    end
  in
  let insert i =
    if i + min_match <= len then begin
      let h = hash4 data i in
      prev.(i) <- (if head_epoch.(h) = epoch then head.(h) else -1);
      head.(h) <- i;
      head_epoch.(h) <- epoch
    end
  in
  let i = ref 0 in
  while !i < len do
    let best_len = ref 0 and best_dist = ref 0 in
    if !i + min_match <= len then begin
      let limit = min max_match (len - !i) in
      let h0 = hash4 data !i in
      let cand = ref (if head_epoch.(h0) = epoch then head.(h0) else -1) in
      let chain = ref 0 in
      while !cand >= 0 && !chain < max_chain do
        if !i - !cand <= window_size then begin
          let l = match_length data !i !cand limit in
          if l > !best_len then begin
            best_len := l;
            best_dist := !i - !cand
          end
        end;
        cand := prev.(!cand);
        incr chain
      done
    end;
    if !best_len >= min_match then begin
      flush_literals !i;
      Buffer.add_char out '\001';
      put_varint out !best_dist;
      put_varint out !best_len;
      for k = !i to !i + !best_len - 1 do
        insert k
      done;
      i := !i + !best_len;
      lit_start := !i
    end
    else begin
      insert !i;
      incr i
    end
  done;
  flush_literals len;
  let res = Buffer.to_bytes out in
  Selfprof.leave Compress;
  res

exception Corrupt of string

let decompress_unprofiled (data : Bytes.t) : Bytes.t =
  let len = Bytes.length data in
  let out = Buffer.create (len * 2) in
  let pos = ref 0 in
  while !pos < len do
    let tag = Bytes.get data !pos in
    incr pos;
    match tag with
    | '\000' ->
      let n, p = get_varint data !pos in
      pos := p;
      if !pos + n > len then raise (Corrupt "literal run past end");
      Buffer.add_subbytes out data !pos n;
      pos := !pos + n
    | '\001' ->
      let dist, p = get_varint data !pos in
      let mlen, p = get_varint data p in
      pos := p;
      let base = Buffer.length out - dist in
      if dist = 0 || base < 0 then raise (Corrupt "bad match distance");
      (* Overlapping copies are legal (dist < len). *)
      for k = 0 to mlen - 1 do
        Buffer.add_char out (Buffer.nth out (base + k))
      done
    | c -> raise (Corrupt (Printf.sprintf "bad token %C" c))
  done;
  Buffer.to_bytes out

(* [Corrupt] may unwind out of the loop; leave the zone on both edges
   so a poisoned payload doesn't keep absorbing self-time. *)
let decompress (data : Bytes.t) : Bytes.t =
  Selfprof.enter Decompress;
  match decompress_unprofiled data with
  | res ->
    Selfprof.leave Decompress;
    res
  | exception e ->
    Selfprof.leave Decompress;
    raise e

(* Ratio achieved on [data]; 1.0 means incompressible. *)
let ratio data =
  let n = Bytes.length data in
  if n = 0 then 1.0
  else float_of_int (Bytes.length (compress data)) /. float_of_int n
