(* A batched, optionally compressed message channel over a link.

   The paper's runtime "batches and compresses the communicated data":
   batching keeps data in a buffer and sends it once, amortizing
   per-message overheads; compression is applied only in the
   server-to-mobile direction because compressing on the mobile device
   would cost more than it saves (Section 4).

   The channel does not know about simulated time directly; [flush]
   returns the time the transfer took (link time plus compression /
   decompression CPU time), and the caller advances its clock. *)

type direction = To_server | To_mobile

type stats = {
  mutable messages : int;        (* logical messages batched *)
  mutable flushes : int;         (* physical transfers *)
  mutable raw_bytes : int;
  mutable wire_bytes : int;
  mutable transfer_time : float;
  mutable codec_time : float;
}

let empty_stats () = {
  messages = 0;
  flushes = 0;
  raw_bytes = 0;
  wire_bytes = 0;
  transfer_time = 0.0;
  codec_time = 0.0;
}

type t = {
  link : Link.t;
  direction : direction;
  compress : bool;
  compress_s_per_byte : float;    (* sender-side CPU cost *)
  decompress_s_per_byte : float;  (* receiver-side CPU cost *)
  mutable pending : Buffer.t;
  stats : stats;
  sink : No_trace.Trace.sink;     (* receives one Flush per transfer *)
  row : No_trace.Trace.Row.t;     (* scratch for zero-alloc emission *)
  clock : unit -> float;          (* timestamps for emitted events *)
  bw_factor : unit -> float;      (* usable-bandwidth scale at flush time *)
}

(* Compression throughput in the hundreds of MB/s (real hardware);
   decompression is roughly 4x faster — the asymmetry the paper's
   design exploits.  Scaled with the link so the "is compressing
   faster than transmitting raw?" trade-off is preserved. *)
let default_compress_s_per_byte = 150.0 /. 250e6
let default_decompress_s_per_byte = 150.0 /. 1000e6

let create ?(compress = false)
    ?(compress_s_per_byte = default_compress_s_per_byte)
    ?(decompress_s_per_byte = default_decompress_s_per_byte)
    ?(sink = No_trace.Trace.null) ?(clock = fun () -> 0.0)
    ?(bw_factor = fun () -> 1.0) link direction =
  {
    link;
    direction;
    compress;
    compress_s_per_byte;
    decompress_s_per_byte;
    pending = Buffer.create 4096;
    stats = empty_stats ();
    sink;
    row = No_trace.Trace.Row.create ();
    clock;
    bw_factor;
  }

(* Queue a logical message; costs nothing until flushed. *)
let send t (payload : Bytes.t) =
  t.stats.messages <- t.stats.messages + 1;
  Buffer.add_bytes t.pending payload

let pending_bytes t = Buffer.length t.pending

(* Transmit the batch; returns elapsed time.  Flushing an empty
   pending buffer is a strict no-op: no stats, no event, zero time. *)
let flush t : float =
  let raw = Buffer.length t.pending in
  if raw = 0 then 0.0
  else begin
    let payload = Buffer.to_bytes t.pending in
    Buffer.clear t.pending;
    let wire, codec_time =
      if t.compress then begin
        let packed = Compress.compress payload in
        (* Fall back to raw if compression expands the data. *)
        if Bytes.length packed < raw then
          ( Bytes.length packed,
            (float_of_int raw *. t.compress_s_per_byte)
            +. (float_of_int (Bytes.length packed)
               *. t.decompress_s_per_byte) )
        else (raw, float_of_int raw *. t.compress_s_per_byte)
      end
      else (raw, 0.0)
    in
    (* Compression never expands what we put on the wire (the fallback
       above sends raw); keep the invariant explicit. *)
    let wire = min wire raw in
    assert (wire <= raw);
    let transfer =
      Link.transfer_time_scaled t.link ~bytes:wire ~bw_factor:(t.bw_factor ())
    in
    t.stats.flushes <- t.stats.flushes + 1;
    t.stats.raw_bytes <- t.stats.raw_bytes + raw;
    t.stats.wire_bytes <- t.stats.wire_bytes + wire;
    t.stats.transfer_time <- t.stats.transfer_time +. transfer;
    t.stats.codec_time <- t.stats.codec_time +. codec_time;
    if not (No_trace.Trace.is_null t.sink) then begin
      No_trace.Trace.Row.set_flush t.row
        ~direction:
          (match t.direction with
          | To_server -> No_trace.Trace.To_server
          | To_mobile -> No_trace.Trace.To_mobile)
        ~raw_bytes:raw ~wire_bytes:wire ~transfer_s:transfer
        ~codec_s:codec_time;
      t.sink.No_trace.Trace.emit_row ~ts:(t.clock ()) t.row
    end;
    transfer +. codec_time
  end

(* Unbatched convenience: send one message and flush immediately. *)
let send_now t payload =
  send t payload;
  flush t

let stats t = t.stats

let compression_ratio t =
  if t.stats.raw_bytes = 0 then 1.0
  else float_of_int t.stats.wire_bytes /. float_of_int t.stats.raw_bytes
