(* Wireless link model.

   The paper evaluates two environments: 802.11n ("slow", max
   144 Mbps) and 802.11ac ("fast", max 844 Mbps).  Real links never
   reach nominal bandwidth; we apply a MAC-efficiency factor and add a
   fixed per-message latency (association, ACKs) — this is what makes
   message *batching* worthwhile (Section 4). *)

type t = {
  name : string;
  nominal_bps : float;
  efficiency : float;      (* fraction of nominal actually achieved *)
  latency_s : float;       (* one-way, per message *)
}

(* Simulation time scales for the network, companions of
   {!No_arch.Arch.sim_cpu_scale}: our workloads carry both fewer
   instructions and proportionally smaller working sets than SPEC, so
   the link slows by a smaller factor than the CPUs.  Bandwidth and
   latency scale separately — bandwidth is calibrated so the Table 4
   traffic-to-computation ratios land on the same side of the
   Equation 1 offload/refuse boundary as in the paper (164.gzip's
   word-rate kernel refuses the slow network, 458.sjeng's search does
   not); latency is calibrated so per-operation costs (page faults,
   remote I/O requests) take the overhead shares Figure 7 reports.
   All public parameters below are the real radios'. *)
let sim_bw_scale = 100.0
let sim_latency_scale = 50.0

let effective_bps t = t.nominal_bps *. t.efficiency /. sim_bw_scale

let effective_latency_s t = t.latency_s *. sim_latency_scale

let slow_wifi = {
  name = "802.11n";
  nominal_bps = 144e6;
  efficiency = 0.60;
  latency_s = 2.5e-3;
}

(* Latency barely improves from n to ac: RTT is dominated by MAC
   contention and distance, not PHY rate.  This is why remote-I/O-
   bound programs (300.twolf, 445.gobmk) can burn *more* battery on
   the fast network: requests take nearly as long while the ac radio
   draws more power (Section 5.2, Figure 8(b)/(c)). *)
let fast_wifi = {
  name = "802.11ac";
  nominal_bps = 844e6;
  efficiency = 0.65;
  latency_s = 2.2e-3;
}

(* A link so slow that dynamic estimation should always refuse to
   offload — used by tests and the adaptive-network example. *)
let congested = {
  name = "congested";
  nominal_bps = 2e6;
  efficiency = 0.5;
  latency_s = 30e-3;
}

let all = [ slow_wifi; fast_wifi; congested ]

let by_name name = List.find_opt (fun l -> String.equal l.name name) all

(* Time for one message of [bytes] payload, with the usable bandwidth
   scaled by [bw_factor] (fault injection models a collapsed radio by
   passing a factor < 1; factor 1.0 is exact — multiplying by 1.0 is
   the identity in IEEE arithmetic, so the unfaulted path stays
   bit-for-bit unchanged). *)
let transfer_time_scaled t ~bytes ~bw_factor =
  effective_latency_s t
  +. (float_of_int bytes *. 8.0 /. (effective_bps t *. bw_factor))

let transfer_time t ~bytes = transfer_time_scaled t ~bytes ~bw_factor:1.0

(* Time for a round trip carrying [req] bytes out and [resp] bytes
   back (remote I/O requests, Section 3.4). *)
let round_trip_time_scaled t ~req ~resp ~bw_factor =
  transfer_time_scaled t ~bytes:req ~bw_factor
  +. transfer_time_scaled t ~bytes:resp ~bw_factor

let round_trip_time t ~req ~resp =
  round_trip_time_scaled t ~req ~resp ~bw_factor:1.0

let pp ppf t =
  Fmt.pf ppf "%s (%.0f Mbps nominal, %.1f ms latency)" t.name
    (t.nominal_bps /. 1e6) (t.latency_s *. 1e3)
