(** A batched, optionally compressed message channel over a link.

    The paper's runtime "batches and compresses the communicated
    data": batching amortizes per-message latency; compression is
    applied server→mobile only, because compressing on the phone costs
    more than it saves (§4).  The channel is clock-agnostic: {!flush}
    returns the elapsed time (transfer plus codec CPU) and the caller
    advances its own clock. *)

type direction = To_server | To_mobile

type stats = {
  mutable messages : int;        (** logical messages batched *)
  mutable flushes : int;         (** physical transfers *)
  mutable raw_bytes : int;
  mutable wire_bytes : int;      (** after compression *)
  mutable transfer_time : float;
  mutable codec_time : float;
}

type t

val default_compress_s_per_byte : float
val default_decompress_s_per_byte : float

val create :
  ?compress:bool ->
  ?compress_s_per_byte:float ->
  ?decompress_s_per_byte:float ->
  ?sink:No_trace.Trace.sink ->
  ?clock:(unit -> float) ->
  ?bw_factor:(unit -> float) ->
  Link.t ->
  direction ->
  t
(** [sink] receives one {!No_trace.Trace.Flush} event per non-empty
    physical transfer, stamped with [clock ()] (the channel itself is
    clock-agnostic; the default stamps 0).  [bw_factor], sampled at
    flush time, scales the usable bandwidth — fault injection's
    bandwidth collapse; the default (1.0) charges the link's normal
    rate, bit-for-bit. *)

val send : t -> Bytes.t -> unit
(** Queue a logical message; costs nothing until flushed. *)

val pending_bytes : t -> int

val flush : t -> float
(** Transmit the batch; returns elapsed seconds.  Flushing an empty
    pending buffer is a strict no-op: zero time, no stats update, no
    event.  Compression falls back to raw when it would expand the
    data, so [wire_bytes <= raw_bytes] always holds. *)

val send_now : t -> Bytes.t -> float
(** [send] then [flush]. *)

val stats : t -> stats

val compression_ratio : t -> float
(** wire/raw over the channel's lifetime; 1.0 = incompressible. *)
