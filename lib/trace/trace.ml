(* The runtime event spine: a typed vocabulary for everything the
   offloading runtime does that costs time, bytes or energy, plus a
   pluggable sink interface.

   The evaluation (Figures 6-8, Table 4) is entirely built from
   runtime accounting.  Instead of scattering mutable counters across
   netsim / power / runtime, every layer emits structured events
   through a sink threaded via the session configuration; aggregate
   views (the Figure-7 overhead breakdown, the Figure-8 power
   timeline, per-run metrics tables) are then derived from the stream.

   This library sits below every emitting layer, so it depends on
   nothing but the standard library (and the self-profiler, which sits
   lower still): directions and power states are mirrored here as
   self-contained types/strings rather than imported from netsim/power
   (which would invert the dependency). *)

module Selfprof = No_selfprof.Selfprof

type direction = To_server | To_mobile

let direction_to_string = function
  | To_server -> "to-server"
  | To_mobile -> "to-mobile"

type event =
  | Flush of {
      direction : direction;
      raw_bytes : int;            (* batched payload before compression *)
      wire_bytes : int;           (* what actually crossed the link *)
      transfer_s : float;         (* link time charged *)
      codec_s : float;            (* compression + decompression CPU *)
    }
  | Page_fault of { page : int; service_s : float }
  | Prefetch of { pages : int; bytes : int }
  | Fnptr_translate of { cost_s : float }
  | Remote_io of {
      io_name : string;           (* the intercepted builtin, e.g. rf_read *)
      request_bytes : int;
      response_bytes : int;
      cost_s : float;
    }
  | Offload_begin of { target : string }
  | Offload_end of { target : string; dirty_pages : int; span_s : float }
  | Refusal of { target : string }
  | Power_state of { state : string; mw : float; duration_s : float }
  | Estimate of {
      target : string;
      predicted_gain_s : float;   (* Equation 1's Tg at this call *)
      local_s : float;            (* the estimator's Tm belief at this call *)
      decision : bool;
    }
  | Module_load of { role : string; functions : int; globals : int }
  | Fault_injected of { kind : string; op : string }
  | Rpc_timeout of { op : string; attempt : int; waited_s : float }
  | Retry of { op : string; attempt : int; backoff_s : float }
  | Fallback_local of { target : string; reason : string; recovery_s : float }
  | Rollback of { target : string; pages_restored : int; bytes_discarded : int }
  | Replay of { target : string; replay_s : float }
  | Queue of { target : string; server : int; wait_s : float; depth : int }
  | Admit of { target : string; server : int; occupancy : int; slot : int }
  | Reject of { target : string; server : int; queue_depth : int }
  | Bw_sample of { bps : float }
      (* the bandwidth predictor's belief, sampled after each physical
         transfer — a gauge for the telemetry layer, not a cost *)
  | Checkpoint of {
      target : string;
      pages : int;                (* dirty pages captured in the image *)
      image_bytes : int;          (* continuation image incl. page payloads *)
      io_cursor : int;            (* remote-I/O ops already delivered *)
      ledger_bytes : int;         (* console bytes already committed *)
    }
  | Migrate_start of {
      target : string;
      from_server : int;
      to_server : int;
      reason : string;            (* crash / maintenance / rebalance … *)
      transfer_s : float;         (* checkpoint shipping time on the link *)
    }
  | Migrate_done of {
      target : string;
      server : int;               (* the member that finished the task *)
      resumed_span_s : float;     (* remote span on the new member *)
    }

(* {1 The scratch row}

   The two-tier event representation: hot emitters fill a preallocated
   mutable row (ints, a flat float array, shared strings — nothing the
   write allocates) and hand it to [sink.emit_row]; the boxed [event]
   variant above is materialized only at capture boundaries (ring
   buffers, jsonl files) via [Row.to_event].  Aggregating sinks
   (metrics, windowed series, the simulator's latency stream) read the
   row's fields in place, so a fleet bench with no ring attached moves
   every event from emitter to accumulator without allocating it.

   A row is only valid for the duration of the [emit_row] call: sinks
   must copy (or box) anything they keep. *)

module Row = struct
  (* Kind codes, one per [event] constructor. *)
  let k_flush = 0
  let k_page_fault = 1
  let k_prefetch = 2
  let k_fnptr_translate = 3
  let k_remote_io = 4
  let k_offload_begin = 5
  let k_offload_end = 6
  let k_refusal = 7
  let k_power_state = 8
  let k_estimate = 9
  let k_module_load = 10
  let k_fault_injected = 11
  let k_rpc_timeout = 12
  let k_retry = 13
  let k_fallback_local = 14
  let k_rollback = 15
  let k_replay = 16
  let k_queue = 17
  let k_admit = 18
  let k_reject = 19
  let k_bw_sample = 20
  let k_checkpoint = 21
  let k_migrate_start = 22
  let k_migrate_done = 23

  (* Generic slots; the [set_*]/[to_event] pair below is the field
     mapping's single source of truth.  Floats live in a flat array so
     filling a row never boxes (mutable float fields of a mixed record
     would). *)
  type t = {
    mutable kind : int;
    mutable i1 : int;
    mutable i2 : int;
    mutable i3 : int;
    mutable i4 : int;
    f : float array;                  (* 2 slots *)
    mutable s1 : string;
    mutable s2 : string;
  }

  let create () =
    { kind = -1; i1 = 0; i2 = 0; i3 = 0; i4 = 0; f = Array.make 2 0.0;
      s1 = ""; s2 = "" }

  (* Setters are small on purpose: the non-flambda inliner folds them
     into the emitter, so the float arguments land in [f] unboxed. *)
  let set_flush r ~direction ~raw_bytes ~wire_bytes ~transfer_s ~codec_s =
    r.kind <- k_flush;
    r.i1 <- (match direction with To_server -> 0 | To_mobile -> 1);
    r.i2 <- raw_bytes;
    r.i3 <- wire_bytes;
    r.f.(0) <- transfer_s;
    r.f.(1) <- codec_s

  let set_page_fault r ~page ~service_s =
    r.kind <- k_page_fault;
    r.i1 <- page;
    r.f.(0) <- service_s

  let set_prefetch r ~pages ~bytes =
    r.kind <- k_prefetch;
    r.i1 <- pages;
    r.i2 <- bytes

  let set_fnptr_translate r ~cost_s =
    r.kind <- k_fnptr_translate;
    r.f.(0) <- cost_s

  let set_remote_io r ~io_name ~request_bytes ~response_bytes ~cost_s =
    r.kind <- k_remote_io;
    r.s1 <- io_name;
    r.i1 <- request_bytes;
    r.i2 <- response_bytes;
    r.f.(0) <- cost_s

  let set_offload_begin r ~target =
    r.kind <- k_offload_begin;
    r.s1 <- target

  let set_offload_end r ~target ~dirty_pages ~span_s =
    r.kind <- k_offload_end;
    r.s1 <- target;
    r.i1 <- dirty_pages;
    r.f.(0) <- span_s

  let set_refusal r ~target =
    r.kind <- k_refusal;
    r.s1 <- target

  let set_power_state r ~state ~mw ~duration_s =
    r.kind <- k_power_state;
    r.s1 <- state;
    r.f.(0) <- mw;
    r.f.(1) <- duration_s

  let set_estimate r ~target ~predicted_gain_s ~local_s ~decision =
    r.kind <- k_estimate;
    r.s1 <- target;
    r.f.(0) <- predicted_gain_s;
    r.f.(1) <- local_s;
    r.i1 <- (if decision then 1 else 0)

  let set_module_load r ~role ~functions ~globals =
    r.kind <- k_module_load;
    r.s1 <- role;
    r.i1 <- functions;
    r.i2 <- globals

  let set_fault_injected r ~kind ~op =
    r.kind <- k_fault_injected;
    r.s1 <- kind;
    r.s2 <- op

  let set_rpc_timeout r ~op ~attempt ~waited_s =
    r.kind <- k_rpc_timeout;
    r.s1 <- op;
    r.i1 <- attempt;
    r.f.(0) <- waited_s

  let set_retry r ~op ~attempt ~backoff_s =
    r.kind <- k_retry;
    r.s1 <- op;
    r.i1 <- attempt;
    r.f.(0) <- backoff_s

  let set_fallback_local r ~target ~reason ~recovery_s =
    r.kind <- k_fallback_local;
    r.s1 <- target;
    r.s2 <- reason;
    r.f.(0) <- recovery_s

  let set_rollback r ~target ~pages_restored ~bytes_discarded =
    r.kind <- k_rollback;
    r.s1 <- target;
    r.i1 <- pages_restored;
    r.i2 <- bytes_discarded

  let set_replay r ~target ~replay_s =
    r.kind <- k_replay;
    r.s1 <- target;
    r.f.(0) <- replay_s

  let set_queue r ~target ~server ~wait_s ~depth =
    r.kind <- k_queue;
    r.s1 <- target;
    r.i1 <- server;
    r.i2 <- depth;
    r.f.(0) <- wait_s

  let set_admit r ~target ~server ~occupancy ~slot =
    r.kind <- k_admit;
    r.s1 <- target;
    r.i1 <- server;
    r.i2 <- occupancy;
    r.i3 <- slot

  let set_reject r ~target ~server ~queue_depth =
    r.kind <- k_reject;
    r.s1 <- target;
    r.i1 <- server;
    r.i2 <- queue_depth

  let set_bw_sample r ~bps =
    r.kind <- k_bw_sample;
    r.f.(0) <- bps

  let set_checkpoint r ~target ~pages ~image_bytes ~io_cursor ~ledger_bytes =
    r.kind <- k_checkpoint;
    r.s1 <- target;
    r.i1 <- pages;
    r.i2 <- image_bytes;
    r.i3 <- io_cursor;
    r.i4 <- ledger_bytes

  let set_migrate_start r ~target ~from_server ~to_server ~reason ~transfer_s =
    r.kind <- k_migrate_start;
    r.s1 <- target;
    r.s2 <- reason;
    r.i1 <- from_server;
    r.i2 <- to_server;
    r.f.(0) <- transfer_s

  let set_migrate_done r ~target ~server ~resumed_span_s =
    r.kind <- k_migrate_done;
    r.s1 <- target;
    r.i1 <- server;
    r.f.(0) <- resumed_span_s

  (* Boxing boundary: exact inverse of the setters, so a captured
     stream is indistinguishable from one emitted boxed. *)
  let to_event (r : t) : event =
    if r.kind = k_flush then
      Flush
        {
          direction = (if r.i1 = 0 then To_server else To_mobile);
          raw_bytes = r.i2;
          wire_bytes = r.i3;
          transfer_s = r.f.(0);
          codec_s = r.f.(1);
        }
    else if r.kind = k_page_fault then
      Page_fault { page = r.i1; service_s = r.f.(0) }
    else if r.kind = k_prefetch then Prefetch { pages = r.i1; bytes = r.i2 }
    else if r.kind = k_fnptr_translate then
      Fnptr_translate { cost_s = r.f.(0) }
    else if r.kind = k_remote_io then
      Remote_io
        { io_name = r.s1; request_bytes = r.i1; response_bytes = r.i2;
          cost_s = r.f.(0) }
    else if r.kind = k_offload_begin then Offload_begin { target = r.s1 }
    else if r.kind = k_offload_end then
      Offload_end { target = r.s1; dirty_pages = r.i1; span_s = r.f.(0) }
    else if r.kind = k_refusal then Refusal { target = r.s1 }
    else if r.kind = k_power_state then
      Power_state { state = r.s1; mw = r.f.(0); duration_s = r.f.(1) }
    else if r.kind = k_estimate then
      Estimate
        { target = r.s1; predicted_gain_s = r.f.(0); local_s = r.f.(1);
          decision = r.i1 <> 0 }
    else if r.kind = k_module_load then
      Module_load { role = r.s1; functions = r.i1; globals = r.i2 }
    else if r.kind = k_fault_injected then
      Fault_injected { kind = r.s1; op = r.s2 }
    else if r.kind = k_rpc_timeout then
      Rpc_timeout { op = r.s1; attempt = r.i1; waited_s = r.f.(0) }
    else if r.kind = k_retry then
      Retry { op = r.s1; attempt = r.i1; backoff_s = r.f.(0) }
    else if r.kind = k_fallback_local then
      Fallback_local { target = r.s1; reason = r.s2; recovery_s = r.f.(0) }
    else if r.kind = k_rollback then
      Rollback { target = r.s1; pages_restored = r.i1; bytes_discarded = r.i2 }
    else if r.kind = k_replay then
      Replay { target = r.s1; replay_s = r.f.(0) }
    else if r.kind = k_queue then
      Queue { target = r.s1; server = r.i1; wait_s = r.f.(0); depth = r.i2 }
    else if r.kind = k_admit then
      Admit { target = r.s1; server = r.i1; occupancy = r.i2; slot = r.i3 }
    else if r.kind = k_reject then
      Reject { target = r.s1; server = r.i1; queue_depth = r.i2 }
    else if r.kind = k_bw_sample then Bw_sample { bps = r.f.(0) }
    else if r.kind = k_checkpoint then
      Checkpoint
        { target = r.s1; pages = r.i1; image_bytes = r.i2; io_cursor = r.i3;
          ledger_bytes = r.i4 }
    else if r.kind = k_migrate_start then
      Migrate_start
        { target = r.s1; from_server = r.i1; to_server = r.i2; reason = r.s2;
          transfer_s = r.f.(0) }
    else if r.kind = k_migrate_done then
      Migrate_done { target = r.s1; server = r.i1; resumed_span_s = r.f.(0) }
    else invalid_arg "Trace.Row.to_event: uninitialized row"

  (* Unboxing boundary: lets a row-native sink accept a boxed event
     through its [emit] field with one shared scratch row. *)
  let of_event (r : t) (ev : event) : unit =
    match ev with
    | Flush { direction; raw_bytes; wire_bytes; transfer_s; codec_s } ->
      set_flush r ~direction ~raw_bytes ~wire_bytes ~transfer_s ~codec_s
    | Page_fault { page; service_s } -> set_page_fault r ~page ~service_s
    | Prefetch { pages; bytes } -> set_prefetch r ~pages ~bytes
    | Fnptr_translate { cost_s } -> set_fnptr_translate r ~cost_s
    | Remote_io { io_name; request_bytes; response_bytes; cost_s } ->
      set_remote_io r ~io_name ~request_bytes ~response_bytes ~cost_s
    | Offload_begin { target } -> set_offload_begin r ~target
    | Offload_end { target; dirty_pages; span_s } ->
      set_offload_end r ~target ~dirty_pages ~span_s
    | Refusal { target } -> set_refusal r ~target
    | Power_state { state; mw; duration_s } ->
      set_power_state r ~state ~mw ~duration_s
    | Estimate { target; predicted_gain_s; local_s; decision } ->
      set_estimate r ~target ~predicted_gain_s ~local_s ~decision
    | Module_load { role; functions; globals } ->
      set_module_load r ~role ~functions ~globals
    | Fault_injected { kind; op } -> set_fault_injected r ~kind ~op
    | Rpc_timeout { op; attempt; waited_s } ->
      set_rpc_timeout r ~op ~attempt ~waited_s
    | Retry { op; attempt; backoff_s } -> set_retry r ~op ~attempt ~backoff_s
    | Fallback_local { target; reason; recovery_s } ->
      set_fallback_local r ~target ~reason ~recovery_s
    | Rollback { target; pages_restored; bytes_discarded } ->
      set_rollback r ~target ~pages_restored ~bytes_discarded
    | Replay { target; replay_s } -> set_replay r ~target ~replay_s
    | Queue { target; server; wait_s; depth } ->
      set_queue r ~target ~server ~wait_s ~depth
    | Admit { target; server; occupancy; slot } ->
      set_admit r ~target ~server ~occupancy ~slot
    | Reject { target; server; queue_depth } ->
      set_reject r ~target ~server ~queue_depth
    | Bw_sample { bps } -> set_bw_sample r ~bps
    | Checkpoint { target; pages; image_bytes; io_cursor; ledger_bytes } ->
      set_checkpoint r ~target ~pages ~image_bytes ~io_cursor ~ledger_bytes
    | Migrate_start { target; from_server; to_server; reason; transfer_s } ->
      set_migrate_start r ~target ~from_server ~to_server ~reason ~transfer_s
    | Migrate_done { target; server; resumed_span_s } ->
      set_migrate_done r ~target ~server ~resumed_span_s
end

(* Events that carry a time-span are stamped with the *start* of the
   span; the clock value is simulated seconds.  Every sink accepts the
   stream through either door — a boxed [event] or a scratch [Row.t] —
   and an emitter picks exactly one per event, so fan-outs and
   re-stamping wrappers forward whichever arrived without converting. *)
type sink = {
  emit : ts:float -> event -> unit;
  emit_row : ts:float -> Row.t -> unit;
}

(* Wrap a boxed-event consumer: rows are materialized at this boundary
   (the capture sinks — rings, jsonl writers — are built this way). *)
let of_emit emit =
  { emit; emit_row = (fun ~ts row -> emit ~ts (Row.to_event row)) }

let null =
  { emit = (fun ~ts:_ _ -> ()); emit_row = (fun ~ts:_ _ -> ()) }

(* Physical equality against the unique [null] closure pair lets hot
   emitters skip event construction entirely. *)
let is_null sink = sink == null

let fan_out = function
  | [] -> null
  | [ sink ] -> sink
  | sinks ->
    {
      emit = (fun ~ts ev -> List.iter (fun s -> s.emit ~ts ev) sinks);
      emit_row = (fun ~ts row -> List.iter (fun s -> s.emit_row ~ts row) sinks);
    }

(* An ideal (zero-communication-cost) run still moves bytes logically;
   only the charged times vanish.  Sessions wrap their channel sink
   with this so the stream always reflects what was *charged*. *)
let zero_cost = function
  | Flush f -> Flush { f with transfer_s = 0.0; codec_s = 0.0 }
  | ev -> ev

(* In-place twin of [zero_cost] for the row path.  Mutating the row is
   fine: it belongs to the emitter, which is done with the charged
   values once it hands the row over. *)
let zero_cost_row (r : Row.t) =
  if r.Row.kind = Row.k_flush then begin
    r.Row.f.(0) <- 0.0;
    r.Row.f.(1) <- 0.0
  end

let event_name = function
  | Flush { direction; _ } -> "flush:" ^ direction_to_string direction
  | Page_fault _ -> "page-fault"
  | Prefetch _ -> "prefetch"
  | Fnptr_translate _ -> "fnptr-translate"
  | Remote_io { io_name; _ } -> "remote-io:" ^ io_name
  | Offload_begin { target } | Offload_end { target; _ } -> "offload:" ^ target
  | Refusal { target } -> "refusal:" ^ target
  | Power_state { state; _ } -> "power:" ^ state
  | Estimate { target; _ } -> "estimate:" ^ target
  | Module_load { role; _ } -> "module-load:" ^ role
  | Fault_injected { kind; _ } -> "fault:" ^ kind
  | Rpc_timeout _ -> "rpc-timeout"
  | Retry _ -> "retry"
  | Fallback_local { target; _ } -> "fallback:" ^ target
  | Rollback { target; _ } -> "rollback:" ^ target
  | Replay { target; _ } -> "replay:" ^ target
  | Queue { target; _ } -> "queue:" ^ target
  | Admit { target; _ } -> "admit:" ^ target
  | Reject { target; _ } -> "reject:" ^ target
  | Bw_sample _ -> "bw-sample"
  | Checkpoint { target; _ } -> "checkpoint:" ^ target
  | Migrate_start { target; _ } -> "migrate:" ^ target
  | Migrate_done { target; _ } -> "migrate-done:" ^ target

(* {1 Aggregating metrics sink}

   Accumulates exactly the quantities the session's pre-refactor
   [overheads] record and the channel [stats] tracked, so derived
   reports can be checked against the mutable-counter originals. *)

module Metrics = struct
  type t = {
    mutable flushes_to_server : int;
    mutable flushes_to_mobile : int;
    mutable raw_to_server : int;
    mutable raw_to_mobile : int;
    mutable wire_to_server : int;
    mutable wire_to_mobile : int;
    mutable transfer_s : float;
    mutable codec_s : float;
    mutable fault_count : int;
    mutable fault_s : float;
    mutable prefetched_pages : int;
    mutable prefetched_bytes : int;
    mutable fnptr_count : int;
    mutable fnptr_s : float;
    mutable remote_io_count : int;
    mutable remote_io_s : float;
    mutable offloads : int;
    mutable offload_span_s : float;
    mutable refusals : int;
    mutable estimates : int;
    mutable faults_injected : int;
    mutable rpc_timeouts : int;
    mutable retries : int;
    mutable retry_wait_s : float;
    mutable fallbacks : int;
    mutable rollbacks : int;
    mutable recovery_s : float;
    mutable replays : int;
    mutable replay_s : float;
    mutable queued : int;
    mutable queue_wait_s : float;
    mutable admits : int;
    mutable rejects : int;
    mutable checkpoints : int;
    mutable checkpoint_pages : int;
    mutable checkpoint_bytes : int;
    mutable migrations : int;           (* migration attempts started *)
    mutable migrations_done : int;      (* resumed to completion remotely *)
    mutable migrate_transfer_s : float; (* checkpoint shipping time *)
    mutable migrate_resume_s : float;   (* remote span after resuming *)
    mutable energy_mj : float;
    power_s : (string, float) Hashtbl.t;
    (* (start, mw, duration, state), reversed — the Figure-8 raw
       material. *)
    mutable power_rev : (float * float * float * string) list;
  }

  let create () =
    {
      flushes_to_server = 0;
      flushes_to_mobile = 0;
      raw_to_server = 0;
      raw_to_mobile = 0;
      wire_to_server = 0;
      wire_to_mobile = 0;
      transfer_s = 0.0;
      codec_s = 0.0;
      fault_count = 0;
      fault_s = 0.0;
      prefetched_pages = 0;
      prefetched_bytes = 0;
      fnptr_count = 0;
      fnptr_s = 0.0;
      remote_io_count = 0;
      remote_io_s = 0.0;
      offloads = 0;
      offload_span_s = 0.0;
      refusals = 0;
      estimates = 0;
      faults_injected = 0;
      rpc_timeouts = 0;
      retries = 0;
      retry_wait_s = 0.0;
      fallbacks = 0;
      rollbacks = 0;
      recovery_s = 0.0;
      replays = 0;
      replay_s = 0.0;
      queued = 0;
      queue_wait_s = 0.0;
      admits = 0;
      rejects = 0;
      checkpoints = 0;
      checkpoint_pages = 0;
      checkpoint_bytes = 0;
      migrations = 0;
      migrations_done = 0;
      migrate_transfer_s = 0.0;
      migrate_resume_s = 0.0;
      energy_mj = 0.0;
      power_s = Hashtbl.create 8;
      power_rev = [];
    }

  let observe t ~ts ev =
    Selfprof.enter Sink_emit;
    (match ev with
    | Flush { direction; raw_bytes; wire_bytes; transfer_s; codec_s } ->
      (match direction with
      | To_server ->
        t.flushes_to_server <- t.flushes_to_server + 1;
        t.raw_to_server <- t.raw_to_server + raw_bytes;
        t.wire_to_server <- t.wire_to_server + wire_bytes
      | To_mobile ->
        t.flushes_to_mobile <- t.flushes_to_mobile + 1;
        t.raw_to_mobile <- t.raw_to_mobile + raw_bytes;
        t.wire_to_mobile <- t.wire_to_mobile + wire_bytes);
      t.transfer_s <- t.transfer_s +. transfer_s;
      t.codec_s <- t.codec_s +. codec_s
    | Page_fault { service_s; _ } ->
      t.fault_count <- t.fault_count + 1;
      t.fault_s <- t.fault_s +. service_s
    | Prefetch { pages; bytes } ->
      t.prefetched_pages <- t.prefetched_pages + pages;
      t.prefetched_bytes <- t.prefetched_bytes + bytes
    | Fnptr_translate { cost_s } ->
      t.fnptr_count <- t.fnptr_count + 1;
      t.fnptr_s <- t.fnptr_s +. cost_s
    | Remote_io { cost_s; _ } ->
      t.remote_io_count <- t.remote_io_count + 1;
      t.remote_io_s <- t.remote_io_s +. cost_s
    | Offload_begin _ -> t.offloads <- t.offloads + 1
    | Offload_end { span_s; _ } ->
      t.offload_span_s <- t.offload_span_s +. span_s
    | Refusal _ -> t.refusals <- t.refusals + 1
    | Power_state { state; mw; duration_s } ->
      t.energy_mj <- t.energy_mj +. (mw *. duration_s);
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt t.power_s state) in
      Hashtbl.replace t.power_s state (prev +. duration_s);
      t.power_rev <- (ts, mw, duration_s, state) :: t.power_rev
    | Estimate _ -> t.estimates <- t.estimates + 1
    | Module_load _ -> ()
    | Fault_injected _ -> t.faults_injected <- t.faults_injected + 1
    | Rpc_timeout { waited_s; _ } ->
      t.rpc_timeouts <- t.rpc_timeouts + 1;
      t.retry_wait_s <- t.retry_wait_s +. waited_s
    | Retry { backoff_s; _ } ->
      t.retries <- t.retries + 1;
      t.retry_wait_s <- t.retry_wait_s +. backoff_s
    | Fallback_local { recovery_s; _ } ->
      t.fallbacks <- t.fallbacks + 1;
      t.recovery_s <- t.recovery_s +. recovery_s
    | Rollback _ -> t.rollbacks <- t.rollbacks + 1
    | Replay { replay_s; _ } ->
      t.replays <- t.replays + 1;
      t.replay_s <- t.replay_s +. replay_s
    | Queue { wait_s; _ } ->
      t.queued <- t.queued + 1;
      t.queue_wait_s <- t.queue_wait_s +. wait_s
    | Admit _ -> t.admits <- t.admits + 1
    | Reject _ -> t.rejects <- t.rejects + 1
    | Bw_sample _ -> ()
    | Checkpoint { pages; image_bytes; _ } ->
      t.checkpoints <- t.checkpoints + 1;
      t.checkpoint_pages <- t.checkpoint_pages + pages;
      t.checkpoint_bytes <- t.checkpoint_bytes + image_bytes
    | Migrate_start { transfer_s; _ } ->
      t.migrations <- t.migrations + 1;
      t.migrate_transfer_s <- t.migrate_transfer_s +. transfer_s
    | Migrate_done { resumed_span_s; _ } ->
      t.migrations_done <- t.migrations_done + 1;
      t.migrate_resume_s <- t.migrate_resume_s +. resumed_span_s);
    Selfprof.leave Sink_emit

  let sink t = of_emit (fun ~ts ev -> observe t ~ts ev)

  (* {2 Batched accumulation}

     The float sums above are mutable fields of a mixed record, so
     every per-event [t.transfer_s <- t.transfer_s +. x] boxes a
     float.  An [acc] keeps those thirteen sums in a flat float array
     — the authoritative store while the accumulator is attached — and
     [flush_acc] materializes them into the record at window/run
     boundaries.  The addition sequence per field is exactly the
     per-event sequence, so a flushed record is bit-identical to one
     fed through [observe]; only the boxing moves to the boundary.
     Int counters and the (rare) power-residency structures update the
     record directly.

     While an [acc] is attached, read the record only after
     [flush_acc] — the float fields lag the array between flushes. *)

  (* Slots in [af], one per float field of [t]. *)
  let a_transfer = 0
  let a_codec = 1
  let a_fault = 2
  let a_fnptr = 3
  let a_remote_io = 4
  let a_offload_span = 5
  let a_retry_wait = 6
  let a_recovery = 7
  let a_replay = 8
  let a_queue_wait = 9
  let a_migrate_transfer = 10
  let a_migrate_resume = 11
  let a_energy = 12
  let a_slots = 13

  type acc = { am : t; af : float array; arow : Row.t }

  let acc m =
    let af = Array.make a_slots 0.0 in
    af.(a_transfer) <- m.transfer_s;
    af.(a_codec) <- m.codec_s;
    af.(a_fault) <- m.fault_s;
    af.(a_fnptr) <- m.fnptr_s;
    af.(a_remote_io) <- m.remote_io_s;
    af.(a_offload_span) <- m.offload_span_s;
    af.(a_retry_wait) <- m.retry_wait_s;
    af.(a_recovery) <- m.recovery_s;
    af.(a_replay) <- m.replay_s;
    af.(a_queue_wait) <- m.queue_wait_s;
    af.(a_migrate_transfer) <- m.migrate_transfer_s;
    af.(a_migrate_resume) <- m.migrate_resume_s;
    af.(a_energy) <- m.energy_mj;
    { am = m; af; arow = Row.create () }

  let flush_acc a =
    let m = a.am and af = a.af in
    m.transfer_s <- af.(a_transfer);
    m.codec_s <- af.(a_codec);
    m.fault_s <- af.(a_fault);
    m.fnptr_s <- af.(a_fnptr);
    m.remote_io_s <- af.(a_remote_io);
    m.offload_span_s <- af.(a_offload_span);
    m.retry_wait_s <- af.(a_retry_wait);
    m.recovery_s <- af.(a_recovery);
    m.replay_s <- af.(a_replay);
    m.queue_wait_s <- af.(a_queue_wait);
    m.migrate_transfer_s <- af.(a_migrate_transfer);
    m.migrate_resume_s <- af.(a_migrate_resume);
    m.energy_mj <- af.(a_energy)

  let observe_row a ~ts (r : Row.t) =
    Selfprof.enter Sink_emit;
    let m = a.am and af = a.af in
    let k = r.Row.kind in
    (if k = Row.k_flush then begin
       (if r.Row.i1 = 0 then begin
          m.flushes_to_server <- m.flushes_to_server + 1;
          m.raw_to_server <- m.raw_to_server + r.Row.i2;
          m.wire_to_server <- m.wire_to_server + r.Row.i3
        end
        else begin
          m.flushes_to_mobile <- m.flushes_to_mobile + 1;
          m.raw_to_mobile <- m.raw_to_mobile + r.Row.i2;
          m.wire_to_mobile <- m.wire_to_mobile + r.Row.i3
        end);
       af.(a_transfer) <- af.(a_transfer) +. r.Row.f.(0);
       af.(a_codec) <- af.(a_codec) +. r.Row.f.(1)
     end
     else if k = Row.k_page_fault then begin
       m.fault_count <- m.fault_count + 1;
       af.(a_fault) <- af.(a_fault) +. r.Row.f.(0)
     end
     else if k = Row.k_prefetch then begin
       m.prefetched_pages <- m.prefetched_pages + r.Row.i1;
       m.prefetched_bytes <- m.prefetched_bytes + r.Row.i2
     end
     else if k = Row.k_fnptr_translate then begin
       m.fnptr_count <- m.fnptr_count + 1;
       af.(a_fnptr) <- af.(a_fnptr) +. r.Row.f.(0)
     end
     else if k = Row.k_remote_io then begin
       m.remote_io_count <- m.remote_io_count + 1;
       af.(a_remote_io) <- af.(a_remote_io) +. r.Row.f.(0)
     end
     else if k = Row.k_offload_begin then m.offloads <- m.offloads + 1
     else if k = Row.k_offload_end then
       af.(a_offload_span) <- af.(a_offload_span) +. r.Row.f.(0)
     else if k = Row.k_refusal then m.refusals <- m.refusals + 1
     else if k = Row.k_power_state then begin
       let mw = r.Row.f.(0) and duration_s = r.Row.f.(1) in
       af.(a_energy) <- af.(a_energy) +. (mw *. duration_s);
       let state = r.Row.s1 in
       let prev =
         Option.value ~default:0.0 (Hashtbl.find_opt m.power_s state)
       in
       Hashtbl.replace m.power_s state (prev +. duration_s);
       m.power_rev <- (ts, mw, duration_s, state) :: m.power_rev
     end
     else if k = Row.k_estimate then m.estimates <- m.estimates + 1
     else if k = Row.k_module_load then ()
     else if k = Row.k_fault_injected then
       m.faults_injected <- m.faults_injected + 1
     else if k = Row.k_rpc_timeout then begin
       m.rpc_timeouts <- m.rpc_timeouts + 1;
       af.(a_retry_wait) <- af.(a_retry_wait) +. r.Row.f.(0)
     end
     else if k = Row.k_retry then begin
       m.retries <- m.retries + 1;
       af.(a_retry_wait) <- af.(a_retry_wait) +. r.Row.f.(0)
     end
     else if k = Row.k_fallback_local then begin
       m.fallbacks <- m.fallbacks + 1;
       af.(a_recovery) <- af.(a_recovery) +. r.Row.f.(0)
     end
     else if k = Row.k_rollback then m.rollbacks <- m.rollbacks + 1
     else if k = Row.k_replay then begin
       m.replays <- m.replays + 1;
       af.(a_replay) <- af.(a_replay) +. r.Row.f.(0)
     end
     else if k = Row.k_queue then begin
       m.queued <- m.queued + 1;
       af.(a_queue_wait) <- af.(a_queue_wait) +. r.Row.f.(0)
     end
     else if k = Row.k_admit then m.admits <- m.admits + 1
     else if k = Row.k_reject then m.rejects <- m.rejects + 1
     else if k = Row.k_bw_sample then ()
     else if k = Row.k_checkpoint then begin
       m.checkpoints <- m.checkpoints + 1;
       m.checkpoint_pages <- m.checkpoint_pages + r.Row.i1;
       m.checkpoint_bytes <- m.checkpoint_bytes + r.Row.i2
     end
     else if k = Row.k_migrate_start then begin
       m.migrations <- m.migrations + 1;
       af.(a_migrate_transfer) <- af.(a_migrate_transfer) +. r.Row.f.(0)
     end
     else if k = Row.k_migrate_done then begin
       m.migrations_done <- m.migrations_done + 1;
       af.(a_migrate_resume) <- af.(a_migrate_resume) +. r.Row.f.(0)
     end);
    Selfprof.leave Sink_emit

  let acc_sink a =
    {
      emit =
        (fun ~ts ev ->
          Row.of_event a.arow ev;
          observe_row a ~ts a.arow);
      emit_row = (fun ~ts r -> observe_row a ~ts r);
    }

  (* Field-wise addition, used to reconstitute run totals from
     windowed per-interval metrics (Obs.Series).  Power segments are
     prepended so that merging windows in chronological order keeps
     [power_rev] reverse-chronological, like a single sink would. *)
  let merge_into ~into src =
    into.flushes_to_server <- into.flushes_to_server + src.flushes_to_server;
    into.flushes_to_mobile <- into.flushes_to_mobile + src.flushes_to_mobile;
    into.raw_to_server <- into.raw_to_server + src.raw_to_server;
    into.raw_to_mobile <- into.raw_to_mobile + src.raw_to_mobile;
    into.wire_to_server <- into.wire_to_server + src.wire_to_server;
    into.wire_to_mobile <- into.wire_to_mobile + src.wire_to_mobile;
    into.transfer_s <- into.transfer_s +. src.transfer_s;
    into.codec_s <- into.codec_s +. src.codec_s;
    into.fault_count <- into.fault_count + src.fault_count;
    into.fault_s <- into.fault_s +. src.fault_s;
    into.prefetched_pages <- into.prefetched_pages + src.prefetched_pages;
    into.prefetched_bytes <- into.prefetched_bytes + src.prefetched_bytes;
    into.fnptr_count <- into.fnptr_count + src.fnptr_count;
    into.fnptr_s <- into.fnptr_s +. src.fnptr_s;
    into.remote_io_count <- into.remote_io_count + src.remote_io_count;
    into.remote_io_s <- into.remote_io_s +. src.remote_io_s;
    into.offloads <- into.offloads + src.offloads;
    into.offload_span_s <- into.offload_span_s +. src.offload_span_s;
    into.refusals <- into.refusals + src.refusals;
    into.estimates <- into.estimates + src.estimates;
    into.faults_injected <- into.faults_injected + src.faults_injected;
    into.rpc_timeouts <- into.rpc_timeouts + src.rpc_timeouts;
    into.retries <- into.retries + src.retries;
    into.retry_wait_s <- into.retry_wait_s +. src.retry_wait_s;
    into.fallbacks <- into.fallbacks + src.fallbacks;
    into.rollbacks <- into.rollbacks + src.rollbacks;
    into.recovery_s <- into.recovery_s +. src.recovery_s;
    into.replays <- into.replays + src.replays;
    into.replay_s <- into.replay_s +. src.replay_s;
    into.queued <- into.queued + src.queued;
    into.queue_wait_s <- into.queue_wait_s +. src.queue_wait_s;
    into.admits <- into.admits + src.admits;
    into.rejects <- into.rejects + src.rejects;
    into.checkpoints <- into.checkpoints + src.checkpoints;
    into.checkpoint_pages <- into.checkpoint_pages + src.checkpoint_pages;
    into.checkpoint_bytes <- into.checkpoint_bytes + src.checkpoint_bytes;
    into.migrations <- into.migrations + src.migrations;
    into.migrations_done <- into.migrations_done + src.migrations_done;
    into.migrate_transfer_s <-
      into.migrate_transfer_s +. src.migrate_transfer_s;
    into.migrate_resume_s <- into.migrate_resume_s +. src.migrate_resume_s;
    into.energy_mj <- into.energy_mj +. src.energy_mj;
    Hashtbl.iter
      (fun state s ->
        let prev =
          Option.value ~default:0.0 (Hashtbl.find_opt into.power_s state)
        in
        Hashtbl.replace into.power_s state (prev +. s))
      src.power_s;
    into.power_rev <- src.power_rev @ into.power_rev

  (* The session charges communication time for every physical flush
     (transfer + codec) and every copy-on-demand round trip. *)
  let comm_s t = t.transfer_s +. t.codec_s +. t.fault_s

  (* Power segments partition the whole run, so their total duration
     is the run's wall clock. *)
  let total_s t =
    List.fold_left (fun acc (_, _, d, _) -> acc +. d) 0.0 t.power_rev

  let time_in_state t state =
    Option.value ~default:0.0 (Hashtbl.find_opt t.power_s state)

  let power_segments t = List.rev t.power_rev

  (* Mirror of [Battery.resample]: (time, mW) at a fixed period from 0
     to the last segment's end, falling back to [idle_mw] where no
     segment covers the sample point. *)
  let resample_power t ~period_s ~idle_mw =
    let segs = power_segments t in
    match t.power_rev with
    | [] -> []
    | (last_ts, _, last_dur, _) :: _ ->
      let horizon = last_ts +. last_dur in
      let n = int_of_float (ceil (horizon /. period_s)) in
      List.init (n + 1) (fun i ->
          let time = float_of_int i *. period_s in
          let mw =
            match
              List.find_opt
                (fun (ts, _, dur, _) -> ts <= time && time < ts +. dur)
                segs
            with
            | Some (_, mw, _, _) -> mw
            | None -> idle_mw
          in
          (time, mw))

  (* Label/value pairs for rendering a per-run metrics table. *)
  let to_rows t : (string * string) list =
    [
      ("offloads", string_of_int t.offloads);
      ("refusals", string_of_int t.refusals);
      ("estimates", string_of_int t.estimates);
      ("offload span (s)", Printf.sprintf "%.4f" t.offload_span_s);
      ("communication (s)", Printf.sprintf "%.4f" (comm_s t));
      ("  transfer (s)", Printf.sprintf "%.4f" t.transfer_s);
      ("  codec (s)", Printf.sprintf "%.4f" t.codec_s);
      ("  fault service (s)", Printf.sprintf "%.4f" t.fault_s);
      ("fn-ptr translations", string_of_int t.fnptr_count);
      ("fn-ptr time (s)", Printf.sprintf "%.4f" t.fnptr_s);
      ("remote I/O ops", string_of_int t.remote_io_count);
      ("remote I/O time (s)", Printf.sprintf "%.4f" t.remote_io_s);
      ("page faults", string_of_int t.fault_count);
      ("prefetched pages", string_of_int t.prefetched_pages);
      ("prefetched bytes", string_of_int t.prefetched_bytes);
      ("flushes to server", string_of_int t.flushes_to_server);
      ("flushes to mobile", string_of_int t.flushes_to_mobile);
      ("raw bytes to server", string_of_int t.raw_to_server);
      ("raw bytes to mobile", string_of_int t.raw_to_mobile);
      ("wire bytes to server", string_of_int t.wire_to_server);
      ("wire bytes to mobile", string_of_int t.wire_to_mobile);
      ("faults injected", string_of_int t.faults_injected);
      ("rpc timeouts", string_of_int t.rpc_timeouts);
      ("retries", string_of_int t.retries);
      ("retry wait (s)", Printf.sprintf "%.4f" t.retry_wait_s);
      ("local fallbacks", string_of_int t.fallbacks);
      ("rollbacks", string_of_int t.rollbacks);
      ("recovery time (s)", Printf.sprintf "%.4f" t.recovery_s);
      ("local replays", string_of_int t.replays);
      ("replay time (s)", Printf.sprintf "%.4f" t.replay_s);
      ("server admits", string_of_int t.admits);
      ("server rejects", string_of_int t.rejects);
      ("queued offloads", string_of_int t.queued);
      ("queue wait (s)", Printf.sprintf "%.4f" t.queue_wait_s);
      ("checkpoints", string_of_int t.checkpoints);
      ("checkpoint pages", string_of_int t.checkpoint_pages);
      ("checkpoint bytes", string_of_int t.checkpoint_bytes);
      ("migrations started", string_of_int t.migrations);
      ("migrations completed", string_of_int t.migrations_done);
      ("migrate transfer (s)", Printf.sprintf "%.4f" t.migrate_transfer_s);
      ("migrate resume (s)", Printf.sprintf "%.4f" t.migrate_resume_s);
      ("energy (mJ)", Printf.sprintf "%.2f" t.energy_mj);
      ("total time (s)", Printf.sprintf "%.4f" (total_s t));
    ]
end

(* {1 Ring-buffer sink}

   Bounded capture of the raw stream, oldest events evicted first —
   the input for the Chrome-trace exporter and for tests. *)

module Ring = struct
  type t = {
    capacity : int;
    buf : (float * event) option array;
    mutable next : int;               (* next write slot *)
    mutable stored : int;
    mutable dropped : int;
  }

  let create ?(capacity = 65536) () =
    if capacity <= 0 then invalid_arg "Trace.Ring.create: capacity";
    { capacity; buf = Array.make capacity None; next = 0; stored = 0;
      dropped = 0 }

  let record t ~ts ev =
    Selfprof.enter Sink_emit;
    if t.stored = t.capacity then t.dropped <- t.dropped + 1
    else t.stored <- t.stored + 1;
    t.buf.(t.next) <- Some (ts, ev);
    t.next <- (t.next + 1) mod t.capacity;
    Selfprof.leave Sink_emit

  (* Rows are boxed here — the ring is a capture boundary. *)
  let sink t = of_emit (fun ~ts ev -> record t ~ts ev)

  let length t = t.stored
  let dropped t = t.dropped

  (* Oldest first.  One pass over the stored slots, newest to oldest,
     consing onto the result: O(stored) time and no stack growth, no
     matter how many events were evicted before the call. *)
  let events t : (float * event) list =
    let start = (t.next - t.stored + t.capacity) mod t.capacity in
    let acc = ref [] in
    for i = t.stored - 1 downto 0 do
      match t.buf.((start + i) mod t.capacity) with
      | Some entry -> acc := entry :: !acc
      | None -> assert false
    done;
    !acc
end

(* {1 Tail-based trace sampler}

   Capture-everything observability (rings, raw jsonl) is exactly the
   cost the self-profiler shows dominating fleet runs, so at 10^4+
   clients the spine needs a sampling layer: keep every trace that
   *matters* (faulted, migrated, SLO-violating, top-of-the-latency
   tail) plus a seeded budget of the rest, and pay the boxing cost
   only for kept tasks.

   Mechanics: each client sink buffers incoming rows — copied into
   preallocated scratch rows, never boxed — for the task currently in
   flight.  A task runs from its first row to its terminal row
   (offload-end, refusal or reject) plus the epilogue that follows it
   (rollback/replay, power segments, mobile flushes); the keep/drop
   decision falls when the *next* task starts (estimate or
   offload-begin) or at {!flush}.  Kept tasks box their buffered rows
   into events under a stable trace id ("c<client>-t<task>"); dropped
   tasks just rewind the buffer — no allocation beyond the buffer's
   own growth to its working size.

   Every decision is a pure function of (stream content, seed), never
   of arrival interleaving: the probabilistic leg is a stateless
   per-(client, task) draw supplied as the [keep] closure, and the
   deterministic legs (fault/migrate flags, SLO threshold, the
   fleet-wide top-latency reservoir) read only the simulated stream,
   which is itself deterministic.  Same seed, same kept set, byte for
   byte. *)

module Sampler = struct
  type reason = Faulted | Migrated | Slo | Reservoir | Budget

  (* Growable buffer of copied rows + their (already re-stamped)
     global timestamps.  Slots are reused across tasks, so a client's
     steady-state cost is its longest task, not its task count. *)
  type buf = {
    mutable bts : float array;
    mutable brows : Row.t array;
    mutable blen : int;
  }

  type cstate = {
    c_id : int;
    c_start : float;
    c_buf : buf;
    c_srow : Row.t;               (* scratch for the boxed door *)
    mutable c_task : int;         (* next task ordinal for this client *)
    mutable c_pending : bool;     (* terminal row seen; close on task start *)
    mutable c_faulted : bool;
    mutable c_migrated : bool;
    mutable c_latency : float;    (* max offload span inside the task *)
  }

  type t = {
    sp_slo_limit : float;
    sp_reservoir : int;
    sp_keep : client:int -> task:int -> bool;
    sp_exemplar :
      (ts:float -> kind:int -> value:float -> trace_id:string -> unit) option;
    sp_clients : (int, cstate) Hashtbl.t;
    mutable sp_res : float list;  (* reservoir latencies, ascending *)
    mutable sp_res_n : int;
    mutable sp_tasks : int;
    mutable sp_kept : (string * (float * event) list) list;  (* newest first *)
    mutable sp_kept_n : int;
    mutable sp_rows_seen : int;
    mutable sp_rows_kept : int;
    mutable sp_live_rows : int;   (* buffered right now, fleet-wide *)
    mutable sp_peak_rows : int;
    mutable sp_r_faulted : int;
    mutable sp_r_migrated : int;
    mutable sp_r_slo : int;
    mutable sp_r_reservoir : int;
    mutable sp_r_budget : int;
  }

  let create ?(reservoir = 8) ?(slo_limit_s = infinity) ?exemplar ~keep () =
    if reservoir < 0 then invalid_arg "Trace.Sampler.create: reservoir";
    {
      sp_slo_limit = slo_limit_s;
      sp_reservoir = reservoir;
      sp_keep = keep;
      sp_exemplar = exemplar;
      sp_clients = Hashtbl.create 64;
      sp_res = [];
      sp_res_n = 0;
      sp_tasks = 0;
      sp_kept = [];
      sp_kept_n = 0;
      sp_rows_seen = 0;
      sp_rows_kept = 0;
      sp_live_rows = 0;
      sp_peak_rows = 0;
      sp_r_faulted = 0;
      sp_r_migrated = 0;
      sp_r_slo = 0;
      sp_r_reservoir = 0;
      sp_r_budget = 0;
    }

  let copy_row (dst : Row.t) (src : Row.t) =
    dst.Row.kind <- src.Row.kind;
    dst.Row.i1 <- src.Row.i1;
    dst.Row.i2 <- src.Row.i2;
    dst.Row.i3 <- src.Row.i3;
    dst.Row.i4 <- src.Row.i4;
    dst.Row.f.(0) <- src.Row.f.(0);
    dst.Row.f.(1) <- src.Row.f.(1);
    dst.Row.s1 <- src.Row.s1;
    dst.Row.s2 <- src.Row.s2

  (* The latency a row contributes to the tail decision and to
     exemplars — mirrors the windowed series' latency kinds. *)
  let latency_of_row (r : Row.t) =
    let k = r.Row.kind in
    if k = Row.k_flush then r.Row.f.(0) +. r.Row.f.(1)
    else if
      k = Row.k_offload_end || k = Row.k_page_fault
      || k = Row.k_remote_io || k = Row.k_fnptr_translate
      || k = Row.k_rpc_timeout || k = Row.k_retry || k = Row.k_replay
      || k = Row.k_queue || k = Row.k_migrate_start
    then r.Row.f.(0)
    else Float.nan

  (* Online fleet-wide top-K reservoir: admit a completed task's peak
     latency when the reservoir has room or the latency beats its
     current minimum.  Stream order is deterministic, so the admitted
     set is too. *)
  let reservoir_admit t v =
    if t.sp_reservoir = 0 || not (v > 0.0) then false
    else if t.sp_res_n < t.sp_reservoir then begin
      t.sp_res <- List.sort Float.compare (v :: t.sp_res);
      t.sp_res_n <- t.sp_res_n + 1;
      true
    end
    else
      match t.sp_res with
      | smallest :: rest when v > smallest ->
        t.sp_res <- List.sort Float.compare (v :: rest);
        true
      | _ -> false

  let grow_buf b want =
    let cap = ref (Stdlib.max 1 (Array.length b.brows)) in
    while !cap <= want do
      cap := !cap * 2
    done;
    let bts = Array.make !cap 0.0 in
    let brows = Array.init !cap (fun _ -> Row.create ()) in
    Array.blit b.bts 0 bts 0 b.blen;
    Array.blit b.brows 0 brows 0 b.blen;
    b.bts <- bts;
    b.brows <- brows

  (* Close the in-flight task of [c] and decide its fate.  Kept tasks
     box here — the only place the sampler allocates per event — and
     feed the exemplar hook so aggregate views can point back at a
     trace id that is actually retained. *)
  let close_task t (c : cstate) =
    if c.c_buf.blen > 0 then begin
      t.sp_tasks <- t.sp_tasks + 1;
      let reason =
        if c.c_faulted then Some Faulted
        else if c.c_migrated then Some Migrated
        else if c.c_latency >= t.sp_slo_limit then Some Slo
        else if reservoir_admit t c.c_latency then Some Reservoir
        else if t.sp_keep ~client:c.c_id ~task:c.c_task then Some Budget
        else None
      in
      (match reason with
      | None -> ()
      | Some reason ->
        (match reason with
        | Faulted -> t.sp_r_faulted <- t.sp_r_faulted + 1
        | Migrated -> t.sp_r_migrated <- t.sp_r_migrated + 1
        | Slo -> t.sp_r_slo <- t.sp_r_slo + 1
        | Reservoir -> t.sp_r_reservoir <- t.sp_r_reservoir + 1
        | Budget -> t.sp_r_budget <- t.sp_r_budget + 1);
        let trace_id = Printf.sprintf "c%d-t%d" c.c_id c.c_task in
        let events = ref [] in
        for i = c.c_buf.blen - 1 downto 0 do
          let ts = c.c_buf.bts.(i) and row = c.c_buf.brows.(i) in
          events := (ts, Row.to_event row) :: !events;
          match t.sp_exemplar with
          | None -> ()
          | Some hook ->
            let v = latency_of_row row in
            if not (Float.is_nan v) then
              hook ~ts ~kind:row.Row.kind ~value:v ~trace_id
        done;
        t.sp_kept <- (trace_id, !events) :: t.sp_kept;
        t.sp_kept_n <- t.sp_kept_n + 1;
        t.sp_rows_kept <- t.sp_rows_kept + c.c_buf.blen);
      t.sp_live_rows <- t.sp_live_rows - c.c_buf.blen;
      c.c_buf.blen <- 0;
      c.c_task <- c.c_task + 1;
      c.c_pending <- false;
      c.c_faulted <- false;
      c.c_migrated <- false;
      c.c_latency <- 0.0
    end

  let observe_row t (c : cstate) ~ts (row : Row.t) =
    Selfprof.enter Sink_emit;
    t.sp_rows_seen <- t.sp_rows_seen + 1;
    let k = row.Row.kind in
    (* A task-starting row first closes the pending task. *)
    if c.c_pending && (k = Row.k_estimate || k = Row.k_offload_begin) then
      close_task t c;
    let b = c.c_buf in
    if b.blen >= Array.length b.brows then grow_buf b b.blen;
    b.bts.(b.blen) <- ts;
    copy_row b.brows.(b.blen) row;
    b.blen <- b.blen + 1;
    t.sp_live_rows <- t.sp_live_rows + 1;
    if t.sp_live_rows > t.sp_peak_rows then t.sp_peak_rows <- t.sp_live_rows;
    (* The fault-recovery machinery marks a task as faulted; a bare
       Replay (the admission-reject path's forced local run) does not —
       rejection under saturation is routine, and a replay that follows
       a real failure always rides with a rollback/fallback marker. *)
    if
      k = Row.k_fault_injected || k = Row.k_rpc_timeout || k = Row.k_retry
      || k = Row.k_fallback_local || k = Row.k_rollback
    then c.c_faulted <- true
    else if
      k = Row.k_checkpoint || k = Row.k_migrate_start
      || k = Row.k_migrate_done
    then c.c_migrated <- true;
    if k = Row.k_offload_end && row.Row.f.(0) > c.c_latency then
      c.c_latency <- row.Row.f.(0);
    if k = Row.k_offload_end || k = Row.k_refusal || k = Row.k_reject then
      c.c_pending <- true;
    Selfprof.leave Sink_emit

  let cstate_of t ~client ~start_s =
    match Hashtbl.find_opt t.sp_clients client with
    | Some c -> c
    | None ->
      let c =
        {
          c_id = client;
          c_start = start_s;
          c_buf = { bts = Array.make 32 0.0;
                    brows = Array.init 32 (fun _ -> Row.create ());
                    blen = 0 };
          c_srow = Row.create ();
          c_task = 0;
          c_pending = false;
          c_faulted = false;
          c_migrated = false;
          c_latency = 0.0;
        }
      in
      Hashtbl.replace t.sp_clients client c;
      c

  (* The per-client door.  Timestamps are re-stamped onto the global
     clock here ([start_s] added), so kept traces from different
     clients interleave on one timeline. *)
  let client_sink t ~client ~start_s =
    let c = cstate_of t ~client ~start_s in
    {
      emit =
        (fun ~ts ev ->
          Row.of_event c.c_srow ev;
          observe_row t c ~ts:(c.c_start +. ts) c.c_srow);
      emit_row = (fun ~ts row -> observe_row t c ~ts:(c.c_start +. ts) row);
    }

  (* A client's session ended: decide its trailing task now, so its
     buffer frees while the fleet is still running — peak resident
     rows track *concurrent* sessions, not total clients. *)
  let close_client t ~client =
    match Hashtbl.find_opt t.sp_clients client with
    | Some c -> close_task t c
    | None -> ()

  (* Close every client's in-flight task, ascending client id — the
     end-of-run decision order must not depend on hashtable layout. *)
  let flush t =
    let ids =
      List.sort compare
        (Hashtbl.fold (fun id _ acc -> id :: acc) t.sp_clients [])
    in
    List.iter (fun id -> close_task t (Hashtbl.find t.sp_clients id)) ids

  let tasks t = t.sp_tasks
  let kept t = t.sp_kept_n
  let rows_seen t = t.sp_rows_seen
  let rows_kept t = t.sp_rows_kept
  let buffered_rows_peak t = t.sp_peak_rows
  let kept_traces t = List.rev t.sp_kept
  let kept_ids t = List.rev_map fst t.sp_kept

  let reasons t =
    [
      ("faulted", t.sp_r_faulted);
      ("migrated", t.sp_r_migrated);
      ("slo", t.sp_r_slo);
      ("reservoir", t.sp_r_reservoir);
      ("budget", t.sp_r_budget);
    ]

  (* All kept events on the global clock, stably sorted — what a
     sampled raw-trace file holds.  Ties keep decision order, so
     seeded reruns serialize byte-identically. *)
  let kept_events t =
    List.stable_sort
      (fun (a, _) (b, _) -> Float.compare a b)
      (List.concat_map snd (List.rev t.sp_kept))
end

(* {1 Chrome-trace JSON exporter}

   Produces the Trace Event Format consumed by chrome://tracing and
   Perfetto: offload life cycles as B/E duration pairs, transfers and
   service costs as X complete events, decisions as instants, and the
   power draw as a counter track.  Timestamps are microseconds. *)

module Chrome = struct
  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let us s = s *. 1e6

  (* Thread layout: 1 = the offload session, 2 = network + service
     costs, 3 = the power counter track. *)
  let session_tid = 1
  let net_tid = 2
  let power_tid = 3

  let record ~name ~ph ~ts ?dur ?tid ?args () =
    let b = Buffer.create 128 in
    Buffer.add_string b
      (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1"
         (escape name) ph ts);
    (match tid with
    | Some tid -> Buffer.add_string b (Printf.sprintf ",\"tid\":%d" tid)
    | None -> ());
    (match dur with
    | Some d -> Buffer.add_string b (Printf.sprintf ",\"dur\":%.3f" d)
    | None -> ());
    if ph = "i" then Buffer.add_string b ",\"s\":\"t\"";
    (match args with
    | Some kvs ->
      Buffer.add_string b ",\"args\":{";
      Buffer.add_string b
        (String.concat ","
           (List.map
              (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) v)
              kvs));
      Buffer.add_char b '}'
    | None -> ());
    Buffer.add_char b '}';
    Buffer.contents b

  let of_event (ts, ev) : string =
    let name = event_name ev in
    let ts = us ts in
    match ev with
    | Flush { raw_bytes; wire_bytes; transfer_s; codec_s; _ } ->
      record ~name ~ph:"X" ~ts ~dur:(us (transfer_s +. codec_s)) ~tid:net_tid
        ~args:
          [
            ("raw_bytes", string_of_int raw_bytes);
            ("wire_bytes", string_of_int wire_bytes);
            ("transfer_us", Printf.sprintf "%.3f" (us transfer_s));
            ("codec_us", Printf.sprintf "%.3f" (us codec_s));
          ]
        ()
    | Page_fault { page; service_s } ->
      record ~name ~ph:"X" ~ts ~dur:(us service_s) ~tid:net_tid
        ~args:[ ("page", string_of_int page) ]
        ()
    | Prefetch { pages; bytes } ->
      record ~name ~ph:"i" ~ts ~tid:net_tid
        ~args:
          [ ("pages", string_of_int pages); ("bytes", string_of_int bytes) ]
        ()
    | Fnptr_translate { cost_s } ->
      record ~name ~ph:"X" ~ts ~dur:(us cost_s) ~tid:net_tid ()
    | Remote_io { request_bytes; response_bytes; cost_s; _ } ->
      record ~name ~ph:"X" ~ts ~dur:(us cost_s) ~tid:net_tid
        ~args:
          [
            ("request_bytes", string_of_int request_bytes);
            ("response_bytes", string_of_int response_bytes);
          ]
        ()
    | Offload_begin _ -> record ~name ~ph:"B" ~ts ~tid:session_tid ()
    | Offload_end { dirty_pages; span_s; _ } ->
      record ~name ~ph:"E" ~ts ~tid:session_tid
        ~args:
          [
            ("dirty_pages", string_of_int dirty_pages);
            ("span_us", Printf.sprintf "%.3f" (us span_s));
          ]
        ()
    | Refusal _ -> record ~name ~ph:"i" ~ts ~tid:session_tid ()
    | Power_state { mw; state; _ } ->
      record ~name:"power" ~ph:"C" ~ts ~tid:power_tid
        ~args:
          [ ("mW", Printf.sprintf "%.1f" mw);
            ("state", Printf.sprintf "\"%s\"" (escape state)) ]
        ()
    | Estimate { predicted_gain_s; local_s; decision; _ } ->
      record ~name ~ph:"i" ~ts ~tid:session_tid
        ~args:
          [
            ("predicted_gain_s", Printf.sprintf "%.6f" predicted_gain_s);
            ("local_s", Printf.sprintf "%.6f" local_s);
            ("decision", if decision then "true" else "false");
          ]
        ()
    | Module_load { functions; globals; _ } ->
      record ~name ~ph:"i" ~ts ~tid:session_tid
        ~args:
          [
            ("functions", string_of_int functions);
            ("globals", string_of_int globals);
          ]
        ()
    | Fault_injected { op; _ } ->
      record ~name ~ph:"i" ~ts ~tid:net_tid
        ~args:[ ("op", Printf.sprintf "\"%s\"" (escape op)) ]
        ()
    | Rpc_timeout { op; attempt; waited_s } ->
      record ~name ~ph:"X" ~ts ~dur:(us waited_s) ~tid:net_tid
        ~args:
          [
            ("op", Printf.sprintf "\"%s\"" (escape op));
            ("attempt", string_of_int attempt);
          ]
        ()
    | Retry { op; attempt; backoff_s } ->
      record ~name ~ph:"X" ~ts ~dur:(us backoff_s) ~tid:net_tid
        ~args:
          [
            ("op", Printf.sprintf "\"%s\"" (escape op));
            ("attempt", string_of_int attempt);
          ]
        ()
    | Fallback_local { reason; recovery_s; _ } ->
      record ~name ~ph:"i" ~ts ~tid:session_tid
        ~args:
          [
            ("reason", Printf.sprintf "\"%s\"" (escape reason));
            ("recovery_us", Printf.sprintf "%.3f" (us recovery_s));
          ]
        ()
    | Rollback { pages_restored; bytes_discarded; _ } ->
      record ~name ~ph:"i" ~ts ~tid:session_tid
        ~args:
          [
            ("pages_restored", string_of_int pages_restored);
            ("bytes_discarded", string_of_int bytes_discarded);
          ]
        ()
    | Replay { replay_s; _ } ->
      record ~name ~ph:"X" ~ts ~dur:(us replay_s) ~tid:session_tid ()
    | Queue { server; wait_s; depth; _ } ->
      record ~name ~ph:"X" ~ts ~dur:(us wait_s) ~tid:session_tid
        ~args:
          [ ("server", string_of_int server);
            ("depth", string_of_int depth) ]
        ()
    | Admit { server; occupancy; slot; _ } ->
      record ~name ~ph:"i" ~ts ~tid:session_tid
        ~args:
          [ ("server", string_of_int server);
            ("occupancy", string_of_int occupancy);
            ("slot", string_of_int slot) ]
        ()
    | Reject { server; queue_depth; _ } ->
      record ~name ~ph:"i" ~ts ~tid:session_tid
        ~args:
          [ ("server", string_of_int server);
            ("queue_depth", string_of_int queue_depth) ]
        ()
    | Bw_sample { bps } ->
      record ~name:"bandwidth-belief" ~ph:"C" ~ts ~tid:net_tid
        ~args:[ ("bps", Printf.sprintf "%.1f" bps) ]
        ()
    | Checkpoint { pages; image_bytes; io_cursor; ledger_bytes; _ } ->
      record ~name ~ph:"i" ~ts ~tid:session_tid
        ~args:
          [
            ("pages", string_of_int pages);
            ("image_bytes", string_of_int image_bytes);
            ("io_cursor", string_of_int io_cursor);
            ("ledger_bytes", string_of_int ledger_bytes);
          ]
        ()
    | Migrate_start { from_server; to_server; reason; transfer_s; _ } ->
      record ~name ~ph:"X" ~ts ~dur:(us transfer_s) ~tid:net_tid
        ~args:
          [
            ("from_server", string_of_int from_server);
            ("to_server", string_of_int to_server);
            ("reason", Printf.sprintf "\"%s\"" (escape reason));
          ]
        ()
    | Migrate_done { server; resumed_span_s; _ } ->
      record ~name ~ph:"i" ~ts ~tid:session_tid
        ~args:
          [
            ("server", string_of_int server);
            ("resumed_span_us", Printf.sprintf "%.3f" (us resumed_span_s));
          ]
        ()

  let thread_meta tid label =
    Printf.sprintf
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0.000,\"pid\":1,\
       \"tid\":%d,\"args\":{\"name\":\"%s\"}}"
      tid (escape label)

  let export ?(process = "native-offloader") (events : (float * event) list) :
      string =
    (* The sink receives power segments stamped at segment *start*,
       i.e. behind the live clock; a stable sort restores global
       timestamp order while preserving emission order (and hence B/E
       nesting) among equal stamps. *)
    let events =
      List.stable_sort (fun (a, _) (b, _) -> compare a b) events
    in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"traceEvents\":[";
    Buffer.add_string buf
      (Printf.sprintf
         "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0.000,\"pid\":1,\
          \"args\":{\"name\":\"%s\"}}"
         (escape process));
    List.iter
      (fun (tid, label) ->
        Buffer.add_char buf ',';
        Buffer.add_string buf (thread_meta tid label))
      [ (session_tid, "offload session"); (net_tid, "network");
        (power_tid, "power") ];
    List.iter
      (fun entry ->
        Buffer.add_char buf ',';
        Buffer.add_string buf (of_event entry))
      events;
    Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
    Buffer.contents buf
end
