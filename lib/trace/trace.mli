(** The runtime event spine: typed events for everything the
    offloading runtime does that costs time, bytes or energy, plus a
    pluggable sink interface.

    Layers emit through a {!sink} threaded via the session
    configuration; aggregate views (the Figure-7 overhead breakdown,
    the Figure-8 power timeline, per-run metrics) are derived from the
    stream.  Sits below every emitting layer, so it depends on nothing
    but the standard library. *)

type direction = To_server | To_mobile

val direction_to_string : direction -> string

type event =
  | Flush of {
      direction : direction;
      raw_bytes : int;        (** batched payload before compression *)
      wire_bytes : int;       (** what actually crossed the link *)
      transfer_s : float;     (** link time charged *)
      codec_s : float;        (** compression + decompression CPU *)
    }
  | Page_fault of { page : int; service_s : float }
  | Prefetch of { pages : int; bytes : int }
  | Fnptr_translate of { cost_s : float }
  | Remote_io of {
      io_name : string;
      request_bytes : int;
      response_bytes : int;
      cost_s : float;
    }
  | Offload_begin of { target : string }
  | Offload_end of { target : string; dirty_pages : int; span_s : float }
  | Refusal of { target : string }
  | Power_state of { state : string; mw : float; duration_s : float }
  | Estimate of {
      target : string;
      predicted_gain_s : float;
      local_s : float;
          (** the estimator's belief of the target's local (mobile)
              execution time at this decision — the Tm the predicted
              gain was derived from *)
      decision : bool;
    }
  | Module_load of { role : string; functions : int; globals : int }
  | Fault_injected of { kind : string; op : string }
      (** an injected fault hit exchange [op]; [kind] is one of
          "link-outage", "drop", "corruption", "server-crash" *)
  | Rpc_timeout of { op : string; attempt : int; waited_s : float }
      (** a blocking exchange waited out its deadline *)
  | Retry of { op : string; attempt : int; backoff_s : float }
      (** backed off and re-attempted an exchange *)
  | Fallback_local of { target : string; reason : string; recovery_s : float }
      (** gave up on the server; the task replays on the mobile host.
          [recovery_s] is the wall time lost to the failed attempt *)
  | Rollback of { target : string; pages_restored : int; bytes_discarded : int }
      (** mobile state restored to the offload-start snapshot;
          [bytes_discarded] is buffered console output thrown away *)
  | Replay of { target : string; replay_s : float }
      (** the retained local body re-ran after a rollback; stamped at
          replay start, [replay_s] is the local re-execution time *)
  | Queue of { target : string; server : int; wait_s : float; depth : int }
      (** every worker slot of server [server] was busy at arrival;
          the request waited [wait_s] in FIFO order behind [depth]
          queued requests.  Stamped at arrival (the wait's start) *)
  | Admit of { target : string; server : int; occupancy : int; slot : int }
      (** server [server] granted worker [slot]; [occupancy] is the
          number of concurrently executing offloads including this
          one — the load the contention scaling was priced at *)
  | Reject of { target : string; server : int; queue_depth : int }
      (** server [server]'s admission queue was full; the task runs
          on the mobile device instead.  Single-server setups stamp
          server 0 throughout *)
  | Bw_sample of { bps : float }
      (** the bandwidth predictor's belief after a physical transfer —
          a sampled gauge for the telemetry layer, carrying no cost *)
  | Checkpoint of {
      target : string;
      pages : int;
      image_bytes : int;
      io_cursor : int;
      ledger_bytes : int;
    }
      (** a resumable task image was captured after a mid-flight server
          loss: [pages] dirty pages plus a continuation image of
          [image_bytes] total; [io_cursor] remote-I/O ops and
          [ledger_bytes] console bytes were already delivered and must
          not be re-issued (the exactly-once ledger) *)
  | Migrate_start of {
      target : string;
      from_server : int;
      to_server : int;
      reason : string;
      transfer_s : float;
    }
      (** the checkpoint ships from the lost member to a healthy one;
          stamped at transfer start, [transfer_s] is the link time
          charged for dirty pages + image *)
  | Migrate_done of { target : string; server : int; resumed_span_s : float }
      (** the migrated task resumed and completed on member [server];
          [resumed_span_s] is the remote span after resumption *)

(** The scratch-row tier of the two-tier event representation: hot
    emitters fill a preallocated mutable row (ints, a flat float
    array, shared strings — nothing a fill allocates) and hand it to
    {!sink.emit_row}; the boxed {!event} is materialized only at
    capture boundaries via {!Row.to_event}.  A row is valid only for
    the duration of the [emit_row] call — sinks must copy what they
    keep. *)
module Row : sig
  type t = {
    mutable kind : int;  (** one of the [k_*] codes *)
    mutable i1 : int;
    mutable i2 : int;
    mutable i3 : int;
    mutable i4 : int;
    f : float array;  (** 2 slots, unboxed *)
    mutable s1 : string;
    mutable s2 : string;
  }

  (** Kind codes, one per {!event} constructor. *)

  val k_flush : int
  val k_page_fault : int
  val k_prefetch : int
  val k_fnptr_translate : int
  val k_remote_io : int
  val k_offload_begin : int
  val k_offload_end : int
  val k_refusal : int
  val k_power_state : int
  val k_estimate : int
  val k_module_load : int
  val k_fault_injected : int
  val k_rpc_timeout : int
  val k_retry : int
  val k_fallback_local : int
  val k_rollback : int
  val k_replay : int
  val k_queue : int
  val k_admit : int
  val k_reject : int
  val k_bw_sample : int
  val k_checkpoint : int
  val k_migrate_start : int
  val k_migrate_done : int

  val create : unit -> t

  (** Setters, the slot mapping's single source of truth (inverted
      exactly by {!to_event}).  Small on purpose so the inliner keeps
      the float arguments unboxed. *)

  val set_flush :
    t -> direction:direction -> raw_bytes:int -> wire_bytes:int ->
    transfer_s:float -> codec_s:float -> unit

  val set_page_fault : t -> page:int -> service_s:float -> unit
  val set_prefetch : t -> pages:int -> bytes:int -> unit
  val set_fnptr_translate : t -> cost_s:float -> unit

  val set_remote_io :
    t -> io_name:string -> request_bytes:int -> response_bytes:int ->
    cost_s:float -> unit

  val set_offload_begin : t -> target:string -> unit

  val set_offload_end :
    t -> target:string -> dirty_pages:int -> span_s:float -> unit

  val set_refusal : t -> target:string -> unit
  val set_power_state : t -> state:string -> mw:float -> duration_s:float -> unit

  val set_estimate :
    t -> target:string -> predicted_gain_s:float -> local_s:float ->
    decision:bool -> unit

  val set_module_load : t -> role:string -> functions:int -> globals:int -> unit
  val set_fault_injected : t -> kind:string -> op:string -> unit
  val set_rpc_timeout : t -> op:string -> attempt:int -> waited_s:float -> unit
  val set_retry : t -> op:string -> attempt:int -> backoff_s:float -> unit

  val set_fallback_local :
    t -> target:string -> reason:string -> recovery_s:float -> unit

  val set_rollback :
    t -> target:string -> pages_restored:int -> bytes_discarded:int -> unit

  val set_replay : t -> target:string -> replay_s:float -> unit

  val set_queue :
    t -> target:string -> server:int -> wait_s:float -> depth:int -> unit

  val set_admit :
    t -> target:string -> server:int -> occupancy:int -> slot:int -> unit

  val set_reject : t -> target:string -> server:int -> queue_depth:int -> unit
  val set_bw_sample : t -> bps:float -> unit

  val set_checkpoint :
    t -> target:string -> pages:int -> image_bytes:int -> io_cursor:int ->
    ledger_bytes:int -> unit

  val set_migrate_start :
    t -> target:string -> from_server:int -> to_server:int -> reason:string ->
    transfer_s:float -> unit

  val set_migrate_done :
    t -> target:string -> server:int -> resumed_span_s:float -> unit

  val to_event : t -> event
  (** Boxing boundary, the exact inverse of the setters.  Raises
      [Invalid_argument] on an uninitialized row. *)

  val of_event : t -> event -> unit
  (** Fill the row from a boxed event — how a row-native sink accepts
      the boxed door with one shared scratch row. *)
end

type sink = {
  emit : ts:float -> event -> unit;
  emit_row : ts:float -> Row.t -> unit;
}
(** [ts] is simulated seconds; events that span time are stamped with
    the {e start} of their span.  An emitter delivers each event
    through exactly one of the two doors; every sink accepts both. *)

val of_emit : (ts:float -> event -> unit) -> sink
(** Wrap a boxed-event consumer: rows are boxed ({!Row.to_event}) at
    this boundary.  How capture sinks (rings, jsonl writers) are
    built. *)

val null : sink
(** Discards everything. *)

val is_null : sink -> bool
(** Physical check against {!null}, letting hot emitters skip event
    construction. *)

val fan_out : sink list -> sink
(** Emit to every sink in order (rows are forwarded as rows). *)

val zero_cost : event -> event
(** Zero the charged-time fields of a {!Flush} (ideal-mode wrapper);
    other events pass through. *)

val zero_cost_row : Row.t -> unit
(** In-place twin of {!zero_cost} for the row door. *)

val event_name : event -> string
(** Short display name, e.g. ["flush:to-server"]. *)

(** Aggregates exactly what the session's pre-refactor overhead
    counters and the channel stats tracked, so derived reports can be
    verified against the mutable-counter originals. *)
module Metrics : sig
  type t = {
    mutable flushes_to_server : int;
    mutable flushes_to_mobile : int;
    mutable raw_to_server : int;
    mutable raw_to_mobile : int;
    mutable wire_to_server : int;
    mutable wire_to_mobile : int;
    mutable transfer_s : float;
    mutable codec_s : float;
    mutable fault_count : int;
    mutable fault_s : float;
    mutable prefetched_pages : int;
    mutable prefetched_bytes : int;
    mutable fnptr_count : int;
    mutable fnptr_s : float;
    mutable remote_io_count : int;
    mutable remote_io_s : float;
    mutable offloads : int;
    mutable offload_span_s : float;
    mutable refusals : int;
    mutable estimates : int;
    mutable faults_injected : int;
    mutable rpc_timeouts : int;
    mutable retries : int;
    mutable retry_wait_s : float;
    mutable fallbacks : int;
    mutable rollbacks : int;
    mutable recovery_s : float;
    mutable replays : int;
    mutable replay_s : float;
    mutable queued : int;
    mutable queue_wait_s : float;
    mutable admits : int;
    mutable rejects : int;
    mutable checkpoints : int;
    mutable checkpoint_pages : int;
    mutable checkpoint_bytes : int;
    mutable migrations : int;
    mutable migrations_done : int;
    mutable migrate_transfer_s : float;
    mutable migrate_resume_s : float;
    mutable energy_mj : float;
    power_s : (string, float) Hashtbl.t;
    mutable power_rev : (float * float * float * string) list;
  }

  val create : unit -> t
  val sink : t -> sink

  type acc
  (** Batched accumulator over a {!t}: the thirteen float sums live in
      a flat array (no per-event boxing) and materialize into the
      record at {!flush_acc}.  The per-field addition sequence is
      exactly {!sink}'s, so a flushed record is bit-identical to one
      fed per-event.  While attached, read the record only after
      {!flush_acc}. *)

  val acc : t -> acc
  val acc_sink : acc -> sink

  val flush_acc : acc -> unit
  (** Fold the accumulated float sums into the underlying record
      (idempotent; int counters and power structures are always
      current). *)

  val merge_into : into:t -> t -> unit
  (** Field-wise addition (power-state residencies included), so that
      summing windowed metrics in chronological order reconstitutes
      what a single sink over the whole run would have aggregated. *)

  val comm_s : t -> float
  (** Total charged communication time: transfers + codec CPU +
      copy-on-demand fault service. *)

  val total_s : t -> float
  (** Wall clock of the run (power segments partition the timeline). *)

  val time_in_state : t -> string -> float

  val power_segments : t -> (float * float * float * string) list
  (** (start, mW, duration, state), chronological. *)

  val resample_power :
    t -> period_s:float -> idle_mw:float -> (float * float) list
  (** Mirror of [Battery.resample] derived from the event stream. *)

  val to_rows : t -> (string * string) list
  (** Label/value pairs for a per-run metrics table. *)
end

(** Bounded capture of the raw stream (oldest evicted first). *)
module Ring : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** [capacity] defaults to 65536 events; it must be positive.  Once
      full, each new event evicts the oldest one and increments
      {!dropped}, so [dropped t + length t] always equals the total
      number of events emitted into the ring. *)

  val sink : t -> sink
  val length : t -> int

  val dropped : t -> int
  (** Events evicted so far (0 until the ring wraps). *)

  val events : t -> (float * event) list
  (** Oldest first.  O(length) time regardless of how many events were
      evicted before the call. *)
end

(** Tail-based per-task sampler over the two-door spine.

    One shared sampler receives each client's stream through a
    {!Sampler.client_sink} view, buffers rows per in-flight task
    (copied into reusable scratch rows — dropped tasks never box), and
    decides keep/drop at task completion: always keep faulted,
    migrated, SLO-violating and top-latency-reservoir tasks, plus a
    seeded budget of the rest via the caller's [keep] closure.  Every
    decision is a pure function of stream content and seed — same
    seed, same kept set — and kept traces are complete (every row of
    the task, including its recovery/power epilogue). *)
module Sampler : sig
  type t

  val create :
    ?reservoir:int ->
    ?slo_limit_s:float ->
    ?exemplar:(ts:float -> kind:int -> value:float -> trace_id:string -> unit) ->
    keep:(client:int -> task:int -> bool) ->
    unit ->
    t
  (** [reservoir] (default 8) bounds the fleet-wide top-latency set
      that is always kept; [slo_limit_s] (default [infinity]) keeps
      any task whose offload span reaches it; [keep] is the seeded
      probabilistic leg — it must be stateless in (client, task), e.g.
      [Rng.task_keep].  [exemplar] fires once per latency-bearing row
      of each {e kept} task, so exemplars always reference retained
      trace ids. *)

  val client_sink : t -> client:int -> start_s:float -> sink
  (** The per-client door.  [start_s] re-stamps the client's local
      timestamps onto the global clock at buffer time. *)

  val close_client : t -> client:int -> unit
  (** Decide [client]'s trailing in-flight task now — call when its
      session completes, so peak resident rows track concurrent
      sessions rather than total clients. *)

  val flush : t -> unit
  (** Close every remaining client's trailing in-flight task
      (deterministic ascending-client order).  Call once at end of
      run; idempotent after {!close_client}. *)

  val tasks : t -> int
  (** Tasks decided so far (kept + dropped). *)

  val kept : t -> int

  val kept_ids : t -> string list
  (** Trace ids ("c<client>-t<task>") of kept tasks, in decision
      order. *)

  val kept_traces : t -> (string * (float * event) list) list
  (** Kept tasks in decision order, each with its complete boxed
      trace on the global clock. *)

  val kept_events : t -> (float * event) list
  (** All kept events merged onto one timeline (stable sort by
      timestamp) — the content of a sampled raw-trace file. *)

  val reasons : t -> (string * int) list
  (** Kept-task counts by decision reason, fixed order:
      faulted, migrated, slo, reservoir, budget. *)

  val rows_seen : t -> int
  val rows_kept : t -> int

  val buffered_rows_peak : t -> int
  (** High-water mark of rows resident in task buffers fleet-wide —
      the bounded-memory claim, measured. *)
end

(** Chrome Trace Event Format exporter (chrome://tracing, Perfetto). *)
module Chrome : sig
  val export : ?process:string -> (float * event) list -> string
  (** JSON with offloads as B/E pairs, transfers and service costs as
      X complete events, decisions as instants, power as a counter
      track.  Events are stably sorted by timestamp. *)
end
