(* One shared set of short names for the project's layered libraries.

   Every driver (bench harness, CLI, examples) used to open with the
   same ~25-line block of module aliases; they now [open
   No_prelude.Prelude] instead.  Aliases only — no values, no side
   effects — so opening it costs nothing and shadows nothing. *)

(* IR *)
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module Builder = No_ir.Builder
module Pretty = No_ir.Pretty

(* Architecture and memory *)
module Arch = No_arch.Arch
module Cost = No_arch.Cost
module Layout = No_arch.Layout
module Memory = No_mem.Memory
module Region = No_mem.Region
module Uva = No_mem.Uva
module Stack_alloc = No_mem.Stack_alloc

(* Network and power *)
module Link = No_netsim.Link
module Channel = No_netsim.Channel
module Compress = No_netsim.Compress
module Battery = No_power.Battery
module Power_model = No_power.Power_model

(* Execution *)
module Host = No_exec.Host
module Interp = No_exec.Interp
module Console = No_exec.Console
module Value = No_exec.Value

(* Analysis, profiling, estimation, transformation *)
module Profiler = No_profiler.Profiler
module Filter = No_analysis.Filter
module Equation = No_estimator.Equation
module Static_estimate = No_estimator.Static_estimate
module Dynamic_estimate = No_estimator.Dynamic_estimate
module Pipeline = No_transform.Pipeline
module Partition = No_transform.Partition

(* Runtime *)
module Session = No_runtime.Session
module Local_run = No_runtime.Local_run

(* Faults and tracing *)
module Trace = No_trace.Trace
module Fault_plan = No_fault.Plan
module Injector = No_fault.Injector
module Rng = No_fault.Rng

(* Observability *)
module Span = No_obs.Span
module Hist = No_obs.Hist
module Flame = No_obs.Flame
module Audit = No_obs.Audit
module Trace_file = No_obs.Trace_file
module Series = No_obs.Series
module Openmetrics = No_obs.Openmetrics
module Slo = No_obs.Slo
module Incident = No_obs.Incident
module Diff = No_obs.Diff
module Selfprof = No_selfprof.Selfprof

(* Checkpoint/migrate recovery *)
module Checkpoint = No_migrate.Checkpoint
module Migrator = No_migrate.Migrator

(* Multi-client scheduling *)
module Server_load = No_sched.Server_load
module Event_queue = No_sched.Event_queue
module Pool = No_sched.Pool
module Sim = No_sched.Sim

(* Workloads and reporting *)
module Registry = No_workloads.Registry
module Chess = No_workloads.Chess
module Support = No_workloads.Support
module Table = No_report.Table
module Metrics_report = No_report.Metrics_report

(* Top-level driver layer *)
module Compiler = Native_offloader.Compiler
module Experiment = Native_offloader.Experiment
module Evaluation = Native_offloader.Evaluation
