(* Workload registry: the 17 SPEC programs of Table 4 plus the chess
   application of Figure 3 / Table 1 / Table 3, each with the paper's
   published row for side-by-side comparison in the benches and in
   EXPERIMENTS.md. *)

module Ir = No_ir.Ir
module Console = No_exec.Console

(* The paper's Table 4 row for a program. *)
type paper_row = {
  pr_loc_k : float;              (* lines of code, thousands *)
  pr_exec_s : float;             (* smartphone execution time, eval input *)
  pr_offloaded_fns : int * int;  (* offloaded / total functions *)
  pr_referenced_gvs : int * int; (* referenced / total global variables *)
  pr_fn_ptr_uses : int;
  pr_target : string;            (* "Target Function" column *)
  pr_coverage : float;           (* % of execution time covered *)
  pr_invocations : int;
  pr_traffic_mb : float;         (* communication per invocation, MB *)
}

type entry = {
  e_name : string;
  e_description : string;
  e_build : unit -> Ir.modul;
  e_profile_script : Console.input list;
  e_eval_script : Console.input list;
  e_files : (string * Bytes.t) list;
  e_eval_scale : float;
  e_expected_targets : string list;
  e_paper : paper_row;
}

let row ~loc ~exec ~fns ~gvs ~ptrs ~target ~cover ~invo ~traffic = {
  pr_loc_k = loc;
  pr_exec_s = exec;
  pr_offloaded_fns = fns;
  pr_referenced_gvs = gvs;
  pr_fn_ptr_uses = ptrs;
  pr_target = target;
  pr_coverage = cover;
  pr_invocations = invo;
  pr_traffic_mb = traffic;
}

let spec : entry list =
  [
    {
      e_name = Spec_gzip.name;
      e_description = Spec_gzip.description;
      e_build = Spec_gzip.build;
      e_profile_script = Spec_gzip.profile_script;
      e_eval_script = Spec_gzip.eval_script;
      e_files = Spec_gzip.files;
      e_eval_scale = Spec_gzip.eval_scale;
      e_expected_targets = [ Spec_gzip.target ];
      e_paper =
        row ~loc:5.5 ~exec:15.3 ~fns:(20, 89) ~gvs:(141, 241) ~ptrs:9
          ~target:"spec_compress" ~cover:98.90 ~invo:1 ~traffic:151.5;
    };
    {
      e_name = Spec_vpr.name;
      e_description = Spec_vpr.description;
      e_build = Spec_vpr.build;
      e_profile_script = Spec_vpr.profile_script;
      e_eval_script = Spec_vpr.eval_script;
      e_files = Spec_vpr.files;
      e_eval_scale = Spec_vpr.eval_scale;
      e_expected_targets = [ Spec_vpr.target ];
      e_paper =
        row ~loc:11.3 ~exec:26.9 ~fns:(9, 272) ~gvs:(672, 760) ~ptrs:3
          ~target:"try_place_while.cond" ~cover:99.07 ~invo:1 ~traffic:0.8;
    };
    {
      e_name = Spec_mesa.name;
      e_description = Spec_mesa.description;
      e_build = Spec_mesa.build;
      e_profile_script = Spec_mesa.profile_script;
      e_eval_script = Spec_mesa.eval_script;
      e_files = Spec_mesa.files;
      e_eval_scale = Spec_mesa.eval_scale;
      e_expected_targets = [ Spec_mesa.target ];
      e_paper =
        row ~loc:42.2 ~exec:120.2 ~fns:(11, 1105) ~gvs:(608, 627) ~ptrs:1169
          ~target:"Render" ~cover:99.02 ~invo:1 ~traffic:20.3;
    };
    {
      e_name = Spec_art.name;
      e_description = Spec_art.description;
      e_build = Spec_art.build;
      e_profile_script = Spec_art.profile_script;
      e_eval_script = Spec_art.eval_script;
      e_files = Spec_art.files;
      e_eval_scale = Spec_art.eval_scale;
      e_expected_targets = [ Spec_art.target ];
      e_paper =
        row ~loc:5.7 ~exec:325.5 ~fns:(7, 26) ~gvs:(52, 79) ~ptrs:0
          ~target:"scan_recognize" ~cover:85.44 ~invo:1 ~traffic:16.4;
    };
    {
      e_name = Spec_equake.name;
      e_description = Spec_equake.description;
      e_build = Spec_equake.build;
      e_profile_script = Spec_equake.profile_script;
      e_eval_script = Spec_equake.eval_script;
      e_files = Spec_equake.files;
      e_eval_scale = Spec_equake.eval_scale;
      e_expected_targets = [ Spec_equake.target ];
      e_paper =
        row ~loc:1.0 ~exec:334.0 ~fns:(5, 28) ~gvs:(83, 104) ~ptrs:0
          ~target:"main_for.cond548" ~cover:99.44 ~invo:1 ~traffic:16.5;
    };
    {
      e_name = Spec_ammp.name;
      e_description = Spec_ammp.description;
      e_build = Spec_ammp.build;
      e_profile_script = Spec_ammp.profile_script;
      e_eval_script = Spec_ammp.eval_script;
      e_files = Spec_ammp.files;
      e_eval_scale = Spec_ammp.eval_scale;
      e_expected_targets = Spec_ammp.targets;
      e_paper =
        row ~loc:9.8 ~exec:878.0 ~fns:(17, 179) ~gvs:(324, 333) ~ptrs:66
          ~target:"AMMPmonitor + tpac" ~cover:85.60 ~invo:3 ~traffic:17.6;
    };
    {
      e_name = Spec_twolf.name;
      e_description = Spec_twolf.description;
      e_build = Spec_twolf.build;
      e_profile_script = Spec_twolf.profile_script;
      e_eval_script = Spec_twolf.eval_script;
      e_files = Spec_twolf.files;
      e_eval_scale = Spec_twolf.eval_scale;
      e_expected_targets = [ Spec_twolf.target ];
      e_paper =
        row ~loc:17.8 ~exec:157.8 ~fns:(3, 191) ~gvs:(566, 838) ~ptrs:0
          ~target:"utemp" ~cover:99.84 ~invo:1 ~traffic:3.3;
    };
    {
      e_name = Spec_bzip2.name;
      e_description = Spec_bzip2.description;
      e_build = Spec_bzip2.build;
      e_profile_script = Spec_bzip2.profile_script;
      e_eval_script = Spec_bzip2.eval_script;
      e_files = Spec_bzip2.files;
      e_eval_scale = Spec_bzip2.eval_scale;
      e_expected_targets = [ Spec_bzip2.target ];
      e_paper =
        row ~loc:5.7 ~exec:27.0 ~fns:(58, 100) ~gvs:(95, 120) ~ptrs:24
          ~target:"spec_compress" ~cover:98.79 ~invo:1 ~traffic:134.3;
    };
    {
      e_name = Spec_mcf.name;
      e_description = Spec_mcf.description;
      e_build = Spec_mcf.build;
      e_profile_script = Spec_mcf.profile_script;
      e_eval_script = Spec_mcf.eval_script;
      e_files = Spec_mcf.files;
      e_eval_scale = Spec_mcf.eval_scale;
      e_expected_targets = [ Spec_mcf.target ];
      e_paper =
        row ~loc:1.6 ~exec:104.8 ~fns:(19, 24) ~gvs:(39, 43) ~ptrs:0
          ~target:"global_opt" ~cover:99.55 ~invo:1 ~traffic:47.9;
    };
    {
      e_name = Spec_milc.name;
      e_description = Spec_milc.description;
      e_build = Spec_milc.build;
      e_profile_script = Spec_milc.profile_script;
      e_eval_script = Spec_milc.eval_script;
      e_files = Spec_milc.files;
      e_eval_scale = Spec_milc.eval_scale;
      e_expected_targets = [ Spec_milc.target ];
      e_paper =
        row ~loc:9.6 ~exec:365.8 ~fns:(61, 235) ~gvs:(445, 493) ~ptrs:6
          ~target:"update" ~cover:96.21 ~invo:2 ~traffic:13.4;
    };
    {
      e_name = Spec_gobmk.name;
      e_description = Spec_gobmk.description;
      e_build = Spec_gobmk.build;
      e_profile_script = Spec_gobmk.profile_script;
      e_eval_script = Spec_gobmk.eval_script;
      e_files = Spec_gobmk.files;
      e_eval_scale = Spec_gobmk.eval_scale;
      e_expected_targets = [ Spec_gobmk.target ];
      e_paper =
        row ~loc:156.3 ~exec:361.8 ~fns:(6, 2679) ~gvs:(21844, 22090) ~ptrs:77
          ~target:"gtp_main_loop" ~cover:99.96 ~invo:1 ~traffic:25.7;
    };
    {
      e_name = Spec_hmmer.name;
      e_description = Spec_hmmer.description;
      e_build = Spec_hmmer.build;
      e_profile_script = Spec_hmmer.profile_script;
      e_eval_script = Spec_hmmer.eval_script;
      e_files = Spec_hmmer.files;
      e_eval_scale = Spec_hmmer.eval_scale;
      e_expected_targets = [ Spec_hmmer.target ];
      e_paper =
        row ~loc:20.6 ~exec:31.3 ~fns:(36, 538) ~gvs:(995, 1050) ~ptrs:36
          ~target:"main_loop_serial" ~cover:99.99 ~invo:1 ~traffic:0.3;
    };
    {
      e_name = Spec_sjeng.name;
      e_description = Spec_sjeng.description;
      e_build = Spec_sjeng.build;
      e_profile_script = Spec_sjeng.profile_script;
      e_eval_script = Spec_sjeng.eval_script;
      e_files = Spec_sjeng.files;
      e_eval_scale = Spec_sjeng.eval_scale;
      e_expected_targets = [ Spec_sjeng.target ];
      e_paper =
        row ~loc:10.5 ~exec:950.8 ~fns:(91, 144) ~gvs:(495, 624) ~ptrs:1
          ~target:"think" ~cover:99.95 ~invo:3 ~traffic:240.2;
    };
    {
      e_name = Spec_libquantum.name;
      e_description = Spec_libquantum.description;
      e_build = Spec_libquantum.build;
      e_profile_script = Spec_libquantum.profile_script;
      e_eval_script = Spec_libquantum.eval_script;
      e_files = Spec_libquantum.files;
      e_eval_scale = Spec_libquantum.eval_scale;
      e_expected_targets = [ Spec_libquantum.target ];
      e_paper =
        row ~loc:2.6 ~exec:71.0 ~fns:(62, 116) ~gvs:(0, 44) ~ptrs:0
          ~target:"quantum_exp_mod_n" ~cover:92.56 ~invo:1 ~traffic:6.3;
    };
    {
      e_name = Spec_h264ref.name;
      e_description = Spec_h264ref.description;
      e_build = Spec_h264ref.build;
      e_profile_script = Spec_h264ref.profile_script;
      e_eval_script = Spec_h264ref.eval_script;
      e_files = Spec_h264ref.files;
      e_eval_scale = Spec_h264ref.eval_scale;
      e_expected_targets = [ Spec_h264ref.target ];
      e_paper =
        row ~loc:59.5 ~exec:78.2 ~fns:(48, 1333) ~gvs:(2012, 2822) ~ptrs:457
          ~target:"encode_sequence" ~cover:99.79 ~invo:1 ~traffic:17.1;
    };
    {
      e_name = Spec_lbm.name;
      e_description = Spec_lbm.description;
      e_build = Spec_lbm.build;
      e_profile_script = Spec_lbm.profile_script;
      e_eval_script = Spec_lbm.eval_script;
      e_files = Spec_lbm.files;
      e_eval_scale = Spec_lbm.eval_scale;
      e_expected_targets = [ Spec_lbm.target ];
      e_paper =
        row ~loc:0.9 ~exec:1444.9 ~fns:(1, 19) ~gvs:(16, 20) ~ptrs:0
          ~target:"main_for.cond" ~cover:99.70 ~invo:1 ~traffic:643.6;
    };
    {
      e_name = Spec_sphinx3.name;
      e_description = Spec_sphinx3.description;
      e_build = Spec_sphinx3.build;
      e_profile_script = Spec_sphinx3.profile_script;
      e_eval_script = Spec_sphinx3.eval_script;
      e_files = Spec_sphinx3.files;
      e_eval_scale = Spec_sphinx3.eval_scale;
      e_expected_targets = [ Spec_sphinx3.target ];
      e_paper =
        row ~loc:13.1 ~exec:375.2 ~fns:(124, 370) ~gvs:(1265, 1329) ~ptrs:14
          ~target:"main_for.cond" ~cover:98.39 ~invo:1 ~traffic:34.0;
    };
  ]

(* Synthetic scheduler-stress workloads.  Not part of the paper's
   Table 4 — kept out of [spec] so the evaluation tables and the
   per-workload tests iterate only the paper's programs — but
   resolvable through [by_name] for fleet-scale scheduling sweeps.
   The paper row is all zeros: there is no published counterpart. *)
let synthetic : entry list =
  let no_row =
    row ~loc:0.0 ~exec:0.0 ~fns:(1, 3) ~gvs:(0, 0) ~ptrs:0
      ~target:Fleet_micro.target ~cover:0.0 ~invo:1 ~traffic:0.0
  in
  [
    {
      e_name = Fleet_micro.name;
      e_description = Fleet_micro.description;
      e_build = Fleet_micro.build;
      e_profile_script = Fleet_micro.profile_script;
      e_eval_script = Fleet_micro.eval_script;
      e_files = Fleet_micro.files;
      e_eval_scale = Fleet_micro.eval_scale;
      e_expected_targets = [ Fleet_micro.target ];
      e_paper = no_row;
    };
    {
      e_name = Fleet_micro.heavy_name;
      e_description = Fleet_micro.heavy_description;
      e_build = Fleet_micro.build;
      e_profile_script = Fleet_micro.heavy_profile_script;
      e_eval_script = Fleet_micro.heavy_eval_script;
      e_files = Fleet_micro.files;
      e_eval_scale = Fleet_micro.heavy_eval_scale;
      e_expected_targets = [ Fleet_micro.target ];
      e_paper = no_row;
    };
  ]

let by_name name =
  List.find_opt (fun e -> String.equal e.e_name name) (spec @ synthetic)

let names = List.map (fun e -> e.e_name) spec
let synthetic_names = List.map (fun e -> e.e_name) synthetic
