(* fleet.micro — synthetic scheduler-stress workload.

   Not a SPEC program: a deliberately tiny session (one page of heap,
   a short compute kernel) whose interpreter cost is a fraction of a
   millisecond, so the discrete-event core can sweep fleets of 10^3 -
   10^4 clients in seconds.  The kernel still dominates execution the
   way a Table-4 target does (the fill is a single cheap pass), so the
   profiler picks it and the estimator offloads it like any real
   workload — the scheduling behaviour under contention is the same,
   only the per-session price shrinks.

   Parameters (console script): words, iters.  The kernel makes
   [iters] mixing sweeps over a [words]-word buffer; the heavy variant
   below runs the same program with several times the sweeps, giving
   fleet mixes a long-task class for saturation and policy-flip
   scenarios. *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module W = Support

let name = "fleet.micro"
let heavy_name = "fleet.micro.heavy"
let description = "Synthetic fleet scheduling micro-task"
let heavy_description = "Synthetic fleet micro-task, long-running variant"
let target = "micro_kernel"

let build () =
  let t = B.create name in
  W.add_checksum ~stride:8 t;

  (* micro_kernel(buf, words, iters) -> checksum: [iters] in-place
     mixing sweeps, then a fold.  Word-at-a-time integer work — the
     same shape as the real kernels, just small. *)
  let _ =
    B.func t "micro_kernel" ~params:[ W.i64p; Ty.I64; Ty.I64 ] ~ret:Ty.I64
      (fun fb args ->
        let buf = List.nth args 0
        and words = List.nth args 1
        and iters = List.nth args 2 in
        B.for_ fb ~name:"sweep" ~from:(B.i64 0) ~below:iters (fun r ->
            B.for_ fb ~name:"mix" ~from:(B.i64 0) ~below:words (fun i ->
                let slot = B.gep fb Ty.I64 buf [ Ir.Index i ] in
                let v = B.load fb Ty.I64 slot in
                let v = B.ixor fb v (B.ilshr fb v (B.i64 7)) in
                let v =
                  B.iadd fb (B.imul fb v (B.i64' 0x9E3779B97F4A7C15L)) r
                in
                B.store fb Ty.I64 v slot));
        let bytes = B.imul fb words (B.i64 8) in
        B.ret fb (Some (B.call fb "checksum" [ buf; bytes ])))
  in

  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let words, iters = W.scan2 fb in
        let buf = W.malloc_words fb (B.imul fb words (B.i64 8)) in
        W.fill_pattern fb ~name:"fill" buf ~words ~seed:(B.i64 1)
          ~step:(B.i64 3);
        let sum = B.call fb "micro_kernel" [ buf; words; iters ] in
        W.print_result t fb ~label:"micro" sum;
        B.ret fb (Some (B.i64 0)))
  in
  B.finish t

(* A 1 KiB buffer — one page of heap; profile and eval inputs share
   the buffer size so the footprint estimate transfers. *)
let profile_script = W.script_of_ints [ 128; 4 ]
let eval_script = W.script_of_ints [ 128; 16 ]

(* The heavy variant replays the same program with 8x the sweeps —
   long tasks for saturation scenarios. *)
let heavy_profile_script = W.script_of_ints [ 128; 32 ]
let heavy_eval_script = W.script_of_ints [ 128; 128 ]

let eval_scale = 4.0
let heavy_eval_scale = 4.0
let files = []
