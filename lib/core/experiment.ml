(* Evaluation driver: runs one workload in the paper's configurations
   (local baseline, offloaded over the slow and fast networks, ideal
   offloading) and derives the Figure 6 / Figure 7 quantities.

   "All the execution times and battery consumption were averaged
   over five runs" in the paper; our simulator is deterministic, so a
   single run per configuration suffices. *)

module Ir = No_ir.Ir
module Link = No_netsim.Link
module Session = No_runtime.Session
module Local_run = No_runtime.Local_run
module Registry = No_workloads.Registry
module Battery = No_power.Battery
module Trace = No_trace.Trace

(* One configuration's outcome, in comparable units. *)
type run = {
  run_label : string;
  run_exec_s : float;
  run_energy_mj : float;
  run_console : string;
  run_offloads : int;
  run_refusals : int;
  run_comm_s : float;
  run_fnptr_s : float;
  run_remote_io_s : float;
  run_faults : int;
  run_bytes_to_server : int;
  run_bytes_to_mobile : int;
  run_fnptr_translations : int;
  run_remote_io_ops : int;
  run_server_span_s : float;     (* wall time inside offloads *)
  run_metrics : Trace.Metrics.t option;
      (* event-derived aggregates; None for local (un-traced) runs *)
}

type program_result = {
  pres_entry : Registry.entry;
  pres_compiled : Compiler.compiled;
  pres_local : run;
  pres_slow : run;
  pres_fast : run;
  pres_ideal : run;
}

let run_of_local label (r : Local_run.report) : run =
  {
    run_label = label;
    run_exec_s = r.Local_run.lr_total_s;
    run_energy_mj = r.Local_run.lr_energy_mj;
    run_console = r.Local_run.lr_console;
    run_offloads = 0;
    run_refusals = 0;
    run_comm_s = 0.0;
    run_fnptr_s = 0.0;
    run_remote_io_s = 0.0;
    run_faults = 0;
    run_bytes_to_server = 0;
    run_bytes_to_mobile = 0;
    run_fnptr_translations = 0;
    run_remote_io_ops = 0;
    run_server_span_s = 0.0;
    run_metrics = None;
  }

let run_of_session ?metrics label (r : Session.report) : run =
  {
    run_label = label;
    run_exec_s = r.Session.rep_total_s;
    run_energy_mj = r.Session.rep_energy_mj;
    run_console = r.Session.rep_console;
    run_offloads = r.Session.rep_offloads;
    run_refusals = r.Session.rep_refusals;
    run_comm_s = r.Session.rep_comm_s;
    run_fnptr_s = r.Session.rep_fnptr_s;
    run_remote_io_s = r.Session.rep_remote_io_s;
    run_faults = r.Session.rep_faults;
    run_bytes_to_server = r.Session.rep_bytes_to_server;
    run_bytes_to_mobile = r.Session.rep_bytes_to_mobile;
    run_fnptr_translations = r.Session.rep_fnptr_translations;
    run_remote_io_ops = r.Session.rep_remote_io_ops;
    run_server_span_s = r.Session.rep_server_span_s;
    run_metrics = metrics;
  }

(* Run one offloaded configuration; returns the session (for power
   traces) along with the comparable run record.  Every offloaded run
   carries an aggregating metrics sink (fanned out with whatever sink
   the caller configured), so figures can be derived from the event
   stream. *)
let offloaded_run ?(label = "offloaded") ~(config : Session.config)
    (compiled : Compiler.compiled) (entry : Registry.entry) :
    run * Session.t =
  let metrics = Trace.Metrics.create () in
  let config =
    { config with
      Session.trace =
        Trace.fan_out [ Trace.Metrics.sink metrics; config.Session.trace ] }
  in
  let session =
    Session.create ~config ~script:entry.Registry.e_eval_script
      ~files:entry.Registry.e_files compiled.Compiler.c_output
      ~seeds:compiled.Compiler.c_seeds
  in
  let report = Session.run session in
  (run_of_session ~metrics label report, session)

let slow_config () =
  { (Session.default_config ~link:Link.slow_wifi ()) with
    Session.fast_radio = false }

let fast_config () = Session.default_config ~link:Link.fast_wifi ()

let ideal_config () =
  { (Session.default_config ~link:Link.fast_wifi ()) with
    Session.ideal = true }

let run_entry (entry : Registry.entry) : program_result =
  let m = entry.Registry.e_build () in
  let compiled =
    Compiler.compile ~profile_script:entry.Registry.e_profile_script
      ~profile_files:entry.Registry.e_files
      ~eval_scale:entry.Registry.e_eval_scale m
  in
  let local =
    run_of_local "local"
      (Local_run.run ~script:entry.Registry.e_eval_script
         ~files:entry.Registry.e_files compiled.Compiler.c_original)
  in
  let slow, _ =
    offloaded_run ~label:"slow" ~config:(slow_config ()) compiled entry
  in
  let fast, _ =
    offloaded_run ~label:"fast" ~config:(fast_config ()) compiled entry
  in
  let ideal, _ =
    offloaded_run ~label:"ideal" ~config:(ideal_config ()) compiled entry
  in
  {
    pres_entry = entry;
    pres_compiled = compiled;
    pres_local = local;
    pres_slow = slow;
    pres_fast = fast;
    pres_ideal = ideal;
  }

(* Figure 6 quantities. *)
let normalized_time result (r : run) =
  r.run_exec_s /. result.pres_local.run_exec_s

let normalized_energy result (r : run) =
  r.run_energy_mj /. result.pres_local.run_energy_mj

let speedup result (r : run) =
  result.pres_local.run_exec_s /. r.run_exec_s

(* Figure 7 breakdown: computation is what remains after the runtime's
   overhead categories. *)
type breakdown = {
  bd_computation_s : float;
  bd_fnptr_s : float;
  bd_remote_io_s : float;
  bd_comm_s : float;
}

let breakdown_of (r : run) : breakdown =
  let overheads = r.run_comm_s +. r.run_fnptr_s +. r.run_remote_io_s in
  {
    bd_computation_s = Float.max 0.0 (r.run_exec_s -. overheads);
    bd_fnptr_s = r.run_fnptr_s;
    bd_remote_io_s = r.run_remote_io_s;
    bd_comm_s = r.run_comm_s;
  }

(* The same breakdown derived purely from the run's event stream: the
   total is the sum of the power segments (they partition the
   timeline) and the overheads are the aggregated Flush / Page_fault /
   Fnptr_translate / Remote_io costs.  Must agree with [breakdown_of]
   (the trace regression tests enforce it); local runs have no stream
   and fall back to the counters. *)
let breakdown_of_trace (r : run) : breakdown =
  match r.run_metrics with
  | None -> breakdown_of r
  | Some m ->
    let comm = Trace.Metrics.comm_s m in
    let fnptr = m.Trace.Metrics.fnptr_s in
    let remote_io = m.Trace.Metrics.remote_io_s in
    let total = Trace.Metrics.total_s m in
    {
      bd_computation_s =
        Float.max 0.0 (total -. (comm +. fnptr +. remote_io));
      bd_fnptr_s = fnptr;
      bd_remote_io_s = remote_io;
      bd_comm_s = comm;
    }

(* Geometric mean over a list of positive ratios. *)
let geomean values =
  match values with
  | [] -> invalid_arg "Experiment.geomean: empty"
  | _ ->
    exp
      (List.fold_left (fun acc v -> acc +. log v) 0.0 values
      /. float_of_int (List.length values))

(* The idle power level the session's battery model falls back to —
   needed to resample a power timeline from the event stream exactly
   as [Battery.resample] does. *)
let idle_mw_of_config (config : Session.config) : float =
  No_power.Power_model.draw_mw
    (No_power.Power_model.galaxy_s5 ~fast_radio:config.Session.fast_radio)
    No_power.Power_model.Idle

(* Power trace for Figure 8: run one offloaded configuration and
   resample the power timeline from its event stream. *)
let power_trace ?(config = fast_config ()) (entry : Registry.entry)
    ~(period_s : float) : (float * float) list =
  let m = entry.Registry.e_build () in
  let compiled =
    Compiler.compile ~profile_script:entry.Registry.e_profile_script
      ~profile_files:entry.Registry.e_files
      ~eval_scale:entry.Registry.e_eval_scale m
  in
  let run, _session = offloaded_run ~config compiled entry in
  match run.run_metrics with
  | Some metrics ->
    Trace.Metrics.resample_power metrics ~period_s
      ~idle_mw:(idle_mw_of_config config)
  | None -> []
