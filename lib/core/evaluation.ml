(* Regeneration of every table and figure in the paper's evaluation.

   Table 1  — chess move computation, phone vs desktop, per depth.
   Table 2  — native code in the top-20 Android app corpus.
   Table 3  — profiling + Equation-1 estimation on the chess example.
   Table 4  — per-program offloading statistics over the 17 programs.
   Table 5  — related-system comparison.
   Fig 6(a) — normalized execution time (slow / fast / ideal).
   Fig 6(b) — normalized battery consumption.
   Fig 7    — overhead breakdown per program and network.
   Fig 8    — power over time for 458.sjeng and 445.gobmk.

   Absolute numbers are simulated (see the sim scales in No_arch.Arch
   and No_netsim.Link); the shapes are what reproduces the paper. *)

module Ir = No_ir.Ir
module Arch = No_arch.Arch
module Layout = No_arch.Layout
module Link = No_netsim.Link
module Host = No_exec.Host
module Interp = No_exec.Interp
module Console = No_exec.Console
module Profiler = No_profiler.Profiler
module Static_estimate = No_estimator.Static_estimate
module Pipeline = No_transform.Pipeline
module Session = No_runtime.Session
module Registry = No_workloads.Registry
module Chess = No_workloads.Chess
module Table = No_report.Table
module Android_apps = No_corpus.Android_apps
module Related_systems = No_corpus.Related_systems

(* {1 Table 1 — chess on two machines} *)

let chess_time_on (arch : Arch.t) ~depth : float =
  let m = Chess.build () in
  let structs name = Ir.find_struct_exn m name in
  let layout = Layout.env_of_arch arch ~structs in
  let console =
    Console.create ~script:(Chess.script ~depth ~turns:1) ()
  in
  let host = Host.create ~arch ~role:Host.Mobile ~modul:m ~layout ~console () in
  (* Time only the AI movement computation, as Table 1 does. *)
  let profiler = Profiler.attach host in
  ignore (Interp.run_main host);
  Profiler.detach profiler;
  match
    Profiler.find_sample (Profiler.results profiler) ~kind:Profiler.Func
      ~name:"getAITurn"
  with
  | Some s -> s.Profiler.s_time
  | None -> invalid_arg "Evaluation.chess_time_on: getAITurn not profiled"

let table1 () : Table.t =
  let table =
    Table.create
      ~title:
        "Table 1: movement computation time of the chess game (simulated s)"
      [ "difficulty"; "desktop (s)"; "smartphone (s)"; "gap (x)" ]
  in
  List.iter
    (fun depth ->
      let desktop = chess_time_on Arch.x86_64 ~depth in
      let smartphone = chess_time_on Arch.arm32 ~depth in
      Table.add_row table
        [
          string_of_int depth;
          Table.cell_f ~digits:3 desktop;
          Table.cell_f ~digits:3 smartphone;
          Table.cell_f (smartphone /. desktop);
        ])
    [ 7; 8; 9; 10; 11 ];
  table

(* {1 Table 2 — Android app corpus} *)

let table2 () : Table.t =
  let table =
    Table.create
      ~title:"Table 2: C/C++ code and execution-time ratios, top-20 apps"
      [ "application"; "description"; "C/C++ LoC"; "total LoC"; "LoC ratio";
        "exec-time ratio" ]
  in
  List.iter
    (fun (a : Android_apps.app) ->
      Table.add_row table
        [
          a.Android_apps.app_name;
          a.Android_apps.app_description;
          Table.cell_i a.Android_apps.app_native_loc;
          Table.cell_i a.Android_apps.app_total_loc;
          Table.cell_pct (Android_apps.native_loc_ratio a);
          Table.cell_pct a.Android_apps.app_native_time_pct;
        ])
    Android_apps.apps;
  let s = Android_apps.summarize () in
  Table.add_row table
    [
      "== summary ==";
      Printf.sprintf "%d/%d with native code" s.Android_apps.apps_with_native
        s.Android_apps.total_apps;
      "";
      "";
      Printf.sprintf "%d apps > 50%%" s.Android_apps.apps_majority_native_loc;
      Printf.sprintf "%d apps > 20%%" s.Android_apps.apps_heavy_native_time;
    ];
  table

(* {1 Table 3 — chess profiling and estimation} *)

let table3 () : Table.t =
  let m = Chess.build () in
  let compiled =
    Compiler.compile ~profile_script:(Chess.script ~depth:5 ~turns:3) m
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Table 3: profiling and performance estimation, chess (R=%.2f)"
           compiled.Compiler.c_ratio)
      [ "candidate"; "kind"; "exec (s)"; "invocations"; "mem (KB)";
        "Tideal (s)"; "Tc (s)"; "Tg (s)"; "verdict" ]
  in
  let rows = compiled.Compiler.c_selection.Static_estimate.rows in
  List.iter
    (fun (row : Static_estimate.row) ->
      let kind =
        match row.Static_estimate.row_kind with
        | Profiler.Func -> "fn"
        | Profiler.Loop -> "loop"
      in
      let ideal, tc, tg, verdict =
        match row.Static_estimate.row_breakdown, row.Static_estimate.row_filtered with
        | Some b, _ ->
          ( Table.cell_f ~digits:3 b.No_estimator.Equation.ideal_gain_s,
            Table.cell_f ~digits:3 b.No_estimator.Equation.comm_cost_s,
            Table.cell_f ~digits:3 b.No_estimator.Equation.gain_s,
            if row.Static_estimate.row_selected then "SELECTED"
            else if b.No_estimator.Equation.gain_s > 0.0 then "subsumed"
            else "unprofitable" )
        | None, Some reason -> ("-", "-", "-", "filtered: " ^ reason)
        | None, None -> ("-", "-", "-", "-")
      in
      Table.add_row table
        [
          row.Static_estimate.row_name;
          kind;
          Table.cell_f ~digits:3 row.Static_estimate.row_time_s;
          Table.cell_i row.Static_estimate.row_invocations;
          Table.cell_i (row.Static_estimate.row_mem_bytes / 1024);
          ideal;
          tc;
          tg;
          verdict;
        ])
    rows;
  table

(* {1 The 17-program sweep (shared by Table 4 and the figures)} *)

let all_results : Experiment.program_result list Lazy.t =
  lazy (List.map Experiment.run_entry Registry.spec)

(* Coverage: share of the local execution time the offloaded targets
   account for, measured on the evaluation input.  In the ideal
   configuration nothing but target execution leaves the mobile
   device, so the non-covered time is exactly the ideal run's
   mobile-side time. *)
let coverage (res : Experiment.program_result) : float =
  let local = res.Experiment.pres_local.Experiment.run_exec_s in
  let ideal = res.Experiment.pres_ideal in
  if local <= 0.0 || ideal.Experiment.run_offloads = 0 then 0.0
  else
    let mobile_side =
      ideal.Experiment.run_exec_s -. ideal.Experiment.run_server_span_s
    in
    Float.max 0.0 (Float.min 100.0 (100.0 *. (1.0 -. (mobile_side /. local))))

let table4 () : Table.t =
  let table =
    Table.create
      ~title:
        "Table 4: offloaded programs (measured | paper).  Traffic is MB \
         per invocation."
      [ "program"; "target"; "offl fns"; "ref GVs"; "fn-ptr maps";
        "coverage"; "invocations"; "traffic MB" ]
  in
  List.iter
    (fun (res : Experiment.program_result) ->
      let entry = res.Experiment.pres_entry in
      let paper = entry.Registry.e_paper in
      let stats = res.Experiment.pres_compiled.Compiler.c_output.Pipeline.o_stats in
      let fast = res.Experiment.pres_fast in
      let invocations = fast.Experiment.run_offloads in
      let traffic_mb =
        if invocations = 0 then 0.0
        else
          float_of_int
            (fast.Experiment.run_bytes_to_server
            + fast.Experiment.run_bytes_to_mobile)
          /. float_of_int invocations /. 1048576.0
      in
      let pair fmt_a a b = Printf.sprintf "%s | %s" (fmt_a a) b in
      Table.add_row table
        [
          entry.Registry.e_name;
          paper.Registry.pr_target;
          pair
            (fun s -> s)
            (Printf.sprintf "%d/%d" stats.Pipeline.st_server_functions
               stats.Pipeline.st_total_functions)
            (Printf.sprintf "%d/%d" (fst paper.Registry.pr_offloaded_fns)
               (snd paper.Registry.pr_offloaded_fns));
          pair
            (fun s -> s)
            (Printf.sprintf "%d/%d" stats.Pipeline.st_reallocated_globals
               stats.Pipeline.st_total_globals)
            (Printf.sprintf "%d/%d" (fst paper.Registry.pr_referenced_gvs)
               (snd paper.Registry.pr_referenced_gvs));
          pair
            (fun s -> s)
            (string_of_int
               (stats.Pipeline.st_fnptr_load_maps
               + stats.Pipeline.st_fnptr_store_maps))
            (string_of_int paper.Registry.pr_fn_ptr_uses);
          pair Table.cell_pct (coverage res)
            (Table.cell_pct paper.Registry.pr_coverage);
          pair Table.cell_i invocations
            (Table.cell_i paper.Registry.pr_invocations);
          pair (Table.cell_f ~digits:2) traffic_mb
            (Table.cell_f ~digits:1 paper.Registry.pr_traffic_mb);
        ])
    (Lazy.force all_results);
  table

let table5 () : Table.t =
  let table =
    Table.create ~title:"Table 5: comparison of computation offload systems"
      [ "system"; "fully automatic"; "decision"; "requires VM"; "language";
        "app complexity" ]
  in
  List.iter
    (fun (s : Related_systems.system) ->
      Table.add_row table
        [
          s.Related_systems.sys_name;
          Related_systems.automation_to_string s.Related_systems.sys_automation;
          Related_systems.decision_to_string s.Related_systems.sys_decision;
          (if s.Related_systems.sys_requires_vm then "Yes" else "No");
          s.Related_systems.sys_language;
          Related_systems.complexity_to_string s.Related_systems.sys_complexity;
        ])
    Related_systems.systems;
  table

(* {1 Figure 6 — normalized time and battery} *)

let star run =
  (* The paper marks configurations the dynamic estimator refused with
     an asterisk. *)
  if run.Experiment.run_offloads = 0 && run.Experiment.run_refusals > 0 then
    "*"
  else ""

let fig6 ~(quantity : Experiment.program_result -> Experiment.run -> float)
    ~title () : Table.t =
  let table =
    Table.create ~title [ "program"; "slow"; "fast"; "ideal" ]
  in
  let results = Lazy.force all_results in
  let cell result run =
    Table.cell_f ~digits:3 (quantity result run) ^ star run
  in
  List.iter
    (fun (res : Experiment.program_result) ->
      Table.add_row table
        [
          res.Experiment.pres_entry.Registry.e_name;
          cell res res.Experiment.pres_slow;
          cell res res.Experiment.pres_fast;
          cell res res.Experiment.pres_ideal;
        ])
    results;
  let geo pick =
    Experiment.geomean
      (List.map (fun res -> quantity res (pick res)) results)
  in
  Table.add_row table
    [
      "geomean";
      Table.cell_f ~digits:3 (geo (fun r -> r.Experiment.pres_slow));
      Table.cell_f ~digits:3 (geo (fun r -> r.Experiment.pres_fast));
      Table.cell_f ~digits:3 (geo (fun r -> r.Experiment.pres_ideal));
    ];
  table

let fig6a () =
  fig6 ~quantity:Experiment.normalized_time
    ~title:
      "Figure 6(a): execution time normalized to local execution (* = \
       not offloaded by dynamic estimation)"
    ()

let fig6b () =
  fig6 ~quantity:Experiment.normalized_energy
    ~title:
      "Figure 6(b): battery consumption normalized to local execution (* \
       = not offloaded)"
    ()

(* {1 Figure 7 — overhead breakdown}

   Derived from the aggregating trace sink attached to every offloaded
   run (the Flush / Page_fault / Fnptr_translate / Remote_io /
   Power_state events), not from the session's mutable counters; the
   trace regression tests pin the two representations together. *)

let fig7 () : Table.t =
  let table =
    Table.create
      ~title:
        "Figure 7: breakdown of offloaded execution time (seconds; s = \
         slow, f = fast network; event-stream derived)"
      [ "program"; "net"; "computation"; "fn-ptr transl."; "remote I/O";
        "communication"; "total" ]
  in
  List.iter
    (fun (res : Experiment.program_result) ->
      List.iter
        (fun (tag, run) ->
          let bd = Experiment.breakdown_of_trace run in
          Table.add_row table
            [
              res.Experiment.pres_entry.Registry.e_name;
              tag;
              Table.cell_f bd.Experiment.bd_computation_s;
              Table.cell_f bd.Experiment.bd_fnptr_s;
              Table.cell_f bd.Experiment.bd_remote_io_s;
              Table.cell_f bd.Experiment.bd_comm_s;
              Table.cell_f run.Experiment.run_exec_s;
            ])
        [ ("s", res.Experiment.pres_slow); ("f", res.Experiment.pres_fast) ])
    (Lazy.force all_results);
  table

(* {1 Figure 8 — power over time}

   The timeline is rebuilt from the Power_state events captured by the
   run's aggregating sink — a derived view over the trace spine rather
   than a read of the battery's internal segment list.  (The battery
   still keeps its segments; the trace tests check both views are
   identical.) *)

let fig8_trace ~program ~(config : Session.config) ~points () :
    (float * float) list =
  match Registry.by_name program with
  | None -> invalid_arg ("Evaluation.fig8_trace: " ^ program)
  | Some entry ->
    let m = entry.Registry.e_build () in
    let compiled =
      Compiler.compile ~profile_script:entry.Registry.e_profile_script
        ~profile_files:entry.Registry.e_files
        ~eval_scale:entry.Registry.e_eval_scale m
    in
    let run, _session = Experiment.offloaded_run ~config compiled entry in
    (match run.Experiment.run_metrics with
    | None -> []
    | Some metrics ->
      let horizon =
        List.fold_left
          (fun acc (ts, _, dur, _) -> Float.max acc (ts +. dur))
          0.0
          (No_trace.Trace.Metrics.power_segments metrics)
      in
      let period = Float.max (horizon /. float_of_int points) 1e-9 in
      No_trace.Trace.Metrics.resample_power metrics ~period_s:period
        ~idle_mw:(Experiment.idle_mw_of_config config))

let fig8 ?(points = 60) () : Table.t =
  let table =
    Table.create
      ~title:"Figure 8: power consumption over time (mW, resampled)"
      [ "t/horizon"; "sjeng fast"; "gobmk fast"; "gobmk slow" ]
  in
  let sjeng_fast =
    fig8_trace ~program:"458.sjeng" ~config:(Experiment.fast_config ())
      ~points ()
  in
  let gobmk_fast =
    fig8_trace ~program:"445.gobmk" ~config:(Experiment.fast_config ())
      ~points ()
  in
  let gobmk_slow =
    fig8_trace ~program:"445.gobmk" ~config:(Experiment.slow_config ())
      ~points ()
  in
  let value trace i =
    match List.nth_opt trace i with
    | Some (_, mw) -> Table.cell_f ~digits:0 mw
    | None -> "-"
  in
  for i = 0 to points do
    Table.add_row table
      [
        Printf.sprintf "%.3f" (float_of_int i /. float_of_int points);
        value sjeng_fast i;
        value gobmk_fast i;
        value gobmk_slow i;
      ]
  done;
  table

(* {1 Headline numbers} *)

type headline = {
  h_geomean_speedup_fast : float;
  h_geomean_speedup_slow : float;
  h_battery_saving_fast_pct : float;
  h_battery_saving_slow_pct : float;
}

let headline () : headline =
  let results = Lazy.force all_results in
  let geo pick f = Experiment.geomean (List.map (fun r -> f r (pick r)) results) in
  {
    h_geomean_speedup_fast =
      geo (fun r -> r.Experiment.pres_fast) Experiment.speedup;
    h_geomean_speedup_slow =
      geo (fun r -> r.Experiment.pres_slow) Experiment.speedup;
    h_battery_saving_fast_pct =
      100.0
      *. (1.0 -. geo (fun r -> r.Experiment.pres_fast) Experiment.normalized_energy);
    h_battery_saving_slow_pct =
      100.0
      *. (1.0 -. geo (fun r -> r.Experiment.pres_slow) Experiment.normalized_energy);
  }
