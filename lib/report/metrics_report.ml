(* Render a run's event-derived metrics (the aggregating trace sink)
   as a plain-text table — the CLI's --metrics view and the bench
   harness's per-run summary. *)

module Trace = No_trace.Trace

let table ?(title = "Run metrics (event-stream derived)")
    (m : Trace.Metrics.t) : Table.t =
  let t = Table.create ~title [ "metric"; "value" ] in
  List.iter (fun (k, v) -> Table.add_row t [ k; v ]) (Trace.Metrics.to_rows m);
  (* Per-power-state residency, sorted for stable output. *)
  List.iter
    (fun (state, seconds) ->
      Table.add_row t
        [ "power: " ^ state ^ " (s)"; Printf.sprintf "%.4f" seconds ])
    (List.sort compare
       (Hashtbl.fold
          (fun state s acc -> (state, s) :: acc)
          m.Trace.Metrics.power_s []));
  t
