(** Migration state machine.

    Drives one {!Checkpoint.t} from capture to resumption on another
    pool member, or to abandonment (fall back to rollback + local
    replay).  Transitions are enforced; see DESIGN.md §14 for the
    exactly-once argument. *)

module Link = No_netsim.Link

type state =
  | Captured  (** image exists on the mobile, no destination yet *)
  | Shipped of { to_server : int; transfer_s : float }
      (** a healthy member admitted the task; transfer charged *)
  | Resumed of { to_server : int }
      (** re-execution completed, ledger verified — offload done *)
  | Abandoned of { why : string }
      (** no healthy member (or resume died); local replay takes over *)

type t

val create : checkpoint:Checkpoint.t -> from_server:int -> reason:string -> t
val checkpoint : t -> Checkpoint.t
val from_server : t -> int
val reason : t -> string
val state : t -> state
val state_name : t -> string

val transfer_time : t -> link:Link.t -> bw_factor:float -> float
(** Wire time for the image under the session's contention scaling. *)

val ship : t -> to_server:int -> transfer_s:float -> unit
(** Captured → Shipped.  @raise Invalid_argument on any other state. *)

val resume : t -> unit
(** Shipped → Resumed.  @raise Invalid_argument on any other state. *)

val abandon : t -> string -> unit
(** Captured/Shipped → Abandoned.  @raise Invalid_argument otherwise. *)

val completed : t -> bool
val pp : t Fmt.t
