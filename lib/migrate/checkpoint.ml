(* Resumable task image.

   When the granting server dies (or the pool drains it) mid-offload,
   the session freezes the task into a checkpoint instead of throwing
   the partial work away.  The image is everything another pool member
   needs to finish the job with the same observable history:

   - the *base*: the offload-start snapshot the session already takes
     for rollback (mobile memory, allocator, console mark, file
     cursors, server stack watermark).  Restoring the base on the
     mobile and re-running the task body on the new member is how
     "resume" works in this model — the interpreter's continuation is
     lost with the server, but execution is deterministic, so
     re-execution from the base reproduces it exactly;
   - the *progress cursors*: how far the dead attempt got — dirty
     pages accumulated on the lost server, remote-I/O operations
     already performed, console bytes already delivered to the user.
     The cursors are what makes resumption exactly-once: the mobile
     suppresses (and verifies) re-delivered console bytes up to the
     ledger cursor instead of showing them twice.

   The image travels over the link, so it also carries a byte-size
   model: a fixed header (registers, stack cursor, cursors) plus the
   dirty pages the lost server had produced — those are state the new
   member cannot recompute without re-running, so they ship. *)

module Memory = No_mem.Memory
module Region = No_mem.Region
module Uva = No_mem.Uva
module Stack_alloc = No_mem.Stack_alloc
module Console = No_exec.Console
module Fs = No_exec.Fs

(* Continuation header: task id, program counter / stack cursor, the
   three progress cursors.  Small and fixed, like a register file. *)
let header_bytes = 256

(* Per shipped page: page id + dirty-range descriptor. *)
let page_header_bytes = 16

type t = {
  ck_target : string;  (** offloaded task being migrated *)
  ck_dirty_pages : int list;
      (** mobile-owned pages the lost server had modified *)
  ck_resident_pages : int;
      (** server working set at capture (diagnostic, not shipped) *)
  ck_io_cursor : int;  (** remote-I/O ops already performed *)
  ck_ledger_bytes : int;  (** console bytes already delivered *)
  (* Offload-start base the mobile restores before re-admission. *)
  ck_mem : Memory.snapshot;
  ck_uva : Uva.snapshot;
  ck_console : Console.mark;
  ck_fs : Fs.snapshot;
  ck_server_stack : Stack_alloc.mark;
}

module Selfprof = No_selfprof.Selfprof

let capture ~target ~dirty_pages ~resident_pages ~io_cursor ~ledger_bytes ~mem
    ~uva ~console ~fs ~server_stack =
  Selfprof.enter Checkpoint;
  let image =
    {
    ck_target = target;
    ck_dirty_pages = dirty_pages;
    ck_resident_pages = resident_pages;
    ck_io_cursor = io_cursor;
    ck_ledger_bytes = ledger_bytes;
    ck_mem = mem;
    ck_uva = uva;
    ck_console = console;
      ck_fs = fs;
      ck_server_stack = server_stack;
    }
  in
  Selfprof.leave Checkpoint;
  image

let dirty_count t = List.length t.ck_dirty_pages

(* Bytes that cross the link when the image ships: header + committed
   ledger (the new member verifies re-produced output against it) +
   the dirty pages with their descriptors. *)
let image_bytes t =
  header_bytes + t.ck_ledger_bytes
  + (dirty_count t * (Region.page_size + page_header_bytes))

let pp ppf t =
  Fmt.pf ppf "checkpoint %s: %d dirty page(s), io@%d, ledger %dB, %dB image"
    t.ck_target (dirty_count t) t.ck_io_cursor t.ck_ledger_bytes
    (image_bytes t)
