(* Migration state machine.

   One migrator drives one checkpoint through its lifecycle:

     Captured --ship--> Shipped --resume--> Resumed
         \                 \
          \--abandon--------+--abandon--> Abandoned

   Captured: the image exists on the mobile, no destination yet.
   Shipped:  a healthy pool member admitted the task (through the
             normal queue) and the image transfer has been charged
             over the link.
   Resumed:  the re-executed attempt completed on the new member and
             the console ledger verified byte-for-byte — the offload
             finished with exactly-once side effects.
   Abandoned: no healthy member, or the resumed attempt died too; the
             session falls back to rollback + local replay.

   Transitions are enforced — a driver bug that, say, resumes an
   unshipped image is a programming error, not a recoverable state. *)

module Link = No_netsim.Link

type state =
  | Captured
  | Shipped of { to_server : int; transfer_s : float }
  | Resumed of { to_server : int }
  | Abandoned of { why : string }

type t = {
  checkpoint : Checkpoint.t;
  from_server : int;
  reason : string;  (** why the source was lost (crash, drain, ...) *)
  mutable state : state;
}

let create ~checkpoint ~from_server ~reason =
  { checkpoint; from_server; reason; state = Captured }

let checkpoint t = t.checkpoint
let from_server t = t.from_server
let reason t = t.reason
let state t = t.state

let state_name t =
  match t.state with
  | Captured -> "captured"
  | Shipped _ -> "shipped"
  | Resumed _ -> "resumed"
  | Abandoned _ -> "abandoned"

let illegal t what =
  invalid_arg (Fmt.str "Migrator.%s: checkpoint is %s" what (state_name t))

(* Time the image spends on the wire, under the same contention
   scaling the session applies to every other transfer. *)
let transfer_time t ~link ~bw_factor =
  Link.transfer_time_scaled link
    ~bytes:(Checkpoint.image_bytes t.checkpoint)
    ~bw_factor

let ship t ~to_server ~transfer_s =
  (match t.state with Captured -> () | _ -> illegal t "ship");
  t.state <- Shipped { to_server; transfer_s }

let resume t =
  match t.state with
  | Shipped { to_server; _ } -> t.state <- Resumed { to_server }
  | _ -> illegal t "resume"

let abandon t why =
  (match t.state with
  | Captured | Shipped _ -> ()
  | _ -> illegal t "abandon");
  t.state <- Abandoned { why }

let completed t = match t.state with Resumed _ -> true | _ -> false

let pp ppf t =
  Fmt.pf ppf "migrate %s from s%d (%s): %s" t.checkpoint.Checkpoint.ck_target
    t.from_server t.reason (state_name t)
