(** Resumable task image.

    Captured when the granting server is lost mid-offload; holds the
    offload-start base snapshot (what the mobile restores before the
    task is re-admitted elsewhere) plus progress cursors (dirty pages
    on the lost server, remote-I/O count, delivered console bytes)
    that make resumption exactly-once.  See DESIGN.md §14. *)

module Memory = No_mem.Memory
module Region = No_mem.Region
module Uva = No_mem.Uva
module Stack_alloc = No_mem.Stack_alloc
module Console = No_exec.Console
module Fs = No_exec.Fs

type t = {
  ck_target : string;
  ck_dirty_pages : int list;
  ck_resident_pages : int;
  ck_io_cursor : int;
  ck_ledger_bytes : int;
  ck_mem : Memory.snapshot;
  ck_uva : Uva.snapshot;
  ck_console : Console.mark;
  ck_fs : Fs.snapshot;
  ck_server_stack : Stack_alloc.mark;
}

val capture :
  target:string ->
  dirty_pages:int list ->
  resident_pages:int ->
  io_cursor:int ->
  ledger_bytes:int ->
  mem:Memory.snapshot ->
  uva:Uva.snapshot ->
  console:Console.mark ->
  fs:Fs.snapshot ->
  server_stack:Stack_alloc.mark ->
  t

val dirty_count : t -> int

val header_bytes : int
(** Fixed continuation-header size (registers, stack cursor, cursors). *)

val page_header_bytes : int
(** Per-page descriptor shipped alongside each dirty page. *)

val image_bytes : t -> int
(** Bytes the image occupies on the wire: header + committed console
    ledger + dirty pages with descriptors. *)

val pp : t Fmt.t
