(* The Native Offloader runtime (paper Section 4, Figure 5).

   A session owns the two devices of a run — the mobile host executing
   the mobile partition and the server host executing the server
   partition — the shared UVA allocator, the simulated wireless link,
   and the mobile battery.  It implements the offloaded-task life
   cycle:

     local execution  ->  dynamic estimation  ->  initialization
     (task id + arguments + page table + reallocated-global slots,
     prefetch)  ->  offloading execution (copy-on-demand page faults,
     remote I/O service, function-pointer translation)  ->
     finalization (compressed dirty-page write-back + return value).

   Every network event advances the shared simulated clock and is
   attributed to a mobile power state, which is what Figures 6(b) and
   8 integrate and plot. *)

module Ir = No_ir.Ir
module Ty = No_ir.Ty
module Arch = No_arch.Arch
module Layout = No_arch.Layout
module Memory = No_mem.Memory
module Region = No_mem.Region
module Scalar = No_mem.Scalar
module Uva = No_mem.Uva
module Stack_alloc = No_mem.Stack_alloc
module Link = No_netsim.Link
module Channel = No_netsim.Channel
module Power_model = No_power.Power_model
module Battery = No_power.Battery
module Host = No_exec.Host
module Interp = No_exec.Interp
module Value = No_exec.Value
module Console = No_exec.Console
module Fs = No_exec.Fs
module Fn_table = No_exec.Fn_table
module Loader = No_exec.Loader
module Partition = No_transform.Partition
module Pipeline = No_transform.Pipeline
module Dynamic_estimate = No_estimator.Dynamic_estimate
module Bandwidth_predictor = No_estimator.Bandwidth_predictor
module Trace = No_trace.Trace
module Fault_plan = No_fault.Plan
module Injector = No_fault.Injector
module Checkpoint = No_migrate.Checkpoint
module Migrator = No_migrate.Migrator
module Selfprof = No_selfprof.Selfprof

exception Offload_error of string

(* Raised from inside a blocking exchange when the server is
   unreachable for good (crash, or a deadline/retry budget exhausted);
   caught by [offload_invoke], which rolls back and replays locally. *)
exception Server_lost of string

type decision_mode = Dynamic | Always_offload | Never_offload

(* {1 Shared-server admission}

   A session normally assumes it owns its server outright.  Under the
   multi-client scheduler (lib/sched) the server is shared: before an
   offload leaves the mobile device the session asks the server for a
   worker slot, may wait in a FIFO queue, may be rejected outright,
   and — once admitted — pays contention-scaled compute and link
   rates.  The handle is the session's only view of the shared server;
   [None] (the default) is bit-for-bit the exclusive-server runtime. *)

type admission =
  | Admitted of {
      server : int;          (* pool member that granted the slot *)
      wait_s : float;        (* FIFO queue wait before a slot freed *)
      occupancy : int;       (* concurrent offloads incl. this one *)
      slot : int;            (* worker slot granted *)
      queue_depth : int;     (* requests already waiting at arrival *)
      r_scale : float;       (* effective-speedup scale at [occupancy] *)
      bw_scale : float;      (* link-bandwidth scale at [occupancy] *)
    }
  | Rejected of { server : int; queue_depth : int }
      (* admission queue full on the server the policy chose *)

type server_handle = {
  sh_load : now:float -> float * float;
      (* (r_scale, bw_scale) an offload starting now would be priced
         at on the server the routing policy would pick — consulted by
         the dynamic estimator at decision time so saturated clients
         decline offloads an idle server would win *)
  sh_request : now:float -> target:string -> admission;
      (* ask for a worker slot; the policy picks the server at this
         instant and the admission carries its id *)
  sh_release : now:float -> server:int -> slot:int -> unit;
      (* the offload finished (or was abandoned); free the slot on the
         server that granted it *)
  sh_volatile : bool;
      (* pool membership can change mid-offload (health schedule,
         crash quarantine): the session must snapshot at offload start
         even without a fault plan, because any exchange may raise
         [Server_lost] via [sh_interrupt] *)
  sh_interrupt : now:float -> server:int -> string option;
      (* is the member this offload is running on down (drained,
         quarantined) at [now]?  Consulted at every exchange.  Must
         answer from data — it runs between suspension points and may
         not block *)
  sh_migrate :
    now:float -> target:string -> from_server:int -> reason:string ->
    admission;
      (* re-admission for a checkpointed task: route to a healthy
         member other than [from_server], through the normal queue.
         [reason] is why the member was lost — a crash observation
         quarantines it pool-wide, a scheduled drain does not.
         [Rejected] means no healthy member — the caller falls back to
         rollback + local replay *)
}

type config = {
  mobile_arch : Arch.t;
  server_arch : Arch.t;
  link : Link.t;
  compress_writeback : bool;     (* server->mobile compression (paper) *)
  compress_upload : bool;        (* ablation: compress mobile->server too *)
  copy_all : bool;               (* ablation: ship whole heap up front *)
  prefetch : bool;
  decision : decision_mode;
  ideal : bool;                  (* zero communication/translation cost *)
  fnptr_translation_s : float;   (* per-translation bookkeeping cost *)
  fast_radio : bool;             (* selects the remote-I/O power level *)
  initial_bw_bps : float option; (* stale bandwidth belief; None = the
                                    configured link's effective rate *)
  trace : Trace.sink;            (* runtime event spine; every layer of
                                    the session emits through this *)
  faults : Fault_plan.t option;  (* deterministic fault schedule; None
                                    (and the empty plan) = no faults *)
  retry : Injector.policy;       (* per-RPC deadline + backoff bounds *)
  server_handle : server_handle option;
                                 (* shared-server admission; None = the
                                    session owns the server outright *)
  migrate : bool;                (* on [Server_lost] with a pool, ship a
                                    checkpoint to a healthy member and
                                    resume there; false = always roll
                                    back and replay locally *)
}

let default_config ?(link = Link.fast_wifi) () = {
  mobile_arch = Arch.arm32;
  server_arch = Arch.x86_64;
  link;
  compress_writeback = true;
  compress_upload = false;
  copy_all = false;
  prefetch = true;
  decision = Dynamic;
  ideal = false;
  fnptr_translation_s = 2.0e-4;   (* ~100ns real, on the CPU time scale *)
  fast_radio = true;
  initial_bw_bps = None;
  trace = Trace.null;
  faults = None;
  retry = Injector.default_policy;
  server_handle = None;
  migrate = true;
}

type target_seed = {
  seed_name : string;
  seed_time_s : float;           (* expected mobile time per invocation *)
  seed_mem_bytes : int;          (* expected shared-memory footprint *)
}

(* Figure 7's overhead categories, accumulated as they occur. *)
type overheads = {
  mutable comm_s : float;
  mutable fnptr_s : float;
  mutable remote_io_s : float;
  mutable fnptr_count : int;
  mutable remote_io_count : int;
  mutable fault_count : int;
  mutable prefetched_pages : int;
  mutable offloads : int;
  mutable refusals : int;
  mutable rpc_timeouts : int;
  mutable retries : int;
  mutable fallbacks : int;
  mutable recovery_s : float;    (* wall time lost to failed attempts *)
  mutable queued : int;          (* offloads that waited for a slot *)
  mutable queue_wait_s : float;  (* total FIFO wait *)
  mutable rejects : int;         (* admissions refused (queue full) *)
  mutable checkpoints : int;     (* task images captured on Server_lost *)
  mutable migrations : int;      (* checkpoints shipped to a new member *)
  mutable migrations_done : int; (* resumed attempts that completed *)
  mutable migrate_transfer_s : float; (* image time on the wire *)
  mutable migrate_resume_s : float;   (* re-execution span on the new member *)
}

type t = {
  config : config;
  mobile : Host.t;
  server : Host.t;
  clock : Host.clock;
  battery : Battery.t;
  estimator : Dynamic_estimate.t;
  predictor : Bandwidth_predictor.t;
  to_server : Channel.t;
  to_mobile : Channel.t;
  targets : Partition.target list;
  uva_globals : Ir.global list;
  unified_layout : Layout.env;
  ov : overheads;
  mem_estimate : (string, int) Hashtbl.t;  (* per-target footprint *)
  uva_global_addr : (string, int) Hashtbl.t; (* g -> UVA object address *)
  mutable last_mark : float;
  mutable in_offload : bool;
  mutable pending_request : (int * Value.t list) option;
  mutable pending_args : Value.t array;
  mutable pending_ret : Value.t;
  mutable last_resident : int list;        (* server residency, for prefetch *)
  mutable server_exec_s : float;           (* wall time inside offloads *)
  mutable finished : bool;
  injector : Injector.t option;            (* fault oracle; None = clean run *)
  mutable server_dead : bool;              (* crash observed; refuse future
                                              offloads, run locally *)
  mutable current_server : int option;     (* pool member running this
                                              offload, while admitted *)
  contention : float ref;                  (* shared-link bandwidth scale
                                              while admitted to a contended
                                              server; 1.0 otherwise *)
  row : Trace.Row.t;                       (* scratch for zero-alloc
                                              emission on the hot path *)
}

(* {1 Power bookkeeping} *)

let mark t state =
  let now = t.clock.Host.now in
  Battery.spend t.battery ~from_s:t.last_mark ~to_s:now state;
  t.last_mark <- now

(* Close the running segment with the phase's background state, then
   perform [f] (which advances the clock), then mark its segment. *)
let with_state t state f =
  mark t
    (if t.in_offload then Power_model.Waiting else Power_model.Computing);
  let result = f () in
  mark t state;
  result

let advance t seconds = t.clock.Host.now <- t.clock.Host.now +. seconds

(* {1 Event emission}

   Events mirror exactly what the session charges: span events are
   stamped with the span's start.  The mutable [overheads] counters
   are kept alongside; the aggregating trace sink must reproduce them
   bit-for-bit (enforced by the trace regression tests). *)

let emit_at t ~ts ev =
  if not (Trace.is_null t.config.trace) then t.config.trace.Trace.emit ~ts ev

let emit t ev = emit_at t ~ts:t.clock.Host.now ev

(* Hot-path variants: the caller fills [t.row] with a [Trace.Row.set_*]
   and emits it in place — no event is boxed unless a capture sink
   (ring, jsonl) sits behind the trace.  The row is only valid for the
   duration of the call. *)
let emit_row_at t ~ts =
  if not (Trace.is_null t.config.trace) then
    t.config.trace.Trace.emit_row ~ts t.row

let emit_row t = emit_row_at t ~ts:t.clock.Host.now

(* {1 Construction} *)

let server_globals_base = Host.globals_base_of_role Host.Server

(* Pre-decoded code tables, shared across every session created from
   the same pipeline output on the same architectures.  Lowering
   (including the instruction-fusion pass) depends only on the module,
   the unified layout — itself a function of the mobile arch and the
   module's structs — and the role's deterministic global/function
   address assignment, so a fleet of hundreds of clients pays for it
   once per workload instead of twice per session.  Keys compare
   physically: the fleet driver caches its compiled outputs, and arch
   descriptors are the shared [Arch] constants; a miss merely
   recompiles. *)
let code_memo :
    (Pipeline.output
    * Arch.t
    * Arch.t
    * ((string, Host.compiled) Hashtbl.t * (string, Host.compiled) Hashtbl.t))
    list
    ref =
  ref []

let code_memo_max = 8

let session_code ~(output : Pipeline.output) ~mobile_arch ~server_arch ~layout
    ~mobile_table ~server_table =
  match
    List.find_opt
      (fun (o, ma, sa, _) -> o == output && ma == mobile_arch && sa == server_arch)
      !code_memo
  with
  | Some (_, _, _, codes) -> codes
  | None ->
    let codes =
      ( Host.compile_module ~arch:mobile_arch ~role:Host.Mobile
          ~modul:output.Pipeline.o_mobile ~layout ~fn_table:mobile_table (),
        Host.compile_module ~arch:server_arch ~role:Host.Server
          ~modul:output.Pipeline.o_server ~layout ~fn_table:server_table () )
    in
    code_memo :=
      (output, mobile_arch, server_arch, codes)
      :: (if List.length !code_memo >= code_memo_max then
            List.filteri (fun i _ -> i < code_memo_max - 1) !code_memo
          else !code_memo);
    codes

let create ?(config = default_config ()) ?(script = []) ?(files = [])
    (output : Pipeline.output) ~(seeds : target_seed list) : t =
  let clock = { Host.now = 0.0 } in
  let uva = Uva.create () in
  let console = Console.create ~script () in
  let fs = Fs.create () in
  List.iter (fun (name, data) -> Fs.add_file fs name data) files;
  let structs name = Ir.find_struct_exn output.Pipeline.o_unified name in
  let unified_layout =
    Layout.unified_env ~mobile:config.mobile_arch ~structs
  in
  let mobile_fn_names =
    List.map (fun (f : Ir.func) -> f.Ir.f_name)
      output.Pipeline.o_mobile.Ir.m_funcs
  in
  let server_fn_names =
    List.map (fun (f : Ir.func) -> f.Ir.f_name)
      output.Pipeline.o_server.Ir.m_funcs
  in
  let mobile_table = Fn_table.mobile mobile_fn_names in
  let server_table = Fn_table.server server_fn_names in
  let mobile_code, server_code =
    session_code ~output ~mobile_arch:config.mobile_arch
      ~server_arch:config.server_arch ~layout:unified_layout
      ~mobile_table ~server_table
  in
  let mobile =
    Host.create ~arch:config.mobile_arch ~role:Host.Mobile
      ~modul:output.Pipeline.o_mobile ~layout:unified_layout
      ~fn_table:mobile_table ~uva ~console ~fs ~clock ~sink:config.trace
      ~code:mobile_code ()
  in
  let server =
    Host.create ~arch:config.server_arch ~role:Host.Server
      ~modul:output.Pipeline.o_server ~layout:unified_layout
      ~fn_table:server_table
      ~fn_addr_standard:(Fn_table.addr_of mobile_table)
      ~uva ~console ~fs ~clock ~sink:config.trace ~code:server_code ()
  in
  let r =
    Arch.performance_ratio ~mobile:config.mobile_arch
      ~server:config.server_arch
  in
  let initial_bw =
    Option.value ~default:(Link.effective_bps config.link)
      config.initial_bw_bps
  in
  let estimator = Dynamic_estimate.create ~r ~bw_bps:initial_bw in
  (match config.decision with
  | Dynamic -> ()
  | Always_offload -> Dynamic_estimate.force estimator (Some true)
  | Never_offload -> Dynamic_estimate.force estimator (Some false));
  let mem_estimate = Hashtbl.create 8 in
  List.iter
    (fun seed ->
      Dynamic_estimate.seed estimator ~name:seed.seed_name
        ~profile_time_s:seed.seed_time_s;
      Hashtbl.replace mem_estimate seed.seed_name seed.seed_mem_bytes)
    seeds;
  (* In an ideal run bytes still move logically but no time is
     charged; wrap the channels' sink so the emitted Flush events
     reflect the charged (zero) cost. *)
  let channel_sink =
    if Trace.is_null config.trace then Trace.null
    else if config.ideal then
      { Trace.emit =
          (fun ~ts ev -> config.trace.Trace.emit ~ts (Trace.zero_cost ev));
        Trace.emit_row =
          (fun ~ts row ->
            Trace.zero_cost_row row;
            config.trace.Trace.emit_row ~ts row) }
    else config.trace
  in
  let channel_clock () = clock.Host.now in
  (* The fault oracle, shared by the channels (bandwidth collapse) and
     the session's blocking exchanges (everything else).  The empty
     plan is indistinguishable from no plan: the bandwidth factor is
     then constantly 1.0 (the IEEE multiplicative identity) and no
     verdict ever differs from Deliver. *)
  let injector =
    Option.map (fun plan -> Injector.create ~policy:config.retry plan)
      config.faults
  in
  (* Link contention from the shared server composes multiplicatively
     with the injector's bandwidth collapse; both are 1.0 (the IEEE
     multiplicative identity) on an uncontended clean run. *)
  let contention = ref 1.0 in
  let channel_bw_factor () =
    let inj_factor =
      match injector with
      | None -> 1.0
      | Some inj -> Injector.bw_factor inj ~now:clock.Host.now
    in
    inj_factor *. !contention
  in
  let t =
    {
      config;
      mobile;
      server;
      clock;
      battery =
        Battery.create ~sink:config.trace
          (Power_model.galaxy_s5 ~fast_radio:config.fast_radio);
      estimator;
      predictor = Bandwidth_predictor.create ~initial_bps:initial_bw ();
      to_server =
        Channel.create ~compress:config.compress_upload ~sink:channel_sink
          ~clock:channel_clock ~bw_factor:channel_bw_factor config.link
          Channel.To_server;
      to_mobile =
        Channel.create ~compress:config.compress_writeback ~sink:channel_sink
          ~clock:channel_clock ~bw_factor:channel_bw_factor config.link
          Channel.To_mobile;
      targets = output.Pipeline.o_targets;
      uva_globals = output.Pipeline.o_mobile.Ir.m_uva_globals;
      unified_layout;
      ov =
        { comm_s = 0.0; fnptr_s = 0.0; remote_io_s = 0.0; fnptr_count = 0;
          remote_io_count = 0; fault_count = 0; prefetched_pages = 0;
          offloads = 0; refusals = 0; rpc_timeouts = 0; retries = 0;
          fallbacks = 0; recovery_s = 0.0; queued = 0; queue_wait_s = 0.0;
          rejects = 0; checkpoints = 0; migrations = 0; migrations_done = 0;
          migrate_transfer_s = 0.0; migrate_resume_s = 0.0 };
      mem_estimate;
      uva_global_addr = Hashtbl.create 16;
      last_mark = 0.0;
      in_offload = false;
      pending_request = None;
      pending_args = [||];
      pending_ret = Value.zero;
      last_resident = [];
      server_exec_s = 0.0;
      finished = false;
      injector;
      server_dead = false;
      current_server = None;
      contention;
      row = Trace.Row.create ();
    }
  in
  t

(* {1 Communication primitives} *)

let charge_comm t seconds =
  if not t.config.ideal then begin
    advance t seconds;
    t.ov.comm_s <- t.ov.comm_s +. seconds
  end

(* Every physical transfer feeds the bandwidth predictor, which in
   turn refreshes the dynamic estimator's belief — the NWSLite-style
   extension the paper's related work points at. *)
let observe_transfer t ~bytes ~seconds =
  if not t.config.ideal then begin
    Bandwidth_predictor.observe t.predictor ~bytes ~seconds;
    let belief = Bandwidth_predictor.predict_bps t.predictor in
    Dynamic_estimate.set_bandwidth t.estimator belief;
    (* Sampling hook for the telemetry layer: the refreshed belief as
       a gauge, so windowed series can chart what the estimator saw. *)
    Trace.Row.set_bw_sample t.row ~bps:belief;
    emit_row t
  end

let send_to_server t (payload : Bytes.t) =
  Channel.send t.to_server payload

let flush_to_server t =
  let bytes = Channel.pending_bytes t.to_server in
  let seconds = Channel.flush t.to_server in
  observe_transfer t ~bytes ~seconds;
  charge_comm t seconds

let send_to_mobile t (payload : Bytes.t) =
  Channel.send t.to_mobile payload

let flush_to_mobile t =
  let bytes = Channel.pending_bytes t.to_mobile in
  let seconds = Channel.flush t.to_mobile in
  observe_transfer t ~bytes ~seconds;
  charge_comm t seconds

(* Usable-bandwidth scale at the current instant: fault injection's
   bandwidth collapse composed with shared-server link contention;
   1.0 on an uncontended clean run. *)
let bw_factor t =
  let inj_factor =
    match t.injector with
    | None -> 1.0
    | Some inj -> Injector.bw_factor inj ~now:t.clock.Host.now
  in
  inj_factor *. !(t.contention)

(* {1 Fault-aware exchanges}

   Every blocking exchange of the offload protocol (init header,
   prefetch, copy-on-demand page fault, remote I/O, finalization
   write-back) goes through [exchange]: on a clean run it degenerates
   to [with_state state deliver], bit for bit.  Under a fault plan,
   each attempt is judged by the injector; failed attempts charge the
   RPC deadline (waiting state — the clock and battery keep running)
   and back off exponentially.  A server crash, or an exhausted retry
   budget, raises [Server_lost]; [offload_invoke] catches it, rolls
   the mobile state back and replays the task locally.

   Delivery-time cost is only charged for the attempt that succeeds:
   the model is a reliable transport whose *payload* crosses the link
   once, with loss showing up as deadline + backoff stalls. *)

(* Pool-driven loss: the member running this offload may be drained by
   a maintenance schedule or quarantined after another client observed
   its crash.  Checked at every exchange, with or without a fault
   plan.  [sh_interrupt] answers from time-indexed pool data — no
   suspension — so the check preserves the run-to-completion invariant
   between Sync points. *)
let check_interrupt t ~op =
  match (t.config.server_handle, t.current_server) with
  | Some sh, Some server -> (
    match sh.sh_interrupt ~now:t.clock.Host.now ~server with
    | Some why ->
      raise (Server_lost (Printf.sprintf "%s: server %d %s" op server why))
    | None -> ())
  | _ -> ()

let exchange t ~op ~state (deliver : unit -> 'a) : 'a =
  check_interrupt t ~op;
  match t.injector with
  | None -> with_state t state deliver
  | Some inj ->
    let policy = Injector.policy inj in
    let wait seconds =
      with_state t Power_model.Waiting (fun () -> advance t seconds)
    in
    let give_up reason =
      raise (Server_lost (Printf.sprintf "%s: %s" op reason))
    in
    let backoff_then attempt =
      (* Attempt [attempt] failed; sleep and come back, or give up. *)
      if attempt >= policy.Injector.max_attempts then
        give_up
          (Printf.sprintf "no reply after %d attempts" policy.Injector.max_attempts)
      else begin
        let backoff = Injector.backoff_s policy ~attempt in
        let ts = t.clock.Host.now in
        wait backoff;
        emit_at t ~ts (Trace.Retry { op; attempt; backoff_s = backoff });
        t.ov.retries <- t.ov.retries + 1
      end
    in
    let rec go attempt =
      let now = t.clock.Host.now in
      let verdict = Injector.judge inj ~now in
      match verdict with
      | Injector.Deliver -> with_state t state deliver
      | Injector.Server_down ->
        emit t (Trace.Fault_injected { kind = "server-crash"; op });
        t.server_dead <- true;
        give_up "server crashed"
      | Injector.Outage _ | Injector.Drop ->
        (* The message vanishes into dead air; we only learn by
           waiting out the deadline. *)
        emit t
          (Trace.Fault_injected { kind = Injector.verdict_kind verdict; op });
        let ts = t.clock.Host.now in
        wait policy.Injector.deadline_s;
        emit_at t ~ts
          (Trace.Rpc_timeout { op; attempt; waited_s = policy.Injector.deadline_s });
        t.ov.rpc_timeouts <- t.ov.rpc_timeouts + 1;
        backoff_then attempt;
        go (attempt + 1)
      | Injector.Corrupt ->
        (* The payload crossed but arrived mangled; the receiver's
           checksum rejects it and NACKs — one small control round
           trip, then an immediate resend. *)
        emit t (Trace.Fault_injected { kind = "corruption"; op });
        let nack_s =
          Link.round_trip_time_scaled t.config.link ~req:48 ~resp:48
            ~bw_factor:(bw_factor t)
        in
        wait nack_s;
        backoff_then attempt;
        go (attempt + 1)
    in
    go 1

(* {1 Page movement} *)

(* Is [page] part of the state the mobile device owns (and therefore
   subject to copy-on-demand and write-back)? *)
let mobile_owned_page page =
  let addr = Region.addr_of_page page in
  match Region.region_of_addr addr with
  | Region.Heap | Region.Mobile_stack -> true
  | Region.Globals -> addr < server_globals_base
  | Region.Server_stack | Region.Null_guard | Region.Unmapped -> false

(* Copy-on-demand fault service: bring one page from the mobile
   device, paying a round trip. *)
let service_fault_unprofiled t (mem : Memory.t) page =
  if not (mobile_owned_page page) then
    (* Server-local page (its stack, a fresh heap page the mobile
       never materialized): materialize zeroes locally, no traffic. *)
    Memory.install_page mem page (Bytes.make Region.page_size '\000')
  else if not (Memory.has_page t.mobile.Host.mem page) then
    Memory.install_page mem page (Bytes.make Region.page_size '\000')
  else begin
    exchange t ~op:"page-fault" ~state:Power_model.Transmitting (fun () ->
        t.ov.fault_count <- t.ov.fault_count + 1;
        let ts = t.clock.Host.now in
        let seconds =
          Link.round_trip_time_scaled t.config.link ~req:48
            ~resp:(Region.page_size + 48) ~bw_factor:(bw_factor t)
        in
        charge_comm t seconds;
        Trace.Row.set_page_fault t.row ~page
          ~service_s:(if t.config.ideal then 0.0 else seconds);
        emit_row_at t ~ts);
    Memory.install_page mem page (Memory.page_copy t.mobile.Host.mem page)
  end

(* The exchange inside may raise (fault plans); leave the zone on both
   edges so a failed service doesn't keep absorbing self-time. *)
let service_fault t (mem : Memory.t) page =
  Selfprof.enter Page_fault;
  match service_fault_unprofiled t mem page with
  | () -> Selfprof.leave Page_fault
  | exception e ->
    Selfprof.leave Page_fault;
    raise e

(* Batch-ship a set of pages mobile -> server. *)
let push_pages_to_server t (pages : int list) =
  let pages =
    List.filter
      (fun page ->
        mobile_owned_page page && Memory.has_page t.mobile.Host.mem page)
      pages
  in
  if pages <> [] then
    exchange t ~op:"prefetch" ~state:Power_model.Transmitting (fun () ->
        let ts = t.clock.Host.now in
        List.iter
          (fun page ->
            let payload = Memory.page_copy t.mobile.Host.mem page in
            Memory.install_page t.server.Host.mem page payload;
            send_to_server t payload;
            send_to_server t (Bytes.make 8 '\000') (* page header *))
          pages;
        flush_to_server t;
        t.ov.prefetched_pages <- t.ov.prefetched_pages + List.length pages;
        Trace.Row.set_prefetch t.row ~pages:(List.length pages)
          ~bytes:(List.length pages * Region.page_size);
        emit_row_at t ~ts)

(* {1 Initialization / finalization} *)

let unified_endianness t = t.config.mobile_arch.Arch.endianness

(* Copy the reallocated-global slot values mobile -> server.  Slots
   hold unified-width (32-bit) UVA addresses in unified byte order. *)
let sync_uva_slots t =
  List.iter
    (fun (g : Ir.global) ->
      let slot = No_transform.Global_realloc.slot_name g.Ir.g_name in
      let mob_addr = Host.global_addr t.mobile slot in
      let srv_addr = Host.global_addr t.server slot in
      let value =
        Scalar.load_int (unified_endianness t)
          ~read_byte:(Memory.read_byte t.mobile.Host.mem)
          mob_addr 4
      in
      Scalar.store_int (unified_endianness t)
        ~write_byte:(Memory.write_byte t.server.Host.mem)
        srv_addr 4 value)
    t.uva_globals

let initialization t target_id (args : Value.t list) =
  (* Offloading information: task id, stack pointer, page table,
     arguments, reallocated-global slot table. *)
  let resident = Memory.resident_count t.mobile.Host.mem in
  let header_bytes =
    64 (* id, stack pointer, sizes *)
    + ((resident / 8) + 1) (* page-table bitmap *)
    + (List.length args * 8)
    + (List.length t.uva_globals * 12)
  in
  exchange t ~op:"init" ~state:Power_model.Transmitting (fun () ->
      send_to_server t (Bytes.make header_bytes '\000');
      flush_to_server t);
  sync_uva_slots t;
  ignore target_id;
  (* Prefetch: the pages this target needed last time, or on the first
     offload every page the UVA heap has handed out. *)
  if t.config.copy_all then
    push_pages_to_server t
      (List.filter mobile_owned_page
         (Memory.resident_pages t.mobile.Host.mem))
  else if t.config.prefetch then begin
    let pages =
      match t.last_resident with
      | [] -> Uva.used_pages t.mobile.Host.uva
      | pages -> pages
    in
    push_pages_to_server t pages
  end;
  Memory.clear_dirty t.server.Host.mem;
  t.server.Host.mem.Memory.track_dirty <- true

let finalization t : int =
  (* Dirty pages + return value + updated page table, compressed
     server->mobile (Section 4: compression is applied only in this
     direction). *)
  let dirty =
    List.filter mobile_owned_page (Memory.dirty_pages t.server.Host.mem)
  in
  exchange t ~op:"finalize" ~state:Power_model.Receiving (fun () ->
      List.iter
        (fun page ->
          let payload = Memory.page_copy t.server.Host.mem page in
          Memory.install_page t.mobile.Host.mem page payload;
          send_to_mobile t payload;
          send_to_mobile t (Bytes.make 8 '\000'))
        dirty;
      (* Deterministic placeholder: [Bytes.create] would ship
         uninitialized memory, making compressed wire sizes vary from
         run to run. *)
      send_to_mobile t (Bytes.make 64 '\000');  (* return value + signal *)
      flush_to_mobile t);
  (* Terminate the offloading process: the server keeps no offloading
     data (its own globals area survives; everything fetched or
     allocated for the task is dropped). *)
  let fetched =
    List.filter mobile_owned_page (Memory.resident_pages t.server.Host.mem)
  in
  t.last_resident <- fetched;
  List.iter (Memory.drop_page t.server.Host.mem) fetched;
  t.server.Host.mem.Memory.track_dirty <- false;
  Memory.clear_dirty t.server.Host.mem;
  List.length dirty

(* {1 Server-side externs and intercepts} *)

let target_by_id t id =
  List.find_opt (fun tg -> tg.Partition.t_id = id) t.targets

let target_by_name t name =
  List.find_opt (fun tg -> String.equal tg.Partition.t_name name) t.targets

let remote_io_cost t ~(io_name : string) ~(request : int) ~(response : int)
    ~(round_trip : bool) =
  if not t.config.ideal then
    exchange t ~op:io_name ~state:Power_model.Remote_io_service (fun () ->
        t.ov.remote_io_count <- t.ov.remote_io_count + 1;
        let ts = t.clock.Host.now in
        let seconds =
          if round_trip then
            Link.round_trip_time_scaled t.config.link ~req:request
              ~resp:response ~bw_factor:(bw_factor t)
          else
            Link.transfer_time_scaled t.config.link ~bytes:request
              ~bw_factor:(bw_factor t)
        in
        advance t seconds;
        t.ov.remote_io_s <- t.ov.remote_io_s +. seconds;
        Trace.Row.set_remote_io t.row ~io_name ~request_bytes:request
          ~response_bytes:response ~cost_s:seconds;
        emit_row_at t ~ts)

(* Intercept the server's remote I/O builtins: add the network cost of
   the request; the functional work then runs against the *shared*
   console and file system (they live on the mobile device). *)
let server_builtin_override t name (argv : Value.t list) : Value.t option =
  match name with
  | "r_print_i64" | "r_print_f64" | "r_print_newline" ->
    remote_io_cost t ~io_name:name ~request:48 ~response:0 ~round_trip:false;
    None
  | "r_print_str" ->
    let len =
      match argv with
      | [ addr ] ->
        (try String.length (Interp.read_cstring t.server (Value.to_addr addr))
         with Memory.Page_fault _ | Memory.Bad_access _ -> 16)
      | _ -> 16
    in
    remote_io_cost t ~io_name:name ~request:(48 + len) ~response:0
      ~round_trip:false;
    None
  | "rf_open" | "rf_close" ->
    remote_io_cost t ~io_name:name ~request:64 ~response:32 ~round_trip:true;
    None
  | "rf_size" ->
    remote_io_cost t ~io_name:name ~request:48 ~response:32 ~round_trip:true;
    None
  | "rf_read" ->
    let len =
      match argv with
      | [ _; _; len ] -> Int64.to_int (Value.to_int len)
      | _ -> 0
    in
    remote_io_cost t ~io_name:name ~request:48 ~response:(48 + len)
      ~round_trip:true;
    None
  | _ -> None

let server_extern t name (argv : Value.t list) : Value.t option =
  match name with
  | "__accept_offload" -> (
    match t.pending_request with
    | Some (id, args) ->
      t.pending_request <- None;
      t.pending_args <- Array.of_list args;
      Some (Value.VInt (Int64.of_int id))
    | None -> Some (Value.VInt (-1L)))
  | "__arg_i64" | "__arg_f64" -> (
    match argv with
    | [ k ] -> Some t.pending_args.(Int64.to_int (Value.to_int k))
    | _ -> raise (Offload_error "bad __arg call"))
  | "__ret_i64" | "__ret_f64" -> (
    match argv with
    | [ v ] ->
      t.pending_ret <- v;
      Some Value.zero
    | _ -> raise (Offload_error "bad __ret call"))
  | "__ret_void" ->
    t.pending_ret <- Value.zero;
    Some Value.zero
  | _ -> None

let install_server_hooks t =
  let hooks = t.server.Host.hooks in
  hooks.Host.builtin_override <- Some (server_builtin_override t);
  hooks.Host.extern_call <- Some (server_extern t);
  hooks.Host.fn_map <-
    Some
      (fun dir v ->
        if not t.config.ideal then begin
          t.ov.fnptr_count <- t.ov.fnptr_count + 1;
          let ts = t.clock.Host.now in
          advance t t.config.fnptr_translation_s;
          t.ov.fnptr_s <- t.ov.fnptr_s +. t.config.fnptr_translation_s;
          Trace.Row.set_fnptr_translate t.row
            ~cost_s:t.config.fnptr_translation_s;
          emit_row_at t ~ts
        end;
        let addr = Value.to_addr v in
        match dir with
        | Ir.Mobile_to_server ->
          let name = Fn_table.name_of t.mobile.Host.fn_table addr in
          Value.VInt
            (Int64.of_int (Fn_table.addr_of t.server.Host.fn_table name))
        | Ir.Server_to_mobile ->
          let name = Fn_table.name_of t.server.Host.fn_table addr in
          Value.VInt
            (Int64.of_int (Fn_table.addr_of t.mobile.Host.fn_table name)));
  t.server.Host.mem.Memory.on_fault <- Some (service_fault t)

(* {1 Snapshot and rollback}

   Everything an offloaded task can observably touch is snapshotted at
   offload start: the mobile page set (globals, heap, mobile stack),
   the shared UVA allocator metadata, the console transaction mark and
   the file-system cursors.  If the server is lost mid-task, rollback
   restores all of it — plus the server-side debris (leaked stack
   frames, half-fetched pages) — so the local replay starts from
   exactly the state the offload attempt started from and every side
   effect is observed exactly once. *)

type offload_snapshot = {
  sn_mem : Memory.snapshot;
  sn_uva : Uva.snapshot;
  sn_console : Console.mark;
  sn_fs : Fs.snapshot;
  sn_server_stack : Stack_alloc.mark;
  sn_pages : int;                  (* mobile resident pages, for the event *)
}

let take_snapshot t =
  {
    sn_mem = Memory.snapshot t.mobile.Host.mem;
    sn_uva = Uva.snapshot t.mobile.Host.uva;
    sn_console = Console.mark t.mobile.Host.console;
    sn_fs = Fs.snapshot t.mobile.Host.fs;
    sn_server_stack = Stack_alloc.frame_mark t.server.Host.stack;
    sn_pages = Memory.resident_count t.mobile.Host.mem;
  }

let rollback t (target : Partition.target) snap =
  (* Mobile state back to offload start. *)
  Memory.restore t.mobile.Host.mem snap.sn_mem;
  Uva.restore t.mobile.Host.uva snap.sn_uva;
  let bytes_discarded =
    Console.rollback_to t.mobile.Host.console snap.sn_console
  in
  Fs.restore t.mobile.Host.fs snap.sn_fs;
  (* Server-side debris: the interpreter leaks stack frames when an
     exception unwinds it, and copy-on-demand may have left fetched
     pages behind.  Release both — the server keeps no offloading
     data. *)
  Stack_alloc.release t.server.Host.stack snap.sn_server_stack;
  let fetched =
    List.filter mobile_owned_page (Memory.resident_pages t.server.Host.mem)
  in
  List.iter (Memory.drop_page t.server.Host.mem) fetched;
  t.server.Host.mem.Memory.track_dirty <- false;
  Memory.clear_dirty t.server.Host.mem;
  t.pending_request <- None;
  t.pending_args <- [||];
  emit t
    (Trace.Rollback
       { target = target.Partition.t_name; pages_restored = snap.sn_pages;
         bytes_discarded })

(* {1 The offload protocol (mobile side)} *)

let offload_invoke t (target : Partition.target) (args : Value.t list) :
    Value.t =
  if t.server_dead then
    (* The crash was already observed: the dispatcher may still force
       its way here (Always_offload); run the retained local body. *)
    Interp.call t.mobile target.Partition.t_name args
  else begin
  (* Shared-server admission: ask for a worker slot before any
     protocol work.  A rejection never leaves the mobile device — the
     retained local body runs, and the Replay event keeps the obs
     layer's accounting of forced local executions intact. *)
  let admission =
    Option.map
      (fun sh ->
        ( sh,
          sh.sh_request ~now:t.clock.Host.now
            ~target:target.Partition.t_name ))
      t.config.server_handle
  in
  match admission with
  | Some (_, Rejected { server; queue_depth }) ->
    t.ov.rejects <- t.ov.rejects + 1;
    Trace.Row.set_reject t.row ~target:target.Partition.t_name ~server
      ~queue_depth;
    emit_row t;
    let replay_t0 = t.clock.Host.now in
    let result = Interp.call t.mobile target.Partition.t_name args in
    Trace.Row.set_replay t.row ~target:target.Partition.t_name
      ~replay_s:(t.clock.Host.now -. replay_t0);
    emit_row_at t ~ts:replay_t0;
    result
  | None | Some (_, Admitted _) ->
  (* A snapshot is needed whenever [Server_lost] can reach us: from
     the fault oracle, or from a pool whose membership shifts under
     running offloads (maintenance drains, crash quarantines). *)
  let volatile =
    match t.config.server_handle with
    | Some sh -> sh.sh_volatile
    | None -> false
  in
  let snap =
    if t.injector <> None || volatile then Some (take_snapshot t) else None
  in
  t.ov.offloads <- t.ov.offloads + 1;
  t.in_offload <- true;
  let t0 = t.clock.Host.now in
  let io0 = t.ov.remote_io_count in
  Trace.Row.set_offload_begin t.row ~target:target.Partition.t_name;
  emit_row_at t ~ts:t0;
  (* Occupy a granted slot: wait out the FIFO queue (the mobile radio
     idles in Waiting), then price the contention — the server's slice
     of the machine slows down and the shared link serves a fraction
     of its bandwidth until the slot is released.  Used for the first
     admission and again when a checkpointed task is re-admitted on a
     new member. *)
  let occupy sh ~server ~wait_s ~occupancy ~slot ~queue_depth ~r_scale
      ~bw_scale =
    if wait_s > 0.0 then begin
      t.ov.queued <- t.ov.queued + 1;
      t.ov.queue_wait_s <- t.ov.queue_wait_s +. wait_s;
      Trace.Row.set_queue t.row ~target:target.Partition.t_name ~server
        ~wait_s ~depth:queue_depth;
      emit_row t;
      with_state t Power_model.Waiting (fun () -> advance t wait_s)
    end;
    Trace.Row.set_admit t.row ~target:target.Partition.t_name ~server
      ~occupancy ~slot;
    emit_row t;
    t.server.Host.slowdown <- 1.0 /. r_scale;
    t.contention := bw_scale;
    t.current_server <- Some server;
    fun () ->
      t.server.Host.slowdown <- 1.0;
      t.contention := 1.0;
      t.current_server <- None;
      sh.sh_release ~now:t.clock.Host.now ~server ~slot
  in
  let release_slot =
    match admission with
    | None -> fun () -> ()
    | Some (sh, Admitted { server; wait_s; occupancy; slot; queue_depth;
                           r_scale; bw_scale }) ->
      occupy sh ~server ~wait_s ~occupancy ~slot ~queue_depth ~r_scale
        ~bw_scale
    | Some (_, Rejected _) -> assert false   (* handled above *)
  in
  let attempt () =
    initialization t target.Partition.t_id args;
    (* Offloading execution: run the generated listener on the server;
       it accepts the request, unmarshals, calls the target, posts the
       return value. *)
    t.pending_request <- Some (target.Partition.t_id, args);
    (match Interp.call t.server Partition.listener_name [] with
    | _ -> ()
    | exception Interp.Trap msg ->
      raise (Offload_error ("server trap: " ^ msg)));
    let dirty_count = finalization t in
    (* Refresh the footprint estimate with what this run actually
       moved. *)
    let moved_bytes =
      (List.length t.last_resident * Region.page_size)
    in
    if moved_bytes > 0 then
      Hashtbl.replace t.mem_estimate target.Partition.t_name moved_bytes;
    dirty_count
  in
  (* Mid-flight recovery by migration: freeze the task into a
     checkpoint, ship it to a healthy pool member, resume there.
     "Resume" is deterministic re-execution from the offload-start
     base — the interpreter continuation died with the server — with
     the progress cursors making the re-run externally invisible: the
     console arms a suppression window over the bytes already
     delivered, so re-executed writes are verified against the
     committed ledger and dropped rather than shown twice.  Returns
     [None] (fall back to rollback + local replay) when no healthy
     member remains or the resumed attempt dies too. *)
  let try_migrate sh ~from_server ~reason snap =
    let tname = target.Partition.t_name in
    let dirty =
      List.filter mobile_owned_page (Memory.dirty_pages t.server.Host.mem)
    in
    let resident =
      List.length
        (List.filter mobile_owned_page
           (Memory.resident_pages t.server.Host.mem))
    in
    let ledger_bytes =
      Console.committed_since t.mobile.Host.console snap.sn_console
    in
    let ck =
      Checkpoint.capture ~target:tname ~dirty_pages:dirty
        ~resident_pages:resident ~io_cursor:(t.ov.remote_io_count - io0)
        ~ledger_bytes ~mem:snap.sn_mem ~uva:snap.sn_uva
        ~console:snap.sn_console ~fs:snap.sn_fs
        ~server_stack:snap.sn_server_stack
    in
    t.ov.checkpoints <- t.ov.checkpoints + 1;
    emit t
      (Trace.Checkpoint
         { target = tname; pages = Checkpoint.dirty_count ck;
           image_bytes = Checkpoint.image_bytes ck;
           io_cursor = ck.Checkpoint.ck_io_cursor; ledger_bytes });
    let mig = Migrator.create ~checkpoint:ck ~from_server ~reason in
    match
      sh.sh_migrate ~now:t.clock.Host.now ~target:tname ~from_server ~reason
    with
    | Rejected _ ->
      Migrator.abandon mig "no healthy member";
      None
    | Admitted { server = to_server; wait_s; occupancy; slot; queue_depth;
                 r_scale; bw_scale } ->
      (* Ship the image over the link, then reset the mobile to the
         base WITHOUT undoing delivered output — the committed ledger
         stays, armed as a suppression window. *)
      let transfer_s =
        if t.config.ideal then 0.0
        else
          Migrator.transfer_time mig ~link:t.config.link
            ~bw_factor:(bw_factor t)
      in
      emit t
        (Trace.Migrate_start
           { target = tname; from_server; to_server; reason; transfer_s });
      t.ov.migrations <- t.ov.migrations + 1;
      t.ov.migrate_transfer_s <- t.ov.migrate_transfer_s +. transfer_s;
      with_state t Power_model.Transmitting (fun () -> advance t transfer_s);
      Migrator.ship mig ~to_server ~transfer_s;
      Memory.restore t.mobile.Host.mem snap.sn_mem;
      Uva.restore t.mobile.Host.uva snap.sn_uva;
      ignore (Console.resume_at t.mobile.Host.console snap.sn_console);
      Fs.restore t.mobile.Host.fs snap.sn_fs;
      (* The lost member keeps no offloading data: leaked stack
         frames and half-fetched pages are dropped, same as rollback. *)
      Stack_alloc.release t.server.Host.stack snap.sn_server_stack;
      let fetched =
        List.filter mobile_owned_page
          (Memory.resident_pages t.server.Host.mem)
      in
      List.iter (Memory.drop_page t.server.Host.mem) fetched;
      t.server.Host.mem.Memory.track_dirty <- false;
      Memory.clear_dirty t.server.Host.mem;
      t.pending_request <- None;
      t.pending_args <- [||];
      if t.server_dead then begin
        (* The planned crash killed [from_server]; the new member is
           healthy, so the oracle's crash is spent. *)
        (match t.injector with
        | Some inj -> Injector.clear_crash inj
        | None -> ());
        t.server_dead <- false
      end;
      let release =
        occupy sh ~server:to_server ~wait_s ~occupancy ~slot ~queue_depth
          ~r_scale ~bw_scale
      in
      t.in_offload <- true;
      let resume_t0 = t.clock.Host.now in
      (match attempt () with
      | dirty_count ->
        Migrator.resume mig;
        t.in_offload <- false;
        let resumed_span_s = t.clock.Host.now -. resume_t0 in
        t.ov.migrations_done <- t.ov.migrations_done + 1;
        t.ov.migrate_resume_s <- t.ov.migrate_resume_s +. resumed_span_s;
        emit t
          (Trace.Migrate_done { target = tname; server = to_server;
                                resumed_span_s });
        let span_s = t.clock.Host.now -. t0 in
        t.server_exec_s <- t.server_exec_s +. span_s;
        Trace.Row.set_offload_end t.row ~target:tname
          ~dirty_pages:dirty_count ~span_s;
        emit_row t;
        release ();
        Some t.pending_ret
      | exception Server_lost reason2 ->
        (* The resumed attempt died too (second outage, a drained
           replacement...).  One migration per invocation: give the
           slot back and let local replay finish the job. *)
        mark t Power_model.Waiting;
        t.in_offload <- false;
        release ();
        Migrator.abandon mig reason2;
        None)
  in
  match attempt () with
  | dirty_count ->
    t.in_offload <- false;
    let span_s = t.clock.Host.now -. t0 in
    t.server_exec_s <- t.server_exec_s +. span_s;
    Trace.Row.set_offload_end t.row ~target:target.Partition.t_name
      ~dirty_pages:dirty_count ~span_s;
    emit_row t;
    release_slot ();
    t.pending_ret
  | exception Server_lost reason ->
    (* Close the span the failure interrupted (the mobile device was
       waiting on the server) and release the lost member's slot, then
       try to finish the job elsewhere in the pool before giving up on
       it entirely. *)
    mark t Power_model.Waiting;
    t.in_offload <- false;
    release_slot ();
    let migrated =
      match admission with
      | Some (sh, Admitted { server = from_server; _ })
        when t.config.migrate ->
        try_migrate sh ~from_server ~reason (Option.get snap)
      | _ -> None
    in
    match migrated with
    | Some result -> result
    | None ->
    rollback t target (Option.get snap);
    let recovery_s = t.clock.Host.now -. t0 in
    t.ov.fallbacks <- t.ov.fallbacks + 1;
    t.ov.recovery_s <- t.ov.recovery_s +. recovery_s;
    emit t
      (Trace.Fallback_local
         { target = target.Partition.t_name; reason; recovery_s });
    let span_s = t.clock.Host.now -. t0 in
    t.server_exec_s <- t.server_exec_s +. span_s;
    Trace.Row.set_offload_end t.row ~target:target.Partition.t_name
      ~dirty_pages:0 ~span_s;
    emit_row t;
    (* Transparent local re-execution: the mobile partition retains
       every target body for the refuse path; replay it with the same
       arguments against the rolled-back state. *)
    let replay_t0 = t.clock.Host.now in
    let result = Interp.call t.mobile target.Partition.t_name args in
    Trace.Row.set_replay t.row ~target:target.Partition.t_name
      ~replay_s:(t.clock.Host.now -. replay_t0);
    emit_row_at t ~ts:replay_t0;
    result
  end

(* {1 Mobile-side externs} *)

let mobile_extern t name (argv : Value.t list) : Value.t option =
  let strip prefix =
    let plen = String.length prefix in
    String.sub name plen (String.length name - plen)
  in
  if String.length name > 17 && String.sub name 0 17 = "__should_offload$"
  then begin
    let target = strip "__should_offload$" in
    if t.server_dead then begin
      (* The server is gone; don't even consult the estimator. *)
      t.ov.refusals <- t.ov.refusals + 1;
      emit t (Trace.Refusal { target });
      Some (Value.of_bool false)
    end
    else begin
    (* "The dynamic performance estimation reflects the current
       network bandwidth, memory usage, and target execution time":
       the footprint estimate is the live UVA heap (what copy-on-
       demand and write-back would move), refined after each offload
       by the bytes actually moved. *)
    let live = Uva.live_bytes t.mobile.Host.uva in
    let mem_bytes =
      match Hashtbl.find_opt t.mem_estimate target with
      | Some observed -> max observed live
      | None -> live
    in
    (* Under a shared server the estimator prices the speedup and the
       link at the load an offload starting now would actually get, so
       a saturated server turns profitable offloads into refusals. *)
    let r_factor, bw_factor =
      match t.config.server_handle with
      | None -> (1.0, 1.0)
      | Some sh -> sh.sh_load ~now:t.clock.Host.now
    in
    let decision =
      Dynamic_estimate.should_offload ~r_factor ~bw_factor t.estimator
        ~name:target ~mem_bytes
    in
    if not (Trace.is_null t.config.trace) then begin
      Trace.Row.set_estimate t.row ~target
        ~predicted_gain_s:
          (Dynamic_estimate.predicted_gain_s ~r_factor ~bw_factor t.estimator
             ~name:target ~mem_bytes)
        ~local_s:(Dynamic_estimate.predicted_local_s t.estimator ~name:target)
        ~decision;
      emit_row t
    end;
    if not decision then begin
      t.ov.refusals <- t.ov.refusals + 1;
      emit t (Trace.Refusal { target })
    end;
    Some (Value.of_bool decision)
    end
  end
  else if String.length name > 10 && String.sub name 0 10 = "__offload$" then begin
    let target_name = strip "__offload$" in
    match target_by_name t target_name with
    | Some target -> Some (offload_invoke t target argv)
    | None -> raise (Offload_error ("unknown offload target " ^ target_name))
  end
  else if
    String.length name > 18 && String.sub name 0 18 = "__uva_init_global$"
  then begin
    let gname = strip "__uva_init_global$" in
    match
      List.find_opt
        (fun (g : Ir.global) -> String.equal g.Ir.g_name gname)
        t.uva_globals
    with
    | None -> raise (Offload_error ("unknown UVA global " ^ gname))
    | Some g ->
      let size = Layout.size_of t.unified_layout g.Ir.g_ty in
      let addr = Uva.alloc t.mobile.Host.uva size in
      Loader.write_init ~layout:t.unified_layout
        ~endianness:(unified_endianness t)
        ~write_byte:(Memory.write_byte t.mobile.Host.mem)
        ~fn_addr:(Fn_table.addr_of t.mobile.Host.fn_table)
        ~addr g.Ir.g_ty g.Ir.g_init;
      Hashtbl.replace t.uva_global_addr gname addr;
      Some (Value.VInt (Int64.of_int addr))
  end
  else None

let install_mobile_hooks t =
  t.mobile.Host.hooks.Host.extern_call <- Some (mobile_extern t)

(* {1 Running} *)

type report = {
  rep_result : Value.t;
  rep_console : string;
  rep_total_s : float;
  rep_energy_mj : float;
  rep_mobile_compute_s : float;
  rep_server_span_s : float;      (* wall time spent inside offloads *)
  rep_comm_s : float;
  rep_fnptr_s : float;
  rep_remote_io_s : float;
  rep_offloads : int;
  rep_refusals : int;
  rep_faults : int;
  rep_prefetched_pages : int;
  rep_fnptr_translations : int;
  rep_remote_io_ops : int;
  rep_bytes_to_server : int;
  rep_bytes_to_mobile : int;
  rep_wire_bytes_to_mobile : int; (* after compression *)
  rep_rpc_timeouts : int;
  rep_retries : int;
  rep_fallbacks : int;            (* offloads recovered by local replay *)
  rep_recovery_s : float;         (* wall time lost to failed attempts *)
  rep_queued : int;               (* offloads that waited for a slot *)
  rep_queue_wait_s : float;       (* total FIFO admission wait *)
  rep_rejects : int;              (* admissions refused (queue full) *)
  rep_checkpoints : int;          (* task images captured on Server_lost *)
  rep_migrations : int;           (* checkpoints shipped to a new member *)
  rep_migrations_done : int;      (* resumed attempts that completed *)
  rep_migrate_transfer_s : float; (* checkpoint image time on the wire *)
  rep_migrate_resume_s : float;   (* re-execution span on the new member *)
}

let run t : report =
  if t.finished then invalid_arg "Session.run: already finished";
  install_mobile_hooks t;
  install_server_hooks t;
  let result = Interp.run_main t.mobile in
  mark t Power_model.Computing;
  t.finished <- true;
  {
    rep_result = result;
    rep_console = Console.contents t.mobile.Host.console;
    rep_total_s = t.clock.Host.now;
    rep_energy_mj = Battery.energy_mj t.battery;
    rep_mobile_compute_s = t.clock.Host.now -. t.server_exec_s;
    rep_server_span_s = t.server_exec_s;
    rep_comm_s = t.ov.comm_s;
    rep_fnptr_s = t.ov.fnptr_s;
    rep_remote_io_s = t.ov.remote_io_s;
    rep_offloads = t.ov.offloads;
    rep_refusals = t.ov.refusals;
    rep_faults = t.ov.fault_count;
    rep_prefetched_pages = t.ov.prefetched_pages;
    rep_fnptr_translations = t.ov.fnptr_count;
    rep_remote_io_ops = t.ov.remote_io_count;
    rep_bytes_to_server = (Channel.stats t.to_server).Channel.raw_bytes;
    rep_bytes_to_mobile = (Channel.stats t.to_mobile).Channel.raw_bytes;
    rep_wire_bytes_to_mobile = (Channel.stats t.to_mobile).Channel.wire_bytes;
    rep_rpc_timeouts = t.ov.rpc_timeouts;
    rep_retries = t.ov.retries;
    rep_fallbacks = t.ov.fallbacks;
    rep_recovery_s = t.ov.recovery_s;
    rep_queued = t.ov.queued;
    rep_queue_wait_s = t.ov.queue_wait_s;
    rep_rejects = t.ov.rejects;
    rep_checkpoints = t.ov.checkpoints;
    rep_migrations = t.ov.migrations;
    rep_migrations_done = t.ov.migrations_done;
    rep_migrate_transfer_s = t.ov.migrate_transfer_s;
    rep_migrate_resume_s = t.ov.migrate_resume_s;
  }

let battery t = t.battery
let overheads t = t.ov
