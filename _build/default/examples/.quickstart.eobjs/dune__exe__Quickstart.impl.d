examples/quickstart.ml: Fmt List Native_offloader No_estimator No_ir No_runtime No_workloads String
