examples/chess_ai.ml: Fmt List Native_offloader No_analysis No_estimator No_ir No_profiler No_report No_runtime No_transform No_workloads String
