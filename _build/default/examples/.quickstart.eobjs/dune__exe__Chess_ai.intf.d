examples/chess_ai.mli:
