examples/battery_report.ml: Fmt List Native_offloader No_power No_runtime No_workloads Option String
