examples/adaptive_network.ml: Fmt List Native_offloader No_netsim No_report No_runtime No_workloads Option
