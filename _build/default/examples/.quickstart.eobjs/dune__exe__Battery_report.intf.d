examples/battery_report.mli:
