examples/quickstart.mli:
