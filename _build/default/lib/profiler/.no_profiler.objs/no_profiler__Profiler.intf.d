lib/profiler/profiler.mli: No_exec
