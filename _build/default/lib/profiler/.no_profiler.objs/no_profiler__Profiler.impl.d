lib/profiler/profiler.ml: Hashtbl List No_analysis No_exec No_ir No_mem Set String
