(* The hot function/loop profiler (paper Section 3.1).

   "The hot function/loop profiler measures execution time, invocation
   count, and memory usage of each function and loop in an application
   with a profiling input."

   The profiler attaches to a {!No_exec.Host} through its hooks:
   function enter/exit give inclusive times and invocation counts;
   block entries attributed to statically detected natural loops give
   loop times, invocations and iteration counts; a memory touch
   callback collects the unique pages each active task accesses —
   which is exactly the M of Equation 1 (what offloading would have to
   communicate). *)

module Ir = No_ir.Ir
module Host = No_exec.Host
module Memory = No_mem.Memory
module Region = No_mem.Region
module Loops = No_analysis.Loops
module String_set = Set.Make (String)

type kind = Func | Loop

type sample = {
  s_name : string;              (* function name or loop display name *)
  s_kind : kind;
  s_in_func : string;           (* enclosing function (self for Func) *)
  s_time : float;               (* inclusive seconds, summed *)
  s_invocations : int;
  s_iterations : int;           (* loops only *)
  s_mem_bytes : int;            (* max unique bytes touched per invocation *)
}

(* Mutable accumulator per profiled entity. *)
type acc = {
  a_name : string;
  a_kind : kind;
  a_in_func : string;
  mutable a_time : float;
  mutable a_invocations : int;
  mutable a_iterations : int;
  mutable a_mem_bytes : int;
}

type live_loop = {
  ll_loop : Loops.loop;
  ll_acc : acc;
  ll_start : float;
  ll_pages : (int, unit) Hashtbl.t;
}

type frame = {
  fr_func : string;
  fr_start : float;
  fr_outermost : bool;          (* recursion: only outermost is timed *)
  fr_pages : (int, unit) Hashtbl.t;
  mutable fr_loops : live_loop list;  (* innermost first *)
}

type t = {
  host : Host.t;
  loops : Loops.loop list;
  accs : (string, acc) Hashtbl.t;       (* key: kind-qualified name *)
  mutable stack : frame list;
  saved_hooks : Host.hooks;
}

let key kind name =
  match kind with Func -> "f:" ^ name | Loop -> "l:" ^ name

let get_acc t kind name in_func =
  let k = key kind name in
  match Hashtbl.find_opt t.accs k with
  | Some acc -> acc
  | None ->
    let acc =
      { a_name = name; a_kind = kind; a_in_func = in_func; a_time = 0.0;
        a_invocations = 0; a_iterations = 0; a_mem_bytes = 0 }
    in
    Hashtbl.replace t.accs k acc;
    acc

let now t = t.host.Host.clock.Host.now

let close_loop t (ll : live_loop) =
  ll.ll_acc.a_time <- ll.ll_acc.a_time +. (now t -. ll.ll_start);
  ll.ll_acc.a_mem_bytes <-
    max ll.ll_acc.a_mem_bytes (Hashtbl.length ll.ll_pages * Region.page_size)

let on_enter t fname =
  let outermost =
    not (List.exists (fun fr -> String.equal fr.fr_func fname) t.stack)
  in
  let acc = get_acc t Func fname fname in
  acc.a_invocations <- acc.a_invocations + 1;
  t.stack <-
    { fr_func = fname; fr_start = now t; fr_outermost = outermost;
      fr_pages = Hashtbl.create 64; fr_loops = [] }
    :: t.stack

let on_exit t fname =
  match t.stack with
  | fr :: rest when String.equal fr.fr_func fname ->
    List.iter (close_loop t) fr.fr_loops;
    let acc = get_acc t Func fname fname in
    if fr.fr_outermost then begin
      acc.a_time <- acc.a_time +. (now t -. fr.fr_start);
      acc.a_mem_bytes <-
        max acc.a_mem_bytes (Hashtbl.length fr.fr_pages * Region.page_size)
    end;
    t.stack <- rest
  | _ ->
    (* Unbalanced exit: drop silently (a trap unwound the stack). *)
    ()

let on_block t fname label =
  match t.stack with
  | fr :: _ when String.equal fr.fr_func fname -> (
    (* Close loops whose body does not contain this block. *)
    let rec close_stale loops =
      match loops with
      | ll :: rest
        when not (Loops.String_set.mem label ll.ll_loop.Loops.l_blocks) ->
        close_loop t ll;
        close_stale rest
      | _ -> loops
    in
    fr.fr_loops <- close_stale fr.fr_loops;
    (* Entering a loop header: either a new invocation or an iteration. *)
    match
      List.find_opt
        (fun (l : Loops.loop) ->
          String.equal l.Loops.l_func fname
          && String.equal l.Loops.l_header label)
        t.loops
    with
    | None -> ()
    | Some loop -> (
      match fr.fr_loops with
      | ll :: _ when String.equal ll.ll_loop.Loops.l_header label ->
        ll.ll_acc.a_iterations <- ll.ll_acc.a_iterations + 1
      | _ ->
        let acc = get_acc t Loop loop.Loops.l_name fname in
        acc.a_invocations <- acc.a_invocations + 1;
        acc.a_iterations <- acc.a_iterations + 1;
        fr.fr_loops <-
          { ll_loop = loop; ll_acc = acc; ll_start = now t;
            ll_pages = Hashtbl.create 64 }
          :: fr.fr_loops))
  | _ -> ()

let on_touch t page =
  List.iter
    (fun fr ->
      Hashtbl.replace fr.fr_pages page ();
      List.iter (fun ll -> Hashtbl.replace ll.ll_pages page ()) fr.fr_loops)
    t.stack

(* Attach a profiler to [host]; returns the handle to read results
   from after the profiled run. *)
let attach (host : Host.t) : t =
  let loops = Loops.loops_of_module host.Host.modul in
  let t =
    { host; loops; accs = Hashtbl.create 64; stack = [];
      saved_hooks = host.Host.hooks }
  in
  host.Host.hooks.Host.on_enter <- on_enter t;
  host.Host.hooks.Host.on_exit <- on_exit t;
  host.Host.hooks.Host.on_block <- on_block t;
  Memory.set_touch_callback host.Host.mem (Some (on_touch t));
  t

let detach t =
  t.host.Host.hooks.Host.on_enter <- (fun _ -> ());
  t.host.Host.hooks.Host.on_exit <- (fun _ -> ());
  t.host.Host.hooks.Host.on_block <- (fun _ _ -> ());
  Memory.set_touch_callback t.host.Host.mem None

let results t : sample list =
  Hashtbl.fold
    (fun _ acc samples ->
      {
        s_name = acc.a_name;
        s_kind = acc.a_kind;
        s_in_func = acc.a_in_func;
        s_time = acc.a_time;
        s_invocations = acc.a_invocations;
        s_iterations = acc.a_iterations;
        s_mem_bytes = acc.a_mem_bytes;
      }
      :: samples)
    t.accs []
  |> List.sort (fun a b -> compare b.s_time a.s_time)

let find_sample samples ~kind ~name =
  List.find_opt
    (fun s -> s.s_kind = kind && String.equal s.s_name name)
    samples
