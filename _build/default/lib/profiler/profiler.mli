(** The hot function/loop profiler (paper §3.1).

    "The hot function/loop profiler measures execution time,
    invocation count, and memory usage of each function and loop in an
    application with a profiling input."

    Attaches to a {!No_exec.Host} through its hooks: enter/exit give
    inclusive times and invocation counts; block entries attributed to
    statically detected natural loops give loop times, invocations and
    iterations; the memory-touch callback collects the unique pages
    each active task accesses — the M of Equation 1. *)

type kind = Func | Loop

type sample = {
  s_name : string;        (** function name or loop display name *)
  s_kind : kind;
  s_in_func : string;     (** enclosing function (itself for [Func]) *)
  s_time : float;         (** inclusive seconds, summed over invocations *)
  s_invocations : int;
  s_iterations : int;     (** loops only *)
  s_mem_bytes : int;      (** max unique bytes touched per invocation *)
}

type t

val attach : No_exec.Host.t -> t
(** Install the profiling hooks on [host]; profile whatever runs next. *)

val detach : t -> unit
(** Remove the hooks. *)

val results : t -> sample list
(** Samples sorted by decreasing time. *)

val find_sample : sample list -> kind:kind -> name:string -> sample option
