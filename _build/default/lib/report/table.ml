(* Plain-text table rendering for the benches and the CLI.

   Columns size themselves to their widest cell; numbers are
   right-aligned, text left-aligned. *)

type align = Left | Right

type t = {
  title : string;
  header : string list;
  mutable rows : string list list;   (* reversed *)
  aligns : align list option;
}

let create ?aligns ~title header = { title; header; rows = []; aligns }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let add_rows t rows = List.iter (add_row t) rows

let cell_f ?(digits = 2) v = Printf.sprintf "%.*f" digits v
let cell_i v = string_of_int v
let cell_pct v = Printf.sprintf "%.1f%%" v

let render t : string =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let aligns =
    match t.aligns with
    | Some aligns when List.length aligns = ncols -> Array.of_list aligns
    | Some _ | None ->
      Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let pad i cell =
    let w = widths.(i) in
    let n = w - String.length cell in
    match aligns.(i) with
    | Left -> cell ^ String.make n ' '
    | Right -> String.make n ' ' ^ cell
  in
  let line row =
    "| " ^ String.concat " | " (List.mapi pad row) ^ " |"
  in
  let rule =
    "+"
    ^ String.concat "+"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (t.title ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  Buffer.add_string buf (line t.header ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (line row ^ "\n")) rows;
  Buffer.add_string buf rule;
  Buffer.contents buf

let print t = print_endline (render t)

(* A labelled data series rendered as rows — used for "figures"
   (we print series instead of drawing plots). *)
let series ~title ~(columns : string list)
    (points : (string * float list) list) : string =
  let t = create ~title ("point" :: columns) in
  List.iter
    (fun (label, values) ->
      add_row t (label :: List.map (cell_f ~digits:3) values))
    points;
  render t
