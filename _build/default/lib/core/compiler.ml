(* The compile-time half of Native Offloader, end to end:

     profile (hot function/loop profiler on a profiling input)
       -> machine-specific filter
       -> static performance estimation + target selection (Eq. 1)
       -> memory unification + partition + server optimizations

   This is Figure 1's compiler box.  The paper "uses different inputs
   for profiling and evaluation"; callers provide the profiling script
   and an [eval_scale] hinting how much heavier the evaluation input
   is per invocation, which seeds the runtime's dynamic estimator. *)

module Ir = No_ir.Ir
module Arch = No_arch.Arch
module Layout = No_arch.Layout
module Validate = No_ir.Validate
module Host = No_exec.Host
module Interp = No_exec.Interp
module Console = No_exec.Console
module Fs = No_exec.Fs
module Profiler = No_profiler.Profiler
module Filter = No_analysis.Filter
module Static_estimate = No_estimator.Static_estimate
module Pipeline = No_transform.Pipeline
module Session = No_runtime.Session

type compiled = {
  c_original : Ir.modul;
  c_output : Pipeline.output;
  c_samples : Profiler.sample list;
  c_verdicts : Filter.t;
  c_selection : Static_estimate.result;
  c_seeds : Session.target_seed list;
  c_ratio : float;
}

exception No_profitable_target of string

(* Run the unmodified module on a simulated mobile device under the
   profiler. *)
let profile ?(arch = Arch.arm32) ~script ~files (m : Ir.modul) :
    Profiler.sample list =
  let structs name = Ir.find_struct_exn m name in
  let layout = Layout.env_of_arch arch ~structs in
  let console = Console.create ~script () in
  let fs = Fs.create () in
  List.iter (fun (name, data) -> Fs.add_file fs name data) files;
  let host =
    Host.create ~arch ~role:Host.Mobile ~modul:m ~layout ~console ~fs ()
  in
  let profiler = Profiler.attach host in
  ignore (Interp.run_main host);
  Profiler.detach profiler;
  Profiler.results profiler

(* Default compile-time estimation bandwidth: the *favorable* network
   (802.11ac effective rate).  Targets that only pay off on a fast
   network must still be partitioned -- the runtime's dynamic
   estimator refuses them when the actual network is slow (the
   paper's 164.gzip behaviour).  Table 3's worked example uses the
   paper's 80 Mbps figure explicitly. *)
let default_selection_bw =
  No_netsim.Link.effective_bps No_netsim.Link.fast_wifi

let compile ?(mobile = Arch.arm32) ?(server = Arch.x86_64)
    ?(selection_bw_bps = default_selection_bw) ?(eval_scale = 1.0)
    ~profile_script
    ?(profile_files = []) (m : Ir.modul) : compiled =
  Validate.check_module m;
  let samples = profile ~arch:mobile ~script:profile_script
      ~files:profile_files m in
  let verdicts = Filter.analyze m in
  let ratio = Arch.performance_ratio ~mobile ~server in
  let selection =
    Static_estimate.run m ~r:ratio ~bw_bps:selection_bw_bps verdicts samples
  in
  if selection.Static_estimate.targets = [] then
    raise (No_profitable_target m.Ir.m_name);
  let output =
    Pipeline.run ~mobile ~server ~targets:selection.Static_estimate.targets m
  in
  let seeds =
    List.filter_map
      (fun name ->
        match Profiler.find_sample samples ~kind:Profiler.Func ~name with
        | Some s ->
          let per_invocation =
            s.Profiler.s_time /. float_of_int (max 1 s.Profiler.s_invocations)
          in
          Some
            {
              Session.seed_name = name;
              Session.seed_time_s = per_invocation *. eval_scale;
              Session.seed_mem_bytes = s.Profiler.s_mem_bytes;
            }
        | None -> None)
      selection.Static_estimate.targets
  in
  {
    c_original = m;
    c_output = output;
    c_samples = samples;
    c_verdicts = verdicts;
    c_selection = selection;
    c_seeds = seeds;
    c_ratio = ratio;
  }
