lib/core/evaluation.ml: Compiler Experiment Float Lazy List No_arch No_corpus No_estimator No_exec No_ir No_netsim No_power No_profiler No_report No_runtime No_transform No_workloads Printf
