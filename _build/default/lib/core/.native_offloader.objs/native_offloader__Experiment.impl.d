lib/core/experiment.ml: Compiler Float List No_ir No_netsim No_power No_runtime No_workloads
