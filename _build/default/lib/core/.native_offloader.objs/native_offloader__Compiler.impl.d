lib/core/compiler.ml: List No_analysis No_arch No_estimator No_exec No_ir No_netsim No_profiler No_runtime No_transform
