(* Baseline: run a module entirely on the mobile device.

   Figure 6 normalizes every configuration against this run — the
   untransformed program executing locally, the device drawing
   computing-level power throughout. *)

module Ir = No_ir.Ir
module Arch = No_arch.Arch
module Layout = No_arch.Layout
module Power_model = No_power.Power_model
module Battery = No_power.Battery
module Host = No_exec.Host
module Interp = No_exec.Interp
module Value = No_exec.Value
module Console = No_exec.Console
module Fs = No_exec.Fs

type report = {
  lr_result : Value.t;
  lr_console : string;
  lr_total_s : float;
  lr_energy_mj : float;
  lr_instrs : int;
}

let run ?(arch = Arch.arm32) ?(script = []) ?(files = [])
    ?(fast_radio = true) (m : Ir.modul) : report =
  let structs name = Ir.find_struct_exn m name in
  let layout = Layout.env_of_arch arch ~structs in
  let console = Console.create ~script () in
  let fs = Fs.create () in
  List.iter (fun (name, data) -> Fs.add_file fs name data) files;
  let host =
    Host.create ~arch ~role:Host.Mobile ~modul:m ~layout ~console ~fs ()
  in
  let battery = Battery.create (Power_model.galaxy_s5 ~fast_radio) in
  let result = Interp.run_main host in
  Battery.spend battery ~from_s:0.0 ~to_s:host.Host.clock.Host.now
    Power_model.Computing;
  {
    lr_result = result;
    lr_console = Console.contents console;
    lr_total_s = host.Host.clock.Host.now;
    lr_energy_mj = Battery.energy_mj battery;
    lr_instrs = host.Host.instr_count;
  }
