lib/runtime/session.ml: Array Bytes Hashtbl Int64 List No_arch No_estimator No_exec No_ir No_mem No_netsim No_power No_transform Option String
