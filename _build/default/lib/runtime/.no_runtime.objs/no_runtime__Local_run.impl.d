lib/runtime/local_run.ml: List No_arch No_exec No_ir No_power
