lib/netsim/channel.mli: Bytes Link
