lib/netsim/compress.ml: Array Buffer Bytes Char Printf
