lib/netsim/channel.ml: Buffer Bytes Compress Link
