lib/netsim/link.ml: Fmt List String
