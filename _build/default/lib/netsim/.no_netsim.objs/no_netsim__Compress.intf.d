lib/netsim/compress.mli: Bytes
