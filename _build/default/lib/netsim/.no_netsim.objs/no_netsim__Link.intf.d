lib/netsim/link.mli: Format
