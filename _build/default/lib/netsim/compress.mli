(** LZ77 byte compressor used for server-to-mobile write-back.

    The paper's runtime compresses only in that direction because
    compression costs much more than decompression (§4).  This is a
    real compressor over real page bytes: token stream of literal runs
    and (distance, length) matches, LEB128-coded, 64 KiB window. *)

exception Corrupt of string

val compress : Bytes.t -> Bytes.t

val decompress : Bytes.t -> Bytes.t
(** Inverse of {!compress}. @raise Corrupt on malformed input. *)

val ratio : Bytes.t -> float
(** Compressed/original size; 1.0 means incompressible. *)
