(* 482.sphinx3 — speech recognition (SPEC CPU2006).

   Table 4 row: 13.1k LoC, 375.2 s, target main_for.cond, coverage
   98.39 %, 1 invocation, 34.0 MB communication.  Section 5.2 lists
   sphinx3 among the programs that "consume relatively more battery
   than the ideal execution" because of remote I/O: acoustic frames
   stream in from a file during decoding.

   Kernel: GMM scoring — for every frame read from the feature file,
   evaluate every Gaussian density (diagonal covariance) and
   accumulate the best. *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module W = Support

let name = "482.sphinx3"
let description = "Speech recognition"
let target = "main_for.cond"

let feat_file = "sphinx.feats"
let dim = 32                     (* feature dimensionality *)

let build () =
  let t = B.create name in
  B.global t "means" W.f64p Ir.Zero_init;
  B.global t "variances" W.f64p Ir.Zero_init;
  B.global t "frame_buf" W.f64p Ir.Zero_init;
  let path = B.cstr t feat_file in

  (* Score one frame against one density. *)
  let _ =
    B.func t "gmm_score" ~params:[ W.f64p; Ty.I64 ] ~ret:Ty.F64
      (fun fb args ->
        let frame = List.nth args 0 and density = List.nth args 1 in
        let means = B.load fb W.f64p (Ir.Global "means") in
        let variances = B.load fb W.f64p (Ir.Global "variances") in
        let base = B.imul fb density (B.i64 dim) in
        let acc = B.alloca fb Ty.F64 1 in
        B.store fb Ty.F64 (B.f64 0.0) acc;
        B.for_ fb ~name:"gmm_dim" ~from:(B.i64 0) ~below:(B.i64 dim)
          (fun k ->
            let x = B.load fb Ty.F64 (B.gep fb Ty.F64 frame [ Ir.Index k ]) in
            let idx = B.iadd fb base k in
            let mu = B.load fb Ty.F64 (B.gep fb Ty.F64 means [ Ir.Index idx ]) in
            let var =
              B.load fb Ty.F64 (B.gep fb Ty.F64 variances [ Ir.Index idx ])
            in
            let d = B.fsub fb x mu in
            let term = B.fdiv fb (B.fmul fb d d) (B.fadd fb var (B.f64 0.01)) in
            let cur = B.load fb Ty.F64 acc in
            B.store fb Ty.F64 (B.fadd fb cur term) acc);
        B.ret fb (Some (B.fsub fb (B.f64 0.0) (B.load fb Ty.F64 acc))))
  in

  (* main_for.cond(frames, densities) -> total log-likelihood *)
  let _ =
    B.func t "main_for.cond" ~params:[ Ty.I64; Ty.I64 ] ~ret:Ty.F64
      (fun fb args ->
        let frames = List.nth args 0 and densities = List.nth args 1 in
        let frame = B.load fb W.f64p (Ir.Global "frame_buf") in
        let fd = B.call fb "f_open" [ path ] in
        let total = B.alloca fb Ty.F64 1 in
        B.store fb Ty.F64 (B.f64 0.0) total;
        B.for_ fb ~name:"decode_frames" ~from:(B.i64 0) ~below:frames
          (fun _f ->
            (* stream the next frame from the feature file *)
            let frame_i8 =
              B.cast fb Ir.Bitcast ~src:W.f64p frame ~dst:W.i8p
            in
            B.effect fb (Ir.Call ("f_read", [ fd; frame_i8; B.i64 (dim * 8) ]));
            let best = B.alloca fb Ty.F64 1 in
            B.store fb Ty.F64 (B.f64 (-1e30)) best;
            B.for_ fb ~name:"decode_densities" ~from:(B.i64 0)
              ~below:densities (fun d ->
                let s = B.call fb "gmm_score" [ frame; d ] in
                let b = B.load fb Ty.F64 best in
                let better = B.cmp fb Ir.Fgt s b in
                B.if_ fb better ~then_:(fun () -> B.store fb Ty.F64 s best) ());
            let cur = B.load fb Ty.F64 total in
            B.store fb Ty.F64 (B.fadd fb cur (B.load fb Ty.F64 best)) total);
        B.call_void fb "f_close" [ fd ];
        B.ret fb (Some (B.load fb Ty.F64 total)))
  in

  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let frames, densities = W.scan2 fb in
        let model_count = B.imul fb densities (B.i64 dim) in
        let means = W.malloc_f64 fb model_count in
        let variances = W.malloc_f64 fb model_count in
        let frame = W.malloc_f64 fb (B.i64 dim) in
        B.store fb W.f64p means (Ir.Global "means");
        B.store fb W.f64p variances (Ir.Global "variances");
        B.store fb W.f64p frame (Ir.Global "frame_buf");
        W.fill_f64 fb ~name:"init_means" means ~count:model_count ~scale:2e-3;
        W.fill_f64 fb ~name:"init_vars" variances ~count:model_count
          ~scale:1e-3;
        let ll = B.call fb "main_for.cond" [ frames; densities ] in
        W.print_result_f64 t fb ~label:"log_likelihood" ll;
        B.ret fb (Some (B.i64 0)))
  in
  B.finish t

(* Parameters: frames, densities. *)
let profile_script = W.script_of_ints [ 8; 24 ]
let eval_script = W.script_of_ints [ 48; 64 ]
let eval_scale = 16.0

let files =
  [ (feat_file, W.synthetic_file ~seed:482 ~bytes:(64 * dim * 8)) ]
