(* 401.bzip2 — compression (SPEC CPU2006).

   Table 4 row: 5.7k LoC, 27.0 s, target spec_compress, coverage
   98.79 %, 1 invocation, 134.3 MB communication.  Like 164.gzip, a
   streaming kernel whose communication-to-compute ratio makes the
   slow network unprofitable.

   Kernel: a block transform (neighbour mixing, a move-to-front-style
   remap through a small table) followed by run-length packing —
   more passes per word than gzip, on a somewhat smaller block. *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module W = Support

let name = "401.bzip2"
let description = "Compression"
let target = "spec_compress"

let build () =
  let t = B.create name in
  W.add_checksum t;
  B.global t "block" W.i64p Ir.Zero_init;
  B.global t "scratch" W.i64p Ir.Zero_init;

  (* Pass 1: forward transform mixing each word with its predecessor. *)
  let _ =
    B.func t "block_transform" ~params:[ W.i64p; W.i64p; Ty.I64 ] ~ret:Ty.Void
      (fun fb args ->
        let src = List.nth args 0
        and dst = List.nth args 1
        and nwords = List.nth args 2 in
        let prev = B.alloca fb Ty.I64 1 in
        B.store fb Ty.I64 (B.i64 0) prev;
        B.for_ fb ~name:"bwt_pass" ~from:(B.i64 0) ~below:nwords (fun i ->
            let v = B.load fb Ty.I64 (B.gep fb Ty.I64 src [ Ir.Index i ]) in
            let p = B.load fb Ty.I64 prev in
            let mixed = B.ixor fb v (B.ilshr fb p (B.i64 3)) in
            B.store fb Ty.I64 mixed (B.gep fb Ty.I64 dst [ Ir.Index i ]);
            B.store fb Ty.I64 v prev);
        B.ret_void fb)
  in

  (* Pass 2: move-to-front-style remap through a 16-entry table kept
     on the stack, then run-length pack in place; returns words out. *)
  let _ =
    B.func t "mtf_rle" ~params:[ W.i64p; W.i64p; Ty.I64 ] ~ret:Ty.I64
      (fun fb args ->
        let src = List.nth args 0
        and dst = List.nth args 1
        and nwords = List.nth args 2 in
        let table = B.alloca fb Ty.I64 16 in
        B.for_ fb ~name:"mtf_init" ~from:(B.i64 0) ~below:(B.i64 16) (fun i ->
            B.store fb Ty.I64 (B.imul fb i (B.i64' 0x0101010101010101L))
              (B.gep fb Ty.I64 table [ Ir.Index i ]));
        let out = B.alloca fb Ty.I64 1 in
        B.store fb Ty.I64 (B.i64 0) out;
        B.for_ fb ~name:"mtf_pass" ~from:(B.i64 0) ~below:nwords (fun i ->
            let v = B.load fb Ty.I64 (B.gep fb Ty.I64 src [ Ir.Index i ]) in
            let idx = B.iand fb v (B.i64 15) in
            let sub = B.load fb Ty.I64 (B.gep fb Ty.I64 table [ Ir.Index idx ]) in
            let coded = B.ixor fb v sub in
            B.store fb Ty.I64 (B.ixor fb sub coded)
              (B.gep fb Ty.I64 table [ Ir.Index idx ]);
            (* pack: skip zero words, copy the rest *)
            let nz = B.cmp fb Ir.Ne coded (B.i64 0) in
            B.if_ fb nz
              ~then_:(fun () ->
                let o = B.load fb Ty.I64 out in
                B.store fb Ty.I64 coded (B.gep fb Ty.I64 dst [ Ir.Index o ]);
                B.store fb Ty.I64 (B.iadd fb o (B.i64 1)) out)
              ());
        B.ret fb (Some (B.load fb Ty.I64 out)))
  in

  let _ =
    B.func t "spec_compress" ~params:[ W.i64p; W.i64p; Ty.I64 ] ~ret:Ty.I64
      (fun fb args ->
        let block = List.nth args 0
        and scratch = List.nth args 1
        and nwords = List.nth args 2 in
        B.call_void fb "block_transform" [ block; scratch; nwords ];
        let out = B.call fb "mtf_rle" [ scratch; block; nwords ] in
        B.ret fb (Some (B.imul fb out (B.i64 8))))
  in

  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let nwords, run_shift = W.scan2 fb in
        let bytes = B.imul fb nwords (B.i64 8) in
        let block = W.malloc_words fb bytes in
        let scratch = W.malloc_words fb bytes in
        B.store fb W.i64p block (Ir.Global "block");
        B.store fb W.i64p scratch (Ir.Global "scratch");
        W.fill_runs fb ~name:"fill_block" block ~words:nwords ~run_shift
          ~seed:(B.i64 11);
        let out_bytes = B.call fb "spec_compress" [ block; scratch; nwords ] in
        W.print_result t fb ~label:"compressed_bytes" out_bytes;
        let ck = B.call fb "checksum" [ block; out_bytes ] in
        W.print_result t fb ~label:"checksum" ck;
        B.ret fb (Some (B.i64 0)))
  in
  B.finish t

let profile_script = W.script_of_ints [ 4_000; 3 ]
let eval_script = W.script_of_ints [ 36_000; 3 ]
let eval_scale = 9.0
let files = []
