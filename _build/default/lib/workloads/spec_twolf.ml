(* 300.twolf — standard-cell placement and routing (SPEC CPU2000).

   Table 4 row: 17.8k LoC, 157.8 s, target utemp, coverage 99.84 %,
   1 invocation, 3.3 MB communication.  Its Figure 7 trait: "During
   the offloading execution, 300.twolf reads a file about cell
   information to optimally place cells" — remote *input* operations
   with expensive round trips, giving a high remote-I/O share and
   extra battery draw (Section 5.2).

   Kernel: read the cell netlist from a file in chunks inside the hot
   region, then iterative pairwise placement refinement. *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module W = Support

let name = "300.twolf"
let description = "Standard-cell place and route"
let target = "utemp"

let cell_file = "twolf.cells"
let chunk = 1024

let build () =
  let t = B.create name in
  W.add_xrand t;
  B.global t "cells" W.i64p Ir.Zero_init;
  let path = B.cstr t cell_file in

  (* utemp(ncells, passes) -> wirelength *)
  let _ =
    B.func t "utemp" ~params:[ Ty.I64; Ty.I64 ] ~ret:Ty.I64 (fun fb args ->
        let ncells = List.nth args 0 and passes = List.nth args 1 in
        let cells = B.load fb W.i64p (Ir.Global "cells") in
        (* read the cell file into the array, chunk by chunk: this is
           the remote-input behaviour of the paper *)
        let fd = B.call fb "f_open" [ path ] in
        let total = B.call fb "f_size" [ fd ] in
        let offset = B.alloca fb Ty.I64 1 in
        B.store fb Ty.I64 (B.i64 0) offset;
        let cells_i8 =
          B.cast fb Ir.Bitcast ~src:W.i64p cells ~dst:W.i8p
        in
        B.while_ fb ~name:"read_cells"
          ~cond:(fun () ->
            let off = B.load fb Ty.I64 offset in
            B.cmp fb Ir.Slt off total)
          ~body:(fun () ->
            let off = B.load fb Ty.I64 offset in
            let dst = B.gep fb Ty.I8 cells_i8 [ Ir.Index off ] in
            let got = B.call fb "f_read" [ fd; dst; B.i64 chunk ] in
            let stop = B.cmp fb Ir.Sle got (B.i64 0) in
            B.if_ fb stop
              ~then_:(fun () -> B.store fb Ty.I64 total offset)
              ~else_:(fun () ->
                B.store fb Ty.I64 (B.iadd fb off got) offset)
              ())
          ();
        B.call_void fb "f_close" [ fd ];
        (* refinement passes over the netlist *)
        let wirelen = B.alloca fb Ty.I64 1 in
        B.store fb Ty.I64 (B.i64 0) wirelen;
        B.for_ fb ~name:"utemp_pass" ~from:(B.i64 0) ~below:passes (fun _p ->
            B.store fb Ty.I64 (B.i64 0) wirelen;
            B.for_ fb ~name:"utemp_cells" ~from:(B.i64 0)
              ~below:(B.isub fb ncells (B.i64 1)) (fun i ->
                let a = B.load fb Ty.I64 (B.gep fb Ty.I64 cells [ Ir.Index i ]) in
                let next = B.iadd fb i (B.i64 1) in
                let slot_b = B.gep fb Ty.I64 cells [ Ir.Index next ] in
                let b = B.load fb Ty.I64 slot_b in
                let am = B.iand fb a (B.i64 0xFFFF) in
                let bm = B.iand fb b (B.i64 0xFFFF) in
                let diff = B.isub fb am bm in
                let neg = B.cmp fb Ir.Slt diff (B.i64 0) in
                let mag = B.select fb neg (B.isub fb (B.i64 0) diff) diff in
                (* swap-sort step to reduce wirelength *)
                let out_of_order = B.cmp fb Ir.Sgt am bm in
                B.if_ fb out_of_order
                  ~then_:(fun () ->
                    B.store fb Ty.I64 a slot_b;
                    B.store fb Ty.I64 b
                      (B.gep fb Ty.I64 cells [ Ir.Index i ]))
                  ();
                let cur = B.load fb Ty.I64 wirelen in
                B.store fb Ty.I64 (B.iadd fb cur mag) wirelen));
        B.ret fb (Some (B.load fb Ty.I64 wirelen)))
  in

  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let ncells, passes = W.scan2 fb in
        let cells = W.malloc_words fb (B.imul fb ncells (B.i64 8)) in
        B.store fb W.i64p cells (Ir.Global "cells");
        let wirelen = B.call fb "utemp" [ ncells; passes ] in
        W.print_result t fb ~label:"wirelength" wirelen;
        B.ret fb (Some (B.i64 0)))
  in
  B.finish t

(* Parameters: cells, refinement passes.  The cell file carries
   ncells*8 bytes. *)
let profile_script = W.script_of_ints [ 512; 6 ]
let eval_script = W.script_of_ints [ 2048; 40 ]
let eval_scale = 20.0

let files =
  [ (cell_file, W.synthetic_file ~seed:300 ~bytes:(2048 * 8)) ]
