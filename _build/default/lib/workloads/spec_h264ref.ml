(* 464.h264ref — video encoder (SPEC CPU2006).

   Table 4 row: 59.5k LoC, 78.2 s, target encode_sequence, coverage
   99.79 %, 1 invocation, 17.1 MB communication, 457 function-pointer
   uses.  Two Figure 7 traits: it "reads a video file to encode"
   (remote input) and it selects SAD (sum-of-absolute-differences)
   routines through function pointers per block, paying translation
   costs.

   Kernel: block motion estimation between two frames read from a
   file, with the SAD metric dispatched through a 4-entry table. *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module W = Support

let name = "464.h264ref"
let description = "H.264 video encoder"
let target = "encode_sequence"

let frame_file = "h264.frames"
let frame_dim = 64                       (* 64x64 pixels, one byte each *)
let block = 8

let sad_sig = Ty.signature [ Ty.I64; Ty.I64 ] Ty.I64
let sad_names = [ "sad_full"; "sad_half"; "sad_quarter"; "sad_skip" ]

let build () =
  let t = B.create name in
  B.global t "frame_ref" W.i8p Ir.Zero_init;
  B.global t "frame_cur" W.i8p Ir.Zero_init;
  B.global t "sad_table"
    (Ty.Array (Ty.Fn_ptr sad_sig, 4))
    (Ir.Array_init (List.map (fun n -> Ir.Fn_init n) sad_names));
  let path = B.cstr t frame_file in

  (* The SAD variants differ in sampling stride. *)
  List.iteri
    (fun i fname ->
      let stride = 1 lsl (i / 2) in
      let _ =
        B.func t fname ~params:[ Ty.I64; Ty.I64 ] ~ret:Ty.I64 (fun fb args ->
            let cur_off = List.nth args 0 and ref_off = List.nth args 1 in
            let cur = B.load fb W.i8p (Ir.Global "frame_cur") in
            let refp = B.load fb W.i8p (Ir.Global "frame_ref") in
            let acc = B.alloca fb Ty.I64 1 in
            B.store fb Ty.I64 (B.i64 0) acc;
            B.for_ fb ~name:(fname ^ "_rows") ~from:(B.i64 0)
              ~below:(B.i64 (block / stride)) (fun r ->
                B.for_ fb ~name:(fname ^ "_cols") ~from:(B.i64 0)
                  ~below:(B.i64 (block / stride)) (fun c ->
                    let pix base offset =
                      let idx =
                        B.iadd fb offset
                          (B.iadd fb
                             (B.imul fb
                                (B.imul fb r (B.i64 stride))
                                (B.i64 frame_dim))
                             (B.imul fb c (B.i64 stride)))
                      in
                      let slot = B.gep fb Ty.I8 base [ Ir.Index idx ] in
                      let v = B.load fb Ty.I8 slot in
                      let v64 = B.cast fb Ir.Sext ~src:Ty.I8 v ~dst:Ty.I64 in
                      B.iand fb v64 (B.i64 255)
                    in
                    let a = pix cur cur_off in
                    let b = pix refp ref_off in
                    let d = B.isub fb a b in
                    let neg = B.cmp fb Ir.Slt d (B.i64 0) in
                    let mag = B.select fb neg (B.isub fb (B.i64 0) d) d in
                    let acc_v = B.load fb Ty.I64 acc in
                    B.store fb Ty.I64 (B.iadd fb acc_v mag) acc));
            B.ret fb (Some (B.load fb Ty.I64 acc)))
      in
      ())
    sad_names;

  (* encode_sequence(search) -> total distortion *)
  let _ =
    B.func t "encode_sequence" ~params:[ Ty.I64 ] ~ret:Ty.I64 (fun fb args ->
        let search = List.nth args 0 in
        let frame_bytes = frame_dim * frame_dim in
        (* read both frames remotely *)
        let fd = B.call fb "f_open" [ path ] in
        let cur = B.load fb W.i8p (Ir.Global "frame_cur") in
        let refp = B.load fb W.i8p (Ir.Global "frame_ref") in
        let read_frame dst =
          let offset = B.alloca fb Ty.I64 1 in
          B.store fb Ty.I64 (B.i64 0) offset;
          B.while_ fb ~name:(B.fresh_label fb "read_frame")
            ~cond:(fun () ->
              let off = B.load fb Ty.I64 offset in
              B.cmp fb Ir.Slt off (B.i64 frame_bytes))
            ~body:(fun () ->
              let off = B.load fb Ty.I64 offset in
              let p = B.gep fb Ty.I8 dst [ Ir.Index off ] in
              let got = B.call fb "f_read" [ fd; p; B.i64 1024 ] in
              let stop = B.cmp fb Ir.Sle got (B.i64 0) in
              B.if_ fb stop
                ~then_:(fun () ->
                  B.store fb Ty.I64 (B.i64 frame_bytes) offset)
                ~else_:(fun () ->
                  B.store fb Ty.I64 (B.iadd fb off got) offset)
                ())
            ()
        in
        read_frame refp;
        read_frame cur;
        B.call_void fb "f_close" [ fd ];
        (* motion estimation per block *)
        let blocks_per_row = frame_dim / block in
        let total = B.alloca fb Ty.I64 1 in
        B.store fb Ty.I64 (B.i64 0) total;
        B.for_ fb ~name:"enc_blocks" ~from:(B.i64 0)
          ~below:(B.i64 (blocks_per_row * blocks_per_row)) (fun bidx ->
            let br = B.idiv fb bidx (B.i64 blocks_per_row) in
            let bc = B.irem fb bidx (B.i64 blocks_per_row) in
            let cur_off =
              B.iadd fb
                (B.imul fb (B.imul fb br (B.i64 block)) (B.i64 frame_dim))
                (B.imul fb bc (B.i64 block))
            in
            let best = B.alloca fb Ty.I64 1 in
            B.store fb Ty.I64 (B.i64 0x7FFFFFFF) best;
            B.for_ fb ~name:"enc_search" ~from:(B.i64 0) ~below:search
              (fun s ->
                (* candidate displacement from the search index *)
                let dr = B.isub fb (B.irem fb s (B.i64 7)) (B.i64 3) in
                let dc = B.isub fb (B.idiv fb s (B.i64 7)) (B.i64 3) in
                let rr =
                  B.iadd fb (B.imul fb br (B.i64 block)) (B.iadd fb dr (B.i64 3))
                in
                let cc =
                  B.iadd fb (B.imul fb bc (B.i64 block)) (B.iadd fb dc (B.i64 3))
                in
                let ref_off =
                  B.iadd fb (B.imul fb rr (B.i64 frame_dim)) cc
                in
                (* choose the SAD variant per candidate *)
                let which = B.iand fb s (B.i64 3) in
                let table = Ty.Array (Ty.Fn_ptr sad_sig, 4) in
                let slot =
                  B.gep fb table (Ir.Global "sad_table") [ Ir.Index which ]
                in
                let sad = B.load fb (Ty.Fn_ptr sad_sig) slot in
                let d = B.call_ind fb sad_sig sad [ cur_off; ref_off ] in
                let b = B.load fb Ty.I64 best in
                let better = B.cmp fb Ir.Slt d b in
                B.if_ fb better ~then_:(fun () -> B.store fb Ty.I64 d best) ());
            let cur_total = B.load fb Ty.I64 total in
            B.store fb Ty.I64 (B.iadd fb cur_total (B.load fb Ty.I64 best))
              total);
        B.ret fb (Some (B.load fb Ty.I64 total)))
  in

  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let search, _unused = W.scan2 fb in
        let frame_bytes = B.i64 (frame_dim * frame_dim) in
        let alloc () =
          B.call fb "malloc" [ frame_bytes ]
        in
        let refp = alloc () and cur = alloc () in
        B.store fb W.i8p refp (Ir.Global "frame_ref");
        B.store fb W.i8p cur (Ir.Global "frame_cur");
        let distortion = B.call fb "encode_sequence" [ search ] in
        W.print_result t fb ~label:"distortion" distortion;
        B.ret fb (Some (B.i64 0)))
  in
  B.finish t

(* Parameters: search positions per block. *)
let profile_script = W.script_of_ints [ 6; 0 ]
let eval_script = W.script_of_ints [ 40; 0 ]
let eval_scale = 6.7

let files =
  [ (frame_file, W.synthetic_file ~seed:464 ~bytes:(2 * frame_dim * frame_dim)) ]
