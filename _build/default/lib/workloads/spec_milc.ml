(* 433.milc — lattice quantum chromodynamics (SPEC CPU2006).

   Table 4 row: 9.6k LoC, 365.8 s, target update, coverage 96.21 %,
   **2 invocations** ("The Native Offloader compiler [...] executes
   the same target multiple times if the target is invoked multiple
   times like AMMPmonitor, update and think"), 13.4 MB communication
   per invocation.

   Kernel: SU(3)-flavoured sweeps — per lattice site, a 3x3 complex
   matrix-matrix multiply against a neighbour's link matrix. *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module W = Support

let name = "433.milc"
let description = "Lattice quantum chromodynamics"
let target = "update"

(* Each site carries a 3x3 complex matrix: 18 doubles. *)
let site_doubles = 18

let build () =
  let t = B.create name in
  B.global t "lattice" W.f64p Ir.Zero_init;
  B.global t "staple" W.f64p Ir.Zero_init;

  (* Multiply site matrix by neighbour matrix, write back scaled. *)
  let _ =
    B.func t "su3_mult_site" ~params:[ W.f64p; W.f64p; Ty.I64; Ty.I64 ]
      ~ret:Ty.Void (fun fb args ->
        let lattice = List.nth args 0
        and staple = List.nth args 1
        and site = List.nth args 2
        and nbr = List.nth args 3 in
        let sbase = B.imul fb site (B.i64 site_doubles) in
        let nbase = B.imul fb nbr (B.i64 site_doubles) in
        (* 3x3 complex matmul: for i,j: sum_k a[i,k]*b[k,j] *)
        B.for_ fb ~name:"su3_i" ~from:(B.i64 0) ~below:(B.i64 3) (fun i ->
            B.for_ fb ~name:"su3_j" ~from:(B.i64 0) ~below:(B.i64 3) (fun j ->
                let re = B.alloca fb Ty.F64 1 in
                let im = B.alloca fb Ty.F64 1 in
                B.store fb Ty.F64 (B.f64 0.0) re;
                B.store fb Ty.F64 (B.f64 0.0) im;
                B.for_ fb ~name:"su3_k" ~from:(B.i64 0) ~below:(B.i64 3)
                  (fun k ->
                    let idx base row col =
                      B.iadd fb base
                        (B.iadd fb
                           (B.imul fb
                              (B.iadd fb (B.imul fb row (B.i64 3)) col)
                              (B.i64 2))
                           (B.i64 0))
                    in
                    let a_re_slot =
                      B.gep fb Ty.F64 lattice [ Ir.Index (idx sbase i k) ]
                    in
                    let a_im_slot =
                      B.gep fb Ty.F64 lattice
                        [ Ir.Index (B.iadd fb (idx sbase i k) (B.i64 1)) ]
                    in
                    let b_re_slot =
                      B.gep fb Ty.F64 lattice [ Ir.Index (idx nbase k j) ]
                    in
                    let b_im_slot =
                      B.gep fb Ty.F64 lattice
                        [ Ir.Index (B.iadd fb (idx nbase k j) (B.i64 1)) ]
                    in
                    let ar = B.load fb Ty.F64 a_re_slot in
                    let ai = B.load fb Ty.F64 a_im_slot in
                    let br = B.load fb Ty.F64 b_re_slot in
                    let bi = B.load fb Ty.F64 b_im_slot in
                    let prod_re =
                      B.fsub fb (B.fmul fb ar br) (B.fmul fb ai bi)
                    in
                    let prod_im =
                      B.fadd fb (B.fmul fb ar bi) (B.fmul fb ai br)
                    in
                    B.store fb Ty.F64
                      (B.fadd fb (B.load fb Ty.F64 re) prod_re) re;
                    B.store fb Ty.F64
                      (B.fadd fb (B.load fb Ty.F64 im) prod_im) im);
                let out =
                  B.iadd fb sbase
                    (B.imul fb (B.iadd fb (B.imul fb i (B.i64 3)) j) (B.i64 2))
                in
                let damp v = B.fmul fb v (B.f64 0.5) in
                B.store fb Ty.F64
                  (damp (B.load fb Ty.F64 re))
                  (B.gep fb Ty.F64 staple [ Ir.Index out ]);
                B.store fb Ty.F64
                  (damp (B.load fb Ty.F64 im))
                  (B.gep fb Ty.F64 staple
                     [ Ir.Index (B.iadd fb out (B.i64 1)) ])));
        B.ret_void fb)
  in

  (* update(sites, sweeps) -> plaquette estimate *)
  let _ =
    B.func t "update" ~params:[ Ty.I64; Ty.I64 ] ~ret:Ty.F64 (fun fb args ->
        let sites = List.nth args 0 and sweeps = List.nth args 1 in
        let lattice = B.load fb W.f64p (Ir.Global "lattice") in
        let staple = B.load fb W.f64p (Ir.Global "staple") in
        B.for_ fb ~name:"update_sweep" ~from:(B.i64 0) ~below:sweeps
          (fun s ->
            B.for_ fb ~name:"update_sites" ~from:(B.i64 0) ~below:sites
              (fun site ->
                let nbr =
                  B.irem fb (B.iadd fb site (B.iadd fb s (B.i64 1))) sites
                in
                B.call_void fb "su3_mult_site" [ lattice; staple; site; nbr ]);
            (* write staples back into the lattice *)
            let words = B.imul fb sites (B.i64 site_doubles) in
            B.for_ fb ~name:"update_copy" ~from:(B.i64 0) ~below:words
              (fun w ->
                let v = B.load fb Ty.F64 (B.gep fb Ty.F64 staple [ Ir.Index w ]) in
                let cur = B.load fb Ty.F64 (B.gep fb Ty.F64 lattice [ Ir.Index w ]) in
                B.store fb Ty.F64
                  (B.fadd fb (B.fmul fb cur (B.f64 0.5)) v)
                  (B.gep fb Ty.F64 lattice [ Ir.Index w ])));
        let words = B.imul fb sites (B.i64 site_doubles) in
        let plaq = W.sum_f64 fb ~name:"plaquette" lattice ~count:words in
        B.ret fb (Some plaq))
  in

  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let sites, sweeps = W.scan2 fb in
        let words = B.imul fb sites (B.i64 site_doubles) in
        let lattice = W.malloc_f64 fb words in
        let staple = W.malloc_f64 fb words in
        B.store fb W.f64p lattice (Ir.Global "lattice");
        B.store fb W.f64p staple (Ir.Global "staple");
        W.fill_f64 fb ~name:"init_lattice" lattice ~count:words ~scale:1e-4;
        (* Two invocations of the offloading target, as in the paper. *)
        let p1 = B.call fb "update" [ sites; sweeps ] in
        W.print_result_f64 t fb ~label:"plaquette1" p1;
        let p2 = B.call fb "update" [ sites; sweeps ] in
        W.print_result_f64 t fb ~label:"plaquette2" p2;
        B.ret fb (Some (B.i64 0)))
  in
  B.finish t

(* Parameters: lattice sites, sweeps per invocation. *)
let profile_script = W.script_of_ints [ 32; 2 ]
let eval_script = W.script_of_ints [ 256; 3 ]
let eval_scale = 12.0
let files = []
