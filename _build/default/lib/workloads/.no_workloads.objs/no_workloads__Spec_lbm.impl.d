lib/workloads/spec_lbm.ml: List No_ir Support
