lib/workloads/spec_vpr.ml: List No_ir Support
