lib/workloads/spec_twolf.ml: List No_ir Support
