lib/workloads/spec_sphinx3.ml: List No_ir Support
