lib/workloads/spec_gzip.ml: Int64 List No_ir Support
