lib/workloads/spec_milc.ml: List No_ir Support
