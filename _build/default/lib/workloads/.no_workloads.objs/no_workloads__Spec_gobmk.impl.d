lib/workloads/spec_gobmk.ml: List No_ir Support
