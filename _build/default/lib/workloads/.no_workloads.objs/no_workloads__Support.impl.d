lib/workloads/support.ml: Bytes Char Int64 List No_exec No_ir
