lib/workloads/spec_bzip2.ml: List No_ir Support
