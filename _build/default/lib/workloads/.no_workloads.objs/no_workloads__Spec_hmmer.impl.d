lib/workloads/spec_hmmer.ml: List No_ir Support
