lib/workloads/spec_mcf.ml: List No_ir Support
