lib/workloads/spec_equake.ml: List No_ir Support
