lib/workloads/spec_sjeng.ml: Int64 List No_ir Support
