lib/workloads/spec_libquantum.ml: List No_ir Support
