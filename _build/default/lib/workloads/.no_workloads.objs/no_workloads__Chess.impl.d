lib/workloads/chess.ml: Int64 List No_exec No_ir
