lib/workloads/spec_art.ml: List No_ir Support
