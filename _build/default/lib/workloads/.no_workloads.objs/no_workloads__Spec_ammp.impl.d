lib/workloads/spec_ammp.ml: List No_ir Support
