lib/workloads/spec_mesa.ml: List No_ir Support
