lib/workloads/spec_h264ref.ml: List No_ir Support
