(* 179.art — image recognition with an ART neural network
   (SPEC CPU2000).

   Table 4 row: 5.7k LoC, 325.5 s, target scan_recognize, coverage
   85.44 % (the lowest of the compute programs: training setup stays
   on the mobile side), 1 invocation, 16.4 MB communication.  Another
   near-ideal speedup case.

   Kernel: scan windows of a synthetic image against the F1/F2 layer
   weights — dot products and winner selection. *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module W = Support

let name = "179.art"
let description = "Neural-network image recognition"
let target = "scan_recognize"

let feature_dim = 256

let build () =
  let t = B.create name in
  B.global t "weights" W.f64p Ir.Zero_init;
  B.global t "image" W.f64p Ir.Zero_init;

  (* Dot product of one image window against one category's weights. *)
  let _ =
    B.func t "match_category" ~params:[ W.f64p; W.f64p; Ty.I64 ] ~ret:Ty.F64
      (fun fb args ->
        let window = List.nth args 0
        and weights = List.nth args 1
        and category = List.nth args 2 in
        let base = B.imul fb category (B.i64 feature_dim) in
        let acc = B.alloca fb Ty.F64 1 in
        B.store fb Ty.F64 (B.f64 0.0) acc;
        B.for_ fb ~name:"dot" ~from:(B.i64 0) ~below:(B.i64 feature_dim)
          (fun k ->
            let w =
              B.load fb Ty.F64
                (B.gep fb Ty.F64 weights [ Ir.Index (B.iadd fb base k) ])
            in
            let x = B.load fb Ty.F64 (B.gep fb Ty.F64 window [ Ir.Index k ]) in
            let cur = B.load fb Ty.F64 acc in
            B.store fb Ty.F64 (B.fadd fb cur (B.fmul fb w x)) acc);
        B.ret fb (Some (B.load fb Ty.F64 acc)))
  in

  (* scan_recognize(windows, categories) -> sum of winning scores *)
  let _ =
    B.func t "scan_recognize" ~params:[ Ty.I64; Ty.I64 ] ~ret:Ty.F64
      (fun fb args ->
        let windows = List.nth args 0 and categories = List.nth args 1 in
        let image = B.load fb W.f64p (Ir.Global "image") in
        let weights = B.load fb W.f64p (Ir.Global "weights") in
        let total = B.alloca fb Ty.F64 1 in
        B.store fb Ty.F64 (B.f64 0.0) total;
        B.for_ fb ~name:"scan_windows" ~from:(B.i64 0) ~below:windows
          (fun w ->
            let offset = B.imul fb w (B.i64 16) in
            let window = B.gep fb Ty.F64 image [ Ir.Index offset ] in
            let best = B.alloca fb Ty.F64 1 in
            B.store fb Ty.F64 (B.f64 (-1e30)) best;
            B.for_ fb ~name:"scan_cats" ~from:(B.i64 0) ~below:categories
              (fun cat ->
                let score =
                  B.call fb "match_category" [ window; weights; cat ]
                in
                let b = B.load fb Ty.F64 best in
                let improved = B.cmp fb Ir.Fgt score b in
                B.if_ fb improved
                  ~then_:(fun () -> B.store fb Ty.F64 score best)
                  ());
            let cur = B.load fb Ty.F64 total in
            B.store fb Ty.F64 (B.fadd fb cur (B.load fb Ty.F64 best)) total);
        B.ret fb (Some (B.load fb Ty.F64 total)))
  in

  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let windows, categories = W.scan2 fb in
        let image_count =
          B.iadd fb (B.imul fb windows (B.i64 16)) (B.i64 feature_dim)
        in
        let image = W.malloc_f64 fb image_count in
        B.store fb W.f64p image (Ir.Global "image");
        W.fill_f64 fb ~name:"init_image" image ~count:image_count ~scale:1e-3;
        let wcount = B.imul fb categories (B.i64 feature_dim) in
        let weights = W.malloc_f64 fb wcount in
        B.store fb W.f64p weights (Ir.Global "weights");
        W.fill_f64 fb ~name:"init_weights" weights ~count:wcount ~scale:7e-4;
        let score = B.call fb "scan_recognize" [ windows; categories ] in
        W.print_result_f64 t fb ~label:"recognized" score;
        B.ret fb (Some (B.i64 0)))
  in
  B.finish t

(* Parameters: windows, categories. *)
let profile_script = W.script_of_ints [ 20; 8 ]
let eval_script = W.script_of_ints [ 110; 12 ]
let eval_scale = 8.2
let files = []
