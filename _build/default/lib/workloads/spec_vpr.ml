(* 175.vpr — FPGA placement (SPEC CPU2000).

   Table 4 row: 11.3k LoC, 26.9 s, target try_place_while.cond (an
   outlined hot loop), coverage 99.07 %, 1 invocation, only 0.8 MB of
   communication — a compute-dominated annealer over a small grid, so
   it speeds up on both networks.

   Kernel: simulated-annealing placement — swap two cells, evaluate
   the local wirelength delta against 4-neighbourhoods, accept
   improving or occasionally worsening moves. *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module W = Support

let name = "175.vpr"
let description = "FPGA circuit placement"
let target = "try_place_while.cond"

let grid = 32

let build () =
  let t = B.create name in
  W.add_xrand t;
  B.global t "place" W.i64p Ir.Zero_init;

  (* Local cost of cell at (idx): sum of |cell - neighbour|. *)
  let _ =
    B.func t "cell_cost" ~params:[ W.i64p; Ty.I64 ] ~ret:Ty.I64
      (fun fb args ->
        let place = List.nth args 0 and idx = List.nth args 1 in
        let n = B.i64 (grid * grid) in
        let v = B.load fb Ty.I64 (B.gep fb Ty.I64 place [ Ir.Index idx ]) in
        let cost = B.alloca fb Ty.I64 1 in
        B.store fb Ty.I64 (B.i64 0) cost;
        let add_neighbour offset =
          let nidx = B.iadd fb idx (B.i64 offset) in
          let wrapped = B.irem fb (B.iadd fb nidx n) n in
          let nv =
            B.load fb Ty.I64 (B.gep fb Ty.I64 place [ Ir.Index wrapped ])
          in
          let diff = B.isub fb v nv in
          let neg = B.cmp fb Ir.Slt diff (B.i64 0) in
          let mag = B.select fb neg (B.isub fb (B.i64 0) diff) diff in
          let c = B.load fb Ty.I64 cost in
          B.store fb Ty.I64 (B.iadd fb c mag) cost
        in
        add_neighbour 1;
        add_neighbour (-1);
        add_neighbour grid;
        add_neighbour (-grid);
        B.ret fb (Some (B.load fb Ty.I64 cost)))
  in

  (* try_place_while.cond(place, moves) -> final total cost *)
  let _ =
    B.func t "try_place_while.cond" ~params:[ W.i64p; Ty.I64 ] ~ret:Ty.I64
      (fun fb args ->
        let place = List.nth args 0 and moves = List.nth args 1 in
        let n = B.i64 (grid * grid) in
        let state = B.alloca fb Ty.I64 1 in
        B.store fb Ty.I64 (B.i64 0xBEEF) state;
        B.for_ fb ~name:"anneal" ~from:(B.i64 0) ~below:moves (fun it ->
            let ra = B.call fb "xrand" [ state ] in
            let rb = B.call fb "xrand" [ state ] in
            let a = B.irem fb (B.iand fb ra (B.i64 0xFFFF)) n in
            let b = B.irem fb (B.iand fb rb (B.i64 0xFFFF)) n in
            let before =
              B.iadd fb
                (B.call fb "cell_cost" [ place; a ])
                (B.call fb "cell_cost" [ place; b ])
            in
            (* swap *)
            let pa = B.gep fb Ty.I64 place [ Ir.Index a ] in
            let pb = B.gep fb Ty.I64 place [ Ir.Index b ] in
            let va = B.load fb Ty.I64 pa in
            let vb = B.load fb Ty.I64 pb in
            B.store fb Ty.I64 vb pa;
            B.store fb Ty.I64 va pb;
            let after =
              B.iadd fb
                (B.call fb "cell_cost" [ place; a ])
                (B.call fb "cell_cost" [ place; b ])
            in
            let worse = B.cmp fb Ir.Sgt after before in
            (* temperature: accept worsening moves early on *)
            let hot = B.cmp fb Ir.Slt it (B.idiv fb moves (B.i64 4)) in
            let lucky =
              B.cmp fb Ir.Eq (B.iand fb ra (B.i64 7)) (B.i64 0)
            in
            let tolerated = B.ior fb hot lucky in
            let revert = B.iand fb worse (B.ixor fb tolerated (B.i8 1)) in
            B.if_ fb revert
              ~then_:(fun () ->
                B.store fb Ty.I64 va pa;
                B.store fb Ty.I64 vb pb)
              ());
        (* final cost *)
        let total = B.alloca fb Ty.I64 1 in
        B.store fb Ty.I64 (B.i64 0) total;
        B.for_ fb ~name:"final_cost" ~from:(B.i64 0) ~below:n (fun i ->
            let c = B.call fb "cell_cost" [ place; i ] in
            let cur = B.load fb Ty.I64 total in
            B.store fb Ty.I64 (B.iadd fb cur c) total);
        B.ret fb (Some (B.load fb Ty.I64 total)))
  in

  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let moves, seed = W.scan2 fb in
        let n = B.i64 (grid * grid) in
        let place = W.malloc_words fb (B.imul fb n (B.i64 8)) in
        B.store fb W.i64p place (Ir.Global "place");
        W.fill_pattern fb ~name:"init_place" place ~words:n ~seed
          ~step:(B.i64 37);
        let cost = B.call fb "try_place_while.cond" [ place; moves ] in
        W.print_result t fb ~label:"final_cost" cost;
        B.ret fb (Some (B.i64 0)))
  in
  B.finish t

(* Parameters: annealing moves, placement seed. *)
let profile_script = W.script_of_ints [ 600; 3 ]
let eval_script = W.script_of_ints [ 5_000; 3 ]
let eval_scale = 8.3
let files = []
