(* 177.mesa — 3-D graphics library (SPEC CPU2000).

   Table 4 row: 42.2k LoC, 120.2 s, target Render, coverage 99.02 %,
   1 invocation, 20.3 MB communication, 1169 function-pointer uses
   (mesa's driver tables).

   Kernel: software rasterization of a triangle list into an f32
   framebuffer, with the fragment shader selected per triangle
   through a function-pointer table. *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module W = Support

let name = "177.mesa"
let description = "3-D graphics rendering"
let target = "Render"

let fb_dim = 128

let shader_sig = Ty.signature [ Ty.F64; Ty.F64 ] Ty.F64
let shader_names = [ "shade_flat"; "shade_gouraud"; "shade_textured" ]

let build () =
  let t = B.create name in
  W.add_xrand t;
  B.global t "framebuffer" W.f64p Ir.Zero_init;
  B.global t "shaders"
    (Ty.Array (Ty.Fn_ptr shader_sig, 3))
    (Ir.Array_init (List.map (fun n -> Ir.Fn_init n) shader_names));

  let make_shader fname body =
    let _ =
      B.func t fname ~params:[ Ty.F64; Ty.F64 ] ~ret:Ty.F64 (fun fb args ->
          let u = List.nth args 0 and v = List.nth args 1 in
          B.ret fb (Some (body fb u v)))
    in
    ()
  in
  make_shader "shade_flat" (fun fb u v ->
      B.fadd fb (B.fmul fb u (B.f64 0.5)) (B.fmul fb v (B.f64 0.25)));
  make_shader "shade_gouraud" (fun fb u v ->
      let uv = B.fmul fb u v in
      B.fadd fb uv (B.fmul fb (B.fadd fb u v) (B.f64 0.125)));
  make_shader "shade_textured" (fun fb u v ->
      let s = B.call fb "sin" [ B.fmul fb u (B.f64 12.9898) ] in
      B.fadd fb (B.fmul fb s (B.f64 0.5)) (B.fmul fb v (B.f64 0.3)));

  (* Rasterize one axis-aligned triangle (half of a bounding box). *)
  let _ =
    B.func t "raster_triangle"
      ~params:[ Ty.I64; Ty.I64; Ty.I64; Ty.I64 ] ~ret:Ty.Void (fun fb args ->
        let x0 = List.nth args 0
        and y0 = List.nth args 1
        and size = List.nth args 2
        and shader_idx = List.nth args 3 in
        let fbuf = B.load fb W.f64p (Ir.Global "framebuffer") in
        let table = Ty.Array (Ty.Fn_ptr shader_sig, 3) in
        let slot = B.gep fb table (Ir.Global "shaders") [ Ir.Index shader_idx ] in
        let shader = B.load fb (Ty.Fn_ptr shader_sig) slot in
        B.for_ fb ~name:"raster_rows" ~from:(B.i64 0) ~below:size (fun dy ->
            (* upper-left triangle: row dy spans size-dy pixels *)
            let span = B.isub fb size dy in
            B.for_ fb ~name:"raster_cols" ~from:(B.i64 0) ~below:span
              (fun dx ->
                let x = B.irem fb (B.iadd fb x0 dx) (B.i64 fb_dim) in
                let y = B.irem fb (B.iadd fb y0 dy) (B.i64 fb_dim) in
                let sizef = B.cast fb Ir.Si_to_fp ~src:Ty.I64 size ~dst:Ty.F64 in
                let u =
                  B.fdiv fb
                    (B.cast fb Ir.Si_to_fp ~src:Ty.I64 dx ~dst:Ty.F64)
                    sizef
                in
                let v =
                  B.fdiv fb
                    (B.cast fb Ir.Si_to_fp ~src:Ty.I64 dy ~dst:Ty.F64)
                    sizef
                in
                let color = B.call_ind fb shader_sig shader [ u; v ] in
                let idx = B.iadd fb (B.imul fb y (B.i64 fb_dim)) x in
                let pixel = B.gep fb Ty.F64 fbuf [ Ir.Index idx ] in
                let old = B.load fb Ty.F64 pixel in
                (* alpha blend *)
                B.store fb Ty.F64
                  (B.fadd fb (B.fmul fb old (B.f64 0.5))
                     (B.fmul fb color (B.f64 0.5)))
                  pixel));
        B.ret_void fb)
  in

  (* Render(triangles, max_size) -> luminance sum *)
  let _ =
    B.func t "Render" ~params:[ Ty.I64; Ty.I64 ] ~ret:Ty.F64 (fun fb args ->
        let triangles = List.nth args 0 and max_size = List.nth args 1 in
        let state = B.alloca fb Ty.I64 1 in
        B.store fb Ty.I64 (B.i64 0x177) state;
        B.for_ fb ~name:"render_tris" ~from:(B.i64 0) ~below:triangles
          (fun _i ->
            let r1 = B.call fb "xrand" [ state ] in
            let r2 = B.call fb "xrand" [ state ] in
            let x0 = B.iand fb r1 (B.i64 (fb_dim - 1)) in
            let y0 = B.iand fb r2 (B.i64 (fb_dim - 1)) in
            let size =
              B.iadd fb
                (B.irem fb (B.iand fb r1 (B.i64 0xFFFF)) max_size)
                (B.i64 4)
            in
            let shader = B.irem fb r2 (B.i64 3) in
            let shader =
              B.select fb (B.cmp fb Ir.Slt shader (B.i64 0))
                (B.iadd fb shader (B.i64 3))
                shader
            in
            B.call_void fb "raster_triangle" [ x0; y0; size; shader ]);
        let lum =
          W.sum_f64 fb ~name:"luminance" (B.load fb W.f64p (Ir.Global "framebuffer"))
            ~count:(B.i64 (fb_dim * fb_dim))
        in
        B.ret fb (Some lum))
  in

  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let triangles, max_size = W.scan2 fb in
        let count = B.i64 (fb_dim * fb_dim) in
        let fbuf = W.malloc_f64 fb count in
        B.store fb W.f64p fbuf (Ir.Global "framebuffer");
        W.fill_f64 fb ~name:"clear_fb" fbuf ~count ~scale:0.0;
        let lum = B.call fb "Render" [ triangles; max_size ] in
        W.print_result_f64 t fb ~label:"luminance" lum;
        B.ret fb (Some (B.i64 0)))
  in
  B.finish t

(* Parameters: triangles, max triangle size. *)
let profile_script = W.script_of_ints [ 12; 24 ]
let eval_script = W.script_of_ints [ 90; 32 ]
let eval_scale = 10.0
let files = []
