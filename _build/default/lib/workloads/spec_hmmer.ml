(* 456.hmmer — gene sequence search (SPEC CPU2006).

   Table 4 row: 20.6k LoC, 31.3 s, target main_loop_serial, coverage
   99.99 %, 1 invocation, 0.3 MB communication.  The paper's
   near-ideal case: "the offloaded function [...] takes only the
   initialized parameters as its inputs", so almost nothing crosses
   the network and the speedup approaches the ideal bar.

   Kernel: Viterbi-style dynamic programming of a profile HMM against
   a synthetic sequence, integer scores, two rolling rows. *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module W = Support

let name = "456.hmmer"
let description = "Gene sequence search"
let target = "main_loop_serial"

let build () =
  let t = B.create name in
  W.add_xrand t;
  B.global t "seq" W.i64p Ir.Zero_init;
  B.global t "model" W.i64p Ir.Zero_init;

  (* main_loop_serial(seq, L, model, S) -> best score *)
  let _ =
    B.func t "main_loop_serial" ~params:[ W.i64p; Ty.I64; W.i64p; Ty.I64 ]
      ~ret:Ty.I64 (fun fb args ->
        let seq = List.nth args 0
        and len = List.nth args 1
        and model = List.nth args 2
        and states = List.nth args 3 in
        let cur = B.alloca fb Ty.I64 64 in
        let nxt = B.alloca fb Ty.I64 64 in
        B.for_ fb ~name:"vit_init" ~from:(B.i64 0) ~below:states (fun s ->
            B.store fb Ty.I64 (B.i64 0) (B.gep fb Ty.I64 cur [ Ir.Index s ]));
        let best = B.alloca fb Ty.I64 1 in
        B.store fb Ty.I64 (B.i64 0) best;
        B.for_ fb ~name:"vit_seq" ~from:(B.i64 0) ~below:len (fun i ->
            let sym = B.load fb Ty.I64 (B.gep fb Ty.I64 seq [ Ir.Index i ]) in
            B.for_ fb ~name:"vit_state" ~from:(B.i64 0) ~below:states
              (fun s ->
                (* emit = model[2s] ^ sym folded; trans = model[2s+1] *)
                let s2 = B.imul fb s (B.i64 2) in
                let emit =
                  B.load fb Ty.I64 (B.gep fb Ty.I64 model [ Ir.Index s2 ])
                in
                let s2p = B.iadd fb s2 (B.i64 1) in
                let trans =
                  B.load fb Ty.I64 (B.gep fb Ty.I64 model [ Ir.Index s2p ])
                in
                let score =
                  B.iand fb (B.ixor fb emit sym) (B.i64 1023)
                in
                let stay =
                  B.load fb Ty.I64 (B.gep fb Ty.I64 cur [ Ir.Index s ])
                in
                let prev_idx =
                  B.iand fb (B.isub fb s (B.i64 1))
                    (B.isub fb states (B.i64 1))
                in
                let move =
                  B.load fb Ty.I64 (B.gep fb Ty.I64 cur [ Ir.Index prev_idx ])
                in
                let move = B.iadd fb move (B.iand fb trans (B.i64 255)) in
                let better = B.cmp fb Ir.Sgt stay move in
                let chosen = B.select fb better stay move in
                let total = B.iadd fb chosen score in
                B.store fb Ty.I64 total
                  (B.gep fb Ty.I64 nxt [ Ir.Index s ]);
                let b = B.load fb Ty.I64 best in
                let improved = B.cmp fb Ir.Sgt total b in
                B.if_ fb improved
                  ~then_:(fun () -> B.store fb Ty.I64 total best)
                  ());
            (* roll rows *)
            B.for_ fb ~name:"vit_roll" ~from:(B.i64 0) ~below:states
              (fun s ->
                let v = B.load fb Ty.I64 (B.gep fb Ty.I64 nxt [ Ir.Index s ]) in
                B.store fb Ty.I64 v (B.gep fb Ty.I64 cur [ Ir.Index s ])));
        B.ret fb (Some (B.load fb Ty.I64 best)))
  in

  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let len, states = W.scan2 fb in
        let seq = W.malloc_words fb (B.imul fb len (B.i64 8)) in
        B.store fb W.i64p seq (Ir.Global "seq");
        let state = B.alloca fb Ty.I64 1 in
        B.store fb Ty.I64 (B.i64 0xDEAD) state;
        B.for_ fb ~name:"gen_seq" ~from:(B.i64 0) ~below:len (fun i ->
            let r = B.call fb "xrand" [ state ] in
            let sym = B.iand fb r (B.i64 3) in
            B.store fb Ty.I64 sym (B.gep fb Ty.I64 seq [ Ir.Index i ]));
        let model =
          W.malloc_words fb (B.imul fb states (B.i64 16))
        in
        B.store fb W.i64p model (Ir.Global "model");
        let mwords = B.imul fb states (B.i64 2) in
        W.fill_pattern fb ~name:"gen_model" model ~words:mwords
          ~seed:(B.i64 5) ~step:(B.i64 97);
        let score = B.call fb "main_loop_serial" [ seq; len; model; states ] in
        W.print_result t fb ~label:"best_score" score;
        B.ret fb (Some (B.i64 0)))
  in
  B.finish t

(* Parameters: sequence length, states (max 64). *)
let profile_script = W.script_of_ints [ 80; 42 ]
let eval_script = W.script_of_ints [ 560; 42 ]
let eval_scale = 7.0
let files = []
