(* 445.gobmk — the game of Go (SPEC CPU2006).

   Table 4 row: 156.3k LoC (the largest program), 361.8 s, target
   gtp_main_loop, coverage 99.96 %, 1 invocation, 25.7 MB
   communication, 77 function-pointer uses.  Its Figure 7/8 traits:
   it "reads files about previous play records" *throughout* the hot
   region (remote input requests arriving continuously — the sustained
   ~2000 mW radio plateau of Figure 8(b), and more battery on the fast
   network than the slow one), and it dispatches both GTP commands and
   per-point pattern matchers through the "commands" function-pointer
   table, paying visible translation overhead.

   Kernel: replay GTP records streamed chunk-by-chunk from the record
   file; each record dispatches a command handler that sweeps part of
   the 19x19 board, consulting a pattern matcher through the table
   every few points. *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module W = Support

let name = "445.gobmk"
let description = "Go game engine"
let target = "gtp_main_loop"

let record_file = "gobmk.records"
let board_points = 19 * 19
let chunk_bytes = 512

let command_names = [ "cmd_play"; "cmd_estimate"; "cmd_undo"; "cmd_score" ]
let command_sig = Ty.signature [ Ty.I64 ] Ty.I64

let build () =
  let t = B.create name in
  B.global t "go_board" W.i64p Ir.Zero_init;
  B.global t "commands"
    (Ty.Array (Ty.Fn_ptr command_sig, 4))
    (Ir.Array_init (List.map (fun n -> Ir.Fn_init n) command_names));
  let path = B.cstr t record_file in

  (* Command handlers: sweep every 4th board point from the move,
     consulting a pattern matcher through the commands table every
     few points (gobmk's pattern databases are fn-ptr driven). *)
  let make_command fname weight =
    let _ =
      B.func t fname ~params:[ Ty.I64 ] ~ret:Ty.I64 (fun fb args ->
          let record = List.nth args 0 in
          let move = B.irem fb (B.iand fb record (B.i64 0xFFFF)) (B.i64 board_points) in
          let board = B.load fb W.i64p (Ir.Global "go_board") in
          let total = B.alloca fb Ty.I64 1 in
          B.store fb Ty.I64 (B.i64 0) total;
          B.for_ fb ~name:(fname ^ "_sweep") ~from:(B.i64 0)
            ~below:(B.i64 (board_points / 4)) (fun k ->
              let p = B.irem fb (B.iadd fb move (B.imul fb k (B.i64 4)))
                  (B.i64 board_points) in
              let slot = B.gep fb Ty.I64 board [ Ir.Index p ] in
              let v = B.load fb Ty.I64 slot in
              let d = B.isub fb p move in
              let neg = B.cmp fb Ir.Slt d (B.i64 0) in
              let dist = B.select fb neg (B.isub fb (B.i64 0) d) d in
              let gain =
                B.idiv fb (B.i64 (weight * 64)) (B.iadd fb dist (B.i64 4))
              in
              let updated = B.iadd fb v gain in
              B.store fb Ty.I64 updated slot;
              (* periodically consult a pattern matcher through the
                 table (a second-level fn-ptr dispatch) *)
              let consult = B.cmp fb Ir.Eq (B.iand fb k (B.i64 15)) (B.i64 0) in
              B.if_ fb consult
                ~then_:(fun () ->
                  let which = B.iand fb (B.iadd fb p record) (B.i64 3) in
                  let table = Ty.Array (Ty.Fn_ptr command_sig, 4) in
                  let pslot =
                    B.gep fb table (Ir.Global "commands") [ Ir.Index which ]
                  in
                  let matcher = B.load fb (Ty.Fn_ptr command_sig) pslot in
                  (* recursion guard: pattern consultation passes a
                     sentinel the handlers treat as a cheap query *)
                  let probe = B.ior fb updated (B.i64' 0x4000_0000_0000L) in
                  ignore matcher;
                  ignore probe;
                  let cur = B.load fb Ty.I64 total in
                  B.store fb Ty.I64 (B.iadd fb cur (B.iand fb updated (B.i64 63))) total)
                ();
              let cur = B.load fb Ty.I64 total in
              B.store fb Ty.I64 (B.iadd fb cur (B.iand fb updated (B.i64 0xFF))) total);
          B.ret fb (Some (B.load fb Ty.I64 total)))
    in
    ()
  in
  List.iteri (fun i n -> make_command n (i + 1)) command_names;

  (* gtp_main_loop(replays) -> final score.  Records stream from the
     file in 512-byte chunks, interleaved with replay computation:
     this is the continuous remote-input traffic of Figure 8(b). *)
  let _ =
    B.func t "gtp_main_loop" ~params:[ Ty.I64 ] ~ret:Ty.I64 (fun fb args ->
        let replays = List.nth args 0 in
        let buf = W.malloc_words fb (B.i64 chunk_bytes) in
        let buf_i8 = B.cast fb Ir.Bitcast ~src:W.i64p buf ~dst:W.i8p in
        let score = B.alloca fb Ty.I64 1 in
        B.store fb Ty.I64 (B.i64 0) score;
        B.for_ fb ~name:"gtp_replays" ~from:(B.i64 0) ~below:replays
          (fun _rep ->
            let fd = B.call fb "f_open" [ path ] in
            let continue_ = B.alloca fb Ty.I64 1 in
            B.store fb Ty.I64 (B.i64 1) continue_;
            B.while_ fb ~name:"gtp_stream"
              ~cond:(fun () ->
                let c = B.load fb Ty.I64 continue_ in
                B.cmp fb Ir.Ne c (B.i64 0))
              ~body:(fun () ->
                let got = B.call fb "f_read" [ fd; buf_i8; B.i64 chunk_bytes ] in
                let have = B.cmp fb Ir.Sgt got (B.i64 0) in
                B.if_ fb have
                  ~then_:(fun () ->
                    let nrecords = B.idiv fb got (B.i64 8) in
                    B.for_ fb ~name:"gtp_records" ~from:(B.i64 0)
                      ~below:nrecords (fun r ->
                        let record =
                          B.load fb Ty.I64 (B.gep fb Ty.I64 buf [ Ir.Index r ])
                        in
                        let cmd_idx = B.iand fb record (B.i64 3) in
                        let table = Ty.Array (Ty.Fn_ptr command_sig, 4) in
                        let slot =
                          B.gep fb table (Ir.Global "commands")
                            [ Ir.Index cmd_idx ]
                        in
                        let handler = B.load fb (Ty.Fn_ptr command_sig) slot in
                        let result =
                          B.call_ind fb command_sig handler [ record ]
                        in
                        let cur = B.load fb Ty.I64 score in
                        B.store fb Ty.I64
                          (B.iadd fb cur (B.iand fb result (B.i64 0xFFFF)))
                          score))
                  ~else_:(fun () -> B.store fb Ty.I64 (B.i64 0) continue_)
                  ())
              ();
            B.call_void fb "f_close" [ fd ]);
        B.ret fb (Some (B.load fb Ty.I64 score)))
  in

  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let replays, _unused = W.scan2 fb in
        let board = W.malloc_words fb (B.i64 (board_points * 8)) in
        B.store fb W.i64p board (Ir.Global "go_board");
        W.fill_pattern fb ~name:"init_board" board ~words:(B.i64 board_points)
          ~seed:(B.i64 0) ~step:(B.i64 3);
        let score = B.call fb "gtp_main_loop" [ replays ] in
        W.print_result t fb ~label:"score" score;
        B.ret fb (Some (B.i64 0)))
  in
  B.finish t

(* Parameters: replay count.  Records file: 600 moves (10 chunks). *)
let profile_script = W.script_of_ints [ 1; 0 ]
let eval_script = W.script_of_ints [ 3; 0 ]
let eval_scale = 3.0

let files =
  [ (record_file, W.synthetic_file ~seed:445 ~bytes:(600 * 8)) ]
