(* 188.ammp — computational chemistry / molecular dynamics
   (SPEC CPU2000).

   Table 4 row: 9.8k LoC, 878.0 s, and — uniquely — **two** offloaded
   targets: AMMPmonitor (coverage 13.53 %, 2 invocations) and tpac
   (coverage 85.60 %, 1 invocation).  "The Native Offloader compiler
   finds more than one offloading target like the 188.ammp case."

   Kernels: tpac — pairwise force accumulation over a neighbour
   window; AMMPmonitor — a full energy audit pass over all atoms,
   called before and after the force phase. *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module W = Support

let name = "188.ammp"
let description = "Computational chemistry"
let targets = [ "tpac"; "AMMPmonitor" ]

(* Atoms: x, y, z, f (force accumulator) — 4 doubles each. *)
let build () =
  let t = B.create name in
  B.global t "atoms" W.f64p Ir.Zero_init;

  let coord fb atoms i k =
    B.gep fb Ty.F64 atoms
      [ Ir.Index (B.iadd fb (B.imul fb i (B.i64 4)) (B.i64 k)) ]
  in

  (* tpac(natoms, window) -> force norm *)
  let _ =
    B.func t "tpac" ~params:[ Ty.I64; Ty.I64 ] ~ret:Ty.F64 (fun fb args ->
        let natoms = List.nth args 0 and window = List.nth args 1 in
        let atoms = B.load fb W.f64p (Ir.Global "atoms") in
        B.for_ fb ~name:"tpac_atoms" ~from:(B.i64 0) ~below:natoms (fun i ->
            let fx = B.alloca fb Ty.F64 1 in
            B.store fb Ty.F64 (B.f64 0.0) fx;
            B.for_ fb ~name:"tpac_pairs" ~from:(B.i64 1) ~below:window
              (fun d ->
                let j = B.irem fb (B.iadd fb i d) natoms in
                let dx =
                  B.fsub fb
                    (B.load fb Ty.F64 (coord fb atoms i 0))
                    (B.load fb Ty.F64 (coord fb atoms j 0))
                in
                let dy =
                  B.fsub fb
                    (B.load fb Ty.F64 (coord fb atoms i 1))
                    (B.load fb Ty.F64 (coord fb atoms j 1))
                in
                let dz =
                  B.fsub fb
                    (B.load fb Ty.F64 (coord fb atoms i 2))
                    (B.load fb Ty.F64 (coord fb atoms j 2))
                in
                let r2 =
                  B.fadd fb (B.fmul fb dx dx)
                    (B.fadd fb (B.fmul fb dy dy) (B.fmul fb dz dz))
                in
                let soft = B.fadd fb r2 (B.f64 0.5) in
                let inv = B.fdiv fb (B.f64 1.0) soft in
                let cur = B.load fb Ty.F64 fx in
                B.store fb Ty.F64 (B.fadd fb cur inv) fx);
            B.store fb Ty.F64 (B.load fb Ty.F64 fx) (coord fb atoms i 3));
        let norm =
          W.sum_f64 fb ~name:"force_norm" atoms
            ~count:(B.imul fb natoms (B.i64 4))
        in
        B.ret fb (Some norm))
  in

  (* AMMPmonitor(natoms) -> total energy *)
  let _ =
    B.func t "AMMPmonitor" ~params:[ Ty.I64 ] ~ret:Ty.F64 (fun fb args ->
        let natoms = List.nth args 0 in
        let atoms = B.load fb W.f64p (Ir.Global "atoms") in
        let energy = B.alloca fb Ty.F64 1 in
        B.store fb Ty.F64 (B.f64 0.0) energy;
        B.for_ fb ~name:"monitor_atoms" ~from:(B.i64 0) ~below:natoms
          (fun i ->
            let x = B.load fb Ty.F64 (coord fb atoms i 0) in
            let y = B.load fb Ty.F64 (coord fb atoms i 1) in
            let z = B.load fb Ty.F64 (coord fb atoms i 2) in
            let f = B.load fb Ty.F64 (coord fb atoms i 3) in
            let kinetic =
              B.fadd fb (B.fmul fb x x)
                (B.fadd fb (B.fmul fb y y) (B.fmul fb z z))
            in
            let r = B.call fb "sqrt" [ B.fadd fb kinetic (B.f64 1.0) ] in
            let contribution = B.fadd fb r (B.fmul fb f (B.f64 0.01)) in
            let cur = B.load fb Ty.F64 energy in
            B.store fb Ty.F64 (B.fadd fb cur contribution) energy);
        B.ret fb (Some (B.load fb Ty.F64 energy)))
  in

  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let natoms, window = W.scan2 fb in
        let words = B.imul fb natoms (B.i64 4) in
        let atoms = W.malloc_f64 fb words in
        B.store fb W.f64p atoms (Ir.Global "atoms");
        W.fill_f64 fb ~name:"init_atoms" atoms ~count:words ~scale:3e-3;
        (* monitor, force phase, monitor — the paper's 2-invocation
           AMMPmonitor plus 1-invocation tpac. *)
        let e0 = B.call fb "AMMPmonitor" [ natoms ] in
        W.print_result_f64 t fb ~label:"energy_before" e0;
        let fnorm = B.call fb "tpac" [ natoms; window ] in
        W.print_result_f64 t fb ~label:"force_norm" fnorm;
        let e1 = B.call fb "AMMPmonitor" [ natoms ] in
        W.print_result_f64 t fb ~label:"energy_after" e1;
        B.ret fb (Some (B.i64 0)))
  in
  B.finish t

(* Parameters: atoms, neighbour window. *)
let profile_script = W.script_of_ints [ 200; 40 ]
let eval_script = W.script_of_ints [ 900; 160 ]
let eval_scale = 18.0
let files = []
