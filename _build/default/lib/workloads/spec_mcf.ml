(* 429.mcf — vehicle scheduling via minimum-cost flow (SPEC CPU2006).

   Table 4 row: 1.6k LoC, 104.8 s, target global_opt, coverage
   99.55 %, 1 invocation, 47.9 MB communication — a pointer-chasing
   graph optimizer with a working set that is large relative to its
   compute, giving a visible communication share in Figure 7 while
   still offloading on both networks.

   Kernel: Bellman-Ford-style potential relaxation sweeps over an
   arc-list network. *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module W = Support

let name = "429.mcf"
let description = "Vehicle scheduling (min-cost flow)"
let target = "global_opt"

let build () =
  let t = B.create name in
    B.global t "arc_src" W.i64p Ir.Zero_init;
  B.global t "arc_dst" W.i64p Ir.Zero_init;
  B.global t "arc_cost" W.i64p Ir.Zero_init;
  B.global t "potential" W.i64p Ir.Zero_init;

  (* global_opt(nnodes, narcs, sweeps) -> relaxations performed *)
  let _ =
    B.func t "global_opt" ~params:[ Ty.I64; Ty.I64; Ty.I64 ] ~ret:Ty.I64
      (fun fb args ->
        let nnodes = List.nth args 0
        and narcs = List.nth args 1
        and sweeps = List.nth args 2 in
        ignore nnodes;
        let asrc = B.load fb W.i64p (Ir.Global "arc_src") in
        let adst = B.load fb W.i64p (Ir.Global "arc_dst") in
        let acost = B.load fb W.i64p (Ir.Global "arc_cost") in
        let pot = B.load fb W.i64p (Ir.Global "potential") in
        let relaxations = B.alloca fb Ty.I64 1 in
        B.store fb Ty.I64 (B.i64 0) relaxations;
        B.for_ fb ~name:"opt_sweep" ~from:(B.i64 0) ~below:sweeps (fun _s ->
            B.for_ fb ~name:"opt_arcs" ~from:(B.i64 0) ~below:narcs (fun a ->
                let u = B.load fb Ty.I64 (B.gep fb Ty.I64 asrc [ Ir.Index a ]) in
                let v = B.load fb Ty.I64 (B.gep fb Ty.I64 adst [ Ir.Index a ]) in
                let c = B.load fb Ty.I64 (B.gep fb Ty.I64 acost [ Ir.Index a ]) in
                let pu = B.load fb Ty.I64 (B.gep fb Ty.I64 pot [ Ir.Index u ]) in
                let pv_slot = B.gep fb Ty.I64 pot [ Ir.Index v ] in
                let pv = B.load fb Ty.I64 pv_slot in
                let candidate = B.iadd fb pu c in
                let improves = B.cmp fb Ir.Slt candidate pv in
                B.if_ fb improves
                  ~then_:(fun () ->
                    B.store fb Ty.I64 candidate pv_slot;
                    let r = B.load fb Ty.I64 relaxations in
                    B.store fb Ty.I64 (B.iadd fb r (B.i64 1)) relaxations)
                  ()));
        B.ret fb (Some (B.load fb Ty.I64 relaxations)))
  in

  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let narcs, sweeps = W.scan2 fb in
        let nnodes = B.idiv fb narcs (B.i64 4) in
        let alloc_words count =
          let buf = W.malloc_words fb (B.imul fb count (B.i64 8)) in
          buf
        in
        let asrc = alloc_words narcs in
        let adst = alloc_words narcs in
        let acost = alloc_words narcs in
        let pot = alloc_words nnodes in
        B.store fb W.i64p asrc (Ir.Global "arc_src");
        B.store fb W.i64p adst (Ir.Global "arc_dst");
        B.store fb W.i64p acost (Ir.Global "arc_cost");
        B.store fb W.i64p pot (Ir.Global "potential");
        (* cheap affine arc generator (setup must stay a small share
           of execution, as in the paper: coverage 99.55%) *)
        B.for_ fb ~name:"gen_arcs" ~from:(B.i64 0) ~below:narcs (fun a ->
            let u = B.irem fb (B.imul fb a (B.i64 7919)) nnodes in
            let v = B.irem fb (B.iadd fb (B.imul fb a (B.i64 104729)) (B.i64 13)) nnodes in
            B.store fb Ty.I64 u (B.gep fb Ty.I64 asrc [ Ir.Index a ]);
            B.store fb Ty.I64 v (B.gep fb Ty.I64 adst [ Ir.Index a ]);
            let c = B.iand fb (B.ixor fb u (B.imul fb v (B.i64 31))) (B.i64 1023) in
            B.store fb Ty.I64 c (B.gep fb Ty.I64 acost [ Ir.Index a ]));
        W.fill_pattern fb ~name:"init_pot" pot ~words:nnodes
          ~seed:(B.i64 100000) ~step:(B.i64 0);
        (* node 0 is the source: relaxation propagates from it *)
        B.store fb Ty.I64 (B.i64 0) (B.gep fb Ty.I64 pot [ Ir.Index (B.i64 0) ]);
        let relaxed = B.call fb "global_opt" [ nnodes; narcs; sweeps ] in
        W.print_result t fb ~label:"relaxations" relaxed;
        B.ret fb (Some (B.i64 0)))
  in
  B.finish t

(* Parameters: arcs, sweeps. *)
let profile_script = W.script_of_ints [ 2_000; 4 ]
let eval_script = W.script_of_ints [ 12_000; 8 ]
let eval_scale = 12.0
let files = []
