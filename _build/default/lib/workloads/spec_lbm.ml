(* 470.lbm — fluid dynamics, lattice Boltzmann method (SPEC CPU2006).

   Table 4 row: 0.9k LoC, 1444.9 s (the longest program), target
   main_for.cond (the outlined time loop), coverage 99.70 %,
   1 invocation, 643.6 MB communication (the largest).  The trait:
   enormous state relative to the network, so communication takes a
   visible share on the slow network (Figure 7) yet the huge compute
   still makes offloading profitable.

   Kernel: D2Q5 lattice Boltzmann — stream + collide over five
   distribution planes, double buffered. *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module W = Support

let name = "470.lbm"
let description = "Fluid dynamics (lattice Boltzmann)"
let target = "main_for.cond"

let dim = 110          (* dim x dim sites, 5 planes, two grids *)
let planes = 5

let build () =
  let t = B.create name in
  B.global t "grid_a" W.f64p Ir.Zero_init;
  B.global t "grid_b" W.f64p Ir.Zero_init;

  let sites = dim * dim in

  (* One LBM step from src into dst. *)
  let _ =
    B.func t "stream_collide" ~params:[ W.f64p; W.f64p ] ~ret:Ty.Void
      (fun fb args ->
        let src = List.nth args 0 and dst = List.nth args 1 in
        let n = B.i64 dim in
        B.for_ fb ~name:"lbm_rows" ~from:(B.i64 1)
          ~below:(B.isub fb n (B.i64 1)) (fun r ->
            B.for_ fb ~name:"lbm_cols" ~from:(B.i64 1)
              ~below:(B.isub fb n (B.i64 1)) (fun c ->
                let site = B.iadd fb (B.imul fb r n) c in
                let plane_at p dr dc =
                  let neighbour =
                    B.iadd fb
                      (B.imul fb (B.iadd fb r (B.i64 dr)) n)
                      (B.iadd fb c (B.i64 dc))
                  in
                  B.iadd fb (B.imul fb (B.i64 p) (B.i64 sites)) neighbour
                in
                (* gather the five inbound distributions *)
                let f0 = B.load fb Ty.F64 (B.gep fb Ty.F64 src [ Ir.Index (plane_at 0 0 0) ]) in
                let f1 = B.load fb Ty.F64 (B.gep fb Ty.F64 src [ Ir.Index (plane_at 1 0 (-1)) ]) in
                let f2 = B.load fb Ty.F64 (B.gep fb Ty.F64 src [ Ir.Index (plane_at 2 0 1) ]) in
                let f3 = B.load fb Ty.F64 (B.gep fb Ty.F64 src [ Ir.Index (plane_at 3 (-1) 0) ]) in
                let f4 = B.load fb Ty.F64 (B.gep fb Ty.F64 src [ Ir.Index (plane_at 4 1 0) ]) in
                let rho =
                  B.fadd fb f0 (B.fadd fb (B.fadd fb f1 f2) (B.fadd fb f3 f4))
                in
                let eq = B.fmul fb rho (B.f64 0.2) in
                let relax f =
                  B.fadd fb (B.fmul fb f (B.f64 0.9))
                    (B.fmul fb eq (B.f64 0.1))
                in
                let store_plane p v =
                  let idx =
                    B.iadd fb (B.imul fb (B.i64 p) (B.i64 sites)) site
                  in
                  B.store fb Ty.F64 v (B.gep fb Ty.F64 dst [ Ir.Index idx ])
                in
                store_plane 0 (relax f0);
                store_plane 1 (relax f1);
                store_plane 2 (relax f2);
                store_plane 3 (relax f3);
                store_plane 4 (relax f4)));
        B.ret_void fb)
  in

  (* main_for.cond(steps) -> mass estimate *)
  let _ =
    B.func t "main_for.cond" ~params:[ Ty.I64 ] ~ret:Ty.F64 (fun fb args ->
        let steps = List.nth args 0 in
        B.for_ fb ~name:"lbm_time" ~from:(B.i64 0) ~below:steps (fun s ->
            let a = B.load fb W.f64p (Ir.Global "grid_a") in
            let b = B.load fb W.f64p (Ir.Global "grid_b") in
            let odd = B.irem fb s (B.i64 2) in
            let is_odd = B.cmp fb Ir.Eq odd (B.i64 1) in
            let src = B.select fb is_odd b a in
            let dst = B.select fb is_odd a b in
            B.call_void fb "stream_collide" [ src; dst ]);
        let a = B.load fb W.f64p (Ir.Global "grid_a") in
        let mass =
          W.sum_f64 fb ~name:"mass" a ~count:(B.i64 (sites * planes))
        in
        B.ret fb (Some mass))
  in

  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let steps, _unused = W.scan2 fb in
        let words = B.i64 (sites * planes) in
        let a = W.malloc_f64 fb words in
        let b = W.malloc_f64 fb words in
        B.store fb W.f64p a (Ir.Global "grid_a");
        B.store fb W.f64p b (Ir.Global "grid_b");
        W.fill_f64 fb ~name:"init_a" a ~count:words ~scale:2e-5;
        W.fill_f64 fb ~name:"init_b" b ~count:words ~scale:2e-5;
        let mass = B.call fb "main_for.cond" [ steps ] in
        W.print_result_f64 t fb ~label:"mass" mass;
        B.ret fb (Some (B.i64 0)))
  in
  B.finish t

(* Parameters: time steps, unused. *)
let profile_script = W.script_of_ints [ 1; 0 ]
let eval_script = W.script_of_ints [ 12; 0 ]
let eval_scale = 12.0
let files = []
