(* The chess AI application of the paper (Table 1, Table 3, Figure 3).

   Structure mirrors Figure 3(a):
     - struct Move { from, to, score } — the Figure 4 realignment case
       (char, char, double: IA32 packs score at offset 4, ARM at 8);
     - struct Piece { loc, owner, type };
     - global maxDepth, global board (heap), global evals: a table of
       seven evaluation function pointers indexed by piece type;
     - main: reads maxDepth and the number of turns, allocates and
       fills the board, calls runGame;
     - runGame: per turn, getPlayerTurn (interactive scanf — machine
       specific), updateBoard, getAITurn (the hot, offloadable AI),
       updateBoard;
     - getAITurn: for_i over depth, for_j over the 64 squares,
       dispatching through the evals function-pointer table, printing
       the running score per depth (remote-able output I/O).

   Scalars cross function boundaries; the Move result travels through
   an out-pointer (C ABIs return small structs in registers; our IR
   keeps aggregates in memory). *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module Console = No_exec.Console

let eval_names =
  [ "evalPawn"; "evalKnight"; "evalBishop"; "evalRook"; "evalQueen";
    "evalKing"; "evalEmpty" ]

let eval_sig = Ty.signature [ Ty.Ptr (Ty.Struct "Piece") ] Ty.F64

(* Work per evaluation call: a short integer scoring loop (move
   generation and board scanning are integer work in real engines)
   whose iteration count differs per piece type, folded to f64 at the
   end. *)
let build_eval t name ~weight ~iters =
  let piece = Ty.Struct "Piece" in
  let _ =
    B.func t name ~params:[ Ty.Ptr piece ] ~ret:Ty.F64 (fun fb args ->
        let p = List.nth args 0 in
        let loc_addr = B.gep fb piece p [ Ir.Field "loc" ] in
        let loc = B.load fb Ty.I8 loc_addr in
        let loc64 = B.cast fb Ir.Sext ~src:Ty.I8 loc ~dst:Ty.I64 in
        let acc = B.alloca fb Ty.I64 1 in
        B.store fb Ty.I64 loc64 acc;
        B.for_ fb ~name:(name ^ "_work") ~from:(B.i64 0) ~below:(B.i64 iters)
          (fun iv ->
            let cur = B.load fb Ty.I64 acc in
            let spun =
              B.ixor fb
                (B.ishl fb cur (B.i64 3))
                (B.iadd fb iv loc64)
            in
            B.store fb Ty.I64 (B.iand fb spun (B.i64 0xFFFFFF)) acc);
        let folded = B.load fb Ty.I64 acc in
        let f = B.cast fb Ir.Si_to_fp ~src:Ty.I64 folded ~dst:Ty.F64 in
        B.ret fb (Some (B.fmul fb f (B.f64 (weight *. 1e-7)))))
  in
  ()

let build () : Ir.modul =
  let t = B.create "chess" in
  let move = B.struct_ t "Move" [ ("from", Ty.I8); ("to", Ty.I8); ("score", Ty.F64) ] in
  let piece =
    B.struct_ t "Piece" [ ("loc", Ty.I8); ("owner", Ty.I8); ("type", Ty.I8) ]
  in
  B.global t "maxDepth" Ty.I64 Ir.Zero_init;
  B.global t "board" (Ty.Ptr piece) Ir.Zero_init;
  B.global t "evals"
    (Ty.Array (Ty.Fn_ptr eval_sig, 7))
    (Ir.Array_init (List.map (fun n -> Ir.Fn_init n) eval_names));
  List.iteri
    (fun i name -> build_eval t name ~weight:(float_of_int (i + 1)) ~iters:(10 + (3 * i)))
    eval_names;

  (* updateBoard: shuffle piece fields based on the move. *)
  let _ =
    B.func t "updateBoard" ~params:[ Ty.Ptr move ] ~ret:Ty.Void (fun fb args ->
        let mv = List.nth args 0 in
        let from = B.load fb Ty.I8 (B.gep fb move mv [ Ir.Field "from" ]) in
        let to_ = B.load fb Ty.I8 (B.gep fb move mv [ Ir.Field "to" ]) in
        let board = B.load fb (Ty.Ptr piece) (Ir.Global "board") in
        let from64 = B.cast fb Ir.Sext ~src:Ty.I8 from ~dst:Ty.I64 in
        let to64 = B.cast fb Ir.Sext ~src:Ty.I8 to_ ~dst:Ty.I64 in
        let masked_from = B.iand fb from64 (B.i64 63) in
        let masked_to = B.iand fb to64 (B.i64 63) in
        let src = B.gep fb piece board [ Ir.Index masked_from ] in
        let dst = B.gep fb piece board [ Ir.Index masked_to ] in
        let src_ty = B.load fb Ty.I8 (B.gep fb piece src [ Ir.Field "type" ]) in
        B.store fb Ty.I8 src_ty (B.gep fb piece dst [ Ir.Field "type" ]);
        B.store fb Ty.I8 (B.i8 6) (B.gep fb piece src [ Ir.Field "type" ]);
        B.ret_void fb)
  in

  (* getPlayerTurn: interactive input — machine specific. *)
  let _ =
    B.func t "getPlayerTurn" ~params:[ Ty.Ptr move ] ~ret:Ty.Void
      (fun fb args ->
        let mv = List.nth args 0 in
        let from = B.call fb "scan_i64" [] in
        let to_ = B.call fb "scan_i64" [] in
        let from8 = B.cast fb Ir.Trunc ~src:Ty.I64 from ~dst:Ty.I8 in
        let to8 = B.cast fb Ir.Trunc ~src:Ty.I64 to_ ~dst:Ty.I8 in
        B.store fb Ty.I8 from8 (B.gep fb move mv [ Ir.Field "from" ]);
        B.store fb Ty.I8 to8 (B.gep fb move mv [ Ir.Field "to" ]);
        B.store fb Ty.F64 (B.f64 0.0) (B.gep fb move mv [ Ir.Field "score" ]);
        B.ret_void fb)
  in

  (* getAITurn: the offloading target. *)
  let _ =
    B.func t "getAITurn" ~params:[ Ty.Ptr move ] ~ret:Ty.Void (fun fb args ->
        let mv = List.nth args 0 in
        let score_addr = B.gep fb move mv [ Ir.Field "score" ] in
        B.store fb Ty.F64 (B.f64 0.0) score_addr;
        let depth = B.load fb Ty.I64 (Ir.Global "maxDepth") in
        (* The game tree widens with depth: each extra ply multiplies
           the positions examined by ~1.6 (this is what makes Table
           1's times grow superlinearly in difficulty). *)
        let reps = B.alloca fb Ty.I64 1 in
        B.store fb Ty.I64 (B.i64 1) reps;
        B.for_ fb ~name:"for_i" ~from:(B.i64 0) ~below:depth (fun _i ->
            let width = B.load fb Ty.I64 reps in
            B.for_ fb ~name:"for_w" ~from:(B.i64 0) ~below:width (fun _w ->
                B.for_ fb ~name:"for_j" ~from:(B.i64 0) ~below:(B.i64 64)
                  (fun j ->
                    let board =
                      B.load fb (Ty.Ptr piece) (Ir.Global "board")
                    in
                    let cell = B.gep fb piece board [ Ir.Index j ] in
                    let pty =
                      B.load fb Ty.I8 (B.gep fb piece cell [ Ir.Field "type" ])
                    in
                    let pty64 = B.cast fb Ir.Sext ~src:Ty.I8 pty ~dst:Ty.I64 in
                    let table = Ty.Array (Ty.Fn_ptr eval_sig, 7) in
                    let slot =
                      B.gep fb table (Ir.Global "evals") [ Ir.Index pty64 ]
                    in
                    let eval = B.load fb (Ty.Fn_ptr eval_sig) slot in
                    let contribution = B.call_ind fb eval_sig eval [ cell ] in
                    let cur = B.load fb Ty.F64 score_addr in
                    B.store fb Ty.F64 (B.fadd fb cur contribution) score_addr));
            let widened =
              B.iadd fb (B.idiv fb (B.imul fb width (B.i64 8)) (B.i64 5))
                (B.i64 1)
            in
            B.store fb Ty.I64 widened reps;
            let cur = B.load fb Ty.F64 score_addr in
            B.call_void fb "print_f64" [ cur ];
            B.call_void fb "print_newline" []);
        (* Pick a deterministic pseudo-move from the score bits. *)
        let score = B.load fb Ty.F64 score_addr in
        let bits = B.cast fb Ir.Fp_to_si ~src:Ty.F64 score ~dst:Ty.I64 in
        let from = B.iand fb bits (B.i64 63) in
        let to_ = B.iand fb (B.iadd fb bits (B.i64 17)) (B.i64 63) in
        let from8 = B.cast fb Ir.Trunc ~src:Ty.I64 from ~dst:Ty.I8 in
        let to8 = B.cast fb Ir.Trunc ~src:Ty.I64 to_ ~dst:Ty.I8 in
        B.store fb Ty.I8 from8 (B.gep fb move mv [ Ir.Field "from" ]);
        B.store fb Ty.I8 to8 (B.gep fb move mv [ Ir.Field "to" ]);
        B.ret_void fb)
  in

  (* runGame: the turn loop of Figure 3, over a turn count read by
     main (gameover after that many turns). *)
  let _ =
    B.func t "runGame" ~params:[ Ty.I64 ] ~ret:Ty.Void (fun fb args ->
        let turns = List.nth args 0 in
        let mv = B.alloca fb (Ty.Struct "Move") 1 in
        B.for_ fb ~name:"game" ~from:(B.i64 0) ~below:turns (fun _turn ->
            B.call_void fb "getPlayerTurn" [ mv ];
            B.call_void fb "updateBoard" [ mv ];
            B.call_void fb "getAITurn" [ mv ];
            B.call_void fb "updateBoard" [ mv ]);
        B.ret_void fb)
  in

  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let depth = B.call fb "scan_i64" [] in
        B.store fb Ty.I64 depth (Ir.Global "maxDepth");
        let turns = B.call fb "scan_i64" [] in
        let raw = B.call fb "malloc" [ B.i64 (3 * 64) ] in
        let board =
          B.cast fb Ir.Bitcast ~src:(Ty.Ptr Ty.I8) raw ~dst:(Ty.Ptr piece)
        in
        B.store fb (Ty.Ptr piece) board (Ir.Global "board");
        B.for_ fb ~name:"init_board" ~from:(B.i64 0) ~below:(B.i64 64)
          (fun i ->
            let cell = B.gep fb piece board [ Ir.Index i ] in
            let i8v = B.cast fb Ir.Trunc ~src:Ty.I64 i ~dst:Ty.I8 in
            B.store fb Ty.I8 i8v (B.gep fb piece cell [ Ir.Field "loc" ]);
            let owner = B.irem fb i (B.i64 2) in
            let owner8 = B.cast fb Ir.Trunc ~src:Ty.I64 owner ~dst:Ty.I8 in
            B.store fb Ty.I8 owner8 (B.gep fb piece cell [ Ir.Field "owner" ]);
            let pty = B.irem fb i (B.i64 7) in
            let pty8 = B.cast fb Ir.Trunc ~src:Ty.I64 pty ~dst:Ty.I8 in
            B.store fb Ty.I8 pty8 (B.gep fb piece cell [ Ir.Field "type" ]));
        B.call_void fb "runGame" [ turns ];
        B.ret fb (Some (B.i64 0)))
  in
  B.finish t

(* Console script: depth, turn count, then (from, to) per turn. *)
let script ~depth ~turns : Console.input list =
  Console.In_int (Int64.of_int depth)
  :: Console.In_int (Int64.of_int turns)
  :: List.concat
       (List.init turns (fun i ->
            [
              Console.In_int (Int64.of_int (i mod 64));
              Console.In_int (Int64.of_int ((i + 9) mod 64));
            ]))

(* The paper's expected selection on this program. *)
let target = "getAITurn"
