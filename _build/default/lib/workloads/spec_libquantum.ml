(* 462.libquantum — quantum computer simulation (SPEC CPU2006).

   Table 4 row: 2.6k LoC, 71.0 s, target quantum_exp_mod_n, coverage
   92.56 %, 1 invocation, 6.3 MB communication.  A state-vector
   simulator: every gate sweeps the full amplitude vector.

   Kernel: controlled rotations over a 2^q complex state vector
   (interleaved re/im f64 pairs), applied by a modular-exponentiation
   gate schedule. *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module W = Support

let name = "462.libquantum"
let description = "Quantum computing (Shor)"
let target = "quantum_exp_mod_n"

let build () =
  let t = B.create name in
  B.global t "state_vec" W.f64p Ir.Zero_init;

  (* Apply one rotation mixing amplitude pairs separated by [stride]. *)
  let _ =
    B.func t "apply_gate" ~params:[ W.f64p; Ty.I64; Ty.I64; Ty.F64 ]
      ~ret:Ty.Void (fun fb args ->
        let vec = List.nth args 0
        and size = List.nth args 1
        and stride = List.nth args 2
        and angle = List.nth args 3 in
        let c = B.call fb "cos" [ angle ] in
        let s = B.call fb "sin" [ angle ] in
        let pairs = B.idiv fb size (B.i64 2) in
        B.for_ fb ~name:"gate_sweep" ~from:(B.i64 0) ~below:pairs (fun i ->
            let j = B.irem fb (B.iadd fb i stride) pairs in
            let re_i = B.gep fb Ty.F64 vec [ Ir.Index (B.imul fb i (B.i64 2)) ] in
            let im_i =
              B.gep fb Ty.F64 vec
                [ Ir.Index (B.iadd fb (B.imul fb i (B.i64 2)) (B.i64 1)) ]
            in
            let re_j = B.gep fb Ty.F64 vec [ Ir.Index (B.imul fb j (B.i64 2)) ] in
            let a = B.load fb Ty.F64 re_i in
            let b = B.load fb Ty.F64 im_i in
            let x = B.load fb Ty.F64 re_j in
            let new_a = B.fsub fb (B.fmul fb c a) (B.fmul fb s b) in
            let new_b = B.fadd fb (B.fmul fb s a) (B.fmul fb c b) in
            let new_a = B.fadd fb new_a (B.fmul fb (B.f64 1e-6) x) in
            B.store fb Ty.F64 new_a re_i;
            B.store fb Ty.F64 new_b im_i);
        B.ret_void fb)
  in

  (* quantum_exp_mod_n(vec, size, gates) -> norm estimate *)
  let _ =
    B.func t "quantum_exp_mod_n" ~params:[ W.f64p; Ty.I64; Ty.I64 ]
      ~ret:Ty.F64 (fun fb args ->
        let vec = List.nth args 0
        and size = List.nth args 1
        and gates = List.nth args 2 in
        B.for_ fb ~name:"schedule" ~from:(B.i64 0) ~below:gates (fun g ->
            let stride = B.iadd fb (B.irem fb g (B.i64 13)) (B.i64 1) in
            let gf = B.cast fb Ir.Si_to_fp ~src:Ty.I64 g ~dst:Ty.F64 in
            let angle = B.fmul fb gf (B.f64 0.1234) in
            B.call_void fb "apply_gate" [ vec; size; stride; angle ]);
        let norm = W.sum_f64 fb ~name:"norm" vec ~count:size in
        B.ret fb (Some norm))
  in

  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let qubits, gates = W.scan2 fb in
        let pairs = B.ishl fb (B.i64 1) qubits in
        let size = B.imul fb pairs (B.i64 2) in
        let vec = W.malloc_f64 fb size in
        B.store fb W.f64p vec (Ir.Global "state_vec");
        W.fill_f64 fb ~name:"init_state" vec ~count:size ~scale:1e-4;
        let norm = B.call fb "quantum_exp_mod_n" [ vec; size; gates ] in
        W.print_result_f64 t fb ~label:"norm" norm;
        B.ret fb (Some (B.i64 0)))
  in
  B.finish t

(* Parameters: qubits, gate count. *)
let profile_script = W.script_of_ints [ 8; 12 ]
let eval_script = W.script_of_ints [ 11; 24 ]
let eval_scale = 16.0
let files = []
