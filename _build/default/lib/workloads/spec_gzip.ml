(* 164.gzip — compression (SPEC CPU2000).

   Table 4 row: 5.5k LoC, 15.3 s, target spec_compress, coverage
   98.90 %, 1 invocation, 151.5 MB communication.  The defining trait:
   the hot kernel streams over a large buffer doing little arithmetic
   per byte, so communication dwarfs the compute gain on the slow
   network and the dynamic estimator refuses to offload there
   (Section 5.1 names 164.gzip as the example of this refusal).

   Kernel: word-granularity run-length compression of a
   run-structured input buffer. *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module W = Support

let name = "164.gzip"
let description = "Compression"
let target = "spec_compress"

let build () =
  let t = B.create name in
  W.add_checksum t;
  B.global t "src" W.i64p Ir.Zero_init;
  B.global t "dst" W.i64p Ir.Zero_init;

  (* spec_compress(src, nwords, dst) -> bytes written *)
  let _ =
    B.func t "spec_compress" ~params:[ W.i64p; Ty.I64; W.i64p ] ~ret:Ty.I64
      (fun fb args ->
        let src = List.nth args 0
        and nwords = List.nth args 1
        and dst = List.nth args 2 in
        let out = B.alloca fb Ty.I64 1 in
        let prev = B.alloca fb Ty.I64 1 in
        let run = B.alloca fb Ty.I64 1 in
        B.store fb Ty.I64 (B.i64 0) out;
        B.store fb Ty.I64 (B.i64' Int64.min_int) prev;
        B.store fb Ty.I64 (B.i64 0) run;
        let emit () =
          (* dst[out] = prev; dst[out+1] = run; out += 2 *)
          let o = B.load fb Ty.I64 out in
          let p = B.load fb Ty.I64 prev in
          let r = B.load fb Ty.I64 run in
          B.store fb Ty.I64 p (B.gep fb Ty.I64 dst [ Ir.Index o ]);
          let o1 = B.iadd fb o (B.i64 1) in
          B.store fb Ty.I64 r (B.gep fb Ty.I64 dst [ Ir.Index o1 ]);
          B.store fb Ty.I64 (B.iadd fb o (B.i64 2)) out
        in
        B.for_ fb ~name:"compress_loop" ~from:(B.i64 0) ~below:nwords
          (fun i ->
            let v = B.load fb Ty.I64 (B.gep fb Ty.I64 src [ Ir.Index i ]) in
            let p = B.load fb Ty.I64 prev in
            let same = B.cmp fb Ir.Eq v p in
            B.if_ fb same
              ~then_:(fun () ->
                let r = B.load fb Ty.I64 run in
                B.store fb Ty.I64 (B.iadd fb r (B.i64 1)) run)
              ~else_:(fun () ->
                let r = B.load fb Ty.I64 run in
                let started = B.cmp fb Ir.Sgt r (B.i64 0) in
                B.if_ fb started ~then_:(fun () -> emit ()) ();
                B.store fb Ty.I64 v prev;
                B.store fb Ty.I64 (B.i64 1) run)
              ());
        let r = B.load fb Ty.I64 run in
        let started = B.cmp fb Ir.Sgt r (B.i64 0) in
        B.if_ fb started ~then_:(fun () -> emit ()) ();
        let words_out = B.load fb Ty.I64 out in
        B.ret fb (Some (B.imul fb words_out (B.i64 8))))
  in

  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let nwords, run_shift = W.scan2 fb in
        let bytes = B.imul fb nwords (B.i64 8) in
        let src = W.malloc_words fb bytes in
        B.store fb W.i64p src (Ir.Global "src");
        W.fill_runs fb ~name:"fill_src" src ~words:nwords ~run_shift ~seed:(B.i64 7);
        let dst = W.malloc_words fb (B.iadd fb bytes (B.i64 64)) in
        B.store fb W.i64p dst (Ir.Global "dst");
        let out_bytes = B.call fb "spec_compress" [ src; nwords; dst ] in
        W.print_result t fb ~label:"compressed_bytes" out_bytes;
        let ck = B.call fb "checksum" [ dst; out_bytes ] in
        W.print_result t fb ~label:"checksum" ck;
        B.ret fb (Some (B.i64 0)))
  in
  B.finish t

(* Parameters: word count, run-length shift (runs of 2^k words). *)
let profile_script = W.script_of_ints [ 8_000; 4 ]
let eval_script = W.script_of_ints [ 80_000; 4 ]
let eval_scale = 10.0
let files = []
