(* Shared IR-emitting helpers for the SPEC-like workload programs.

   Every workload is a complete program built with {!No_ir.Builder}:
   a main that reads its parameters from the console script (so
   profiling and evaluation inputs differ, as in the paper), fills its
   working set, calls its hot kernel (the offloading target named as
   in Table 4), and prints a checksum so local and offloaded runs can
   be compared bit for bit. *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty

(* xorshift64*-style PRNG over an i64 state cell: deterministic,
   identical on both devices. *)
let add_xrand t =
  let _ =
    B.func t "xrand" ~params:[ Ty.Ptr Ty.I64 ] ~ret:Ty.I64 (fun fb args ->
        let cell = List.nth args 0 in
        let s = B.load fb Ty.I64 cell in
        let s = B.ixor fb s (B.ishl fb s (B.i64 13)) in
        let s = B.ixor fb s (B.ilshr fb s (B.i64 7)) in
        let s = B.ixor fb s (B.ishl fb s (B.i64 17)) in
        B.store fb Ty.I64 s cell;
        let out = B.imul fb s (B.i64' 0x2545F4914F6CDD1DL) in
        B.ret fb (Some out))
  in
  ()

(* Word-granularity checksum function: folds one i64 in [stride]-byte
   steps; cheap even over megabyte buffers. *)
let add_checksum ?(stride = 64) t =
  let _ =
    B.func t "checksum" ~params:[ Ty.Ptr Ty.I64; Ty.I64 ] ~ret:Ty.I64
      (fun fb args ->
        let buf = List.nth args 0 and bytes = List.nth args 1 in
        let acc = B.alloca fb Ty.I64 1 in
        B.store fb Ty.I64 (B.i64 0) acc;
        let words = B.idiv fb bytes (B.i64 stride) in
        B.for_ fb ~name:"cksum" ~from:(B.i64 0) ~below:words (fun i ->
            let off = B.imul fb i (B.i64 (stride / 8)) in
            let slot = B.gep fb Ty.I64 buf [ Ir.Index off ] in
            let w = B.load fb Ty.I64 slot in
            let cur = B.load fb Ty.I64 acc in
            let mixed = B.ixor fb w (B.ishl fb cur (B.i64 1)) in
            B.store fb Ty.I64 (B.iadd fb cur mixed) acc);
        B.ret fb (Some (B.load fb Ty.I64 acc)))
  in
  ()

(* Allocate a heap buffer of [bytes] (an i64-typed pointer). *)
let malloc_words fb bytes =
  let raw = B.call fb "malloc" [ bytes ] in
  B.cast fb Ir.Bitcast ~src:(Ty.Ptr Ty.I8) raw ~dst:(Ty.Ptr Ty.I64)

(* Fill [words] i64 slots with an affine pattern (fast: one store per
   word; value changes slowly so the data compresses). *)
let fill_pattern fb ~name buf ~words ~seed ~step =
  B.for_ fb ~name ~from:(B.i64 0) ~below:words (fun i ->
      let v = B.iadd fb seed (B.imul fb i step) in
      let slot = B.gep fb Ty.I64 buf [ Ir.Index i ] in
      B.store fb Ty.I64 v slot)

(* Fill with run-length structure: one marker word per run of
   2^[run_shift] words, zeros between (compressible, like text going
   into gzip; every page of the buffer is touched, but the fill costs
   a fraction of a dense write — input setup must stay a small share
   of execution, as in the paper's coverage column). *)
let fill_runs fb ~name buf ~words ~run_shift ~seed =
  let stride = B.ishl fb (B.i64 1) run_shift in
  let buckets = B.ilshr fb words run_shift in
  B.for_ fb ~name ~from:(B.i64 0) ~below:buckets (fun bucket ->
      let v = B.imul fb (B.iadd fb bucket seed) (B.i64' 0x9E3779B97F4A7C15L) in
      let i = B.imul fb bucket stride in
      let slot = B.gep fb Ty.I64 buf [ Ir.Index i ] in
      B.store fb Ty.I64 v slot)

(* Print an i64 labelled result followed by a newline. *)
let print_result t fb ~label value =
  let text = B.cstr t (label ^ "=") in
  B.call_void fb "print_str" [ text ];
  B.call_void fb "print_i64" [ value ];
  B.call_void fb "print_newline" []

let print_result_f64 t fb ~label value =
  let text = B.cstr t (label ^ "=") in
  B.call_void fb "print_str" [ text ];
  B.call_void fb "print_f64" [ value ];
  B.call_void fb "print_newline" []

(* Two scanned i64 parameters — the common workload prologue. *)
let scan2 fb =
  let a = B.call fb "scan_i64" [] in
  let b = B.call fb "scan_i64" [] in
  (a, b)

let f64p = Ty.Ptr Ty.F64
let i64p = Ty.Ptr Ty.I64
let i8p = Ty.Ptr Ty.I8

let malloc_f64 fb count =
  let raw = B.call fb "malloc" [ B.imul fb count (B.i64 8) ] in
  B.cast fb Ir.Bitcast ~src:i8p raw ~dst:f64p

(* Fill [count] f64 slots from an affine recurrence. *)
let fill_f64 fb ~name buf ~count ~scale =
  B.for_ fb ~name ~from:(B.i64 0) ~below:count (fun i ->
      let f = B.cast fb Ir.Si_to_fp ~src:Ty.I64 i ~dst:Ty.F64 in
      let v = B.fadd fb (B.fmul fb f (B.f64 scale)) (B.f64 1.0) in
      let slot = B.gep fb Ty.F64 buf [ Ir.Index i ] in
      B.store fb Ty.F64 v slot)

(* f64 buffer checksum folded into an i64 via bit reinterpretation of
   the running sum (printed with print_f64 to stay simple). *)
let sum_f64 fb ~name buf ~count =
  let acc = B.alloca fb Ty.F64 1 in
  B.store fb Ty.F64 (B.f64 0.0) acc;
  B.for_ fb ~name ~from:(B.i64 0) ~below:count (fun i ->
      let slot = B.gep fb Ty.F64 buf [ Ir.Index i ] in
      let v = B.load fb Ty.F64 slot in
      let cur = B.load fb Ty.F64 acc in
      B.store fb Ty.F64 (B.fadd fb cur v) acc);
  B.load fb Ty.F64 acc

(* Console script from ints. *)
let script_of_ints ints =
  List.map (fun v -> No_exec.Console.In_int (Int64.of_int v)) ints

(* A synthetic input file of [bytes] with mild run structure. *)
let synthetic_file ~seed ~bytes =
  let data = Bytes.create bytes in
  let state = ref (0x12345 + seed) in
  for i = 0 to bytes - 1 do
    if i mod 17 = 0 then
      state := (!state * 1103515245) + 12345;
    Bytes.set data i (Char.chr ((!state lsr 16 + (i / 29)) land 0xff))
  done;
  data
