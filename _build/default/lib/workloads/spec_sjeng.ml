(* 458.sjeng — chess engine (SPEC CPU2006).

   Table 4 row: 10.5k LoC, 950.8 s (second longest), target think,
   coverage 99.95 %, **3 invocations**, 240.2 MB communication per
   invocation.  Section 5.1: "Native Offloader achieves performance
   improvement for 458.sjeng that invokes think multiple times even
   on the slow network environment.  Considering that 458.sjeng, a
   chess game, is one of the representative user-interactive
   applications..." — and Figure 8(a) shows the three offload
   spikes.  It also carries the evalRoutines function-pointer table
   (heavy translation share in Figure 7).

   Kernel: think — a deterministic game-tree walk touching a large
   transposition table (the traffic source), evaluating leaves
   through the evalRoutines table. *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module W = Support

let name = "458.sjeng"
let description = "Chess engine"
let target = "think"

let eval_sig = Ty.signature [ Ty.I64 ] Ty.I64
let eval_names =
  [ "eval_pawn"; "eval_minor"; "eval_rook"; "eval_queen"; "eval_king";
    "eval_empty" ]

let build () =
  let t = B.create name in
  W.add_xrand t;
  B.global t "tt" W.i64p Ir.Zero_init;            (* transposition table *)
  B.global t "tt_words" Ty.I64 Ir.Zero_init;
  B.global t "evalRoutines"
    (Ty.Array (Ty.Fn_ptr eval_sig, 6))
    (Ir.Array_init (List.map (fun n -> Ir.Fn_init n) eval_names));

  List.iteri
    (fun i fname ->
      let _ =
        B.func t fname ~params:[ Ty.I64 ] ~ret:Ty.I64 (fun fb args ->
            let h = List.nth args 0 in
            let acc = B.alloca fb Ty.I64 1 in
            B.store fb Ty.I64 h acc;
            B.for_ fb ~name:(fname ^ "_loop") ~from:(B.i64 0)
              ~below:(B.i64 (12 + (4 * i))) (fun k ->
                let cur = B.load fb Ty.I64 acc in
                let rotated =
                  B.ior fb
                    (B.ishl fb cur (B.i64 7))
                    (B.ilshr fb cur (B.i64 57))
                in
                B.store fb Ty.I64 (B.iadd fb rotated k) acc);
            B.ret fb (Some (B.load fb Ty.I64 acc)))
      in
      ())
    eval_names;

  (* think(nodes, seed) -> best value.  Each node hashes into the
     transposition table (read-modify-write: the table is what makes
     sjeng's communication huge) and evaluates through the table. *)
  let _ =
    B.func t "think" ~params:[ Ty.I64; Ty.I64 ] ~ret:Ty.I64 (fun fb args ->
        let nodes = List.nth args 0 and seed = List.nth args 1 in
        let tt = B.load fb W.i64p (Ir.Global "tt") in
        let tt_words = B.load fb Ty.I64 (Ir.Global "tt_words") in
        let state = B.alloca fb Ty.I64 1 in
        B.store fb Ty.I64 seed state;
        let best = B.alloca fb Ty.I64 1 in
        B.store fb Ty.I64 (B.i64' Int64.min_int) best;
        B.for_ fb ~name:"search" ~from:(B.i64 0) ~below:nodes (fun _n ->
            let h = B.call fb "xrand" [ state ] in
            let slot_idx =
              B.irem fb (B.iand fb h (B.i64 0x7FFF_FFFF)) tt_words
            in
            let slot = B.gep fb Ty.I64 tt [ Ir.Index slot_idx ] in
            let cached = B.load fb Ty.I64 slot in
            let piece = B.iand fb h (B.i64 7) in
            let small = B.cmp fb Ir.Slt piece (B.i64 6) in
            let piece = B.select fb small piece (B.i64 5) in
            let table = Ty.Array (Ty.Fn_ptr eval_sig, 6) in
            let eslot =
              B.gep fb table (Ir.Global "evalRoutines") [ Ir.Index piece ]
            in
            let eval = B.load fb (Ty.Fn_ptr eval_sig) eslot in
            let value = B.call_ind fb eval_sig eval [ B.ixor fb h cached ] in
            B.store fb Ty.I64 value slot;
            let b = B.load fb Ty.I64 best in
            let better = B.cmp fb Ir.Sgt value b in
            B.if_ fb better ~then_:(fun () -> B.store fb Ty.I64 value best) ());
        B.ret fb (Some (B.load fb Ty.I64 best)))
  in

  (* main: an interactive game of three AI turns (scan the opponent
     move, think, print). *)
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let nodes, tt_kwords = W.scan2 fb in
        let tt_words = B.imul fb tt_kwords (B.i64 1024) in
        let tt = W.malloc_words fb (B.imul fb tt_words (B.i64 8)) in
        B.store fb W.i64p tt (Ir.Global "tt");
        B.store fb Ty.I64 tt_words (Ir.Global "tt_words");
        W.fill_pattern fb ~name:"init_tt" tt ~words:tt_words ~seed:(B.i64 1)
          ~step:(B.i64 0x9E37);
        B.for_ fb ~name:"turns" ~from:(B.i64 0) ~below:(B.i64 3) (fun _turn ->
            let opponent = B.call fb "scan_i64" [] in
            let value = B.call fb "think" [ nodes; opponent ] in
            W.print_result t fb ~label:"move_value" value);
        B.ret fb (Some (B.i64 0)))
  in
  B.finish t

(* Parameters: search nodes per think, transposition kilo-words; then
   one opponent move per turn. *)
let profile_script = W.script_of_ints [ 1_500; 8; 11; 22; 33 ]
let eval_script = W.script_of_ints [ 18_000; 40; 11; 22; 33 ]
let eval_scale = 12.0
let files = []
