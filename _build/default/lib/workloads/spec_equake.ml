(* 183.equake — seismic wave propagation (SPEC CPU2000).

   Table 4 row: 1.0k LoC, 334.0 s, target main_for.cond548 (an
   outlined time-stepping loop), coverage 99.44 %, 1 invocation,
   16.5 MB communication.  A classic stencil: compute-heavy, modest
   working set, near-ideal speedups (named in Section 5.1 among the
   programs that "require little communication compared to
   computation").

   Kernel: 5-point wave-equation stencil over two rolling grids. *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module W = Support

let name = "183.equake"
let description = "Seismic wave propagation"
let target = "main_for.cond548"

let dim = 96

let build () =
  let t = B.create name in
  B.global t "wave_cur" W.f64p Ir.Zero_init;
  B.global t "wave_prev" W.f64p Ir.Zero_init;

  (* One time step: next = 2*cur - prev + c * laplacian(cur), written
     into prev (rolling buffers swapped by the caller loop index). *)
  let _ =
    B.func t "wave_step" ~params:[ W.f64p; W.f64p ] ~ret:Ty.Void
      (fun fb args ->
        let cur = List.nth args 0 and prev = List.nth args 1 in
        let n = B.i64 dim in
        B.for_ fb ~name:"step_rows" ~from:(B.i64 1)
          ~below:(B.isub fb n (B.i64 1)) (fun r ->
            B.for_ fb ~name:"step_cols" ~from:(B.i64 1)
              ~below:(B.isub fb n (B.i64 1)) (fun c ->
                let at buf dr dc =
                  let idx =
                    B.iadd fb
                      (B.imul fb (B.iadd fb r (B.i64 dr)) n)
                      (B.iadd fb c (B.i64 dc))
                  in
                  B.gep fb Ty.F64 buf [ Ir.Index idx ]
                in
                let center = B.load fb Ty.F64 (at cur 0 0) in
                let north = B.load fb Ty.F64 (at cur (-1) 0) in
                let south = B.load fb Ty.F64 (at cur 1 0) in
                let west = B.load fb Ty.F64 (at cur 0 (-1)) in
                let east = B.load fb Ty.F64 (at cur 0 1) in
                let old = B.load fb Ty.F64 (at prev 0 0) in
                let lap =
                  B.fsub fb
                    (B.fadd fb (B.fadd fb north south) (B.fadd fb west east))
                    (B.fmul fb (B.f64 4.0) center)
                in
                let next =
                  B.fadd fb
                    (B.fsub fb (B.fmul fb (B.f64 2.0) center) old)
                    (B.fmul fb (B.f64 0.24) lap)
                in
                B.store fb Ty.F64 next (at prev 0 0)));
        B.ret_void fb)
  in

  (* main_for.cond548(steps) -> energy estimate *)
  let _ =
    B.func t "main_for.cond548" ~params:[ Ty.I64 ] ~ret:Ty.F64 (fun fb args ->
        let steps = List.nth args 0 in
        let cur_slot = Ir.Global "wave_cur" in
        let prev_slot = Ir.Global "wave_prev" in
        B.for_ fb ~name:"time_loop" ~from:(B.i64 0) ~below:steps (fun s ->
            let cur = B.load fb W.f64p cur_slot in
            let prev = B.load fb W.f64p prev_slot in
            let odd = B.irem fb s (B.i64 2) in
            let is_odd = B.cmp fb Ir.Eq odd (B.i64 1) in
            let a = B.select fb is_odd prev cur in
            let b = B.select fb is_odd cur prev in
            B.call_void fb "wave_step" [ a; b ]);
        let cur = B.load fb W.f64p cur_slot in
        let energy =
          W.sum_f64 fb ~name:"energy" cur ~count:(B.i64 (dim * dim))
        in
        B.ret fb (Some energy))
  in

  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let steps, _unused = W.scan2 fb in
        let count = B.i64 (dim * dim) in
        let cur = W.malloc_f64 fb count in
        let prev = W.malloc_f64 fb count in
        B.store fb W.f64p cur (Ir.Global "wave_cur");
        B.store fb W.f64p prev (Ir.Global "wave_prev");
        W.fill_f64 fb ~name:"init_cur" cur ~count ~scale:1e-3;
        W.fill_f64 fb ~name:"init_prev" prev ~count ~scale:1e-3;
        let energy = B.call fb "main_for.cond548" [ steps ] in
        W.print_result_f64 t fb ~label:"energy" energy;
        B.ret fb (Some (B.i64 0)))
  in
  B.finish t

(* Parameters: time steps, unused. *)
let profile_script = W.script_of_ints [ 3; 0 ]
let eval_script = W.script_of_ints [ 24; 0 ]
let eval_scale = 8.0
let files = []
