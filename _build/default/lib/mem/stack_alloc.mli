(** Per-device stack allocator for [alloca].

    The server's region is disjoint from the mobile one — the "stack
    reallocation" of paper §3.3: an offloaded task's frames must not
    corrupt mobile frames living at the same virtual addresses. *)

type t
type mark

exception Stack_overflow_uva of int   (** requested size *)

val create : base:int -> limit:int -> t
val mobile : unit -> t
val server : unit -> t

val frame_mark : t -> mark
(** Snapshot the stack pointer at function entry. *)

val release : t -> mark -> unit
(** Pop back to a mark at function exit.
    @raise Invalid_argument on a stale mark. *)

val alloc : t -> int -> int -> int
(** [alloc t size align] bumps the stack pointer.
    @raise Stack_overflow_uva when the region is exhausted. *)

val used_bytes : t -> int
val high_water_bytes : t -> int
