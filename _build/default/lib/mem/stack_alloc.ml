(* Per-device stack allocator for [alloca].

   Each device owns a stack region of the UVA space.  The server's
   region is disjoint from the mobile one ("stack reallocation",
   Section 3.3): an offloaded task allocating stack objects must not
   corrupt mobile frames that live at the same virtual addresses. *)

type mark = int

type t = {
  base : int;
  limit : int;
  mutable sp : int;
  mutable high_water : int;
}

exception Stack_overflow_uva of int   (* requested size *)

let create ~base ~limit = { base; limit; sp = base; high_water = base }

let frame_mark t : mark = t.sp

let release t (m : mark) =
  if m < t.base || m > t.sp then invalid_arg "Stack_alloc.release: bad mark";
  t.sp <- m

let alloc t size align =
  let aligned = (t.sp + align - 1) / align * align in
  if aligned + size > t.limit then raise (Stack_overflow_uva size);
  t.sp <- aligned + size;
  if t.sp > t.high_water then t.high_water <- t.sp;
  aligned

let used_bytes t = t.sp - t.base
let high_water_bytes t = t.high_water - t.base

let mobile () =
  create ~base:Region.mobile_stack_base ~limit:Region.mobile_stack_limit

let server () =
  create ~base:Region.server_stack_base ~limit:Region.server_stack_limit
