(** The unified virtual address (UVA) space map.

    Both devices see the same addresses (paper §3.2); everything fits
    below 2^32 so the 32-bit mobile device addresses all of it and the
    64-bit server zero-extends.  The server stack region is far from
    the mobile stack region (§3.3's stack reallocation). *)

val page_bits : int
val page_size : int

val page_of_addr : int -> int
val addr_of_page : int -> int
val offset_in_page : int -> int

val null_guard_end : int
val globals_base : int
val globals_limit : int
val mobile_stack_base : int
val mobile_stack_limit : int
val server_stack_base : int
val server_stack_limit : int
val heap_base : int
val heap_limit : int

type region = Null_guard | Globals | Mobile_stack | Server_stack | Heap | Unmapped

val region_of_addr : int -> region
val region_to_string : region -> string
