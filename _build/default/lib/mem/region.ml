(* The unified virtual address (UVA) space map.

   Both devices see the same addresses (paper Section 3.2).  Every
   region fits under 2^32 so a 32-bit mobile device can address all of
   it; the server zero-extends.  The server stack is placed far from
   the mobile stack — this is the "stack reallocation" of Section 3.3:
   "the compiler changes the stack area of the server to be far from
   the mobile stack area". *)

let page_bits = 12
let page_size = 1 lsl page_bits                   (* 4 KiB *)

let page_of_addr addr = addr lsr page_bits
let addr_of_page page = page lsl page_bits
let offset_in_page addr = addr land (page_size - 1)

let null_guard_end = 0x0001_0000                  (* null dereference trap *)
let globals_base = 0x0001_0000
let globals_limit = 0x0400_0000
let mobile_stack_base = 0x0800_0000
let mobile_stack_limit = 0x0A00_0000              (* 32 MiB of stack *)
let server_stack_base = 0x0C00_0000
let server_stack_limit = 0x0E00_0000
let heap_base = 0x1000_0000
let heap_limit = 0xF000_0000

type region = Null_guard | Globals | Mobile_stack | Server_stack | Heap | Unmapped

let region_of_addr addr =
  if addr < 0 then Unmapped
  else if addr < null_guard_end then Null_guard
  else if addr < globals_limit then Globals
  else if addr >= mobile_stack_base && addr < mobile_stack_limit then
    Mobile_stack
  else if addr >= server_stack_base && addr < server_stack_limit then
    Server_stack
  else if addr >= heap_base && addr < heap_limit then Heap
  else Unmapped

let region_to_string = function
  | Null_guard -> "null-guard"
  | Globals -> "globals"
  | Mobile_stack -> "mobile-stack"
  | Server_stack -> "server-stack"
  | Heap -> "heap"
  | Unmapped -> "unmapped"
