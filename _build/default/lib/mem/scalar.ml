(* Endianness-aware scalar encoding.

   Values cross the IR/memory boundary here.  Integers travel as
   int64 (sign-agnostic bit patterns, truncated to their width);
   floats as their IEEE bit patterns.  The byte order is the *unified*
   order (the mobile device's, per Section 3.2): when a device of the
   other endianness runs translated code, the compiler has inserted
   explicit [Bswap] operations, so this module always encodes in the
   order it is told. *)

module Arch = No_arch.Arch

let mask_of_bytes nbytes =
  if nbytes >= 8 then -1L
  else Int64.sub (Int64.shift_left 1L (nbytes * 8)) 1L

(* Truncate a bit pattern to [nbytes] and sign-extend back to int64.
   Loads of sub-word integers produce sign-extended register values
   (matching C's int semantics for the signed types our IR exposes). *)
let sign_extend value nbytes =
  if nbytes >= 8 then value
  else
    let bits = nbytes * 8 in
    Int64.shift_right (Int64.shift_left value (64 - bits)) (64 - bits)

let store_int (endianness : Arch.endianness) ~write_byte addr nbytes value =
  match endianness with
  | Arch.Little ->
    for i = 0 to nbytes - 1 do
      let b = Int64.to_int (Int64.shift_right_logical value (i * 8)) land 0xff in
      write_byte (addr + i) b
    done
  | Arch.Big ->
    for i = 0 to nbytes - 1 do
      let b =
        Int64.to_int (Int64.shift_right_logical value ((nbytes - 1 - i) * 8))
        land 0xff
      in
      write_byte (addr + i) b
    done

let load_int (endianness : Arch.endianness) ~read_byte addr nbytes =
  let acc = ref 0L in
  (match endianness with
  | Arch.Little ->
    for i = nbytes - 1 downto 0 do
      acc := Int64.logor (Int64.shift_left !acc 8)
               (Int64.of_int (read_byte (addr + i)))
    done
  | Arch.Big ->
    for i = 0 to nbytes - 1 do
      acc := Int64.logor (Int64.shift_left !acc 8)
               (Int64.of_int (read_byte (addr + i)))
    done);
  !acc

(* Swap the byte order of an [nbytes]-wide pattern (the semantics of
   the IR's Bswap, inserted by endianness translation). *)
let bswap value nbytes =
  let out = ref 0L in
  for i = 0 to nbytes - 1 do
    let b = Int64.logand (Int64.shift_right_logical value (i * 8)) 0xffL in
    out := Int64.logor !out (Int64.shift_left b ((nbytes - 1 - i) * 8))
  done;
  !out

let float_to_bits ~f32 v =
  if f32 then Int64.of_int32 (Int32.bits_of_float v)
  else Int64.bits_of_float v

let float_of_bits ~f32 bits =
  if f32 then Int32.float_of_bits (Int64.to_int32 bits)
  else Int64.float_of_bits bits
