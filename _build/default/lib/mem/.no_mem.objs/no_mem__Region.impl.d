lib/mem/region.ml:
