lib/mem/stack_alloc.mli:
