lib/mem/scalar.ml: Int32 Int64 No_arch
