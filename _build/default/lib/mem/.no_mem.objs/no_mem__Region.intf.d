lib/mem/region.mli:
