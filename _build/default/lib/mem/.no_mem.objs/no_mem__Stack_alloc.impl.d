lib/mem/stack_alloc.ml: Region
