lib/mem/memory.mli: Bytes Hashtbl
