lib/mem/uva.ml: Hashtbl List Region
