lib/mem/uva.mli:
