lib/arch/layout.ml: Arch List No_ir Printf String
