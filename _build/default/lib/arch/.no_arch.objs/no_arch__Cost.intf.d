lib/arch/cost.mli: Arch No_ir
