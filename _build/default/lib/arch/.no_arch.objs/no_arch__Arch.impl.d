lib/arch/arch.ml: Fmt List String
