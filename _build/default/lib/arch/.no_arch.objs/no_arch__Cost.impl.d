lib/arch/cost.ml: Arch Builtins Int64 Ir No_ir
