lib/arch/layout.mli: Arch No_ir
