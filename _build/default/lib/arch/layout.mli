(** Memory layout computation (paper §3.2, Figure 4).

    Computes C-style sizes, alignments and field offsets under an
    architecture's rules.  Layout realignment = building the {e
    unified} environment (the mobile device's rules, "the mobile
    device is the default one in the computation offloading") and
    resolving every field access through it on both devices, so the
    same UVA address denotes the same field everywhere. *)

type env = {
  ptr_bytes : int;
  i64_align : int;
  f64_align : int;
  structs : string -> No_ir.Ir.struct_def;
}

val env_of_arch : Arch.t -> structs:(string -> No_ir.Ir.struct_def) -> env

val unified_env :
  mobile:Arch.t -> structs:(string -> No_ir.Ir.struct_def) -> env
(** The standard layout both partitions are compiled against. *)

val align_up : int -> int -> int

val align_of : env -> No_ir.Ty.t -> int
val size_of : env -> No_ir.Ty.t -> int
(** Struct sizes include field padding and tail rounding, exactly as
    a C compiler under the given ABI would (Figure 4's Move is 12
    bytes on IA32 and 16 on ARM). *)

val struct_layout : env -> string -> (string * int * No_ir.Ty.t * int) list
(** (field, offset, type, size) in declaration order. *)

val field_offset : env -> string -> string -> int
val field_ty : env -> string -> string -> No_ir.Ty.t

val scalar_bytes : env -> No_ir.Ty.t -> int
(** Bytes a scalar occupies in memory under [env]; pointers occupy
    the environment's pointer width. *)
