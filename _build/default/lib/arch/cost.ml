(* Instruction cost classification.

   The interpreter charges each executed IR instruction the cycle cost
   of its class under the executing device's cost model; simulated time
   advances by cycles / clock.  Builtin calls carge an additional body
   cost (their work is not expressed in IR instructions). *)

open No_ir

(* Multiplication by a power-of-two constant is strength-reduced to a
   shift by any real back end. *)
let is_pow2_const (op : Ir.operand) =
  match op with
  | Ir.Int (v, _) -> Int64.compare v 0L > 0 && Int64.logand v (Int64.pred v) = 0L
  | Ir.Reg _ | Ir.Float _ | Ir.Null _ | Ir.Global _ | Ir.Fn_addr _ -> false

let class_of_rvalue (rv : Ir.rvalue) : Arch.instr_class =
  match rv with
  | Ir.Bin (op, a, b) -> (
    match op with
    | Ir.Mul ->
      if is_pow2_const a || is_pow2_const b then Arch.Cls_alu
      else Arch.Cls_mul
    | Ir.Sdiv | Ir.Udiv | Ir.Srem | Ir.Urem -> Arch.Cls_div
    | Ir.Fadd | Ir.Fsub | Ir.Fmul -> Arch.Cls_fpu
    | Ir.Fdiv -> Arch.Cls_fdiv
    | Ir.Add | Ir.Sub | Ir.And | Ir.Or | Ir.Xor | Ir.Shl | Ir.Lshr
    | Ir.Ashr -> Arch.Cls_alu)
  | Ir.Cast ((Ir.Bitcast | Ir.Ptr_to_int | Ir.Int_to_ptr), _, _, _) ->
    (* Pure reinterpretations: free in hardware. *)
    Arch.Cls_free
  | Ir.Cmp _ | Ir.Cast _ | Ir.Select _ | Ir.Bswap _ -> Arch.Cls_alu
  | Ir.Load _ -> Arch.Cls_load
  | Ir.Alloca _ -> Arch.Cls_alu
  | Ir.Gep _ -> Arch.Cls_alu
  | Ir.Call _ | Ir.Call_ind _ -> Arch.Cls_call
  | Ir.Fn_map _ ->
    (* The table lookup itself; the runtime adds the translation
       bookkeeping cost (Figure 7's "function pointer translation"). *)
    Arch.Cls_load

let class_of_instr (instr : Ir.instr) : Arch.instr_class =
  match instr with
  | Ir.Assign (_, rv) | Ir.Effect rv -> class_of_rvalue rv
  | Ir.Store _ -> Arch.Cls_store
  | Ir.Asm _ -> Arch.Cls_alu

let class_of_terminator (term : Ir.terminator) : Arch.instr_class =
  match term with
  | Ir.Br _ | Ir.Cbr _ | Ir.Switch _ -> Arch.Cls_branch
  | Ir.Ret _ | Ir.Unreachable -> Arch.Cls_branch

(* Extra cycles charged for the body of a builtin call, on top of the
   Cls_call dispatch cost. *)
let builtin_body_class name : Arch.instr_class option =
  match Builtins.kind_of name with
  | Builtins.Alloc | Builtins.Dealloc | Builtins.Uva_alloc
  | Builtins.Uva_dealloc -> Some Arch.Cls_alloc
  | Builtins.Pure -> Some Arch.Cls_math
  | Builtins.Memory -> None (* charged per byte by the interpreter *)
  | Builtins.Output_io | Builtins.Input_io | Builtins.File_io
  | Builtins.Remote_io | Builtins.Syscall | Builtins.Unknown -> None

let cycles_of (arch : Arch.t) (cls : Arch.instr_class) : float =
  arch.Arch.cost.Arch.cpi cls

let seconds_of (arch : Arch.t) (cls : Arch.instr_class) : float =
  cycles_of arch cls /. arch.Arch.cost.Arch.clock_hz

(* Per-byte time for memcpy/memset-style builtins. *)
let seconds_per_byte (arch : Arch.t) : float =
  cycles_of arch Arch.Cls_load /. 8.0 /. arch.Arch.cost.Arch.clock_hz
