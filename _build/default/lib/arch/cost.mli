(** Instruction cost classification.

    The interpreter charges each executed IR instruction the cycle
    cost of its class under the executing device's cost model;
    simulated time advances by cycles / clock.  Two artifact-removal
    rules keep interpreted costs close to native ones: pointer
    reinterpretation casts are free, and multiplication by a
    power-of-two constant prices as ALU (strength reduction). *)

val class_of_rvalue : No_ir.Ir.rvalue -> Arch.instr_class
val class_of_instr : No_ir.Ir.instr -> Arch.instr_class
val class_of_terminator : No_ir.Ir.terminator -> Arch.instr_class

val builtin_body_class : string -> Arch.instr_class option
(** Extra cycles for a builtin's body (allocator, math), beyond the
    call dispatch. *)

val cycles_of : Arch.t -> Arch.instr_class -> float
val seconds_of : Arch.t -> Arch.instr_class -> float

val seconds_per_byte : Arch.t -> float
(** Bulk-copy rate for memcpy/memset-style builtins. *)
