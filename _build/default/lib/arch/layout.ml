(* Memory layout computation (paper Section 3.2, Figure 4).

   Given an architecture's alignment rules and pointer width, this
   module computes C-style sizes, alignments and field offsets.  The
   memory layout realignment pass builds a *unified* environment — the
   mobile device's rules, because "the mobile device is the default one
   in the computation offloading" — and lowers GEPs on both sides
   against it, so the same UVA address denotes the same field on both
   machines. *)

type env = {
  ptr_bytes : int;
  i64_align : int;
  f64_align : int;
  structs : string -> No_ir.Ir.struct_def;
}

let env_of_arch (arch : Arch.t) ~structs =
  {
    ptr_bytes = Arch.ptr_bytes arch;
    i64_align = arch.Arch.align.Arch.i64_align;
    f64_align = arch.Arch.align.Arch.f64_align;
    structs;
  }

(* The unified environment shared by both partitions: mobile layout
   rules (paper: realign the server layout to the mobile one). *)
let unified_env ~(mobile : Arch.t) ~structs = env_of_arch mobile ~structs

let align_up offset align =
  if align <= 0 then invalid_arg "Layout.align_up";
  (offset + align - 1) / align * align

let rec align_of env (ty : No_ir.Ty.t) : int =
  match ty with
  | I8 -> 1
  | I16 -> 2
  | I32 -> 4
  | I64 -> env.i64_align
  | F32 -> 4
  | F64 -> env.f64_align
  | Ptr _ | Fn_ptr _ -> env.ptr_bytes
  | Array (elem, _) -> align_of env elem
  | Struct name ->
    let sd = env.structs name in
    List.fold_left
      (fun acc (_, fty) -> max acc (align_of env fty))
      1 sd.No_ir.Ir.s_fields
  | Void -> invalid_arg "Layout.align_of: void"

and size_of env (ty : No_ir.Ty.t) : int =
  match ty with
  | I8 -> 1
  | I16 -> 2
  | I32 -> 4
  | I64 -> 8
  | F32 -> 4
  | F64 -> 8
  | Ptr _ | Fn_ptr _ -> env.ptr_bytes
  | Array (elem, n) -> n * size_of env elem
  | Struct name ->
    let offset_past_last, align =
      List.fold_left
        (fun (offset, align) (_, fty) ->
          let falign = align_of env fty in
          (align_up offset falign + size_of env fty, max align falign))
        (0, 1)
        (env.structs name).No_ir.Ir.s_fields
    in
    align_up offset_past_last align
  | Void -> invalid_arg "Layout.size_of: void"

(* Offset of each field: (name, offset, type, size). *)
let struct_layout env name : (string * int * No_ir.Ty.t * int) list =
  let sd = env.structs name in
  let fields, _ =
    List.fold_left
      (fun (acc, offset) (fname, fty) ->
        let off = align_up offset (align_of env fty) in
        ((fname, off, fty, size_of env fty) :: acc, off + size_of env fty))
      ([], 0) sd.No_ir.Ir.s_fields
  in
  List.rev fields

let field_offset env sname fname =
  match
    List.find_opt (fun (n, _, _, _) -> String.equal n fname)
      (struct_layout env sname)
  with
  | Some (_, offset, _, _) -> offset
  | None ->
    invalid_arg
      (Printf.sprintf "Layout.field_offset: no field %s in %s" fname sname)

let field_ty env sname fname =
  match
    List.find_opt (fun (n, _, _, _) -> String.equal n fname)
      (struct_layout env sname)
  with
  | Some (_, _, ty, _) -> ty
  | None ->
    invalid_arg
      (Printf.sprintf "Layout.field_ty: no field %s in %s" fname sname)

(* Bytes a scalar occupies in memory under [env]; this is what loads
   and stores move.  Pointers occupy the *unified* (mobile) width: the
   address-size conversion pass zero-extends them after loading. *)
let scalar_bytes env (ty : No_ir.Ty.t) : int =
  match ty with
  | I8 | I16 | I32 | I64 | F32 | F64 -> size_of env ty
  | Ptr _ | Fn_ptr _ -> env.ptr_bytes
  | Struct _ | Array _ | Void ->
    invalid_arg "Layout.scalar_bytes: not a scalar"
