(* Architecture descriptors.

   Everything the Native Offloader compiler needs to know about a
   target machine (paper Section 2: "the Native Offloader compiler
   achieves information about target architectures from back-end
   compilers"): pointer width, endianness, alignment rules, and the
   cost model from which the performance ratio R of Equation 1
   emerges. *)

type endianness = Little | Big

(* Alignment rules differ across ABIs: the i386 System V ABI aligns
   f64/i64 to 4 bytes inside structs, while the ARM EAPCS and x86-64
   ABIs align them to 8 — this is exactly the Figure 4 situation. *)
type align_rules = {
  i64_align : int;
  f64_align : int;
}

(* Cycle costs per instruction class.  Mobile cores retire fewer
   instructions per cycle than the desktop part; the ratio of
   (cpi / clock) across the two descriptors is the R of Equation 1. *)
type instr_class =
  | Cls_alu        (* add/sub/logic/shift/compare/select/cast *)
  | Cls_mul
  | Cls_div
  | Cls_fpu        (* fadd/fsub/fmul *)
  | Cls_fdiv
  | Cls_load
  | Cls_store
  | Cls_branch
  | Cls_call
  | Cls_alloc      (* allocator builtin *)
  | Cls_math       (* sqrt/sin/... builtin *)
  | Cls_free       (* zero-cost reinterpretations *)

type cost_model = {
  cpi : instr_class -> float;
  clock_hz : float;
}

(* Simulation time scale.

   Our substrate interprets IR at ~10^7 instructions/second, four
   orders of magnitude below the silicon the paper ran on, so
   workloads carry correspondingly fewer instructions.  To keep
   simulated execution times in the paper's range (seconds–minutes)
   the simulated clocks run [sim_cpu_scale] slower than the real
   parts; the network simulator applies its own scale (see
   {!No_netsim.Link}) chosen so the compute/communication balance of
   the paper's Table 4 workloads is preserved for our proportionally
   smaller working sets.  All reported "seconds" are simulated
   seconds; every ratio the evaluation reports (speedups, normalized
   battery, overhead shares) is scale-invariant. *)
let sim_cpu_scale = 1.0e4

type t = {
  name : string;
  ptr_bits : int;                     (* 32 or 64 *)
  endianness : endianness;
  align : align_rules;
  cost : cost_model;
}

let ptr_bytes arch = arch.ptr_bits / 8

(* Desktop-class cost table (Intel i7-4790-ish shapes). *)
let desktop_cpi = function
  | Cls_alu -> 0.35
  | Cls_mul -> 1.0
  | Cls_div -> 8.0
  | Cls_fpu -> 1.0
  | Cls_fdiv -> 7.0
  | Cls_load -> 0.6
  | Cls_store -> 0.7
  | Cls_branch -> 0.5
  | Cls_call -> 4.0
  | Cls_alloc -> 40.0
  | Cls_math -> 20.0
  | Cls_free -> 0.0

(* Mobile-class cost table (Krait 400-ish shapes): narrower issue,
   slower memory, costlier FP.  Calibrated so the chess gap of Table 1
   lands in the paper's 5.4-5.9x band while the SPEC kernel mix gives
   the steeper ratios behind the 6.42x geomean speedup. *)
let mobile_cpi = function
  | Cls_alu -> 1.35
  | Cls_mul -> 4.5
  | Cls_div -> 34.0
  | Cls_fpu -> 8.0
  | Cls_fdiv -> 44.0
  | Cls_load -> 3.3
  | Cls_store -> 3.5
  | Cls_branch -> 2.2
  | Cls_call -> 15.0
  | Cls_alloc -> 130.0
  | Cls_math -> 90.0
  | Cls_free -> 0.0

(* The Samsung Galaxy S5 of the paper: 32-bit ARM, little endian. *)
let arm32 = {
  name = "arm32";
  ptr_bits = 32;
  endianness = Little;
  align = { i64_align = 8; f64_align = 8 };
  cost = { cpi = mobile_cpi; clock_hz = 2.5e9 /. sim_cpu_scale };
}

(* The Dell XPS 8700 of the paper: 64-bit x86, little endian. *)
let x86_64 = {
  name = "x86_64";
  ptr_bits = 64;
  endianness = Little;
  align = { i64_align = 8; f64_align = 8 };
  cost = { cpi = desktop_cpi; clock_hz = 3.6e9 /. sim_cpu_scale };
}

(* 32-bit x86, used to demonstrate the Figure 4 layout divergence:
   f64 aligns to 4 inside structs on the i386 ABI. *)
let x86_32 = {
  name = "x86_32";
  ptr_bits = 32;
  endianness = Little;
  align = { i64_align = 4; f64_align = 4 };
  cost = { cpi = desktop_cpi; clock_hz = 3.6e9 /. sim_cpu_scale };
}

(* Synthetic big-endian mobile profile, used to exercise the endianness
   translation pass (the paper's platforms are both little endian, so
   it reports zero endianness overhead). *)
let arm32_be = {
  name = "arm32_be";
  ptr_bits = 32;
  endianness = Big;
  align = { i64_align = 8; f64_align = 8 };
  cost = { cpi = mobile_cpi; clock_hz = 2.5e9 /. sim_cpu_scale };
}

let all = [ arm32; x86_64; x86_32; arm32_be ]

let by_name name = List.find_opt (fun a -> String.equal a.name name) all

(* Average performance ratio R between two machines (server speed over
   mobile speed), as used by the performance estimator.  Computed as
   the geometric mean of per-class time ratios. *)
let performance_ratio ~mobile ~server =
  let classes =
    [ Cls_alu; Cls_mul; Cls_div; Cls_fpu; Cls_fdiv; Cls_load; Cls_store;
      Cls_branch; Cls_call ]
  in
  let log_sum =
    List.fold_left
      (fun acc cls ->
        let tm = mobile.cost.cpi cls /. mobile.cost.clock_hz
        and ts = server.cost.cpi cls /. server.cost.clock_hz in
        acc +. log (tm /. ts))
      0.0 classes
  in
  exp (log_sum /. float_of_int (List.length classes))

let pp ppf arch =
  Fmt.pf ppf "%s(%d-bit, %s endian)" arch.name arch.ptr_bits
    (match arch.endianness with Little -> "little" | Big -> "big")
